#!/usr/bin/env bash
# Line-coverage summary for the determinism-critical layers (src/sim,
# src/core), the observability/approximation layers they instrument
# (src/telemetry, src/approx), the fluid-tier rate model (src/flowsim),
# and the phase-memoization layer (src/memo), computed with plain gcov
# from a `coverage`-preset build — no gcovr/lcov dependency.
#
# Usage:
#   cmake --preset coverage && cmake --build --preset coverage -j
#   ctest --preset coverage -j        # or any tier: ctest ... -L unit
#   scripts/coverage_summary.sh [build-dir]     (default: build-coverage)
#
# Counts accumulate across every test binary that ran (the static-lib
# objects share one .gcda per source); re-run `find <build> -name
# '*.gcda' -delete` to reset between measurements.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build-coverage}"
if [[ ! -d "${build}" ]]; then
  echo "error: ${build} does not exist — configure the 'coverage' preset first" >&2
  exit 1
fi

summarize_layer() {
  local layer="$1"
  local objdir="${build}/src/${layer}"
  mapfile -t gcda < <(find "${objdir}" -name '*.gcda' 2>/dev/null | sort)
  if [[ ${#gcda[@]} -eq 0 ]]; then
    echo "src/${layer}: no .gcda files under ${objdir} — run the tests first" >&2
    return 1
  fi
  # `gcov -n` prints, per source file the object touches,
  #   File '<path>'
  #   Lines executed:<pct>% of <total>
  # Restrict to the layer's own .cc files: each appears exactly once (in
  # its own object's report), so the sum is exact. Headers show up once
  # per includer with per-object counts and would double-count.
  (cd "${objdir}" && gcov -n "${gcda[@]#"${objdir}"/}" 2>/dev/null) |
    awk -v layer="src/${layer}/" '
      /^File / {
        file = $2
        gsub(/\x27/, "", file)
        want = index(file, layer) > 0 && file ~ /\.cc$/
        # Strip everything before the layer directory for display.
        sub(/.*src\//, "src/", file)
      }
      want && /^Lines executed:/ {
        pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
        total = $0; sub(/.* of /, "", total)
        covered = int(pct / 100 * total + 0.5)
        if (!(file in seen)) order[n++] = file
        seen[file] += 0
        file_cov[file] += covered
        file_tot[file] += total
        want = 0
      }
      END {
        grand_cov = 0; grand_tot = 0
        for (i = 0; i < n; i++) {
          f = order[i]
          printf "  %-44s %6.1f%%  (%d/%d lines)\n",
                 f, 100.0 * file_cov[f] / file_tot[f], file_cov[f], file_tot[f]
          grand_cov += file_cov[f]; grand_tot += file_tot[f]
        }
        printf "  %-44s %6.1f%%  (%d/%d lines)\n",
               "TOTAL " layer, 100.0 * grand_cov / grand_tot, grand_cov, grand_tot
      }'
}

status=0
for layer in sim core telemetry approx flowsim memo; do
  echo "=== line coverage: src/${layer} ==="
  summarize_layer "${layer}" || status=1
done
exit "${status}"
