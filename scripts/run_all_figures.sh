#!/usr/bin/env bash
# Regenerates every paper figure and ablation at full scale.
# Usage: scripts/run_all_figures.sh [output-file]
# Set ESIM_BENCH_QUICK=1 for a fast smoke-test pass.
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-bench_output.txt}"
cmake -B build -G Ninja
cmake --build build
{
  for b in build/bench/*; do
    echo "=== $(basename "$b") ==="
    "$b"
  done
} | tee "$out"
