#!/usr/bin/env bash
# Builds the default and asan-ubsan presets and runs the full test suite
# under both. This is the gate the FES small-buffer-callback and
# generation-slot code must pass: ASan catches lifetime bugs in the inline
# storage, UBSan catches misaligned placement-new and signed overflow.
#
# Usage: scripts/check.sh [-jN]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="-j$(nproc)"
if [[ $# -ge 1 && $1 == -j* ]]; then
  jobs=$1
fi

for preset in default asan-ubsan; do
  echo "=== preset: ${preset} — configure ==="
  cmake --preset "${preset}"
  echo "=== preset: ${preset} — build ==="
  cmake --build --preset "${preset}" "${jobs}"
  echo "=== preset: ${preset} — test ==="
  ctest --preset "${preset}" "${jobs}"
done

echo "All presets passed."
