#!/usr/bin/env bash
# Builds the default and asan-ubsan presets and runs the full test suite
# under both, then builds the tsan preset and runs the threaded tests
# (ParallelEngine, PDES networks, telemetry) under ThreadSanitizer. ASan
# catches lifetime bugs in the FES inline storage, UBSan misaligned
# placement-new and signed overflow, TSan races between PDES partitions —
# including concurrent logging and shared telemetry instruments.
#
# Usage: scripts/check.sh [-jN]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="-j$(nproc)"
if [[ $# -ge 1 && $1 == -j* ]]; then
  jobs=$1
fi

for preset in default asan-ubsan; do
  echo "=== preset: ${preset} — configure ==="
  cmake --preset "${preset}"
  echo "=== preset: ${preset} — build ==="
  cmake --build --preset "${preset}" "${jobs}"
  echo "=== preset: ${preset} — test ==="
  ctest --preset "${preset}" "${jobs}"
done

# The inference bench doubles as a sanitizer workout for the packed
# SIMD kernels and the workspace plan: quick-mode it streams every
# trunk/hidden config through both predict paths (bit-identity checked,
# exit 1 on mismatch) plus a hybrid telemetry run.
echo "=== asan-ubsan — bench_inference smoke ==="
(cd build-asan && ESIM_BENCH_QUICK=1 ./bench/bench_inference)

echo "=== preset: tsan — configure ==="
cmake --preset tsan
echo "=== preset: tsan — build ==="
cmake --build --preset tsan "${jobs}"
echo "=== preset: tsan — test (threaded suites) ==="
ctest --preset tsan "${jobs}" -R \
  'ParallelEngine|PdesBuilder|PdesNetwork|HybridPdes|TelemetryIntegration|Trace'

echo "All presets passed."
