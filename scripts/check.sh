#!/usr/bin/env bash
# Builds the default and asan-ubsan presets and runs the CTest tiers
# explicitly — unit, integration, slow — under both, then builds the
# tsan preset and runs the threaded tests (ParallelEngine, PDES
# networks, telemetry) under ThreadSanitizer. ASan catches lifetime bugs
# in the FES inline storage, UBSan misaligned placement-new and signed
# overflow, TSan races between PDES partitions — including concurrent
# logging and shared telemetry instruments.
#
# Opt-in extras:
#   ESIM_CHECK_FUZZ=1      also run the differential fuzz tier
#                          (`ctest -L fuzz`: esim_diffcheck selftest +
#                          25-scenario engine-equivalence sweep) under
#                          default and asan-ubsan.
#   ESIM_CHECK_COVERAGE=1  also build the coverage preset, run the unit
#                          + integration tiers under it, and print the
#                          src/{sim,core,telemetry,approx,flowsim,memo}
#                          line-coverage summary
#                          (scripts/coverage_summary.sh).
#
# Usage: [ESIM_CHECK_FUZZ=1] [ESIM_CHECK_COVERAGE=1] scripts/check.sh [-jN]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="-j$(nproc)"
if [[ $# -ge 1 && $1 == -j* ]]; then
  jobs=$1
fi

tiers=(unit integration slow)
if [[ "${ESIM_CHECK_FUZZ:-0}" == "1" ]]; then
  tiers+=(fuzz)
fi

for preset in default asan-ubsan; do
  echo "=== preset: ${preset} — configure ==="
  cmake --preset "${preset}"
  echo "=== preset: ${preset} — build ==="
  cmake --build --preset "${preset}" "${jobs}"
  for tier in "${tiers[@]}"; do
    echo "=== preset: ${preset} — test tier: ${tier} ==="
    ctest --preset "${preset}" "${jobs}" -L "${tier}"
  done
done

# The PDES scale-out path (graph-cut placement, per-pair lookahead
# windows, SPSC rings) must stay digest-identical to the sequential
# engine at the partition counts the scaling bench targets. Always run
# this — it is the determinism gate for the parallel engine, not an
# opt-in extra.
echo "=== default — esim_diffcheck scale-out fuzz (8/16 partitions) ==="
(cd build && ./tools/esim_diffcheck fuzz --n 15 --seed 23 --partitions 8,16)

# The inference bench doubles as a sanitizer workout for the packed
# SIMD kernels and the workspace plan. `--batch` runs the batched
# phases: the lanes/sequence sweep at N in {1,4,16,64} (bit-identity
# checked against independent single-lane sessions, exit 1 on mismatch)
# plus a hybrid run with the coalesced prediction queue on vs off.
echo "=== asan-ubsan — bench_inference --batch smoke ==="
(cd build-asan && ./bench/bench_inference --batch)

# Quick sweep of the PDES scaling bench under ASan/UBSan: drives the
# partitioner, per-pair windows, and SPSC rings at 1..8 partitions with
# real TCP traffic.
echo "=== asan-ubsan — bench_pdes_scaling smoke ==="
(cd build-asan && ESIM_BENCH_QUICK=1 ./bench/bench_pdes_scaling)

# Fidelity observatory digest-invariance under the sanitizers: shadow
# sampling + queue-truth peeks + JSONL streaming must not perturb the
# simulation (full digest equality, sequential and PDES) and must be
# clean of lifetime/overflow bugs in the probe's window bookkeeping.
echo "=== asan-ubsan — esim_diffcheck fidelity smoke ==="
(cd build-asan && ./tools/esim_diffcheck fidelity --n 10 --seed 7 --partitions 2,4)

# Adaptive tier switching under the sanitizers: the controller's
# drain-before-switch, the fluid backend's pending-mutation buffering,
# and the tier-trace digest lane must agree across engines with no
# lifetime/overflow bugs in the backend swap.
echo "=== asan-ubsan — esim_diffcheck granularity smoke ==="
(cd build-asan && ./tools/esim_diffcheck granularity --n 10 --seed 1 --partitions 2,4)

# Phase-memoization replay equivalence under the sanitizers: the delta
# recorder's observer wrapping, the LRU cache's eviction accounting, and
# the fast-forward's FES counter surgery must keep memo-on runs
# digest-identical to memo-off (DESIGN.md §13) with no lifetime bugs in
# the snapshot/restore path.
echo "=== asan-ubsan — esim_diffcheck memo smoke ==="
(cd build-asan && ./tools/esim_diffcheck memo --n 10 --seed 7 --partitions 2,4)

# Memo bench smoke: the aggregate fast-forward speedup path plus the
# digest-attached replay path end to end under ASan.
echo "=== asan-ubsan — bench_memo smoke ==="
(cd build-asan && ESIM_BENCH_QUICK=1 ./bench/bench_memo)

# Granularity bench smoke: trains tiny boundary models, runs the
# all-packet reference plus fixed/adaptive tier variants and the
# quiescent corpus — the fluid backend's full lifecycle under ASan.
echo "=== asan-ubsan — bench_granularity smoke ==="
(cd build-asan && ESIM_BENCH_QUICK=1 ./bench/bench_granularity)

echo "=== preset: tsan — configure ==="
cmake --preset tsan
echo "=== preset: tsan — build ==="
cmake --build --preset tsan "${jobs}"
echo "=== preset: tsan — test (threaded suites) ==="
# BatchCluster / HybridPdesBatch cover the coalesced prediction queue's
# flush timers interleaving with the telemetry flusher and with
# cross-partition deliveries.
# Fidelity suites exercise the shared FidelitySink from concurrent PDES
# partition threads (window closes append rows under the sink mutex).
# Granularity / FluidCluster cover adaptive tier switches and the fluid
# backend's deferred mutations racing cross-partition deliveries.
# Memo / PhaseCache cover the PDES memo runner: delta recording across
# partition threads (the completion log mutex) and replay between
# engine windows.
ctest --preset tsan "${jobs}" -R \
  'ParallelEngine|PdesBuilder|PdesNetwork|HybridPdes|TelemetryIntegration|Trace|SpscQueue|Partitioner|BatchCluster|Fidelity|Granularity|FluidCluster|Memo|PhaseCache'

if [[ "${ESIM_CHECK_COVERAGE:-0}" == "1" ]]; then
  echo "=== preset: coverage — configure ==="
  cmake --preset coverage
  echo "=== preset: coverage — build ==="
  cmake --build --preset coverage "${jobs}"
  find build-coverage -name '*.gcda' -delete
  for tier in unit integration; do
    echo "=== preset: coverage — test tier: ${tier} ==="
    ctest --preset coverage "${jobs}" -L "${tier}"
  done
  echo "=== coverage summary (src/sim, src/core, src/telemetry, src/approx, src/flowsim, src/memo) ==="
  scripts/coverage_summary.sh build-coverage
fi

echo "All presets passed."
