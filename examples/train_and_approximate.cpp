// The complete paper workflow in one program (paper §3, Figure 3):
//
//   1. simulate two clusters at full packet fidelity and record every
//      packet crossing cluster 1's fabric boundary;
//   2. train the ingress/egress LSTM micro models on that trace;
//   3. save the models to disk and load them back (they are reusable
//      artifacts — "once trained they are cheap to run, reusable");
//   4. assemble a 4-cluster simulation where 3 clusters are replaced by
//      the models and compare speed and RTT distributions with the full
//      4-cluster simulation.
//
//   ./build/examples/train_and_approximate
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/run_report.h"
#include "ml/serialize.h"
#include "stats/distance.h"
#include "telemetry/trace.h"

using namespace esim;  // NOLINT

int main() {
  // Record everything: a Chrome trace of the whole workflow (experiment
  // phase spans + per-inference spans from the approximated clusters) and
  // a structured run report. Telemetry does not change the simulation.
  // The ring is sized above the ~80k inference spans the hybrid run emits
  // so the early phase spans survive to serialization.
  telemetry::TraceSession trace{
      telemetry::TraceSession::Config{.events_per_thread = 1 << 18}};
  trace.start();

  core::ExperimentConfig cfg;
  cfg.telemetry = true;
  cfg.net.spec.clusters = 2;  // training topology
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.3;
  cfg.intra_fraction = 0.3;
  cfg.duration = sim::SimTime::from_ms(15);
  cfg.train_duration = sim::SimTime::from_ms(20);
  cfg.model.hidden = 16;
  cfg.model.layers = 2;
  cfg.train.batches = 80;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.learning_rate = 5e-3;
  // Hold out the chronological tail of the boundary trace for a real
  // generalization score (AUC/MAE on unseen data, not training fit).
  cfg.eval_holdout = 0.2;
  // Watch the approximated clusters while the hybrid run executes:
  // shadow-sample 1 in 16 boundary packets against the reference paths
  // and stream per-cluster congestion/drift windows to JSONL.
  cfg.fidelity.enabled = true;
  cfg.fidelity.sample_period = 16;
  cfg.fidelity.jsonl_path = "train_and_approximate_fidelity.jsonl";

  std::printf("== step 1+2: record boundary trace and train ==\n");
  const auto models = core::train_cluster_models(cfg);
  std::printf("boundary crossings : %zu\n", models.boundary_records);
  std::printf("ingress model      : drop-acc %.3f, latency-MAE %.3f\n",
              models.ingress_report.drop_accuracy,
              models.ingress_report.latency_mae);
  std::printf("egress model       : drop-acc %.3f, latency-MAE %.3f\n",
              models.egress_report.drop_accuracy,
              models.egress_report.latency_mae);
  if (models.has_eval) {
    std::printf("held-out ingress   : AUC %.3f, latency-MAE %.3f (%zu rows)\n",
                models.ingress_eval.drop_auc, models.ingress_eval.latency_mae,
                models.ingress_eval.rows);
    std::printf("held-out egress    : AUC %.3f, latency-MAE %.3f (%zu rows)\n",
                models.egress_eval.drop_auc, models.egress_eval.latency_mae,
                models.egress_eval.rows);
  }

  std::printf("\n== step 3: save + reload the trained models ==\n");
  const std::string dir = "/tmp";
  ml::save_parameters(dir + "/esim_ingress.bin",
                      models.ingress->parameters());
  ml::save_parameters(dir + "/esim_egress.bin", models.egress->parameters());
  core::TrainedModels reloaded;
  reloaded.ingress = std::make_unique<approx::MicroModel>(cfg.model);
  reloaded.egress = std::make_unique<approx::MicroModel>(cfg.model);
  ml::load_parameters(dir + "/esim_ingress.bin",
                      reloaded.ingress->parameters());
  ml::load_parameters(dir + "/esim_egress.bin",
                      reloaded.egress->parameters());
  std::printf("saved and reloaded %s/esim_{ingress,egress}.bin\n",
              dir.c_str());

  std::printf("\n== step 4: full vs approximate at 4 clusters ==\n");
  net::ClosSpec run_spec = cfg.net.spec;
  run_spec.clusters = 4;
  const auto full = core::run_full_simulation(cfg, run_spec);
  const auto hybrid = core::run_hybrid_simulation(cfg, run_spec, reloaded);

  std::printf("%-22s %-14s %-14s\n", "", "full", "approximate");
  std::printf("%-22s %-14.3f %-14.3f\n", "wall seconds", full.wall_seconds,
              hybrid.wall_seconds);
  std::printf("%-22s %-14llu %-14llu\n", "events executed",
              static_cast<unsigned long long>(full.events_executed),
              static_cast<unsigned long long>(hybrid.events_executed));
  std::printf("%-22s %-14llu %-14llu\n", "flows completed",
              static_cast<unsigned long long>(full.flows_completed),
              static_cast<unsigned long long>(hybrid.flows_completed));
  if (!full.rtt_cdf.empty() && !hybrid.rtt_cdf.empty()) {
    std::printf("%-22s %-14.6g %-14.6g\n", "RTT p50 (s)",
                full.rtt_cdf.quantile(0.5), hybrid.rtt_cdf.quantile(0.5));
    std::printf("%-22s %-14.6g %-14.6g\n", "RTT p99 (s)",
                full.rtt_cdf.quantile(0.99), hybrid.rtt_cdf.quantile(0.99));
    std::printf("KS distance between RTT CDFs: %.4f\n",
                stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf));
  }
  if (!hybrid.fidelity.is_null()) {
    const auto* rows = hybrid.fidelity.find("rows");
    const auto* viol = hybrid.fidelity.find("violating_clusters");
    std::printf("fidelity observatory: %llu windows streamed, "
                "%zu cluster(s) out of band\n",
                static_cast<unsigned long long>(rows ? rows->as_uint() : 0),
                viol ? viol->size() : 0);
  }
  std::printf("speedup: %.2fx\n",
              hybrid.wall_seconds > 0
                  ? full.wall_seconds / hybrid.wall_seconds
                  : 0.0);

  trace.stop();
  telemetry::RunReport report{"train_and_approximate"};
  core::add_experiment_config(report, cfg, run_spec);
  report.set("train.boundary_records",
             static_cast<std::uint64_t>(models.boundary_records));
  report.set("train.ingress.drop_accuracy",
             models.ingress_report.drop_accuracy);
  report.set("train.egress.drop_accuracy", models.egress_report.drop_accuracy);
  // Held-out generalization scores (training.eval.*) next to the fit
  // numbers above; the hybrid run's fidelity section rides in through
  // add_run_result as hybrid.fidelity.
  core::add_training_eval(report, models);
  core::add_run_result(report, "full", full);
  core::add_run_result(report, "hybrid", hybrid);
  if (!full.rtt_cdf.empty() && !hybrid.rtt_cdf.empty()) {
    report.set("distance.ks", stats::ks_distance(full.rtt_cdf,
                                                 hybrid.rtt_cdf));
  }
  const std::string report_path = "train_and_approximate_report.json";
  const std::string trace_path = "train_and_approximate_trace.json";
  if (report.write(report_path) && trace.write_chrome_json(trace_path)) {
    std::printf("wrote %s and %s\n", report_path.c_str(), trace_path.c_str());
  }
  return 0;
}
