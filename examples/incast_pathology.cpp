// The minimum-window pathology of paper §2.1: "Given enough simultaneous
// connections, it is possible that the fair share of each connection is
// less than their minimum window size. When this occurs, TCP will never
// back off enough to prevent high packet loss."
//
// This example sweeps the number of simultaneous senders targeting one
// server and shows the phase change: once fair share drops below one MSS
// per RTT per sender, the drop rate stays persistently high no matter how
// much TCP backs off — behaviour only visible at sufficient scale, which
// is the paper's argument for simulating large networks at all.
//
//   ./build/examples/incast_pathology
#include <cstdio>
#include <string>
#include <vector>

#include "core/full_builder.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "workload/generator.h"

using namespace esim;  // NOLINT

namespace {

struct Outcome {
  double drop_rate = 0.0;
  double makespan_ms = 0.0;
  double aggregate_goodput_gbps = 0.0;
  std::uint64_t timeouts = 0;
  int completed = 0;
  telemetry::Snapshot metrics;
};

Outcome run_incast(int senders) {
  telemetry::Registry registry;  // outlives the sim publishing into it
  sim::Simulator sim{7};
  sim.set_telemetry(&registry);
  core::NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.tors_per_cluster = 2;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 16;  // plenty of potential senders
  cfg.spec.cores = 2;
  auto net = core::build_full_network(sim, cfg);

  constexpr std::uint64_t kBlock = 256'000;  // bytes per sender
  std::vector<tcp::TcpConnection*> conns;
  Outcome out;
  sim::SimTime last_done;
  sim.schedule_at(sim::SimTime::from_us(10), [&] {
    // All senders start simultaneously into host 0, from other racks.
    for (int i = 0; i < senders; ++i) {
      const net::HostId src =
          static_cast<net::HostId>(16 + (i % 48));  // racks 1..3
      auto* c = net.hosts[src]->open_flow(0, kBlock, i + 1);
      c->on_complete = [&out, &last_done, &sim] {
        ++out.completed;
        last_done = sim.now();
      };
      conns.push_back(c);
    }
  });
  sim.run_until(sim::SimTime::from_sec(20));

  // Loss at the sink's last hop, where incast concentrates.
  const auto& counter = net.host_downlinks[0]->counter();
  out.drop_rate = counter.drop_rate();
  for (auto* c : conns) out.timeouts += c->stats().timeouts;
  out.makespan_ms = last_done.to_seconds() * 1e3;
  if (last_done > sim::SimTime{}) {
    out.aggregate_goodput_gbps = static_cast<double>(senders) * kBlock *
                                 8.0 / last_done.to_seconds() / 1e9;
  }
  out.metrics = registry.snapshot();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "TCP incast / minimum-window pathology (paper §2.1 motivation)\n");
  std::printf("256 KB from N senders to one 10G host, shallow buffers\n\n");
  telemetry::RunReport report{"incast_pathology"};
  std::printf("%-10s %-12s %-14s %-14s %-12s %-10s\n", "senders",
              "drop-rate", "makespan(ms)", "agg-Gbps", "RTOs", "completed");
  for (const int n : {2, 4, 8, 16, 32, 48}) {
    const auto o = run_incast(n);
    std::printf("%-10d %-12.4f %-14.2f %-14.2f %-12llu %-10d\n", n,
                o.drop_rate, o.makespan_ms, o.aggregate_goodput_gbps,
                static_cast<unsigned long long>(o.timeouts), o.completed);
    std::fflush(stdout);
    const std::string row = "senders" + std::to_string(n);
    report.set(row + ".drop_rate", o.drop_rate);
    report.set(row + ".makespan_ms", o.makespan_ms);
    report.set(row + ".aggregate_goodput_gbps", o.aggregate_goodput_gbps);
    report.set(row + ".timeouts", o.timeouts);
    report.set(row + ".completed", static_cast<std::int64_t>(o.completed));
    report.add_metrics(o.metrics, row + ".metrics");
  }
  const std::string report_path = "incast_report.json";
  if (report.write(report_path)) {
    std::printf("\nrun report: %s\n", report_path.c_str());
  }
  std::printf(
      "\nReading: as senders grow, the per-sender fair share falls below\n"
      "one minimum window per RTT; drops and retransmission timeouts stop\n"
      "being transient and become the steady state. Small testbeds never\n"
      "reach this regime — the paper's case for at-scale simulation.\n");
  return 0;
}
