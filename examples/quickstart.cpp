// Quickstart: build a small 3-layer Clos data center, run a web-traffic
// workload over TCP New Reno + ECMP at full packet fidelity, and print
// flow and latency statistics — plus a structured run report
// (quickstart_report.json) built from the telemetry registry.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/full_builder.h"
#include "stats/collectors.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "workload/generator.h"

using namespace esim;  // NOLINT

int main() {
  // A deterministic engine: same seed, same packets, same numbers.
  // Telemetry never perturbs the simulation, only observes it; the
  // registry must outlive the simulator publishing into it.
  telemetry::Registry registry;
  sim::Simulator sim{/*seed=*/42};
  sim.set_telemetry(&registry);

  // Two clusters of 2 ToRs x 2 Aggs x 8 servers, joined by 2 cores —
  // the building block the paper's evaluation uses.
  core::NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.tors_per_cluster = 2;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 2;
  auto net = core::build_full_network(sim, cfg);
  std::printf("built %u hosts, %u switches\n", cfg.spec.total_hosts(),
              cfg.spec.total_switches());

  // Collect RTT samples from every host.
  stats::LatencyCollector rtt;
  for (auto* host : net.hosts) host->set_rtt_collector(&rtt);

  // Offered load: 30% of aggregate host bandwidth, DCTCP-like flow sizes,
  // sources/destinations drawn cluster-aware (40% stay local).
  auto sizes = workload::mini_web_distribution();
  workload::ClusterMixTraffic matrix{cfg.spec, /*intra_fraction=*/0.4};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.3;
  gcfg.stop_at = sim::SimTime::from_ms(20);
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, sizes.get(), &matrix, gcfg);
  gen->start();

  // Run: 20ms of arrivals plus drain time.
  sim.run_until(sim::SimTime::from_ms(100));

  const auto& flows = gen->flows();
  std::printf("\nflows launched   : %llu\n",
              static_cast<unsigned long long>(gen->launched()));
  std::printf("flows completed  : %zu\n", flows.completed_count());
  std::printf("mean goodput     : %.2f Mbit/s\n",
              flows.mean_goodput_bps() / 1e6);
  if (flows.completed_count() > 0) {
    const auto fct = flows.fct_cdf();
    std::printf("FCT p50 / p99    : %.3f ms / %.3f ms\n",
                fct.quantile(0.5) * 1e3, fct.quantile(0.99) * 1e3);
  }
  std::printf("RTT samples      : %llu\n",
              static_cast<unsigned long long>(rtt.summary().count()));
  std::printf("RTT mean / p99   : %.1f us / %.1f us\n",
              rtt.summary().mean() * 1e6, rtt.cdf().quantile(0.99) * 1e6);
  std::printf("events executed  : %llu\n",
              static_cast<unsigned long long>(sim.events_executed()));

  // Where congestion happened: fabric drops per layer.
  std::uint64_t drops = 0;
  for (auto* link : net.host_downlinks) drops += link->counter().dropped;
  for (const auto& [c, link] : net.intra_fabric_links) {
    drops += link->counter().dropped;
  }
  for (const auto& att : net.core_links) {
    drops += att.up->counter().dropped + att.down->counter().dropped;
  }
  std::printf("fabric drops     : %llu\n",
              static_cast<unsigned long long>(drops));

  // Everything printed above — and the per-subsystem counters the
  // components published (sim.*, net.link.*, net.switch.*, tcp.*) — in
  // one versioned JSON document.
  telemetry::RunReport report{"quickstart"};
  report.set("flows.launched", gen->launched());
  report.set("flows.completed",
             static_cast<std::uint64_t>(flows.completed_count()));
  report.set("flows.mean_goodput_bps", flows.mean_goodput_bps());
  report.set("rtt.samples", rtt.summary().count());
  report.set("fabric.drops", drops);
  report.add_metrics(registry.snapshot());
  const std::string path = "quickstart_report.json";
  if (report.write(path)) {
    std::printf("run report       : %s\n", path.c_str());
  }
  return 0;
}
