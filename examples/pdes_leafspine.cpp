// Parallel discrete-event simulation of a leaf-spine fabric (the
// machinery behind the paper's Figure 1 motivation experiment).
//
// Builds one leaf-spine twice — sequentially, and partitioned over a
// conservative window-barrier PDES engine — runs the same workload, and
// reports where the time went (events vs synchronization rounds vs
// cross-partition messages).
//
//   ./build/examples/pdes_leafspine
//
// Set ESIM_TELEMETRY=1 to additionally publish per-partition metrics and
// a Chrome trace (pdes_leafspine_report.json / pdes_leafspine_trace.json).
// Telemetry observes the run without changing it: event counts and sync
// rounds are identical either way, only wall clock can differ.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/full_builder.h"
#include "core/pdes_builder.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"
#include "workload/generator.h"

using namespace esim;  // NOLINT

namespace {

core::NetworkConfig leaf_spine(std::uint32_t n) {
  core::NetworkConfig cfg;
  cfg.spec.clusters = 1;
  cfg.spec.tors_per_cluster = n;
  cfg.spec.aggs_per_cluster = n;
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 0;
  return cfg;
}

}  // namespace

int main() {
  const std::uint32_t tors = 8;
  const auto duration = sim::SimTime::from_ms(2);
  const bool telemetry_on = std::getenv("ESIM_TELEMETRY") != nullptr;
  std::printf("leaf-spine: %u ToRs x %u spines, %u hosts, 2ms simulated%s\n\n",
              tors, tors, tors * 4,
              telemetry_on ? " (telemetry on)" : "");

  telemetry::RunReport report{"pdes_leafspine"};

  // --- sequential reference ---
  {
    // Registry before the simulator: its flushers capture the sim, so the
    // sim must be destroyed first (and the snapshot taken before that).
    telemetry::Registry registry;
    sim::Simulator sim{99};
    if (telemetry_on) sim.set_telemetry(&registry, "seq");
    auto net = core::build_full_network(sim, leaf_spine(tors));
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{net.spec.total_hosts()};
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = 0.25;
    gcfg.stop_at = duration;
    auto* gen = sim.add_component<workload::TrafficGenerator>(
        "gen", net.hosts, sizes.get(), &matrix, gcfg);
    gen->start();
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(duration);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("sequential : %.3fs wall, %llu events (%.0f ev/s)\n", wall,
                static_cast<unsigned long long>(sim.events_executed()),
                sim.events_executed() / wall);
    report.set("sequential.wall_seconds", wall);
    report.set("sequential.events_executed", sim.events_executed());
    if (telemetry_on) report.add_metrics(registry.snapshot());
  }

  // --- conservative PDES over 4 partitions ---
  {
    sim::ParallelEngine::Config ecfg;
    ecfg.num_partitions = 4;
    ecfg.lookahead = sim::SimTime::from_us(1);
    ecfg.seed = 99;
    telemetry::Registry registry;
    telemetry::TraceSession trace;
    sim::ParallelEngine engine{ecfg};
    if (telemetry_on) {
      engine.set_telemetry(&registry);  // before components are built
      trace.start();
    }
    auto net = core::build_leaf_spine_partitioned(engine, leaf_spine(tors));
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{net.spec.total_hosts()};
    std::vector<workload::TrafficGenerator*> gens;
    for (std::uint32_t p = 0; p < engine.num_partitions(); ++p) {
      workload::TrafficGenerator::Config gcfg;
      gcfg.load = 0.25;
      gcfg.stop_at = duration;
      auto* gen =
          engine.partition(p).sim()
              .add_component<workload::TrafficGenerator>(
                  "gen" + std::to_string(p), net.hosts, sizes.get(),
                  &matrix, gcfg);
      gen->admission_filter = [&net, p](net::HostId src, net::HostId) {
        return net.partition_of_host[src] == p;
      };
      gen->start();
      gens.push_back(gen);
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine.run_until(duration);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto& st = engine.stats();
    std::printf("pdes (4 LP): %.3fs wall, %llu events (%.0f ev/s)\n", wall,
                static_cast<unsigned long long>(st.events_executed),
                st.events_executed / wall);
    std::printf("             %llu sync rounds, %llu cross messages, "
                "%llu cross links\n",
                static_cast<unsigned long long>(st.sync_rounds),
                static_cast<unsigned long long>(st.cross_messages),
                static_cast<unsigned long long>(net.cross_partition_links));
    report.set("pdes.wall_seconds", wall);
    report.set("pdes.events_executed", st.events_executed);
    report.set("pdes.sync_rounds", st.sync_rounds);
    report.set("pdes.cross_messages", st.cross_messages);
    report.set("pdes.cross_partition_links", net.cross_partition_links);
    if (telemetry_on) {
      trace.stop();
      report.add_metrics(registry.snapshot());
      const std::string report_path = "pdes_leafspine_report.json";
      const std::string trace_path = "pdes_leafspine_trace.json";
      if (report.write(report_path) && trace.write_chrome_json(trace_path)) {
        std::printf("\ntelemetry: wrote %s and %s\n", report_path.c_str(),
                    trace_path.c_str());
      }
    }
    std::printf(
        "\nOn densely meshed fabrics most ToR<->spine links cross\n"
        "partitions, so the window-barrier engine synchronizes every\n"
        "lookahead (= 1us of virtual time). That synchronization tax is\n"
        "what Figure 1 of the paper measures — and what the ML\n"
        "approximation sidesteps by removing the fabric entirely.\n");
  }
  return 0;
}
