#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/component.h"

namespace esim::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime{});
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, RunExecutesAllEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(SimTime::from_us(i), [&] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_EQ(sim.now(), SimTime::from_us(5));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_ms(3), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_ms(3));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_at(SimTime::from_us(10), [&] {
    sim.schedule_in(SimTime::from_us(5), [&] { times.push_back(sim.now().ns()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 15'000);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::from_us(10), [&] {
    EXPECT_THROW(sim.schedule_at(SimTime::from_us(5), [] {}),
                 std::logic_error);
  });
  sim.run();
  EXPECT_THROW(sim.schedule_in(SimTime::from_ns(-1), [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsBeforeBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::from_us(1), [&] { ++count; });
  sim.schedule_at(SimTime::from_us(2), [&] { ++count; });
  sim.schedule_at(SimTime::from_us(3), [&] { ++count; });
  sim.run_until(SimTime::from_us(2));  // events at exactly 2us not run
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), SimTime::from_us(2));
  sim.run_until(SimTime::from_us(10));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::from_us(10));
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime::from_sec(2));
  EXPECT_EQ(sim.now(), SimTime::from_sec(2));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::from_us(i), [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  sim.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_at(SimTime::from_us(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsScheduledCounter) {
  Simulator sim;
  sim.schedule_at(SimTime::from_us(1), [] {});
  auto h = sim.schedule_at(SimTime::from_us(2), [] {});
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.events_scheduled(), 2u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(Simulator, DeterministicTieBreak) {
  // Two same-time events run in scheduling order, deterministically.
  for (int trial = 0; trial < 3; ++trial) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(SimTime::from_us(1), [&] { order.push_back(1); });
    sim.schedule_at(SimTime::from_us(1), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
  }
}

class Pinger : public Component {
 public:
  Pinger(Simulator& sim, std::string name) : Component(sim, std::move(name)) {}

  void start(SimTime interval, int n) {
    interval_ = interval;
    remaining_ = n;
    tick();
  }

  int fired = 0;

 private:
  void tick() {
    if (remaining_-- <= 0) return;
    ++fired;
    schedule_in(interval_, [this] { tick(); });
  }

  SimTime interval_;
  int remaining_ = 0;
};

TEST(Simulator, ComponentRegistryAndLookup) {
  Simulator sim;
  auto* p = sim.add_component<Pinger>("ping0");
  EXPECT_EQ(sim.find_component("ping0"), p);
  EXPECT_EQ(sim.find_component("nope"), nullptr);
  EXPECT_EQ(sim.components().size(), 1u);
  EXPECT_EQ(p->name(), "ping0");
}

TEST(Simulator, ComponentSelfScheduling) {
  Simulator sim;
  auto* p = sim.add_component<Pinger>("ping0");
  p->start(SimTime::from_ms(1), 7);
  sim.run();
  EXPECT_EQ(p->fired, 7);
  EXPECT_EQ(sim.now(), SimTime::from_ms(7));
}

TEST(Simulator, ComponentRngStreamsAreStable) {
  // Adding a second component must not change the first one's stream.
  Simulator a{5}, b{5};
  auto* pa = a.add_component<Pinger>("x");
  auto* pb = b.add_component<Pinger>("x");
  (void)b.add_component<Pinger>("y");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(pa->rng().next_u64(), pb->rng().next_u64());
  }
}

TEST(Simulator, SameSeedSameTrajectory) {
  auto run = [](std::uint64_t seed) {
    Simulator sim{seed};
    std::vector<std::uint64_t> draws;
    std::function<void()> step = [&] {
      draws.push_back(sim.rng().uniform_int(1000));
      if (draws.size() < 50) {
        sim.schedule_in(SimTime::from_us(sim.rng().uniform_int(100) + 1),
                        step);
      }
    };
    sim.schedule_in(SimTime::from_us(1), step);
    sim.run();
    return draws;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Logger, RespectsLevelAndSink) {
  Simulator sim;
  std::vector<std::string> lines;
  sim.logger().set_sink([&](const std::string& l) { lines.push_back(l); });
  sim.logger().set_level(LogLevel::Info);
  sim.logger().log(LogLevel::Debug, sim.now(), "src", "hidden");
  sim.logger().log(LogLevel::Info, sim.now(), "src", "shown");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("shown"), std::string::npos);
  EXPECT_NE(lines[0].find("INFO"), std::string::npos);
  EXPECT_TRUE(sim.logger().enabled(LogLevel::Warn));
  EXPECT_FALSE(sim.logger().enabled(LogLevel::Trace));
}

}  // namespace
}  // namespace esim::sim
