// Tests for extension features: ECN marking, model serialization reuse,
// ApproxCluster edge cases, and the virtual drop-tail backlog cap.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "core/approx_cluster.h"
#include "core/conflict.h"
#include "core/hybrid_builder.h"
#include "ml/serialize.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace esim {
namespace {

using net::Link;
using net::Packet;
using sim::SimTime;
using sim::Simulator;

class CollectSink : public net::PacketHandler {
 public:
  void handle_packet(Packet pkt) override { packets.push_back(pkt); }
  std::vector<Packet> packets;
};

Packet data_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.flow = net::FlowKey{0, 1, 100, 80};
  p.payload = 1460;
  return p;
}

TEST(EcnMarking, MarksWhenQueueAboveThreshold) {
  Simulator sim;
  CollectSink sink;
  Link::Config cfg;
  cfg.bandwidth_bps = 1e8;  // slow: queue builds instantly
  cfg.queue_capacity_bytes = 100'000;
  cfg.ecn_threshold_bytes = 3'000;  // ~2 packets
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  sim.schedule_at(SimTime::from_us(1), [&] {
    for (int i = 0; i < 6; ++i) link->send(data_packet(i + 1));
  });
  sim.run();
  ASSERT_EQ(sink.packets.size(), 6u);
  // First packets see an empty/shallow queue: unmarked. Later ones see
  // >= 3000B queued: marked.
  EXPECT_FALSE(sink.packets[0].ecn);
  EXPECT_FALSE(sink.packets[1].ecn);
  int marked = 0;
  for (const auto& p : sink.packets) marked += p.ecn ? 1 : 0;
  EXPECT_GE(marked, 3);
}

TEST(EcnMarking, DisabledByDefault) {
  Simulator sim;
  CollectSink sink;
  Link::Config cfg;
  cfg.bandwidth_bps = 1e8;
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  sim.schedule_at(SimTime::from_us(1), [&] {
    for (int i = 0; i < 10; ++i) link->send(data_packet(i + 1));
  });
  sim.run();
  for (const auto& p : sink.packets) EXPECT_FALSE(p.ecn);
}

TEST(MicroModelSerialize, ReloadedModelPredictsIdentically) {
  approx::MicroModel::Config cfg;
  cfg.hidden = 12;
  cfg.layers = 2;
  cfg.seed = 77;
  approx::MicroModel original{cfg};
  original.set_latency_normalization(2.5, 0.8);

  const std::string path =
      ::testing::TempDir() + "/esim_micro_roundtrip.bin";
  ml::save_parameters(path, original.parameters());

  approx::MicroModel::Config other = cfg;
  other.seed = 999;  // different init; must be fully overwritten by load
  approx::MicroModel reloaded{other};
  ml::load_parameters(path, reloaded.parameters());
  reloaded.recompile();  // sessions snapshot weights; re-snapshot the load

  // Identical streaming predictions over a feature sequence.
  approx::PacketFeatures f;
  for (int i = 0; i < 32; ++i) {
    f.v[0] = 0.01 * i;
    f.v[5] = 0.3;
    f.v[9] = 1.0;
    const auto a = original.predict(f);
    const auto b = reloaded.predict(f);
    EXPECT_DOUBLE_EQ(a.drop_probability, b.drop_probability) << i;
    EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds) << i;
  }
  std::remove(path.c_str());
}

TEST(DeliverySerializerBacklog, RefusesBeyondCap) {
  core::DeliverySerializer s{10e9};
  // Fill 100us of backlog with 1250B packets (1us each).
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        s.try_reserve(SimTime::from_us(10), 1250, SimTime::from_us(120))
            .has_value());
  }
  // next_free is now 10us + 100us = 110us; a packet wanting 10us with a
  // 120us cap still fits...
  EXPECT_TRUE(s.try_reserve(SimTime::from_us(10), 1250,
                            SimTime::from_us(120))
                  .has_value());
  // ...but with a 50us cap it must be refused, and refusal reserves
  // nothing.
  const auto before = s.next_free();
  EXPECT_FALSE(s.try_reserve(SimTime::from_us(10), 1250,
                             SimTime::from_us(50))
                   .has_value());
  EXPECT_EQ(s.next_free(), before);
}

TEST(ApproxCluster, RejectsForeignHostAttach) {
  Simulator sim;
  core::ApproxCluster::Config cfg;
  cfg.spec.clusters = 2;
  cfg.spec.cores = 2;
  cfg.cluster = 1;
  approx::MicroModel::Config mcfg;
  mcfg.hidden = 4;
  mcfg.layers = 1;
  approx::MicroModel model{mcfg};
  auto* cluster =
      sim.add_component<core::ApproxCluster>("ac", cfg, model, model);
  Simulator host_sim;  // host object only; never run
  auto* foreign = sim.add_component<tcp::Host>("h0", 0);  // cluster 0 host
  EXPECT_THROW(cluster->attach_host(0, foreign), std::invalid_argument);
}

TEST(ApproxCluster, BacklogDropsCountedUnderOverload) {
  // A model predicting near-zero latency funnels packets into one host
  // faster than 10G; the virtual drop-tail must engage.
  Simulator sim{3};
  core::HybridConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.approx.max_port_backlog = SimTime::from_us(20);  // tight cap
  approx::MicroModel::Config mcfg;
  mcfg.hidden = 4;
  mcfg.layers = 1;
  approx::MicroModel model{mcfg};
  model.drop_head().weight().zero();
  model.drop_head().bias().at(0, 0) = -20.0;  // never drop by prediction
  model.latency_head().weight().zero();
  model.set_latency_normalization(std::log(1.0), 1.0);  // ~1us latency
  auto net = core::build_hybrid_network(sim, cfg, model, model);
  // Blast from 6 full-fidelity hosts into one approximated host.
  sim.schedule_at(SimTime::from_us(5), [&] {
    for (net::HostId h = 0; h < 6; ++h) {
      net.hosts[h]->open_flow(12, 400'000, h + 1);
    }
  });
  sim.run_until(SimTime::from_ms(200));
  EXPECT_GT(net.clusters[1]->stats().backlog_drops, 0u);
}

}  // namespace
}  // namespace esim
