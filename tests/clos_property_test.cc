// Property tests over Clos topologies of many shapes: path-replay
// validity, and the stronger end-to-end invariant that every injected
// packet is forwarded by the built network to exactly its destination
// host along the replayed path.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/full_builder.h"
#include "net/clos.h"
#include "sim/random.h"

namespace esim::net {
namespace {

struct Shape {
  std::uint32_t clusters, tors, aggs, hosts_per_tor, cores;
};

ClosSpec to_spec(const Shape& s) {
  ClosSpec spec;
  spec.clusters = s.clusters;
  spec.tors_per_cluster = s.tors;
  spec.aggs_per_cluster = s.aggs;
  spec.hosts_per_tor = s.hosts_per_tor;
  spec.cores = s.cores;
  spec.validate();
  return spec;
}

class ClosShapeProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(ClosShapeProperty, PathReplayInvariants) {
  const auto spec = to_spec(GetParam());
  sim::Rng rng{GetParam().clusters * 131 + GetParam().tors};
  for (int trial = 0; trial < 200; ++trial) {
    FlowKey flow;
    flow.src_host = static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
    do {
      flow.dst_host =
          static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
    } while (flow.dst_host == flow.src_host);
    flow.src_port = static_cast<std::uint16_t>(rng.uniform_int(50'000));
    flow.dst_port = 80;

    const auto path = compute_path(spec, flow);
    ASSERT_GE(path.len, 1u);
    ASSERT_LE(path.len, 5u);
    // First hop is always the source ToR; last is the destination ToR.
    EXPECT_EQ(path.hops[0], spec.tor_of_host(flow.src_host));
    EXPECT_EQ(path.hops[path.len - 1], spec.tor_of_host(flow.dst_host));
    // Layer pattern by length.
    if (path.len == 1) {
      EXPECT_EQ(spec.tor_of_host(flow.src_host),
                spec.tor_of_host(flow.dst_host));
    } else if (path.len == 3) {
      EXPECT_TRUE(spec.is_agg(path.hops[1]));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[1]),
                spec.cluster_of_host(flow.src_host));
    } else {
      ASSERT_EQ(path.len, 5u);
      EXPECT_TRUE(spec.is_agg(path.hops[1]));
      EXPECT_TRUE(spec.is_core(path.hops[2]));
      EXPECT_TRUE(spec.is_agg(path.hops[3]));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[1]),
                spec.cluster_of_host(flow.src_host));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[3]),
                spec.cluster_of_host(flow.dst_host));
    }
    // Replay is deterministic.
    EXPECT_EQ(compute_path(spec, flow), path);
  }
}

TEST_P(ClosShapeProperty, BuiltNetworkDeliversToExactDestination) {
  const auto spec = to_spec(GetParam());
  sim::Simulator sim{7};
  core::NetworkConfig cfg;
  cfg.spec = spec;
  auto net = core::build_full_network(sim, cfg);

  // Tap every host downlink: note which host each packet reaches.
  std::vector<std::uint64_t> delivered_to(spec.total_hosts(), 0);
  std::uint64_t deliveries = 0;
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    net.host_downlinks[h]->on_transmit =
        [&delivered_to, &deliveries, h](const Packet& pkt, sim::SimTime) {
          EXPECT_EQ(pkt.flow.dst_host, h)
              << "packet for host " << pkt.flow.dst_host
              << " delivered to host " << h;
          ++delivered_to[h];
          ++deliveries;
        };
  }

  // Inject raw packets at source ToRs for random pairs (below any
  // congestion, so nothing drops).
  sim::Rng rng{99};
  std::uint64_t injected = 0;
  sim.schedule_at(sim::SimTime::from_us(1), [&] {
    for (int i = 0; i < 300; ++i) {
      Packet pkt;
      pkt.id = static_cast<std::uint64_t>(i) + 1;
      pkt.flow.src_host =
          static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
      do {
        pkt.flow.dst_host =
            static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
      } while (pkt.flow.dst_host == pkt.flow.src_host);
      pkt.flow.src_port = static_cast<std::uint16_t>(i);
      pkt.flow.dst_port = 80;
      pkt.payload = 100;
      net.switches[spec.tor_of_host(pkt.flow.src_host)]->handle_packet(pkt);
      ++injected;
    }
  });
  sim.run();
  EXPECT_EQ(deliveries, injected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClosShapeProperty,
    ::testing::Values(Shape{2, 2, 2, 4, 2},     // the paper's unit
                      Shape{2, 1, 1, 2, 1},     // degenerate minimum
                      Shape{3, 2, 3, 2, 2},     // asymmetric agg layer
                      Shape{4, 4, 2, 2, 4},     // wide ToR layer
                      Shape{8, 2, 2, 4, 2},     // many clusters
                      Shape{1, 4, 4, 4, 0},     // leaf-spine
                      Shape{1, 8, 3, 2, 0},     // narrow spine
                      Shape{2, 3, 2, 5, 3}),    // odd sizes everywhere
    [](const ::testing::TestParamInfo<Shape>& info) {
      const auto& s = info.param;
      return "c" + std::to_string(s.clusters) + "t" + std::to_string(s.tors) +
             "a" + std::to_string(s.aggs) + "h" +
             std::to_string(s.hosts_per_tor) + "k" + std::to_string(s.cores);
    });

}  // namespace
}  // namespace esim::net
