// Property tests over Clos topologies of many shapes: path-replay
// validity, flow conservation through every switch and link (including
// under engineered congestion drops), ECMP symmetry/spread, and the
// stronger end-to-end invariant that every injected packet is forwarded
// by the built network to exactly its destination host along the
// replayed path.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/full_builder.h"
#include "net/clos.h"
#include "net/ecmp.h"
#include "sim/random.h"

namespace esim::net {
namespace {

struct Shape {
  std::uint32_t clusters, tors, aggs, hosts_per_tor, cores;
};

ClosSpec to_spec(const Shape& s) {
  ClosSpec spec;
  spec.clusters = s.clusters;
  spec.tors_per_cluster = s.tors;
  spec.aggs_per_cluster = s.aggs;
  spec.hosts_per_tor = s.hosts_per_tor;
  spec.cores = s.cores;
  spec.validate();
  return spec;
}

class ClosShapeProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(ClosShapeProperty, PathReplayInvariants) {
  const auto spec = to_spec(GetParam());
  sim::Rng rng{GetParam().clusters * 131 + GetParam().tors};
  for (int trial = 0; trial < 200; ++trial) {
    FlowKey flow;
    flow.src_host = static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
    do {
      flow.dst_host =
          static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
    } while (flow.dst_host == flow.src_host);
    flow.src_port = static_cast<std::uint16_t>(rng.uniform_int(50'000));
    flow.dst_port = 80;

    const auto path = compute_path(spec, flow);
    ASSERT_GE(path.len, 1u);
    ASSERT_LE(path.len, 5u);
    // First hop is always the source ToR; last is the destination ToR.
    EXPECT_EQ(path.hops[0], spec.tor_of_host(flow.src_host));
    EXPECT_EQ(path.hops[path.len - 1], spec.tor_of_host(flow.dst_host));
    // Layer pattern by length.
    if (path.len == 1) {
      EXPECT_EQ(spec.tor_of_host(flow.src_host),
                spec.tor_of_host(flow.dst_host));
    } else if (path.len == 3) {
      EXPECT_TRUE(spec.is_agg(path.hops[1]));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[1]),
                spec.cluster_of_host(flow.src_host));
    } else {
      ASSERT_EQ(path.len, 5u);
      EXPECT_TRUE(spec.is_agg(path.hops[1]));
      EXPECT_TRUE(spec.is_core(path.hops[2]));
      EXPECT_TRUE(spec.is_agg(path.hops[3]));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[1]),
                spec.cluster_of_host(flow.src_host));
      EXPECT_EQ(spec.cluster_of_switch(path.hops[3]),
                spec.cluster_of_host(flow.dst_host));
    }
    // Replay is deterministic.
    EXPECT_EQ(compute_path(spec, flow), path);
  }
}

TEST_P(ClosShapeProperty, BuiltNetworkDeliversToExactDestination) {
  const auto spec = to_spec(GetParam());
  sim::Simulator sim{7};
  core::NetworkConfig cfg;
  cfg.spec = spec;
  auto net = core::build_full_network(sim, cfg);

  // Tap every host downlink: note which host each packet reaches.
  std::vector<std::uint64_t> delivered_to(spec.total_hosts(), 0);
  std::uint64_t deliveries = 0;
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    net.host_downlinks[h]->on_transmit =
        [&delivered_to, &deliveries, h](const Packet& pkt, sim::SimTime) {
          EXPECT_EQ(pkt.flow.dst_host, h)
              << "packet for host " << pkt.flow.dst_host
              << " delivered to host " << h;
          ++delivered_to[h];
          ++deliveries;
        };
  }

  // Inject raw packets at source ToRs for random pairs (below any
  // congestion, so nothing drops).
  sim::Rng rng{99};
  std::uint64_t injected = 0;
  sim.schedule_at(sim::SimTime::from_us(1), [&] {
    for (int i = 0; i < 300; ++i) {
      Packet pkt;
      pkt.id = static_cast<std::uint64_t>(i) + 1;
      pkt.flow.src_host =
          static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
      do {
        pkt.flow.dst_host =
            static_cast<HostId>(rng.uniform_int(spec.total_hosts()));
      } while (pkt.flow.dst_host == pkt.flow.src_host);
      pkt.flow.src_port = static_cast<std::uint16_t>(i);
      pkt.flow.dst_port = 80;
      pkt.payload = 100;
      net.switches[spec.tor_of_host(pkt.flow.src_host)]->handle_packet(pkt);
      ++injected;
    }
  });
  sim.run();
  EXPECT_EQ(deliveries, injected);
}

// The node a link feeds, parsed from its "<src>-><dst>" builder name.
std::string link_dst_name(const Link* link) {
  const std::string& n = link->name();
  const auto pos = n.find("->");
  EXPECT_NE(pos, std::string::npos) << "unparseable link name: " << n;
  return n.substr(pos + 2);
}

// Flow conservation: every packet offered to the fabric is accounted for —
// at each link (sent == delivered + dropped once queues drain), at each
// switch (packets in == packets forwarded + packets dropped), and end to
// end (injected == host deliveries + drops). Convergent bursts from every
// remote ToR onto one host engineer real congestion drops where the shape
// allows them, so the identity is checked on the lossy path too.
TEST_P(ClosShapeProperty, FlowConservationThroughSwitchesAndLinks) {
  const auto spec = to_spec(GetParam());
  sim::Simulator sim{11};
  core::NetworkConfig cfg;
  cfg.spec = spec;
  auto net = core::build_full_network(sim, cfg);

  // Enumerate every link: each switch's output ports plus host uplinks.
  // Group them by receiving switch (links into hosts are terminal).
  std::map<std::string, SwitchId> switch_by_name;
  for (SwitchId s = 0; s < spec.total_switches(); ++s) {
    switch_by_name[net.switches[s]->name()] = s;
  }
  std::vector<std::vector<const Link*>> in_links(spec.total_switches());
  std::vector<const Link*> all_links;
  auto note_link = [&](const Link* link) {
    all_links.push_back(link);
    const auto it = switch_by_name.find(link_dst_name(link));
    if (it != switch_by_name.end()) in_links[it->second].push_back(link);
  };
  for (SwitchId s = 0; s < spec.total_switches(); ++s) {
    for (std::uint32_t p = 0; p < net.switches[s]->port_count(); ++p) {
      note_link(net.switches[s]->port(p));
    }
  }
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    note_link(net.host_uplinks[h]);
  }

  // All remote hosts burst toward one victim at the same instant. With
  // two or more source ToRs the victim's downlink is oversubscribed and
  // must shed load; with fewer the same identities hold drop-free.
  const HostId victim = 0;
  std::vector<std::uint64_t> injected_at(spec.total_switches(), 0);
  std::uint64_t injected = 0;
  sim.schedule_at(sim::SimTime::from_us(1), [&] {
    std::uint64_t next_id = 1;
    for (HostId src = 0; src < spec.total_hosts(); ++src) {
      if (spec.tor_of_host(src) == spec.tor_of_host(victim)) continue;
      for (int i = 0; i < 300; ++i) {
        Packet pkt;
        pkt.id = next_id++;
        pkt.flow.src_host = src;
        pkt.flow.dst_host = victim;
        pkt.flow.src_port = static_cast<std::uint16_t>(i);
        pkt.flow.dst_port = 80;
        pkt.payload = kMss;
        net.switches[spec.tor_of_host(src)]->handle_packet(pkt);
        ++injected_at[spec.tor_of_host(src)];
        ++injected;
      }
    }
  });
  sim.run();
  ASSERT_GT(injected, 0u);

  // Per-link: nothing in flight after the run, and every offered packet
  // either finished the wire or was counted dropped.
  std::uint64_t link_drops = 0;
  for (const Link* link : all_links) {
    EXPECT_EQ(link->queued_packets(), 0u) << link->name();
    EXPECT_FALSE(link->busy()) << link->name();
    EXPECT_EQ(link->counter().sent,
              link->counter().delivered + link->counter().dropped)
        << link->name();
    link_drops += link->counter().dropped;
  }

  // Per-switch: packets in (injected here + delivered by incoming links)
  // match packets out (forwarded, i.e. offered to some port) + routeless
  // drops, and forwarding tallies with the ports' own send counters.
  std::uint64_t switch_drops = 0;
  for (SwitchId s = 0; s < spec.total_switches(); ++s) {
    std::uint64_t in = injected_at[s];
    for (const Link* link : in_links[s]) in += link->counter().delivered;
    const auto& c = net.switches[s]->counter();
    EXPECT_EQ(in, c.sent + c.dropped) << net.switches[s]->name();
    std::uint64_t out_offers = 0;
    for (std::uint32_t p = 0; p < net.switches[s]->port_count(); ++p) {
      out_offers += net.switches[s]->port(p)->counter().sent;
    }
    EXPECT_EQ(c.sent, out_offers) << net.switches[s]->name();
    switch_drops += c.dropped;
  }
  EXPECT_EQ(switch_drops, 0u) << "full FIBs must route every host";

  // End to end: injected packets either reached a host NIC or were
  // dropped at a queue. The victim's ToR saw a >= 2:1 fan-in whenever the
  // shape has at least two remote ToRs, so drops must have occurred.
  std::uint64_t host_deliveries = 0;
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    host_deliveries += net.host_downlinks[h]->counter().delivered;
  }
  EXPECT_EQ(injected, host_deliveries + link_drops);
  if (spec.total_tors() >= 3) {
    EXPECT_GT(link_drops, 0u)
        << "convergent burst should overflow the victim downlink";
  }
}

// ECMP invariants: the hash stays in range and covers every equal-cost
// choice, forward/reverse paths of a flow are structurally symmetric, and
// walking the built network's FIBs hop by hop replays compute_path
// exactly — on a freshly rebuilt network too (rebuild determinism).
TEST_P(ClosShapeProperty, EcmpPathSymmetryAndFibReplay) {
  const auto spec = to_spec(GetParam());

  // Range + coverage: over many flows, every index in [0, n) is chosen.
  sim::Rng rng{GetParam().aggs * 977 + GetParam().cores};
  for (std::uint32_t n : {1u, 2u, 3u, 5u, 8u}) {
    std::set<std::uint32_t> seen;
    for (int trial = 0; trial < 400; ++trial) {
      FlowKey flow;
      flow.src_host = static_cast<HostId>(rng.uniform_int(1 << 16));
      flow.dst_host = static_cast<HostId>(rng.uniform_int(1 << 16));
      flow.src_port = static_cast<std::uint16_t>(rng.uniform_int(50'000));
      flow.dst_port = 80;
      const std::uint32_t idx = ecmp_index(flow, /*deciding_switch=*/3, n);
      ASSERT_LT(idx, n);
      seen.insert(idx);
    }
    EXPECT_EQ(seen.size(), n) << "ECMP must use all " << n << " choices";
  }

  // Two identically-specced networks for the FIB walk: FIB construction
  // must be a pure function of the spec, not of build order or RNG state.
  sim::Simulator sim_a{21}, sim_b{22};
  core::NetworkConfig cfg;
  cfg.spec = spec;
  auto net_a = core::build_full_network(sim_a, cfg);
  auto net_b = core::build_full_network(sim_b, cfg);

  std::map<std::string, SwitchId> switch_by_name;
  for (SwitchId s = 0; s < spec.total_switches(); ++s) {
    switch_by_name[net_a.switches[s]->name()] = s;
  }
  // Follows route_port decisions from the source ToR until the packet
  // would leave the fabric, returning the switch sequence.
  auto walk = [&](const core::BuiltNetwork& net, const FlowKey& flow) {
    std::vector<SwitchId> hops;
    SwitchId cur = spec.tor_of_host(flow.src_host);
    while (true) {
      hops.push_back(cur);
      const Switch* sw = net.switches[cur];
      const Link* out = sw->port(sw->route_port(flow));
      const auto it = switch_by_name.find(link_dst_name(out));
      if (it == switch_by_name.end()) {  // delivered to a host NIC
        EXPECT_EQ(link_dst_name(out), spec.host_name(flow.dst_host));
        return hops;
      }
      cur = it->second;
      EXPECT_LE(hops.size(), 5u) << "forwarding loop";
    }
  };

  sim::Rng flows{GetParam().clusters * 311 + GetParam().hosts_per_tor};
  for (int trial = 0; trial < 100; ++trial) {
    FlowKey flow;
    flow.src_host =
        static_cast<HostId>(flows.uniform_int(spec.total_hosts()));
    do {
      flow.dst_host =
          static_cast<HostId>(flows.uniform_int(spec.total_hosts()));
    } while (flow.dst_host == flow.src_host);
    flow.src_port = static_cast<std::uint16_t>(flows.uniform_int(50'000));
    flow.dst_port = 80;

    // The built FIBs replay compute_path hop for hop, on both builds.
    const ClosPath path = compute_path(spec, flow);
    const auto hops_a = walk(net_a, flow);
    const auto hops_b = walk(net_b, flow);
    ASSERT_EQ(hops_a.size(), path.len);
    for (std::uint32_t i = 0; i < path.len; ++i) {
      EXPECT_EQ(hops_a[i], path.hops[i]);
    }
    EXPECT_EQ(hops_a, hops_b) << "rebuild changed forwarding";

    // Structural symmetry: the reverse flow takes a path of the same
    // shape through mirrored layers — same length, endpoint ToRs
    // swapped, and (for inter-cluster paths) agg hops in the clusters of
    // the forward path's far/near aggs. The *chosen* agg/core may differ
    // (the ECMP hash is directional); the layer structure may not.
    const ClosPath rev = compute_path(spec, flow.reversed());
    ASSERT_EQ(rev.len, path.len);
    EXPECT_EQ(rev.hops[0], path.hops[path.len - 1]);
    EXPECT_EQ(rev.hops[rev.len - 1], path.hops[0]);
    if (path.len == 5) {
      EXPECT_EQ(spec.cluster_of_switch(rev.hops[1]),
                spec.cluster_of_switch(path.hops[3]));
      EXPECT_EQ(spec.cluster_of_switch(rev.hops[3]),
                spec.cluster_of_switch(path.hops[1]));
      EXPECT_TRUE(spec.is_core(rev.hops[2]));
    } else if (path.len == 3) {
      EXPECT_EQ(spec.cluster_of_switch(rev.hops[1]),
                spec.cluster_of_switch(path.hops[1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClosShapeProperty,
    ::testing::Values(Shape{2, 2, 2, 4, 2},     // the paper's unit
                      Shape{2, 1, 1, 2, 1},     // degenerate minimum
                      Shape{3, 2, 3, 2, 2},     // asymmetric agg layer
                      Shape{4, 4, 2, 2, 4},     // wide ToR layer
                      Shape{8, 2, 2, 4, 2},     // many clusters
                      Shape{1, 4, 4, 4, 0},     // leaf-spine
                      Shape{1, 8, 3, 2, 0},     // narrow spine
                      Shape{2, 3, 2, 5, 3}),    // odd sizes everywhere
    [](const ::testing::TestParamInfo<Shape>& info) {
      const auto& s = info.param;
      return "c" + std::to_string(s.clusters) + "t" + std::to_string(s.tors) +
             "a" + std::to_string(s.aggs) + "h" +
             std::to_string(s.hosts_per_tor) + "k" + std::to_string(s.cores);
    });

}  // namespace
}  // namespace esim::net
