// Property tests of the TCP stack: reliability invariants under
// parameterized random loss.
//
// The invariant under test is TCP's contract: for ANY pattern of packet
// loss (as long as loss is not permanent), the receiver obtains exactly
// the flow's bytes, in order, exactly once, and the sender learns of it.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <tuple>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/host.h"

namespace esim::tcp {
namespace {

using net::Link;
using net::Packet;
using net::PacketHandler;
using sim::SimTime;
using sim::Simulator;

/// Drops packets i.i.d. with probability p, from a deterministic stream.
class BernoulliLoss : public PacketHandler {
 public:
  BernoulliLoss(PacketHandler* inner, double p, std::uint64_t seed)
      : inner_{inner}, p_{p}, rng_{seed} {}
  void handle_packet(Packet pkt) override {
    if (rng_.bernoulli(p_)) return;
    inner_->handle_packet(std::move(pkt));
  }

 private:
  PacketHandler* inner_;
  double p_;
  sim::Rng rng_;
};

struct LossCase {
  double loss_rate;
  std::uint64_t flow_bytes;
  bool delayed_ack;
};

class TcpLossProperty : public ::testing::TestWithParam<LossCase> {};

TEST_P(TcpLossProperty, DeliversExactlyTheFlowBytes) {
  const auto param = GetParam();
  Simulator sim{static_cast<std::uint64_t>(param.loss_rate * 1000) + 7};
  TcpConnection::Config tcp_cfg;
  tcp_cfg.delayed_ack = param.delayed_ack;
  // Loss-friendly timers so lossy cases converge quickly.
  tcp_cfg.rto.min = SimTime::from_ms(2);
  tcp_cfg.rto.initial = SimTime::from_ms(10);
  auto* a = sim.add_component<Host>("a", 0, tcp_cfg);
  auto* b = sim.add_component<Host>("b", 1, tcp_cfg);
  BernoulliLoss to_b{b, param.loss_rate, 11};
  BernoulliLoss to_a{a, param.loss_rate, 13};
  Link::Config lc;
  lc.bandwidth_bps = 10e9;
  lc.propagation = SimTime::from_us(5);
  lc.queue_capacity_bytes = 4'000'000;
  auto* ab = sim.add_component<Link>("ab", lc, &to_b);
  auto* ba = sim.add_component<Link>("ba", lc, &to_a);
  a->set_uplink(ab);
  b->set_uplink(ba);

  std::uint64_t received = 0;
  std::uint64_t deliveries = 0;
  b->on_accept = [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) {
      received += d;
      ++deliveries;
    };
  };
  bool complete = false;
  TcpConnection* conn = nullptr;
  sim.schedule_at(SimTime::from_us(1), [&] {
    conn = a->open_flow(1, param.flow_bytes, 1);
    conn->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_sec(120));

  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(complete) << "flow stalled at loss rate " << param.loss_rate;
  // Exactly-once, in-order delivery: cumulative bytes equal the flow.
  EXPECT_EQ(received, param.flow_bytes);
  EXPECT_EQ(conn->bytes_done(), param.flow_bytes);
  if (param.loss_rate == 0.0) {
    EXPECT_EQ(conn->stats().retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, TcpLossProperty,
    ::testing::Values(LossCase{0.0, 200'000, false},
                      LossCase{0.001, 200'000, false},
                      LossCase{0.01, 200'000, false},
                      LossCase{0.05, 100'000, false},
                      LossCase{0.10, 50'000, false},
                      LossCase{0.20, 20'000, false},
                      LossCase{0.01, 200'000, true},
                      LossCase{0.05, 100'000, true}),
    [](const ::testing::TestParamInfo<LossCase>& info) {
      return "loss" +
             std::to_string(
                 static_cast<int>(info.param.loss_rate * 1000)) +
             (info.param.delayed_ack ? "_delack" : "") + "_bytes" +
             std::to_string(info.param.flow_bytes);
    });

struct SizeCase {
  std::uint64_t bytes;
};

class TcpSizeProperty : public ::testing::TestWithParam<SizeCase> {};

TEST_P(TcpSizeProperty, AnyFlowSizeCompletesCleanly) {
  // Edge sizes: sub-MSS, exactly one MSS, MSS+1, many segments, odd tail.
  const auto bytes = GetParam().bytes;
  Simulator sim{bytes + 3};
  auto* a = sim.add_component<Host>("a", 0);
  auto* b = sim.add_component<Host>("b", 1);
  Link::Config lc;
  lc.queue_capacity_bytes = 4'000'000;
  auto* ab = sim.add_component<Link>("ab", lc, b);
  auto* ba = sim.add_component<Link>("ba", lc, a);
  a->set_uplink(ab);
  b->set_uplink(ba);
  std::uint64_t received = 0;
  b->on_accept = [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) { received += d; };
  };
  bool complete = false;
  TcpConnection* conn = nullptr;
  sim.schedule_at(SimTime::from_us(1), [&] {
    conn = a->open_flow(1, bytes, 1);
    conn->on_complete = [&] { complete = true; };
  });
  sim.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(received, bytes);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state(), TcpState::Done);
  EXPECT_EQ(conn->stats().timeouts, 0u);
}

/// Swaps every Nth packet with its successor (delays it until the next
/// packet has been delivered), injecting reordering without loss.
class ReorderGate : public PacketHandler {
 public:
  ReorderGate(PacketHandler* inner, int every) : inner_{inner}, every_{every} {}
  void handle_packet(Packet pkt) override {
    ++count_;
    if (held_) {
      Packet first = std::move(pkt);
      Packet second = std::move(*held_);
      held_.reset();
      inner_->handle_packet(std::move(first));
      inner_->handle_packet(std::move(second));
      return;
    }
    if (pkt.payload > 0 && count_ % every_ == 0) {
      held_ = std::move(pkt);
      return;
    }
    inner_->handle_packet(std::move(pkt));
  }
  void flush() {
    if (held_) {
      inner_->handle_packet(std::move(*held_));
      held_.reset();
    }
  }

 private:
  PacketHandler* inner_;
  int every_;
  int count_ = 0;
  std::optional<Packet> held_;
};

class TcpReorderProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpReorderProperty, ReorderingNeverCorruptsData) {
  const int every = GetParam();
  Simulator sim{static_cast<std::uint64_t>(every) + 40};
  auto* a = sim.add_component<Host>("a", 0);
  auto* b = sim.add_component<Host>("b", 1);
  ReorderGate gate{b, every};
  Link::Config lc;
  lc.queue_capacity_bytes = 4'000'000;
  auto* ab = sim.add_component<Link>("ab", lc, &gate);
  auto* ba = sim.add_component<Link>("ba", lc, a);
  a->set_uplink(ab);
  b->set_uplink(ba);

  std::uint64_t received = 0;
  b->on_accept = [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) { received += d; };
  };
  bool complete = false;
  constexpr std::uint64_t kBytes = 300'000;
  sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = a->open_flow(1, kBytes, 1);
    c->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_sec(10));
  gate.flush();
  sim.run_until(SimTime::from_sec(20));
  EXPECT_TRUE(complete) << "reorder every " << every;
  EXPECT_EQ(received, kBytes);
}

INSTANTIATE_TEST_SUITE_P(ReorderSweep, TcpReorderProperty,
                         ::testing::Values(3, 5, 10, 50),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "every" + std::to_string(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, TcpSizeProperty,
    ::testing::Values(SizeCase{0}, SizeCase{1}, SizeCase{1459},
                      SizeCase{1460}, SizeCase{1461}, SizeCase{2920},
                      SizeCase{14'600}, SizeCase{1'000'001}),
    [](const ::testing::TestParamInfo<SizeCase>& info) {
      return "bytes" + std::to_string(info.param.bytes);
    });

}  // namespace
}  // namespace esim::tcp
