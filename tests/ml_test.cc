#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>

#include "ml/activations.h"
#include "ml/inference.h"
#include "ml/linear.h"
#include "ml/loss.h"
#include "ml/lstm.h"
#include "ml/optimizer.h"
#include "ml/serialize.h"
#include "ml/tensor.h"
#include "sim/random.h"

namespace esim::ml {
namespace {

using esim::sim::Rng;

TEST(Tensor, ConstructionAndAccess) {
  Tensor t{2, 3};
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0;
  EXPECT_EQ(t.at(1, 2), 5.0);
  EXPECT_EQ(t.sum(), 5.0);
  EXPECT_THROW((Tensor{2, 2, {1.0}}), std::invalid_argument);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a{2, 3, {1, 2, 3, 4, 5, 6}};
  Tensor b{3, 2, {7, 8, 9, 10, 11, 12}};
  const Tensor c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(Tensor, TransposedVariantsAgree) {
  Rng rng{1};
  Tensor a{3, 4}, b{4, 5};
  a.fill_normal(rng, 1.0);
  b.fill_normal(rng, 1.0);
  // matmul_nt(a, bT) where bT is b transposed equals matmul(a, b).
  Tensor bt{5, 4};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Tensor c1 = matmul(a, b);
  const Tensor c2 = matmul_nt(a, bt);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c1.at(i, j), c2.at(i, j), 1e-12);
    }
  }
  // matmul_tn(aT..) : matmul_tn(x [k x m], y [k x n]) = x^T y.
  Tensor at{4, 3};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  const Tensor c3 = matmul_tn(at, b);  // (3x4) * (4x5)
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c1.at(i, j), c3.at(i, j), 1e-12);
    }
  }
}

TEST(Tensor, RowBiasAndElementwise) {
  Tensor m{2, 2, {1, 2, 3, 4}};
  Tensor b{1, 2, {10, 20}};
  add_row_bias(m, b);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 24);
  m.scale(0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 11);
  m.map([](double x) { return -x; });
  EXPECT_DOUBLE_EQ(m.at(0, 0), -5.5);
  EXPECT_DOUBLE_EQ(m.abs_max(), 12.0);
  Tensor wrong{1, 3};
  EXPECT_THROW(add_row_bias(m, wrong), std::invalid_argument);
  EXPECT_THROW(m.add(wrong), std::invalid_argument);
}

TEST(Activations, SigmoidStableAndCorrect) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(710.0), 1.0, 1e-12);   // no overflow
  EXPECT_NEAR(sigmoid(-710.0), 0.0, 1e-12);
  EXPECT_NEAR(dsigmoid_from_value(sigmoid(0.3)),
              (sigmoid(0.3 + 1e-6) - sigmoid(0.3 - 1e-6)) / 2e-6, 1e-6);
  EXPECT_NEAR(dtanh_from_value(std::tanh(0.7)),
              (std::tanh(0.7 + 1e-6) - std::tanh(0.7 - 1e-6)) / 2e-6, 1e-6);
}

// The fixed-sequence transcendentals must track libm tightly across the
// whole argument range the gates see: they replace std::exp/std::tanh in
// every model path, so a drift here is a silent accuracy regression in
// the trained models, not just in inference.
TEST(Activations, FixedSequenceKernelsMatchLibm) {
  for (int i = -4000; i <= 4000; ++i) {
    const double x = i * 0.01;  // [-40, 40], crosses every branch point
    const double e_ref = std::exp(x);
    const double e = exp_act(x);
    EXPECT_NEAR(e, e_ref, std::abs(e_ref) * 1e-14 + 1e-300)
        << "exp_act(" << x << ")";
    const double t_ref = std::tanh(x);
    EXPECT_NEAR(tanh_act(x), t_ref, 1e-14) << "tanh_act(" << x << ")";
    const double s_ref = 1.0 / (1.0 + std::exp(-x));
    EXPECT_NEAR(sigmoid(x), s_ref, 1e-14) << "sigmoid(" << x << ")";
  }
  // Saturating tails: exact values, no overflow/NaN.
  EXPECT_EQ(exp_act(-1000.0), 0.0);
  EXPECT_TRUE(std::isfinite(exp_act(1000.0)));
  EXPECT_DOUBLE_EQ(tanh_act(30.0), 1.0);
  EXPECT_DOUBLE_EQ(tanh_act(-30.0), -1.0);
  EXPECT_DOUBLE_EQ(sigmoid(800.0), 1.0);
  EXPECT_DOUBLE_EQ(sigmoid(-800.0), 0.0);
  // Odd symmetry of tanh_act holds bitwise (the vector port relies on
  // computing |x| and restoring the sign).
  for (double x : {0.01, 0.05, 0.3, 1.7, 8.0}) {
    EXPECT_DOUBLE_EQ(tanh_act(-x), -tanh_act(x));
  }
}

// ---------------------------------------------------------------------
// Gradient checking utilities.

/// Central finite difference of `loss()` w.r.t. one tensor element.
double numeric_grad(Tensor& t, std::size_t r, std::size_t c,
                    const std::function<double()>& loss, double eps = 1e-5) {
  const double orig = t.at(r, c);
  t.at(r, c) = orig + eps;
  const double up = loss();
  t.at(r, c) = orig - eps;
  const double down = loss();
  t.at(r, c) = orig;
  return (up - down) / (2 * eps);
}

void expect_grad_matches(Tensor& value, const Tensor& analytic,
                         const std::function<double()>& loss,
                         const std::string& label) {
  ASSERT_EQ(value.rows(), analytic.rows()) << label;
  ASSERT_EQ(value.cols(), analytic.cols()) << label;
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (std::size_t c = 0; c < value.cols(); ++c) {
      const double num = numeric_grad(value, r, c, loss);
      const double ana = analytic.at(r, c);
      const double tol = 1e-6 + 1e-4 * std::max(std::abs(num), std::abs(ana));
      EXPECT_NEAR(ana, num, tol) << label << "[" << r << "," << c << "]";
    }
  }
}

TEST(Linear, ForwardKnownValues) {
  Rng rng{2};
  Linear lin{2, 2, rng};
  lin.weight() = Tensor{2, 2, {1, 2, 3, 4}};
  lin.bias() = Tensor{1, 2, {0.5, -0.5}};
  Tensor x{1, 2, {10, 20}};
  const Tensor y = lin.forward(x);
  // y = x W^T + b = [10*1+20*2+0.5, 10*3+20*4-0.5]
  EXPECT_DOUBLE_EQ(y.at(0, 0), 50.5);
  EXPECT_DOUBLE_EQ(y.at(0, 1), 109.5);
}

TEST(Linear, GradientCheck) {
  Rng rng{3};
  Linear lin{3, 2, rng};
  Tensor x{4, 3};
  x.fill_normal(rng, 1.0);
  Tensor target{4, 2};
  target.fill_normal(rng, 1.0);

  auto loss_fn = [&] {
    const Tensor y = lin.forward(x);
    Tensor mask{4, 2};
    mask.map([](double) { return 1.0; });
    return masked_mse(y, target, mask, nullptr);
  };

  lin.zero_grad();
  const Tensor y = lin.forward(x);
  Tensor mask{4, 2};
  mask.map([](double) { return 1.0; });
  Tensor dy;
  masked_mse(y, target, mask, &dy);
  const Tensor dx = lin.backward(x, dy);

  auto params = lin.parameters();
  expect_grad_matches(*params[0].value, *params[0].grad, loss_fn, "w");
  expect_grad_matches(*params[1].value, *params[1].grad, loss_fn, "b");
  expect_grad_matches(x, dx, loss_fn, "x");
}

TEST(Loss, BceKnownValuesAndGrad) {
  Tensor logits{1, 2, {0.0, 2.0}};
  Tensor targets{1, 2, {1.0, 0.0}};
  Tensor d;
  const double loss = bce_with_logits(logits, targets, &d);
  // Element 1: -log(sigmoid(0)) = log 2. Element 2: -log(1-sigmoid(2)).
  const double expect0 = std::log(2.0);
  const double expect1 = -std::log(1.0 - sigmoid(2.0));
  EXPECT_NEAR(loss, (expect0 + expect1) / 2.0, 1e-12);
  auto loss_fn = [&] { return bce_with_logits(logits, targets, nullptr); };
  expect_grad_matches(logits, d, loss_fn, "logits");
}

TEST(Loss, BceExtremeLogitsStable) {
  Tensor logits{1, 2, {1000.0, -1000.0}};
  Tensor targets{1, 2, {1.0, 0.0}};
  const double loss = bce_with_logits(logits, targets, nullptr);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(Loss, MaskedMseIgnoresMasked) {
  Tensor pred{1, 3, {1.0, 5.0, 9.0}};
  Tensor target{1, 3, {1.5, 100.0, 8.0}};
  Tensor mask{1, 3, {1.0, 0.0, 1.0}};
  Tensor d;
  const double loss = masked_mse(pred, target, mask, &d);
  EXPECT_NEAR(loss, (0.25 + 1.0) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);  // masked element gets no gradient
  auto loss_fn = [&] { return masked_mse(pred, target, mask, nullptr); };
  expect_grad_matches(pred, d, loss_fn, "pred");
}

TEST(Loss, MaskedMseEmptyMask) {
  Tensor pred{1, 2, {1.0, 2.0}};
  Tensor target{1, 2, {3.0, 4.0}};
  Tensor mask{1, 2};
  Tensor d;
  EXPECT_EQ(masked_mse(pred, target, mask, &d), 0.0);
  EXPECT_EQ(d.abs_max(), 0.0);
}

TEST(Lstm, ShapesAndStateCarry) {
  Rng rng{4};
  Lstm lstm{3, 5, 2, rng};
  auto state = lstm.initial_state(2);
  Tensor x{2, 3};
  x.fill_normal(rng, 1.0);
  const Tensor h1 = lstm.step(x, state);
  EXPECT_EQ(h1.rows(), 2u);
  EXPECT_EQ(h1.cols(), 5u);
  const Tensor h2 = lstm.step(x, state);
  // Same input, different state: outputs must differ.
  double diff = 0;
  for (std::size_t j = 0; j < 5; ++j) {
    diff += std::abs(h1.at(0, j) - h2.at(0, j));
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(Lstm, StreamingMatchesSequenceForward) {
  Rng rng{5};
  Lstm lstm{3, 4, 2, rng};
  std::vector<Tensor> xs;
  for (int t = 0; t < 6; ++t) {
    Tensor x{2, 3};
    x.fill_normal(rng, 1.0);
    xs.push_back(x);
  }
  auto s1 = lstm.initial_state(2);
  Lstm::SequenceCache cache;
  const auto hs = lstm.forward(xs, s1, cache);

  auto s2 = lstm.initial_state(2);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const Tensor h = lstm.step(xs[t], s2);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(h.at(r, j), hs[t].at(r, j), 1e-12);
      }
    }
  }
}

TEST(Lstm, GradientCheckThroughTime) {
  Rng rng{6};
  Lstm lstm{2, 3, 2, rng};
  const std::size_t B = 2, T = 4;
  std::vector<Tensor> xs;
  std::vector<Tensor> targets;
  for (std::size_t t = 0; t < T; ++t) {
    Tensor x{B, 2}, y{B, 3};
    x.fill_normal(rng, 1.0);
    y.fill_normal(rng, 1.0);
    xs.push_back(x);
    targets.push_back(y);
  }
  Tensor ones{B, 3};
  ones.map([](double) { return 1.0; });

  auto loss_fn = [&] {
    auto state = lstm.initial_state(B);
    Lstm::SequenceCache cache;
    const auto hs = lstm.forward(xs, state, cache);
    double total = 0;
    for (std::size_t t = 0; t < T; ++t) {
      total += masked_mse(hs[t], targets[t], ones, nullptr);
    }
    return total;
  };

  lstm.zero_grad();
  auto state = lstm.initial_state(B);
  Lstm::SequenceCache cache;
  const auto hs = lstm.forward(xs, state, cache);
  std::vector<Tensor> dhs;
  for (std::size_t t = 0; t < T; ++t) {
    Tensor d;
    masked_mse(hs[t], targets[t], ones, &d);
    dhs.push_back(std::move(d));
  }
  lstm.backward(cache, dhs);

  for (auto& p : lstm.parameters()) {
    expect_grad_matches(*p.value, *p.grad, loss_fn, p.name);
  }
}

TEST(Lstm, LearnsToEchoPreviousInput) {
  // Sanity: a small LSTM trained with our optimizer learns y_t = x_{t-1},
  // which requires using its memory. Loss must drop substantially.
  Rng rng{7};
  Lstm lstm{1, 8, 1, rng};
  Linear head{8, 1, rng};
  std::vector<Parameter> params = lstm.parameters();
  for (auto& p : head.parameters()) params.push_back(p);
  SgdMomentum::Config ocfg;
  ocfg.learning_rate = 0.05;
  ocfg.momentum = 0.9;
  SgdMomentum opt{params, ocfg};

  const std::size_t B = 8, T = 6;
  Tensor ones{B, 1};
  ones.map([](double) { return 1.0; });

  double first_loss = 0, last_loss = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Tensor> xs;
    for (std::size_t t = 0; t < T; ++t) {
      Tensor x{B, 1};
      x.fill_normal(rng, 1.0);
      xs.push_back(x);
    }
    auto state = lstm.initial_state(B);
    Lstm::SequenceCache cache;
    const auto hs = lstm.forward(xs, state, cache);
    double loss = 0;
    std::vector<Tensor> dhs(T);
    std::vector<Tensor> ys(T);
    for (std::size_t t = 0; t < T; ++t) {
      ys[t] = head.forward(hs[t]);
      Tensor dy;
      if (t == 0) {
        dhs[t] = Tensor{B, 8};
        continue;
      }
      loss += masked_mse(ys[t], xs[t - 1], ones, &dy);
      dhs[t] = head.backward(hs[t], dy);
    }
    lstm.backward(cache, dhs);
    opt.step();
    opt.zero_grad();
    lstm.zero_grad();
    head.zero_grad();
    if (iter == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
}

TEST(Optimizer, ConvergesOnLinearRegression) {
  Rng rng{8};
  Linear lin{2, 1, rng};
  SgdMomentum::Config cfg;
  cfg.learning_rate = 0.05;
  SgdMomentum opt{lin.parameters(), cfg};
  Tensor ones{16, 1};
  ones.map([](double) { return 1.0; });
  double loss = 0;
  for (int iter = 0; iter < 500; ++iter) {
    Tensor x{16, 2};
    x.fill_normal(rng, 1.0);
    Tensor target{16, 1};
    for (std::size_t r = 0; r < 16; ++r) {
      target.at(r, 0) = 3.0 * x.at(r, 0) - 2.0 * x.at(r, 1) + 0.5;
    }
    const Tensor y = lin.forward(x);
    Tensor dy;
    loss = masked_mse(y, target, ones, &dy);
    lin.backward(x, dy);
    opt.step();
    opt.zero_grad();
  }
  EXPECT_LT(loss, 1e-3);
  EXPECT_NEAR(lin.weight().at(0, 0), 3.0, 0.05);
  EXPECT_NEAR(lin.weight().at(0, 1), -2.0, 0.05);
  EXPECT_NEAR(lin.bias().at(0, 0), 0.5, 0.05);
}

TEST(Optimizer, ClipsLargeGradients) {
  Rng rng{9};
  Linear lin{1, 1, rng};
  SgdMomentum::Config cfg;
  cfg.clip_norm = 1.0;
  cfg.learning_rate = 1.0;
  cfg.momentum = 0.0;
  SgdMomentum opt{lin.parameters(), cfg};
  auto params = lin.parameters();
  params[0].grad->at(0, 0) = 100.0;
  const double before = params[0].value->at(0, 0);
  const double norm = opt.step();
  EXPECT_GT(norm, 99.0);
  // Update magnitude is clipped to ~1 * lr.
  EXPECT_NEAR(std::abs(params[0].value->at(0, 0) - before), 1.0, 1e-6);
}

TEST(Serialize, RoundTrip) {
  Rng rng{10};
  Lstm a{3, 4, 2, rng};
  Lstm b{3, 4, 2, rng};  // different weights
  const std::string path = ::testing::TempDir() + "/esim_ml_roundtrip.bin";
  save_parameters(path, a.parameters());
  load_parameters(path, b.parameters());
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(*pa[i].value == *pb[i].value) << pa[i].name;
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng{11};
  Lstm a{3, 4, 1, rng};
  Lstm b{3, 5, 1, rng};
  const std::string path = ::testing::TempDir() + "/esim_ml_mismatch.bin";
  save_parameters(path, a.parameters());
  EXPECT_THROW(load_parameters(path, b.parameters()), std::runtime_error);
  EXPECT_THROW(load_parameters("/nonexistent/x.bin", a.parameters()),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
  Rng rng{12};
  Lstm a{3, 4, 1, rng};
  Lstm b{3, 4, 1, rng};
  const std::string path = ::testing::TempDir() + "/esim_ml_truncated.bin";
  save_parameters(path, a.parameters());
  // Cut the file at various points: mid-payload, mid-header, mid-name.
  for (const long keep : {16L, 9L, 120L}) {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_GT(size, keep);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), keep), 0);
    EXPECT_THROW(load_parameters(path, b.parameters()), std::runtime_error)
        << "kept " << keep << " bytes";
    save_parameters(path, a.parameters());  // restore for the next cut
  }
  std::remove(path.c_str());
}

// The v2 model container: header round-trip plus every load error path.
TEST(Serialize, ModelHeaderRoundTrip) {
  Rng rng{13};
  Lstm a{3, 4, 2, rng};
  ModelHeader header;
  header.trunk = TrunkKind::Lstm;
  header.input = 3;
  header.hidden = 4;
  header.layers = 2;
  header.heads = 0;
  const std::string path = ::testing::TempDir() + "/esim_ml_model.bin";
  save_model(path, header, a.parameters());

  const ModelHeader h = load_model_header(path);
  EXPECT_EQ(h.trunk, TrunkKind::Lstm);
  EXPECT_EQ(h.input, 3u);
  EXPECT_EQ(h.hidden, 4u);
  EXPECT_EQ(h.layers, 2u);
  EXPECT_EQ(h.heads, 0u);

  // Payload loads into raw buffers, no Tensors involved.
  InferenceSession session{InferenceSession::Arch{
      TrunkKind::Lstm, 3, 4, 2, {}}};
  load_model(path, session.weight_views("", {}));
  session.repack();
  Tensor x{1, 3, {0.2, -0.4, 0.9}};
  auto state = a.initial_state(1);
  const Tensor ref = a.step(x, state);
  const auto out = session.predict(std::span<const double>{x.data(), 3});
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(out[j], ref.at(0, j));
  std::remove(path.c_str());
}

TEST(Serialize, ModelUnknownTrunkKindThrows) {
  Rng rng{14};
  Lstm a{3, 4, 1, rng};
  ModelHeader header;
  header.trunk = TrunkKind::Lstm;
  header.input = 3;
  header.hidden = 4;
  header.layers = 1;
  const std::string path = ::testing::TempDir() + "/esim_ml_badkind.bin";
  save_model(path, header, a.parameters());
  // Corrupt the trunk-kind field (bytes 4..8, after the magic).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const std::uint32_t bogus = 7;
  ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&bogus, sizeof bogus, 1, f), 1u);
  std::fclose(f);
  EXPECT_THROW(load_model_header(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, ModelErrorPaths) {
  Rng rng{15};
  Lstm a{3, 4, 1, rng};
  ModelHeader header;
  header.trunk = TrunkKind::Lstm;
  header.input = 3;
  header.hidden = 4;
  header.layers = 1;
  const std::string path = ::testing::TempDir() + "/esim_ml_modelerr.bin";
  save_model(path, header, a.parameters());

  // Missing file, v1 file where a v2 container is expected (bad magic).
  EXPECT_THROW(load_model_header("/nonexistent/x.bin"), std::runtime_error);
  const std::string v1 = ::testing::TempDir() + "/esim_ml_v1.bin";
  save_parameters(v1, a.parameters());
  EXPECT_THROW(load_model_header(v1), std::runtime_error);
  std::remove(v1.c_str());

  // Dimension mismatch: views shaped for a hidden-5 trunk.
  InferenceSession wrong{InferenceSession::Arch{TrunkKind::Lstm, 3, 5, 1, {}}};
  EXPECT_THROW(load_model(path, wrong.weight_views("", {})),
               std::runtime_error);

  // Count mismatch: too few views for the payload.
  InferenceSession right{InferenceSession::Arch{TrunkKind::Lstm, 3, 4, 1, {}}};
  auto views = right.weight_views("", {});
  views.pop_back();
  EXPECT_THROW(load_model(path, views), std::runtime_error);

  // Truncation inside the v2 header.
  ASSERT_EQ(truncate(path.c_str(), 12), 0);
  EXPECT_THROW(load_model_header(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace esim::ml
