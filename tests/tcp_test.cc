#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/host.h"
#include "tcp/rto.h"
#include "tcp/tcp_connection.h"

namespace esim::tcp {
namespace {

using net::Link;
using net::Packet;
using net::PacketHandler;
using sim::SimTime;
using sim::Simulator;

TEST(RtoEstimator, InitialValue) {
  RtoEstimator rto;
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto(), SimTime::from_ms(100));
}

TEST(RtoEstimator, FirstSampleSetsSrttAndVar) {
  RtoEstimator::Config cfg;
  cfg.min = SimTime::from_ns(1);
  RtoEstimator rto{cfg};
  rto.add_sample(SimTime::from_ms(10));
  EXPECT_TRUE(rto.has_sample());
  EXPECT_EQ(rto.srtt(), SimTime::from_ms(10));
  EXPECT_EQ(rto.rttvar(), SimTime::from_ms(5));
  EXPECT_EQ(rto.rto(), SimTime::from_ms(30));  // srtt + 4*rttvar
}

TEST(RtoEstimator, SmoothsTowardSamples) {
  RtoEstimator::Config cfg;
  cfg.min = SimTime::from_ns(1);
  RtoEstimator rto{cfg};
  rto.add_sample(SimTime::from_ms(10));
  for (int i = 0; i < 100; ++i) rto.add_sample(SimTime::from_ms(20));
  EXPECT_NEAR(static_cast<double>(rto.srtt().ns()), 20e6, 1e5);
  // Variance decays toward zero for constant samples.
  EXPECT_LT(rto.rttvar().ns(), 1'000'000);
}

TEST(RtoEstimator, MinimumClamp) {
  RtoEstimator rto;  // default min 10ms
  rto.add_sample(SimTime::from_us(50));
  EXPECT_EQ(rto.rto(), SimTime::from_ms(10));
}

// Regression: RTTVAR's integer smoothing truncates to zero on a perfectly
// stable path; without the RFC 6298 clock-granularity floor the RTO then
// collapses to exactly SRTT, so the first microsecond of jitter fires a
// spurious retransmission.
TEST(RtoEstimator, StableRttKeepsRtoAboveSrtt) {
  RtoEstimator rto;  // default granularity 1ms, min 10ms
  for (int i = 0; i < 1000; ++i) rto.add_sample(SimTime::from_ms(50));
  EXPECT_EQ(rto.srtt(), SimTime::from_ms(50));
  EXPECT_EQ(rto.rttvar(), SimTime{});  // the variance has fully decayed
  // RTO = SRTT + max(G, 4*RTTVAR) = 50ms + 1ms, strictly above SRTT.
  EXPECT_EQ(rto.rto(), SimTime::from_ms(51));
  EXPECT_GT(rto.rto(), rto.srtt());
}

TEST(RtoEstimator, GranularityFloorIsConfigurable) {
  RtoEstimator::Config cfg;
  cfg.granularity = SimTime::from_us(100);
  cfg.min = SimTime::from_us(1);
  RtoEstimator rto{cfg};
  for (int i = 0; i < 1000; ++i) rto.add_sample(SimTime::from_ms(50));
  EXPECT_EQ(rto.rto(), SimTime::from_ms(50) + SimTime::from_us(100));
}

TEST(RtoEstimator, BackoffDoublesAndClamps) {
  RtoEstimator::Config cfg;
  cfg.max = SimTime::from_ms(300);
  RtoEstimator rto{cfg};  // initial 100ms
  rto.backoff();
  EXPECT_EQ(rto.rto(), SimTime::from_ms(200));
  rto.backoff();
  EXPECT_EQ(rto.rto(), SimTime::from_ms(300));
  rto.backoff();
  EXPECT_EQ(rto.rto(), SimTime::from_ms(300));
}

TEST(RtoEstimator, SampleResetsBackoff) {
  RtoEstimator::Config cfg;
  cfg.min = SimTime::from_ms(10);
  RtoEstimator rto{cfg};
  rto.add_sample(SimTime::from_ms(4));
  rto.backoff();
  const auto backed_off = rto.rto();
  rto.add_sample(SimTime::from_ms(4));
  EXPECT_LT(rto.rto(), backed_off);
}

/// Interposer that can drop selected packets between a link and a host.
class LossGate : public PacketHandler {
 public:
  explicit LossGate(PacketHandler* inner) : inner_{inner} {}
  void handle_packet(Packet pkt) override {
    ++seen;
    if (should_drop && should_drop(pkt)) {
      ++dropped;
      return;
    }
    inner_->handle_packet(std::move(pkt));
  }
  std::function<bool(const Packet&)> should_drop;
  int seen = 0;
  int dropped = 0;

 private:
  PacketHandler* inner_;
};

/// Two hosts connected back-to-back through loss gates.
struct Pair {
  explicit Pair(std::uint64_t seed = 1,
                const TcpConnection::Config& cfg = {})
      : sim{seed} {
    a = sim.add_component<Host>("a", 0, cfg);
    b = sim.add_component<Host>("b", 1, cfg);
    gate_to_b = std::make_unique<LossGate>(b);
    gate_to_a = std::make_unique<LossGate>(a);
    Link::Config lc;
    lc.bandwidth_bps = 10e9;
    lc.propagation = SimTime::from_us(5);
    // Host TX buffer: large, like a real NIC ring + qdisc. Bursts of a
    // full congestion window must not self-drop on the sender.
    lc.queue_capacity_bytes = 4'000'000;
    ab = sim.add_component<Link>("ab", lc, gate_to_b.get());
    ba = sim.add_component<Link>("ba", lc, gate_to_a.get());
    a->set_uplink(ab);
    b->set_uplink(ba);
  }

  Simulator sim;
  Host* a;
  Host* b;
  Link* ab;
  Link* ba;
  std::unique_ptr<LossGate> gate_to_b;
  std::unique_ptr<LossGate> gate_to_a;
};

TEST(TcpConnection, HandshakeEstablishesBothSides) {
  Pair p;
  bool client_est = false, server_est = false;
  p.b->on_accept = [&](TcpConnection& c) {
    c.on_established = [&] { server_est = true; };
  };
  TcpConnection* conn = nullptr;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 0, 1);
    conn->on_established = [&] { client_est = true; };
  });
  p.sim.run();
  EXPECT_TRUE(client_est);
  EXPECT_TRUE(server_est);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state(), TcpState::Done);  // zero-byte flow closes
}

TEST(TcpConnection, SmallFlowDeliversAllBytes) {
  Pair p;
  std::uint64_t received = 0;
  bool complete = false;
  p.b->on_accept = [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) { received += d; };
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 5000, 1);
    c->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(received, 5000u);
}

TEST(TcpConnection, LargeFlowCompletesAndGrowsWindow) {
  Pair p;
  bool complete = false;
  TcpConnection* conn = nullptr;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 2'000'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->stats().retransmissions, 0u);  // clean path, no loss
  EXPECT_EQ(conn->stats().timeouts, 0u);
  EXPECT_GT(conn->cwnd(), 10.0 * net::kMss);  // grew past initial window
  EXPECT_EQ(conn->bytes_done(), 2'000'000u);
}

TEST(TcpConnection, CompletionTimeIsPlausible) {
  Pair p;
  SimTime done_at;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 100'000, 1);
    c->on_complete = [&] { done_at = p.sim.now(); };
  });
  p.sim.run();
  // 100 KB at 10 Gbps is ~80 us serialized + handshake + a few RTTs
  // (10 us each); must be well under a millisecond with no loss.
  EXPECT_GT(done_at.ns(), 0);
  EXPECT_LT(done_at, SimTime::from_ms(1));
}

TEST(TcpConnection, FastRetransmitRecoversSingleLoss) {
  Pair p;
  bool complete = false;
  TcpConnection* conn = nullptr;
  // Drop the first transmission of the segment starting at byte 20441
  // (the 15th data segment; window is large enough for dup ACKs).
  bool dropped_once = false;
  p.gate_to_b->should_drop = [&](const Packet& pkt) {
    if (pkt.payload > 0 && pkt.seq == 1 + 14 * 1460 && !dropped_once) {
      dropped_once = true;
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 200'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  EXPECT_TRUE(dropped_once);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->stats().timeouts, 0u) << "loss should not need an RTO";
  EXPECT_EQ(conn->stats().fast_recoveries, 1u);
  EXPECT_GE(conn->stats().retransmissions, 1u);
}

TEST(TcpConnection, MultipleLossesInWindowUseNewRenoPartialAcks) {
  Pair p;
  bool complete = false;
  TcpConnection* conn = nullptr;
  std::set<std::uint32_t> to_drop = {1 + 20 * 1460, 1 + 24 * 1460};
  std::set<std::uint32_t> dropped;
  p.gate_to_b->should_drop = [&](const Packet& pkt) {
    if (pkt.payload > 0 && to_drop.contains(pkt.seq) &&
        !dropped.contains(pkt.seq)) {
      dropped.insert(pkt.seq);
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 400'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(dropped.size(), 2u);
  ASSERT_NE(conn, nullptr);
  // New Reno handles both holes in one recovery episode without timeout.
  EXPECT_EQ(conn->stats().timeouts, 0u);
  EXPECT_EQ(conn->stats().fast_recoveries, 1u);
  EXPECT_GE(conn->stats().retransmissions, 2u);
}

TEST(TcpConnection, TailLossRecoversViaRto) {
  Pair p;
  bool complete = false;
  TcpConnection* conn = nullptr;
  bool dropped_once = false;
  // Drop the very last segment: no dup ACKs can follow, so only the RTO
  // can recover it.
  p.gate_to_b->should_drop = [&](const Packet& pkt) {
    if (pkt.payload > 0 && pkt.seq + pkt.payload == 1 + 30'000 &&
        !dropped_once) {
      dropped_once = true;
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 30'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  ASSERT_NE(conn, nullptr);
  EXPECT_GE(conn->stats().timeouts, 1u);
  EXPECT_EQ(conn->state(), TcpState::Done);
}

TEST(TcpConnection, SynLossRetransmitsHandshake) {
  Pair p;
  bool complete = false;
  bool dropped_syn = false;
  p.gate_to_b->should_drop = [&](const Packet& pkt) {
    if (pkt.has(net::TcpFlag::Syn) && !dropped_syn) {
      dropped_syn = true;
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 1000, 1);
    c->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(dropped_syn);
  EXPECT_TRUE(complete);
}

TEST(TcpConnection, SynAckLossRecovered) {
  Pair p;
  bool complete = false;
  bool dropped = false;
  p.gate_to_a->should_drop = [&](const Packet& pkt) {
    if (pkt.has(net::TcpFlag::Syn) && pkt.has(net::TcpFlag::Ack) &&
        !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 1000, 1);
    c->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(complete);
}

TEST(TcpConnection, FinLossStillCloses) {
  Pair p;
  TcpConnection* conn = nullptr;
  bool dropped = false;
  p.gate_to_b->should_drop = [&](const Packet& pkt) {
    if (pkt.has(net::TcpFlag::Fin) && !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { conn = p.a->open_flow(1, 1000, 1); });
  p.sim.run();
  EXPECT_TRUE(dropped);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state(), TcpState::Done);
}

TEST(TcpConnection, AckLossIsAbsorbedByCumulativeAcks) {
  Pair p;
  bool complete = false;
  int dropped = 0;
  p.gate_to_a->should_drop = [&](const Packet& pkt) {
    // Drop every third pure ACK mid-flow. Tail ACKs are spared: losing
    // the final ACK leaves nothing cumulative to absorb it, so an RTO
    // would be correct behaviour rather than a bug.
    if (pkt.payload == 0 && pkt.has(net::TcpFlag::Ack) &&
        !pkt.has(net::TcpFlag::Syn) && !pkt.has(net::TcpFlag::Fin) &&
        pkt.ack_seq < 250'000) {
      if (++dropped % 3 == 0) return true;
    }
    return false;
  };
  TcpConnection* conn = nullptr;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 300'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run();
  EXPECT_TRUE(complete);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->stats().timeouts, 0u);
}

TEST(TcpConnection, RttSamplesCollected) {
  Pair p;
  stats::LatencyCollector rtt;
  p.a->set_rtt_collector(&rtt);
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { p.a->open_flow(1, 100'000, 1); });
  p.sim.run();
  EXPECT_GT(rtt.summary().count(), 10u);
  // Base RTT here is 2 * 5us propagation plus serialization; samples must
  // be at least that and below a loose bound.
  EXPECT_GE(rtt.summary().min(), 10e-6);
  EXPECT_LT(rtt.summary().max(), 1e-3);
}

TEST(TcpConnection, ConcurrentFlowsDemuxCorrectly) {
  Pair p;
  int completions = 0;
  std::uint64_t received = 0;
  p.b->on_accept = [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) { received += d; };
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    for (int i = 0; i < 10; ++i) {
      auto* c = p.a->open_flow(1, 10'000, 100 + i);
      c->on_complete = [&] { ++completions; };
    }
  });
  p.sim.run();
  EXPECT_EQ(completions, 10);
  EXPECT_EQ(received, 100'000u);
  // 10 active on a, 10 passive on b.
  EXPECT_EQ(p.a->connections().size(), 10u);
  EXPECT_EQ(p.b->connections().size(), 10u);
}

TEST(TcpConnection, DelayedAckHalvesAckTraffic) {
  TcpConnection::Config cfg;
  cfg.delayed_ack = false;
  Pair eager{1, cfg};
  cfg.delayed_ack = true;
  Pair delayed{1, cfg};

  auto run_flow = [](Pair& p) {
    p.sim.schedule_at(SimTime::from_us(1),
                      [&] { p.a->open_flow(1, 500'000, 1); });
    p.sim.run();
    return p.ba->counter().sent;  // ACK packets from b to a
  };
  const auto acks_eager = run_flow(eager);
  const auto acks_delayed = run_flow(delayed);
  EXPECT_LT(acks_delayed, acks_eager * 3 / 4);
  EXPECT_GT(acks_delayed, acks_eager / 4);
}

TEST(TcpConnection, StatsBytesAckedMatchesFlow) {
  Pair p;
  TcpConnection* conn = nullptr;
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { conn = p.a->open_flow(1, 77'777, 1); });
  p.sim.run();
  ASSERT_NE(conn, nullptr);
  // payload + FIN; the SYN is acknowledged during the handshake, before
  // the established-state ACK accounting starts.
  EXPECT_EQ(conn->stats().bytes_acked, 77'777u + 1u);
  EXPECT_EQ(conn->bytes_done(), 77'777u);
}

TEST(TcpConnection, ReceiverBytesDone) {
  Pair p;
  TcpConnection* server = nullptr;
  p.b->on_accept = [&](TcpConnection& c) { server = &c; };
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { p.a->open_flow(1, 12'345, 1); });
  p.sim.run();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_done(), 12'345u);
  EXPECT_EQ(server->state(), TcpState::Done);
}

TEST(TcpConnection, SequentialFlowsReusePair) {
  Pair p;
  int completions = 0;
  std::function<void(int)> launch = [&](int remaining) {
    auto* c = p.a->open_flow(1, 5'000, 1);
    c->on_complete = [&, remaining] {
      ++completions;
      if (remaining > 1) launch(remaining - 1);
    };
  };
  p.sim.schedule_at(SimTime::from_us(1), [&] { launch(5); });
  p.sim.run();
  EXPECT_EQ(completions, 5);
}

TEST(Host, RejectsFlowWithoutUplink) {
  Simulator sim;
  auto* h = sim.add_component<Host>("h", 0);
  EXPECT_THROW(h->open_flow(1, 100, 1), std::logic_error);
}

TEST(Host, PacketIdsUniqueAndTagged) {
  Pair p;
  std::set<std::uint64_t> ids;
  p.ab->on_transmit = [&](const Packet& pkt, SimTime) {
    EXPECT_TRUE(ids.insert(pkt.id).second) << "duplicate packet id";
    EXPECT_EQ(pkt.id >> 40, 0u);  // host id 0
  };
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { p.a->open_flow(1, 50'000, 1); });
  p.sim.run();
  EXPECT_GT(ids.size(), 30u);
}

}  // namespace
}  // namespace esim::tcp
