// Tests for the DCTCP extension: ECN-echo plumbing, alpha estimation, and
// the headline behaviour — full throughput with far shallower queues than
// loss-based New Reno.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/host.h"

namespace esim::tcp {
namespace {

using net::Link;
using net::Packet;
using sim::SimTime;
using sim::Simulator;

/// Two hosts across a 1 Gbps bottleneck with optional ECN marking.
struct BottleneckPair {
  explicit BottleneckPair(const TcpConnection::Config& tcp_cfg,
                          std::uint32_t ecn_threshold) {
    a = sim.add_component<Host>("a", 0, tcp_cfg);
    b = sim.add_component<Host>("b", 1, tcp_cfg);
    Link::Config fwd;
    fwd.bandwidth_bps = 1e9;  // bottleneck
    fwd.propagation = SimTime::from_us(20);
    fwd.queue_capacity_bytes = 150'000;
    fwd.ecn_threshold_bytes = ecn_threshold;
    Link::Config rev;
    rev.bandwidth_bps = 10e9;
    rev.propagation = SimTime::from_us(20);
    ab = sim.add_component<Link>("ab", fwd, b);
    ba = sim.add_component<Link>("ba", rev, a);
    a->set_uplink(ab);
    b->set_uplink(ba);
  }

  Simulator sim{5};
  Host* a;
  Host* b;
  Link* ab;
  Link* ba;
};

TcpConnection::Config dctcp_config() {
  TcpConnection::Config cfg;
  cfg.dctcp = true;
  return cfg;
}

TEST(Dctcp, EcnEchoReachesSender) {
  BottleneckPair p{dctcp_config(), /*ecn_threshold=*/30'000};
  int ece_acks = 0;
  p.ba->on_transmit = [&](const Packet& pkt, SimTime) {
    if (pkt.ece) ++ece_acks;
  };
  bool complete = false;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 2'000'000, 1);
    c->on_complete = [&] { complete = true; };
  });
  p.sim.run_until(SimTime::from_sec(2));
  EXPECT_TRUE(complete);
  EXPECT_GT(ece_acks, 50) << "CE marks were never echoed";
}

TEST(Dctcp, AlphaConvergesAwayFromZero) {
  BottleneckPair p{dctcp_config(), 30'000};
  TcpConnection* conn = nullptr;
  p.sim.schedule_at(SimTime::from_us(1),
                    [&] { conn = p.a->open_flow(1, 4'000'000, 1); });
  p.sim.run_until(SimTime::from_ms(60));  // mid-flow: steady state
  ASSERT_NE(conn, nullptr);
  EXPECT_GT(conn->dctcp_alpha(), 0.01);
  EXPECT_LE(conn->dctcp_alpha(), 1.0);
}

TEST(Dctcp, NoEcnMeansNewRenoBehaviour) {
  // DCTCP with marking disabled never sees ECE: alpha stays 0 and the
  // flow behaves like plain New Reno.
  BottleneckPair p{dctcp_config(), /*ecn_threshold=*/0};
  TcpConnection* conn = nullptr;
  bool complete = false;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    conn = p.a->open_flow(1, 1'000'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  p.sim.run_until(SimTime::from_sec(2));
  EXPECT_TRUE(complete);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->dctcp_alpha(), 0.0);
}

struct QueueProbe {
  std::uint32_t max_queued = 0;
};

QueueProbe run_long_flow(bool dctcp, std::uint64_t* drops,
                         double* fct_seconds) {
  TcpConnection::Config cfg;
  cfg.dctcp = dctcp;
  BottleneckPair p{cfg, dctcp ? 30'000u : 0u};
  QueueProbe probe;
  // Sample steady-state queue depth every 100us, skipping the first 15ms
  // (the initial slow-start burst overshoots before any congestion
  // feedback exists, for DCTCP and New Reno alike).
  std::function<void()> sample = [&] {
    if (p.sim.now() > SimTime::from_ms(15)) {
      probe.max_queued = std::max(probe.max_queued, p.ab->queued_bytes());
    }
    p.sim.schedule_in(SimTime::from_us(100), sample);
  };
  p.sim.schedule_in(SimTime::from_us(100), sample);
  SimTime done_at;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    auto* c = p.a->open_flow(1, 6'000'000, 1);
    c->on_complete = [&] {
      done_at = p.sim.now();
      p.sim.stop();
    };
  });
  p.sim.run_until(SimTime::from_sec(5));
  *drops = p.ab->counter().dropped;
  *fct_seconds = done_at.to_seconds();
  return probe;
}

TEST(Dctcp, KeepsQueuesShallowerThanNewReno) {
  std::uint64_t drops_reno = 0, drops_dctcp = 0;
  double fct_reno = 0, fct_dctcp = 0;
  const auto reno = run_long_flow(false, &drops_reno, &fct_reno);
  const auto dctcp = run_long_flow(true, &drops_dctcp, &fct_dctcp);

  // New Reno fills the buffer until it drops; DCTCP hovers near the
  // marking threshold.
  EXPECT_GT(reno.max_queued, 100'000u);
  EXPECT_LT(dctcp.max_queued, 80'000u);
  EXPECT_GT(drops_reno, 0u);
  EXPECT_EQ(drops_dctcp, 0u);

  // Throughput is not sacrificed: 6MB at 1Gbps is ~48ms minimum; DCTCP
  // should be within 2x of New Reno's completion time.
  EXPECT_GT(fct_dctcp, 0.0);
  EXPECT_LT(fct_dctcp, std::max(fct_reno, 0.048) * 2.0);
}

TEST(Dctcp, ManyFlowsShareFairly) {
  TcpConnection::Config cfg;
  cfg.dctcp = true;
  BottleneckPair p{cfg, 30'000};
  // 4 concurrent long flows through the same bottleneck.
  std::vector<TcpConnection*> conns;
  p.sim.schedule_at(SimTime::from_us(1), [&] {
    for (int i = 0; i < 4; ++i) {
      conns.push_back(p.a->open_flow(1, 1'500'000, i + 1));
    }
  });
  p.sim.run_until(SimTime::from_ms(40));  // mid-transfer
  ASSERT_EQ(conns.size(), 4u);
  std::uint64_t min_done = UINT64_MAX, max_done = 0;
  for (auto* c : conns) {
    min_done = std::min(min_done, c->bytes_done());
    max_done = std::max(max_done, c->bytes_done());
  }
  EXPECT_GT(min_done, 0u);
  // Coarse fairness: no flow more than 4x another mid-stream.
  EXPECT_LT(max_done, min_done * 4);
}

}  // namespace
}  // namespace esim::tcp
