// Focused edge-case tests across modules: experiment pipeline contracts,
// link/ECN boundaries, TCP window caps, generator rate math, macro-window
// decay, and PDES stat accumulation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.h"
#include "net/link.h"
#include "sim/parallel.h"
#include "workload/generator.h"

namespace esim {
namespace {

using net::Link;
using net::Packet;
using sim::SimTime;
using sim::Simulator;

// ------------------------------------------------------------ experiment --

core::ExperimentConfig tiny_experiment() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.duration = SimTime::from_ms(5);
  cfg.train_duration = SimTime::from_ms(5);
  return cfg;
}

TEST(Experiment, TrainSpecDefaultsToTwoClusters) {
  auto cfg = tiny_experiment();
  cfg.net.spec.clusters = 8;  // run topology is large
  // train_spec left zero-initialised: the pipeline must train on a
  // 2-cluster version (the paper's Figure 3 workflow).
  const auto trace = core::record_boundary_trace(cfg);
  EXPECT_EQ(trace.spec.clusters, 2u);
  EXPECT_EQ(trace.cluster, 1u);
  EXPECT_GT(trace.records.size(), 0u);
}

TEST(Experiment, BoundaryTapsCoverClusterEdges) {
  Simulator sim{1};
  auto cfg = tiny_experiment();
  auto net = core::build_full_network(sim, cfg.net);
  const auto taps = core::make_boundary_taps(net, 1);
  EXPECT_EQ(taps.host_uplinks.size(), 8u);    // 8 hosts in cluster 1
  EXPECT_EQ(taps.host_downlinks.size(), 8u);
  EXPECT_EQ(taps.agg_core_up.size(), 4u);     // 2 aggs x 2 cores
  EXPECT_EQ(taps.core_agg_down.size(), 4u);
  // Drop links: 8 tor->host + 4 agg->core + 8 tor<->agg.
  EXPECT_EQ(taps.drop_links.size(), 20u);
}

TEST(Experiment, FullRunIsDeterministicAndAccounted) {
  const auto cfg = tiny_experiment();
  const auto a = core::run_full_simulation(cfg, cfg.net.spec);
  const auto b = core::run_full_simulation(cfg, cfg.net.spec);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.flows_launched, b.flows_launched);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_GE(a.events_scheduled, a.events_executed);
  EXPECT_GT(a.rtt_cdf.size(), 0u);
  EXPECT_GT(a.mean_fct_seconds, 0.0);
}

// ------------------------------------------------------------------ link --

TEST(LinkEdge, EcnMarksExactlyAtThreshold) {
  Simulator sim;
  class Sink : public net::PacketHandler {
   public:
    void handle_packet(Packet pkt) override { got.push_back(pkt); }
    std::vector<Packet> got;
  } sink;
  Link::Config cfg;
  cfg.bandwidth_bps = 1e6;  // slow; everything queues
  cfg.ecn_threshold_bytes = 1;  // any queued byte marks
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  sim.schedule_at(SimTime::from_us(1), [&] {
    Packet p;
    p.flow = net::FlowKey{0, 1, 1, 2};
    p.payload = 100;
    link->send(p);  // queue empty at enqueue: unmarked
    link->send(p);  // first packet still serializing, queue empty again
    link->send(p);  // now one packet queued: marked
  });
  sim.run();
  ASSERT_EQ(sink.got.size(), 3u);
  EXPECT_FALSE(sink.got[0].ecn);
  EXPECT_TRUE(sink.got[2].ecn);
}

TEST(LinkEdge, BusyAndQueueAccessors) {
  Simulator sim;
  class Sink : public net::PacketHandler {
   public:
    void handle_packet(Packet) override {}
  } sink;
  Link::Config cfg;
  cfg.bandwidth_bps = 1e6;
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  EXPECT_FALSE(link->busy());
  EXPECT_EQ(link->queued_packets(), 0u);
  sim.schedule_at(SimTime::from_us(1), [&] {
    Packet p;
    p.flow = net::FlowKey{0, 1, 1, 2};
    p.payload = 1000;
    link->send(p);
    link->send(p);
    EXPECT_TRUE(link->busy());
    EXPECT_EQ(link->queued_packets(), 1u);  // one serializing, one queued
    EXPECT_EQ(link->queued_bytes(), 1058u);
  });
  sim.run();
  EXPECT_FALSE(link->busy());
}

// ------------------------------------------------------------------- tcp --

TEST(TcpWindowCaps, ReceiveWindowLimitsFlight) {
  Simulator sim{9};
  tcp::TcpConnection::Config cfg;
  cfg.rwnd = 4 * 1460;  // four segments
  auto* a = sim.add_component<tcp::Host>("a", 0, cfg);
  auto* b = sim.add_component<tcp::Host>("b", 1, cfg);
  Link::Config lc;
  lc.propagation = SimTime::from_us(50);  // long pipe: window binds
  lc.queue_capacity_bytes = 4'000'000;
  auto* ab = sim.add_component<Link>("ab", lc, b);
  auto* ba = sim.add_component<Link>("ba", lc, a);
  a->set_uplink(ab);
  b->set_uplink(ba);
  // Track in-flight bytes directly: highest data byte transmitted minus
  // highest cumulative ACK seen returning.
  std::uint32_t highest_sent = 0;
  std::uint32_t highest_acked = 1;
  std::uint32_t max_outstanding = 0;
  ab->on_transmit = [&](const Packet& pkt, SimTime) {
    if (pkt.payload > 0) {
      highest_sent = std::max(highest_sent, pkt.seq + pkt.payload);
      max_outstanding =
          std::max(max_outstanding, highest_sent - highest_acked);
    }
  };
  ba->on_transmit = [&](const Packet& pkt, SimTime) {
    if (pkt.has(net::TcpFlag::Ack)) {
      highest_acked = std::max(highest_acked, pkt.ack_seq);
    }
  };
  tcp::TcpConnection* conn = nullptr;
  bool complete = false;
  sim.schedule_at(SimTime::from_us(1), [&] {
    conn = a->open_flow(1, 100'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_sec(5));
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(complete);
  // The flight never exceeded the advertised window (small slack for the
  // ACK-in-flight race of this measurement).
  EXPECT_LE(max_outstanding, cfg.rwnd + 1460);
  EXPECT_GE(max_outstanding, cfg.rwnd / 2);  // the window did bind
}

TEST(TcpWindowCaps, SmallInitialSsthreshEntersCongestionAvoidance) {
  Simulator sim{10};
  tcp::TcpConnection::Config cfg;
  cfg.initial_ssthresh = 4 * 1460;
  auto* a = sim.add_component<tcp::Host>("a", 0, cfg);
  auto* b = sim.add_component<tcp::Host>("b", 1, cfg);
  Link::Config lc;
  lc.queue_capacity_bytes = 4'000'000;
  auto* ab = sim.add_component<Link>("ab", lc, b);
  auto* ba = sim.add_component<Link>("ba", lc, a);
  a->set_uplink(ab);
  b->set_uplink(ba);
  tcp::TcpConnection* conn = nullptr;
  sim.schedule_at(SimTime::from_us(1),
                  [&] { conn = a->open_flow(1, 500'000, 1); });
  sim.run_until(SimTime::from_ms(2));
  ASSERT_NE(conn, nullptr);
  // cwnd grew past ssthresh but only linearly: far below what pure slow
  // start would have reached on 500KB.
  EXPECT_GT(conn->cwnd(), 4.0 * 1460);
  EXPECT_LT(conn->cwnd(), 60.0 * 1460);
}

// ------------------------------------------------------------- workload --

TEST(Generator, InterarrivalMatchesLoadFormula) {
  Simulator sim{11};
  core::NetworkConfig ncfg;
  ncfg.spec.clusters = 2;
  ncfg.spec.cores = 2;
  auto net = core::build_full_network(sim, ncfg);
  workload::FixedFlowSize sizes{100'000};
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.5;
  gcfg.host_bandwidth_bps = 10e9;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, &sizes, &matrix, gcfg);
  // lambda = 0.5 * 16 hosts * 10e9 / 8 / 100000 = 100k flows/sec.
  EXPECT_NEAR(gen->mean_interarrival().to_seconds(), 1e-5, 1e-7);
}

TEST(Generator, LaunchCountTracksRate) {
  Simulator sim{12};
  core::NetworkConfig ncfg;
  ncfg.spec.clusters = 2;
  ncfg.spec.cores = 2;
  auto net = core::build_full_network(sim, ncfg);
  workload::FixedFlowSize sizes{10'000};
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.1;
  gcfg.stop_at = SimTime::from_ms(10);
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, &sizes, &matrix, gcfg);
  gen->start();
  sim.run_until(SimTime::from_ms(50));
  // Expected arrivals: duration / mean_gap.
  const double expected =
      0.01 / gen->mean_interarrival().to_seconds();
  EXPECT_NEAR(static_cast<double>(gen->launched()), expected,
              expected * 0.15);
}

TEST(Generator, MaxFlowsCapRespected) {
  Simulator sim{13};
  core::NetworkConfig ncfg;
  ncfg.spec.clusters = 2;
  ncfg.spec.cores = 2;
  auto net = core::build_full_network(sim, ncfg);
  workload::FixedFlowSize sizes{1'000};
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.5;
  gcfg.max_flows = 7;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, &sizes, &matrix, gcfg);
  gen->start();
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(gen->launched(), 7u);
}

// ---------------------------------------------------------------- macro --

TEST(MacroWindows, EmptyWindowsDecayTowardMinimal) {
  approx::MacroClassifier mc;
  // Drive into a congested regime...
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 50; ++i) mc.observe(1e-3, i % 4 == 0);
    mc.advance_window();
  }
  EXPECT_NE(mc.state(), approx::MacroState::MinimalCongestion);
  // ...then stop all traffic: empty windows fold in zeros and the state
  // returns to MinimalCongestion.
  for (int w = 0; w < 30; ++w) mc.advance_window();
  EXPECT_EQ(mc.state(), approx::MacroState::MinimalCongestion);
}

// ----------------------------------------------------------------- pdes --

TEST(ParallelStats, AccumulateAcrossRuns) {
  sim::ParallelEngine::Config cfg;
  cfg.num_partitions = 2;
  cfg.lookahead = SimTime::from_us(1);
  sim::ParallelEngine eng{cfg};
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(2), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_us(2), [] {});
  });
  eng.run_until(SimTime::from_us(100));
  const auto rounds1 = eng.stats().sync_rounds;
  EXPECT_EQ(eng.stats().cross_messages, 1u);
  s0.schedule_at(SimTime::from_us(200), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_us(2), [] {});
  });
  eng.run_until(SimTime::from_us(300));
  EXPECT_EQ(eng.stats().cross_messages, 2u);
  EXPECT_GT(eng.stats().sync_rounds, rounds1);
}

}  // namespace
}  // namespace esim
