#include <gtest/gtest.h>

#include <cmath>

#include "approx/dataset.h"
#include "approx/features.h"
#include "approx/macro_model.h"
#include "approx/micro_model.h"
#include "approx/trace.h"
#include "approx/trainer.h"
#include "core/experiment.h"
#include "core/full_builder.h"
#include "sim/random.h"
#include "workload/generator.h"

namespace esim::approx {
namespace {

using sim::SimTime;

net::ClosSpec two_cluster_spec() {
  net::ClosSpec s;
  s.clusters = 2;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

net::Packet make_packet(net::HostId src, net::HostId dst,
                        std::uint16_t sport = 100,
                        std::uint32_t payload = 1460) {
  net::Packet p;
  p.id = (static_cast<std::uint64_t>(src) << 40) | sport;
  p.flow = net::FlowKey{src, dst, sport, 80};
  p.payload = payload;
  return p;
}

TEST(FeatureExtractor, DimensionsAndRanges) {
  FeatureExtractor fx{two_cluster_spec(), 1, Direction::Egress};
  const auto f = fx.extract(make_packet(8, 0), SimTime::from_us(10),
                            MacroState::MinimalCongestion);
  for (double v : f.v) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.6);
  }
  // Macro one-hot.
  EXPECT_EQ(f.v[9], 1.0);
  EXPECT_EQ(f.v[10], 0.0);
}

TEST(FeatureExtractor, MacroOneHotMoves) {
  FeatureExtractor fx{two_cluster_spec(), 1, Direction::Egress};
  const auto f = fx.extract(make_packet(8, 0), SimTime::from_us(10),
                            MacroState::HighCongestion);
  EXPECT_EQ(f.v[9], 0.0);
  EXPECT_EQ(f.v[11], 1.0);
}

TEST(FeatureExtractor, GapTracksInterArrival) {
  FeatureExtractor fx{two_cluster_spec(), 1, Direction::Egress};
  const auto f1 = fx.extract(make_packet(8, 0), SimTime::from_us(10),
                             MacroState::MinimalCongestion);
  EXPECT_EQ(f1.v[5], 0.0);  // first packet: no gap
  const auto f2 = fx.extract(make_packet(8, 0), SimTime::from_us(30),
                             MacroState::MinimalCongestion);
  EXPECT_NEAR(f2.v[5], std::log1p(20.0) / 10.0, 1e-12);
  fx.reset();
  const auto f3 = fx.extract(make_packet(8, 0), SimTime::from_us(50),
                             MacroState::MinimalCongestion);
  EXPECT_EQ(f3.v[5], 0.0);
}

TEST(FeatureExtractor, PathFeaturesMatchReplay) {
  const auto spec = two_cluster_spec();
  FeatureExtractor fx{spec, 1, Direction::Egress};
  const auto pkt = make_packet(8, 0);  // cluster 1 -> cluster 0
  const auto path = net::compute_path(spec, pkt.flow);
  const auto f = fx.extract(pkt, SimTime::from_us(1),
                            MacroState::MinimalCongestion);
  const double switches = spec.total_switches();
  EXPECT_NEAR(f.v[2], path.hops[0] / switches, 1e-12);  // src ToR
  EXPECT_NEAR(f.v[3], path.hops[1] / switches, 1e-12);  // up agg
  EXPECT_NEAR(f.v[4], (path.hops[2] + 1.0) / switches, 1e-12);
  EXPECT_EQ(f.v[8], 0.0);  // inter-cluster
}

TEST(FeatureExtractor, IngressUsesFarSideSwitches) {
  const auto spec = two_cluster_spec();
  FeatureExtractor fx{spec, 1, Direction::Ingress};
  const auto pkt = make_packet(0, 12);  // into cluster 1
  const auto path = net::compute_path(spec, pkt.flow);
  const auto f = fx.extract(pkt, SimTime::from_us(1),
                            MacroState::MinimalCongestion);
  const double switches = spec.total_switches();
  EXPECT_NEAR(f.v[2], path.hops[4] / switches, 1e-12);  // dst ToR
  EXPECT_NEAR(f.v[3], path.hops[3] / switches, 1e-12);  // down agg
}

TEST(MacroClassifier, StartsMinimal) {
  MacroClassifier mc;
  EXPECT_EQ(mc.state(), MacroState::MinimalCongestion);
}

TEST(MacroClassifier, LowLatencyStaysMinimal) {
  MacroClassifier::Config cfg;
  cfg.baseline_latency_s = 6e-6;
  MacroClassifier mc{cfg};
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 50; ++i) mc.observe(5e-6, false);
    mc.advance_window();
  }
  EXPECT_EQ(mc.state(), MacroState::MinimalCongestion);
}

TEST(MacroClassifier, HighDropsClassifyAsState4) {
  // Paper §4.1: "if drops are relatively high, it classifies the network
  // as (4)".
  MacroClassifier::Config cfg;
  cfg.high_drop_rate = 0.05;
  MacroClassifier mc{cfg};
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 50; ++i) mc.observe(50e-6, i % 5 == 0);
    mc.advance_window();
  }
  EXPECT_EQ(mc.state(), MacroState::DecreasingCongestion);
}

TEST(MacroClassifier, RisingLatencyIsIncreasingCongestion) {
  MacroClassifier::Config cfg;
  cfg.baseline_latency_s = 6e-6;
  MacroClassifier mc{cfg};
  double latency = 10e-6;
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 50; ++i) mc.observe(latency, false);
    mc.advance_window();
    latency *= 1.6;  // keeps the smoothed signal rising
  }
  EXPECT_EQ(mc.state(), MacroState::IncreasingCongestion);
}

TEST(MacroClassifier, FallingHighLatencyIsHighCongestion) {
  MacroClassifier::Config cfg;
  cfg.baseline_latency_s = 6e-6;
  MacroClassifier mc{cfg};
  // Drive up...
  double latency = 200e-6;
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 50; ++i) mc.observe(latency, false);
    mc.advance_window();
    latency *= 1.5;
  }
  // ...then ease down while still well above baseline.
  for (int w = 0; w < 3; ++w) {
    latency *= 0.7;
    for (int i = 0; i < 50; ++i) mc.observe(latency, false);
    mc.advance_window();
  }
  EXPECT_EQ(mc.state(), MacroState::HighCongestion);
}

TEST(MacroClassifier, ResetRestoresInitialState) {
  MacroClassifier mc;
  for (int i = 0; i < 10; ++i) mc.observe(1e-3, true);
  mc.advance_window();
  mc.reset();
  EXPECT_EQ(mc.state(), MacroState::MinimalCongestion);
  EXPECT_EQ(mc.latency_ewma(), 0.0);
}

TEST(MicroModel, PredictionShapesAndNormalization) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  cfg.layers = 2;
  MicroModel m{cfg};
  m.set_latency_normalization(std::log(20.0), 0.5);
  EXPECT_NEAR(m.denormalize_latency(0.0), 20e-6, 1e-12);
  EXPECT_NEAR(m.normalize_latency(20e-6), 0.0, 1e-9);
  EXPECT_NEAR(m.normalize_latency(m.denormalize_latency(1.3)), 1.3, 1e-9);

  PacketFeatures f;
  const auto p = m.predict(f);
  EXPECT_GE(p.drop_probability, 0.0);
  EXPECT_LE(p.drop_probability, 1.0);
  EXPECT_GT(p.latency_seconds, 0.0);
}

TEST(MicroModel, StatefulPredictionsEvolve) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  MicroModel m{cfg};
  PacketFeatures f;
  f.v[0] = 0.5;
  const auto p1 = m.predict(f);
  const auto p2 = m.predict(f);
  EXPECT_NE(p1.latency_seconds, p2.latency_seconds);  // hidden state moved
  m.reset_state();
  const auto p3 = m.predict(f);
  EXPECT_DOUBLE_EQ(p1.latency_seconds, p3.latency_seconds);
}

TEST(MicroModel, ParametersIncludeNormalization) {
  MicroModel::Config cfg;
  cfg.hidden = 4;
  MicroModel m{cfg};
  bool found = false;
  for (auto& p : m.parameters()) {
    if (p.name == "norm") found = true;
  }
  EXPECT_TRUE(found);
}

// Regression: copying a model must reset the copy's recurrent state, not
// share the source's streamed history — each ApproxCluster starts its
// private copy from zero state.
TEST(MicroModel, CopyResetsRecurrentState) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  MicroModel m{cfg};
  MicroModel fresh{m};  // identical weights, untouched state
  PacketFeatures f;
  f.v[0] = 0.5;
  f.v[3] = -0.25;
  for (int i = 0; i < 5; ++i) (void)m.predict(f);  // advance m's state

  MicroModel copied{m};
  MicroModel assigned{fresh};
  assigned = m;
  const auto expected = fresh.predict(f);  // first prediction, zero state
  const auto from_copy = copied.predict(f);
  const auto from_assign = assigned.predict(f);
  EXPECT_EQ(from_copy.latency_seconds, expected.latency_seconds);
  EXPECT_EQ(from_copy.drop_probability, expected.drop_probability);
  EXPECT_EQ(from_assign.latency_seconds, expected.latency_seconds);
  EXPECT_EQ(from_assign.drop_probability, expected.drop_probability);
}

// Runs a short full-fidelity 2-cluster simulation with a recorder on
// cluster 1 and returns the recorder + generator stats.
struct RecordedRun {
  std::vector<BoundaryRecord> records;
  std::uint64_t flows = 0;
};

RecordedRun record_boundary(std::uint64_t seed, SimTime duration) {
  sim::Simulator sim{seed};
  core::NetworkConfig cfg;
  cfg.spec = two_cluster_spec();
  auto network = core::build_full_network(sim, cfg);
  const auto taps = core::make_boundary_taps(network, 1);
  TraceRecorder recorder{cfg.spec, 1, taps};

  auto sizes = workload::mini_web_distribution();
  workload::ClusterMixTraffic matrix{cfg.spec, 0.3};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.3;
  gcfg.stop_at = duration;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", network.hosts, sizes.get(), &matrix, gcfg);
  gen->start();
  sim.run_until(duration + SimTime::from_ms(20));
  recorder.finalize();
  return RecordedRun{recorder.records(), gen->launched()};
}

TEST(TraceRecorder, CapturesBothDirections) {
  const auto run = record_boundary(5, SimTime::from_ms(10));
  ASSERT_GT(run.records.size(), 100u);
  std::size_t ingress = 0, egress = 0, completed = 0;
  for (const auto& r : run.records) {
    if (r.direction == Direction::Ingress) ++ingress;
    if (r.direction == Direction::Egress) ++egress;
    if (r.completed) ++completed;
  }
  EXPECT_GT(ingress, 20u);
  EXPECT_GT(egress, 20u);
  EXPECT_GT(completed, run.records.size() * 9 / 10);
}

TEST(TraceRecorder, LatenciesArePhysical) {
  const auto run = record_boundary(6, SimTime::from_ms(10));
  // Fabric traversal: at least 2 hops of 1us propagation plus
  // serialization; far below a second.
  for (const auto& r : run.records) {
    if (!r.completed || r.dropped) continue;
    const double lat = (r.exit - r.entry).to_seconds();
    EXPECT_GT(lat, 2e-6);
    EXPECT_LT(lat, 1.0);
  }
}

TEST(TraceRecorder, NoIntraClusterRecords) {
  const auto run = record_boundary(7, SimTime::from_ms(10));
  const auto spec = two_cluster_spec();
  for (const auto& r : run.records) {
    EXPECT_NE(spec.cluster_of_host(r.packet.flow.src_host),
              spec.cluster_of_host(r.packet.flow.dst_host))
        << "intra-cluster packet leaked into the boundary trace";
  }
}

TEST(Dataset, BuildsAlignedRows) {
  const auto run = record_boundary(8, SimTime::from_ms(10));
  const auto ds = build_dataset(two_cluster_spec(), 1, Direction::Egress,
                                run.records, MacroClassifier::Config{});
  ASSERT_GT(ds.size(), 50u);
  EXPECT_EQ(ds.features.size(), ds.drop_targets.size());
  EXPECT_EQ(ds.features.size(), ds.latency_log_us.size());
  EXPECT_GT(ds.std_log_us, 0.0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(ds.drop_targets[i] == 0.0 || ds.drop_targets[i] == 1.0);
    if (ds.drop_targets[i] == 0.0) {
      EXPECT_GT(ds.latency_log_us[i], 0.0);  // > 1us in log space
    }
  }
}

TEST(Trainer, LossDecreasesOnRealTrace) {
  const auto run = record_boundary(9, SimTime::from_ms(15));
  const auto ds = build_dataset(two_cluster_spec(), 1, Direction::Egress,
                                run.records, MacroClassifier::Config{});
  ASSERT_GT(ds.size(), 100u);

  MicroModel::Config mcfg;
  mcfg.hidden = 8;
  mcfg.layers = 1;
  MicroModel model{mcfg};

  TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.seq_len = 16;
  tcfg.batches = 60;
  tcfg.learning_rate = 1e-2;  // small net, small data: larger LR converges
  const auto report = train_micro_model(model, ds, tcfg);
  EXPECT_LT(report.final_loss, report.initial_loss);
  EXPECT_GT(report.drop_accuracy, 0.8);  // drops are rare at 30% load
  EXPECT_EQ(report.dataset_size, ds.size());
}

TEST(Trainer, LearnsSyntheticSeparableDrops) {
  // Synthetic dataset where feature 0 decides drops and feature 7 decides
  // latency: training must reach high accuracy and low latency error.
  sim::Rng rng{10};
  Dataset ds;
  for (int i = 0; i < 3000; ++i) {
    PacketFeatures f;
    f.v[0] = rng.uniform();
    f.v[7] = rng.uniform();
    const bool drop = f.v[0] > 0.7;
    ds.features.push_back(f);
    ds.drop_targets.push_back(drop ? 1.0 : 0.0);
    ds.latency_log_us.push_back(drop ? 0.0 : 1.0 + 2.0 * f.v[7]);
  }
  double sum = 0, sq = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.drop_targets[i] == 0.0) {
      sum += ds.latency_log_us[i];
      sq += ds.latency_log_us[i] * ds.latency_log_us[i];
      ++n;
    }
  }
  ds.mean_log_us = sum / n;
  ds.std_log_us = std::sqrt(sq / n - ds.mean_log_us * ds.mean_log_us);

  MicroModel::Config mcfg;
  mcfg.hidden = 12;
  mcfg.layers = 1;
  MicroModel model{mcfg};
  TrainConfig tcfg;
  tcfg.batch_size = 32;
  tcfg.seq_len = 8;
  tcfg.batches = 800;
  tcfg.learning_rate = 3e-2;
  tcfg.alpha = 1.0;
  const auto report = train_micro_model(model, ds, tcfg);
  EXPECT_GT(report.drop_accuracy, 0.93);
  EXPECT_LT(report.latency_mae, 0.35);
}

TEST(Trainer, RejectsBadInputs) {
  MicroModel::Config mcfg;
  mcfg.hidden = 4;
  MicroModel model{mcfg};
  Dataset empty;
  TrainConfig tcfg;
  EXPECT_THROW(train_micro_model(model, empty, tcfg),
               std::invalid_argument);
  Dataset tiny;
  for (int i = 0; i < 5; ++i) {
    tiny.features.push_back({});
    tiny.drop_targets.push_back(0.0);
    tiny.latency_log_us.push_back(1.0);
  }
  tcfg.seq_len = 32;
  EXPECT_THROW(train_micro_model(model, tiny, tcfg),
               std::invalid_argument);
  tcfg.seq_len = 2;
  tcfg.alpha = 0.0;
  EXPECT_THROW(train_micro_model(model, tiny, tcfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace esim::approx
