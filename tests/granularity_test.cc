// Tests for the adaptive multi-granularity direction (DESIGN.md §12):
// the FluidClusterBackend's rate model and same-instant commutativity,
// the GranularityController's hysteresis state machine, and the
// end-to-end engine-invariance of adaptive runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "check/hybrid_diff.h"
#include "core/cluster_backend.h"
#include "core/granularity.h"
#include "net/packet.h"
#include "telemetry/fidelity.h"

namespace esim {
namespace {

using core::AdmitContext;
using core::ClusterTier;
using core::ClusterTierPolicy;
using core::FluidClusterBackend;
using core::GranularityController;
using core::TierDecision;
using sim::SimTime;
using telemetry::ClusterFidelityProbe;
using telemetry::CongestionState;
using telemetry::FidelityConfig;
using telemetry::FidelitySink;

// --- FluidClusterBackend -------------------------------------------------

net::ClosSpec fluid_spec() {
  net::ClosSpec s;
  s.clusters = 2;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

FluidClusterBackend::Config fluid_config() {
  FluidClusterBackend::Config cfg;
  cfg.spec = fluid_spec();
  cfg.bandwidth_bps = 10e9;
  cfg.flow_bytes = 64ull << 20;
  cfg.idle_windows = 2;
  cfg.window_ns = 100'000;
  return cfg;
}

net::Packet make_packet(net::HostId src, net::HostId dst,
                        std::uint16_t sport = 100) {
  net::Packet p;
  p.flow = net::FlowKey{src, dst, sport, 80};
  p.payload = 1400;
  return p;
}

TierDecision admit_at(FluidClusterBackend& b, const net::Packet& pkt,
                      std::int64_t t_ns) {
  AdmitContext ctx{pkt, SimTime::from_ns(t_ns), /*egress=*/false,
                   /*features=*/{}, /*drop_draw=*/0.0};
  return b.admit(ctx);
}

double line_rate_latency(const net::Packet& pkt, double bps) {
  return static_cast<double>(pkt.size_bytes()) * 8.0 / bps;
}

TEST(FluidCluster, FirstTouchFallsBackToLineRate) {
  FluidClusterBackend b{fluid_config()};
  b.on_activated(SimTime{});
  const auto pkt = make_packet(0, 1);
  const TierDecision d = admit_at(b, pkt, 1'000);
  EXPECT_FALSE(d.drop);
  // The flow is not in the rate model until the instant advances, so the
  // first packet serializes at line rate.
  EXPECT_DOUBLE_EQ(d.latency_s, line_rate_latency(pkt, 10e9));
  EXPECT_EQ(b.tracked_flows(), 1u);
}

TEST(FluidCluster, LatencyTracksFairShare) {
  FluidClusterBackend b{fluid_config()};
  b.on_activated(SimTime{});
  // Two flows into host 1: its downlink is the common bottleneck, so
  // once flushed each holds a 5 Gbps max-min share.
  const auto pa = make_packet(0, 1, 100);
  const auto pb = make_packet(2, 1, 200);
  admit_at(b, pa, 1'000);
  admit_at(b, pb, 1'000);
  const TierDecision da = admit_at(b, pa, 2'000);
  const TierDecision db = admit_at(b, pb, 2'000);
  EXPECT_FALSE(da.drop);
  EXPECT_NEAR(da.latency_s, line_rate_latency(pa, 5e9), 1e-12);
  EXPECT_NEAR(db.latency_s, line_rate_latency(pb, 5e9), 1e-12);
  EXPECT_EQ(b.tracked_flows(), 2u);
}

TEST(FluidCluster, SameInstantAdmissionsCommute) {
  // Under PDES a remote-injected event can tie with a local one at the
  // same nanosecond with engine-dependent pop order; the backend's
  // contract is that any order of same-instant admissions yields the
  // same decisions AND the same model state afterwards.
  FluidClusterBackend x{fluid_config()};
  FluidClusterBackend y{fluid_config()};
  x.on_activated(SimTime{});
  y.on_activated(SimTime{});
  const auto pa = make_packet(0, 1, 100);
  const auto pb = make_packet(2, 1, 200);
  // Seed both with the same first instant (same order: it commutes too,
  // but keep the histories literally identical up to the tied instant).
  admit_at(x, pa, 1'000);
  admit_at(x, pb, 1'000);
  admit_at(y, pa, 1'000);
  admit_at(y, pb, 1'000);
  // Tied instant, opposite pop orders.
  const TierDecision xa = admit_at(x, pa, 2'000);
  const TierDecision xb = admit_at(x, pb, 2'000);
  const TierDecision yb = admit_at(y, pb, 2'000);
  const TierDecision ya = admit_at(y, pa, 2'000);
  EXPECT_DOUBLE_EQ(xa.latency_s, ya.latency_s);
  EXPECT_DOUBLE_EQ(xb.latency_s, yb.latency_s);
  // The buffered mutations flush in canonical key order, so the models
  // converge: a later probe reads identical state from both.
  const TierDecision px = admit_at(x, pa, 3'000);
  const TierDecision py = admit_at(y, pa, 3'000);
  EXPECT_DOUBLE_EQ(px.latency_s, py.latency_s);
  EXPECT_EQ(x.tracked_flows(), y.tracked_flows());
}

TEST(FluidCluster, IdleFlowsAreSweptAtWindowBoundaries) {
  FluidClusterBackend b{fluid_config()};  // idle_windows=2, window=100us
  b.on_activated(SimTime{});
  const auto pa = make_packet(0, 1, 100);
  const auto pb = make_packet(2, 1, 200);
  admit_at(b, pa, 1'000);
  admit_at(b, pb, 1'000);
  // Keep A alive past the boundaries; B never shows up again.
  admit_at(b, pa, 250'000);
  // Crossing the 300us boundary sweeps flows idle since before 100us:
  // B (last touch 1us) goes, A (last touch 250us) stays — and with the
  // bottleneck to itself, A is back at full line rate.
  const TierDecision da = admit_at(b, pa, 350'000);
  EXPECT_EQ(b.tracked_flows(), 1u);
  EXPECT_NEAR(da.latency_s, line_rate_latency(pa, 10e9), 1e-12);
}

TEST(FluidCluster, NeverDropsAndReactivationResets) {
  FluidClusterBackend b{fluid_config()};
  b.on_activated(SimTime{});
  for (int i = 0; i < 50; ++i) {
    const auto p = make_packet(i % 4, 8 + i % 4,
                               static_cast<std::uint16_t>(100 + i));
    EXPECT_FALSE(admit_at(b, p, 1'000 + i * 500).drop);
  }
  EXPECT_GT(b.tracked_flows(), 0u);
  // Switching back INTO the tier later must not leak prior-period flows:
  // a tier period is a pure function of the packets admitted during it.
  b.on_activated(SimTime::from_us(500));
  EXPECT_EQ(b.tracked_flows(), 0u);
  const auto pkt = make_packet(0, 1);
  const TierDecision d = admit_at(b, pkt, 501'000);
  EXPECT_DOUBLE_EQ(d.latency_s, line_rate_latency(pkt, 10e9));
}

// --- GranularityController -----------------------------------------------

TEST(Granularity, TargetTierFollowsCongestionState) {
  EXPECT_EQ(GranularityController::target_for(CongestionState::Quiescent),
            ClusterTier::Fluid);
  EXPECT_EQ(GranularityController::target_for(CongestionState::Nominal),
            ClusterTier::Ml);
  EXPECT_EQ(GranularityController::target_for(CongestionState::Congested),
            ClusterTier::Packet);
}

TEST(Granularity, ControllerRequiresProbe) {
  ClusterTierPolicy policy;
  policy.mode = ClusterTierPolicy::Mode::Adaptive;
  EXPECT_THROW(GranularityController(policy, 0, nullptr, nullptr),
               std::invalid_argument);
}

TEST(Granularity, ControllerHonorsMinDwellHysteresis) {
  FidelityConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = 0;  // congestion tracking only
  cfg.ewma_alpha = 1.0;   // classification reacts within one window
  cfg.quiescent_util = 0.02;
  cfg.congested_util = 0.5;
  cfg.congested_drop_rate = 0.5;
  FidelitySink sink{cfg};
  // capacity 1 Gbps, 1 ms windows: one window carries 125000 bytes.
  ClusterFidelityProbe probe{sink, 0, 1e9, nullptr};

  ClusterTierPolicy policy;
  policy.mode = ClusterTierPolicy::Mode::Adaptive;
  policy.fixed_tier = ClusterTier::Ml;
  policy.min_dwell_windows = 3;
  GranularityController ctl{policy, 0, &probe, nullptr};
  EXPECT_EQ(ctl.tier(), ClusterTier::Ml);

  constexpr std::int64_t kWindowNs = 1'000'000;
  std::int64_t now = 0;
  auto window = [&](std::uint64_t bytes) {
    now += kWindowNs;
    for (std::uint64_t fed = 0; fed < bytes; fed += 1000) {
      probe.observe_packet(1000, /*dropped=*/false);
    }
    probe.on_macro_window(now, kWindowNs);
    return ctl.on_macro_window(now);
  };

  // Quiescent (zero traffic) demands Fluid, but min-dwell holds the
  // transition until the third window on the current tier.
  EXPECT_EQ(window(0), std::nullopt);
  EXPECT_EQ(window(0), std::nullopt);
  EXPECT_EQ(window(0), ClusterTier::Fluid);
  ASSERT_EQ(ctl.transitions().size(), 1u);
  EXPECT_EQ(ctl.transitions()[0],
            (core::TierTransition{now, ClusterTier::Ml, ClusterTier::Fluid}));

  // Congested (util 0.8) demands Packet; the dwell clock restarted at
  // the transition, so again two windows of hysteresis first.
  EXPECT_EQ(window(100'000), std::nullopt);
  EXPECT_EQ(window(100'000), std::nullopt);
  EXPECT_EQ(window(100'000), ClusterTier::Packet);
  EXPECT_EQ(ctl.tier(), ClusterTier::Packet);

  // A satisfied target never re-fires, however long the dwell.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(window(100'000), std::nullopt);
  }
  EXPECT_EQ(ctl.transitions().size(), 2u);
}

// --- end-to-end adaptive runs --------------------------------------------

TEST(Granularity, AdaptiveRunIsReproducibleWithNontrivialTrace) {
  const check::HybridScenario sc = check::random_granularity_scenario(3);
  check::TierTraces t1, t2;
  const check::Digest d1 = check::run_hybrid(sc, 0, true, nullptr, &t1);
  const check::Digest d2 = check::run_hybrid(sc, 0, true, nullptr, &t2);
  EXPECT_TRUE(d1 == d2);
  EXPECT_EQ(t1, t2);
  // The corpus is built to actually exercise the controller.
  std::size_t transitions = 0;
  for (const auto& [cluster, trace] : t1) {
    transitions += trace.size();
    if (!trace.empty()) {
      // Every cluster starts on the legacy tier.
      EXPECT_EQ(trace.front().from, ClusterTier::Ml);
    }
  }
  EXPECT_GT(transitions, 0u);
}

TEST(Granularity, AdaptiveScenarioIsEngineInvariant) {
  // One full equivalence check: batching on/off (sampled drops) and
  // sequential vs PDES(2) (threshold drops), tier traces element-wise
  // identical. The fuzz-tier ctest entry runs 25 of these.
  const check::HybridScenario sc = check::random_granularity_scenario(11);
  std::uint64_t transitions = 0;
  EXPECT_EQ(check::check_granularity(sc, {2}, &transitions), "");
  EXPECT_GT(transitions, 0u);
}

}  // namespace
}  // namespace esim
