#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace esim::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  q.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_us(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (auto e = q.pop()) e->fn();
  std::vector<int> expect(10);
  for (int i = 0; i < 10; ++i) expect[i] = i;
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, SameTimeKeyedEventsPopInKeyOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_us(5);
  // Inserted in descending key order; must pop ascending by key.
  q.schedule(t, 30, [&] { order.push_back(30); });
  q.schedule(t, 10, [&] { order.push_back(10); });
  q.schedule(t, 20, [&] { order.push_back(20); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, ZeroKeyPrecedesKeyedAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_us(5);
  q.schedule(t, 7, [&] { order.push_back(1); });
  q.schedule(t, [&] { order.push_back(0); });  // plain schedule: key 0
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, KeyOrdersOnlyWithinOneInstant) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(20), 1, [&] { order.push_back(2); });
  q.schedule(SimTime::from_ns(10), 99, [&] { order.push_back(1); });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // time dominates key
}

TEST(EventQueue, EqualKeysFallBackToSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_us(5);
  for (int i = 0; i < 5; ++i) {
    q.schedule(t, 42, [&order, i] { order.push_back(i); });
  }
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, DebugInvertReversesSameTimeOrdering) {
  EventQueue q;
  q.debug_set_invert_tiebreak(true);
  std::vector<int> order;
  const auto t = SimTime::from_us(5);
  q.schedule(t, 10, [&] { order.push_back(10); });
  q.schedule(t, 20, [&] { order.push_back(20); });
  q.schedule(t, [&] { order.push_back(1); });  // key 0
  q.schedule(t, [&] { order.push_back(2); });  // key 0
  while (auto e = q.pop()) e->fn();
  // Inverted: descending key first, zero-key ties in reverse insertion.
  EXPECT_EQ(order, (std::vector<int>{20, 10, 2, 1}));
}

TEST(EventQueue, DebugInvertAfterScheduleThrows) {
  EventQueue q;
  q.schedule(SimTime::from_ns(1), [] {});
  EXPECT_THROW(q.debug_set_invert_tiebreak(true), std::logic_error);
}

TEST(EventQueue, NextTimeTracksEarliest) {
  EventQueue q;
  q.schedule(SimTime::from_ns(50), [] {});
  q.schedule(SimTime::from_ns(20), [] {});
  EXPECT_EQ(q.next_time(), SimTime::from_ns(20));
  (void)q.pop();
  EXPECT_EQ(q.next_time(), SimTime::from_ns(50));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(SimTime::from_ns(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  auto h = q.schedule(SimTime::from_ns(10), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelExecutedFails) {
  EventQueue q;
  auto h = q.schedule(SimTime::from_ns(10), [] {});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
  EXPECT_FALSE(q.cancel(EventHandle{123456}));
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  auto h = q.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  q.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 2u);
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  auto h1 = q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(SimTime::from_ns(i), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, TotalScheduledCountsEverything) {
  EventQueue q;
  auto h = q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(2), [] {});
  q.cancel(h);
  EXPECT_EQ(q.total_scheduled(), 2u);
}

TEST(EventQueue, MoveOnlyAndOversizedCallablesWork) {
  EventQueue q;
  int value = 0;
  // Move-only capture (std::function could never hold this).
  auto token = std::make_unique<int>(7);
  q.schedule(SimTime::from_ns(1),
             [&value, owned = std::move(token)] { value = *owned; });
  // Capture larger than EventFn's inline buffer: exercises the heap
  // fallback path.
  struct Big {
    char blob[2 * EventFn::kInlineSize] = {};
    int* out = nullptr;
  };
  Big big;
  big.out = &value;
  q.schedule(SimTime::from_ns(2), [big] { *big.out += 1; });
  while (auto e = q.pop()) e->fn();
  EXPECT_EQ(value, 8);
}

TEST(EventQueue, HandleReuseAcrossGenerations) {
  EventQueue q;
  bool first_ran = false;
  bool second_ran = false;
  auto h1 = q.schedule(SimTime::from_ns(10), [&] { first_ran = true; });
  EXPECT_TRUE(q.cancel(h1));
  // The slot is recycled for the next schedule; the stale handle must not
  // be able to cancel the new occupant.
  auto h2 = q.schedule(SimTime::from_ns(20), [&] { second_ran = true; });
  EXPECT_NE(h1.id, h2.id);
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  while (auto e = q.pop()) e->fn();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
  // And after execution the recycled handle is dead too.
  EXPECT_FALSE(q.cancel(h2));
}

// The satellite churn scenario: 100k TCP-retransmission-timer-like events,
// 7 of 8 cancelled before firing. Asserts (a) pop order matches the sorted
// (time, seq) reference exactly, (b) dead entries do not accumulate beyond
// the compaction bound, and (c) handles stay valid across slot-generation
// reuse.
TEST(EventQueue, CancelHeavyChurnKeepsOrderAndBoundsMemory) {
  constexpr int kEvents = 100'000;
  Rng rng{7};
  EventQueue q;
  struct Ref {
    std::int64_t t;
    std::uint64_t seq;
  };
  std::vector<Ref> expect;
  std::vector<std::pair<std::int64_t, std::uint64_t>> popped;
  std::vector<EventHandle> wave;
  std::size_t max_heap_entries = 0;
  std::size_t max_live = 0;
  for (int i = 0; i < kEvents; ++i) {
    const auto t = static_cast<std::int64_t>(rng.uniform_int(1'000'000));
    const auto s = static_cast<std::uint64_t>(i);
    auto h = q.schedule(SimTime::from_ns(t),
                        [&popped, t, s] { popped.emplace_back(t, s); });
    wave.push_back(h);
    if (wave.size() == 8) {
      // Cancel 7 of 8, like ACKs clearing retransmission timers.
      for (std::size_t k = 0; k + 1 < wave.size(); ++k) {
        ASSERT_TRUE(q.cancel(wave[k]));
      }
      expect.push_back(Ref{t, s});
      wave.clear();
    }
    max_heap_entries = std::max(max_heap_entries, q.heap_entries());
    max_live = std::max(max_live, q.size());
  }
  for (auto h : wave) q.cancel(h);
  // Dead-entry retention bound: compaction keeps the heap within 2x the
  // live count (plus the small-queue threshold it does not bother with).
  EXPECT_LE(max_heap_entries, 2 * max_live + 64);
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 64);
  while (auto e = q.pop()) e->fn();
  std::vector<std::pair<std::int64_t, std::uint64_t>> want;
  for (const auto& r : expect) want.emplace_back(r.t, r.seq);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(popped, want);
}

// Property test: against a sorted reference, random schedule/cancel
// sequences must pop in exact (time, seq) order.
TEST(EventQueue, RandomizedAgainstReference) {
  Rng rng{2024};
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    struct Ref {
      std::int64_t t;
      std::uint64_t seq;
    };
    std::vector<Ref> ref;
    std::vector<EventHandle> handles;
    std::vector<std::pair<std::int64_t, std::uint64_t>> popped;
    std::uint64_t seq = 0;
    for (int i = 0; i < 500; ++i) {
      const auto t = static_cast<std::int64_t>(rng.uniform_int(1000));
      const std::uint64_t s = seq++;
      auto h = q.schedule(SimTime::from_ns(t), [&popped, t, s] {
        popped.emplace_back(t, s);
      });
      handles.push_back(h);
      ref.push_back({t, s});
      // Randomly cancel an earlier event.
      if (rng.bernoulli(0.2) && !handles.empty()) {
        const auto idx = rng.uniform_int(handles.size());
        if (q.cancel(handles[idx])) {
          // Mark as cancelled in the reference.
          ref[idx].t = -1;
        }
      }
    }
    while (auto e = q.pop()) e->fn();
    std::vector<std::pair<std::int64_t, std::uint64_t>> expect;
    for (const auto& r : ref) {
      if (r.t >= 0) expect.emplace_back(r.t, r.seq);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(popped, expect) << "trial " << trial;
  }
}

// --- accounting snapshot/restore (the memo fast-forward contract) -----

TEST(EventQueue, AccountingSnapshotCapturesLiveSet) {
  EventQueue q;
  q.schedule(SimTime::from_ns(10), [] {});
  const EventHandle b = q.schedule(SimTime::from_ns(20), [] {});
  const EventQueue::AccountingSnapshot snap = q.snapshot_accounting();
  EXPECT_EQ(snap.live, 2u);
  EXPECT_EQ(snap.next_seq, 3u);
  EXPECT_EQ(snap.total_scheduled, 2u);
  // The fingerprint is order-independent over the live set: cancelling
  // and re-adding an equivalent (time, key) entry reproduces it.
  q.cancel(b);
  q.schedule(SimTime::from_ns(20), [] {});
  EXPECT_EQ(q.pending_fingerprint(), snap.pending);
}

TEST(EventQueue, PendingFingerprintDistinguishesTimeAndKey) {
  EventQueue a, b, c;
  a.schedule(SimTime::from_ns(10), 5, [] {});
  b.schedule(SimTime::from_ns(11), 5, [] {});
  c.schedule(SimTime::from_ns(10), 6, [] {});
  EXPECT_NE(a.pending_fingerprint(), b.pending_fingerprint());
  EXPECT_NE(a.pending_fingerprint(), c.pending_fingerprint());
  EXPECT_NE(b.pending_fingerprint(), c.pending_fingerprint());
}

// The regression named by the contract comment in event_queue.h: restore
// after cancellation churn must keep every dead handle dead (generations
// are monotonic for the queue's lifetime, never restored), while seq
// numbering and scheduled totals rewind exactly.
TEST(EventQueue, ChurnThenRestore) {
  EventQueue q;
  const EventHandle a = q.schedule(SimTime::from_ns(10), [] {});
  const EventHandle b = q.schedule(SimTime::from_ns(20), [] {});

  // Pre-snapshot churn: burn seqs and generations.
  for (int i = 0; i < 5; ++i) {
    const EventHandle h = q.schedule(SimTime::from_ns(100 + i), [] {});
    ASSERT_TRUE(q.cancel(h));
  }
  const EventQueue::AccountingSnapshot snap = q.snapshot_accounting();
  ASSERT_EQ(snap.live, 2u);
  ASSERT_EQ(snap.next_seq, 8u);

  // Post-snapshot churn that fully unwinds: schedule two more, cancel
  // both — the live set is back to {a, b}.
  const EventHandle f = q.schedule(SimTime::from_ns(30), [] {});
  const EventHandle g = q.schedule(SimTime::from_ns(40), [] {});
  ASSERT_TRUE(q.cancel(f));
  ASSERT_TRUE(q.cancel(g));

  q.restore_accounting(snap);
  EXPECT_EQ(q.next_seq(), snap.next_seq);
  EXPECT_EQ(q.total_scheduled(), snap.total_scheduled);
  EXPECT_EQ(q.snapshot_accounting(), snap);

  // The cancelled handles stay dead even though the seq range they
  // occupied has been rewound and will be reissued.
  EXPECT_FALSE(q.live(f));
  EXPECT_FALSE(q.cancel(f));
  EXPECT_FALSE(q.cancel(g));

  // Reissued seqs go to NEW handles; the old ones still don't resolve.
  const EventHandle h = q.schedule(SimTime::from_ns(30), [] {});
  EXPECT_EQ(q.seq_of(h), 8u);  // f's old seq, reused
  EXPECT_TRUE(q.live(h));
  EXPECT_FALSE(q.live(f));
  EXPECT_FALSE(q.cancel(f));  // stale handle cannot cancel the new event
  EXPECT_TRUE(q.live(a));
  EXPECT_TRUE(q.live(b));

  // Pop order is unaffected: a@10, b@20, h@30.
  std::vector<std::int64_t> times;
  while (auto e = q.pop()) times.push_back(e->time.ns());
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(EventQueue, RestoreRejectsMismatchedLiveSet) {
  EventQueue q;
  q.schedule(SimTime::from_ns(10), [] {});
  const EventQueue::AccountingSnapshot snap = q.snapshot_accounting();

  // Live count drifted.
  q.schedule(SimTime::from_ns(20), [] {});
  EXPECT_THROW(q.restore_accounting(snap), std::logic_error);

  // Count matches but the (time, key) multiset does not.
  EventQueue q2;
  const EventHandle h = q2.schedule(SimTime::from_ns(10), [] {});
  const EventQueue::AccountingSnapshot snap2 = q2.snapshot_accounting();
  ASSERT_TRUE(q2.cancel(h));
  q2.schedule(SimTime::from_ns(11), [] {});
  EXPECT_THROW(q2.restore_accounting(snap2), std::logic_error);
}

TEST(EventQueue, RestoreRejectsLiveEventFromTheFuture) {
  // An event scheduled AFTER the snapshot that is still live at restore
  // time sits above the rewound next_seq; its (time, key) matches the
  // cancelled original's, so the fingerprint alone cannot tell them
  // apart — the seq bound check must refuse, or two live events could
  // later share one seq.
  EventQueue q;
  const EventHandle orig = q.schedule(SimTime::from_ns(10), [] {});
  const EventQueue::AccountingSnapshot snap = q.snapshot_accounting();
  const EventHandle later = q.schedule(SimTime::from_ns(10), [] {});
  ASSERT_TRUE(q.cancel(orig));
  ASSERT_TRUE(q.live(later));
  EXPECT_THROW(q.restore_accounting(snap), std::logic_error);
}

TEST(EventQueue, AdvanceAccountingMirrorsScheduling) {
  EventQueue q;
  q.schedule(SimTime::from_ns(10), [] {});
  const std::uint64_t seq_before = q.next_seq();
  const std::uint64_t total_before = q.total_scheduled();
  q.advance_accounting(17);
  EXPECT_EQ(q.next_seq(), seq_before + 17);
  EXPECT_EQ(q.total_scheduled(), total_before + 17);
  // The next real schedule lands after the advanced range, exactly as if
  // 17 events had actually been scheduled (and popped) in between.
  const EventHandle h = q.schedule(SimTime::from_ns(20), [] {});
  EXPECT_EQ(q.seq_of(h), seq_before + 17);
}

}  // namespace
}  // namespace esim::sim
