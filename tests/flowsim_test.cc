// Tests for the flow-level (fluid) baseline simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "flowsim/flow_level.h"
#include "sim/random.h"
#include "workload/flow_size.h"
#include "workload/traffic_matrix.h"

namespace esim::flowsim {
namespace {

using sim::SimTime;

net::ClosSpec small_spec() {
  net::ClosSpec s;
  s.clusters = 2;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

TEST(FlowLevel, SingleFlowRunsAtLineRate) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // 10 MB alone: FCT = 10e6 * 8 / 10e9 = 8 ms (fluid: no handshake, no
  // slow start, no serialization quantization).
  sim.add_flow(1, 0, 12, 10'000'000, SimTime::from_ms(1));
  sim.run();
  ASSERT_EQ(sim.results().size(), 1u);
  const auto& r = sim.results()[0];
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.bytes, 10'000'000u);
  EXPECT_NEAR(r.fct().to_seconds(), 8e-3, 1e-6);
  EXPECT_NEAR(r.completion.to_seconds(), 9e-3, 1e-6);
}

TEST(FlowLevel, TwoFlowsShareTheirCommonBottleneck) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // Both flows target host 1: its downlink is the common bottleneck, so
  // each gets 5 Gbps until the smaller finishes.
  sim.add_flow(1, 0, 1, 5'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 5'000'000, SimTime{});
  sim.run();
  ASSERT_EQ(sim.results().size(), 2u);
  for (const auto& r : sim.results()) {
    // 5 MB at 5 Gbps = 8 ms.
    EXPECT_NEAR(r.fct().to_seconds(), 8e-3, 1e-5) << "flow " << r.id;
  }
}

TEST(FlowLevel, MaxMinGivesUnbottleneckedFlowTheRemainder) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // Flows 1 and 2 share host 1's downlink (5 Gbps each). Flow 3 goes to
  // a different host and only shares host 0's uplink with flow 1... so
  // use distinct sources: flow 3 is alone on its whole path and gets the
  // full 10 Gbps.
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});
  sim.add_flow(3, 4, 5, 10'000'000, SimTime{});
  sim.run();
  std::map<std::uint64_t, double> fct;
  for (const auto& r : sim.results()) fct[r.id] = r.fct().to_seconds();
  EXPECT_NEAR(fct[3], 8e-3, 1e-5);   // full rate
  EXPECT_NEAR(fct[1], 16e-3, 1e-4);  // half rate throughout
  EXPECT_NEAR(fct[2], 16e-3, 1e-4);
}

TEST(FlowLevel, DepartureReleasesCapacity) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // A short and a long flow share a bottleneck; when the short one
  // leaves, the long one speeds up to full rate.
  sim.add_flow(1, 0, 1, 2'500'000, SimTime{});   // 2.5MB
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});  // 10MB
  sim.run();
  std::map<std::uint64_t, double> fct;
  for (const auto& r : sim.results()) fct[r.id] = r.fct().to_seconds();
  // Short: 2.5MB at 5Gbps = 4ms. Long: 2.5MB at 5Gbps (4ms) + 7.5MB at
  // 10Gbps (6ms) = 10ms.
  EXPECT_NEAR(fct[1], 4e-3, 1e-5);
  EXPECT_NEAR(fct[2], 10e-3, 1e-4);
}

TEST(FlowLevel, LateArrivalSlowsExistingFlow) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime::from_ms(4));
  sim.run();
  std::map<std::uint64_t, double> completion;
  for (const auto& r : sim.results()) {
    completion[r.id] = r.completion.to_seconds();
  }
  // Flow 1: 5MB alone (4ms), then shares. Both finish together-ish:
  // at t=4ms flow1 has 5MB left, flow2 has 10MB. Shared 5Gbps each:
  // flow1 done at 4 + 8 = 12ms; then flow2's last 5MB at 10G: +4ms = 16ms.
  EXPECT_NEAR(completion[1], 12e-3, 1e-4);
  EXPECT_NEAR(completion[2], 16e-3, 1e-4);
}

TEST(FlowLevel, AllFlowsCompleteUnderRandomWorkload) {
  const auto spec = small_spec();
  FlowLevelSimulator sim{spec, 10e9};
  sim::Rng rng{31};
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{spec.total_hosts()};
  double t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.exponential(20e-6);
    const auto [src, dst] = matrix.sample(rng);
    sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                 SimTime::from_seconds_f(t));
  }
  sim.run();
  EXPECT_EQ(sim.results().size(), 500u);
  EXPECT_GT(sim.rate_recomputations(), 500u);
  // FCTs are physical: no flow finishes before its fluid minimum.
  for (const auto& r : sim.results()) {
    const double min_fct =
        static_cast<double>(r.bytes) * 8.0 / 10e9;
    // 5ns slack: completion timestamps quantize to integer nanoseconds.
    EXPECT_GE(r.fct().to_seconds() + 5e-9, min_fct);
    EXPECT_GE(r.completion, r.arrival);
  }
}

TEST(FlowLevel, DeterministicAcrossRuns) {
  auto run_once = [] {
    const auto spec = small_spec();
    FlowLevelSimulator sim{spec, 10e9};
    sim::Rng rng{77};
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{spec.total_hosts()};
    double t = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.exponential(30e-6);
      const auto [src, dst] = matrix.sample(rng);
      sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                   SimTime::from_seconds_f(t));
    }
    sim.run();
    std::vector<std::int64_t> fcts;
    for (const auto& r : sim.results()) fcts.push_back(r.fct().ns());
    return fcts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FlowLevel, RejectsBadInput) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  EXPECT_THROW(sim.add_flow(1, 0, 0, 100, SimTime{}),
               std::invalid_argument);
  EXPECT_THROW(sim.add_flow(1, 0, 999, 100, SimTime{}),
               std::invalid_argument);
  EXPECT_THROW((FlowLevelSimulator{small_spec(), 0.0}),
               std::invalid_argument);
}

TEST(FlowLevel, LeafSpineWorksToo) {
  net::ClosSpec spec;
  spec.clusters = 1;
  spec.tors_per_cluster = 4;
  spec.aggs_per_cluster = 4;
  spec.hosts_per_tor = 4;
  spec.cores = 0;
  FlowLevelSimulator sim{spec, 10e9};
  sim.add_flow(1, 0, 15, 1'000'000, SimTime{});
  sim.run();
  ASSERT_EQ(sim.results().size(), 1u);
  EXPECT_NEAR(sim.results()[0].fct().to_seconds(), 8e-4, 1e-6);
}

}  // namespace
}  // namespace esim::flowsim
