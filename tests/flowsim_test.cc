// Tests for the flow-level (fluid) baseline simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "flowsim/flow_level.h"
#include "sim/random.h"
#include "workload/flow_size.h"
#include "workload/traffic_matrix.h"

namespace esim::flowsim {
namespace {

using sim::SimTime;

net::ClosSpec small_spec() {
  net::ClosSpec s;
  s.clusters = 2;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

TEST(FlowLevel, SingleFlowRunsAtLineRate) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // 10 MB alone: FCT = 10e6 * 8 / 10e9 = 8 ms (fluid: no handshake, no
  // slow start, no serialization quantization).
  sim.add_flow(1, 0, 12, 10'000'000, SimTime::from_ms(1));
  sim.run();
  ASSERT_EQ(sim.results().size(), 1u);
  const auto& r = sim.results()[0];
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.bytes, 10'000'000u);
  EXPECT_NEAR(r.fct().to_seconds(), 8e-3, 1e-6);
  EXPECT_NEAR(r.completion.to_seconds(), 9e-3, 1e-6);
}

TEST(FlowLevel, TwoFlowsShareTheirCommonBottleneck) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // Both flows target host 1: its downlink is the common bottleneck, so
  // each gets 5 Gbps until the smaller finishes.
  sim.add_flow(1, 0, 1, 5'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 5'000'000, SimTime{});
  sim.run();
  ASSERT_EQ(sim.results().size(), 2u);
  for (const auto& r : sim.results()) {
    // 5 MB at 5 Gbps = 8 ms.
    EXPECT_NEAR(r.fct().to_seconds(), 8e-3, 1e-5) << "flow " << r.id;
  }
}

TEST(FlowLevel, MaxMinGivesUnbottleneckedFlowTheRemainder) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // Flows 1 and 2 share host 1's downlink (5 Gbps each). Flow 3 goes to
  // a different host and only shares host 0's uplink with flow 1... so
  // use distinct sources: flow 3 is alone on its whole path and gets the
  // full 10 Gbps.
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});
  sim.add_flow(3, 4, 5, 10'000'000, SimTime{});
  sim.run();
  std::map<std::uint64_t, double> fct;
  for (const auto& r : sim.results()) fct[r.id] = r.fct().to_seconds();
  EXPECT_NEAR(fct[3], 8e-3, 1e-5);   // full rate
  EXPECT_NEAR(fct[1], 16e-3, 1e-4);  // half rate throughout
  EXPECT_NEAR(fct[2], 16e-3, 1e-4);
}

TEST(FlowLevel, DepartureReleasesCapacity) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // A short and a long flow share a bottleneck; when the short one
  // leaves, the long one speeds up to full rate.
  sim.add_flow(1, 0, 1, 2'500'000, SimTime{});   // 2.5MB
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});  // 10MB
  sim.run();
  std::map<std::uint64_t, double> fct;
  for (const auto& r : sim.results()) fct[r.id] = r.fct().to_seconds();
  // Short: 2.5MB at 5Gbps = 4ms. Long: 2.5MB at 5Gbps (4ms) + 7.5MB at
  // 10Gbps (6ms) = 10ms.
  EXPECT_NEAR(fct[1], 4e-3, 1e-5);
  EXPECT_NEAR(fct[2], 10e-3, 1e-4);
}

TEST(FlowLevel, LateArrivalSlowsExistingFlow) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime::from_ms(4));
  sim.run();
  std::map<std::uint64_t, double> completion;
  for (const auto& r : sim.results()) {
    completion[r.id] = r.completion.to_seconds();
  }
  // Flow 1: 5MB alone (4ms), then shares. Both finish together-ish:
  // at t=4ms flow1 has 5MB left, flow2 has 10MB. Shared 5Gbps each:
  // flow1 done at 4 + 8 = 12ms; then flow2's last 5MB at 10G: +4ms = 16ms.
  EXPECT_NEAR(completion[1], 12e-3, 1e-4);
  EXPECT_NEAR(completion[2], 16e-3, 1e-4);
}

TEST(FlowLevel, AllFlowsCompleteUnderRandomWorkload) {
  const auto spec = small_spec();
  FlowLevelSimulator sim{spec, 10e9};
  sim::Rng rng{31};
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{spec.total_hosts()};
  double t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.exponential(20e-6);
    const auto [src, dst] = matrix.sample(rng);
    sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                 SimTime::from_seconds_f(t));
  }
  sim.run();
  EXPECT_EQ(sim.results().size(), 500u);
  EXPECT_GT(sim.rate_recomputations(), 500u);
  // FCTs are physical: no flow finishes before its fluid minimum.
  for (const auto& r : sim.results()) {
    const double min_fct =
        static_cast<double>(r.bytes) * 8.0 / 10e9;
    // 5ns slack: completion timestamps quantize to integer nanoseconds.
    EXPECT_GE(r.fct().to_seconds() + 5e-9, min_fct);
    EXPECT_GE(r.completion, r.arrival);
  }
}

TEST(FlowLevel, DeterministicAcrossRuns) {
  auto run_once = [] {
    const auto spec = small_spec();
    FlowLevelSimulator sim{spec, 10e9};
    sim::Rng rng{77};
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{spec.total_hosts()};
    double t = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.exponential(30e-6);
      const auto [src, dst] = matrix.sample(rng);
      sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                   SimTime::from_seconds_f(t));
    }
    sim.run();
    std::vector<std::int64_t> fcts;
    for (const auto& r : sim.results()) fcts.push_back(r.fct().ns());
    return fcts;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- Online stepping API (advance_to / remove_flow / rate_of) --------

TEST(FlowLevel, AdvanceToTracksPartialProgress) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  // 10 MB alone at 10 Gbps: 8 ms total.
  sim.add_flow(1, 0, 12, 10'000'000, SimTime{});
  sim.advance_to(SimTime::from_ms(4));
  EXPECT_EQ(sim.now(), SimTime::from_ms(4));
  EXPECT_EQ(sim.active_flows(), 1u);
  EXPECT_NEAR(sim.rate_of(1), 10e9, 1.0);
  EXPECT_TRUE(sim.results().empty());
  sim.advance_to(SimTime::from_ms(10));
  EXPECT_EQ(sim.active_flows(), 0u);
  ASSERT_EQ(sim.results().size(), 1u);
  EXPECT_NEAR(sim.results()[0].completion.to_seconds(), 8e-3, 1e-6);
  // The engine idles at the target, not at the last completion.
  EXPECT_EQ(sim.now(), SimTime::from_ms(10));
}

TEST(FlowLevel, RateOfReflectsMaxMinShareMidFlight) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});
  sim.advance_to(SimTime::from_ms(1));
  // Both bottlenecked on host 1's downlink: 5 Gbps each.
  EXPECT_NEAR(sim.rate_of(1), 5e9, 1.0);
  EXPECT_NEAR(sim.rate_of(2), 5e9, 1.0);
  EXPECT_EQ(sim.rate_of(99), 0.0);  // unknown id
}

TEST(FlowLevel, RemoveFlowReleasesItsShare) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime{});
  sim.advance_to(SimTime::from_ms(1));
  EXPECT_TRUE(sim.remove_flow(2));
  EXPECT_FALSE(sim.remove_flow(2));  // already gone
  EXPECT_NEAR(sim.rate_of(1), 10e9, 1.0);
  // Flow 1: 10MB = 0.625MB at 5G (1ms) + 9.375MB at 10G (7.5ms).
  sim.advance_to(SimTime::from_ms(20));
  ASSERT_EQ(sim.results().size(), 1u);
  EXPECT_NEAR(sim.results()[0].completion.to_seconds(), 8.5e-3, 1e-5);
}

TEST(FlowLevel, RemoveUnarrivedFlowNeverAdmitsIt) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 10'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime::from_ms(4));
  EXPECT_TRUE(sim.remove_flow(2));
  sim.advance_to(SimTime::from_ms(20));
  // Flow 1 never shared: 8 ms solo.
  ASSERT_EQ(sim.results().size(), 1u);
  EXPECT_NEAR(sim.results()[0].completion.to_seconds(), 8e-3, 1e-6);
  EXPECT_EQ(sim.active_flows(), 0u);
}

TEST(FlowLevel, RateRecomputationsCountActiveSetChanges) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 1, 5'000'000, SimTime{});
  sim.add_flow(2, 2, 1, 10'000'000, SimTime::from_ms(2));
  sim.run();
  // Set changes: {1} arrive, {1,2} arrive, {2} after 1 departs; the
  // final departure empties the set (no allocation to recompute).
  EXPECT_EQ(sim.rate_recomputations(), 3u);
}

TEST(FlowLevel, OnlineMatchesOfflineRun) {
  const auto spec = small_spec();
  auto make_flows = [&](FlowLevelSimulator& sim) {
    sim::Rng rng{19};
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{spec.total_hosts()};
    double t = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.exponential(25e-6);
      const auto [src, dst] = matrix.sample(rng);
      sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                   SimTime::from_seconds_f(t));
    }
  };
  FlowLevelSimulator offline{spec, 10e9};
  make_flows(offline);
  offline.run();

  FlowLevelSimulator online{spec, 10e9};
  make_flows(online);
  // Step in awkward 123 us increments, then sweep past the horizon.
  for (int k = 1; k <= 400; ++k) {
    online.advance_to(SimTime::from_us(123 * k));
  }
  online.advance_to(SimTime::from_ms(2000));
  EXPECT_EQ(online.active_flows(), 0u);
  ASSERT_EQ(online.results().size(), offline.results().size());
  // Online drains bytes piecewise at every step boundary, so completion
  // instants may drift by rounding — but only by rounding.
  std::map<std::uint64_t, double> offline_fct;
  for (const auto& r : offline.results()) {
    offline_fct[r.id] = r.completion.to_seconds();
  }
  for (const auto& r : online.results()) {
    ASSERT_TRUE(offline_fct.count(r.id)) << "flow " << r.id;
    EXPECT_NEAR(r.completion.to_seconds(), offline_fct[r.id], 50e-9)
        << "flow " << r.id;
  }
  EXPECT_GT(online.rate_recomputations(), 200u);
}

TEST(FlowLevel, OnlineDeterministicAcrossRuns) {
  const auto spec = small_spec();
  auto drive = [&] {
    FlowLevelSimulator sim{spec, 10e9};
    sim::Rng rng{47};
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{spec.total_hosts()};
    double t = 0;
    for (int i = 0; i < 150; ++i) {
      t += rng.exponential(30e-6);
      const auto [src, dst] = matrix.sample(rng);
      sim.add_flow(i + 1, src, dst, sizes->sample(rng),
                   SimTime::from_seconds_f(t));
    }
    for (int k = 1; k <= 250; ++k) {
      sim.advance_to(SimTime::from_us(777 * k));
      if (k == 40) sim.remove_flow(120);  // mid-run withdrawal, both runs
    }
    return std::pair{sim.results(), sim.rate_recomputations()};
  };
  const auto [r1, n1] = drive();
  const auto [r2, n2] = drive();
  EXPECT_EQ(n1, n2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].id, r2[i].id);
    EXPECT_EQ(r1[i].completion.ns(), r2[i].completion.ns());
  }
}

TEST(FlowLevel, AdvanceToIsMonotone) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  sim.add_flow(1, 0, 12, 1'000'000, SimTime{});
  sim.advance_to(SimTime::from_ms(5));
  const SimTime before = sim.now();
  sim.advance_to(SimTime::from_ms(1));  // into the past: no-op
  EXPECT_EQ(sim.now(), before);
}

TEST(FlowLevel, RejectsBadInput) {
  FlowLevelSimulator sim{small_spec(), 10e9};
  EXPECT_THROW(sim.add_flow(1, 0, 0, 100, SimTime{}),
               std::invalid_argument);
  EXPECT_THROW(sim.add_flow(1, 0, 999, 100, SimTime{}),
               std::invalid_argument);
  EXPECT_THROW((FlowLevelSimulator{small_spec(), 0.0}),
               std::invalid_argument);
}

TEST(FlowLevel, LeafSpineWorksToo) {
  net::ClosSpec spec;
  spec.clusters = 1;
  spec.tors_per_cluster = 4;
  spec.aggs_per_cluster = 4;
  spec.hosts_per_tor = 4;
  spec.cores = 0;
  FlowLevelSimulator sim{spec, 10e9};
  sim.add_flow(1, 0, 15, 1'000'000, SimTime{});
  sim.run();
  ASSERT_EQ(sim.results().size(), 1u);
  EXPECT_NEAR(sim.results()[0].fct().to_seconds(), 8e-4, 1e-6);
}

}  // namespace
}  // namespace esim::flowsim
