// Tests for the differential determinism harness (src/check): digest
// lanes, scenario serialization/validation, the fuzzer's determinism and
// shrinker, and DiffRunner engine comparisons including the injected
// tie-break bug.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "check/diff_runner.h"
#include "check/digest.h"
#include "check/fuzzer.h"
#include "check/scenario.h"

namespace esim::check {
namespace {

Scenario small_scenario() {
  Scenario sc;
  sc.seed = 99;
  sc.tors = 2;
  sc.spines = 2;
  sc.hosts_per_tor = 2;
  sc.duration_ns = 2'000'000;
  sc.flows = {
      FlowSpec{0, 2, 30'000, 5'000, 1},
      FlowSpec{1, 3, 20'000, 7'000, 2},
      FlowSpec{3, 0, 15'000, 9'000, 3},
  };
  sc.validate();
  return sc;
}

// Two same-instant flows from different hosts under one ToR, both to the
// same destination: their SYNs collide at the ToR at the same nanosecond,
// so same-time event ordering alone decides the forwarding order.
Scenario tie_scenario() {
  Scenario sc;
  sc.seed = 42;
  sc.tors = 2;
  sc.spines = 1;
  sc.hosts_per_tor = 2;
  sc.duration_ns = 2'000'000;
  sc.flows = {
      FlowSpec{0, 2, 40'000, 10'000, 1},
      FlowSpec{1, 2, 40'000, 10'000, 2},
  };
  sc.validate();
  return sc;
}

TEST(Hash64, OrderSensitive) {
  Hash64 ab, ba;
  ab.absorb(1);
  ab.absorb(2);
  ba.absorb(2);
  ba.absorb(1);
  EXPECT_NE(ab.value(), ba.value());
}

TEST(Hash64, DeterministicAcrossInstances) {
  Hash64 a, b;
  for (std::uint64_t v : {7u, 11u, 13u}) {
    a.absorb(v);
    b.absorb(v);
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(PacketRecordTest, HashCoversFields) {
  PacketRecord base;
  base.time_ns = 100;
  base.packet_id = 5;
  base.flow_id = 2;
  base.seq = 1460;
  const std::uint64_t h = base.hash();

  PacketRecord r = base;
  r.time_ns = 101;
  EXPECT_NE(r.hash(), h);
  r = base;
  r.dropped = true;
  EXPECT_NE(r.hash(), h);
  r = base;
  r.flags = 0x2;
  EXPECT_NE(r.hash(), h);
  EXPECT_EQ(base.hash(), h);  // hash() has no hidden state
}

TEST(DigestTest, EngineInvariantEqualityIgnoresOrderLane) {
  Digest a, b;
  a.packet_lane = b.packet_lane = 1;
  a.flow_lane = b.flow_lane = 2;
  a.final_lane = b.final_lane = 3;
  a.packets = b.packets = 10;
  a.order_lane = 111;
  b.order_lane = 222;  // engine-specific lane may differ
  a.events = 50;
  b.events = 60;  // per-engine bookkeeping may differ
  EXPECT_TRUE(a.engine_invariant_equal(b));
  EXPECT_FALSE(a == b);

  b.packet_lane = 99;  // behavioural lane must not
  EXPECT_FALSE(a.engine_invariant_equal(b));
}

TEST(ScenarioTest, SerializeParseRoundTrip) {
  const Scenario sc = small_scenario();
  const Scenario back = Scenario::parse(sc.serialize());
  EXPECT_EQ(back, sc);
}

TEST(ScenarioTest, SaveLoadRoundTrip) {
  const Scenario sc = small_scenario();
  const std::string path =
      testing::TempDir() + "/check_test_scenario.scenario";
  save_scenario(sc, path);
  EXPECT_EQ(load_scenario(path), sc);
  std::remove(path.c_str());
}

TEST(ScenarioTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Scenario::parse("seed=1\n"), std::invalid_argument);  // header
  const std::string header = "# esim_diffcheck scenario v1\n";
  EXPECT_THROW(Scenario::parse(header + "bogus_key=1\n"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse(header + "seed=notanumber\n"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse(header + "flow=1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse(header + "tcp=cubic\n"),
               std::invalid_argument);
}

TEST(ScenarioTest, ValidateRejectsInconsistentFlows) {
  Scenario sc = small_scenario();
  sc.flows[0].dst = sc.flows[0].src;
  EXPECT_THROW(sc.validate(), std::invalid_argument);

  sc = small_scenario();
  sc.flows[0].src = sc.total_hosts();
  EXPECT_THROW(sc.validate(), std::invalid_argument);

  sc = small_scenario();
  sc.flows[1].flow_id = sc.flows[0].flow_id;
  EXPECT_THROW(sc.validate(), std::invalid_argument);

  sc = small_scenario();
  sc.flows[1].start_ns = sc.duration_ns;
  EXPECT_THROW(sc.validate(), std::invalid_argument);

  // Same-instant starts on ONE host are ambiguous (port assignment order);
  // on different hosts they are allowed (and used by the selftest).
  sc = small_scenario();
  sc.flows.push_back(FlowSpec{1, 3, 1000, sc.flows[0].start_ns, 9});
  EXPECT_NO_THROW(sc.validate());
  sc.flows.back().src = sc.flows[0].src;  // now same host, same instant
  EXPECT_THROW(sc.validate(), std::invalid_argument);
}

TEST(FuzzerTest, SameSeedSameSequence) {
  ScenarioFuzzer a{2024}, b{2024};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.next(), b.next());
  ScenarioFuzzer c{2025};
  EXPECT_NE(ScenarioFuzzer{2024}.next(), c.next());
}

TEST(FuzzerTest, GeneratedScenariosAreValidWithUniqueStarts) {
  ScenarioFuzzer fuzzer{7};
  for (int i = 0; i < 20; ++i) {
    const Scenario sc = fuzzer.next();
    EXPECT_NO_THROW(sc.validate());
    std::set<std::int64_t> starts;
    for (const FlowSpec& f : sc.flows) {
      EXPECT_TRUE(starts.insert(f.start_ns).second)
          << "fuzzer must draw globally unique start times";
    }
  }
}

TEST(FuzzerTest, ShrinkMinimizesAgainstPredicate) {
  ScenarioFuzzer fuzzer{11};
  Scenario sc = fuzzer.next();
  ASSERT_GE(sc.flows.size(), 4u);
  const std::uint64_t keep_id = sc.flows[2].flow_id;

  // Synthetic failure: "still fails" while flow `keep_id` is present.
  const Scenario shrunk =
      fuzzer.shrink(sc, [keep_id](const Scenario& cand) {
        for (const FlowSpec& f : cand.flows) {
          if (f.flow_id == keep_id) return true;
        }
        return false;
      });
  ASSERT_EQ(shrunk.flows.size(), 1u);
  EXPECT_EQ(shrunk.flows[0].flow_id, keep_id);
  EXPECT_LT(shrunk.duration_ns, sc.duration_ns);
  EXPECT_NO_THROW(shrunk.validate());
}

TEST(DiffRunnerTest, SequentialRunIsReproducible) {
  DiffRunner runner;
  const Scenario sc = small_scenario();
  const auto a = runner.run(sc, EngineSpec{});
  const auto b = runner.run(sc, EngineSpec{});
  EXPECT_EQ(a.digest, b.digest);  // full equality, order lane included
  EXPECT_EQ(a.flows_completed, sc.flows.size());
  EXPECT_GT(a.digest.packets, 0u);
}

TEST(DiffRunnerTest, SequentialMatchesPdesAcrossPartitionCounts) {
  DiffRunner runner;
  const Scenario sc = small_scenario();
  const auto reports = runner.check_all(sc, {1, 2, 4});
  ASSERT_EQ(reports.size(), 4u);  // 3 cross-engine + 1 rerun determinism
  for (const auto& r : reports) {
    EXPECT_TRUE(r.equivalent) << r.to_string();
  }
  EXPECT_TRUE(reports.back().full_compare);
}

TEST(DiffRunnerTest, InjectedTiebreakBugIsCaughtAndLocalized) {
  DiffRunner runner;
  const Scenario sc = tie_scenario();
  EngineSpec inverted;
  inverted.invert_tiebreak = true;

  const DiffReport report = runner.diff(sc, EngineSpec{}, inverted);
  ASSERT_FALSE(report.equivalent);
  EXPECT_GT(report.divergence_window_ns, 0);
  EXPECT_LE(report.divergence_window_ns, sc.duration_ns);
  ASSERT_TRUE(report.first.found);
  EXPECT_FALSE(report.first.link.empty());
  EXPECT_NE(report.first.base_record, report.first.other_record);
}

TEST(DiffRunnerTest, CheckAllFlagsInjectedBugOnPdes) {
  DiffRunner runner;
  const Scenario sc = tie_scenario();
  const auto reports =
      runner.check_all(sc, {2}, /*inject_tiebreak_bug=*/true);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].equivalent)
      << "sequential vs bugged pdes(2) must diverge";
}

TEST(StateDigestTest, CaptureIsBoundedAndKeyedByLink) {
  DiffRunner runner;
  const Scenario sc = small_scenario();
  const auto out = runner.run(
      sc, EngineSpec{}, sim::SimTime::from_ns(sc.duration_ns),
      /*capture=*/true);
  ASSERT_FALSE(out.records.empty());
  std::uint64_t total = 0;
  for (const auto& [link, records] : out.records) {
    EXPECT_FALSE(link.empty());
    for (std::size_t i = 1; i < records.size(); ++i) {
      EXPECT_LE(records[i - 1].time_ns, records[i].time_ns)
          << "per-link record streams are time-ordered";
    }
    total += records.size();
  }
  EXPECT_EQ(total, out.digest.packets + out.digest.drops);
}

}  // namespace
}  // namespace esim::check
