#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/random.h"
#include "stats/cdf.h"
#include "stats/collectors.h"
#include "stats/distance.h"
#include "stats/summary.h"

namespace esim::stats {
namespace {

using esim::sim::Rng;
using esim::sim::SimTime;

TEST(Summary, EmptyState) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng{4};
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e{0.5};
  EXPECT_FALSE(e.valid());
  e.add(10.0);
  EXPECT_TRUE(e.valid());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e{0.5};
  e.add(10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma{0.0}, std::invalid_argument);
  EXPECT_THROW(Ewma{1.5}, std::invalid_argument);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e{0.2};
  for (int i = 0; i < 200; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(EmpiricalCdf, QuantilesOfKnownData) {
  EmpiricalCdf c;
  for (int i = 1; i <= 100; ++i) c.add(static_cast<double>(i));
  EXPECT_EQ(c.size(), 100u);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 100.0);
}

// Regression: add/add_all used to unconditionally mark the sample set
// unsorted — add_all({}) on a sorted million-sample set forced a needless
// O(n log n) re-sort on the next quantile. Order-preserving appends must
// keep the sorted hint, and the hint must never produce wrong quantiles.
TEST(EmpiricalCdf, AppendsPreserveSortedness) {
  EmpiricalCdf c;
  for (int i = 0; i < 1000; ++i) c.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 500.0);  // sorts (already in order)
  EXPECT_TRUE(c.sorted_hint());

  c.add_all({});  // nothing appended: must not invalidate
  EXPECT_TRUE(c.sorted_hint());

  c.add(1000.0);  // appended in order: still sorted
  c.add_all({1001.0, 1002.0});
  EXPECT_TRUE(c.sorted_hint());
  EXPECT_DOUBLE_EQ(c.max(), 1002.0);
  EXPECT_TRUE(c.sorted_hint());

  c.add(0.5);  // out of order: must invalidate and re-sort on next query
  EXPECT_FALSE(c.sorted_hint());
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.max(), 1002.0);
  EXPECT_TRUE(c.sorted_hint());

  c.add_all({500.25, 1.5});  // unsorted batch: invalidates
  EXPECT_FALSE(c.sorted_hint());
  EXPECT_EQ(c.size(), 1006u);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 1002.0);
}

TEST(EmpiricalCdf, InterleavedAddAndQuantileStayCorrect) {
  EmpiricalCdf c;
  for (int round = 0; round < 50; ++round) {
    c.add(static_cast<double>(100 - round));  // strictly decreasing
    EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.0), static_cast<double>(100 - round));
  }
  EXPECT_EQ(c.size(), 50u);
}

TEST(EmpiricalCdf, AtEvaluatesFraction) {
  EmpiricalCdf c;
  c.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(c.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(c.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.at(10.0), 1.0);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.at(1.0), 0.0);
  EXPECT_THROW(c.quantile(0.5), std::logic_error);
  EXPECT_THROW(c.min(), std::logic_error);
  EXPECT_TRUE(c.curve(5).empty());
}

TEST(EmpiricalCdf, SingleSampleDegenerateDistribution) {
  EmpiricalCdf c;
  c.add(3.5);
  EXPECT_EQ(c.size(), 1u);
  // Every quantile of a one-point distribution is that point.
  for (double p : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(c.quantile(p), 3.5);
  }
  EXPECT_DOUBLE_EQ(c.min(), 3.5);
  EXPECT_DOUBLE_EQ(c.max(), 3.5);
  // The CDF is a unit step at the sample.
  EXPECT_DOUBLE_EQ(c.at(3.5 - 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(c.at(3.5), 1.0);
  // curve() degenerates to n copies of the step's top, not NaNs.
  const auto pts = c.curve(4);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& [x, f] : pts) {
    EXPECT_DOUBLE_EQ(x, 3.5);
    EXPECT_DOUBLE_EQ(f, 1.0);
  }
}

TEST(EmpiricalCdf, AllEqualSamples) {
  EmpiricalCdf c;
  for (int i = 0; i < 64; ++i) c.add(7.0);
  for (double p : {0.0, 0.5, 1.0}) EXPECT_DOUBLE_EQ(c.quantile(p), 7.0);
  EXPECT_DOUBLE_EQ(c.min(), c.max());
  EXPECT_DOUBLE_EQ(c.at(6.999), 0.0);
  EXPECT_DOUBLE_EQ(c.at(7.0), 1.0);
  EXPECT_TRUE(c.sorted_hint()) << "equal appends must not force a re-sort";
  const auto pts = c.curve(8);
  ASSERT_EQ(pts.size(), 8u);
  for (const auto& [x, f] : pts) {
    EXPECT_DOUBLE_EQ(x, 7.0);
    EXPECT_DOUBLE_EQ(f, 1.0);
  }
}

TEST(EmpiricalCdf, RejectsBadQuantile) {
  EmpiricalCdf c;
  c.add(1.0);
  EXPECT_THROW(c.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(c.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Rng rng{8};
  EmpiricalCdf c;
  for (int i = 0; i < 500; ++i) c.add(rng.exponential(2.0));
  const auto pts = c.curve(32);
  ASSERT_EQ(pts.size(), 32u);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(Distance, IdenticalDistributionsAreZero) {
  EmpiricalCdf a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(wasserstein_distance(a, b), 0.0);
}

TEST(Distance, DisjointDistributionsAreMaximal) {
  EmpiricalCdf a, b;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    b.add(i + 1000);
  }
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
  EXPECT_NEAR(wasserstein_distance(a, b), 1000.0, 1.0);
}

TEST(Distance, KnownShiftWasserstein) {
  // Shift a distribution by c: W1 distance is exactly c.
  Rng rng{21};
  EmpiricalCdf a, b;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform();
    a.add(x);
    b.add(x + 0.25);
  }
  EXPECT_NEAR(wasserstein_distance(a, b), 0.25, 1e-9);
}

TEST(Distance, KsDetectsHalfOverlap) {
  EmpiricalCdf a, b;
  for (int i = 0; i < 100; ++i) a.add(i);          // 0..99
  for (int i = 50; i < 150; ++i) b.add(i);         // 50..149
  EXPECT_NEAR(ks_distance(a, b), 0.5, 0.02);
}

TEST(Distance, SelfDistanceIsExactlyZero) {
  // Bitwise-exact zero, not just small: the sweep visits identical merged
  // sample points, so no floating-point residue is acceptable. This is
  // what makes "distance == 0" a usable equivalence check elsewhere.
  Rng rng{55};
  EmpiricalCdf a;
  for (int i = 0; i < 1000; ++i) a.add(rng.pareto(1.0, 1.3));
  EXPECT_EQ(ks_distance(a, a), 0.0);
  EXPECT_EQ(wasserstein_distance(a, a), 0.0);
}

TEST(Distance, SingleSampleDistributions) {
  EmpiricalCdf a, b, same;
  a.add(1.0);
  b.add(4.0);
  same.add(1.0);
  // Two unit steps at different points: maximally KS-separated, and the
  // earth mover carries one unit of mass the full gap.
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(wasserstein_distance(a, b), 3.0);
  EXPECT_EQ(ks_distance(a, same), 0.0);
  EXPECT_EQ(wasserstein_distance(a, same), 0.0);
}

TEST(Distance, AllEqualVersusSpread) {
  EmpiricalCdf point, spread;
  for (int i = 0; i < 10; ++i) point.add(5.0);
  for (int i = 0; i < 10; ++i) spread.add(static_cast<double>(i));  // 0..9
  // At x just below 5: F_point = 0, F_spread = 0.5. At x = 5 both jump.
  EXPECT_DOUBLE_EQ(ks_distance(point, spread), 0.5);
  // Mass moves |i - 5| / 10 each: (5+4+3+2+1+0+1+2+3+4) / 10.
  EXPECT_NEAR(wasserstein_distance(point, spread), 2.5, 1e-12);
  EXPECT_EQ(ks_distance(point, point), 0.0);
}

TEST(Distance, ThrowsOnEmpty) {
  EmpiricalCdf a, b;
  a.add(1.0);
  EXPECT_THROW(ks_distance(a, b), std::logic_error);
  EXPECT_THROW(wasserstein_distance(b, a), std::logic_error);
}

TEST(Distance, SymmetricInArguments) {
  Rng rng{33};
  EmpiricalCdf a, b;
  for (int i = 0; i < 300; ++i) {
    a.add(rng.exponential(1.0));
    b.add(rng.exponential(1.4));
  }
  EXPECT_DOUBLE_EQ(ks_distance(a, b), ks_distance(b, a));
  EXPECT_NEAR(wasserstein_distance(a, b), wasserstein_distance(b, a), 1e-12);
}

TEST(LatencyCollector, RecordsBoth) {
  LatencyCollector c;
  c.record(SimTime::from_ms(1));
  c.record(SimTime::from_ms(3));
  EXPECT_EQ(c.summary().count(), 2u);
  EXPECT_NEAR(c.summary().mean(), 0.002, 1e-12);
  EXPECT_EQ(c.cdf().size(), 2u);
}

TEST(FlowCollector, LifecycleAndFct) {
  FlowCollector fc;
  fc.on_start(1, 10, 20, 1'000'000, SimTime::from_ms(5));
  fc.on_start(2, 11, 21, 500, SimTime::from_ms(6));
  fc.on_complete(1, SimTime::from_ms(15));
  EXPECT_EQ(fc.completed_count(), 1u);
  ASSERT_EQ(fc.records().size(), 2u);
  EXPECT_TRUE(fc.records()[0].completed);
  EXPECT_FALSE(fc.records()[1].completed);
  EXPECT_EQ(fc.records()[0].fct(), SimTime::from_ms(10));
  EXPECT_EQ(fc.fct_cdf().size(), 1u);
  // goodput: 1MB in 10ms = 800 Mbit/s
  EXPECT_NEAR(fc.mean_goodput_bps(), 8e8, 1e3);
}

TEST(FlowCollector, IgnoresUnknownAndDoubleComplete) {
  FlowCollector fc;
  fc.on_complete(99, SimTime::from_ms(1));  // never started
  EXPECT_EQ(fc.completed_count(), 0u);
  fc.on_start(1, 0, 1, 100, SimTime::from_ms(1));
  fc.on_complete(1, SimTime::from_ms(2));
  fc.on_complete(1, SimTime::from_ms(3));
  EXPECT_EQ(fc.completed_count(), 1u);
  EXPECT_EQ(fc.records()[0].end, SimTime::from_ms(2));
}

TEST(PacketCounter, DropRate) {
  PacketCounter c;
  EXPECT_EQ(c.drop_rate(), 0.0);
  c.sent = 10;
  c.dropped = 3;
  EXPECT_DOUBLE_EQ(c.drop_rate(), 0.3);
}

}  // namespace
}  // namespace esim::stats
