// Holds the train/infer split contract (DESIGN.md §8):
//   * InferenceSession predictions are bit-identical to the naive Tensor
//     step() reference — LSTM and GRU trunks, single- and multi-layer
//     stacks, serialized-then-reloaded models, and the full hybrid run;
//   * predict() performs zero heap allocations (counted by replacing the
//     global operator new in this translation unit);
//   * sessions are immutable snapshots — in-place weight updates are
//     invisible until recompile() re-snapshots;
//   * MicroModel copies never share streamed recurrent state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "approx/micro_model.h"
#include "core/experiment.h"
#include "ml/inference.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "sim/random.h"

// Allocation-counting hook: every path through the replaceable global
// allocation functions funnels through here. Counting is off by default
// so the test harness's own allocations are invisible. GCC's
// -Wmismatched-new-delete pairs the replaced operator new with the free()
// in the replaced operator delete — a false positive here, since both
// sides of every pair go through this file's malloc-backed operators.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

struct AllocationCounter {
  AllocationCounter() {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_count_allocs.store(false, std::memory_order_relaxed); }
  std::size_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed);
  }
};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace esim {
namespace {

using approx::MicroModel;
using approx::PacketFeatures;

PacketFeatures random_features(sim::Rng& rng) {
  PacketFeatures f;
  for (auto& v : f.v) v = rng.uniform() * 2.0 - 1.0;
  return f;
}

// Streams `steps` random packets through both paths of one model and
// requires every prediction pair to match to the bit.
void expect_bit_identical(MicroModel& model, std::uint64_t seed,
                          int steps = 50) {
  sim::Rng rng{seed};
  model.reset_state();
  for (int i = 0; i < steps; ++i) {
    const PacketFeatures f = random_features(rng);
    const auto fused = model.predict(f);
    const auto naive = model.predict_reference(f);
    ASSERT_EQ(fused.drop_probability, naive.drop_probability)
        << "step " << i;
    ASSERT_EQ(fused.latency_seconds, naive.latency_seconds) << "step " << i;
  }
}

TEST(InferenceSession, BitIdenticalToReferenceLstm) {
  for (const std::size_t hidden : {5UL, 16UL, 32UL}) {
    for (const std::size_t layers : {1UL, 2UL, 3UL}) {
      MicroModel::Config cfg;
      cfg.hidden = hidden;
      cfg.layers = layers;
      cfg.trunk = ml::TrunkKind::Lstm;
      cfg.seed = 7 * hidden + layers;
      MicroModel m{cfg};
      SCOPED_TRACE("lstm hidden=" + std::to_string(hidden) +
                   " layers=" + std::to_string(layers));
      expect_bit_identical(m, cfg.seed + 1);
    }
  }
}

TEST(InferenceSession, BitIdenticalToReferenceGru) {
  // hidden = 5 makes 3H = 15 exercise the fused kernel's scalar tail.
  for (const std::size_t hidden : {5UL, 16UL, 32UL}) {
    for (const std::size_t layers : {1UL, 2UL, 3UL}) {
      MicroModel::Config cfg;
      cfg.hidden = hidden;
      cfg.layers = layers;
      cfg.trunk = ml::TrunkKind::Gru;
      cfg.seed = 11 * hidden + layers;
      MicroModel m{cfg};
      SCOPED_TRACE("gru hidden=" + std::to_string(hidden) +
                   " layers=" + std::to_string(layers));
      expect_bit_identical(m, cfg.seed + 1);
    }
  }
}

TEST(InferenceSession, TrunkOnlySessionMatchesStep) {
  for (const ml::TrunkKind kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    sim::Rng init{21};
    const auto model = ml::make_sequence_model(kind, 6, 9, 2, init);
    auto session = model->make_inference_session();
    EXPECT_EQ(session->output_size(), 0u);
    auto state = model->make_state(1);
    sim::Rng rng{22};
    for (int t = 0; t < 20; ++t) {
      ml::Tensor x{1, 6};
      for (std::size_t j = 0; j < 6; ++j) x.at(0, j) = rng.uniform();
      const ml::Tensor ref = model->step(x, *state);
      const auto out =
          session->predict(std::span<const double>{x.data(), 6});
      ASSERT_EQ(out.size(), 9u);
      for (std::size_t j = 0; j < 9; ++j) {
        ASSERT_EQ(out[j], ref.at(0, j))
            << ml::trunk_kind_name(kind) << " t=" << t << " j=" << j;
      }
    }
  }
}

TEST(InferenceSession, SnapshotSemanticsAndRecompile) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  MicroModel m{cfg};
  expect_bit_identical(m, 31, 5);
  // Sessions snapshot the weights at compile time: in-place updates
  // (what SgdMomentum and load_parameters do) are invisible until
  // recompile() re-snapshots. First record the compiled model's output…
  PacketFeatures probe;
  probe.v[0] = 0.4;
  probe.v[7] = -0.2;
  m.reset_state();
  const auto before = m.predict(probe);
  // …then perturb every weight in place.
  for (auto& p : m.parameters()) {
    if (p.name == "norm") continue;
    for (std::size_t i = 0; i < p.value->rows(); ++i) {
      for (std::size_t j = 0; j < p.value->cols(); ++j) {
        p.value->at(i, j) += 0.125 * static_cast<double>((i + j) % 3);
      }
    }
  }
  m.reset_state();
  const auto stale = m.predict(probe);
  EXPECT_EQ(stale.drop_probability, before.drop_probability);
  EXPECT_EQ(stale.latency_seconds, before.latency_seconds);
  // recompile() picks up the new values and restores bit-identity with
  // the (always-live) reference path.
  m.recompile();
  m.reset_state();
  const auto fresh = m.predict(probe);
  EXPECT_NE(fresh.drop_probability, before.drop_probability);
  expect_bit_identical(m, 32, 5);
}

TEST(InferenceSession, PredictIsAllocationFree) {
  for (const ml::TrunkKind kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    MicroModel::Config cfg;
    cfg.hidden = 32;
    cfg.layers = 2;
    cfg.trunk = kind;
    MicroModel m{cfg};
    sim::Rng rng{41};
    const PacketFeatures f = random_features(rng);
    (void)m.predict(f);  // warm up (lazy libc/libm initialisation)
    double sink = 0.0;
    AllocationCounter counter;
    for (int i = 0; i < 100; ++i) {
      const auto p = m.predict(f);
      sink += p.drop_probability + p.latency_seconds;
    }
    EXPECT_EQ(counter.count(), 0u) << ml::trunk_kind_name(kind);
    EXPECT_GT(sink, 0.0);
  }
}

TEST(InferenceSession, ReloadedModelBitIdenticalAndInferenceOnly) {
  for (const ml::TrunkKind kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    MicroModel::Config cfg;
    cfg.hidden = 12;
    cfg.layers = 2;
    cfg.trunk = kind;
    cfg.seed = 51;
    MicroModel original{cfg};
    original.set_latency_normalization(2.5, 0.7);
    const std::string path = ::testing::TempDir() + "/esim_infer_" +
                             ml::trunk_kind_name(kind) + ".bin";
    original.save(path);

    MicroModel loaded = MicroModel::load_inference(path);
    EXPECT_FALSE(loaded.trainable());
    EXPECT_EQ(loaded.config().hidden, cfg.hidden);
    EXPECT_EQ(loaded.config().layers, cfg.layers);
    EXPECT_EQ(loaded.config().trunk, kind);
    EXPECT_THROW(loaded.parameters(), std::logic_error);
    EXPECT_THROW(loaded.trunk(), std::logic_error);
    EXPECT_THROW(loaded.drop_head(), std::logic_error);
    PacketFeatures probe;
    EXPECT_THROW(loaded.predict_reference(probe), std::logic_error);
    loaded.reset_state();

    // Streaming predictions match the original's session to the bit —
    // including the normalization constants carried through the file.
    original.reset_state();
    sim::Rng rng{52};
    for (int i = 0; i < 40; ++i) {
      const PacketFeatures f = random_features(rng);
      const auto a = original.predict(f);
      const auto b = loaded.predict(f);
      ASSERT_EQ(a.drop_probability, b.drop_probability) << i;
      ASSERT_EQ(a.latency_seconds, b.latency_seconds) << i;
    }

    // Copies of an inference-only model keep working (weight offsets
    // rebase onto the copied buffer) and start from fresh state.
    MicroModel copy{loaded};
    loaded.reset_state();
    sim::Rng rng2{53};
    for (int i = 0; i < 10; ++i) {
      const PacketFeatures f = random_features(rng2);
      const auto a = loaded.predict(f);
      const auto b = copy.predict(f);
      ASSERT_EQ(a.drop_probability, b.drop_probability) << i;
      ASSERT_EQ(a.latency_seconds, b.latency_seconds) << i;
    }

    // The reloaded hot path is allocation-free too.
    sim::Rng rng3{54};
    const PacketFeatures f = random_features(rng3);
    (void)loaded.predict(f);
    AllocationCounter counter;
    for (int i = 0; i < 50; ++i) (void)loaded.predict(f);
    EXPECT_EQ(counter.count(), 0u);
    std::remove(path.c_str());
  }
}

TEST(InferenceSession, ErrorPaths) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  MicroModel m{cfg};
  // Wrong feature width.
  const std::vector<double> narrow(PacketFeatures::kDim - 1, 0.0);
  EXPECT_THROW(
      (void)m.predict(std::span<const double>{narrow.data(), narrow.size()}),
      std::invalid_argument);
  // Zero-dimension arch.
  EXPECT_THROW(ml::InferenceSession{ml::InferenceSession::Arch{}},
               std::invalid_argument);
  // weight_views head-name count must match the compiled heads.
  sim::Rng rng{61};
  const auto trunk = ml::make_sequence_model(ml::TrunkKind::Lstm, 4, 4, 1,
                                             rng);
  auto session = trunk->make_inference_session();
  EXPECT_THROW((void)session->weight_views("", {"spurious"}),
               std::invalid_argument);
}

// predict_batch (sequence mode) must replay one stream bit-identically:
// chunking an arrival-ordered feature stream into batches of any size —
// including chunks that leave tail rows in the packed kernels — produces
// exactly the predictions and final recurrent state of per-packet
// predict() calls.
TEST(InferenceSession, PredictBatchBitIdenticalToSequential) {
  for (const ml::TrunkKind kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    // hidden = 9 leaves 4H = 36 and 3H = 27 with scalar tail rows.
    for (const std::size_t hidden : {9UL, 16UL, 32UL}) {
      MicroModel::Config cfg;
      cfg.hidden = hidden;
      cfg.layers = 2;
      cfg.trunk = kind;
      cfg.seed = 13 * hidden;
      MicroModel sequential{cfg};
      MicroModel batched{cfg};  // same seed => identical weights
      batched.reserve_batch(17);

      sim::Rng rng{cfg.seed + 1};
      constexpr std::size_t kDim = PacketFeatures::kDim;
      std::vector<double> stream;
      for (int i = 0; i < 29 * static_cast<int>(kDim); ++i) {
        stream.push_back(rng.uniform() * 2.0 - 1.0);
      }

      std::vector<MicroModel::Prediction> expect;
      for (std::size_t t = 0; t * kDim < stream.size(); ++t) {
        expect.push_back(sequential.predict(
            std::span<const double>{stream.data() + t * kDim, kDim}));
      }

      // Uneven chunk sizes walk the same stream through predict_batch.
      std::vector<MicroModel::Prediction> got(expect.size());
      std::size_t t = 0;
      for (const std::size_t chunk : {1UL, 3UL, 8UL, 17UL}) {
        const std::size_t n = std::min(chunk, expect.size() - t);
        batched.predict_batch(
            std::span<const double>{stream.data() + t * kDim, n * kDim},
            std::span<MicroModel::Prediction>{got.data() + t, n});
        t += n;
      }
      while (t < expect.size()) {
        batched.predict_batch(
            std::span<const double>{stream.data() + t * kDim, kDim},
            std::span<MicroModel::Prediction>{got.data() + t, 1});
        ++t;
      }
      for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(got[i].drop_probability, expect[i].drop_probability)
            << ml::trunk_kind_name(kind) << " hidden=" << hidden << " t=" << i;
        ASSERT_EQ(got[i].latency_seconds, expect[i].latency_seconds)
            << ml::trunk_kind_name(kind) << " hidden=" << hidden << " t=" << i;
      }
    }
  }
}

// predict_lanes must advance L independent streams exactly as L separate
// sessions would — both matmuls batch across lanes, so this pins the
// lane-tiled kernels (including lane-count tails) to the single-lane path.
TEST(InferenceSession, PredictLanesBitIdenticalToIndependentSessions) {
  for (const ml::TrunkKind kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    sim::Rng init{77};
    const auto model = ml::make_sequence_model(kind, 6, 9, 2, init);
    for (const std::size_t lanes : {2UL, 5UL, 8UL}) {  // 5 = AVX tile tail
      auto wide = model->make_inference_session();
      wide->set_lane_count(lanes);
      std::vector<std::unique_ptr<ml::InferenceSession>> singles;
      for (std::size_t l = 0; l < lanes; ++l) {
        singles.push_back(model->make_inference_session());
      }
      sim::Rng rng{78};
      std::vector<double> x(lanes * 6);
      for (int t = 0; t < 12; ++t) {
        for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
        const auto out = wide->predict_lanes(x);
        ASSERT_EQ(out.size(), lanes * 9);
        for (std::size_t l = 0; l < lanes; ++l) {
          const auto ref = singles[l]->predict(
              std::span<const double>{x.data() + l * 6, 6});
          for (std::size_t j = 0; j < 9; ++j) {
            ASSERT_EQ(out[l * 9 + j], ref[j])
                << ml::trunk_kind_name(kind) << " lanes=" << lanes
                << " t=" << t << " lane=" << l << " j=" << j;
          }
        }
      }
    }
  }
}

// The zero-per-call-allocation contract extends to batches: once
// reserve_batch() covers the batch size, predict_batch allocates nothing
// for any N in 1..64, and neither does the lanes path.
TEST(InferenceSession, PredictBatchIsAllocationFree) {
  MicroModel::Config cfg;
  cfg.hidden = 32;
  cfg.layers = 2;
  MicroModel m{cfg};
  m.reserve_batch(64);
  constexpr std::size_t kDim = PacketFeatures::kDim;
  sim::Rng rng{91};
  std::vector<double> features(64 * kDim);
  for (auto& v : features) v = rng.uniform() * 2.0 - 1.0;
  std::vector<MicroModel::Prediction> out(64);
  m.predict_batch(std::span<const double>{features.data(), kDim},
                  std::span<MicroModel::Prediction>{out.data(), 1});  // warm up
  double sink = 0.0;
  AllocationCounter counter;
  for (std::size_t n = 1; n <= 64; ++n) {
    m.predict_batch(std::span<const double>{features.data(), n * kDim},
                    std::span<MicroModel::Prediction>{out.data(), n});
    sink += out[n - 1].latency_seconds;
  }
  EXPECT_EQ(counter.count(), 0u);
  EXPECT_NE(sink, 0.0);

  // Lanes mode: set_lane_count allocates once, predict_lanes never.
  sim::Rng init{92};
  const auto trunk = ml::make_sequence_model(ml::TrunkKind::Lstm, 6, 16, 2,
                                             init);
  auto session = trunk->make_inference_session();
  session->set_lane_count(8);
  std::vector<double> x(8 * 6, 0.25);
  (void)session->predict_lanes(x);  // warm up
  AllocationCounter lane_counter;
  for (int i = 0; i < 50; ++i) sink += session->predict_lanes(x)[0];
  EXPECT_EQ(lane_counter.count(), 0u);
}

// The stale-session safety net: optimizer steps constructed against the
// Module bump its weight version, and every predict entry point of a
// session compiled before the step refuses to serve the pre-training
// snapshot. recompile() re-snapshots and clears the trip.
TEST(InferenceSession, StaleSessionThrowsAfterOptimizerStep) {
  MicroModel::Config cfg;
  cfg.hidden = 8;
  MicroModel m{cfg};
  m.reserve_batch(4);
  PacketFeatures probe;
  probe.v[0] = 0.3;
  (void)m.predict(probe);  // fresh: serves fine

  ml::SgdMomentum::Config ocfg;
  ocfg.learning_rate = 0.01;
  ml::SgdMomentum opt{m, ocfg};
  opt.step();  // bumps the weight version; session snapshot is now stale

  EXPECT_THROW((void)m.predict(probe), std::logic_error);
  std::vector<double> features(4 * PacketFeatures::kDim, 0.1);
  std::vector<MicroModel::Prediction> out(4);
  EXPECT_THROW((void)m.predict_batch(features,
                                     std::span<MicroModel::Prediction>{out}),
               std::logic_error);

  m.recompile();
  (void)m.predict(probe);  // fresh again
  opt.step();
  EXPECT_THROW((void)m.predict(probe), std::logic_error);

  // The plain parameters() overload keeps legacy behavior: no module to
  // version-tag, so sessions cannot detect those writes (recompile() is
  // the caller's contract, as before).
  m.recompile();
  ml::SgdMomentum legacy{m.parameters(), ocfg};
  legacy.step();
  (void)m.predict(probe);
}

// The hybrid integration must not change under the refactor: routing all
// per-packet inference through the fused session produces exactly the
// run the naive reference path produces (which is the pre-refactor
// behavior), event for event.
TEST(InferenceSession, HybridRunBitIdenticalSessionVsReference) {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 3;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 2;
  cfg.net.spec.cores = 2;
  cfg.load = 0.3;
  cfg.duration = sim::SimTime::from_ms(5);
  cfg.model.hidden = 8;
  cfg.model.layers = 2;

  core::TrainedModels models;
  models.ingress = std::make_unique<MicroModel>(cfg.model);
  models.egress = std::make_unique<MicroModel>(cfg.model);

  const auto fused =
      core::run_hybrid_simulation(cfg, cfg.net.spec, models);
  cfg.approx.reference_inference = true;
  const auto naive =
      core::run_hybrid_simulation(cfg, cfg.net.spec, models);

  // The run must exercise the models, or the equalities below are vacuous.
  EXPECT_GT(fused.approx_stats.egress_packets +
                fused.approx_stats.ingress_packets +
                fused.approx_stats.predicted_drops,
            0u);
  EXPECT_EQ(fused.events_executed, naive.events_executed);
  EXPECT_EQ(fused.events_scheduled, naive.events_scheduled);
  EXPECT_EQ(fused.flows_launched, naive.flows_launched);
  EXPECT_EQ(fused.flows_completed, naive.flows_completed);
  EXPECT_EQ(fused.approx_stats.predicted_drops,
            naive.approx_stats.predicted_drops);
  EXPECT_EQ(fused.approx_stats.egress_packets,
            naive.approx_stats.egress_packets);
  EXPECT_EQ(fused.mean_fct_seconds, naive.mean_fct_seconds);
  ASSERT_EQ(fused.rtt_cdf.size(), naive.rtt_cdf.size());
  if (!fused.rtt_cdf.empty()) {
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
      EXPECT_EQ(fused.rtt_cdf.quantile(q), naive.rtt_cdf.quantile(q)) << q;
    }
  }
}

}  // namespace
}  // namespace esim
