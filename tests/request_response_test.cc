// Tests for the request/response web-service application and the model
// evaluation utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "approx/evaluation.h"
#include "approx/trainer.h"
#include "core/full_builder.h"
#include "sim/random.h"
#include "workload/request_response.h"

namespace esim {
namespace {

using sim::SimTime;
using sim::Simulator;

core::NetworkConfig two_cluster() {
  core::NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.tors_per_cluster = 2;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 2;
  return cfg;
}

TEST(RequestResponse, ExchangesCompleteEndToEnd) {
  Simulator sim{21};
  auto net = core::build_full_network(sim, two_cluster());
  auto responses = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::RequestResponseApp::Config cfg;
  cfg.arrivals_per_second = 20'000;
  cfg.stop_at = SimTime::from_ms(10);
  auto* app = sim.add_component<workload::RequestResponseApp>(
      "rr", net.hosts, responses.get(), &matrix, cfg);
  app->start();
  sim.run_until(SimTime::from_ms(200));

  ASSERT_GT(app->exchanges().size(), 50u);
  EXPECT_GT(app->completed(), app->exchanges().size() * 9 / 10);
  for (const auto& ex : app->exchanges()) {
    if (!ex.done) continue;
    // An exchange takes at least two full network round trips (request
    // handshake+body, response handshake+body).
    EXPECT_GT(ex.duration().to_seconds(), 20e-6);
    EXPECT_NE(ex.client, ex.server);
  }
  const auto cdf = app->duration_cdf();
  EXPECT_EQ(cdf.size(), app->completed());
  EXPECT_GT(cdf.quantile(0.5), 0.0);
}

TEST(RequestResponse, ResponseSizesFollowDistribution) {
  Simulator sim{22};
  auto net = core::build_full_network(sim, two_cluster());
  workload::FixedFlowSize responses{50'000};
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::RequestResponseApp::Config cfg;
  cfg.arrivals_per_second = 10'000;
  cfg.max_exchanges = 20;
  auto* app = sim.add_component<workload::RequestResponseApp>(
      "rr", net.hosts, &responses, &matrix, cfg);
  app->start();
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(app->exchanges().size(), 20u);
  for (const auto& ex : app->exchanges()) {
    EXPECT_EQ(ex.response_bytes, 50'000u);
  }
  EXPECT_EQ(app->completed(), 20u);
}

TEST(RequestResponse, RejectsBadConfig) {
  Simulator sim{23};
  auto net = core::build_full_network(sim, two_cluster());
  workload::FixedFlowSize responses{1000};
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::RequestResponseApp::Config cfg;
  cfg.arrivals_per_second = 0;
  EXPECT_THROW(workload::RequestResponseApp(sim, "rr", net.hosts,
                                            &responses, &matrix, cfg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Evaluation utilities.

approx::Dataset synthetic_dataset(int n, sim::Rng& rng) {
  approx::Dataset ds;
  for (int i = 0; i < n; ++i) {
    approx::PacketFeatures f;
    f.v[0] = rng.uniform();
    f.v[7] = rng.uniform();
    const bool drop = f.v[0] > 0.8;
    ds.features.push_back(f);
    ds.drop_targets.push_back(drop ? 1.0 : 0.0);
    ds.latency_log_us.push_back(drop ? 0.0 : 1.0 + f.v[7]);
  }
  double sum = 0, sq = 0;
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < ds.features.size(); ++i) {
    if (ds.drop_targets[i] < 0.5) {
      sum += ds.latency_log_us[i];
      sq += ds.latency_log_us[i] * ds.latency_log_us[i];
      ++cnt;
    }
  }
  ds.mean_log_us = sum / cnt;
  ds.std_log_us = std::sqrt(sq / cnt - ds.mean_log_us * ds.mean_log_us);
  return ds;
}

TEST(Evaluation, SplitIsChronological) {
  sim::Rng rng{30};
  const auto ds = synthetic_dataset(1000, rng);
  const auto [train, test] = approx::split_dataset(ds, 0.8);
  EXPECT_EQ(train.size(), 800u);
  EXPECT_EQ(test.size(), 200u);
  // First test row is the row after the last train row.
  EXPECT_EQ(test.features[0].v, ds.features[800].v);
  EXPECT_GT(train.std_log_us, 0.0);
  EXPECT_THROW(approx::split_dataset(ds, 0.0), std::invalid_argument);
  EXPECT_THROW(approx::split_dataset(ds, 1.0), std::invalid_argument);
}

TEST(Evaluation, TrainedModelScoresAboveChance) {
  sim::Rng rng{31};
  const auto ds = synthetic_dataset(3000, rng);
  const auto [train, test] = approx::split_dataset(ds, 0.7);

  approx::MicroModel::Config mcfg;
  mcfg.hidden = 10;
  mcfg.layers = 1;
  approx::MicroModel model{mcfg};
  approx::TrainConfig tcfg;
  tcfg.batch_size = 32;
  tcfg.seq_len = 8;
  tcfg.batches = 500;
  tcfg.learning_rate = 3e-2;
  approx::train_micro_model(model, train, tcfg);

  const auto metrics = approx::evaluate_micro_model(model, test);
  EXPECT_EQ(metrics.rows, test.size());
  EXPECT_GT(metrics.drop_auc, 0.9);  // separable problem: near-perfect rank
  EXPECT_GT(metrics.drop_accuracy, 0.9);
  EXPECT_GT(metrics.drop_recall, 0.5);
  EXPECT_GT(metrics.drop_precision, 0.5);
  EXPECT_NEAR(metrics.base_drop_rate, 0.2, 0.05);
  EXPECT_LT(metrics.latency_mae, 0.5);
}

TEST(Evaluation, UntrainedModelIsNearChance) {
  sim::Rng rng{32};
  const auto ds = synthetic_dataset(1500, rng);
  approx::MicroModel::Config mcfg;
  mcfg.hidden = 8;
  mcfg.layers = 1;
  approx::MicroModel model{mcfg};
  const auto metrics = approx::evaluate_micro_model(model, ds);
  EXPECT_GT(metrics.drop_auc, 0.2);
  EXPECT_LT(metrics.drop_auc, 0.8);
}

TEST(Evaluation, EmptyTestSetIsHarmless) {
  approx::MicroModel::Config mcfg;
  mcfg.hidden = 4;
  mcfg.layers = 1;
  approx::MicroModel model{mcfg};
  approx::Dataset empty;
  const auto metrics = approx::evaluate_micro_model(model, empty);
  EXPECT_EQ(metrics.rows, 0u);
}

}  // namespace
}  // namespace esim
