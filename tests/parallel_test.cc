#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/logger.h"

namespace esim::sim {
namespace {

ParallelEngine::Config basic_config(std::uint32_t parts) {
  ParallelEngine::Config cfg;
  cfg.num_partitions = parts;
  cfg.lookahead = SimTime::from_us(1);
  cfg.seed = 9;
  return cfg;
}

TEST(ParallelEngine, RejectsBadConfig) {
  auto cfg = basic_config(0);
  EXPECT_THROW(ParallelEngine{cfg}, std::invalid_argument);
  cfg = basic_config(2);
  cfg.lookahead = SimTime{};
  EXPECT_THROW(ParallelEngine{cfg}, std::invalid_argument);
}

TEST(ParallelEngine, RunsIndependentPartitions) {
  ParallelEngine eng{basic_config(4)};
  std::vector<std::atomic<int>> counts(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto& sim = eng.partition(p).sim();
    for (int i = 1; i <= 10; ++i) {
      sim.schedule_at(SimTime::from_us(i),
                      [&counts, p] { counts[p].fetch_add(1); });
    }
  }
  eng.run_until(SimTime::from_ms(1));
  for (auto& c : counts) EXPECT_EQ(c.load(), 10);
  EXPECT_EQ(eng.stats().events_executed, 40u);
  EXPECT_GT(eng.stats().sync_rounds, 0u);
}

TEST(ParallelEngine, CrossMessagesDeliverAtRequestedTime) {
  ParallelEngine eng{basic_config(2)};
  SimTime delivered_at;
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(5), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_us(2), [&] {
      delivered_at = eng.partition(1).sim().now();
    });
  });
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(delivered_at, SimTime::from_us(7));
  EXPECT_EQ(eng.stats().cross_messages, 1u);
}

TEST(ParallelEngine, LookaheadViolationThrows) {
  ParallelEngine eng{basic_config(2)};
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(5), [&] {
    // Delivery only 0.5us ahead with 1us lookahead: must throw, and the
    // engine must surface it after the run instead of deadlocking.
    eng.send_cross(0, 1, s0.now() + SimTime::from_ns(500), [] {});
  });
  EXPECT_THROW(eng.run_until(SimTime::from_ms(1)), std::logic_error);
}

TEST(ParallelEngine, PingPongAcrossPartitions) {
  // Messages bounce 0 -> 1 -> 0 -> ... each hop adding exactly lookahead;
  // checks windows never execute an event early.
  ParallelEngine eng{basic_config(2)};
  std::vector<std::int64_t> hops;
  std::function<void(std::uint32_t, int)> bounce = [&](std::uint32_t at,
                                                       int remaining) {
    auto& sim = eng.partition(at).sim();
    hops.push_back(sim.now().ns());
    if (remaining == 0) return;
    const std::uint32_t next = 1 - at;
    eng.send_cross(at, next, sim.now() + SimTime::from_us(1),
                   [&, next, remaining] { bounce(next, remaining - 1); });
  };
  eng.partition(0).sim().schedule_at(SimTime::from_us(1),
                                     [&] { bounce(0, 20); });
  eng.run_until(SimTime::from_ms(1));
  ASSERT_EQ(hops.size(), 21u);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i], 1000 * static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(eng.stats().cross_messages, 20u);
}

TEST(ParallelEngine, ManyToOneDrainsDeterministically) {
  // All partitions fire messages into partition 0 at the same virtual time;
  // execution order must be deterministic across runs (sorted by source).
  auto run_once = [] {
    ParallelEngine eng{basic_config(4)};
    std::vector<int> order;
    for (std::uint32_t p = 1; p < 4; ++p) {
      auto& sim = eng.partition(p).sim();
      sim.schedule_at(SimTime::from_us(1), [&eng, &order, p, &sim] {
        eng.send_cross(p, 0, sim.now() + SimTime::from_us(3),
                       [&order, p] { order.push_back(static_cast<int>(p)); });
      });
    }
    eng.run_until(SimTime::from_ms(1));
    return order;
  };
  const auto a = run_once();
  ASSERT_EQ(a.size(), 3u);
  for (int trial = 0; trial < 5; ++trial) EXPECT_EQ(run_once(), a);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelEngine, EquivalentToSequentialForPartitionLocalWork) {
  // A computation confined to one partition must produce the same result
  // under the parallel engine as under a plain Simulator.
  auto sequential = [] {
    Simulator sim{77};
    std::int64_t acc = 0;
    std::function<void(int)> step = [&](int n) {
      acc = acc * 31 + sim.now().ns() + static_cast<std::int64_t>(
                                            sim.rng().uniform_int(100));
      if (n > 0) {
        sim.schedule_in(SimTime::from_us(1 + sim.rng().uniform_int(5)),
                        [&step, n] { step(n - 1); });
      }
    };
    sim.schedule_in(SimTime::from_us(1), [&step] { step(30); });
    sim.run();
    return acc;
  };
  auto parallel = [] {
    auto cfg = basic_config(3);
    cfg.seed = 77;  // partition 0 gets seed 77
    ParallelEngine eng{cfg};
    auto& sim = eng.partition(0).sim();
    std::int64_t acc = 0;
    std::function<void(int)> step = [&](int n) {
      acc = acc * 31 + sim.now().ns() + static_cast<std::int64_t>(
                                            sim.rng().uniform_int(100));
      if (n > 0) {
        sim.schedule_in(SimTime::from_us(1 + sim.rng().uniform_int(5)),
                        [&step, n] { step(n - 1); });
      }
    };
    sim.schedule_in(SimTime::from_us(1), [&step] { step(30); });
    eng.run_until(SimTime::from_sec(1));
    return acc;
  };
  EXPECT_EQ(sequential(), parallel());
}

TEST(ParallelEngine, ModeledOverheadAccumulates) {
  auto cfg = basic_config(2);
  cfg.round_overhead_us = 5.0;
  ParallelEngine eng{cfg};
  auto& sim = eng.partition(0).sim();
  for (int i = 1; i <= 5; ++i) sim.schedule_at(SimTime::from_us(i), [] {});
  eng.run_until(SimTime::from_ms(1));
  EXPECT_GT(eng.stats().modeled_overhead_seconds, 0.0);
  EXPECT_GT(eng.stats().sync_rounds, 0u);
}

// Regression: the terminating sync round (the one that discovers there is
// no next window) used to increment sync_rounds and spin the modeled MPI
// overhead even though no window executes, inflating the Figure 1 overhead
// model by one round per run_until call.
TEST(ParallelEngine, TerminatingRoundIsNotCharged) {
  auto cfg = basic_config(2);
  cfg.round_overhead_us = 50.0;
  ParallelEngine eng{cfg};
  // No events at all: run_until's only round is the terminating one.
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(eng.stats().sync_rounds, 0u);
  EXPECT_EQ(eng.stats().modeled_overhead_seconds, 0.0);
}

TEST(ParallelEngine, SyncRoundCountIsExact) {
  ParallelEngine eng{basic_config(2)};
  auto& sim = eng.partition(0).sim();
  // With 1us lookahead each window advances past exactly one of these
  // events, so 10 window rounds run; the terminating round adds nothing.
  for (int i = 1; i <= 10; ++i) sim.schedule_at(SimTime::from_us(3 * i), [] {});
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(eng.stats().sync_rounds, 10u);
  // A second run with nothing left must not charge any further rounds.
  eng.run_until(SimTime::from_ms(2));
  EXPECT_EQ(eng.stats().sync_rounds, 10u);
}

TEST(ParallelEngine, ConcurrentLoggingFromAllPartitionsIsSerialized) {
  // Every partition logs from its worker thread into one shared sink.
  // Logger serializes emission under a process-wide mutex, so the shared
  // vector needs no locking of its own — this is the case TSan checks.
  constexpr std::uint32_t kParts = 4;
  constexpr int kPerPartition = 25;
  ParallelEngine eng{basic_config(kParts)};
  std::vector<std::string> lines;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    auto& logger = eng.partition(p).sim().logger();
    logger.set_level(LogLevel::Info);
    logger.set_sink([&lines](const std::string& line) {
      lines.push_back(line);
    });
  }
  for (std::uint32_t p = 0; p < kParts; ++p) {
    auto& sim = eng.partition(p).sim();
    auto* c = sim.add_component<Component>("part" + std::to_string(p));
    for (int i = 1; i <= kPerPartition; ++i) {
      sim.schedule_at(SimTime::from_us(i), [c, i] {
        ESIM_LOG(*c, LogLevel::Info, "event " + std::to_string(i));
      });
    }
  }
  eng.run_until(SimTime::from_ms(1));
  ASSERT_EQ(lines.size(), kParts * kPerPartition);
  for (std::uint32_t p = 0; p < kParts; ++p) {
    const std::string tag = "part" + std::to_string(p);
    const auto n = std::count_if(
        lines.begin(), lines.end(), [&tag](const std::string& line) {
          return line.find(tag) != std::string::npos;
        });
    EXPECT_EQ(n, kPerPartition) << tag;
  }
}

TEST(ParallelEngine, RepeatedRunUntilExtends) {
  ParallelEngine eng{basic_config(2)};
  std::atomic<int> count{0};
  auto& sim = eng.partition(0).sim();
  sim.schedule_at(SimTime::from_us(10), [&] { count.fetch_add(1); });
  sim.schedule_at(SimTime::from_ms(2), [&] { count.fetch_add(1); });
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(count.load(), 1);
  eng.run_until(SimTime::from_ms(5));
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace esim::sim
