#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/logger.h"

namespace esim::sim {
namespace {

ParallelEngine::Config basic_config(std::uint32_t parts) {
  ParallelEngine::Config cfg;
  cfg.num_partitions = parts;
  cfg.lookahead = SimTime::from_us(1);
  cfg.seed = 9;
  return cfg;
}

TEST(ParallelEngine, RejectsBadConfig) {
  auto cfg = basic_config(0);
  EXPECT_THROW(ParallelEngine{cfg}, std::invalid_argument);
  cfg = basic_config(2);
  cfg.lookahead = SimTime{};
  EXPECT_THROW(ParallelEngine{cfg}, std::invalid_argument);
}

TEST(ParallelEngine, RunsIndependentPartitions) {
  ParallelEngine eng{basic_config(4)};
  std::vector<std::atomic<int>> counts(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto& sim = eng.partition(p).sim();
    for (int i = 1; i <= 10; ++i) {
      sim.schedule_at(SimTime::from_us(i),
                      [&counts, p] { counts[p].fetch_add(1); });
    }
  }
  eng.run_until(SimTime::from_ms(1));
  for (auto& c : counts) EXPECT_EQ(c.load(), 10);
  EXPECT_EQ(eng.stats().events_executed, 40u);
  EXPECT_GT(eng.stats().sync_rounds, 0u);
}

TEST(ParallelEngine, CrossMessagesDeliverAtRequestedTime) {
  ParallelEngine eng{basic_config(2)};
  SimTime delivered_at;
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(5), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_us(2), [&] {
      delivered_at = eng.partition(1).sim().now();
    });
  });
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(delivered_at, SimTime::from_us(7));
  EXPECT_EQ(eng.stats().cross_messages, 1u);
}

TEST(ParallelEngine, LookaheadViolationThrows) {
  ParallelEngine eng{basic_config(2)};
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(5), [&] {
    // Delivery only 0.5us ahead with 1us lookahead: must throw, and the
    // engine must surface it after the run instead of deadlocking.
    eng.send_cross(0, 1, s0.now() + SimTime::from_ns(500), [] {});
  });
  EXPECT_THROW(eng.run_until(SimTime::from_ms(1)), std::logic_error);
}

TEST(ParallelEngine, PingPongAcrossPartitions) {
  // Messages bounce 0 -> 1 -> 0 -> ... each hop adding exactly lookahead;
  // checks windows never execute an event early.
  ParallelEngine eng{basic_config(2)};
  std::vector<std::int64_t> hops;
  std::function<void(std::uint32_t, int)> bounce = [&](std::uint32_t at,
                                                       int remaining) {
    auto& sim = eng.partition(at).sim();
    hops.push_back(sim.now().ns());
    if (remaining == 0) return;
    const std::uint32_t next = 1 - at;
    eng.send_cross(at, next, sim.now() + SimTime::from_us(1),
                   [&, next, remaining] { bounce(next, remaining - 1); });
  };
  eng.partition(0).sim().schedule_at(SimTime::from_us(1),
                                     [&] { bounce(0, 20); });
  eng.run_until(SimTime::from_ms(1));
  ASSERT_EQ(hops.size(), 21u);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i], 1000 * static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(eng.stats().cross_messages, 20u);
}

TEST(ParallelEngine, ManyToOneDrainsDeterministically) {
  // All partitions fire messages into partition 0 at the same virtual time;
  // execution order must be deterministic across runs (sorted by source).
  auto run_once = [] {
    ParallelEngine eng{basic_config(4)};
    std::vector<int> order;
    for (std::uint32_t p = 1; p < 4; ++p) {
      auto& sim = eng.partition(p).sim();
      sim.schedule_at(SimTime::from_us(1), [&eng, &order, p, &sim] {
        eng.send_cross(p, 0, sim.now() + SimTime::from_us(3),
                       [&order, p] { order.push_back(static_cast<int>(p)); });
      });
    }
    eng.run_until(SimTime::from_ms(1));
    return order;
  };
  const auto a = run_once();
  ASSERT_EQ(a.size(), 3u);
  for (int trial = 0; trial < 5; ++trial) EXPECT_EQ(run_once(), a);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelEngine, EquivalentToSequentialForPartitionLocalWork) {
  // A computation confined to one partition must produce the same result
  // under the parallel engine as under a plain Simulator.
  auto sequential = [] {
    Simulator sim{77};
    std::int64_t acc = 0;
    std::function<void(int)> step = [&](int n) {
      acc = acc * 31 + sim.now().ns() + static_cast<std::int64_t>(
                                            sim.rng().uniform_int(100));
      if (n > 0) {
        sim.schedule_in(SimTime::from_us(1 + sim.rng().uniform_int(5)),
                        [&step, n] { step(n - 1); });
      }
    };
    sim.schedule_in(SimTime::from_us(1), [&step] { step(30); });
    sim.run();
    return acc;
  };
  auto parallel = [] {
    auto cfg = basic_config(3);
    cfg.seed = 77;  // partition 0 gets seed 77
    ParallelEngine eng{cfg};
    auto& sim = eng.partition(0).sim();
    std::int64_t acc = 0;
    std::function<void(int)> step = [&](int n) {
      acc = acc * 31 + sim.now().ns() + static_cast<std::int64_t>(
                                            sim.rng().uniform_int(100));
      if (n > 0) {
        sim.schedule_in(SimTime::from_us(1 + sim.rng().uniform_int(5)),
                        [&step, n] { step(n - 1); });
      }
    };
    sim.schedule_in(SimTime::from_us(1), [&step] { step(30); });
    eng.run_until(SimTime::from_sec(1));
    return acc;
  };
  EXPECT_EQ(sequential(), parallel());
}

TEST(ParallelEngine, ModeledOverheadAccumulates) {
  auto cfg = basic_config(2);
  cfg.round_overhead_us = 5.0;
  ParallelEngine eng{cfg};
  auto& sim = eng.partition(0).sim();
  for (int i = 1; i <= 5; ++i) sim.schedule_at(SimTime::from_us(i), [] {});
  eng.run_until(SimTime::from_ms(1));
  EXPECT_GT(eng.stats().modeled_overhead_seconds, 0.0);
  EXPECT_GT(eng.stats().sync_rounds, 0u);
}

// Regression: the terminating sync round (the one that discovers there is
// no next window) used to increment sync_rounds and spin the modeled MPI
// overhead even though no window executes, inflating the Figure 1 overhead
// model by one round per run_until call.
TEST(ParallelEngine, TerminatingRoundIsNotCharged) {
  auto cfg = basic_config(2);
  cfg.round_overhead_us = 50.0;
  ParallelEngine eng{cfg};
  // No events at all: run_until's only round is the terminating one.
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(eng.stats().sync_rounds, 0u);
  EXPECT_EQ(eng.stats().modeled_overhead_seconds, 0.0);
}

TEST(ParallelEngine, SyncRoundCountIsExact) {
  ParallelEngine eng{basic_config(2)};
  auto& sim = eng.partition(0).sim();
  // With 1us lookahead each window advances past exactly one of these
  // events, so 10 window rounds run; the terminating round adds nothing.
  for (int i = 1; i <= 10; ++i) sim.schedule_at(SimTime::from_us(3 * i), [] {});
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(eng.stats().sync_rounds, 10u);
  // A second run with nothing left must not charge any further rounds.
  eng.run_until(SimTime::from_ms(2));
  EXPECT_EQ(eng.stats().sync_rounds, 10u);
}

TEST(ParallelEngine, ConcurrentLoggingFromAllPartitionsIsSerialized) {
  // Every partition logs from its worker thread into one shared sink.
  // Logger serializes emission under a process-wide mutex, so the shared
  // vector needs no locking of its own — this is the case TSan checks.
  constexpr std::uint32_t kParts = 4;
  constexpr int kPerPartition = 25;
  ParallelEngine eng{basic_config(kParts)};
  std::vector<std::string> lines;
  for (std::uint32_t p = 0; p < kParts; ++p) {
    auto& logger = eng.partition(p).sim().logger();
    logger.set_level(LogLevel::Info);
    logger.set_sink([&lines](const std::string& line) {
      lines.push_back(line);
    });
  }
  for (std::uint32_t p = 0; p < kParts; ++p) {
    auto& sim = eng.partition(p).sim();
    auto* c = sim.add_component<Component>("part" + std::to_string(p));
    for (int i = 1; i <= kPerPartition; ++i) {
      sim.schedule_at(SimTime::from_us(i), [c, i] {
        ESIM_LOG(*c, LogLevel::Info, "event " + std::to_string(i));
      });
    }
  }
  eng.run_until(SimTime::from_ms(1));
  ASSERT_EQ(lines.size(), kParts * kPerPartition);
  for (std::uint32_t p = 0; p < kParts; ++p) {
    const std::string tag = "part" + std::to_string(p);
    const auto n = std::count_if(
        lines.begin(), lines.end(), [&tag](const std::string& line) {
          return line.find(tag) != std::string::npos;
        });
    EXPECT_EQ(n, kPerPartition) << tag;
  }
}

TEST(ParallelEngine, PairLookaheadDefaultsToGlobal) {
  ParallelEngine eng{basic_config(3)};
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_EQ(eng.pair_lookahead(a, b), SimTime::from_us(1));
    }
  }
}

TEST(ParallelEngine, SetPairLookaheadBelowGlobalThrows) {
  ParallelEngine eng{basic_config(2)};
  EXPECT_THROW(eng.set_pair_lookahead(0, 1, SimTime::from_ns(500)),
               std::invalid_argument);
  // At or above the global floor is fine.
  eng.set_pair_lookahead(0, 1, SimTime::from_us(1));
  eng.set_pair_lookahead(0, 1, SimTime::from_us(8));
  EXPECT_EQ(eng.pair_lookahead(0, 1), SimTime::from_us(8));
}

TEST(ParallelEngine, PerPairWideLookaheadReducesRounds) {
  // Same workload as SyncRoundCountIsExact, but the pair lookaheads are
  // 8x the global one. Global mode must still step 1us windows; per-pair
  // mode's windows follow the 8us pair bound (the self-window is the
  // 16us shortest cycle through the other partition), so it needs
  // strictly fewer rounds for identical results.
  auto run_mode = [](ParallelEngine::WindowMode mode) {
    auto cfg = basic_config(2);
    cfg.window_mode = mode;
    ParallelEngine eng{cfg};
    eng.set_pair_lookahead(0, 1, SimTime::from_us(8));
    eng.set_pair_lookahead(1, 0, SimTime::from_us(8));
    auto& sim = eng.partition(0).sim();
    std::vector<std::int64_t> fired;
    for (int i = 1; i <= 10; ++i) {
      sim.schedule_at(SimTime::from_us(3 * i),
                      [&fired, &sim] { fired.push_back(sim.now().ns()); });
    }
    eng.run_until(SimTime::from_ms(1));
    return std::pair{eng.stats().sync_rounds, fired};
  };
  const auto [global_rounds, global_fired] =
      run_mode(ParallelEngine::WindowMode::global);
  const auto [pair_rounds, pair_fired] =
      run_mode(ParallelEngine::WindowMode::per_pair);
  EXPECT_EQ(pair_fired, global_fired);
  ASSERT_EQ(pair_fired.size(), 10u);
  EXPECT_LT(pair_rounds, global_rounds);
}

TEST(ParallelEngine, PerPairManyToOneMatchesGlobalOrder) {
  // The ManyToOneDrainsDeterministically scenario under per-pair windows:
  // delivery order must be the same deterministic (time, source, seq)
  // order the global window produces.
  auto cfg = basic_config(4);
  cfg.window_mode = ParallelEngine::WindowMode::per_pair;
  ParallelEngine eng{cfg};
  std::vector<int> order;
  for (std::uint32_t p = 1; p < 4; ++p) {
    auto& sim = eng.partition(p).sim();
    sim.schedule_at(SimTime::from_us(1), [&eng, &order, p, &sim] {
      eng.send_cross(p, 0, sim.now() + SimTime::from_us(3),
                     [&order, p] { order.push_back(static_cast<int>(p)); });
    });
  }
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelEngine, SendAcrossInfinitePairThrows) {
  // An infinite pair lookahead declares "no channel exists"; sending on
  // one is a builder wiring bug and must fail loudly, not corrupt the
  // window math.
  auto cfg = basic_config(2);
  cfg.window_mode = ParallelEngine::WindowMode::per_pair;
  ParallelEngine eng{cfg};
  eng.set_pair_lookahead(0, 1, ParallelEngine::infinite_lookahead());
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(1), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_ms(1), [] {});
  });
  EXPECT_THROW(eng.run_until(SimTime::from_ms(10)), std::logic_error);
}

TEST(ParallelEngine, PairLookaheadViolationThrows) {
  // The pair bound (3us) is tighter than what the message honors (2us):
  // send_cross must validate against the pair matrix, not just the
  // global lookahead.
  auto cfg = basic_config(2);
  cfg.window_mode = ParallelEngine::WindowMode::per_pair;
  ParallelEngine eng{cfg};
  eng.set_pair_lookahead(0, 1, SimTime::from_us(3));
  auto& s0 = eng.partition(0).sim();
  s0.schedule_at(SimTime::from_us(1), [&] {
    eng.send_cross(0, 1, s0.now() + SimTime::from_us(2), [] {});
  });
  EXPECT_THROW(eng.run_until(SimTime::from_ms(1)), std::logic_error);
}

TEST(ParallelEngine, PerPairChainedWakeupsDeliverOnTime) {
  // Transitive chain 2 -> 1 -> 0 where partition 0 is otherwise idle:
  // the closure (not just direct pair bounds) must keep partition 0 from
  // running past the relayed message. Delivery times prove no event ran
  // early or was dropped.
  auto cfg = basic_config(3);
  cfg.window_mode = ParallelEngine::WindowMode::per_pair;
  ParallelEngine eng{cfg};
  // Loose direct bounds everywhere except the tight relay path.
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      if (a != b) eng.set_pair_lookahead(a, b, SimTime::from_us(100));
    }
  }
  eng.set_pair_lookahead(2, 1, SimTime::from_us(1));
  eng.set_pair_lookahead(1, 0, SimTime::from_us(1));
  SimTime delivered;
  auto& s2 = eng.partition(2).sim();
  s2.schedule_at(SimTime::from_us(5), [&] {
    eng.send_cross(2, 1, s2.now() + SimTime::from_us(1), [&] {
      auto& s1 = eng.partition(1).sim();
      eng.send_cross(1, 0, s1.now() + SimTime::from_us(1), [&] {
        delivered = eng.partition(0).sim().now();
      });
    });
  });
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(delivered, SimTime::from_us(7));
  EXPECT_EQ(eng.stats().cross_messages, 2u);
}

TEST(ParallelEngine, RepeatedRunUntilExtends) {
  ParallelEngine eng{basic_config(2)};
  std::atomic<int> count{0};
  auto& sim = eng.partition(0).sim();
  sim.schedule_at(SimTime::from_us(10), [&] { count.fetch_add(1); });
  sim.schedule_at(SimTime::from_ms(2), [&] { count.fetch_add(1); });
  eng.run_until(SimTime::from_ms(1));
  EXPECT_EQ(count.load(), 1);
  eng.run_until(SimTime::from_ms(5));
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace esim::sim
