#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "net/clos.h"

namespace esim::core {
namespace {

net::ClosSpec fat_tree_spec() {
  // tors_per_cluster > cores so cluster co-location is the true min-cut
  // (each agg has more intra-cluster links than core links).
  net::ClosSpec spec;
  spec.clusters = 4;
  spec.tors_per_cluster = 4;
  spec.aggs_per_cluster = 2;
  spec.hosts_per_tor = 2;
  spec.cores = 2;
  return spec;
}

net::ClosSpec leaf_spine_spec() {
  net::ClosSpec spec;
  spec.clusters = 1;
  spec.tors_per_cluster = 8;
  spec.aggs_per_cluster = 4;
  spec.hosts_per_tor = 2;
  spec.cores = 0;
  return spec;
}

std::uint64_t count_cut(const net::ClosSpec& spec,
                        const std::vector<std::uint32_t>& part) {
  // Independent recount of directed crossing fabric links.
  std::uint64_t cut = 0;
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        if (part[spec.tor_id(c, t)] != part[spec.agg_id(c, a)]) cut += 2;
      }
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      for (std::uint32_t k = 0; k < spec.cores; ++k) {
        if (part[spec.agg_id(c, a)] != part[spec.core_id(k)]) cut += 2;
      }
    }
  }
  return cut;
}

TEST(Partitioner, ValidatesArguments) {
  EXPECT_THROW(make_partition_plan(fat_tree_spec(), 0,
                                   PlacementPolicy::graph_cut),
               std::invalid_argument);
}

TEST(Partitioner, SinglePartitionHasNoCut) {
  const auto plan =
      make_partition_plan(fat_tree_spec(), 1, PlacementPolicy::graph_cut);
  EXPECT_EQ(plan.cut_links, 0u);
  for (auto p : plan.partition_of_switch) EXPECT_EQ(p, 0u);
}

TEST(Partitioner, ReportsAccurateCutAccounting) {
  const auto spec = fat_tree_spec();
  for (auto policy :
       {PlacementPolicy::round_robin, PlacementPolicy::graph_cut}) {
    const auto plan = make_partition_plan(spec, 4, policy);
    ASSERT_EQ(plan.partition_of_switch.size(), spec.total_switches());
    // total = 2*(tor-agg) + 2*(agg-core), both directions.
    const std::uint64_t expect_total =
        2ull * spec.clusters * spec.tors_per_cluster * spec.aggs_per_cluster +
        2ull * spec.clusters * spec.aggs_per_cluster * spec.cores;
    EXPECT_EQ(plan.total_links, expect_total);
    EXPECT_EQ(plan.cut_links, count_cut(spec, plan.partition_of_switch));
    for (auto p : plan.partition_of_switch) EXPECT_LT(p, 4u);
  }
}

TEST(Partitioner, GraphCutNeverWorseThanRoundRobin) {
  const std::vector<net::ClosSpec> specs{fat_tree_spec(), leaf_spine_spec()};
  for (const auto& spec : specs) {
    for (std::uint32_t P : {2u, 3u, 4u, 8u}) {
      const auto rr =
          make_partition_plan(spec, P, PlacementPolicy::round_robin);
      const auto gc = make_partition_plan(spec, P, PlacementPolicy::graph_cut);
      EXPECT_LE(gc.cut_links, rr.cut_links)
          << "P=" << P << " clusters=" << spec.clusters;
    }
  }
}

TEST(Partitioner, GraphCutBeatsRoundRobinOnMultiClusterFatTree) {
  // Round-robin splits every cluster across every partition; graph-cut
  // keeps clusters whole so only agg<->core links cross.
  const auto spec = fat_tree_spec();
  const auto rr = make_partition_plan(spec, 4, PlacementPolicy::round_robin);
  const auto gc = make_partition_plan(spec, 4, PlacementPolicy::graph_cut);
  EXPECT_LT(gc.cut_links, rr.cut_links);
  // Cluster co-location: all switches of a cluster share one partition.
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    const auto home = gc.partition_of_switch[spec.tor_id(c, 0)];
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      EXPECT_EQ(gc.partition_of_switch[spec.tor_id(c, t)], home);
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      EXPECT_EQ(gc.partition_of_switch[spec.agg_id(c, a)], home);
    }
  }
}

TEST(Partitioner, DeterministicAcrossCalls) {
  const auto spec = fat_tree_spec();
  for (std::uint32_t P : {2u, 4u, 7u}) {
    const auto a = make_partition_plan(spec, P, PlacementPolicy::graph_cut);
    const auto b = make_partition_plan(spec, P, PlacementPolicy::graph_cut);
    EXPECT_EQ(a.partition_of_switch, b.partition_of_switch);
    EXPECT_EQ(a.cut_links, b.cut_links);
  }
}

TEST(Partitioner, EveryPartitionOwnsWork) {
  // The balance floor must keep refinement from draining a partition:
  // every partition keeps at least one ToR (and with it, hosts).
  const auto spec = fat_tree_spec();
  for (std::uint32_t P : {2u, 3u, 4u}) {
    const auto plan = make_partition_plan(spec, P, PlacementPolicy::graph_cut);
    std::vector<int> tors_in(P, 0);
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
        ++tors_in[plan.partition_of_switch[spec.tor_id(c, t)]];
      }
    }
    for (std::uint32_t p = 0; p < P; ++p) {
      EXPECT_GT(tors_in[p], 0) << "P=" << P << " partition " << p;
    }
  }
}

TEST(Partitioner, MorePartitionsThanNodesStillValid) {
  net::ClosSpec spec = leaf_spine_spec();
  spec.tors_per_cluster = 2;
  spec.aggs_per_cluster = 1;  // 3 switches total
  const auto plan = make_partition_plan(spec, 8, PlacementPolicy::graph_cut);
  ASSERT_EQ(plan.partition_of_switch.size(), 3u);
  for (auto p : plan.partition_of_switch) EXPECT_LT(p, 8u);
  EXPECT_EQ(plan.cut_links, count_cut(spec, plan.partition_of_switch));
}

TEST(Partitioner, PartitionOfHostFollowsTor) {
  const auto spec = fat_tree_spec();
  const auto plan = make_partition_plan(spec, 4, PlacementPolicy::graph_cut);
  for (net::HostId h = 0; h < spec.total_hosts(); ++h) {
    EXPECT_EQ(plan.partition_of_host(spec, h),
              plan.partition_of_switch[spec.tor_of_host(h)]);
  }
}

TEST(Partitioner, RoundRobinMatchesLegacyRackModulo) {
  const auto spec = fat_tree_spec();
  const auto plan = make_partition_plan(spec, 3, PlacementPolicy::round_robin);
  // Legacy layout: a running counter mod P over all ToRs (cluster-major),
  // then all aggs (cluster-major), then cores.
  std::uint32_t rack = 0;
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      EXPECT_EQ(plan.partition_of_switch[spec.tor_id(c, t)], rack++ % 3);
    }
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      EXPECT_EQ(plan.partition_of_switch[spec.agg_id(c, a)], rack++ % 3);
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    EXPECT_EQ(plan.partition_of_switch[spec.core_id(k)], rack++ % 3);
  }
}

TEST(Partitioner, SummaryMentionsPolicyAndCut) {
  const auto plan =
      make_partition_plan(fat_tree_spec(), 4, PlacementPolicy::graph_cut);
  const auto text = plan.summary();
  EXPECT_NE(text.find("graph_cut"), std::string::npos);
  EXPECT_NE(text.find("links cross"), std::string::npos);
}

TEST(AssignBalanced, BalancesWeightsDeterministically) {
  const std::vector<std::uint64_t> weights{8, 1, 1, 1, 1, 4};
  const auto a = assign_balanced(weights, 2);
  const auto b = assign_balanced(weights, 2);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), weights.size());
  std::vector<std::uint64_t> bin(2, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_LT(a[i], 2u);
    bin[a[i]] += weights[i];
  }
  // Greedy lightest-bin on these weights: 8 | 1+1+1+1+4.
  EXPECT_EQ(std::max(bin[0], bin[1]), 8u);
}

TEST(AssignBalanced, TiesGoToLowestBin) {
  const auto got = assign_balanced({1, 1, 1}, 3);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace esim::core
