#include "sim/time.h"

#include <gtest/gtest.h>

namespace esim::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_EQ(t, SimTime::from_ns(0));
}

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_EQ(SimTime::from_us(1).ns(), 1'000);
  EXPECT_EQ(SimTime::from_ms(1).ns(), 1'000'000);
  EXPECT_EQ(SimTime::from_sec(1).ns(), 1'000'000'000);
  EXPECT_EQ(SimTime::from_sec(2), SimTime::from_ms(2000));
  EXPECT_EQ(SimTime::from_seconds_f(0.5), SimTime::from_ms(500));
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::from_us(5);
  const auto b = SimTime::from_us(3);
  EXPECT_EQ((a + b).ns(), 8'000);
  EXPECT_EQ((a - b).ns(), 2'000);
  EXPECT_EQ((a * 4).ns(), 20'000);
  auto c = a;
  c += b;
  EXPECT_EQ(c.ns(), 8'000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, ScaledRoundsTowardZero) {
  EXPECT_EQ(SimTime::from_ns(10).scaled(0.55).ns(), 5);
  EXPECT_EQ(SimTime::from_ns(-10).scaled(0.55).ns(), -5);
}

TEST(SimTime, DurationDivision) {
  EXPECT_EQ(SimTime::from_ms(10) / SimTime::from_us(500), 20);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::from_ns(1), SimTime::from_ns(2));
  EXPECT_GT(SimTime::from_sec(1), SimTime::from_ms(999));
  EXPECT_LE(SimTime::from_ns(5), SimTime::from_ns(5));
  EXPECT_LT(SimTime{}, SimTime::max());
}

TEST(SimTime, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ(SimTime::from_ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::from_us(2).to_us(), 2.0);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::from_ns(0).to_string(), "0s");
  EXPECT_EQ(SimTime::from_ns(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::from_us(1).to_string(), "1.000us");
  EXPECT_EQ(SimTime::from_ms(2).to_string(), "2.000ms");
  EXPECT_EQ(SimTime::from_sec(3).to_string(), "3.000000s");
}

TEST(SimTime, MaxActsAsNever) {
  EXPECT_GT(SimTime::max(), SimTime::from_sec(1'000'000));
}

}  // namespace
}  // namespace esim::sim
