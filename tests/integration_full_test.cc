// Integration tests: full-fidelity Clos networks under TCP workloads.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/full_builder.h"
#include "net/clos.h"
#include "stats/collectors.h"
#include "workload/generator.h"

namespace esim::core {
namespace {

using net::ClosSpec;
using sim::SimTime;
using sim::Simulator;

NetworkConfig paper_config() {
  NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.tors_per_cluster = 2;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 2;
  return cfg;
}

TEST(FullBuilder, CreatesAllComponents) {
  Simulator sim{1};
  const auto cfg = paper_config();
  const auto net = build_full_network(sim, cfg);
  EXPECT_EQ(net.hosts.size(), 16u);
  EXPECT_EQ(net.switches.size(), 10u);
  for (auto* h : net.hosts) ASSERT_NE(h, nullptr);
  for (auto* s : net.switches) ASSERT_NE(s, nullptr);
  // ToR: 4 host ports + 2 agg ports; Agg: 2 tor + 2 core; Core: 2x2 aggs.
  EXPECT_EQ(net.switches[0]->port_count(), 6u);
  EXPECT_EQ(net.switches[net.spec.agg_id(0, 0)]->port_count(), 4u);
  EXPECT_EQ(net.switches[net.spec.core_id(0)]->port_count(), 4u);
  // 2 clusters x 2 aggs x 2 cores attachments.
  EXPECT_EQ(net.core_links.size(), 8u);
  EXPECT_EQ(net.attachments_of(0).size(), 4u);
}

TEST(FullBuilder, LeafSpineHasNoCoreLinks) {
  Simulator sim{1};
  NetworkConfig cfg;
  cfg.spec.clusters = 1;
  cfg.spec.tors_per_cluster = 4;
  cfg.spec.aggs_per_cluster = 4;
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 0;
  const auto net = build_full_network(sim, cfg);
  EXPECT_EQ(net.hosts.size(), 16u);
  EXPECT_EQ(net.switches.size(), 8u);
  EXPECT_TRUE(net.core_links.empty());
}

TEST(FullNetwork, SingleFlowAcrossClustersCompletes) {
  Simulator sim{7};
  auto net = build_full_network(sim, paper_config());
  bool complete = false;
  sim.schedule_at(SimTime::from_us(10), [&] {
    auto* c = net.hosts[0]->open_flow(12, 100'000, 1);
    c->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_ms(100));
  EXPECT_TRUE(complete);
}

TEST(FullNetwork, ForwardingMatchesPathReplay) {
  Simulator sim{8};
  auto net = build_full_network(sim, paper_config());
  // Tap every agg->core uplink: the core a packet reaches must equal the
  // one compute_path predicts from its header alone.
  std::uint64_t checked = 0;
  for (const auto& att : net.core_links) {
    att.up->on_transmit = [&, core = att.core](const net::Packet& pkt,
                                               SimTime) {
      const auto path = net::compute_path(net.spec, pkt.flow);
      ASSERT_EQ(path.len, 5u);
      EXPECT_EQ(path.hops[2], net.spec.core_id(core))
          << "packet " << pkt.to_string() << " took an unpredicted core";
      ++checked;
    };
  }
  sim.schedule_at(SimTime::from_us(10), [&] {
    for (int i = 0; i < 6; ++i) {
      net.hosts[i]->open_flow(static_cast<net::HostId>(8 + i), 30'000,
                              static_cast<std::uint64_t>(i + 1));
    }
  });
  sim.run_until(SimTime::from_ms(50));
  EXPECT_GT(checked, 100u);
}

TEST(FullNetwork, GeneratorDrivesManyFlowsToCompletion) {
  Simulator sim{9};
  auto net = build_full_network(sim, paper_config());
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.2;
  gcfg.stop_at = SimTime::from_ms(20);
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, sizes.get(), &matrix, gcfg);
  gen->start();
  sim.run_until(SimTime::from_ms(200));
  EXPECT_GT(gen->launched(), 50u);
  const auto& fc = gen->flows();
  // Open-loop Poisson at 20% load on an idle fabric: the vast majority of
  // flows complete well before the 180ms drain window closes.
  EXPECT_GT(fc.completed_count(), fc.records().size() * 9 / 10);
  EXPECT_GT(fc.mean_goodput_bps(), 1e6);
}

TEST(FullNetwork, RttSamplesReflectTopologyDistance) {
  Simulator sim{10};
  auto net = build_full_network(sim, paper_config());
  stats::LatencyCollector intra_tor, inter_cluster;
  net.hosts[0]->set_rtt_collector(&intra_tor);
  net.hosts[4]->set_rtt_collector(&inter_cluster);
  sim.schedule_at(SimTime::from_us(10), [&] {
    net.hosts[0]->open_flow(1, 50'000, 1);    // same ToR
    net.hosts[4]->open_flow(12, 50'000, 2);   // other cluster
  });
  sim.run_until(SimTime::from_ms(100));
  ASSERT_GT(intra_tor.summary().count(), 0u);
  ASSERT_GT(inter_cluster.summary().count(), 0u);
  // 1-hop RTT (2 links each way) vs 5-hop RTT (6 links each way).
  EXPECT_LT(intra_tor.summary().min(), inter_cluster.summary().min());
}

TEST(FullNetwork, AdmissionFilterSuppressesFlows) {
  Simulator sim{11};
  auto net = build_full_network(sim, paper_config());
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = 0.1;
  gcfg.stop_at = SimTime::from_ms(10);
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, sizes.get(), &matrix, gcfg);
  gen->admission_filter = [&](net::HostId s, net::HostId d) {
    // Keep only flows touching cluster 0.
    return net.spec.cluster_of_host(s) == 0 ||
           net.spec.cluster_of_host(d) == 0;
  };
  gen->start();
  sim.run_until(SimTime::from_ms(50));
  EXPECT_GT(gen->suppressed(), 0u);
  EXPECT_GT(gen->launched(), 0u);
  for (const auto& r : gen->flows().records()) {
    EXPECT_TRUE(net.spec.cluster_of_host(r.src_host) == 0 ||
                net.spec.cluster_of_host(r.dst_host) == 0);
  }
}

TEST(FullNetwork, IncastCausesCongestionDrops) {
  // The minimum-window pathology of paper §2.1: enough simultaneous
  // senders into one host overflow the shallow fabric buffers no matter
  // how far TCP backs off.
  Simulator sim{12};
  NetworkConfig cfg = paper_config();
  cfg.spec.clusters = 2;
  cfg.spec.hosts_per_tor = 8;  // more senders
  auto net = build_full_network(sim, cfg);
  int completions = 0;
  sim.schedule_at(SimTime::from_us(10), [&] {
    for (net::HostId h = 8; h < 32; ++h) {  // 24 senders, 1 sink
      auto* c = net.hosts[h]->open_flow(0, 200'000, h);
      c->on_complete = [&] { ++completions; };
    }
  });
  sim.run_until(SimTime::from_sec(2));
  std::uint64_t fabric_drops = 0;
  // Drops happen on the sink's ToR downlink and on fabric links.
  fabric_drops += net.host_downlinks[0]->counter().dropped;
  for (const auto& att : net.core_links) {
    fabric_drops += att.down->counter().dropped;
  }
  EXPECT_GT(fabric_drops, 0u);
  EXPECT_EQ(completions, 24);  // TCP still gets everything through
}

TEST(FullNetwork, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim{42};
    auto net = build_full_network(sim, paper_config());
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{net.spec.total_hosts()};
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = 0.3;
    gcfg.stop_at = SimTime::from_ms(5);
    auto* gen = sim.add_component<workload::TrafficGenerator>(
        "gen", net.hosts, sizes.get(), &matrix, gcfg);
    gen->start();
    sim.run_until(SimTime::from_ms(30));
    std::vector<std::int64_t> fcts;
    for (const auto& r : gen->flows().records()) {
      fcts.push_back(r.completed ? r.fct().ns() : -1);
    }
    return std::pair{sim.events_executed(), fcts};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.second.empty());
}

}  // namespace
}  // namespace esim::core
