// Tests for cross-packet batched inference at the cluster boundary
// (DESIGN.md §8): the coalesced prediction queue's flush triggers and
// config validation, the RNG draw-order contract (drop draws consumed at
// admission in arrival order), the min-latency floor and max-backlog
// clamps under batching, and sequential-vs-PDES digest identity with
// coalescing active.
#include <gtest/gtest.h>

#include "check/hybrid_diff.h"
#include "core/hybrid_builder.h"
#include "core/hybrid_pdes.h"
#include "stats/collectors.h"

namespace esim::core {
namespace {

using approx::MicroModel;
using check::Digest;
using check::HybridScenario;
using sim::SimTime;
using sim::Simulator;

net::ClosSpec spec_with_clusters(std::uint32_t clusters) {
  net::ClosSpec s;
  s.clusters = clusters;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

/// A model rigged to never drop and always predict ~`latency_us`.
MicroModel make_benign_model(double latency_us) {
  MicroModel::Config cfg;
  cfg.hidden = 4;
  cfg.layers = 1;
  MicroModel m{cfg};
  m.drop_head().weight().zero();
  m.drop_head().bias().at(0, 0) = -20.0;
  m.latency_head().weight().zero();
  m.latency_head().bias().at(0, 0) = 0.0;
  m.set_latency_normalization(std::log(latency_us), 1.0);
  return m;
}

TEST(BatchCluster, RejectsWindowBeyondMinLatency) {
  Simulator sim{1};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  cfg.approx.min_latency_s = 5e-6;
  cfg.approx.batch_max = 8;
  cfg.approx.batch_window = SimTime::from_us(6);  // > min_latency_s
  const auto m = make_benign_model(8.0);
  EXPECT_THROW(build_hybrid_network(sim, cfg, m, m), std::invalid_argument);
  // At the boundary (window == min latency) the sequential build is fine:
  // a flushed packet's delivery lands exactly at its admission horizon.
  cfg.approx.batch_window = SimTime::from_us(5);
  Simulator ok_sim{1};
  EXPECT_NO_THROW(build_hybrid_network(ok_sim, cfg, m, m));
}

TEST(BatchCluster, PdesBuilderRejectsWindowBeyondLookaheadSlack) {
  const auto m = make_benign_model(8.0);
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  cfg.approx.min_latency_s = 5e-6;
  cfg.approx.batch_max = 8;
  sim::ParallelEngine::Config ecfg;
  ecfg.num_partitions = 2;
  ecfg.lookahead = SimTime::from_us(1);
  ecfg.seed = 5;
  {
    // window + lookahead > min_latency: a coalesced packet could be held
    // past the lookahead it was admitted under.
    sim::ParallelEngine engine{ecfg};
    cfg.approx.batch_window = SimTime::from_ns(4'500);
    EXPECT_THROW(build_hybrid_network_partitioned(engine, cfg, m, m),
                 std::invalid_argument);
  }
  {
    // Exactly at the slack boundary the build is accepted.
    sim::ParallelEngine engine{ecfg};
    cfg.approx.batch_window = SimTime::from_us(4);
    EXPECT_NO_THROW(build_hybrid_network_partitioned(engine, cfg, m, m));
  }
}

// The RNG draw-order contract (the decide_drop bugfix): with sampled
// drops, the batched path must consume exactly one uniform draw per
// packet in arrival order — at admission, not at flush — so coalescing
// N > 1 predictions cannot shift any packet's draw. Same engine, same
// component creation order, so digest identity is exact evidence.
TEST(BatchCluster, SequentialDigestIdenticalBatchingOnVsOff) {
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    HybridScenario sc = check::random_hybrid_scenario(seed);
    sc.sample_drops = true;
    // A gentle baseline (~12% sampled drops) keeps TCP moving so the
    // comparison below is not vacuous; the fuzz tier covers hot biases.
    sc.drop_bias = -2.0;
    const Digest off = check::run_hybrid(sc, 0, /*batching=*/false);
    const Digest on = check::run_hybrid(sc, 0, /*batching=*/true);
    EXPECT_TRUE(off.engine_invariant_equal(on))
        << "seed " << seed << "\n  off: " << off.to_string()
        << "\n  on:  " << on.to_string();
    // The comparison must not be vacuous: traffic flowed and completed.
    EXPECT_GT(on.packets, 100u) << "seed " << seed;
    EXPECT_GT(on.flows, 0u) << "seed " << seed;
  }
}

/// One rigged two-cluster run; returns observables that must be exactly
/// equal whether the prediction queue coalesces or not.
struct ClampObservables {
  std::uint64_t segments = 0;
  std::uint64_t retransmissions = 0;
  double rtt_min = 0.0;
  double rtt_max = 0.0;
  ApproxCluster::Stats stats;
};

ClampObservables run_clamped(bool batching) {
  Simulator sim{7};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  // Model predicts ~0.5us — far below the 5us floor, so every delivery
  // clamps to arrival + min_latency_s exactly.
  cfg.approx.min_latency_s = 5e-6;
  // Tiny virtual drop-tail: concurrent flows overflow the emulated port
  // backlog, exercising the max-queueing-delay clamp.
  cfg.approx.max_port_backlog = SimTime::from_us(3);
  if (batching) {
    cfg.approx.batch_max = 8;
    cfg.approx.batch_window = SimTime::from_us(4);
  }
  const auto ingress = make_benign_model(0.5);
  const auto egress = make_benign_model(0.5);
  auto net = build_hybrid_network(sim, cfg, ingress, egress);
  stats::LatencyCollector rtt;
  net.hosts[0]->set_rtt_collector(&rtt);
  tcp::TcpConnection* a = nullptr;
  tcp::TcpConnection* b = nullptr;
  tcp::TcpConnection* c = nullptr;
  // Three flows converge on host 12: 3:1 into one emulated ingress port,
  // so the serializer's backlog grows past the 3us drop-tail.
  sim.schedule_at(SimTime::from_us(10),
                  [&] { a = net.hosts[0]->open_flow(12, 200'000, 1); });
  sim.schedule_at(SimTime::from_us(11),
                  [&] { b = net.hosts[1]->open_flow(12, 200'000, 2); });
  sim.schedule_at(SimTime::from_us(12),
                  [&] { c = net.hosts[4]->open_flow(12, 200'000, 3); });
  sim.run_until(SimTime::from_ms(80));
  ClampObservables out;
  out.segments = a->stats().segments_sent + b->stats().segments_sent +
                 c->stats().segments_sent;
  out.retransmissions = a->stats().retransmissions +
                        b->stats().retransmissions +
                        c->stats().retransmissions;
  out.rtt_min = rtt.summary().count() > 0 ? rtt.summary().min() : 0.0;
  out.rtt_max = rtt.summary().count() > 0 ? rtt.summary().max() : 0.0;
  // Stats reads are flush barriers: the cutoff may land mid-window.
  net.clusters[1]->flush_batch();
  out.stats = net.clusters[1]->stats();
  return out;
}

// Satellite contract: the min-latency floor and the max-port-backlog
// clamp apply per coalesced packet exactly as at N = 1. The batched run
// must reproduce the unbatched run's clamped RTTs, backlog drops, and
// retransmission schedule to the bit.
TEST(BatchCluster, LatencyFloorAndBacklogClampMatchUnbatched) {
  const ClampObservables off = run_clamped(false);
  const ClampObservables on = run_clamped(true);

  // The floor bites: a sub-microsecond model prediction cannot produce an
  // RTT below two clamped 5us fabric traversals (plus wire overheads).
  EXPECT_GT(off.rtt_min, 10e-6);
  // The backlog clamp bites: two concurrent flows into one emulated port
  // with a 3us drop-tail must shed packets.
  EXPECT_GT(off.stats.backlog_drops, 0u);
  EXPECT_GT(off.stats.conflicts_resolved, 0u);

  EXPECT_EQ(on.segments, off.segments);
  EXPECT_EQ(on.retransmissions, off.retransmissions);
  EXPECT_EQ(on.rtt_min, off.rtt_min);
  EXPECT_EQ(on.rtt_max, off.rtt_max);
  EXPECT_EQ(on.stats.egress_packets, off.stats.egress_packets);
  EXPECT_EQ(on.stats.ingress_packets, off.stats.ingress_packets);
  EXPECT_EQ(on.stats.predicted_drops, off.stats.predicted_drops);
  EXPECT_EQ(on.stats.backlog_drops, off.stats.backlog_drops);
  EXPECT_EQ(on.stats.conflicts_resolved, off.stats.conflicts_resolved);
}

// Named HybridPdesBatch so scripts/check.sh's tsan tier picks it up: the
// coalesced queue's flush timers and cross-partition deliveries run under
// the race detector here.
TEST(HybridPdesBatch, EnginesAgreeWithCoalescingActive) {
  HybridScenario sc = check::random_hybrid_scenario(7);
  sc.sample_drops = false;  // cross-engine: RNG streams differ by design
  sc.drop_bias = -2.0;      // below threshold: traffic actually flows
  const Digest seq = check::run_hybrid(sc, 0, /*batching=*/true);
  for (const std::uint32_t partitions : {2u, 3u}) {
    const Digest pdes = check::run_hybrid(sc, partitions, /*batching=*/true);
    EXPECT_TRUE(seq.engine_invariant_equal(pdes))
        << "partitions " << partitions << "\n  seq:  " << seq.to_string()
        << "\n  pdes: " << pdes.to_string();
  }
  EXPECT_GT(seq.packets, 100u);
}

}  // namespace
}  // namespace esim::core
