#include "ml/gru.h"

#include <gtest/gtest.h>

#include <cmath>

#include "approx/micro_model.h"
#include "approx/trainer.h"
#include "ml/linear.h"
#include "ml/loss.h"
#include "ml/optimizer.h"
#include "ml/sequence_model.h"
#include "sim/random.h"

namespace esim::ml {
namespace {

using esim::sim::Rng;

double numeric_grad(Tensor& t, std::size_t r, std::size_t c,
                    const std::function<double()>& loss, double eps = 1e-5) {
  const double orig = t.at(r, c);
  t.at(r, c) = orig + eps;
  const double up = loss();
  t.at(r, c) = orig - eps;
  const double down = loss();
  t.at(r, c) = orig;
  return (up - down) / (2 * eps);
}

void expect_grad_matches(Tensor& value, const Tensor& analytic,
                         const std::function<double()>& loss,
                         const std::string& label) {
  ASSERT_EQ(value.rows(), analytic.rows()) << label;
  ASSERT_EQ(value.cols(), analytic.cols()) << label;
  for (std::size_t r = 0; r < value.rows(); ++r) {
    for (std::size_t c = 0; c < value.cols(); ++c) {
      const double num = numeric_grad(value, r, c, loss);
      const double ana = analytic.at(r, c);
      const double tol =
          1e-6 + 1e-4 * std::max(std::abs(num), std::abs(ana));
      EXPECT_NEAR(ana, num, tol) << label << "[" << r << "," << c << "]";
    }
  }
}

TEST(Gru, ShapesAndStateEvolution) {
  Rng rng{1};
  Gru gru{3, 5, 2, rng};
  auto state = gru.initial_state(2);
  Tensor x{2, 3};
  x.fill_normal(rng, 1.0);
  const Tensor h1 = gru.step(x, state);
  EXPECT_EQ(h1.rows(), 2u);
  EXPECT_EQ(h1.cols(), 5u);
  const Tensor h2 = gru.step(x, state);
  double diff = 0;
  for (std::size_t j = 0; j < 5; ++j) {
    diff += std::abs(h1.at(0, j) - h2.at(0, j));
  }
  EXPECT_GT(diff, 1e-9);
  EXPECT_THROW((Gru{3, 5, 0, rng}), std::invalid_argument);
}

TEST(Gru, StreamingMatchesSequenceForward) {
  Rng rng{2};
  Gru gru{3, 4, 2, rng};
  std::vector<Tensor> xs;
  for (int t = 0; t < 6; ++t) {
    Tensor x{2, 3};
    x.fill_normal(rng, 1.0);
    xs.push_back(x);
  }
  auto s1 = gru.initial_state(2);
  Gru::SequenceCache cache;
  const auto hs = gru.forward(xs, s1, cache);
  auto s2 = gru.initial_state(2);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const Tensor h = gru.step(xs[t], s2);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(h.at(r, j), hs[t].at(r, j), 1e-12);
      }
    }
  }
}

TEST(Gru, GradientCheckThroughTime) {
  Rng rng{3};
  Gru gru{2, 3, 2, rng};
  const std::size_t B = 2, T = 4;
  std::vector<Tensor> xs, targets;
  for (std::size_t t = 0; t < T; ++t) {
    Tensor x{B, 2}, y{B, 3};
    x.fill_normal(rng, 1.0);
    y.fill_normal(rng, 1.0);
    xs.push_back(x);
    targets.push_back(y);
  }
  Tensor ones{B, 3};
  ones.map([](double) { return 1.0; });

  auto loss_fn = [&] {
    auto state = gru.initial_state(B);
    Gru::SequenceCache cache;
    const auto hs = gru.forward(xs, state, cache);
    double total = 0;
    for (std::size_t t = 0; t < T; ++t) {
      total += masked_mse(hs[t], targets[t], ones, nullptr);
    }
    return total;
  };

  gru.zero_grad();
  auto state = gru.initial_state(B);
  Gru::SequenceCache cache;
  const auto hs = gru.forward(xs, state, cache);
  std::vector<Tensor> dhs;
  for (std::size_t t = 0; t < T; ++t) {
    Tensor d;
    masked_mse(hs[t], targets[t], ones, &d);
    dhs.push_back(std::move(d));
  }
  gru.backward(cache, dhs);

  for (auto& p : gru.parameters()) {
    expect_grad_matches(*p.value, *p.grad, loss_fn, p.name);
  }
}

TEST(Gru, LearnsToEchoPreviousInput) {
  Rng rng{4};
  Gru gru{1, 8, 1, rng};
  Linear head{8, 1, rng};
  std::vector<Parameter> params = gru.parameters();
  for (auto& p : head.parameters()) params.push_back(p);
  SgdMomentum::Config ocfg;
  ocfg.learning_rate = 0.05;
  SgdMomentum opt{params, ocfg};

  const std::size_t B = 8, T = 6;
  Tensor ones{B, 1};
  ones.map([](double) { return 1.0; });
  double first_loss = 0, last_loss = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Tensor> xs;
    for (std::size_t t = 0; t < T; ++t) {
      Tensor x{B, 1};
      x.fill_normal(rng, 1.0);
      xs.push_back(x);
    }
    auto state = gru.initial_state(B);
    Gru::SequenceCache cache;
    const auto hs = gru.forward(xs, state, cache);
    double loss = 0;
    std::vector<Tensor> dhs(T);
    for (std::size_t t = 0; t < T; ++t) {
      const Tensor y = head.forward(hs[t]);
      if (t == 0) {
        dhs[t] = Tensor{B, 8};
        continue;
      }
      Tensor dy;
      loss += masked_mse(y, xs[t - 1], ones, &dy);
      dhs[t] = head.backward(hs[t], dy);
    }
    gru.backward(cache, dhs);
    opt.step();
    opt.zero_grad();
    if (iter == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
}

TEST(SequenceModelFactory, BuildsBothKinds) {
  Rng rng{5};
  for (const auto kind : {TrunkKind::Lstm, TrunkKind::Gru}) {
    auto model = make_sequence_model(kind, 4, 6, 2, rng);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->hidden_size(), 6u);
    auto state = model->make_state(3);
    Tensor x{3, 4};
    x.fill_normal(rng, 1.0);
    const Tensor h = model->step(x, *state);
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 6u);
    // Clone is independent: training the clone leaves the original
    // parameters untouched.
    auto copy = model->clone();
    auto p0 = model->parameters();
    auto p1 = copy->parameters();
    ASSERT_EQ(p0.size(), p1.size());
    p1[0].value->at(0, 0) += 1.0;
    EXPECT_NE(p0[0].value->at(0, 0), p1[0].value->at(0, 0));
  }
  EXPECT_STREQ(trunk_kind_name(TrunkKind::Lstm), "lstm");
  EXPECT_STREQ(trunk_kind_name(TrunkKind::Gru), "gru");
}

TEST(SequenceModelFactory, RejectsForeignState) {
  Rng rng{6};
  auto lstm = make_sequence_model(TrunkKind::Lstm, 2, 3, 1, rng);
  auto gru = make_sequence_model(TrunkKind::Gru, 2, 3, 1, rng);
  auto gru_state = gru->make_state(1);
  Tensor x{1, 2};
  EXPECT_THROW(lstm->step(x, *gru_state), std::invalid_argument);
}

TEST(MicroModelGru, TrainsOnSyntheticData) {
  // The GRU trunk plugs into the existing trainer unchanged.
  Rng rng{7};
  approx::Dataset ds;
  for (int i = 0; i < 2000; ++i) {
    approx::PacketFeatures f;
    f.v[0] = rng.uniform();
    const bool drop = f.v[0] > 0.75;
    ds.features.push_back(f);
    ds.drop_targets.push_back(drop ? 1.0 : 0.0);
    ds.latency_log_us.push_back(drop ? 0.0 : 2.0);
  }
  ds.mean_log_us = 2.0;
  ds.std_log_us = 1.0;

  approx::MicroModel::Config cfg;
  cfg.hidden = 10;
  cfg.layers = 1;
  cfg.trunk = TrunkKind::Gru;
  approx::MicroModel model{cfg};
  approx::TrainConfig tcfg;
  tcfg.batch_size = 32;
  tcfg.seq_len = 8;
  tcfg.batches = 400;
  tcfg.learning_rate = 3e-2;
  const auto report = approx::train_micro_model(model, ds, tcfg);
  EXPECT_LT(report.final_loss, report.initial_loss);
  EXPECT_GT(report.drop_accuracy, 0.9);
}

}  // namespace
}  // namespace esim::ml
