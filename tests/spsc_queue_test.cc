#include "sim/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace esim::sim {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueue, PushPopSingleThreaded) {
  SpscQueue<int> q{4};
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.empty_approx());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, FullRingRejectsWithoutConsuming) {
  SpscQueue<int> q{2};
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int v = 3;
  EXPECT_FALSE(q.try_push(std::move(v)));
  EXPECT_EQ(v, 3);  // rejected pushes leave the value intact
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.try_push(3));  // freed slot is reusable
}

TEST(SpscQueue, WraparoundPreservesFifoOrder) {
  // Push/pop far past capacity so the monotonic indices wrap the mask
  // many times; order must stay FIFO throughout.
  SpscQueue<std::uint64_t> q{8};
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (q.try_push(std::uint64_t{next_in})) ++next_in;
    std::uint64_t v = 0;
    while (q.try_pop(v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GT(next_out, 1000u);
}

TEST(SpscQueue, MoveOnlyPayloads) {
  SpscQueue<std::unique_ptr<int>> q{4};
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscQueue, DestructorReleasesUndrainedElements) {
  // Leaves live elements in the ring; ASAN/LSAN verifies they are freed.
  auto counter = std::make_shared<int>(0);
  {
    SpscQueue<std::shared_ptr<int>> q{8};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.try_push(std::shared_ptr<int>{counter}));
    }
    EXPECT_EQ(counter.use_count(), 6);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SpscQueue, ConcurrentStressTransfersEverythingInOrder) {
  // One producer, one consumer, ring much smaller than the message count
  // so both the full path (producer backpressure) and the empty path
  // (consumer spinning) are exercised constantly. TSAN validates the
  // release/acquire pairs; the assertions validate FIFO and no loss.
  constexpr std::uint64_t kMessages = 200'000;
  SpscQueue<std::uint64_t> q{16};
  std::atomic<std::uint64_t> rejected{0};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kMessages;) {
      if (q.try_push(std::uint64_t{i})) {
        ++i;
      } else {
        rejected.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t expected = 0;
  while (expected < kMessages) {
    std::uint64_t v = 0;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  std::uint64_t leftover = 0;
  EXPECT_FALSE(q.try_pop(leftover));
  // With a 16-slot ring and 200k messages the producer must have hit
  // backpressure at least once on any real scheduler; don't assert it
  // (a pathological interleaving could avoid it) but do exercise it.
  (void)rejected;
}

TEST(SpscQueue, ConcurrentMoveOnlyStress) {
  constexpr int kMessages = 50'000;
  SpscQueue<std::unique_ptr<int>> q{8};

  std::thread producer([&] {
    for (int i = 0; i < kMessages;) {
      auto p = std::make_unique<int>(i);
      if (q.try_push(std::move(p))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  int expected = 0;
  while (expected < kMessages) {
    std::unique_ptr<int> p;
    if (q.try_pop(p)) {
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(*p, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace esim::sim
