// Tests for the fidelity observatory (DESIGN.md §11): deterministic
// shadow admission, congestion classification, drift bands, the JSONL
// time-series export, the run-report section, and — the load-bearing
// contract — that enabling fidelity leaves a hybrid run's FULL digest
// bit-identical, sequentially and under PDES.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/hybrid_diff.h"
#include "core/experiment.h"
#include "core/run_report.h"
#include "telemetry/fidelity.h"
#include "telemetry/metrics.h"

namespace esim {
namespace {

using check::Digest;
using check::HybridScenario;
using telemetry::ClusterFidelityProbe;
using telemetry::CongestionState;
using telemetry::FidelityConfig;
using telemetry::FidelityRow;
using telemetry::FidelitySink;
using telemetry::Json;

FidelityConfig enabled_config() {
  FidelityConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = 16;
  return cfg;
}

// --- shadow admission ---

TEST(FidelityProbe, ShadowAdmissionIsDeterministicAndNearRate) {
  FidelityConfig cfg = enabled_config();
  cfg.sample_period = 64;
  FidelitySink sink{cfg};
  ClusterFidelityProbe probe{sink, 1, 10e9, nullptr};

  std::uint64_t admitted = 0;
  constexpr std::uint64_t kIds = 100'000;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    const bool a = probe.shadow_admit(id);
    // Pure function of (id, seed): identical on every call.
    EXPECT_EQ(a, probe.shadow_admit(id));
    if (a) ++admitted;
  }
  // Hash admission approximates 1/64; allow generous slack.
  const double rate = static_cast<double>(admitted) / kIds;
  EXPECT_GT(rate, 0.5 / 64.0);
  EXPECT_LT(rate, 2.0 / 64.0);

  // A different seed admits a (mostly) different subset.
  FidelityConfig other = cfg;
  other.seed ^= 0x1234'5678;
  FidelitySink sink2{other};
  ClusterFidelityProbe probe2{sink2, 1, 10e9, nullptr};
  std::uint64_t overlap = 0;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    if (probe.shadow_admit(id) && probe2.shadow_admit(id)) ++overlap;
  }
  EXPECT_LT(overlap, admitted / 4);
}

TEST(FidelityProbe, SamplePeriodZeroDisablesShadowingOnly) {
  FidelityConfig cfg = enabled_config();
  cfg.sample_period = 0;
  FidelitySink sink{cfg};
  ClusterFidelityProbe probe{sink, 0, 10e9, nullptr};
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_FALSE(probe.shadow_admit(id));
  }
  // Congestion tracking still works without shadowing.
  probe.observe_packet(1500, false);
  probe.on_macro_window(1'000'000, 1'000'000);
  EXPECT_EQ(sink.rows_appended(), 1u);
}

// --- congestion classification ---

TEST(FidelityProbe, ClassifiesQuiescentNominalCongested) {
  FidelityConfig cfg = enabled_config();
  cfg.ewma_alpha = 1.0;  // no smoothing: each window classifies alone
  FidelitySink sink{cfg};
  // Capacity 1 Gbps; a 1 ms window carries capacity*1ms = 125 KB.
  ClusterFidelityProbe probe{sink, 2, 1e9, nullptr};
  constexpr std::int64_t kWin = 1'000'000;
  std::int64_t now = 0;

  // ~80% utilization -> congested.
  for (int i = 0; i < 100; ++i) probe.observe_packet(1000, false);
  probe.on_macro_window(now += kWin, kWin);
  EXPECT_EQ(probe.state(), CongestionState::Congested);

  // ~8% utilization, no drops -> nominal.
  for (int i = 0; i < 10; ++i) probe.observe_packet(1000, false);
  probe.on_macro_window(now += kWin, kWin);
  EXPECT_EQ(probe.state(), CongestionState::Nominal);

  // ~0.08% utilization -> quiescent.
  probe.observe_packet(100, false);
  probe.on_macro_window(now += kWin, kWin);
  EXPECT_EQ(probe.state(), CongestionState::Quiescent);

  // Low utilization but heavy drops -> congested (drop-rate trigger).
  for (int i = 0; i < 10; ++i) probe.observe_packet(100, i < 5);
  probe.on_macro_window(now += kWin, kWin);
  EXPECT_EQ(probe.state(), CongestionState::Congested);

  const auto rows = sink.rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].state, CongestionState::Congested);
  EXPECT_EQ(rows[1].state, CongestionState::Nominal);
  EXPECT_EQ(rows[2].state, CongestionState::Quiescent);
  EXPECT_EQ(rows[3].state, CongestionState::Congested);
  EXPECT_NEAR(rows[0].utilization, 0.8, 0.01);
  EXPECT_EQ(rows[3].predicted_drops, 5u);
}

TEST(FidelityProbe, EwmaSmoothsAcrossWindows) {
  FidelityConfig cfg = enabled_config();
  cfg.ewma_alpha = 0.3;
  FidelitySink sink{cfg};
  ClusterFidelityProbe probe{sink, 0, 1e9, nullptr};
  constexpr std::int64_t kWin = 1'000'000;

  // First window seeds the EWMA directly (no decay from zero).
  for (int i = 0; i < 100; ++i) probe.observe_packet(1000, false);
  probe.on_macro_window(kWin, kWin);
  EXPECT_NEAR(probe.utilization_ewma(), 0.8, 0.01);

  // An idle window decays by alpha, not to zero.
  probe.on_macro_window(2 * kWin, kWin);
  EXPECT_NEAR(probe.utilization_ewma(), 0.8 * 0.7, 0.01);
  // Still classified congested: the EWMA remembers the burst.
  EXPECT_EQ(probe.state(), CongestionState::Congested);
}

TEST(FidelityProbe, WindowMultiplierCoalescesMacroTicks) {
  FidelityConfig cfg = enabled_config();
  cfg.window_multiplier = 3;
  FidelitySink sink{cfg};
  ClusterFidelityProbe probe{sink, 0, 1e9, nullptr};
  constexpr std::int64_t kWin = 500'000;
  std::int64_t now = 0;
  for (int tick = 1; tick <= 6; ++tick) {
    probe.observe_packet(1000, false);
    probe.on_macro_window(now += kWin, kWin);
  }
  const auto rows = sink.rows();
  ASSERT_EQ(rows.size(), 2u);  // one row per 3 macro ticks
  EXPECT_EQ(rows[0].window_ns, 3 * kWin);
  EXPECT_EQ(rows[0].packets, 3u);
  EXPECT_EQ(rows[1].t_ns, 6 * kWin);
}

// --- drift bands ---

TEST(FidelityProbe, BandViolationOnLatencyDriftAndDropMismatch) {
  FidelityConfig cfg = enabled_config();
  cfg.latency_band_log = 0.5;
  cfg.drop_band = 0.25;
  FidelitySink sink{cfg};
  ClusterFidelityProbe probe{sink, 0, 1e9, nullptr};
  constexpr std::int64_t kWin = 1'000'000;

  // In band: model within exp(0.5)x of reference, decisions agree.
  probe.record_shadow(false, 10e-6, false, true, 11e-6, false, 10e-6);
  probe.on_macro_window(kWin, kWin);
  // Latency drift: model 3x the reference (ln 3 ~ 1.1 > 0.5).
  probe.record_shadow(false, 30e-6, false, true, 10e-6, false, 10e-6);
  probe.on_macro_window(2 * kWin, kWin);
  // Drop disagreement on half the samples (0.5 > 0.25).
  probe.record_shadow(true, 10e-6, false, true, 10e-6, false, 10e-6);
  probe.record_shadow(false, 10e-6, false, true, 10e-6, false, 10e-6);
  probe.on_macro_window(3 * kWin, kWin);

  const auto rows = sink.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_FALSE(rows[0].band_violation);
  EXPECT_TRUE(rows[1].band_violation);
  EXPECT_NEAR(rows[1].latency_err_mean_log, std::log(3.0), 1e-9);
  EXPECT_TRUE(rows[2].band_violation);
  EXPECT_EQ(rows[2].drop_mismatches, 1u);
  EXPECT_EQ(probe.band_violations_total(), 2u);
  EXPECT_EQ(probe.shadow_samples_total(), 4u);

  // The report section flags the violating cluster.
  const Json section = sink.report_section();
  ASSERT_EQ(section.find("violating_clusters")->size(), 1u);
  EXPECT_EQ(section.find("violating_clusters")->at(0).as_uint(), 0u);
}

TEST(FidelityProbe, PublishesRegistryInstruments) {
  FidelityConfig cfg = enabled_config();
  FidelitySink sink{cfg};
  telemetry::Registry registry;
  ClusterFidelityProbe probe{sink, 3, 1e9, &registry};
  probe.observe_packet(1000, false);
  probe.record_shadow(false, 10e-6, true, true, 10e-6, false, 10e-6);
  probe.on_macro_window(1'000'000, 1'000'000);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.find("fidelity.c3.shadow_samples")->counter, 1u);
  EXPECT_EQ(snap.find("fidelity.c3.drop_mismatches")->counter, 1u);
  ASSERT_NE(snap.find("fidelity.c3.state"), nullptr);
  ASSERT_NE(snap.find("fidelity.c3.util_ppm"), nullptr);
  EXPECT_EQ(snap.find("fidelity.shadow.latency_err_mnats")->count, 1u);
}

// --- time-series export ---

TEST(FidelitySink, JsonlRowsRoundTrip) {
  const std::string path = ::testing::TempDir() + "fidelity_rows.jsonl";
  FidelityConfig cfg = enabled_config();
  cfg.jsonl_path = path;
  std::vector<FidelityRow> written;
  {
    FidelitySink sink{cfg};
    ClusterFidelityProbe probe{sink, 1, 1e9, nullptr};
    std::int64_t now = 0;
    for (int w = 0; w < 3; ++w) {
      for (int i = 0; i <= w; ++i) probe.observe_packet(1200, i == 0 && w == 2);
      probe.record_shadow(false, 12e-6, false, true, 10e-6, false, 11e-6);
      probe.observe_backlog(500 * w, false);
      probe.on_macro_window(now += 1'000'000, 1'000'000);
    }
    written = sink.rows();
  }
  ASSERT_EQ(written.size(), 3u);

  std::ifstream in{path};
  ASSERT_TRUE(in.is_open());
  std::vector<FidelityRow> read;
  std::string line;
  while (std::getline(in, line)) {
    const auto doc = Json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    read.push_back(FidelityRow::from_json(*doc));
  }
  ASSERT_EQ(read.size(), written.size());
  for (std::size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(read[i].t_ns, written[i].t_ns);
    EXPECT_EQ(read[i].cluster, written[i].cluster);
    EXPECT_EQ(read[i].state, written[i].state);
    EXPECT_EQ(read[i].packets, written[i].packets);
    EXPECT_EQ(read[i].shadow_samples, written[i].shadow_samples);
    EXPECT_EQ(read[i].backlog_max_ns, written[i].backlog_max_ns);
    EXPECT_NEAR(read[i].utilization, written[i].utilization, 1e-12);
    EXPECT_NEAR(read[i].latency_err_mae_log, written[i].latency_err_mae_log,
                1e-12);
    EXPECT_EQ(read[i].band_violation, written[i].band_violation);
  }
  std::remove(path.c_str());
}

TEST(FidelitySink, RowsAreSortedAndSummariesAggregate) {
  FidelitySink sink{enabled_config()};
  // Out-of-order appends across two clusters (as PDES partitions do).
  FidelityRow r;
  r.cluster = 2;
  r.t_ns = 2'000'000;
  r.packets = 5;
  r.state = CongestionState::Nominal;
  sink.append(r);
  r.cluster = 1;
  r.t_ns = 1'000'000;
  r.packets = 3;
  r.state = CongestionState::Quiescent;
  sink.append(r);
  r.cluster = 1;
  r.t_ns = 2'000'000;
  r.packets = 4;
  r.state = CongestionState::Congested;
  sink.append(r);

  const auto rows = sink.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].cluster, 1u);
  EXPECT_EQ(rows[0].t_ns, 1'000'000);
  EXPECT_EQ(rows[2].cluster, 2u);

  const auto sums = sink.summaries();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0].cluster, 1u);
  EXPECT_EQ(sums[0].windows, 2u);
  EXPECT_EQ(sums[0].packets, 7u);
  EXPECT_EQ(sums[0].quiescent_windows, 1u);
  EXPECT_EQ(sums[0].congested_windows, 1u);
  EXPECT_EQ(sums[1].cluster, 2u);
  EXPECT_EQ(sums[1].nominal_windows, 1u);
}

// --- digest invariance (the tentpole contract) ---

TEST(FidelityDigest, HybridRunIsBitIdenticalWithFidelityOnSequential) {
  const HybridScenario sc = check::random_hybrid_scenario(3);
  std::uint64_t rows = 0, shadow = 0;
  const std::string diag = check::check_fidelity(sc, {}, &rows, &shadow);
  EXPECT_TRUE(diag.empty()) << diag;
  EXPECT_GT(rows, 0u);
  EXPECT_GT(shadow, 0u);
}

TEST(FidelityDigest, HybridRunIsBitIdenticalWithFidelityOnPdes) {
  const HybridScenario sc = check::random_hybrid_scenario(11);
  std::uint64_t rows = 0, shadow = 0;
  const std::string diag = check::check_fidelity(sc, {2, 4}, &rows, &shadow);
  EXPECT_TRUE(diag.empty()) << diag;
  EXPECT_GT(shadow, 0u);
}

TEST(FidelityDigest, InstrumentedRunsAgreeAcrossEngines) {
  // The observatory itself must be deterministic: the same scenario
  // instrumented twice produces identical digests AND identical shadow
  // totals; rows from sequential and PDES runs describe the same run.
  HybridScenario sc = check::random_hybrid_scenario(5);
  sc.sample_drops = true;
  FidelityConfig cfg = enabled_config();

  FidelitySink a{cfg};
  const Digest da = check::run_hybrid(sc, 0, true, &a);
  FidelitySink b{cfg};
  const Digest db = check::run_hybrid(sc, 0, true, &b);
  EXPECT_TRUE(da == db);
  ASSERT_EQ(a.rows_appended(), b.rows_appended());
  const auto ra = a.rows();
  const auto rb = b.rows();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].cluster, rb[i].cluster);
    EXPECT_EQ(ra[i].t_ns, rb[i].t_ns);
    EXPECT_EQ(ra[i].packets, rb[i].packets);
    EXPECT_EQ(ra[i].shadow_samples, rb[i].shadow_samples);
  }
}

// --- report plumbing ---

TEST(FidelityReport, RunReportCarriesFidelitySection) {
  HybridScenario sc = check::random_hybrid_scenario(2);
  sc.sample_drops = true;
  FidelitySink sink{enabled_config()};
  (void)check::run_hybrid(sc, 0, true, &sink);
  ASSERT_GT(sink.rows_appended(), 0u);

  core::RunResult result;
  result.fidelity = sink.report_section();
  telemetry::RunReport report{"fidelity_test"};
  core::add_run_result(report, "hybrid", result);
  const Json* section = report.root().find("hybrid");
  ASSERT_NE(section, nullptr);
  const Json* fid = section->find("fidelity");
  ASSERT_NE(fid, nullptr);
  EXPECT_TRUE(fid->find("enabled")->as_bool());
  EXPECT_EQ(fid->find("sample_period")->as_uint(), 16u);
  EXPECT_GT(fid->find("clusters")->size(), 0u);
  // Every approximated cluster reported at least one window.
  for (std::size_t i = 0; i < fid->find("clusters")->size(); ++i) {
    EXPECT_GT(fid->find("clusters")->at(i).find("windows")->as_uint(), 0u);
  }
}

TEST(FidelityReport, TrainingEvalSectionShape) {
  core::TrainedModels models;
  models.boundary_records = 1234;
  models.has_eval = true;
  models.ingress_eval.rows = 100;
  models.ingress_eval.drop_auc = 0.91;
  models.ingress_eval.latency_mae = 0.25;
  models.egress_eval.rows = 90;
  models.egress_eval.drop_auc = 0.88;

  telemetry::RunReport report{"fidelity_test"};
  core::add_training_eval(report, models);
  const Json* training = report.root().find("training");
  ASSERT_NE(training, nullptr);
  EXPECT_EQ(training->find("boundary_records")->as_uint(), 1234u);
  const Json* eval = training->find("eval");
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(eval->find("ingress")->find("rows")->as_uint(), 100u);
  EXPECT_NEAR(eval->find("ingress")->find("drop_auc")->as_double(), 0.91,
              1e-12);
  EXPECT_NEAR(eval->find("egress")->find("drop_auc")->as_double(), 0.88,
              1e-12);

  // Without held-out eval only the record count is written.
  core::TrainedModels no_eval;
  no_eval.boundary_records = 7;
  telemetry::RunReport r2{"fidelity_test"};
  core::add_training_eval(r2, no_eval);
  EXPECT_EQ(r2.root().find("training")->find("boundary_records")->as_uint(),
            7u);
  EXPECT_EQ(r2.root().find("training")->find("eval"), nullptr);
}

}  // namespace
}  // namespace esim
