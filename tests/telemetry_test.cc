// Tests for the telemetry stack: registry/instrument semantics, Chrome
// trace emission, run reports, and the contract that enabling telemetry
// never changes simulation outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/pdes_builder.h"
#include "sim/parallel.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"
#include "workload/generator.h"

namespace esim {
namespace {

using telemetry::Histogram;
using telemetry::InstrumentSnapshot;
using telemetry::Json;

// --- instruments ---

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  for (std::size_t i = 1; i < 64; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    EXPECT_EQ(Histogram::bucket_of(lo), i);
    EXPECT_EQ(Histogram::bucket_of(2 * lo - 1), i);
    EXPECT_EQ(Histogram::bucket_lower_bound(i), lo);
  }
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
  static_assert(Histogram::kBuckets == 65);
}

TEST(Histogram, RecordAccumulatesCountSumAndBuckets) {
  Histogram h;
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(1000)), 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  telemetry::Registry r;
  Histogram* h = r.histogram("h");
  // Empty histogram: every quantile is 0.
  EXPECT_EQ(r.snapshot().find("h")->quantile(0.5), 0.0);

  // All samples in bucket 0 (the exact value 0).
  for (int i = 0; i < 10; ++i) h->record(0);
  EXPECT_EQ(r.snapshot().find("h")->quantile(0.99), 0.0);

  // Two equally sized buckets: [4,8) then [64,128). The median falls on
  // the boundary between them, p25 inside the first, p75 inside the
  // second — log-linear interpolation keeps each inside its bucket span.
  telemetry::Registry r2;
  Histogram* h2 = r2.histogram("h2");
  for (int i = 0; i < 100; ++i) h2->record(5);
  for (int i = 0; i < 100; ++i) h2->record(100);
  const telemetry::Snapshot snap2 = r2.snapshot();
  const InstrumentSnapshot* s = snap2.find("h2");
  const double p25 = s->quantile(0.25);
  EXPECT_GE(p25, 4.0);
  EXPECT_LT(p25, 8.0);
  const double p75 = s->quantile(0.75);
  EXPECT_GE(p75, 64.0);
  EXPECT_LT(p75, 128.0);
  // q=1 lands on the last bucket's exclusive upper bound.
  EXPECT_EQ(s->quantile(1.0), 128.0);
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_EQ(s->quantile(1.5), 128.0);
  EXPECT_GE(s->quantile(-0.5), 0.0);

  // A single-bucket histogram interpolates monotonically across it.
  telemetry::Registry r3;
  Histogram* h3 = r3.histogram("h3");
  for (int i = 0; i < 1000; ++i) h3->record(16);
  const telemetry::Snapshot snap3 = r3.snapshot();
  const InstrumentSnapshot* s3 = snap3.find("h3");
  EXPECT_LE(s3->quantile(0.1), s3->quantile(0.5));
  EXPECT_LE(s3->quantile(0.5), s3->quantile(0.9));
  EXPECT_GE(s3->quantile(0.1), 16.0);
  EXPECT_LT(s3->quantile(0.9), 32.0);
}

TEST(Histogram, SnapshotJsonCarriesQuantiles) {
  telemetry::Registry r;
  Histogram* h = r.histogram("lat");
  for (int i = 0; i < 90; ++i) h->record(10);
  for (int i = 0; i < 10; ++i) h->record(1000);
  const Json doc = r.snapshot().to_json();
  const Json* j = doc.find("lat");
  ASSERT_NE(j, nullptr);
  const double p50 = j->find("p50")->as_double();
  const double p90 = j->find("p90")->as_double();
  const double p99 = j->find("p99")->as_double();
  EXPECT_GE(p50, 8.0);
  EXPECT_LT(p50, 16.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LT(p99, 2048.0);
}

TEST(Counter, WrapsModulo64Bits) {
  telemetry::Counter c;
  c.set(std::numeric_limits<std::uint64_t>::max());
  c.inc();
  EXPECT_EQ(c.value(), 0u);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(Gauge, SetAndAddAreSigned) {
  telemetry::Gauge g;
  g.set(-3);
  g.add(10);
  EXPECT_EQ(g.value(), 7);
}

// --- registry ---

TEST(Registry, InterningReturnsStablePointers) {
  telemetry::Registry r;
  auto* a = r.counter("net.link.sent");
  auto* b = r.counter("net.link.sent");
  EXPECT_EQ(a, b);
  // Registering more instruments must not move earlier ones.
  for (int i = 0; i < 100; ++i) r.counter("c" + std::to_string(i));
  EXPECT_EQ(r.counter("net.link.sent"), a);
  EXPECT_EQ(r.instrument_count(), 101u);
}

TEST(Registry, KindMismatchThrows) {
  telemetry::Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);
  EXPECT_THROW(r.histogram("x"), std::logic_error);
  r.histogram("h");
  EXPECT_THROW(r.counter("h"), std::logic_error);
}

TEST(Registry, SnapshotRunsFlushersAndDetaches) {
  telemetry::Registry r;
  auto* c = r.counter("pulled");
  std::uint64_t external_total = 41;
  r.add_flusher([&] { c->set(external_total); });
  auto snap = r.snapshot();
  const auto* inst = snap.find("pulled");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->counter, 41u);
  // The snapshot is a copy: later updates don't retroactively change it.
  external_total = 99;
  EXPECT_EQ(snap.find("pulled")->counter, 41u);
  EXPECT_EQ(r.snapshot().find("pulled")->counter, 99u);
}

TEST(Registry, SnapshotToJsonShapes) {
  telemetry::Registry r;
  r.counter("c")->inc(3);
  r.gauge("g")->set(-2);
  r.histogram("h")->record(5);
  const Json doc = r.snapshot().to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("c")->as_uint(), 3u);
  EXPECT_EQ(doc.find("g")->as_int(), -2);
  const Json* h = doc.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_uint(), 1u);
  EXPECT_EQ(h->find("sum")->as_uint(), 5u);
  ASSERT_EQ(h->find("buckets")->size(), 1u);
  EXPECT_EQ(h->find("buckets")->at(0).at(0).as_uint(), 4u);  // lower bound
  EXPECT_EQ(h->find("buckets")->at(0).at(1).as_uint(), 1u);  // count
}

// --- json ---

TEST(Json, DumpParseRoundTrip) {
  Json doc = Json::object();
  doc["s"] = "he said \"hi\"\n";
  doc["i"] = std::int64_t{-7};
  doc["u"] = std::uint64_t{18446744073709551615ull};
  doc["d"] = 0.25;
  doc["b"] = true;
  doc["n"] = nullptr;
  doc["arr"].push_back(1);
  doc["arr"].push_back(Json::object());
  const auto parsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("s")->as_string(), "he said \"hi\"\n");
  EXPECT_EQ(parsed->find("i")->as_int(), -7);
  EXPECT_EQ(parsed->find("u")->as_uint(), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(parsed->find("d")->as_double(), 0.25);
  EXPECT_TRUE(parsed->find("b")->as_bool());
  EXPECT_TRUE(parsed->find("n")->is_null());
  EXPECT_EQ(parsed->find("arr")->size(), 2u);
  // Compact form parses too.
  EXPECT_TRUE(Json::parse(doc.dump(0)).has_value());
  EXPECT_FALSE(Json::parse("{\"unterminated\": ").has_value());
}

// --- trace ---

TEST(Trace, ChromeJsonIsValidOrderedAndLabelled) {
  telemetry::TraceSession session;
  session.start();
  session.set_thread_name("main");
  {
    telemetry::Span outer{"outer"};
    telemetry::trace_instant("tick", 42);
    telemetry::Span inner{"inner"};
  }
  std::thread worker([&] {
    if (auto* s = telemetry::TraceSession::active()) {
      s->set_thread_name("worker");
    }
    telemetry::Span span{"worker_span"};
  });
  worker.join();
  session.stop();
  EXPECT_EQ(telemetry::TraceSession::active(), nullptr);

  const Json doc = session.chrome_trace();
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::vector<std::string> names;
  double last_ts = -1.0;
  std::uint64_t tids_seen = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    EXPECT_EQ(e.find("pid")->as_int(), 0);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      EXPECT_EQ(e.find("name")->as_string(), "thread_name");
      continue;
    }
    ASSERT_TRUE(ph == "X" || ph == "i") << ph;
    names.push_back(e.find("name")->as_string());
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);  // sorted by timestamp
    last_ts = ts;
    if (ph == "X") EXPECT_GE(e.find("dur")->as_double(), 0.0);
    tids_seen |= std::uint64_t{1} << e.find("tid")->as_uint();
  }
  // Both threads recorded; span nesting puts outer first at equal names.
  EXPECT_NE(tids_seen & 1, 0u);
  EXPECT_NE(tids_seen & 2, 0u);
  for (const char* expect : {"outer", "inner", "tick", "worker_span"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end())
        << expect;
  }

  const std::string path = ::testing::TempDir() + "esim_trace_test.json";
  ASSERT_TRUE(session.write_chrome_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  const auto reparsed = Json::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->find("traceEvents")->size(), events->size());
}

TEST(Trace, RingOverflowAtSixteenPartitionsKeepsNewestAndCounts) {
  // 16 emitter threads (the partition count the scaling bench targets),
  // each pushing far more events than its ring holds. Overflow must (a)
  // be counted exactly, (b) retain only the newest `events_per_thread`
  // per thread, and (c) still serialize to a well-formed ordered trace.
  constexpr std::size_t kRing = 64;
  constexpr std::size_t kThreads = 16;
  constexpr std::size_t kPerThread = 1000;
  telemetry::TraceSession::Config cfg;
  cfg.events_per_thread = kRing;
  telemetry::TraceSession session{cfg};
  session.start();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&session, t] {
      session.set_thread_name("partition " + std::to_string(t));
      for (std::size_t k = 0; k < kPerThread; ++k) {
        session.instant("evt", static_cast<std::int64_t>(k));
      }
    });
  }
  for (auto& w : workers) w.join();
  session.stop();

  EXPECT_EQ(session.overwritten(), kThreads * (kPerThread - kRing));

  const Json doc = session.chrome_trace();
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // kRing retained events per thread plus one thread_name metadata
  // record per named thread.
  EXPECT_EQ(events->size(), kThreads * kRing + kThreads);
  std::size_t instants = 0;
  double last_ts = std::numeric_limits<double>::lowest();
  std::vector<std::int64_t> min_arg(kThreads + 1,
                                    std::numeric_limits<std::int64_t>::max());
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    if (e.find("ph")->as_string() == "M") continue;
    ++instants;
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, last_ts);  // sorted by timestamp
    last_ts = ts;
    const auto tid = static_cast<std::size_t>(e.find("tid")->as_int());
    ASSERT_LT(tid, min_arg.size());
    const Json* args = e.find("args");
    ASSERT_NE(args, nullptr);
    min_arg[tid] = std::min(min_arg[tid], args->find("v")->as_int());
  }
  EXPECT_EQ(instants, kThreads * kRing);
  // Oldest events were overwritten: every retained arg is from the tail
  // of its thread's sequence.
  for (std::size_t t = 0; t < min_arg.size(); ++t) {
    if (min_arg[t] == std::numeric_limits<std::int64_t>::max()) continue;
    EXPECT_EQ(min_arg[t], static_cast<std::int64_t>(kPerThread - kRing));
  }
}

TEST(Trace, InactiveSessionCostsNothingAndRecordsNothing) {
  ASSERT_EQ(telemetry::TraceSession::active(), nullptr);
  { telemetry::Span span{"ignored"}; }
  telemetry::trace_instant("ignored");
  telemetry::TraceSession session;
  const Json doc = session.chrome_trace();
  EXPECT_EQ(doc.find("traceEvents")->size(), 0u);
}

TEST(Trace, SecondConcurrentSessionThrows) {
  telemetry::TraceSession a;
  a.start();
  telemetry::TraceSession b;
  EXPECT_THROW(b.start(), std::logic_error);
  a.stop();
}

// --- run report ---

TEST(RunReport, DottedPathsAndVersionHeader) {
  telemetry::RunReport report{"unit"};
  report.set("a.b.c", std::uint64_t{7});
  report.set("a.b.d", "x");
  telemetry::Registry r;
  r.counter("m")->inc();
  report.add_metrics(r.snapshot(), "a.metrics");
  const auto parsed = Json::parse(report.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("esim_report")->find("version")->as_int(),
            telemetry::RunReport::kVersion);
  EXPECT_EQ(parsed->find("esim_report")->find("name")->as_string(), "unit");
  const Json* a = parsed->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->find("b")->find("c")->as_uint(), 7u);
  EXPECT_EQ(a->find("b")->find("d")->as_string(), "x");
  EXPECT_EQ(a->find("metrics")->find("m")->as_uint(), 1u);
}

// --- end-to-end: metrics from a real run, and the determinism contract ---

core::ExperimentConfig tiny_experiment() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.3;
  cfg.duration = sim::SimTime::from_ms(2);
  cfg.seed = 321;
  return cfg;
}

TEST(TelemetryIntegration, FullRunPublishesSimNetAndTcpMetrics) {
  auto cfg = tiny_experiment();
  cfg.telemetry = true;
  const auto result = core::run_full_simulation(cfg, cfg.net.spec);
  const auto& m = result.metrics;
  ASSERT_FALSE(m.instruments.empty());
  ASSERT_NE(m.find("sim.events_executed"), nullptr);
  EXPECT_EQ(m.find("sim.events_executed")->counter, result.events_executed);
  ASSERT_NE(m.find("net.link.sent"), nullptr);
  EXPECT_GT(m.find("net.link.sent")->counter, 0u);
  ASSERT_NE(m.find("net.switch.forwarded"), nullptr);
  EXPECT_GT(m.find("net.switch.forwarded")->counter, 0u);
  ASSERT_NE(m.find("tcp.segments_sent"), nullptr);
  EXPECT_GT(m.find("tcp.segments_sent")->counter, 0u);
  ASSERT_NE(m.find("net.link.queue_depth_bytes"), nullptr);
  EXPECT_EQ(m.find("net.link.queue_depth_bytes")->count,
            m.find("net.link.sent")->counter);
  // Region totals come straight off the links, telemetry or not.
  EXPECT_GT(result.regions.host_uplinks.sent, 0u);
}

TEST(TelemetryIntegration, EnablingTelemetryDoesNotChangeOutputs) {
  auto off = tiny_experiment();
  auto on = tiny_experiment();
  on.telemetry = true;
  // Tracing is ambient: exercise it too, to prove spans don't perturb.
  telemetry::TraceSession trace;
  trace.start();
  const auto a = core::run_full_simulation(on, on.net.spec);
  trace.stop();
  const auto b = core::run_full_simulation(off, off.net.spec);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.events_scheduled, b.events_scheduled);
  EXPECT_EQ(a.flows_launched, b.flows_launched);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.rtt_cdf.size(), b.rtt_cdf.size());
  if (!a.rtt_cdf.empty()) {
    EXPECT_EQ(a.rtt_cdf.quantile(0.5), b.rtt_cdf.quantile(0.5));
    EXPECT_EQ(a.rtt_cdf.quantile(0.99), b.rtt_cdf.quantile(0.99));
  }
  EXPECT_EQ(a.regions.host_uplinks.sent, b.regions.host_uplinks.sent);
  EXPECT_EQ(a.regions.core.dropped, b.regions.core.dropped);
  EXPECT_TRUE(b.metrics.instruments.empty());
}

TEST(TelemetryIntegration, PdesRunPublishesPartitionMetricsAndTrace) {
  auto run = [](bool telemetry, telemetry::Snapshot* snap_out,
                Json* trace_out) {
    sim::ParallelEngine::Config ecfg;
    ecfg.num_partitions = 2;
    ecfg.lookahead = sim::SimTime::from_us(1);
    ecfg.seed = 5;
    telemetry::Registry registry;
    telemetry::TraceSession trace;
    sim::ParallelEngine engine{ecfg};
    if (telemetry) {
      engine.set_telemetry(&registry);
      trace.start();
    }
    core::NetworkConfig net_cfg;
    net_cfg.spec.clusters = 1;
    net_cfg.spec.tors_per_cluster = 2;
    net_cfg.spec.aggs_per_cluster = 2;
    net_cfg.spec.hosts_per_tor = 2;
    net_cfg.spec.cores = 0;
    auto net = core::build_leaf_spine_partitioned(engine, net_cfg);
    auto sizes = workload::mini_web_distribution();
    workload::UniformTraffic matrix{net.spec.total_hosts()};
    const auto duration = sim::SimTime::from_us(500);
    for (std::uint32_t p = 0; p < engine.num_partitions(); ++p) {
      workload::TrafficGenerator::Config gcfg;
      gcfg.load = 0.3;
      gcfg.stop_at = duration;
      auto* gen =
          engine.partition(p).sim().add_component<workload::TrafficGenerator>(
              "gen" + std::to_string(p), net.hosts, sizes.get(), &matrix,
              gcfg);
      gen->admission_filter = [&net, p](net::HostId src, net::HostId) {
        return net.partition_of_host[src] == p;
      };
      gen->start();
    }
    engine.run_until(duration);
    if (telemetry) {
      trace.stop();
      *snap_out = registry.snapshot();
      *trace_out = trace.chrome_trace();
    }
    return engine.stats();
  };

  telemetry::Snapshot snap;
  Json trace_doc;
  const auto with = run(true, &snap, &trace_doc);
  const auto without = run(false, nullptr, nullptr);

  // Determinism: identical virtual execution either way.
  EXPECT_EQ(with.events_executed, without.events_executed);
  EXPECT_EQ(with.sync_rounds, without.sync_rounds);
  EXPECT_EQ(with.cross_messages, without.cross_messages);

  ASSERT_NE(snap.find("pdes.sync_rounds"), nullptr);
  EXPECT_EQ(snap.find("pdes.sync_rounds")->counter, with.sync_rounds);
  ASSERT_NE(snap.find("pdes.events_executed"), nullptr);
  EXPECT_EQ(snap.find("pdes.events_executed")->counter, with.events_executed);
  for (const char* name :
       {"pdes.p0.events_executed", "pdes.p1.events_executed",
        "pdes.p0.inbox_drained", "pdes.p0.sync_wait_ns"}) {
    ASSERT_NE(snap.find(name), nullptr) << name;
  }
  EXPECT_GT(snap.find("pdes.p0.events_executed")->counter, 0u);

  // The trace contains per-partition window spans and sync-round instants.
  const Json* events = trace_doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_window = false;
  bool saw_sync_round = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const std::string name = events->at(i).find("name")->as_string();
    if (name == "pdes.window") saw_window = true;
    if (name == "pdes.sync_round") saw_sync_round = true;
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_sync_round);
}

}  // namespace
}  // namespace esim
