#include <gtest/gtest.h>

#include <vector>

#include "net/ecmp.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace esim::net {
namespace {

using sim::SimTime;
using sim::Simulator;

/// Test sink that records arrivals with timestamps.
class Sink : public PacketHandler {
 public:
  explicit Sink(Simulator& sim) : sim_{sim} {}
  void handle_packet(Packet pkt) override {
    arrivals.emplace_back(sim_.now(), std::move(pkt));
  }
  std::vector<std::pair<SimTime, Packet>> arrivals;

 private:
  Simulator& sim_;
};

Packet make_packet(std::uint64_t id, std::uint32_t payload, HostId src = 0,
                   HostId dst = 1) {
  Packet p;
  p.id = id;
  p.payload = payload;
  p.flow.src_host = src;
  p.flow.dst_host = dst;
  p.flow.src_port = 1000;
  p.flow.dst_port = 80;
  return p;
}

TEST(PacketTest, SizeIncludesHeader) {
  EXPECT_EQ(make_packet(1, 0).size_bytes(), kHeaderBytes);
  EXPECT_EQ(make_packet(1, 1460).size_bytes(), kHeaderBytes + 1460u);
}

TEST(PacketTest, FlagsCompose) {
  Packet p = make_packet(1, 0);
  p.flags = TcpFlag::Syn | TcpFlag::Ack;
  EXPECT_TRUE(p.has(TcpFlag::Syn));
  EXPECT_TRUE(p.has(TcpFlag::Ack));
  EXPECT_FALSE(p.has(TcpFlag::Fin));
}

TEST(PacketTest, FlowKeyReverse) {
  FlowKey k{1, 2, 10, 80};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src_host, 2u);
  EXPECT_EQ(r.dst_host, 1u);
  EXPECT_EQ(r.src_port, 80);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), k);
}

TEST(PacketTest, ToStringMentionsFlags) {
  Packet p = make_packet(7, 100);
  p.flags = TcpFlag::Syn;
  const auto s = p.to_string();
  EXPECT_NE(s.find("S"), std::string::npos);
  EXPECT_NE(s.find("len=100"), std::string::npos);
}

TEST(LinkTest, DeliversWithSerializationAndPropagation) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 1e9;  // 1 Gbps: 1500B = 12us
  cfg.propagation = SimTime::from_us(5);
  auto* link = sim.add_component<Link>("l", cfg, &sink);

  sim.schedule_at(SimTime::from_us(1), [&] { link->send(make_packet(1, 1442)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // 1500 bytes at 1 Gbps = 12 us tx + 5 us prop, sent at 1 us.
  EXPECT_EQ(sink.arrivals[0].first, SimTime::from_us(18));
  EXPECT_EQ(link->counter().delivered, 1u);
}

TEST(LinkTest, SerializesBackToBack) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.propagation = SimTime::from_us(1);
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  sim.schedule_at(SimTime::from_us(0), [&] {
    link->send(make_packet(1, 1442));  // 1500B -> 12us
    link->send(make_packet(2, 1442));
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, SimTime::from_us(13));
  EXPECT_EQ(sink.arrivals[1].first, SimTime::from_us(25));  // queued behind
}

TEST(LinkTest, DropsWhenQueueFull) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 1e6;               // slow, so queue builds
  cfg.queue_capacity_bytes = 3000;       // fits 2 full packets
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  int drops = 0;
  link->on_drop = [&](const Packet&) { ++drops; };
  sim.schedule_at(SimTime::from_us(1), [&] {
    for (int i = 0; i < 5; ++i) link->send(make_packet(i, 1442));
  });
  sim.run();
  // First packet starts serializing immediately (leaves the queue); two
  // more fit in 3000 bytes; the rest drop.
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(link->counter().dropped, 2u);
  EXPECT_EQ(link->counter().sent, 5u);
}

TEST(LinkTest, OnTransmitObserverSeesDepartures) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.propagation = SimTime::from_us(3);
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  std::vector<std::pair<std::uint64_t, SimTime>> seen;
  link->on_transmit = [&](const Packet& p, SimTime arrive_at) {
    seen.emplace_back(p.id, arrive_at);
  };
  sim.schedule_at(SimTime{}, [&] { link->send(make_packet(9, 1442)); });
  sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 9u);
  EXPECT_EQ(seen[0].second, SimTime::from_us(15));
}

TEST(LinkTest, TxTimeScalesWithBytes) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 10e9;
  auto* link = sim.add_component<Link>("l", cfg, &sink);
  EXPECT_EQ(link->tx_time(1250).ns(), 1000);  // 10kb at 10Gbps = 1us
  EXPECT_EQ(link->tx_time(125).ns(), 100);
}

TEST(LinkTest, RejectsBadConfig) {
  Simulator sim;
  Sink sink{sim};
  Link::Config cfg;
  cfg.bandwidth_bps = 0;
  EXPECT_THROW(Link(sim, "l", cfg, &sink), std::invalid_argument);
  Link::Config ok;
  EXPECT_THROW(Link(sim, "l", ok, nullptr), std::invalid_argument);
}

TEST(EcmpTest, DeterministicAndInRange) {
  FlowKey k{3, 9, 1234, 80};
  for (std::uint32_t n : {1u, 2u, 4u, 7u}) {
    const auto a = ecmp_index(k, 5, n);
    EXPECT_LT(a, n);
    EXPECT_EQ(a, ecmp_index(k, 5, n));
  }
}

TEST(EcmpTest, SpreadsAcrossFlows) {
  std::vector<int> counts(4, 0);
  for (std::uint16_t port = 0; port < 2000; ++port) {
    FlowKey k{1, 2, port, 80};
    ++counts[ecmp_index(k, 7, 4)];
  }
  for (int c : counts) EXPECT_GT(c, 350);  // roughly uniform
}

TEST(EcmpTest, SaltChangesChoice) {
  int differing = 0;
  for (std::uint16_t port = 0; port < 256; ++port) {
    FlowKey k{1, 2, port, 80};
    if (ecmp_index(k, 1, 8) != ecmp_index(k, 2, 8)) ++differing;
  }
  EXPECT_GT(differing, 180);  // most flows pick differently per switch
}

TEST(SwitchTest, ForwardsByDestination) {
  Simulator sim;
  Sink sink_a{sim}, sink_b{sim};
  auto* sw = sim.add_component<Switch>("sw", 0);
  auto* la = sim.add_component<Link>("la", Link::Config{}, &sink_a);
  auto* lb = sim.add_component<Link>("lb", Link::Config{}, &sink_b);
  const auto pa = sw->add_port(la);
  const auto pb = sw->add_port(lb);
  sw->set_route(1, {pa});
  sw->set_route(2, {pb});
  sim.schedule_at(SimTime::from_us(1), [&] {
    sw->handle_packet(make_packet(1, 100, 0, 1));
    sw->handle_packet(make_packet(2, 100, 0, 2));
    sw->handle_packet(make_packet(3, 100, 0, 2));
  });
  sim.run();
  EXPECT_EQ(sink_a.arrivals.size(), 1u);
  EXPECT_EQ(sink_b.arrivals.size(), 2u);
  EXPECT_EQ(sw->counter().delivered, 3u);
}

TEST(SwitchTest, DropsWithoutRoute) {
  Simulator sim;
  auto* sw = sim.add_component<Switch>("sw", 0);
  sim.schedule_at(SimTime::from_us(1),
                  [&] { sw->handle_packet(make_packet(1, 100, 0, 42)); });
  sim.run();
  EXPECT_EQ(sw->counter().dropped, 1u);
}

TEST(SwitchTest, EcmpSplitsFlowsNotPackets) {
  Simulator sim;
  Sink sink_a{sim}, sink_b{sim};
  auto* sw = sim.add_component<Switch>("sw", 3);
  auto* la = sim.add_component<Link>("la", Link::Config{}, &sink_a);
  auto* lb = sim.add_component<Link>("lb", Link::Config{}, &sink_b);
  sw->set_route(9, {sw->add_port(la), sw->add_port(lb)});
  sim.schedule_at(SimTime::from_us(1), [&] {
    for (std::uint16_t port = 0; port < 64; ++port) {
      // 4 packets per flow; all packets of one flow must take one port.
      for (int i = 0; i < 4; ++i) {
        Packet p = make_packet(port * 4 + i, 100, 0, 9);
        p.flow.src_port = port;
        sw->handle_packet(std::move(p));
      }
    }
  });
  sim.run();
  EXPECT_EQ(sink_a.arrivals.size() + sink_b.arrivals.size(), 256u);
  EXPECT_GT(sink_a.arrivals.size(), 64u);  // both used
  EXPECT_GT(sink_b.arrivals.size(), 64u);
  // per-flow stability
  for (const auto& arr : {&sink_a, &sink_b}) {
    for (const auto& [t, p] : arr->arrivals) {
      const auto expected = ecmp_index(p.flow, 3, 2);
      EXPECT_EQ(arr == &sink_a ? 0u : 1u, expected);
    }
  }
}

TEST(SwitchTest, ProcessingDelayDefersForwarding) {
  Simulator sim;
  Sink sink{sim};
  auto* sw = sim.add_component<Switch>("sw", 0, SimTime::from_us(2));
  Link::Config cfg;
  cfg.bandwidth_bps = 1e12;  // negligible tx time
  cfg.propagation = SimTime::from_ns(0);
  auto* l = sim.add_component<Link>("l", cfg, &sink);
  sw->set_route(1, {sw->add_port(l)});
  sim.schedule_at(SimTime::from_us(1),
                  [&] { sw->handle_packet(make_packet(1, 0, 0, 1)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_GE(sink.arrivals[0].first, SimTime::from_us(3));
}

TEST(SwitchTest, RouteValidation) {
  Simulator sim;
  auto* sw = sim.add_component<Switch>("sw", 0);
  EXPECT_THROW(sw->set_route(1, {}), std::invalid_argument);
  EXPECT_THROW(sw->set_route(1, {5}), std::invalid_argument);
  EXPECT_THROW(sw->add_port(nullptr), std::invalid_argument);
  FlowKey k{0, 1, 1, 2};
  EXPECT_THROW(sw->route_port(k), std::logic_error);
}

}  // namespace
}  // namespace esim::net
