#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace esim::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r{11};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Chi-square-ish sanity: each bucket within 10% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng r{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r{17};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r{19};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ParetoTailAboveScale) {
  Rng r{23};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{29};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// Golden streams: the exact first draws for a documented seed. These pin
// the generator's cross-platform determinism contract (DESIGN: identical
// seeds produce identical simulations) — any change to seeding, xoshiro
// stepping, or the integer reductions is a breaking change and must show
// up here, not as silently shifted simulation results. Integer draws are
// compared exactly; transformed draws go through libm (log/sqrt/cos), so
// those use a tolerance far below any physical relevance.
TEST(Rng, GoldenRawDraws) {
  Rng r{12345};
  const std::uint64_t expected[] = {
      10201931350592234856ull, 3780764549115216544ull,
      1570246627180645737ull,  3237956550421933520ull,
      4899705286669081817ull,  13385132719381623431ull,
      4322154809380817970ull,  14774873379570401602ull,
  };
  for (std::uint64_t want : expected) EXPECT_EQ(r.next_u64(), want);

  Rng def{};  // the documented default-seed stream
  EXPECT_EQ(def.next_u64(), 6409272458699751175ull);
  EXPECT_EQ(def.next_u64(), 6888991682673849350ull);
}

TEST(Rng, GoldenUniformIntDraws) {
  Rng r{12345};
  const std::uint64_t expected[] = {856u, 544u, 737u, 520u,
                                    817u, 431u, 970u, 602u};
  for (std::uint64_t want : expected) EXPECT_EQ(r.uniform_int(1000), want);
}

TEST(Rng, GoldenDistributionDraws) {
  Rng u{12345};
  const double uniform[] = {0.5530478066930038, 0.20495565689034478,
                            0.085123240226364527, 0.17552997631905642};
  for (double want : uniform) EXPECT_DOUBLE_EQ(u.uniform(), want);

  Rng e{12345};
  const double exp2[] = {1.1846216629605255, 3.1699232621872464,
                         4.9273103750883687, 3.4798908908499628};
  for (double want : exp2) EXPECT_NEAR(e.exponential(2.0), want, 1e-12);

  Rng n{12345};
  const double normal[] = {0.30394602411211569, 1.0451021372990119,
                           1.0011559071381724, 1.9811605751908934};
  for (double want : normal) EXPECT_NEAR(n.normal(), want, 1e-12);

  Rng p{12345};
  const double pareto[] = {2.9683940071021389, 5.7533843711986057,
                           10.335493809026135, 6.3796345225128679};
  for (double want : pareto) EXPECT_NEAR(p.pareto(2.0, 1.5), want, 1e-12);

  Rng b{12345};
  const bool bern[] = {false, true, true, true, true, false, true, false};
  for (bool want : bern) EXPECT_EQ(b.bernoulli(0.5), want);
}

// Child-stream non-aliasing: every component gets its stream via fork()
// (and every PDES partition via seed + i). If two children ever shared a
// stream, their "independent" traffic draws would be perfectly
// correlated — a silent statistics bug. Fingerprint each stream by its
// first draws and require all streams pairwise distinct.
TEST(Rng, ForkedChildStreamsDoNotAlias) {
  Rng parent{2024};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> prints;
  for (int i = 0; i < 100; ++i) {
    Rng child = parent.fork();
    prints.emplace_back(child.next_u64(), child.next_u64());
  }
  // Include the parent's continuation and sibling root seeds (the PDES
  // partition pattern seed, seed+1, ...) in the aliasing check.
  prints.emplace_back(parent.next_u64(), parent.next_u64());
  for (std::uint64_t s = 2024; s < 2024 + 8; ++s) {
    Rng root{s};
    prints.emplace_back(root.next_u64(), root.next_u64());
  }
  std::sort(prints.begin(), prints.end());
  EXPECT_EQ(std::adjacent_find(prints.begin(), prints.end()), prints.end())
      << "two RNG streams produced identical opening draws";
}

// Grandchildren must not collide with children either: components fork
// from the simulator stream, then fork again for their own helpers.
TEST(Rng, NestedForksDoNotAlias) {
  Rng root{7};
  std::vector<std::uint64_t> firsts;
  for (int i = 0; i < 10; ++i) {
    Rng child = root.fork();
    for (int j = 0; j < 10; ++j) {
      Rng grandchild = child.fork();
      firsts.push_back(grandchild.next_u64());
    }
    firsts.push_back(child.next_u64());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent{31};
  Rng child = parent.fork();
  // The child stream should not simply replay the parent stream.
  Rng parent2{31};
  (void)parent2.next_u64();  // align with the fork's consumption
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkDeterministic) {
  Rng a{99}, b{99};
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace esim::sim
