#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace esim::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r{11};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Chi-square-ish sanity: each bucket within 10% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(Rng, UniformIntOneAlwaysZero) {
  Rng r{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(1), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r{13};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r{17};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r{19};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ParetoTailAboveScale) {
  Rng r{23};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{29};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent{31};
  Rng child = parent.fork();
  // The child stream should not simply replay the parent stream.
  Rng parent2{31};
  (void)parent2.next_u64();  // align with the fork's consumption
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkDeterministic) {
  Rng a{99}, b{99};
  Rng ca = a.fork(), cb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace esim::sim
