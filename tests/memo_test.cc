// Tests for phase memoization (src/memo): PhaseCache LRU properties,
// MemoRunner replay equivalence, signature-collision safety, near-miss
// fallback, eviction re-recording, and the adversarial cases (aperiodic
// boundaries, mutated patterns, memo-off fidelity to the seed harness).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/diff_runner.h"
#include "check/scenario.h"
#include "memo/memo_diff.h"
#include "memo/memo_runner.h"
#include "memo/phase_cache.h"
#include "workload/phases.h"

namespace esim::memo {
namespace {

using check::EngineSpec;
using check::Scenario;
using workload::PhaseFlow;
using workload::PhasePattern;

PhaseEntry entry_of_size(std::size_t pops) {
  PhaseEntry e;
  e.partitions.resize(1);
  e.partitions[0].pops.resize(pops);
  return e;
}

TEST(PhaseCacheTest, FindMissReturnsNull) {
  PhaseCache cache;
  EXPECT_EQ(cache.find(123), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(PhaseCacheTest, InsertThenFind) {
  PhaseCache cache;
  PhaseEntry e;
  e.route_fp = 77;
  cache.insert(1, std::move(e));
  const PhaseEntry* found = cache.find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->route_fp, 77u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);
}

TEST(PhaseCacheTest, EntryCountBoundHolds) {
  PhaseCache::Limits limits;
  limits.max_entries = 4;
  PhaseCache cache{limits};
  for (std::uint64_t sig = 0; sig < 100; ++sig) {
    cache.insert(sig, PhaseEntry{});
    EXPECT_LE(cache.entries(), limits.max_entries);
  }
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.evictions(), 96u);
  // Oldest are gone, newest survive.
  EXPECT_EQ(cache.find(0), nullptr);
  EXPECT_NE(cache.find(99), nullptr);
}

TEST(PhaseCacheTest, ByteBoundHoldsAndAccountingBalances) {
  PhaseCache::Limits limits;
  limits.max_bytes = 64 * 1024;
  PhaseCache cache{limits};
  for (std::uint64_t sig = 0; sig < 64; ++sig) {
    cache.insert(sig, entry_of_size(256));
    EXPECT_LE(cache.resident_bytes(), limits.max_bytes);
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_GT(cache.entries(), 0u);

  // Byte accounting drains back to a single entry's size when everything
  // else is evicted by one oversized-but-admissible insert.
  const std::size_t one = entry_of_size(256).bytes();
  EXPECT_GE(cache.resident_bytes(), one);
}

TEST(PhaseCacheTest, LruEvictsLeastRecentlyUsed) {
  PhaseCache::Limits limits;
  limits.max_entries = 2;
  PhaseCache cache{limits};
  cache.insert(1, PhaseEntry{});
  cache.insert(2, PhaseEntry{});
  ASSERT_NE(cache.find(1), nullptr);  // refresh 1; 2 is now LRU
  cache.insert(3, PhaseEntry{});
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
}

TEST(PhaseCacheTest, InsertReplacesExistingEntry) {
  PhaseCache cache;
  PhaseEntry a;
  a.route_fp = 1;
  cache.insert(5, std::move(a));
  const std::size_t bytes_after_first = cache.resident_bytes();
  PhaseEntry b;
  b.route_fp = 2;
  cache.insert(5, std::move(b));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), bytes_after_first);
  EXPECT_EQ(cache.find(5)->route_fp, 2u);
}

// --- MemoRunner equivalence ------------------------------------------

/// A small periodic workload: two hosts pairs across ToRs, four phases.
PeriodicScenario small_periodic(std::uint32_t phases = 4) {
  Scenario base;
  base.seed = 99;
  base.tors = 2;
  base.spines = 2;
  base.hosts_per_tor = 2;
  base.duration_ns = 2'000'000;
  base.flows = {
      {0, 2, 30'000, 5'000, 1},
      {1, 3, 20'000, 7'000, 2},
      {3, 0, 15'000, 9'000, 3},
  };
  base.validate();
  return make_periodic(base, phases, 1'000'000);
}

TEST(MemoRunnerTest, SequentialFullDigestIdenticalWithHits) {
  const PeriodicScenario ps = small_periodic();
  const MemoConfig on;
  MemoConfig off = on;
  off.enabled = false;

  MemoRunner off_runner{off};
  const MemoRunOutcome base =
      off_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  EXPECT_EQ(off_runner.stats().lookups, 0u);

  MemoRunner on_runner{on};
  const MemoRunOutcome memoized =
      on_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);

  EXPECT_GT(memoized.stats.hits, 0u);
  EXPECT_EQ(memoized.digest, base.digest);
  EXPECT_EQ(memoized.flows_completed, base.flows_completed);
  EXPECT_EQ(memoized.final_state_fp, base.final_state_fp);
}

TEST(MemoRunnerTest, PdesFullDigestIdenticalWithHits) {
  const PeriodicScenario ps = small_periodic();
  for (std::uint32_t partitions : {2u, 4u}) {
    const EngineSpec spec{partitions};
    MemoRunner off_runner{MemoConfig{.enabled = false}};
    const MemoRunOutcome base =
        off_runner.run(ps.scenario, ps.pattern, spec, true);
    MemoRunner on_runner{MemoConfig{}};
    const MemoRunOutcome memoized =
        on_runner.run(ps.scenario, ps.pattern, spec, true);
    EXPECT_GT(memoized.stats.hits, 0u) << spec.label();
    EXPECT_EQ(memoized.digest, base.digest) << spec.label();
    EXPECT_EQ(memoized.flows_completed, base.flows_completed);
  }
}

TEST(MemoRunnerTest, AggregateModeMatchesFinalStateAndIsCheaper) {
  const PeriodicScenario ps = small_periodic(6);
  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base =
      off_runner.run(ps.scenario, ps.pattern, EngineSpec{}, false);
  EXPECT_FALSE(base.digest_attached);

  MemoRunner on_runner{MemoConfig{}};
  const MemoRunOutcome agg =
      on_runner.run(ps.scenario, ps.pattern, EngineSpec{}, false);
  EXPECT_GT(agg.stats.hits, 0u);
  EXPECT_EQ(agg.final_state_fp, base.final_state_fp);
  EXPECT_EQ(agg.flows_completed, base.flows_completed);
  // Aggregate entries carry no event/packet streams.
  EXPECT_GT(agg.stats.fast_forwarded_ns, 0);
}

TEST(MemoRunnerTest, CachePersistsAcrossRunsOfOneRunner) {
  const PeriodicScenario ps = small_periodic();
  MemoRunner runner{MemoConfig{}};
  const MemoRunOutcome first =
      runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  const std::uint64_t first_misses = first.stats.misses;
  EXPECT_GT(first_misses, 0u);

  // Second identical run: phase boundaries land in the same relative
  // state, so every memoizable phase hits entries from the first run.
  const MemoRunOutcome second =
      runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  EXPECT_GT(second.stats.hits, first.stats.hits);
  EXPECT_EQ(second.stats.misses, first_misses);

  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base =
      off_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  EXPECT_EQ(second.digest, base.digest);
}

TEST(MemoRunnerTest, RejectsMismatchedScenarioAndPattern) {
  PeriodicScenario ps = small_periodic();
  ps.scenario.flows[0].bytes += 1;  // no longer pattern.expand(1)
  MemoRunner runner{MemoConfig{}};
  EXPECT_THROW(runner.run(ps.scenario, ps.pattern, EngineSpec{}, true),
               std::invalid_argument);
}

// --- adversarial: collisions, mutation, aperiodicity ------------------

TEST(MemoRunnerTest, SignatureCollisionNeverProducesFalseHit) {
  // Collapse every signature to a constant: only hit-time verification
  // separates phases. Run pattern A, then a pattern differing in one
  // flow's bytes through the SAME runner (same cache). Every A-entry
  // lookup from B must be rejected (near-miss), and B's digest must
  // still match its own memo-off baseline.
  const PeriodicScenario a = small_periodic();
  PeriodicScenario b = a;
  b.pattern.pattern[1].bytes += 1'460;
  b.scenario.flows.clear();
  for (const auto& inj : b.pattern.expand(1)) {
    b.scenario.flows.push_back(
        {inj.src, inj.dst, inj.bytes, inj.start_ns, inj.flow_id});
  }

  MemoConfig collide;
  collide.debug_collide_signatures = true;
  MemoRunner runner{collide};
  const MemoRunOutcome out_a =
      runner.run(a.scenario, a.pattern, EngineSpec{}, true);
  EXPECT_GT(out_a.stats.hits, 0u);  // A still hits its own phases

  const MemoRunOutcome out_b =
      runner.run(b.scenario, b.pattern, EngineSpec{}, true);
  // B's first lookup collides with A's entry and must be verified away.
  EXPECT_GT(out_b.stats.near_misses, out_a.stats.near_misses);

  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base =
      off_runner.run(b.scenario, b.pattern, EngineSpec{}, true);
  EXPECT_EQ(out_b.digest, base.digest);
  EXPECT_EQ(out_b.flows_completed, base.flows_completed);
}

TEST(MemoRunnerTest, MutatedFlowChangesSignature) {
  // Without forced collisions, a one-flow mutation must change the
  // signature outright: pattern B's lookups never even find A's entries.
  const PeriodicScenario a = small_periodic();
  PeriodicScenario b = a;
  b.pattern.pattern[0].bytes += 1'460;
  b.scenario.flows.clear();
  for (const auto& inj : b.pattern.expand(1)) {
    b.scenario.flows.push_back(
        {inj.src, inj.dst, inj.bytes, inj.start_ns, inj.flow_id});
  }

  MemoRunner runner{MemoConfig{}};
  const MemoRunOutcome out_a =
      runner.run(a.scenario, a.pattern, EngineSpec{}, true);
  const MemoRunOutcome out_b =
      runner.run(b.scenario, b.pattern, EngineSpec{}, true);
  // B hit only entries recorded from B's own phases, never A's: its
  // near-miss count stays where A left it.
  EXPECT_EQ(out_b.stats.near_misses, out_a.stats.near_misses);

  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base =
      off_runner.run(b.scenario, b.pattern, EngineSpec{}, true);
  EXPECT_EQ(out_b.digest, base.digest);
}

TEST(MemoRunnerTest, AperiodicBoundariesYieldZeroHitsAndExactDigest) {
  // Shrink the period so flows straddle every boundary: no quiescent
  // boundary ever forms, the memo layer must never fire, and the chunked
  // run must still be digest-identical to the memo-off chunked run.
  Scenario base;
  base.seed = 7;
  base.tors = 2;
  base.spines = 1;
  base.hosts_per_tor = 2;
  base.duration_ns = 1'000'000;
  base.flows = {
      {0, 2, 80'000, 5'000, 1},
      {1, 3, 80'000, 9'000, 2},
  };
  base.validate();
  const PeriodicScenario ps = make_periodic(base, 8, 60'000);

  MemoRunner on_runner{MemoConfig{}};
  const MemoRunOutcome memoized =
      on_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  EXPECT_EQ(memoized.stats.hits, 0u);
  EXPECT_EQ(memoized.stats.fast_forwarded_phases, 0u);

  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base_out =
      off_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  EXPECT_EQ(memoized.digest, base_out.digest);
}

TEST(MemoRunnerTest, MemoOffChunkedMatchesUnchunkedReference) {
  // The chunked memo-off baseline is anchored to the seed harness: full
  // digest equality against DiffRunner's unchunked sequential run.
  const PeriodicScenario ps = small_periodic();
  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome chunked =
      off_runner.run(ps.scenario, ps.pattern, EngineSpec{}, true);
  const check::DiffRunner ref;
  const check::RunOutcome unchunked = ref.run(ps.scenario, EngineSpec{});
  EXPECT_EQ(chunked.digest, unchunked.digest);
  EXPECT_EQ(chunked.flows_completed, unchunked.flows_completed);
}

TEST(MemoRunnerTest, HitAfterEvictionReRecords) {
  // A one-entry cache alternating between two patterns: every phase
  // change evicts the other pattern's entry, so each run re-records and
  // still ends digest-identical.
  const PeriodicScenario a = small_periodic();
  PeriodicScenario b = a;
  b.pattern.pattern[0].bytes += 1'460;
  b.scenario.flows.clear();
  for (const auto& inj : b.pattern.expand(1)) {
    b.scenario.flows.push_back(
        {inj.src, inj.dst, inj.bytes, inj.start_ns, inj.flow_id});
  }

  MemoConfig tiny;
  tiny.limits.max_entries = 1;
  MemoRunner runner{tiny};
  const MemoRunOutcome a1 =
      runner.run(a.scenario, a.pattern, EngineSpec{}, true);
  EXPECT_GT(a1.stats.hits, 0u);
  const MemoRunOutcome b1 =
      runner.run(b.scenario, b.pattern, EngineSpec{}, true);
  const MemoRunOutcome a2 =
      runner.run(a.scenario, a.pattern, EngineSpec{}, true);
  // A's entry was evicted by B, so the second A run re-recorded (stores
  // grew) and then hit again.
  EXPECT_GT(a2.stats.stores, b1.stats.stores);
  EXPECT_GT(a2.stats.hits, b1.stats.hits);
  EXPECT_GT(a2.stats.evictions, 0u);
  EXPECT_LE(a2.cache_entries, 1u);

  MemoRunner off_runner{MemoConfig{.enabled = false}};
  const MemoRunOutcome base =
      off_runner.run(a.scenario, a.pattern, EngineSpec{}, true);
  EXPECT_EQ(a2.digest, base.digest);
}

TEST(MemoDiffTest, CheckMemoPassesOnPeriodicScenario) {
  const PeriodicScenario ps = small_periodic();
  MemoStats totals;
  const std::string diag = check_memo(ps, {2}, MemoConfig{}, &totals);
  EXPECT_EQ(diag, "") << diag;
  EXPECT_GT(totals.hits, 0u);
}

TEST(MemoDiffTest, MakePeriodicFoldsAndValidates) {
  Scenario base;
  base.seed = 3;
  base.tors = 2;
  base.spines = 1;
  base.hosts_per_tor = 2;
  base.duration_ns = 3'000'000;
  base.flows = {
      {0, 1, 10'000, 950'000, 1},   // start beyond period/2: folded
      {0, 2, 10'000, 1'950'000, 2}, // folds onto the same offset: bumped
      {1, 0, 10'000, 450'000, 3},
  };
  base.validate();
  const PeriodicScenario ps = make_periodic(base, 3, 1'000'000);
  EXPECT_EQ(ps.pattern.pattern.size(), 3u);
  EXPECT_EQ(ps.scenario.flows.size(), 9u);
  EXPECT_EQ(ps.scenario.duration_ns, 3'000'000);
  EXPECT_FALSE(ps.scenario.ecmp_port_sensitive);
  for (const auto& f : ps.pattern.pattern) {
    EXPECT_GE(f.offset_ns, 0);
    EXPECT_LT(f.offset_ns, 1'000'000);
  }
}

}  // namespace
}  // namespace esim::memo
