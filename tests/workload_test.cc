#include <gtest/gtest.h>

#include <set>

#include "net/clos.h"
#include "sim/random.h"
#include "workload/flow_size.h"
#include "workload/traffic_matrix.h"

namespace esim::workload {
namespace {

using esim::sim::Rng;

TEST(FixedFlowSize, AlwaysSame) {
  Rng rng{1};
  FixedFlowSize d{1234};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 1234u);
  EXPECT_DOUBLE_EQ(d.mean(), 1234.0);
  EXPECT_THROW(FixedFlowSize{0}, std::invalid_argument);
}

TEST(UniformFlowSize, BoundsAndMean) {
  Rng rng{2};
  UniformFlowSize d{100, 200};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 200u);
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(sum / n, 150.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 150.0);
  EXPECT_THROW(UniformFlowSize(200, 100), std::invalid_argument);
}

TEST(ParetoFlowSize, BoundedAndHeavyTailed) {
  Rng rng{3};
  ParetoFlowSize d{1000, 1'000'000, 1.2};
  double sum = 0;
  std::uint64_t maxv = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 1000u);
    EXPECT_LE(s, 1'000'000u);
    sum += static_cast<double>(s);
    maxv = std::max(maxv, s);
  }
  EXPECT_GT(maxv, 100'000u);            // tail reached
  EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.1);
}

TEST(EmpiricalFlowSize, ValidatesKnots) {
  using Knots = std::vector<std::pair<std::uint64_t, double>>;
  EXPECT_THROW((EmpiricalFlowSize{Knots{{100, 1.0}}}), std::invalid_argument);
  EXPECT_THROW((EmpiricalFlowSize{Knots{{100, 0.5}, {50, 1.0}}}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalFlowSize{Knots{{100, 0.5}, {200, 0.4}}}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalFlowSize{Knots{{100, 0.5}, {200, 0.9}}}),
               std::invalid_argument);
  EmpiricalFlowSize ok{Knots{{100, 0.5}, {200, 1.0}}};
  EXPECT_GT(ok.mean(), 100.0);
  EXPECT_LT(ok.mean(), 200.0);
}

TEST(EmpiricalFlowSize, SamplesMatchCdf) {
  Rng rng{4};
  auto d = web_search_distribution();
  const int n = 100000;
  int small = 0, large = 0;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const auto s = d->sample(rng);
    sum += static_cast<double>(s);
    if (s <= 13'000) ++small;
    if (s > 3'300'000) ++large;
  }
  // CDF says 20% of flows are <= 13KB and 10% are > 3.3MB.
  EXPECT_NEAR(static_cast<double>(small) / n, 0.20, 0.02);
  EXPECT_NEAR(static_cast<double>(large) / n, 0.10, 0.01);
  // Empirical mean should approximate the analytic mean.
  EXPECT_NEAR(sum / n, d->mean(), d->mean() * 0.05);
}

TEST(EmpiricalFlowSize, MiniDistributionIsSmaller) {
  auto full = web_search_distribution();
  auto mini = mini_web_distribution();
  EXPECT_LT(mini->mean() * 10, full->mean());
}

TEST(UniformTraffic, DistinctPairsCoverAll) {
  Rng rng{5};
  UniformTraffic m{8};
  std::set<std::pair<net::HostId, net::HostId>> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto [s, d] = m.sample(rng);
    EXPECT_NE(s, d);
    EXPECT_LT(s, 8u);
    EXPECT_LT(d, 8u);
    seen.insert({s, d});
  }
  EXPECT_EQ(seen.size(), 8u * 7u);  // all ordered pairs hit
  EXPECT_THROW(UniformTraffic{1}, std::invalid_argument);
}

net::ClosSpec small_spec() {
  net::ClosSpec s;
  s.clusters = 4;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

TEST(ClusterMixTraffic, RespectsIntraFraction) {
  Rng rng{6};
  const auto spec = small_spec();
  ClusterMixTraffic m{spec, 0.7};
  int intra = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto [s, d] = m.sample(rng);
    EXPECT_NE(s, d);
    if (spec.cluster_of_host(s) == spec.cluster_of_host(d)) ++intra;
  }
  EXPECT_NEAR(static_cast<double>(intra) / n, 0.7, 0.02);
}

TEST(ClusterMixTraffic, PureInterNeverIntra) {
  Rng rng{7};
  ClusterMixTraffic m{small_spec(), 0.0};
  const auto spec = small_spec();
  for (int i = 0; i < 2000; ++i) {
    const auto [s, d] = m.sample(rng);
    EXPECT_NE(spec.cluster_of_host(s), spec.cluster_of_host(d));
  }
}

TEST(ClusterMixTraffic, Validation) {
  net::ClosSpec one;
  one.clusters = 1;
  one.cores = 0;
  EXPECT_THROW((ClusterMixTraffic{one, 0.5}), std::invalid_argument);
  EXPECT_THROW((ClusterMixTraffic{small_spec(), 1.5}),
               std::invalid_argument);
}

TEST(IncastTraffic, AllFlowsTargetSink) {
  Rng rng{8};
  IncastTraffic m{16, 5};
  for (int i = 0; i < 1000; ++i) {
    const auto [s, d] = m.sample(rng);
    EXPECT_EQ(d, 5u);
    EXPECT_NE(s, 5u);
    EXPECT_LT(s, 16u);
  }
  EXPECT_THROW((IncastTraffic{16, 16}), std::invalid_argument);
}

TEST(PermutationTraffic, IsFixedPointFreePermutation) {
  PermutationTraffic m{32, 99};
  std::set<net::HostId> dsts;
  for (net::HostId s = 0; s < 32; ++s) {
    const auto d = m.dst_of(s);
    EXPECT_NE(d, s);
    dsts.insert(d);
  }
  EXPECT_EQ(dsts.size(), 32u);  // bijection
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    const auto [s, d] = m.sample(rng);
    EXPECT_EQ(d, m.dst_of(s));
  }
}

TEST(PermutationTraffic, DeterministicBySeed) {
  PermutationTraffic a{16, 5}, b{16, 5}, c{16, 6};
  int diff = 0;
  for (net::HostId s = 0; s < 16; ++s) {
    EXPECT_EQ(a.dst_of(s), b.dst_of(s));
    if (a.dst_of(s) != c.dst_of(s)) ++diff;
  }
  EXPECT_GT(diff, 4);
}

}  // namespace
}  // namespace esim::workload
