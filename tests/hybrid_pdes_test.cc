// Tests for the parallel (PDES-partitioned) hybrid simulator — the
// paper's third speedup source in §6.2.
#include <gtest/gtest.h>

#include <atomic>

#include "core/hybrid_pdes.h"
#include "stats/collectors.h"

namespace esim::core {
namespace {

using approx::MicroModel;
using sim::ParallelEngine;
using sim::SimTime;

HybridConfig hybrid_config(std::uint32_t clusters) {
  HybridConfig cfg;
  cfg.net.spec.clusters = clusters;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  return cfg;
}

ParallelEngine::Config engine_config(std::uint32_t partitions) {
  ParallelEngine::Config cfg;
  cfg.num_partitions = partitions;
  cfg.lookahead = SimTime::from_us(1);
  cfg.seed = 5;
  return cfg;
}

MicroModel benign_model(double latency_us) {
  MicroModel::Config cfg;
  cfg.hidden = 4;
  cfg.layers = 1;
  MicroModel m{cfg};
  m.drop_head().weight().zero();
  m.drop_head().bias().at(0, 0) = -20.0;
  m.latency_head().weight().zero();
  m.set_latency_normalization(std::log(latency_us), 1.0);
  return m;
}

TEST(HybridPdes, PlacesIslandsOnPartitions) {
  ParallelEngine engine{engine_config(3)};
  const auto m = benign_model(8.0);
  const auto out =
      build_hybrid_network_partitioned(engine, hybrid_config(4), m, m);
  // Full cluster 0 on partition 0; clusters 1..3 round-robin on 1..2.
  EXPECT_EQ(out.partition_of_cluster[1], 1u);
  EXPECT_EQ(out.partition_of_cluster[2], 2u);
  EXPECT_EQ(out.partition_of_cluster[3], 1u);
  for (net::HostId h = 0; h < 8; ++h) {
    EXPECT_EQ(out.partition_of_host[h], 0u);
  }
  for (net::HostId h = 8; h < 16; ++h) {
    EXPECT_EQ(out.partition_of_host[h], 1u);
  }
}

TEST(HybridPdes, RejectsCausalityViolations) {
  auto ecfg = engine_config(2);
  ecfg.lookahead = SimTime::from_us(50);  // > link prop and min latency
  ParallelEngine engine{ecfg};
  const auto m = benign_model(8.0);
  EXPECT_THROW(
      build_hybrid_network_partitioned(engine, hybrid_config(2), m, m),
      std::invalid_argument);
}

TEST(HybridPdes, CrossPartitionFlowsComplete) {
  ParallelEngine engine{engine_config(3)};
  const auto m = benign_model(8.0);
  auto out =
      build_hybrid_network_partitioned(engine, hybrid_config(4), m, m);
  std::atomic<int> completions{0};
  auto& sim0 = engine.partition(0).sim();
  // Full-cluster host -> approximated clusters on two different
  // partitions, plus the reverse direction.
  sim0.schedule_at(SimTime::from_us(10), [&] {
    auto* a = out.net.hosts[0]->open_flow(12, 40'000, 1);   // cluster 1
    a->on_complete = [&] { completions.fetch_add(1); };
    auto* b = out.net.hosts[1]->open_flow(20, 40'000, 2);   // cluster 2
    b->on_complete = [&] { completions.fetch_add(1); };
  });
  engine.partition(1).sim().schedule_at(SimTime::from_us(15), [&] {
    auto* c = out.net.hosts[9]->open_flow(2, 40'000, 3);    // back to full
    c->on_complete = [&] { completions.fetch_add(1); };
  });
  engine.run_until(SimTime::from_ms(200));
  EXPECT_EQ(completions.load(), 3);
  EXPECT_GT(engine.stats().cross_messages, 100u);
  EXPECT_GT(out.net.clusters[1]->stats().ingress_packets, 10u);
  EXPECT_GT(out.net.clusters[2]->stats().ingress_packets, 10u);
}

TEST(HybridPdes, MatchesSequentialHybridResults) {
  // The same single flow through a benign model must move the same number
  // of segments whether the approximated cluster runs in-partition or
  // across a PDES boundary.
  auto run_parallel = [] {
    ParallelEngine engine{engine_config(2)};
    const auto m = benign_model(8.0);
    auto out =
        build_hybrid_network_partitioned(engine, hybrid_config(2), m, m);
    tcp::TcpConnection* conn = nullptr;
    engine.partition(0).sim().schedule_at(SimTime::from_us(10), [&] {
      conn = out.net.hosts[0]->open_flow(12, 60'000, 1);
    });
    engine.run_until(SimTime::from_ms(100));
    return conn->stats().segments_sent;
  };
  auto run_sequential = [] {
    sim::Simulator sim{5};  // partition-0 seed above
    const auto m = benign_model(8.0);
    auto net = build_hybrid_network(sim, hybrid_config(2), m, m);
    tcp::TcpConnection* conn = nullptr;
    sim.schedule_at(SimTime::from_us(10),
                    [&] { conn = net.hosts[0]->open_flow(12, 60'000, 1); });
    sim.run_until(SimTime::from_ms(100));
    return conn->stats().segments_sent;
  };
  EXPECT_EQ(run_parallel(), run_sequential());
}

TEST(HybridPdes, SinglePartitionDegradesGracefully) {
  // P=1: everything lands on partition 0 and no remote schedulers exist.
  ParallelEngine engine{engine_config(1)};
  const auto m = benign_model(8.0);
  auto out =
      build_hybrid_network_partitioned(engine, hybrid_config(2), m, m);
  EXPECT_EQ(out.partition_of_cluster[1], 0u);
  std::atomic<bool> complete{false};
  engine.partition(0).sim().schedule_at(SimTime::from_us(10), [&] {
    auto* c = out.net.hosts[0]->open_flow(12, 20'000, 1);
    c->on_complete = [&] { complete.store(true); };
  });
  engine.run_until(SimTime::from_ms(100));
  EXPECT_TRUE(complete.load());
  EXPECT_EQ(engine.stats().cross_messages, 0u);
}

}  // namespace
}  // namespace esim::core
