#include "net/clos.h"

#include <gtest/gtest.h>

#include <set>

#include "net/ecmp.h"

namespace esim::net {
namespace {

ClosSpec paper_spec() {
  // The paper's Figure 5 unit: clusters of 4 switches (2 ToR + 2 Agg) and
  // 8 servers.
  ClosSpec s;
  s.clusters = 4;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

TEST(ClosSpec, Sizes) {
  const auto s = paper_spec();
  EXPECT_EQ(s.hosts_per_cluster(), 8u);
  EXPECT_EQ(s.total_hosts(), 32u);
  EXPECT_EQ(s.total_tors(), 8u);
  EXPECT_EQ(s.total_aggs(), 8u);
  EXPECT_EQ(s.total_switches(), 18u);
}

TEST(ClosSpec, HostMapping) {
  const auto s = paper_spec();
  EXPECT_EQ(s.cluster_of_host(0), 0u);
  EXPECT_EQ(s.cluster_of_host(7), 0u);
  EXPECT_EQ(s.cluster_of_host(8), 1u);
  EXPECT_EQ(s.cluster_of_host(31), 3u);
  EXPECT_EQ(s.tor_index_of_host(0), 0u);
  EXPECT_EQ(s.tor_index_of_host(3), 0u);
  EXPECT_EQ(s.tor_index_of_host(4), 1u);
  EXPECT_EQ(s.tor_of_host(12), s.tor_id(1, 1));
  EXPECT_EQ(s.first_host_of_tor(1, 1), 12u);
}

TEST(ClosSpec, SwitchIdsAreDenseAndDisjoint) {
  const auto s = paper_spec();
  std::set<SwitchId> ids;
  for (std::uint32_t c = 0; c < s.clusters; ++c) {
    for (std::uint32_t t = 0; t < s.tors_per_cluster; ++t) {
      ids.insert(s.tor_id(c, t));
      EXPECT_TRUE(s.is_tor(s.tor_id(c, t)));
      EXPECT_EQ(s.cluster_of_switch(s.tor_id(c, t)), c);
    }
    for (std::uint32_t a = 0; a < s.aggs_per_cluster; ++a) {
      ids.insert(s.agg_id(c, a));
      EXPECT_TRUE(s.is_agg(s.agg_id(c, a)));
      EXPECT_EQ(s.cluster_of_switch(s.agg_id(c, a)), c);
    }
  }
  for (std::uint32_t k = 0; k < s.cores; ++k) {
    ids.insert(s.core_id(k));
    EXPECT_TRUE(s.is_core(s.core_id(k)));
  }
  EXPECT_EQ(ids.size(), s.total_switches());
  EXPECT_EQ(*ids.rbegin(), s.total_switches() - 1);
}

TEST(ClosSpec, CoreHasNoCluster) {
  const auto s = paper_spec();
  EXPECT_THROW(s.cluster_of_switch(s.core_id(0)), std::invalid_argument);
}

TEST(ClosSpec, ValidationCatchesInconsistency) {
  ClosSpec s = paper_spec();
  s.validate();
  s.cores = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = paper_spec();
  s.clusters = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);  // cores must be 0
  s.cores = 0;
  s.validate();  // leaf-spine
  s.tors_per_cluster = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ClosSpec, Names) {
  const auto s = paper_spec();
  EXPECT_EQ(s.tor_name(0, 1), "c0.tor1");
  EXPECT_EQ(s.agg_name(2, 0), "c2.agg0");
  EXPECT_EQ(s.core_name(1), "core1");
  EXPECT_EQ(s.host_name(9), "c1.h9");
}

TEST(ClosPath, SameTorIsOneHop) {
  const auto s = paper_spec();
  FlowKey k{0, 1, 100, 80};
  const auto p = compute_path(s, k);
  EXPECT_EQ(p.len, 1u);
  EXPECT_EQ(p.hops[0], s.tor_id(0, 0));
}

TEST(ClosPath, IntraClusterIsThreeHops) {
  const auto s = paper_spec();
  FlowKey k{0, 4, 100, 80};  // tor0 -> tor1, same cluster
  const auto p = compute_path(s, k);
  ASSERT_EQ(p.len, 3u);
  EXPECT_EQ(p.hops[0], s.tor_id(0, 0));
  EXPECT_TRUE(s.is_agg(p.hops[1]));
  EXPECT_EQ(s.cluster_of_switch(p.hops[1]), 0u);
  EXPECT_EQ(p.hops[2], s.tor_id(0, 1));
}

TEST(ClosPath, InterClusterIsFiveHops) {
  const auto s = paper_spec();
  FlowKey k{0, 30, 100, 80};  // cluster 0 -> cluster 3
  const auto p = compute_path(s, k);
  ASSERT_EQ(p.len, 5u);
  EXPECT_EQ(p.hops[0], s.tor_of_host(0));
  EXPECT_TRUE(s.is_agg(p.hops[1]));
  EXPECT_EQ(s.cluster_of_switch(p.hops[1]), 0u);
  EXPECT_TRUE(s.is_core(p.hops[2]));
  EXPECT_TRUE(s.is_agg(p.hops[3]));
  EXPECT_EQ(s.cluster_of_switch(p.hops[3]), 3u);
  EXPECT_EQ(p.hops[4], s.tor_of_host(30));
}

TEST(ClosPath, MatchesEcmpReplay) {
  const auto s = paper_spec();
  FlowKey k{2, 27, 5555, 80};
  const auto p = compute_path(s, k);
  ASSERT_EQ(p.len, 5u);
  const auto up_agg = ecmp_index(k, p.hops[0], s.aggs_per_cluster);
  EXPECT_EQ(p.hops[1], s.agg_id(0, up_agg));
  const auto core = ecmp_index(k, p.hops[1], s.cores);
  EXPECT_EQ(p.hops[2], s.core_id(core));
}

TEST(ClosPath, DistinctFlowsUseMultiplePaths) {
  const auto s = paper_spec();
  std::set<SwitchId> aggs, cores;
  for (std::uint16_t port = 0; port < 200; ++port) {
    FlowKey k{0, 30, port, 80};
    const auto p = compute_path(s, k);
    aggs.insert(p.hops[1]);
    cores.insert(p.hops[2]);
  }
  EXPECT_EQ(aggs.size(), s.aggs_per_cluster);
  EXPECT_EQ(cores.size(), s.cores);
}

TEST(ClosPath, RejectsBadFlows) {
  const auto s = paper_spec();
  EXPECT_THROW(compute_path(s, FlowKey{0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(compute_path(s, FlowKey{0, 999, 1, 2}),
               std::invalid_argument);
}

TEST(ClosPath, LeafSpineIntraCluster) {
  ClosSpec s;
  s.clusters = 1;
  s.tors_per_cluster = 8;
  s.aggs_per_cluster = 8;
  s.hosts_per_tor = 4;
  s.cores = 0;
  s.validate();
  FlowKey k{0, 31, 42, 80};
  const auto p = compute_path(s, k);
  ASSERT_EQ(p.len, 3u);
  EXPECT_EQ(p.hops[0], s.tor_id(0, 0));
  EXPECT_TRUE(s.is_agg(p.hops[1]));
  EXPECT_EQ(p.hops[2], s.tor_id(0, 7));
}

}  // namespace
}  // namespace esim::net
