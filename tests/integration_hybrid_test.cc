// Integration tests for the hybrid (approximate) simulator: mechanics with
// hand-tuned models, and the full train-then-replace pipeline.
#include <gtest/gtest.h>

#include "core/conflict.h"
#include "core/experiment.h"
#include "core/hybrid_builder.h"
#include "stats/distance.h"

namespace esim::core {
namespace {

using approx::MicroModel;
using sim::SimTime;
using sim::Simulator;

TEST(DeliverySerializer, GrantsDesiredWhenFree) {
  DeliverySerializer s{10e9};
  const auto t = s.reserve(SimTime::from_us(10), 1250);
  EXPECT_EQ(t, SimTime::from_us(10));
  // 1250 B at 10 Gbps = 1 us busy.
  EXPECT_EQ(s.next_free(), SimTime::from_us(11));
}

TEST(DeliverySerializer, PushesConflictsToNextSlot) {
  DeliverySerializer s{10e9};
  const auto a = s.reserve(SimTime::from_us(10), 1250);
  const auto b = s.reserve(SimTime::from_us(10), 1250);  // same instant
  EXPECT_EQ(a, SimTime::from_us(10));
  EXPECT_EQ(b, SimTime::from_us(11));  // first processed wins (paper §4.2)
  const auto c = s.reserve(SimTime::from_us(100), 1250);
  EXPECT_EQ(c, SimTime::from_us(100));  // gap: no shift
}

TEST(DeliverySerializer, ResetClears) {
  DeliverySerializer s{10e9};
  s.reserve(SimTime::from_us(10), 12500);
  s.reset();
  EXPECT_EQ(s.reserve(SimTime::from_us(1), 125), SimTime::from_us(1));
  EXPECT_THROW(DeliverySerializer{0.0}, std::invalid_argument);
}

net::ClosSpec spec_with_clusters(std::uint32_t clusters) {
  net::ClosSpec s;
  s.clusters = clusters;
  s.tors_per_cluster = 2;
  s.aggs_per_cluster = 2;
  s.hosts_per_tor = 4;
  s.cores = 2;
  return s;
}

/// A model rigged to never drop and always predict ~`latency_us`.
MicroModel make_benign_model(double latency_us) {
  MicroModel::Config cfg;
  cfg.hidden = 4;
  cfg.layers = 1;
  MicroModel m{cfg};
  m.drop_head().weight().zero();
  m.drop_head().bias().at(0, 0) = -20.0;  // p(drop) ~ 0
  m.latency_head().weight().zero();
  m.latency_head().bias().at(0, 0) = 0.0;
  m.set_latency_normalization(std::log(latency_us), 1.0);
  return m;
}

TEST(HybridBuilder, WiresComponents) {
  Simulator sim{1};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(4);
  const auto ingress = make_benign_model(8.0);
  const auto egress = make_benign_model(8.0);
  const auto net = build_hybrid_network(sim, cfg, ingress, egress);
  EXPECT_EQ(net.hosts.size(), 32u);
  // Full cluster switches + cores exist; approximated ones do not.
  EXPECT_NE(net.switches[net.spec.tor_id(0, 0)], nullptr);
  EXPECT_EQ(net.switches[net.spec.tor_id(1, 0)], nullptr);
  EXPECT_NE(net.switches[net.spec.core_id(0)], nullptr);
  EXPECT_EQ(net.clusters[0], nullptr);
  for (std::uint32_t c = 1; c < 4; ++c) {
    ASSERT_NE(net.clusters[c], nullptr);
  }
  // Every host has an uplink (full hosts to ToRs, others to the models).
  for (auto* link : net.host_uplinks) EXPECT_NE(link, nullptr);
  EXPECT_TRUE(net.is_full_fidelity(0));
  EXPECT_FALSE(net.is_full_fidelity(9));
}

TEST(HybridBuilder, RejectsBadConfig) {
  Simulator sim{1};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  cfg.full_cluster = 5;
  const auto m = make_benign_model(8.0);
  EXPECT_THROW(build_hybrid_network(sim, cfg, m, m), std::invalid_argument);
}

TEST(HybridNetwork, FlowFullToApproxCompletes) {
  Simulator sim{2};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  const auto ingress = make_benign_model(8.0);
  const auto egress = make_benign_model(8.0);
  auto net = build_hybrid_network(sim, cfg, ingress, egress);
  bool complete = false;
  sim.schedule_at(SimTime::from_us(10), [&] {
    auto* c = net.hosts[0]->open_flow(12, 50'000, 1);  // into approx cluster
    c->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_ms(100));
  EXPECT_TRUE(complete);
  EXPECT_GT(net.clusters[1]->stats().ingress_packets, 20u);
  EXPECT_GT(net.clusters[1]->stats().egress_packets, 20u);  // ACKs back
}

TEST(HybridNetwork, FlowApproxToFullCompletes) {
  Simulator sim{3};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  const auto ingress = make_benign_model(8.0);
  const auto egress = make_benign_model(8.0);
  auto net = build_hybrid_network(sim, cfg, ingress, egress);
  bool complete = false;
  std::uint64_t received = 0;
  net.hosts[3]->on_accept = [&](tcp::TcpConnection& c) {
    c.on_data = [&](std::uint64_t d) { received += d; };
  };
  sim.schedule_at(SimTime::from_us(10), [&] {
    auto* c = net.hosts[10]->open_flow(3, 30'000, 1);
    c->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_ms(100));
  EXPECT_TRUE(complete);
  EXPECT_EQ(received, 30'000u);
}

TEST(HybridNetwork, RttReflectsModelLatency) {
  // With a rigged 50us fabric model, the RTT through the approximated
  // cluster must be roughly 2*50us + wire/serialization overheads.
  Simulator sim{4};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  const auto ingress = make_benign_model(50.0);
  const auto egress = make_benign_model(50.0);
  auto net = build_hybrid_network(sim, cfg, ingress, egress);
  stats::LatencyCollector rtt;
  net.hosts[0]->set_rtt_collector(&rtt);
  sim.schedule_at(SimTime::from_us(10),
                  [&] { net.hosts[0]->open_flow(12, 20'000, 1); });
  sim.run_until(SimTime::from_ms(100));
  ASSERT_GT(rtt.summary().count(), 5u);
  EXPECT_GT(rtt.summary().min(), 100e-6);   // 2 model traversals
  EXPECT_LT(rtt.summary().min(), 200e-6);   // plus bounded overheads
}

TEST(HybridNetwork, DroppyModelForcesRetransmissions) {
  Simulator sim{5};
  HybridConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  const auto ingress = [&] {
    MicroModel m = make_benign_model(8.0);
    m.drop_head().bias().at(0, 0) = -2.0;  // ~12% drop probability
    return m;
  }();
  const auto egress = make_benign_model(8.0);
  auto net = build_hybrid_network(sim, cfg, ingress, egress);
  tcp::TcpConnection* conn = nullptr;
  bool complete = false;
  sim.schedule_at(SimTime::from_us(10), [&] {
    conn = net.hosts[0]->open_flow(12, 100'000, 1);
    conn->on_complete = [&] { complete = true; };
  });
  sim.run_until(SimTime::from_sec(5));
  EXPECT_TRUE(complete);  // TCP rides through model-predicted drops
  ASSERT_NE(conn, nullptr);
  EXPECT_GT(conn->stats().retransmissions, 0u);
  EXPECT_GT(net.clusters[1]->stats().predicted_drops, 0u);
}

TEST(HybridNetwork, ElisionFilterKeepsApproxOnlyTrafficOut) {
  // With 4 clusters, flows between approximated clusters are elided; the
  // ApproxClusters then only ever see traffic touching cluster 0.
  ExperimentConfig cfg;
  cfg.net.spec = spec_with_clusters(4);
  cfg.duration = SimTime::from_ms(10);
  cfg.load = 0.2;
  TrainedModels models;
  models.ingress =
      std::make_unique<MicroModel>(make_benign_model(8.0));
  models.egress = std::make_unique<MicroModel>(make_benign_model(8.0));
  const auto result = run_hybrid_simulation(cfg, cfg.net.spec, models);
  EXPECT_GT(result.flows_launched, 0u);
  EXPECT_GT(result.flows_completed, 0u);
  // intra_packets counts approx-intra deliveries; elision keeps it at 0.
  EXPECT_EQ(result.approx_stats.intra_packets, 0u);
}

TEST(Pipeline, TrainThenApproximateEndToEnd) {
  // The complete paper workflow at miniature scale. Checks that the
  // trained hybrid produces (a) completing flows, (b) an RTT CDF in the
  // groundtruth's ballpark (Figure 4's qualitative claim), and (c) fewer
  // events than the full simulation (the mechanism behind Figure 5).
  ExperimentConfig cfg;
  cfg.net.spec = spec_with_clusters(2);
  cfg.duration = SimTime::from_ms(15);
  cfg.train_duration = SimTime::from_ms(15);
  cfg.load = 0.25;
  cfg.model.hidden = 8;
  cfg.model.layers = 1;
  cfg.train.batches = 60;
  cfg.train.batch_size = 16;
  cfg.train.seq_len = 16;
  cfg.train.learning_rate = 5e-3;

  const auto models = train_cluster_models(cfg);
  EXPECT_GT(models.boundary_records, 100u);
  EXPECT_LT(models.ingress_report.final_loss,
            models.ingress_report.initial_loss);
  EXPECT_LT(models.egress_report.final_loss,
            models.egress_report.initial_loss);

  const auto full = run_full_simulation(cfg, cfg.net.spec);
  const auto hybrid = run_hybrid_simulation(cfg, cfg.net.spec, models);

  EXPECT_GT(full.flows_completed, 10u);
  EXPECT_GT(hybrid.flows_completed, 10u);
  ASSERT_GT(full.rtt_cdf.size(), 50u);
  ASSERT_GT(hybrid.rtt_cdf.size(), 50u);

  // Distributional agreement: medians within an order of magnitude and a
  // bounded KS distance (the paper's own prototype "consistently
  // underestimates congestion" — exactness is not the claim).
  const double med_full = full.rtt_cdf.quantile(0.5);
  const double med_hybrid = hybrid.rtt_cdf.quantile(0.5);
  EXPECT_LT(med_hybrid, med_full * 10);
  EXPECT_GT(med_hybrid, med_full / 10);
  EXPECT_LT(stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf), 0.7);

  // The approximate simulation does strictly less event work.
  EXPECT_LT(hybrid.events_executed, full.events_executed);
}

}  // namespace
}  // namespace esim::core
