// Integration tests: TCP over a leaf-spine partitioned across PDES
// partitions (the substrate of the Figure 1 experiment).
#include <gtest/gtest.h>

#include <atomic>

#include "core/pdes_builder.h"
#include "workload/generator.h"

namespace esim::core {
namespace {

using sim::ParallelEngine;
using sim::SimTime;

NetworkConfig leaf_spine(std::uint32_t tors, std::uint32_t spines,
                         std::uint32_t hosts_per_tor = 4) {
  NetworkConfig cfg;
  cfg.spec.clusters = 1;
  cfg.spec.tors_per_cluster = tors;
  cfg.spec.aggs_per_cluster = spines;
  cfg.spec.hosts_per_tor = hosts_per_tor;
  cfg.spec.cores = 0;
  return cfg;
}

ParallelEngine::Config engine_config(std::uint32_t partitions) {
  ParallelEngine::Config cfg;
  cfg.num_partitions = partitions;
  cfg.lookahead = SimTime::from_us(1);  // = link propagation
  cfg.seed = 3;
  return cfg;
}

TEST(PdesBuilder, PlacesAndWires) {
  ParallelEngine engine{engine_config(2)};
  const auto net = build_leaf_spine_partitioned(engine, leaf_spine(4, 4));
  EXPECT_EQ(net.hosts.size(), 16u);
  EXPECT_EQ(net.switches.size(), 8u);
  for (auto* h : net.hosts) ASSERT_NE(h, nullptr);
  for (auto* s : net.switches) ASSERT_NE(s, nullptr);
  // Placement comes from the plan; both partitions must be used and host
  // placement must follow the rack.
  EXPECT_EQ(net.partition_of_switch, net.plan.partition_of_switch);
  std::vector<std::uint32_t> used(2, 0);
  for (const auto p : net.partition_of_switch) {
    ASSERT_LT(p, 2u);
    ++used[p];
  }
  EXPECT_GT(used[0], 0u);
  EXPECT_GT(used[1], 0u);
  for (net::HostId h = 0; h < net.spec.total_hosts(); ++h) {
    EXPECT_EQ(net.partition_of_host[h],
              net.partition_of_switch[net.spec.tor_of_host(h)]);
  }
  // The wired cross-link count is exactly the plan's reported cut. On a
  // leaf-spine every balanced placement cuts half the 4x4x2 fabric links.
  EXPECT_EQ(net.cross_partition_links, net.plan.cut_links);
  EXPECT_EQ(net.plan.total_links, 32u);
  EXPECT_EQ(net.cross_partition_links, 16u);
}

TEST(PdesBuilder, RoundRobinPolicyMatchesLegacyPlacement) {
  ParallelEngine engine{engine_config(2)};
  const auto net = build_leaf_spine_partitioned(
      engine, leaf_spine(4, 4), PlacementPolicy::round_robin);
  // Legacy layout: rack r -> partition r % P, spines keep rotating.
  EXPECT_EQ(net.partition_of_switch[0], 0u);
  EXPECT_EQ(net.partition_of_switch[1], 1u);
  EXPECT_EQ(net.partition_of_host[0], 0u);
  EXPECT_EQ(net.partition_of_host[4], 1u);
  EXPECT_EQ(net.cross_partition_links, 16u);
}

TEST(PdesBuilder, GraphCutColocatesClustersOnFatTree) {
  // 4-cluster Clos over 4 partitions: graph-cut keeps each cluster whole
  // (only agg<->core links can cross), while round-robin shreds every
  // cluster across every partition.
  NetworkConfig cfg;
  cfg.spec.clusters = 4;
  cfg.spec.tors_per_cluster = 4;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 2;
  cfg.spec.cores = 2;

  ParallelEngine cut_engine{engine_config(4)};
  const auto cut =
      build_clos_partitioned(cut_engine, cfg, PlacementPolicy::graph_cut);
  ParallelEngine rr_engine{engine_config(4)};
  const auto rr =
      build_clos_partitioned(rr_engine, cfg, PlacementPolicy::round_robin);

  EXPECT_LT(cut.plan.cut_links, rr.plan.cut_links);
  // Every cluster's switches share one partition under graph-cut.
  for (std::uint32_t c = 0; c < cfg.spec.clusters; ++c) {
    const auto p = cut.partition_of_switch[cfg.spec.tor_id(c, 0)];
    for (std::uint32_t t = 0; t < cfg.spec.tors_per_cluster; ++t) {
      EXPECT_EQ(cut.partition_of_switch[cfg.spec.tor_id(c, t)], p);
    }
    for (std::uint32_t a = 0; a < cfg.spec.aggs_per_cluster; ++a) {
      EXPECT_EQ(cut.partition_of_switch[cfg.spec.agg_id(c, a)], p);
    }
  }
}

TEST(PdesBuilder, RejectsNonLeafSpine) {
  ParallelEngine engine{engine_config(2)};
  NetworkConfig cfg;
  cfg.spec.clusters = 2;  // 3-layer Clos: not supported here
  EXPECT_THROW(build_leaf_spine_partitioned(engine, cfg),
               std::invalid_argument);
}

TEST(PdesBuilder, RejectsExcessiveLookahead) {
  auto ecfg = engine_config(2);
  ecfg.lookahead = SimTime::from_us(50);  // > 1us propagation
  ParallelEngine engine{ecfg};
  EXPECT_THROW(build_leaf_spine_partitioned(engine, leaf_spine(2, 2)),
               std::invalid_argument);
}

TEST(PdesNetwork, CrossPartitionFlowCompletes) {
  ParallelEngine engine{engine_config(2)};
  auto net = build_leaf_spine_partitioned(engine, leaf_spine(2, 2));
  // Host 0 lives in partition 0, host 4 (rack 1) in partition 1.
  std::atomic<bool> complete{false};
  auto& sim0 = engine.partition(0).sim();
  sim0.schedule_at(SimTime::from_us(10), [&] {
    auto* c = net.hosts[0]->open_flow(4, 50'000, 1);
    c->on_complete = [&] { complete.store(true); };
  });
  engine.run_until(SimTime::from_ms(100));
  EXPECT_TRUE(complete.load());
  EXPECT_GT(engine.stats().cross_messages, 50u);
  EXPECT_GT(engine.stats().sync_rounds, 20u);
}

TEST(PdesNetwork, ManyFlowsAcrossFourPartitions) {
  ParallelEngine engine{engine_config(4)};
  auto net = build_leaf_spine_partitioned(engine, leaf_spine(8, 8));
  // One flow per partition, each sourced from a host that partition owns
  // (looked up via the plan, not assumed from legacy placement).
  std::vector<net::HostId> src_of_partition(4, net::HostId{0});
  std::vector<bool> found(4, false);
  for (net::HostId h = 0; h < net.spec.total_hosts(); ++h) {
    const std::uint32_t p = net.partition_of_host[h];
    if (!found[p]) {
      src_of_partition[p] = h;
      found[p] = true;
    }
  }
  std::atomic<int> completions{0};
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(found[p]) << "partition " << p << " owns no host";
    auto& psim = engine.partition(p).sim();
    const net::HostId src = src_of_partition[p];
    psim.schedule_at(SimTime::from_us(10 + p), [&net, &completions, src, p] {
      // Send to the next rack over (always a different ToR).
      const net::HostId dst =
          (src + net.spec.hosts_per_tor) % net.spec.total_hosts();
      auto* c = net.hosts[src]->open_flow(dst, 20'000,
                                          static_cast<std::uint64_t>(p));
      c->on_complete = [&completions] { completions.fetch_add(1); };
    });
  }
  engine.run_until(SimTime::from_ms(100));
  EXPECT_EQ(completions.load(), 4);
}

TEST(PdesNetwork, FatTreeCrossClusterFlowMatchesSequential) {
  // A cross-cluster flow on a 2-cluster Clos partitioned over 2 engines
  // must behave exactly as in the sequential full build.
  NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.tors_per_cluster = 2;
  cfg.spec.aggs_per_cluster = 2;
  cfg.spec.hosts_per_tor = 2;
  cfg.spec.cores = 2;
  const net::HostId src = 0;
  const net::HostId dst = cfg.spec.hosts_per_cluster();  // first host, c1

  auto run_pdes = [&] {
    ParallelEngine engine{engine_config(2)};
    auto net = build_clos_partitioned(engine, cfg);
    tcp::TcpConnection* conn = nullptr;
    auto& ssim = engine.partition(net.partition_of_host[src]).sim();
    ssim.schedule_at(SimTime::from_us(10),
                     [&] { conn = net.hosts[src]->open_flow(dst, 60'000, 1); });
    engine.run_until(SimTime::from_ms(100));
    return conn->stats().segments_sent;
  };
  auto run_seq = [&] {
    sim::Simulator sim{3};
    auto net = build_full_network(sim, cfg);
    tcp::TcpConnection* conn = nullptr;
    sim.schedule_at(SimTime::from_us(10),
                    [&] { conn = net.hosts[src]->open_flow(dst, 60'000, 1); });
    sim.run_until(SimTime::from_ms(100));
    return conn->stats().segments_sent;
  };
  const auto pdes_segments = run_pdes();
  EXPECT_GT(pdes_segments, 0u);
  EXPECT_EQ(pdes_segments, run_seq());
}

TEST(PdesNetwork, MatchesSingleThreadedFlowOutcome) {
  // The same single flow on the same topology must complete with the same
  // number of segments under PDES as under the sequential engine
  // (deterministic TCP, no contention).
  auto run_pdes = [] {
    ParallelEngine engine{engine_config(2)};
    auto net = build_leaf_spine_partitioned(engine, leaf_spine(2, 2));
    std::atomic<std::uint64_t> segments{0};
    auto& sim0 = engine.partition(0).sim();
    tcp::TcpConnection* conn = nullptr;
    sim0.schedule_at(SimTime::from_us(10), [&] {
      conn = net.hosts[0]->open_flow(4, 100'000, 1);
    });
    engine.run_until(SimTime::from_ms(100));
    segments = conn->stats().segments_sent;
    return segments.load();
  };
  auto run_seq = [] {
    sim::Simulator sim{3};  // partition 0 seed in the parallel engine
    auto net = build_full_network(sim, leaf_spine(2, 2));
    tcp::TcpConnection* conn = nullptr;
    sim.schedule_at(SimTime::from_us(10),
                    [&] { conn = net.hosts[0]->open_flow(4, 100'000, 1); });
    sim.run_until(SimTime::from_ms(100));
    return conn->stats().segments_sent;
  };
  EXPECT_EQ(run_pdes(), run_seq());
}

TEST(PdesNetwork, PerPartitionGeneratorsDriveLoad) {
  ParallelEngine engine{engine_config(2)};
  auto net = build_leaf_spine_partitioned(engine, leaf_spine(4, 4));
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  std::vector<workload::TrafficGenerator*> gens;
  for (std::uint32_t p = 0; p < 2; ++p) {
    auto& psim = engine.partition(p).sim();
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = 0.2;
    gcfg.stop_at = SimTime::from_ms(5);
    auto* gen = psim.add_component<workload::TrafficGenerator>(
        "gen" + std::to_string(p), net.hosts, sizes.get(), &matrix, gcfg);
    gen->admission_filter = [&net, p](net::HostId src, net::HostId) {
      return net.partition_of_host[src] == p;
    };
    gen->start();
    gens.push_back(gen);
  }
  engine.run_until(SimTime::from_ms(60));
  std::uint64_t launched = 0, completed = 0;
  for (auto* g : gens) {
    launched += g->launched();
    completed += g->flows().completed_count();
    EXPECT_GT(g->suppressed(), 0u);  // filter active
  }
  EXPECT_GT(launched, 20u);
  EXPECT_GT(completed, launched * 3 / 4);
}

}  // namespace
}  // namespace esim::core
