// ESIM_LOG contract: when the level is disabled, the message expression is
// never evaluated, so a call site allocates nothing — cheap enough to
// leave in packet-rate hot paths. Verified with a counting global
// operator new.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/logger.h"
#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace esim::sim {
namespace {

class Chatty : public Component {
 public:
  Chatty(Simulator& sim, std::string name) : Component(sim, std::move(name)) {}

  void say(LogLevel level, int i) {
    ESIM_LOG(*this, level,
             "expensive message " + std::to_string(i) +
                 " that would allocate if built");
  }
};

TEST(EsimLog, DisabledLevelEvaluatesAndAllocatesNothing) {
  Simulator sim{1};
  auto* c = sim.add_component<Chatty>("chatty");
  sim.logger().set_level(LogLevel::Warn);  // the default

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) c->say(LogLevel::Debug, i);
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(EsimLog, EnabledLevelReachesTheSink) {
  Simulator sim{1};
  auto* c = sim.add_component<Chatty>("chatty");
  std::vector<std::string> lines;
  sim.logger().set_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  sim.logger().set_level(LogLevel::Debug);
  c->say(LogLevel::Debug, 7);
  sim.logger().set_level(LogLevel::Warn);
  c->say(LogLevel::Debug, 8);  // suppressed again
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("expensive message 7"), std::string::npos);
  EXPECT_NE(lines[0].find("chatty"), std::string::npos);
  sim.logger().set_sink({});
}

}  // namespace
}  // namespace esim::sim
