// Phase-memoization bench (DESIGN.md §13): what does recording a periodic
// workload's phase delta once and fast-forwarding over verified repeats
// buy, and is the fast-forward really invisible?
//
// Two sections, one acceptance gate:
//
//   A. Speedup in the aggregate (speedup) mode: an ML-training-style
//      workload — the same ring-allreduce flight of flows injected every
//      period, for hundreds of iterations — run memo-off and memo-on,
//      sequentially and under PDES(2). The memo runner records the first
//      occurrence live, then every verified repeat applies the cached
//      counter/identity delta and jumps virtual time past the phase.
//      Acceptance: sequential memo-on >= 10x the memo-off wall clock with
//      a bit-identical final-state fingerprint.
//
//   B. Equivalence in the digest-attached mode: a shorter run of the same
//      workload with the full StateDigest attached, memo-on vs memo-off.
//      Replayed pop/packet/completion streams must leave the digest —
//      order lane included — bit-identical. This is the bench-sized
//      mirror of the DiffCheck.MemoFuzz CTest gate.
//
// Output schema (BENCH_memo.json) is documented in EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <string>
#include <tuple>

#include "bench_common.h"
#include "check/scenario.h"
#include "core/run_report.h"
#include "memo/memo_diff.h"
#include "memo/memo_runner.h"
#include "telemetry/report.h"

namespace {

using namespace esim;  // NOLINT

// One training iteration: a ring-allreduce flight — every host streams a
// gradient chunk to its ring successor — plus a small parameter broadcast
// from host 0. Folded by make_periodic into a PhasePattern repeated
// `phases` times, with host-pair ECMP so repeated iterations are
// path-identical despite fresh ephemeral ports.
memo::PeriodicScenario training_workload(std::uint32_t phases,
                                         std::int64_t period_ns) {
  check::Scenario base;
  base.seed = 2018;
  base.tors = 2;
  base.spines = 2;
  base.hosts_per_tor = 4;
  base.queue_bytes = 150'000;
  base.tcp = check::TcpVariant::NewReno;
  const std::uint32_t hosts = base.total_hosts();
  std::uint64_t id = 1;
  for (std::uint32_t h = 0; h < hosts; ++h) {
    check::FlowSpec f;
    f.src = h;
    f.dst = (h + 1) % hosts;
    f.bytes = 30'000 + 2'000 * (h % 3);  // uneven shards, same every phase
    f.start_ns = 5'000 + 1'000 * static_cast<std::int64_t>(h);
    f.flow_id = id++;
    base.flows.push_back(f);
  }
  for (std::uint32_t h = 1; h < hosts; h += 3) {  // parameter broadcast
    check::FlowSpec f;
    f.src = 0;
    f.dst = h;
    f.bytes = 8'000;
    f.start_ns = 400'000 + 1'000 * static_cast<std::int64_t>(h);
    f.flow_id = id++;
    base.flows.push_back(f);
  }
  base.duration_ns = period_ns;
  return memo::make_periodic(base, phases, period_ns);
}

struct TimedRun {
  memo::MemoRunOutcome out;
  double wall = 0.0;
};

TimedRun timed_run(const memo::PeriodicScenario& ps,
                   const check::EngineSpec& engine, bool memo_enabled,
                   bool with_digest) {
  memo::MemoConfig cfg;
  cfg.enabled = memo_enabled;
  memo::MemoRunner runner{cfg};
  TimedRun r;
  const auto start = std::chrono::steady_clock::now();
  r.out = runner.run(ps.scenario, ps.pattern, engine, with_digest);
  r.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

core::MemoSectionData memo_section(const memo::MemoRunOutcome& out,
                                   bool enabled) {
  core::MemoSectionData d;
  d.enabled = enabled;
  d.lookups = out.stats.lookups;
  d.hits = out.stats.hits;
  d.misses = out.stats.misses;
  d.near_misses = out.stats.near_misses;
  d.stores = out.stats.stores;
  d.store_aborts = out.stats.store_aborts;
  d.evictions = out.stats.evictions;
  d.entries = out.cache_entries;
  d.bytes = out.cache_bytes;
  d.fast_forwarded_phases = out.stats.fast_forwarded_phases;
  d.fast_forwarded_ns = out.stats.fast_forwarded_ns;
  return d;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  bench::print_header(
      "bench_memo",
      "phase memoization: fast-forward speedup on a periodic training "
      "workload, digest-invisible replay");

  telemetry::RunReport report{"bench_memo"};
  bool ok = true;

  // ---- Section A: aggregate-mode speedup ----
  const std::uint32_t phases = quick ? 60 : 240;
  const std::int64_t period_ns = 2'000'000;
  const auto ps = training_workload(phases, period_ns);
  std::printf("[A] %u phases x %lld ns, %zu flows/phase, %u hosts\n", phases,
              static_cast<long long>(period_ns), ps.pattern.pattern.size(),
              ps.scenario.total_hosts());
  report.set("workload.phases", static_cast<std::uint64_t>(phases));
  report.set("workload.period_ns", period_ns);
  report.set("workload.flows_per_phase",
             static_cast<std::uint64_t>(ps.pattern.pattern.size()));
  report.set("workload.hosts",
             static_cast<std::uint64_t>(ps.scenario.total_hosts()));

  std::printf("%-18s %10s %12s %8s %8s %10s\n", "run", "wall_s", "final_fp",
              "hits", "misses", "ff_phases");
  double seq_speedup = 0.0;
  for (const std::uint32_t parts : {0u, 2u}) {
    const check::EngineSpec eng{parts, false};
    const std::string label = parts == 0 ? "seq" : "pdes" + std::to_string(parts);
    const TimedRun off = timed_run(ps, eng, /*memo=*/false, /*digest=*/false);
    const TimedRun on = timed_run(ps, eng, /*memo=*/true, /*digest=*/false);
    const double speedup = on.wall > 0 ? off.wall / on.wall : 0.0;
    const bool fp_equal = on.out.final_state_fp == off.out.final_state_fp &&
                          on.out.flows_completed == off.out.flows_completed;
    for (const auto& [name, r, enabled] :
         {std::tuple{label + ".memo_off", &off, false},
          std::tuple{label + ".memo_on", &on, true}}) {
      std::printf("%-18s %10.3f %12llx %8llu %8llu %10llu\n", name.c_str(),
                  r->wall,
                  static_cast<unsigned long long>(r->out.final_state_fp),
                  static_cast<unsigned long long>(r->out.stats.hits),
                  static_cast<unsigned long long>(r->out.stats.misses),
                  static_cast<unsigned long long>(
                      r->out.stats.fast_forwarded_phases));
      const std::string key = "aggregate." + name;
      report.set(key + ".wall_seconds", r->wall);
      report.set(key + ".final_state_fp", r->out.final_state_fp);
      report.set(key + ".flows_completed", r->out.flows_completed);
      core::add_memo_section(report, memo_section(r->out, enabled),
                             key + ".memo");
    }
    std::printf("%s: %.1fx speedup, final state %s\n", label.c_str(), speedup,
                fp_equal ? "identical" : "DIVERGED");
    report.set("aggregate." + label + ".speedup", speedup);
    report.set("aggregate." + label + ".final_state_identical", fp_equal);
    if (parts == 0) seq_speedup = speedup;
    if (!fp_equal) {
      std::printf("FAIL: %s memo-on landed on a different final state\n",
                  label.c_str());
      ok = false;
    }
    if (on.out.stats.hits == 0) {
      std::printf("FAIL: %s memo-on produced zero cache hits\n", label.c_str());
      ok = false;
    }
  }
  report.set("aggregate.speedup_target", 10.0);
  report.set("aggregate.speedup_target_met", seq_speedup >= 10.0);
  if (seq_speedup < 10.0) {
    std::printf("FAIL: sequential speedup %.1fx under the 10x target\n",
                seq_speedup);
    ok = false;
  }

  // ---- Section B: digest-attached replay equivalence ----
  const auto ps_digest = training_workload(quick ? 8 : 24, period_ns);
  std::printf("\n[B] digest-attached, %u phases\n",
              quick ? 8u : 24u);
  for (const std::uint32_t parts : {0u, 2u}) {
    const check::EngineSpec eng{parts, false};
    const std::string label = parts == 0 ? "seq" : "pdes" + std::to_string(parts);
    const TimedRun off = timed_run(ps_digest, eng, /*memo=*/false,
                                   /*digest=*/true);
    const TimedRun on = timed_run(ps_digest, eng, /*memo=*/true,
                                  /*digest=*/true);
    const bool equal = on.out.digest == off.out.digest &&
                       on.out.flows_completed == off.out.flows_completed;
    std::printf("%-8s digest %s, %llu hits\n", label.c_str(),
                equal ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(on.out.stats.hits));
    report.set("digest." + label + ".identical", equal);
    report.set("digest." + label + ".hits", on.out.stats.hits);
    if (!equal || on.out.stats.hits == 0) {
      std::printf("FAIL: %s digest replay %s\n", label.c_str(),
                  equal ? "never hit the cache" : "diverged");
      ok = false;
    }
  }

  report.set("pass", ok);
  report.write("BENCH_memo.json");
  std::printf("wrote BENCH_memo.json\n");
  bench::print_note(
      "the speedup ceiling is phases/2: the rolling-summary signature "
      "misses on the first two phases, then every repeat fast-forwards");
  return ok ? 0 : 1;
}
