// PDES scale-out: events/s and sync-wait fraction vs partition count on a
// synthetic multi-cluster fat-tree, comparing the pre-existing engine
// configuration (global YAWNS window + rack-round-robin placement) against
// the scale-out path (per-pair lookahead windows + graph-cut placement +
// SPSC cross-partition rings).
//
// The topology gives the partitioner something to exploit: intra-cluster
// links are short (1us) while agg<->core runs are long (8us). Round-robin
// placement cuts short links, pinning every window to 1us; graph-cut keeps
// clusters whole so only the long links cross, and per-pair windows open
// up to the 8us (and, between non-adjacent partitions, 16us+) horizon.
// Every configuration below stays digest-identical to the sequential
// engine — `esim_diffcheck fuzz` gates exactly this engine/builder path.
//
// All runs use deterministic overhead accounting (no wall spinning), so
// events/s measures engine work, not a modeled MPI stall. On a single-core
// host the speedup comes from fewer barrier rounds and cheaper drains, not
// thread parallelism; sync-wait fraction (barrier wall time summed over
// workers / (P * wall)) shows where the remaining time goes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pdes_builder.h"
#include "sim/parallel.h"
#include "telemetry/report.h"
#include "workload/generator.h"

namespace {

using namespace esim;  // NOLINT
using core::NetworkConfig;
using core::PlacementPolicy;
using sim::ParallelEngine;
using sim::SimTime;

// Weak-scaling sweep: the fat-tree grows with the partition count
// (clusters = max(8, P)), holding per-partition event work roughly
// constant so the curve isolates synchronization cost rather than
// work-per-thread dilution. tors_per_cluster deliberately exceeds cores
// so each agg has more intra-cluster than core links — otherwise min-cut
// refinement correctly (but unhelpfully for this sweep) drags aggs into
// the cores' partition and leaves 1us ToR-agg links crossing.
NetworkConfig fat_tree(std::uint32_t clusters) {
  NetworkConfig cfg;
  cfg.spec.clusters = clusters;
  cfg.spec.tors_per_cluster = 8;
  cfg.spec.aggs_per_cluster = 4;
  cfg.spec.hosts_per_tor = 2;
  cfg.spec.cores = 4;
  // Long inter-cluster runs: the links a cut-minimizing placement leaves
  // crossing carry 8x the lookahead of the intra-cluster fabric.
  cfg.core_link = cfg.fabric_link;
  cfg.core_link->propagation = sim::SimTime::from_us(8);
  return cfg;
}

struct Point {
  double events_per_sec = 0;
  double sync_wait_fraction = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t cut_links = 0;
};

Point run_point(std::uint32_t partitions, std::uint32_t clusters,
                bool scale_out, double load, SimTime duration) {
  ParallelEngine::Config ecfg;
  ecfg.num_partitions = partitions;
  ecfg.lookahead = SimTime::from_us(1);
  ecfg.seed = 17;
  ecfg.deterministic_overhead = true;
  ecfg.window_mode = scale_out ? ParallelEngine::WindowMode::per_pair
                               : ParallelEngine::WindowMode::global;
  ParallelEngine engine{ecfg};

  auto net = core::build_clos_partitioned(
      engine, fat_tree(clusters),
      scale_out ? PlacementPolicy::graph_cut : PlacementPolicy::round_robin);

  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  for (std::uint32_t p = 0; p < partitions; ++p) {
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = load;
    gcfg.stop_at = duration;
    auto* gen =
        engine.partition(p).sim().add_component<workload::TrafficGenerator>(
            "gen" + std::to_string(p), net.hosts, sizes.get(), &matrix, gcfg);
    gen->admission_filter = [&net, p](net::HostId src, net::HostId) {
      return net.partition_of_host[src] == p;
    };
    gen->start();
  }

  const auto start = std::chrono::steady_clock::now();
  engine.run_until(duration);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Point pt;
  pt.events = engine.stats().events_executed;
  pt.rounds = engine.stats().sync_rounds;
  pt.cross_messages = engine.stats().cross_messages;
  pt.cut_links = net.plan.cut_links;
  pt.events_per_sec = wall > 0 ? static_cast<double>(pt.events) / wall : 0;
  pt.sync_wait_fraction =
      wall > 0 ? engine.stats().sync_wait_seconds / (partitions * wall) : 0;
  return pt;
}

}  // namespace

int main() {
  bench::print_header(
      "PDES scale-out",
      "events/s vs partitions: global+round-robin baseline vs "
      "per-pair+graph-cut");

  const double load = 0.025;
  const double duration_ms = bench::quick_mode() ? 0.25 : 1.0;
  const int reps = bench::quick_mode() ? 1 : 2;
  const auto duration = SimTime::from_seconds_f(duration_ms / 1e3);
  std::vector<std::uint32_t> partition_counts{1, 2, 4, 8, 16, 32, 64};
  if (bench::quick_mode()) partition_counts = {1, 2, 4, 8};

  telemetry::RunReport report{"pdes_scaling"};
  report.set("bench", "pdes_scaling");
  report.set("load", load);
  report.set("duration_ms", duration_ms);
  report.set("topology",
             "clos cmax(8,P) t8 a4 h2 cores4, core links 8us (weak scaling)");

  std::printf("%-6s %-28s %-28s %-8s\n", "P",
              "baseline ev/s (sync%, rounds)",
              "scale-out ev/s (sync%, rounds)", "speedup");
  // Best-of-N per configuration: on a shared host a single rep can eat an
  // unlucky scheduling quantum; the fastest rep is the least-disturbed
  // measurement of the engine itself.
  auto best_point = [&](std::uint32_t P, std::uint32_t clusters,
                        bool scale_out) {
    Point best = run_point(P, clusters, scale_out, load, duration);
    for (int r = 1; r < reps; ++r) {
      const Point pt = run_point(P, clusters, scale_out, load, duration);
      if (pt.events_per_sec > best.events_per_sec) best = pt;
    }
    return best;
  };

  for (const auto P : partition_counts) {
    const std::uint32_t clusters = std::max<std::uint32_t>(8, P);
    const auto base = best_point(P, clusters, /*scale_out=*/false);
    const auto fast = best_point(P, clusters, /*scale_out=*/true);
    const double speedup = base.events_per_sec > 0
                               ? fast.events_per_sec / base.events_per_sec
                               : 0;
    std::printf("%-6u %-10.4g (%4.1f%%, %7llu) %-10.4g (%4.1f%%, %7llu) %-8.3g\n",
                P, base.events_per_sec, 100 * base.sync_wait_fraction,
                static_cast<unsigned long long>(base.rounds),
                fast.events_per_sec, 100 * fast.sync_wait_fraction,
                static_cast<unsigned long long>(fast.rounds), speedup);
    std::fflush(stdout);

    const std::string row = "p" + std::to_string(P);
    report.set(row + ".baseline.events_per_sec", base.events_per_sec);
    report.set(row + ".baseline.sync_wait_fraction", base.sync_wait_fraction);
    report.set(row + ".baseline.sync_rounds", base.rounds);
    report.set(row + ".baseline.cross_messages", base.cross_messages);
    report.set(row + ".baseline.cut_links", base.cut_links);
    report.set(row + ".baseline.events", base.events);
    report.set(row + ".scale_out.events_per_sec", fast.events_per_sec);
    report.set(row + ".scale_out.sync_wait_fraction", fast.sync_wait_fraction);
    report.set(row + ".scale_out.sync_rounds", fast.rounds);
    report.set(row + ".scale_out.cross_messages", fast.cross_messages);
    report.set(row + ".scale_out.cut_links", fast.cut_links);
    report.set(row + ".scale_out.events", fast.events);
    report.set(row + ".speedup", speedup);
  }

  const std::string report_path = "BENCH_pdes_scaling.json";
  if (report.write(report_path)) {
    std::printf("wrote %s\n", report_path.c_str());
  }

  bench::print_note(
      "baseline = the pre-existing engine path (global YAWNS window, "
      "rack-round-robin placement); scale-out = per-pair lookahead windows "
      "+ graph-cut placement + SPSC rings. Both are digest-identical to "
      "the sequential engine (esim_diffcheck).");
  bench::print_note(
      "expected shape: baseline rounds grow with P while windows stay "
      "pinned at the 1us global lookahead; scale-out windows follow the "
      "8us inter-cluster links, so rounds (and events/s) hold up as P "
      "grows. sync%% is barrier wall time / (P * wall).");
  return 0;
}
