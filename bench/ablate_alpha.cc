// Ablation B (paper §4.2): the loss weight alpha in
//   L = L_drop + alpha * L_latency.
// "In practice, we set alpha to a value 0 < alpha <= 1 because the
// contribution of drops in determining future behavior is more
// significant than latency." This bench sweeps alpha on one trace and
// reports how the drop/latency accuracy trade off.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.4;  // some congestion so drops exist to learn
  cfg.intra_fraction = 0.3;
  cfg.seed = 13;
  cfg.duration = bench::quick_mode() ? SimTime::from_ms(8)
                                     : SimTime::from_ms(25);
  cfg.train_duration = cfg.duration;
  cfg.model.hidden = 16;
  cfg.model.layers = 1;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.batches = bench::quick_mode() ? 30 : 120;
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation B (paper §4.2)",
                      "loss-weight alpha sweep: drop vs latency accuracy");
  auto cfg = base_config();

  std::printf("recording shared trace + groundtruth run...\n");
  const auto trace = core::record_boundary_trace(cfg);
  const auto full = core::run_full_simulation(cfg, cfg.net.spec);

  std::vector<double> alphas{0.1, 0.5, 1.0};
  std::printf("\n%-8s %-12s %-12s %-12s %-10s\n", "alpha", "drop-acc",
              "lat-MAE", "drop-loss", "KS");
  for (const double alpha : alphas) {
    cfg.train.alpha = alpha;
    const auto models = core::train_from_trace(cfg, trace);
    const auto hybrid =
        core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    const double acc = (models.ingress_report.drop_accuracy +
                        models.egress_report.drop_accuracy) /
                       2.0;
    const double mae = (models.ingress_report.latency_mae +
                        models.egress_report.latency_mae) /
                       2.0;
    const double dloss = (models.ingress_report.final_drop_loss +
                          models.egress_report.final_drop_loss) /
                         2.0;
    std::printf("%-8.2f %-12.3f %-12.3f %-12.4f %-10.3f\n", alpha, acc, mae,
                dloss, stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf));
    std::fflush(stdout);
  }

  bench::print_note(
      "expected shape: larger alpha trades drop-head fit for latency-head "
      "fit (lat-MAE falls; drop loss is no longer prioritized) — the "
      "reason the paper keeps alpha <= 1.");
  return 0;
}
