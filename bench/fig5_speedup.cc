// Figure 5: speedup of the approximate simulation over the full-fidelity
// simulation as the number of clusters grows (paper: 2, 4, 8, 16).
//
// Per the paper's setup, each cluster has four switches and eight
// servers; the approximate run replaces all but one cluster with the
// trained models and elides traffic wholly between approximated clusters
// (the second source of savings in §6.2).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "telemetry/report.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig make_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;  // training topology (paper Figure 3)
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.3;
  cfg.intra_fraction = 0.3;
  cfg.seed = 5;
  if (bench::quick_mode()) {
    cfg.duration = SimTime::from_ms(5);
    cfg.train_duration = SimTime::from_ms(10);
    cfg.model.hidden = 8;
    cfg.model.layers = 1;
    cfg.train.batches = 40;
    cfg.train.batch_size = 16;
    cfg.train.seq_len = 16;
  } else {
    cfg.duration = SimTime::from_ms(20);
    cfg.train_duration = SimTime::from_ms(30);
    cfg.model.hidden = 16;
    cfg.model.layers = 2;
    cfg.train.batches = 150;
    cfg.train.batch_size = 32;
    cfg.train.seq_len = 24;
  }
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5", "speedup of approximate vs full simulation, by clusters");
  const auto cfg = make_config();

  std::printf("training cluster models once (reused across sizes)...\n");
  const auto models = core::train_cluster_models(cfg);
  std::printf("  trained on %zu boundary crossings\n\n",
              models.boundary_records);

  std::vector<std::uint32_t> cluster_counts{2, 4, 8, 16};
  if (bench::quick_mode()) cluster_counts = {2, 4};

  // Telemetry stays off (cfg default): this bench times full vs hybrid
  // walls, so neither side should pay even counter updates.
  telemetry::RunReport report{"fig5_speedup"};
  report.set("bench", "fig5_speedup");

  std::printf("%-10s %-12s %-12s %-10s %-14s %-14s\n", "clusters",
              "full-wall-s", "approx-wall-s", "speedup", "full-events",
              "approx-events");
  for (const auto clusters : cluster_counts) {
    net::ClosSpec spec = cfg.net.spec;
    spec.clusters = clusters;
    const auto full = core::run_full_simulation(cfg, spec);
    const auto hybrid = core::run_hybrid_simulation(cfg, spec, models);
    const double speedup =
        hybrid.wall_seconds > 0 ? full.wall_seconds / hybrid.wall_seconds
                                : 0.0;
    std::printf("%-10u %-12.3f %-12.3f %-10.2f %-14llu %-14llu\n", clusters,
                full.wall_seconds, hybrid.wall_seconds, speedup,
                static_cast<unsigned long long>(full.events_executed),
                static_cast<unsigned long long>(hybrid.events_executed));
    std::fflush(stdout);
    const std::string row = "clusters" + std::to_string(clusters);
    report.set(row + ".full.wall_seconds", full.wall_seconds);
    report.set(row + ".full.events_executed", full.events_executed);
    report.set(row + ".hybrid.wall_seconds", hybrid.wall_seconds);
    report.set(row + ".hybrid.events_executed", hybrid.events_executed);
    report.set(row + ".speedup", speedup);
  }

  const std::string report_path = "BENCH_fig5_speedup.json";
  if (report.write(report_path)) {
    std::printf("wrote %s\n", report_path.c_str());
  }

  bench::print_note(
      "reproduction target (paper Figure 5): speedup > 1 everywhere and "
      "growing with cluster count (paper: ~1.5x at 2 clusters to ~4x at "
      "16), because the share of the network that schedules no events "
      "grows with size.");
  bench::print_note(
      "the paper's third savings source (parallel execution of the "
      "approximate version) is not modeled here; events and work "
      "elision alone reproduce the trend.");
  return 0;
}
