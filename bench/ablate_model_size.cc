// Ablation A (paper §7 "Improving accuracy"): accuracy as a function of
// LSTM depth and width. The paper's prototype used a 2-layer, 128-hidden
// LSTM and conjectures that "accuracy can be improved by stacking more
// layers, using more nodes per layer" at higher training/inference cost.
// This bench trains several sizes on one recorded trace and reports both
// the training metrics and the end-to-end distributional error.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.35;
  cfg.intra_fraction = 0.3;
  cfg.seed = 11;
  cfg.duration = bench::quick_mode() ? SimTime::from_ms(8)
                                     : SimTime::from_ms(25);
  cfg.train_duration = cfg.duration;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.batches = bench::quick_mode() ? 30 : 120;
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation A (paper §7)",
                      "accuracy vs LSTM width/depth on one trace");
  auto cfg = base_config();

  std::printf("recording shared trace + groundtruth run...\n");
  const auto trace = core::record_boundary_trace(cfg);
  const auto full = core::run_full_simulation(cfg, cfg.net.spec);
  std::printf("  %zu crossings, %zu groundtruth RTT samples\n\n",
              trace.records.size(), full.rtt_cdf.size());

  struct Variant {
    std::size_t hidden;
    std::size_t layers;
  };
  std::vector<Variant> variants{{8, 1}, {16, 1}, {16, 2}, {32, 2}};
  if (bench::quick_mode()) variants = {{8, 1}, {16, 1}};

  std::printf("%-8s %-8s %-12s %-12s %-10s %-10s\n", "hidden", "layers",
              "drop-acc", "lat-MAE", "KS", "W1(us)");
  for (const auto& v : variants) {
    cfg.model.hidden = v.hidden;
    cfg.model.layers = v.layers;
    const auto models = core::train_from_trace(cfg, trace);
    const auto hybrid =
        core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    const double ks = stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf);
    const double w1 =
        stats::wasserstein_distance(full.rtt_cdf, hybrid.rtt_cdf) * 1e6;
    const double acc = (models.ingress_report.drop_accuracy +
                        models.egress_report.drop_accuracy) /
                       2.0;
    const double mae = (models.ingress_report.latency_mae +
                        models.egress_report.latency_mae) /
                       2.0;
    std::printf("%-8zu %-8zu %-12.3f %-12.3f %-10.3f %-10.3g\n", v.hidden,
                v.layers, acc, mae, ks, w1);
    std::fflush(stdout);
  }

  bench::print_note(
      "expected shape: larger models fit the trace at least as well "
      "(drop-acc up / lat-MAE down), with diminishing end-to-end returns "
      "— the tradeoff §7 of the paper discusses.");
  return 0;
}
