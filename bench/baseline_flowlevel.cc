// Baseline comparison (paper §2 and §8): the classic way to simulate big
// networks fast is to drop to flow-level (fluid) simulation. This bench
// runs the SAME flow list three ways —
//   (a) packet-level full fidelity (ground truth),
//   (b) the flow-level max-min fluid baseline,
//   (c) the paper's ML-approximate hybrid —
// and compares flow-completion-time distributions and wall time. The
// paper's argument: fluid models are fast but miss packet effects
// (handshakes, slow start, queueing, retransmission timeouts) that
// dominate short-flow FCTs; the learned approximation preserves far more
// of them at a comparable speedup.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "flowsim/flow_level.h"
#include "stats/distance.h"
#include "workload/generator.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

struct FlowSpec {
  std::uint64_t id;
  net::HostId src, dst;
  std::uint64_t bytes;
  SimTime arrival;
};

// One deterministic flow list, every flow touching cluster 0 (the set
// measurable in the hybrid run, which elides approx<->approx traffic).
std::vector<FlowSpec> make_flows(const net::ClosSpec& spec, double load,
                                 SimTime horizon, std::uint64_t seed) {
  sim::Rng rng{seed};
  auto sizes = workload::mini_web_distribution();
  workload::ClusterMixTraffic matrix{spec, 0.3};
  const double bytes_per_sec =
      load * spec.total_hosts() * 10e9 / 8.0;
  const double lambda = bytes_per_sec / sizes->mean();
  std::vector<FlowSpec> flows;
  double t = 0;
  std::uint64_t id = 1;
  while (true) {
    t += rng.exponential(1.0 / lambda);
    if (t >= horizon.to_seconds()) break;
    auto [src, dst] = matrix.sample(rng);
    if (spec.cluster_of_host(src) != 0 && spec.cluster_of_host(dst) != 0) {
      continue;  // keep only flows the hybrid run can measure
    }
    flows.push_back(FlowSpec{id++, src, dst, sizes->sample(rng),
                             SimTime::from_seconds_f(t)});
  }
  return flows;
}

struct Outcome {
  stats::EmpiricalCdf fct;
  stats::EmpiricalCdf fct_large;  // flows >= 100 KB: RTO noise amortizes
  double wall_seconds = 0;
  std::size_t completed = 0;
};

Outcome run_packet_level(const core::NetworkConfig& net_cfg,
                         const std::vector<FlowSpec>& flows) {
  sim::Simulator sim{3};
  auto net = core::build_full_network(sim, net_cfg);
  Outcome out;
  for (const auto& f : flows) {
    sim.schedule_at(f.arrival, [&net, &out, f, &sim] {
      auto* c = net.hosts[f.src]->open_flow(f.dst, f.bytes, f.id);
      const SimTime start = sim.now();
      c->on_complete = [&out, start, &sim, bytes = f.bytes] {
        const double fct = (sim.now() - start).to_seconds();
        out.fct.add(fct);
        if (bytes >= 100'000) out.fct_large.add(fct);
        ++out.completed;
      };
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

Outcome run_flow_level(const net::ClosSpec& spec,
                       const std::vector<FlowSpec>& flows) {
  flowsim::FlowLevelSimulator sim{spec, 10e9};
  for (const auto& f : flows) {
    sim.add_flow(f.id, f.src, f.dst, f.bytes, f.arrival);
  }
  Outcome out;
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& r : sim.results()) {
    out.fct.add(r.fct().to_seconds());
    if (r.bytes >= 100'000) out.fct_large.add(r.fct().to_seconds());
    ++out.completed;
  }
  return out;
}

Outcome run_hybrid(const core::ExperimentConfig& cfg,
                   const core::TrainedModels& models,
                   const std::vector<FlowSpec>& flows) {
  sim::Simulator sim{3};
  core::HybridConfig hcfg;
  hcfg.net = cfg.net;
  hcfg.approx = cfg.approx;
  hcfg.approx.macro = cfg.macro;
  auto net = core::build_hybrid_network(sim, hcfg, *models.ingress,
                                        *models.egress);
  Outcome out;
  for (const auto& f : flows) {
    sim.schedule_at(f.arrival, [&net, &out, f, &sim] {
      auto* c = net.hosts[f.src]->open_flow(f.dst, f.bytes, f.id);
      const SimTime start = sim.now();
      c->on_complete = [&out, start, &sim, bytes = f.bytes] {
        const double fct = (sim.now() - start).to_seconds();
        out.fct.add(fct);
        if (bytes >= 100'000) out.fct_large.add(fct);
        ++out.completed;
      };
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Hybrid runs never go fully idle (macro window timers tick), so run
  // to a generous horizon instead of exhaustion.
  sim.run_until(SimTime::from_sec(10));
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Baseline (paper §2/§8)",
      "FCT fidelity: packet-level truth vs fluid flow-level vs ML-approx");

  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.35;
  cfg.intra_fraction = 0.3;
  cfg.train_duration =
      bench::quick_mode() ? SimTime::from_ms(10) : SimTime::from_ms(30);
  cfg.model.hidden = bench::quick_mode() ? 8 : 16;
  cfg.model.layers = bench::quick_mode() ? 1 : 2;
  cfg.train.batches = bench::quick_mode() ? 40 : 150;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.learning_rate = 5e-3;

  const auto horizon =
      bench::quick_mode() ? SimTime::from_ms(10) : SimTime::from_ms(30);
  const auto flows = make_flows(cfg.net.spec, cfg.load, horizon, 2024);
  std::printf("workload: %zu flows over %s\n", flows.size(),
              horizon.to_string().c_str());

  std::printf("training the ML approximation...\n\n");
  const auto models = core::train_cluster_models(cfg);

  const auto truth = run_packet_level(cfg.net, flows);
  const auto fluid = run_flow_level(cfg.net.spec, flows);
  const auto hybrid = run_hybrid(cfg, models, flows);

  std::printf("%-16s %-12s %-12s %-12s\n", "", "packet-truth",
              "flow-level", "ml-approx");
  std::printf("%-16s %-12zu %-12zu %-12zu\n", "flows completed",
              truth.completed, fluid.completed, hybrid.completed);
  std::printf("%-16s %-12.3f %-12.4f %-12.3f\n", "wall seconds",
              truth.wall_seconds, fluid.wall_seconds, hybrid.wall_seconds);
  for (const double p : {0.50, 0.90, 0.99}) {
    std::printf("FCT p%-11g %-12.3g %-12.3g %-12.3g\n", p * 100,
                truth.fct.quantile(p), fluid.fct.quantile(p),
                hybrid.fct.quantile(p));
  }
  std::printf("%-16s %-12s %-12.3f %-12.3f\n", "KS vs truth", "-",
              stats::ks_distance(truth.fct, fluid.fct),
              stats::ks_distance(truth.fct, hybrid.fct));
  if (!truth.fct_large.empty() && !fluid.fct_large.empty() &&
      !hybrid.fct_large.empty()) {
    std::printf("%-16s %-12s %-12.3f %-12.3f\n", "KS (>=100KB)", "-",
                stats::ks_distance(truth.fct_large, fluid.fct_large),
                stats::ks_distance(truth.fct_large, hybrid.fct_large));
  }

  bench::print_note(
      "expected shape: flow-level is fastest but systematically "
      "optimistic — its FCTs miss handshakes, slow start, queueing and "
      "RTOs entirely, so its error is one-sided. The ML approximation "
      "errs in both directions (imperfect drop predictions interact "
      "with TCP timeouts, which the paper's §6.1 calls out as the reason "
      "per-flow metrics are unreliable); its distribution overlaps the "
      "truth where flows are long enough to amortize that noise.");
  return 0;
}
