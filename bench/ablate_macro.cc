// Ablation C (paper §4.1): value of the hierarchical macro/micro split.
// The macro state is a feature of the micro model; this bench trains and
// runs the pipeline twice — once with the normal macro classifier and
// once with it pinned to a single state (thresholds set so it never
// leaves MinimalCongestion), which removes the information without
// changing dimensions — and compares end-to-end accuracy.
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.45;  // enough congestion that regimes actually change
  cfg.intra_fraction = 0.3;
  cfg.seed = 17;
  cfg.duration = bench::quick_mode() ? SimTime::from_ms(8)
                                     : SimTime::from_ms(30);
  cfg.train_duration = cfg.duration;
  cfg.model.hidden = 16;
  cfg.model.layers = 1;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.batches = bench::quick_mode() ? 30 : 120;
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation C (paper §4.1)",
                      "macro congestion-state feature: on vs off");
  auto cfg = base_config();

  const auto full = core::run_full_simulation(cfg, cfg.net.spec);

  std::printf("%-12s %-12s %-12s %-10s %-10s\n", "macro", "drop-acc",
              "lat-MAE", "KS", "W1(us)");
  for (const bool enabled : {true, false}) {
    core::ExperimentConfig variant = cfg;
    if (!enabled) {
      // Pin the classifier to MinimalCongestion: latency threshold so
      // high and drop threshold so high that no window escapes state 1.
      variant.macro.low_latency_factor = 1e12;
      variant.macro.high_drop_rate = 2.0;
    }
    const auto trace = core::record_boundary_trace(variant);
    const auto models = core::train_from_trace(variant, trace);
    const auto hybrid =
        core::run_hybrid_simulation(variant, variant.net.spec, models);
    const double acc = (models.ingress_report.drop_accuracy +
                        models.egress_report.drop_accuracy) /
                       2.0;
    const double mae = (models.ingress_report.latency_mae +
                        models.egress_report.latency_mae) /
                       2.0;
    std::printf("%-12s %-12.3f %-12.3f %-10.3f %-10.3g\n",
                enabled ? "hierarchical" : "pinned-off", acc, mae,
                stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf),
                stats::wasserstein_distance(full.rtt_cdf, hybrid.rtt_cdf) *
                    1e6);
    std::fflush(stdout);
  }

  bench::print_note(
      "expected shape: the hierarchical variant fits congestion regimes "
      "at least as well as the pinned one; the gap grows with load "
      "volatility (the multi-scale structure §4 of the paper motivates).");
  return 0;
}
