// Inference-path benchmark (DESIGN.md §8): MicroModel packets/s through
// the compiled InferenceSession (predict) vs the naive Tensor step path
// (predict_reference), for both trunk kinds across hidden sizes.
//
// The session must be *bit-identical* to the reference — the speedup
// comes from the workspace plan (no per-step allocation, no intermediate
// tensors) and the packed per-lane SIMD kernels, not from reordering
// floating-point math. The bench cross-checks identity on every config
// and fails (exit 1) on any mismatch, so a perf regression can never hide
// a correctness one.
//
// A second phase runs a small hybrid simulation through ApproxCluster
// twice (session vs Config::reference_inference) with telemetry on, and
// reports the approx.inference_ns histogram means — the end-to-end view
// of the same speedup.
//
// Writes machine-readable BENCH_inference.json into the working directory
// (format documented in EXPERIMENTS.md).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "approx/features.h"
#include "approx/micro_model.h"
#include "bench_common.h"
#include "core/experiment.h"
#include "ml/inference.h"
#include "sim/random.h"
#include "telemetry/report.h"

namespace {

using esim::approx::MicroModel;
using esim::approx::PacketFeatures;
using esim::bench::print_header;
using esim::bench::print_note;
using esim::bench::quick_mode;
using esim::ml::TrunkKind;

/// Deterministic synthetic feature stream: shaped like FeatureExtractor
/// output (ids, gaps, size, macro one-hot) but driven straight from an
/// Rng so the bench measures inference alone.
std::vector<PacketFeatures> make_features(std::size_t n, std::uint64_t seed) {
  esim::sim::Rng rng{seed};
  std::vector<PacketFeatures> out(n);
  for (auto& f : out) {
    for (std::size_t i = 0; i < 8; ++i) f.v[i] = rng.uniform(-1.0, 1.0);
    f.v[8] = rng.bernoulli(0.2) ? 1.0 : 0.0;
    const std::size_t macro = rng.uniform_int(esim::approx::kMacroStates);
    for (std::size_t i = 0; i < esim::approx::kMacroStates; ++i) {
      f.v[9 + i] = i == macro ? 1.0 : 0.0;
    }
  }
  return out;
}

/// Streams every feature vector through `predict`, returns packets/s.
/// `sink` accumulates the predictions so the loop cannot be elided.
template <typename Predict>
double run_stream(MicroModel& model, const std::vector<PacketFeatures>& feats,
                  Predict&& predict, double* sink) {
  model.reset_state();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (const auto& f : feats) {
    const auto p = predict(model, f);
    acc += p.drop_probability + p.latency_seconds;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  *sink += acc;
  return static_cast<double>(feats.size()) / dt.count();
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) best = std::max(best, run());
  return best;
}

struct Row {
  std::string name;
  double reference_pps = 0.0;
  double session_pps = 0.0;
  bool bit_identical = true;
  double speedup() const {
    return reference_pps > 0.0 ? session_pps / reference_pps : 0.0;
  }
};

/// Session vs reference on the same stream, double-for-double.
bool check_bit_identical(MicroModel& model,
                         const std::vector<PacketFeatures>& feats,
                         std::size_t steps) {
  model.reset_state();
  std::vector<MicroModel::Prediction> expect;
  expect.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    expect.push_back(model.predict_reference(feats[i]));
  }
  model.reset_state();
  for (std::size_t i = 0; i < steps; ++i) {
    const auto got = model.predict(feats[i]);
    if (got.drop_probability != expect[i].drop_probability ||
        got.latency_seconds != expect[i].latency_seconds) {
      return false;
    }
  }
  return true;
}

/// Mean of the approx.inference_ns histogram from one hybrid run, or -1
/// when the metric is missing. `count` receives the sample count.
double hybrid_inference_ns_mean(const esim::core::RunResult& result,
                                std::uint64_t* count) {
  const auto* h = result.metrics.find("approx.inference_ns");
  if (h == nullptr || h->count == 0) return -1.0;
  *count = h->count;
  return static_cast<double>(h->sum) / static_cast<double>(h->count);
}

}  // namespace

int main() {
  const std::size_t n = quick_mode() ? 2'000 : 200'000;
  const int repeats = quick_mode() ? 2 : 3;
  const std::uint64_t seed = 20250805;

  print_header("bench_inference",
               "MicroModel packets/s: InferenceSession vs naive step()");
  std::printf("%zu packets per run, best of %d (two-layer trunks)\n\n", n,
              repeats);

  const auto feats = make_features(n, seed);

  struct Case {
    TrunkKind trunk;
    std::size_t hidden;
  };
  std::vector<Case> cases;
  for (const TrunkKind trunk : {TrunkKind::Lstm, TrunkKind::Gru}) {
    for (const std::size_t hidden : {16, 32, 64}) {
      cases.push_back({trunk, hidden});
    }
  }

  double sink = 0.0;
  std::vector<Row> rows;
  bool all_identical = true;
  for (const auto& c : cases) {
    MicroModel::Config cfg;
    cfg.trunk = c.trunk;
    cfg.hidden = c.hidden;
    cfg.layers = 2;
    cfg.seed = 7;
    MicroModel model{cfg};
    model.set_latency_normalization(2.0, 0.8);

    Row r{std::string{esim::ml::trunk_kind_name(c.trunk)} + "_h" +
          std::to_string(c.hidden)};
    r.bit_identical =
        check_bit_identical(model, feats, std::min<std::size_t>(n, 512));
    all_identical = all_identical && r.bit_identical;
    r.reference_pps = best_of(repeats, [&] {
      return run_stream(
          model, feats,
          [](MicroModel& m, const PacketFeatures& f) {
            return m.predict_reference(f);
          },
          &sink);
    });
    r.session_pps = best_of(repeats, [&] {
      return run_stream(
          model, feats,
          [](MicroModel& m, const PacketFeatures& f) { return m.predict(f); },
          &sink);
    });
    rows.push_back(r);
  }

  std::printf("%-10s %16s %16s %9s %9s\n", "config", "reference pkt/s",
              "session pkt/s", "speedup", "bitident");
  for (const auto& r : rows) {
    std::printf("%-10s %16.0f %16.0f %8.2fx %9s\n", r.name.c_str(),
                r.reference_pps, r.session_pps, r.speedup(),
                r.bit_identical ? "yes" : "NO");
  }

  // Phase 2: the same comparison end to end — a hybrid run through
  // ApproxCluster with telemetry on, once per inference path. The
  // approx.inference_ns histogram is the per-prediction wall cost as the
  // cluster sees it (feature extraction included).
  esim::core::ExperimentConfig hcfg;
  hcfg.net.spec.clusters = 3;
  hcfg.net.spec.tors_per_cluster = 2;
  hcfg.net.spec.aggs_per_cluster = 2;
  hcfg.net.spec.hosts_per_tor = 2;
  hcfg.net.spec.cores = 2;
  hcfg.load = 0.3;
  hcfg.duration =
      esim::sim::SimTime::from_ms(quick_mode() ? 5 : 40);
  hcfg.model.hidden = 16;
  hcfg.model.layers = 2;
  hcfg.model.seed = 7;
  hcfg.telemetry = true;
  esim::core::TrainedModels models;
  models.ingress = std::make_unique<MicroModel>(hcfg.model);
  models.egress = std::make_unique<MicroModel>(hcfg.model);
  const auto hybrid_session =
      esim::core::run_hybrid_simulation(hcfg, hcfg.net.spec, models);
  hcfg.approx.reference_inference = true;
  const auto hybrid_reference =
      esim::core::run_hybrid_simulation(hcfg, hcfg.net.spec, models);
  std::uint64_t session_count = 0, reference_count = 0;
  const double session_ns =
      hybrid_inference_ns_mean(hybrid_session, &session_count);
  const double reference_ns =
      hybrid_inference_ns_mean(hybrid_reference, &reference_count);
  const bool hybrid_identical =
      hybrid_session.events_executed == hybrid_reference.events_executed &&
      hybrid_session.mean_fct_seconds == hybrid_reference.mean_fct_seconds;
  all_identical = all_identical && hybrid_identical;
  std::printf(
      "\nhybrid approx.inference_ns (h=%zu, %llu predictions): "
      "reference %.0f ns -> session %.0f ns (%.2fx), runs identical: %s\n",
      hcfg.model.hidden,
      static_cast<unsigned long long>(session_count), reference_ns,
      session_ns, session_ns > 0.0 ? reference_ns / session_ns : 0.0,
      hybrid_identical ? "yes" : "NO");

  double geomean = 0.0;
  double max_speedup = 0.0;
  for (const auto& r : rows) {
    geomean += std::log(r.speedup());
    max_speedup = std::max(max_speedup, r.speedup());
  }
  geomean = std::exp(geomean / static_cast<double>(rows.size()));

  esim::telemetry::RunReport report{"inference"};
  report.set("bench", "inference");
  report.set("packets_per_run", static_cast<std::uint64_t>(n));
  report.set("layers", static_cast<std::uint64_t>(2));
  report.set("bit_identical", all_identical);
  report.set("geomean_speedup", geomean);
  report.set("max_speedup", max_speedup);
  for (const auto& r : rows) {
    report.set("configs." + r.name + ".reference_pps", r.reference_pps);
    report.set("configs." + r.name + ".session_pps", r.session_pps);
    report.set("configs." + r.name + ".speedup", r.speedup());
    report.set("configs." + r.name + ".bit_identical", r.bit_identical);
  }
  report.set("hybrid.inference_count", session_count);
  report.set("hybrid.reference_inference_ns_mean", reference_ns);
  report.set("hybrid.session_inference_ns_mean", session_ns);
  report.set("hybrid.inference_ns_speedup",
             session_ns > 0.0 ? reference_ns / session_ns : 0.0);
  report.set("hybrid.runs_identical", hybrid_identical);
  const std::string path = "BENCH_inference.json";
  if (report.write(path)) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", path.c_str());
  }

  print_note(
      "speedup = fused workspace session over naive Tensor step(); both "
      "paths stream the same state and must agree bit-for-bit.");
  print_note("checksum " + std::to_string(sink));
  return all_identical ? 0 : 1;
}
