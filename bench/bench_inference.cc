// Inference-path benchmark (DESIGN.md §8): MicroModel packets/s through
// the compiled InferenceSession (predict) vs the naive Tensor step path
// (predict_reference), for both trunk kinds across hidden sizes.
//
// The session must be *bit-identical* to the reference — the speedup
// comes from the workspace plan (no per-step allocation, no intermediate
// tensors) and the packed per-lane SIMD kernels, not from reordering
// floating-point math. The bench cross-checks identity on every config
// and fails (exit 1) on any mismatch, so a perf regression can never hide
// a correctness one.
//
// A second phase sweeps cross-packet batched inference (DESIGN.md §8):
// lanes mode (set_lane_count + predict_lanes, N independent streams, both
// matmuls amortize the weight stream) and sequence mode
// (MicroModel::predict_batch, one stream coalesced N timesteps at a
// time), for N in {1, 4, 16, 64}. N = 1 must stay bit-identical to the
// per-packet session path, and every batched prediction is cross-checked
// against independent single-lane sessions.
//
// A third phase runs a small hybrid simulation through ApproxCluster with
// telemetry on: session vs Config::reference_inference (the
// approx.inference_ns means), plus batching on vs off (observables must
// match exactly — the coalesced queue may not change the simulation).
//
// Writes machine-readable BENCH_inference.json into the working directory
// (format documented in EXPERIMENTS.md). `--batch` runs only the batched
// phases (the sanitizer smoke in scripts/check.sh uses it).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "approx/features.h"
#include "approx/micro_model.h"
#include "bench_common.h"
#include "core/experiment.h"
#include "ml/inference.h"
#include "ml/linear.h"
#include "ml/sequence_model.h"
#include "sim/random.h"
#include "telemetry/report.h"

namespace {

using esim::approx::MicroModel;
using esim::approx::PacketFeatures;
using esim::bench::print_header;
using esim::bench::print_note;
using esim::bench::quick_mode;
using esim::ml::TrunkKind;

namespace sim = esim::sim;

/// Deterministic synthetic feature stream: shaped like FeatureExtractor
/// output (ids, gaps, size, macro one-hot) but driven straight from an
/// Rng so the bench measures inference alone.
std::vector<PacketFeatures> make_features(std::size_t n, std::uint64_t seed) {
  esim::sim::Rng rng{seed};
  std::vector<PacketFeatures> out(n);
  for (auto& f : out) {
    for (std::size_t i = 0; i < 8; ++i) f.v[i] = rng.uniform(-1.0, 1.0);
    f.v[8] = rng.bernoulli(0.2) ? 1.0 : 0.0;
    const std::size_t macro = rng.uniform_int(esim::approx::kMacroStates);
    for (std::size_t i = 0; i < esim::approx::kMacroStates; ++i) {
      f.v[9 + i] = i == macro ? 1.0 : 0.0;
    }
  }
  return out;
}

/// Streams every feature vector through `predict`, returns packets/s.
/// `sink` accumulates the predictions so the loop cannot be elided.
template <typename Predict>
double run_stream(MicroModel& model, const std::vector<PacketFeatures>& feats,
                  Predict&& predict, double* sink) {
  model.reset_state();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (const auto& f : feats) {
    const auto p = predict(model, f);
    acc += p.drop_probability + p.latency_seconds;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  *sink += acc;
  return static_cast<double>(feats.size()) / dt.count();
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) best = std::max(best, run());
  return best;
}

struct Row {
  std::string name;
  double reference_pps = 0.0;
  double session_pps = 0.0;
  bool bit_identical = true;
  double speedup() const {
    return reference_pps > 0.0 ? session_pps / reference_pps : 0.0;
  }
};

/// Session vs reference on the same stream, double-for-double.
bool check_bit_identical(MicroModel& model,
                         const std::vector<PacketFeatures>& feats,
                         std::size_t steps) {
  model.reset_state();
  std::vector<MicroModel::Prediction> expect;
  expect.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    expect.push_back(model.predict_reference(feats[i]));
  }
  model.reset_state();
  for (std::size_t i = 0; i < steps; ++i) {
    const auto got = model.predict(feats[i]);
    if (got.drop_probability != expect[i].drop_probability ||
        got.latency_seconds != expect[i].latency_seconds) {
      return false;
    }
  }
  return true;
}

/// One trunk + two fused heads, mirroring MicroModel's compiled session
/// (input = PacketFeatures::kDim, outputs = drop logit + latency), built
/// deterministically so the lanes sweep can instantiate as many
/// bit-identical sessions as it needs.
struct LaneBench {
  std::unique_ptr<esim::ml::SequenceModel> trunk;
  esim::ml::Linear drop_head;
  esim::ml::Linear latency_head;

  LaneBench(TrunkKind kind, std::size_t hidden, sim::Rng& rng)
      : trunk{esim::ml::make_sequence_model(kind, PacketFeatures::kDim,
                                            hidden, 2, rng)},
        drop_head{hidden, 1, rng},
        latency_head{hidden, 1, rng} {}

  std::unique_ptr<esim::ml::InferenceSession> session() const {
    return trunk->make_inference_session(
        {{&drop_head.weight(), &drop_head.bias()},
         {&latency_head.weight(), &latency_head.bias()}});
  }
};

/// Streams `total` predictions through an L-lane session (lane l advances
/// on rows l, l+L, l+2L, ... of the feature stream) and returns packets/s
/// across all lanes. The per-step gather into the lane buffer is part of
/// the measured cost, as it is for a real caller.
double run_lanes(esim::ml::InferenceSession& session, std::size_t lanes,
                 const std::vector<PacketFeatures>& feats, double* sink) {
  constexpr std::size_t kDim = PacketFeatures::kDim;
  session.set_lane_count(lanes);  // resets lane state
  std::vector<double> x(lanes * kDim);
  const std::size_t steps = feats.size() / lanes;
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) {
      const auto& f = feats[t * lanes + l];
      std::copy(f.v.begin(), f.v.end(), x.begin() + l * kDim);
    }
    const auto out = session.predict_lanes(x);
    acc += out[0] + out[out.size() - 1];
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  *sink += acc;
  return static_cast<double>(steps * lanes) / dt.count();
}

/// predict_lanes(L) against L independent single-lane sessions of the
/// same weights, double-for-double over `steps` timesteps.
bool check_lanes_identical(const LaneBench& bench, std::size_t lanes,
                           const std::vector<PacketFeatures>& feats,
                           std::size_t steps) {
  constexpr std::size_t kDim = PacketFeatures::kDim;
  auto wide = bench.session();
  wide->set_lane_count(lanes);
  std::vector<std::unique_ptr<esim::ml::InferenceSession>> singles;
  for (std::size_t l = 0; l < lanes; ++l) singles.push_back(bench.session());
  std::vector<double> x(lanes * kDim);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) {
      const auto& f = feats[(t * lanes + l) % feats.size()];
      std::copy(f.v.begin(), f.v.end(), x.begin() + l * kDim);
    }
    const auto out = wide->predict_lanes(x);
    for (std::size_t l = 0; l < lanes; ++l) {
      const auto ref = singles[l]->predict(
          std::span<const double>{x.data() + l * kDim, kDim});
      for (std::size_t j = 0; j < ref.size(); ++j) {
        if (out[l * ref.size() + j] != ref[j]) return false;
      }
    }
  }
  return true;
}

/// Streams the whole feature list through MicroModel::predict_batch in
/// chunks of `n`, returns packets/s (sequence mode: one recurrent stream,
/// the input-side matmul batched across the chunk).
double run_sequence_batch(MicroModel& model, std::size_t n,
                          const std::vector<PacketFeatures>& feats,
                          double* sink) {
  constexpr std::size_t kDim = PacketFeatures::kDim;
  model.reset_state();
  model.reserve_batch(n);
  std::vector<double> x(n * kDim);
  std::vector<MicroModel::Prediction> preds(n);
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  std::size_t done = 0;
  while (done < feats.size()) {
    const std::size_t take = std::min(n, feats.size() - done);
    for (std::size_t i = 0; i < take; ++i) {
      const auto& f = feats[done + i];
      std::copy(f.v.begin(), f.v.end(), x.begin() + i * kDim);
    }
    model.predict_batch(std::span<const double>{x.data(), take * kDim},
                        std::span<MicroModel::Prediction>{preds.data(), take});
    acc += preds[take - 1].drop_probability + preds[0].latency_seconds;
    done += take;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  *sink += acc;
  return static_cast<double>(feats.size()) / dt.count();
}

/// predict_batch chunks vs per-packet predict() on a fresh model of the
/// same seed, double-for-double.
bool check_sequence_identical(const MicroModel::Config& cfg, std::size_t n,
                              const std::vector<PacketFeatures>& feats,
                              std::size_t steps) {
  constexpr std::size_t kDim = PacketFeatures::kDim;
  MicroModel sequential{cfg};
  MicroModel batched{cfg};
  batched.reserve_batch(n);
  std::vector<double> x(n * kDim);
  std::vector<MicroModel::Prediction> preds(n);
  std::size_t done = 0;
  while (done < steps) {
    const std::size_t take = std::min(n, steps - done);
    for (std::size_t i = 0; i < take; ++i) {
      const auto& f = feats[done + i];
      std::copy(f.v.begin(), f.v.end(), x.begin() + i * kDim);
    }
    batched.predict_batch(std::span<const double>{x.data(), take * kDim},
                          std::span<MicroModel::Prediction>{preds.data(), take});
    for (std::size_t i = 0; i < take; ++i) {
      const auto ref = sequential.predict(feats[done + i]);
      if (preds[i].drop_probability != ref.drop_probability ||
          preds[i].latency_seconds != ref.latency_seconds) {
        return false;
      }
    }
    done += take;
  }
  return true;
}

struct BatchRow {
  std::string name;
  std::size_t n = 1;
  double lanes_pps = 0.0;
  double stream_pps = 0.0;
  double speedup_vs_n1 = 0.0;  // lanes_pps over the N=1 session baseline
  bool bit_identical = true;
};

/// The N = 1 baseline: per-packet predict() on a single-lane session,
/// the exact path ApproxCluster uses without coalescing.
double run_single(esim::ml::InferenceSession& session,
                  const std::vector<PacketFeatures>& feats, double* sink) {
  constexpr std::size_t kDim = PacketFeatures::kDim;
  session.set_lane_count(1);
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (const auto& f : feats) {
    const auto out = session.predict(std::span<const double>{f.v.data(), kDim});
    acc += out[0] + out[out.size() - 1];
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  *sink += acc;
  return static_cast<double>(feats.size()) / dt.count();
}

/// Mean of the approx.inference_ns histogram from one hybrid run, or -1
/// when the metric is missing. `count` receives the sample count.
double hybrid_inference_ns_mean(const esim::core::RunResult& result,
                                std::uint64_t* count) {
  const auto* h = result.metrics.find("approx.inference_ns");
  if (h == nullptr || h->count == 0) return -1.0;
  *count = h->count;
  return static_cast<double>(h->sum) / static_cast<double>(h->count);
}

}  // namespace

int main(int argc, char** argv) {
  // --batch: only the batched phases, at reduced scale — the sanitizer
  // smoke in scripts/check.sh cares about memory discipline and the
  // bit-identity gates, not throughput numbers.
  bool batch_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch") == 0) batch_only = true;
  }
  const bool reduced = quick_mode() || batch_only;
  const std::size_t n = reduced ? 2'048 : 200'000;
  const int repeats = batch_only ? 1 : (quick_mode() ? 2 : 3);
  const std::uint64_t seed = 20250805;

  print_header("bench_inference",
               "MicroModel packets/s: InferenceSession vs naive step()");
  std::printf("%zu packets per run, best of %d (two-layer trunks)\n\n", n,
              repeats);

  const auto feats = make_features(n, seed);

  struct Case {
    TrunkKind trunk;
    std::size_t hidden;
  };
  std::vector<Case> cases;
  for (const TrunkKind trunk : {TrunkKind::Lstm, TrunkKind::Gru}) {
    for (const std::size_t hidden : {16, 32, 64}) {
      cases.push_back({trunk, hidden});
    }
  }

  double sink = 0.0;
  std::vector<Row> rows;
  bool all_identical = true;
  if (!batch_only) {
    for (const auto& c : cases) {
      MicroModel::Config cfg;
      cfg.trunk = c.trunk;
      cfg.hidden = c.hidden;
      cfg.layers = 2;
      cfg.seed = 7;
      MicroModel model{cfg};
      model.set_latency_normalization(2.0, 0.8);

      Row r{std::string{esim::ml::trunk_kind_name(c.trunk)} + "_h" +
            std::to_string(c.hidden)};
      r.bit_identical =
          check_bit_identical(model, feats, std::min<std::size_t>(n, 512));
      all_identical = all_identical && r.bit_identical;
      r.reference_pps = best_of(repeats, [&] {
        return run_stream(
            model, feats,
            [](MicroModel& m, const PacketFeatures& f) {
              return m.predict_reference(f);
            },
            &sink);
      });
      r.session_pps = best_of(repeats, [&] {
        return run_stream(
            model, feats,
            [](MicroModel& m, const PacketFeatures& f) { return m.predict(f); },
            &sink);
      });
      rows.push_back(r);
    }

    std::printf("%-10s %16s %16s %9s %9s\n", "config", "reference pkt/s",
                "session pkt/s", "speedup", "bitident");
    for (const auto& r : rows) {
      std::printf("%-10s %16.0f %16.0f %8.2fx %9s\n", r.name.c_str(),
                  r.reference_pps, r.session_pps, r.speedup(),
                  r.bit_identical ? "yes" : "NO");
    }
  }

  // Phase 2: the cross-packet batch sweep (DESIGN.md §8). For every
  // config, N = 1 is the per-packet session predict() path; N > 1 runs
  // lanes mode (N independent streams, both matmuls lane-batched) and
  // sequence mode (one stream, predict_batch chunks of N). Each row's
  // bit-identity gate cross-checks the batched outputs against the
  // equivalent unbatched predictions, double for double.
  const std::vector<std::size_t> batch_ns = {1, 4, 16, 64};
  std::vector<BatchRow> batch_rows;
  std::printf("\nbatched inference (lanes = independent streams, "
              "stream = predict_batch chunks)\n");
  std::printf("%-10s %4s %16s %16s %9s %9s\n", "config", "N", "lanes pkt/s",
              "stream pkt/s", "vs N=1", "bitident");
  for (const auto& c : cases) {
    MicroModel::Config cfg;
    cfg.trunk = c.trunk;
    cfg.hidden = c.hidden;
    cfg.layers = 2;
    cfg.seed = 7;
    MicroModel model{cfg};
    model.set_latency_normalization(2.0, 0.8);
    sim::Rng lane_rng{seed + c.hidden * 2 +
                      (c.trunk == TrunkKind::Lstm ? 0 : 1)};
    const LaneBench bench{c.trunk, c.hidden, lane_rng};
    auto wide = bench.session();
    wide->reserve_batch(64);
    const std::string name = std::string{esim::ml::trunk_kind_name(c.trunk)} +
                             "_h" + std::to_string(c.hidden);
    double n1_pps = 0.0;
    for (const std::size_t batch_n : batch_ns) {
      BatchRow br;
      br.name = name;
      br.n = batch_n;
      br.lanes_pps = best_of(repeats, [&] {
        return batch_n == 1 ? run_single(*wide, feats, &sink)
                            : run_lanes(*wide, batch_n, feats, &sink);
      });
      br.stream_pps = best_of(repeats, [&] {
        return run_sequence_batch(model, batch_n, feats, &sink);
      });
      if (batch_n == 1) n1_pps = br.lanes_pps;
      br.speedup_vs_n1 = n1_pps > 0.0 ? br.lanes_pps / n1_pps : 0.0;
      const std::size_t lane_steps =
          std::min<std::size_t>(96, feats.size() / batch_n);
      br.bit_identical =
          check_sequence_identical(cfg, batch_n, feats,
                                   std::min<std::size_t>(n, 256)) &&
          (batch_n == 1 ||
           check_lanes_identical(bench, batch_n, feats, lane_steps));
      all_identical = all_identical && br.bit_identical;
      batch_rows.push_back(br);
      std::printf("%-10s %4zu %16.0f %16.0f %8.2fx %9s\n", br.name.c_str(),
                  br.n, br.lanes_pps, br.stream_pps, br.speedup_vs_n1,
                  br.bit_identical ? "yes" : "NO");
    }
  }

  // Phase 3a: the same comparison end to end — a hybrid run through
  // ApproxCluster with telemetry on, once per inference path. The
  // approx.inference_ns histogram is the per-prediction wall cost as the
  // cluster sees it (feature extraction included).
  esim::core::ExperimentConfig hcfg;
  hcfg.net.spec.clusters = 3;
  hcfg.net.spec.tors_per_cluster = 2;
  hcfg.net.spec.aggs_per_cluster = 2;
  hcfg.net.spec.hosts_per_tor = 2;
  hcfg.net.spec.cores = 2;
  hcfg.load = 0.3;
  hcfg.duration =
      esim::sim::SimTime::from_ms(quick_mode() ? 5 : 40);
  hcfg.model.hidden = 16;
  hcfg.model.layers = 2;
  hcfg.model.seed = 7;
  hcfg.telemetry = true;
  esim::core::TrainedModels models;
  models.ingress = std::make_unique<MicroModel>(hcfg.model);
  models.egress = std::make_unique<MicroModel>(hcfg.model);
  const auto hybrid_session =
      esim::core::run_hybrid_simulation(hcfg, hcfg.net.spec, models);
  std::uint64_t session_count = 0, reference_count = 0;
  double session_ns = -1.0, reference_ns = -1.0;
  bool hybrid_identical = true;
  if (!batch_only) {
    hcfg.approx.reference_inference = true;
    const auto hybrid_reference =
        esim::core::run_hybrid_simulation(hcfg, hcfg.net.spec, models);
    hcfg.approx.reference_inference = false;
    session_ns = hybrid_inference_ns_mean(hybrid_session, &session_count);
    reference_ns = hybrid_inference_ns_mean(hybrid_reference, &reference_count);
    hybrid_identical =
        hybrid_session.events_executed == hybrid_reference.events_executed &&
        hybrid_session.mean_fct_seconds == hybrid_reference.mean_fct_seconds;
    all_identical = all_identical && hybrid_identical;
    std::printf(
        "\nhybrid approx.inference_ns (h=%zu, %llu predictions): "
        "reference %.0f ns -> session %.0f ns (%.2fx), runs identical: %s\n",
        hcfg.model.hidden,
        static_cast<unsigned long long>(session_count), reference_ns,
        session_ns, session_ns > 0.0 ? reference_ns / session_ns : 0.0,
        hybrid_identical ? "yes" : "NO");
  }

  // Phase 3b: the same hybrid run with the prediction queue coalescing
  // up to 16 packets per window. Batching may not change the simulation:
  // every observable except the event count (the flush timers are extra
  // events) must match the unbatched run exactly.
  hcfg.approx.batch_max = 16;
  hcfg.approx.batch_window = esim::sim::SimTime::from_us(2);
  const auto hybrid_batched =
      esim::core::run_hybrid_simulation(hcfg, hcfg.net.spec, models);
  const auto& off_stats = hybrid_session.approx_stats;
  const auto& on_stats = hybrid_batched.approx_stats;
  const bool batch_runs_identical =
      hybrid_batched.flows_launched == hybrid_session.flows_launched &&
      hybrid_batched.flows_completed == hybrid_session.flows_completed &&
      hybrid_batched.mean_fct_seconds == hybrid_session.mean_fct_seconds &&
      on_stats.ingress_packets == off_stats.ingress_packets &&
      on_stats.egress_packets == off_stats.egress_packets &&
      on_stats.predicted_drops == off_stats.predicted_drops &&
      on_stats.backlog_drops == off_stats.backlog_drops &&
      on_stats.conflicts_resolved == off_stats.conflicts_resolved;
  all_identical = all_identical && batch_runs_identical;
  std::printf(
      "hybrid batching on vs off (batch_max=16, window=2us): flows %llu/%llu, "
      "boundary pkts %llu/%llu, observables identical: %s\n",
      static_cast<unsigned long long>(hybrid_batched.flows_completed),
      static_cast<unsigned long long>(hybrid_session.flows_completed),
      static_cast<unsigned long long>(on_stats.ingress_packets +
                                      on_stats.egress_packets),
      static_cast<unsigned long long>(off_stats.ingress_packets +
                                      off_stats.egress_packets),
      batch_runs_identical ? "yes" : "NO");

  if (batch_only) {
    print_note("batch-only mode: no JSON written");
    print_note("checksum " + std::to_string(sink));
    return all_identical ? 0 : 1;
  }

  double geomean = 0.0;
  double max_speedup = 0.0;
  for (const auto& r : rows) {
    geomean += std::log(r.speedup());
    max_speedup = std::max(max_speedup, r.speedup());
  }
  geomean = std::exp(geomean / static_cast<double>(rows.size()));

  esim::telemetry::RunReport report{"inference"};
  report.set("bench", "inference");
  report.set("packets_per_run", static_cast<std::uint64_t>(n));
  report.set("layers", static_cast<std::uint64_t>(2));
  report.set("bit_identical", all_identical);
  report.set("geomean_speedup", geomean);
  report.set("max_speedup", max_speedup);
  for (const auto& r : rows) {
    report.set("configs." + r.name + ".reference_pps", r.reference_pps);
    report.set("configs." + r.name + ".session_pps", r.session_pps);
    report.set("configs." + r.name + ".speedup", r.speedup());
    report.set("configs." + r.name + ".bit_identical", r.bit_identical);
  }
  // Batched sweep (EXPERIMENTS.md): batch.<config>.N<k>.* — lanes mode
  // vs the N=1 session baseline, plus the sequence-mode stream rate.
  for (const auto& br : batch_rows) {
    const std::string key = "batch." + br.name + ".N" + std::to_string(br.n);
    report.set(key + ".lanes_pps", br.lanes_pps);
    report.set(key + ".stream_pps", br.stream_pps);
    report.set(key + ".speedup", br.speedup_vs_n1);
    report.set(key + ".bit_identical", br.bit_identical);
  }
  report.set("hybrid.inference_count", session_count);
  report.set("hybrid.reference_inference_ns_mean", reference_ns);
  report.set("hybrid.session_inference_ns_mean", session_ns);
  report.set("hybrid.inference_ns_speedup",
             session_ns > 0.0 ? reference_ns / session_ns : 0.0);
  report.set("hybrid.runs_identical", hybrid_identical);
  report.set("hybrid.batch_runs_identical", batch_runs_identical);
  const std::string path = "BENCH_inference.json";
  if (report.write(path)) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", path.c_str());
  }

  print_note(
      "speedup = fused workspace session over naive Tensor step(); both "
      "paths stream the same state and must agree bit-for-bit.");
  print_note("checksum " + std::to_string(sink));
  return all_identical ? 0 : 1;
}
