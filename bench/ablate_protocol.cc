// Ablation E (paper §3 "Modularity" / §4.2 ECN): the approximation
// framework must "be able to model different protocols ... at any layer
// of the networking stack". This bench runs the full pipeline twice —
// once with TCP New Reno (what the paper evaluated) and once with DCTCP
// + ECN marking at the fabric queues — and reports the end-to-end
// accuracy of each. The boundary models never inspect protocol state;
// they only see packet headers and timings, so a different congestion
// controller is just a different traffic process to learn.
//
// Known fidelity gap, faithful to the prototype: delivered packets do
// not carry model-predicted CE marks (the paper lists learning the ECN
// bit as an extension), so DCTCP behind the approximation degrades
// toward loss-based behaviour inside approximated regions.
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig base_config(bool dctcp) {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.4;
  cfg.intra_fraction = 0.3;
  cfg.seed = 29;
  cfg.duration = bench::quick_mode() ? SimTime::from_ms(8)
                                     : SimTime::from_ms(25);
  cfg.train_duration = cfg.duration;
  cfg.model.hidden = 16;
  cfg.model.layers = 1;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.batches = bench::quick_mode() ? 30 : 120;
  cfg.train.learning_rate = 5e-3;
  if (dctcp) {
    cfg.net.tcp.dctcp = true;
    cfg.net.fabric_link.ecn_threshold_bytes = 30'000;
  }
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation E (paper §3 modularity)",
                      "protocol swap: TCP New Reno vs DCTCP + ECN");

  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "protocol",
              "drop-acc", "lat-MAE", "truth-p99", "approx-p99", "KS");
  for (const bool dctcp : {false, true}) {
    const auto cfg = base_config(dctcp);
    const auto trace = core::record_boundary_trace(cfg);
    const auto models = core::train_from_trace(cfg, trace);
    const auto full = core::run_full_simulation(cfg, cfg.net.spec);
    const auto hybrid =
        core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    const double acc = (models.ingress_report.drop_accuracy +
                        models.egress_report.drop_accuracy) /
                       2.0;
    const double mae = (models.ingress_report.latency_mae +
                        models.egress_report.latency_mae) /
                       2.0;
    std::printf("%-10s %-12.3f %-12.3f %-12.3g %-12.3g %-10.3f\n",
                dctcp ? "dctcp" : "newreno", acc, mae,
                full.rtt_cdf.quantile(0.99), hybrid.rtt_cdf.quantile(0.99),
                stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf));
    std::fflush(stdout);
  }

  bench::print_note(
      "expected shape: the pipeline trains and reproduces the RTT "
      "distribution for both protocols without any protocol-specific "
      "code in the models — DCTCP's groundtruth tail is shorter (ECN "
      "keeps queues shallow), and the trained models track each regime. "
      "Residual DCTCP error from unmodeled CE marks is expected (see "
      "header).");
  return 0;
}
