#include <chrono>
// Figure 1: simulation performance (simulated seconds per wall-clock
// second) on leaf-spine topologies of increasing size, for a single-
// threaded engine versus conservative PDES spread over 1, 2, and 4
// modeled machines.
//
// The paper ran OMNeT++'s MPI-based PDES on real servers; here the
// inter-machine costs are modeled (DESIGN.md §1): each synchronization
// round pays a base collective cost plus a per-cross-message cost, both
// growing with machine count. On a many-core host the 1-machine PDES can
// genuinely win at small sizes; on a single-core CI box thread
// parallelism cannot help, and the curves show the paper's headline
// effect — synchronization overhead makes PDES fall further behind the
// single thread as the fabric (and thus cross-partition traffic) grows.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/full_builder.h"
#include "core/pdes_builder.h"
#include "sim/parallel.h"
#include "telemetry/report.h"
#include "workload/generator.h"

namespace {

using namespace esim;            // NOLINT
using core::NetworkConfig;
using sim::SimTime;

NetworkConfig leaf_spine(std::uint32_t n) {
  NetworkConfig cfg;
  cfg.spec.clusters = 1;
  cfg.spec.tors_per_cluster = n;
  cfg.spec.aggs_per_cluster = n;  // paper: ToRs and Cluster switches 4..64
  cfg.spec.hosts_per_tor = 4;
  cfg.spec.cores = 0;
  return cfg;
}

struct Measurement {
  double sim_seconds = 0;
  double wall_seconds = 0;
  std::uint64_t events = 0;
  double rate() const {
    return wall_seconds <= 0 ? 0 : sim_seconds / wall_seconds;
  }
};

double run_duration_ms() { return bench::quick_mode() ? 0.5 : 2.0; }

Measurement run_single(std::uint32_t n, double load) {
  sim::Simulator sim{17};
  auto net = core::build_full_network(sim, leaf_spine(n));
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = load;
  const auto duration = SimTime::from_seconds_f(run_duration_ms() / 1e3);
  gcfg.stop_at = duration;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", net.hosts, sizes.get(), &matrix, gcfg);
  gen->start();
  const auto start = std::chrono::steady_clock::now();
  sim.run_until(duration);
  Measurement m;
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  m.sim_seconds = duration.to_seconds();
  m.events = sim.events_executed();
  return m;
}

Measurement run_pdes(std::uint32_t n, double load, std::uint32_t machines) {
  sim::ParallelEngine::Config ecfg;
  ecfg.num_partitions = 4;
  ecfg.lookahead = SimTime::from_us(1);
  ecfg.seed = 17;
  // Modeled MPI costs: a collective per window plus per-message transfer
  // cost; both grow with machine count (shared memory vs NIC + wire).
  ecfg.round_overhead_us = 3.0 * machines;
  ecfg.per_message_overhead_us = machines == 1 ? 0.2 : 0.6 * machines;
  sim::ParallelEngine engine{ecfg};

  auto net = core::build_leaf_spine_partitioned(engine, leaf_spine(n));
  auto sizes = workload::mini_web_distribution();
  workload::UniformTraffic matrix{net.spec.total_hosts()};
  const auto duration = SimTime::from_seconds_f(run_duration_ms() / 1e3);
  std::vector<workload::TrafficGenerator*> gens;
  for (std::uint32_t p = 0; p < engine.num_partitions(); ++p) {
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = load;
    gcfg.stop_at = duration;
    auto* gen =
        engine.partition(p).sim().add_component<workload::TrafficGenerator>(
            "gen" + std::to_string(p), net.hosts, sizes.get(), &matrix,
            gcfg);
    gen->admission_filter = [&net, p](net::HostId src, net::HostId) {
      return net.partition_of_host[src] == p;
    };
    gen->start();
    gens.push_back(gen);
  }
  const auto start = std::chrono::steady_clock::now();
  engine.run_until(duration);
  Measurement m;
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  m.sim_seconds = duration.to_seconds();
  m.events = engine.stats().events_executed;
  return m;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 1",
      "sim-seconds per wall-second, leaf-spine, DES vs PDES(1/2/4 machines)");

  const double load = 0.25;
  std::vector<std::uint32_t> sizes{4, 8, 16, 32};
  if (bench::quick_mode()) sizes = {4, 8};

  telemetry::RunReport report{"fig1_pdes_scaling"};
  report.set("bench", "fig1_pdes_scaling");
  report.set("load", load);

  std::printf("%-8s %-16s %-16s %-16s %-16s\n", "ToRs", "single-thread",
              "pdes-1machine", "pdes-2machines", "pdes-4machines");
  for (const auto n : sizes) {
    const auto single = run_single(n, load);
    const auto p1 = run_pdes(n, load, 1);
    const auto p2 = run_pdes(n, load, 2);
    const auto p4 = run_pdes(n, load, 4);
    std::printf("%-8u %-16.4g %-16.4g %-16.4g %-16.4g\n", n, single.rate(),
                p1.rate(), p2.rate(), p4.rate());
    std::fflush(stdout);
    const std::string row = "tors" + std::to_string(n);
    report.set(row + ".single_thread.rate", single.rate());
    report.set(row + ".single_thread.events", single.events);
    report.set(row + ".pdes_1machine.rate", p1.rate());
    report.set(row + ".pdes_2machines.rate", p2.rate());
    report.set(row + ".pdes_4machines.rate", p4.rate());
    report.set(row + ".pdes_4machines.events", p4.events);
  }

  const std::string report_path = "BENCH_fig1_pdes_scaling.json";
  if (report.write(report_path)) {
    std::printf("wrote %s\n", report_path.c_str());
  }

  bench::print_note(
      "rows are sim-seconds advanced per wall-second (higher is better); "
      "the paper's Figure 1 plots the same quantity for OMNeT++.");
  bench::print_note(
      "expected shape: every column falls as the fabric grows; the "
      "multi-machine PDES columns fall fastest (synchronization + "
      "cross-partition messaging), leaving the single thread ahead at "
      "the largest sizes — the paper's motivation for avoiding "
      "parallelization as the answer.");
  return 0;
}
