// Ablation D (paper §7 "Generality" / "testing new LSTM variants"):
// trunk architecture — the paper's two-layer LSTM versus a GRU of the
// same width — trained on one shared trace and compared on training fit,
// end-to-end distributional accuracy, and inference cost.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.35;
  cfg.intra_fraction = 0.3;
  cfg.seed = 23;
  cfg.duration = bench::quick_mode() ? SimTime::from_ms(8)
                                     : SimTime::from_ms(25);
  cfg.train_duration = cfg.duration;
  cfg.model.hidden = 16;
  cfg.model.layers = bench::quick_mode() ? 1 : 2;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.batches = bench::quick_mode() ? 30 : 120;
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

double inference_ns_per_packet(approx::MicroModel& model) {
  approx::PacketFeatures f;
  f.v[0] = 0.4;
  f.v[7] = 0.9;
  model.reset_state();
  const int n = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) (void)model.predict(f);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  model.reset_state();
  return secs / n * 1e9;
}

}  // namespace

int main() {
  bench::print_header("Ablation D (paper §7)",
                      "trunk architecture: LSTM (paper) vs GRU variant");
  auto cfg = base_config();

  std::printf("recording shared trace + groundtruth run...\n");
  const auto trace = core::record_boundary_trace(cfg);
  const auto full = core::run_full_simulation(cfg, cfg.net.spec);

  std::printf("\n%-8s %-12s %-12s %-10s %-14s\n", "trunk", "drop-acc",
              "lat-MAE", "KS", "infer-ns/pkt");
  for (const auto kind : {ml::TrunkKind::Lstm, ml::TrunkKind::Gru}) {
    cfg.model.trunk = kind;
    auto models = core::train_from_trace(cfg, trace);
    const auto hybrid =
        core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    const double acc = (models.ingress_report.drop_accuracy +
                        models.egress_report.drop_accuracy) /
                       2.0;
    const double mae = (models.ingress_report.latency_mae +
                        models.egress_report.latency_mae) /
                       2.0;
    std::printf("%-8s %-12.3f %-12.3f %-10.3f %-14.0f\n",
                ml::trunk_kind_name(kind), acc, mae,
                stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf),
                inference_ns_per_packet(*models.egress));
    std::fflush(stdout);
  }

  bench::print_note(
      "expected shape: comparable accuracy between the two gated "
      "architectures with the GRU cheaper per inference (3 gate matrices "
      "vs 4) — the kind of cost/accuracy tradeoff §7 of the paper "
      "anticipates exploring.");
  return 0;
}
