// Microbenchmarks of the kernels underneath every experiment: event queue
// operations, RNG, ECMP hashing, link+switch forwarding, LSTM inference,
// and feature extraction. google-benchmark based.
#include <benchmark/benchmark.h>

#include "approx/features.h"
#include "approx/micro_model.h"
#include "core/full_builder.h"
#include "net/ecmp.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace esim;  // NOLINT

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng{1};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(sim::SimTime::from_ns(
                     static_cast<std::int64_t>(rng.uniform_int(1'000'000))),
                 [] {});
    }
    while (auto e = q.pop()) benchmark::DoNotOptimize(e->time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(65536);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10'000) sim.schedule_in(sim::SimTime::from_ns(10), tick);
    };
    sim.schedule_in(sim::SimTime::from_ns(1), tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng{2};
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_EcmpHash(benchmark::State& state) {
  net::FlowKey key{12, 345, 10'000, 80};
  std::uint32_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ecmp_index(key, ++salt, 8));
  }
}
BENCHMARK(BM_EcmpHash);

void BM_PathReplay(benchmark::State& state) {
  net::ClosSpec spec;
  spec.clusters = 16;
  spec.tors_per_cluster = 2;
  spec.aggs_per_cluster = 2;
  spec.hosts_per_tor = 4;
  spec.cores = 4;
  net::FlowKey key{0, 100, 10'000, 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::compute_path(spec, key));
  }
}
BENCHMARK(BM_PathReplay);

void BM_SwitchForwardThroughLink(benchmark::State& state) {
  sim::Simulator sim;
  core::NetworkConfig cfg;
  cfg.spec.clusters = 2;
  cfg.spec.cores = 2;
  auto net = core::build_full_network(sim, cfg);
  net::Packet pkt;
  pkt.flow = net::FlowKey{0, 12, 10'000, 80};
  pkt.payload = 1460;
  std::uint64_t id = 0;
  for (auto _ : state) {
    pkt.id = ++id;
    net.switches[0]->handle_packet(pkt);
    sim.run();  // drain the whole hop chain
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchForwardThroughLink);

void BM_LstmInferenceStep(benchmark::State& state) {
  approx::MicroModel::Config cfg;
  cfg.hidden = static_cast<std::size_t>(state.range(0));
  cfg.layers = 2;
  approx::MicroModel model{cfg};
  approx::PacketFeatures f;
  f.v[0] = 0.3;
  f.v[7] = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LstmInferenceStep)->Arg(16)->Arg(32)->Arg(128);

// The naive Tensor step() path, kept as the baseline the session is
// measured against (see bench_inference for the packets/s comparison).
void BM_LstmInferenceReference(benchmark::State& state) {
  approx::MicroModel::Config cfg;
  cfg.hidden = static_cast<std::size_t>(state.range(0));
  cfg.layers = 2;
  approx::MicroModel model{cfg};
  approx::PacketFeatures f;
  f.v[0] = 0.3;
  f.v[7] = 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_reference(f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LstmInferenceReference)->Arg(16)->Arg(32)->Arg(128);

void BM_FeatureExtraction(benchmark::State& state) {
  net::ClosSpec spec;
  spec.clusters = 4;
  spec.tors_per_cluster = 2;
  spec.aggs_per_cluster = 2;
  spec.hosts_per_tor = 4;
  spec.cores = 2;
  approx::FeatureExtractor fx{spec, 1, approx::Direction::Egress};
  net::Packet pkt;
  pkt.flow = net::FlowKey{8, 0, 10'000, 80};
  pkt.payload = 1460;
  std::int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.extract(pkt, sim::SimTime::from_ns(t += 700),
                   approx::MacroState::MinimalCongestion));
  }
}
BENCHMARK(BM_FeatureExtraction);

}  // namespace

BENCHMARK_MAIN();
