// Figure 5 companion: the paper's third source of speedup — "the
// approximate version was run in parallel. Because the interdependencies
// between cluster fabric switches are removed, parallel execution
// provides better speedups here than it does for full simulation."
//
// This bench runs the hybrid simulation sequentially and PDES-partitioned
// (one island per approximated cluster group) and reports the
// synchronization profile. On a multi-core host the partitioned run can
// overlap model inference across islands; on a single-core host it can
// only demonstrate that the partitioning is sound and cheap (few cross
// messages), which is itself the paper's structural point: approximation
// removes the interdependencies that made PDES of the full network slow.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/hybrid_pdes.h"
#include "core/run_report.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workload/generator.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

struct Outcome {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t sync_rounds = 0;
  std::uint64_t flows = 0;
  telemetry::Snapshot metrics;
};

core::ExperimentConfig base_config(std::uint32_t clusters) {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = clusters;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  cfg.load = 0.3;
  cfg.intra_fraction = 0.3;
  cfg.duration =
      bench::quick_mode() ? SimTime::from_ms(5) : SimTime::from_ms(15);
  cfg.train_duration =
      bench::quick_mode() ? SimTime::from_ms(10) : SimTime::from_ms(25);
  cfg.model.hidden = bench::quick_mode() ? 8 : 16;
  cfg.model.layers = 1;
  cfg.train.batches = bench::quick_mode() ? 30 : 100;
  cfg.train.batch_size = 32;
  cfg.train.seq_len = 16;
  cfg.train.learning_rate = 5e-3;
  return cfg;
}

Outcome run_parallel_hybrid(const core::ExperimentConfig& cfg,
                            const core::TrainedModels& models,
                            std::uint32_t partitions) {
  sim::ParallelEngine::Config ecfg;
  ecfg.num_partitions = partitions;
  ecfg.lookahead = SimTime::from_us(1);
  ecfg.seed = cfg.seed + 1;
  telemetry::Registry registry;  // outlives the engine publishing into it
  sim::ParallelEngine engine{ecfg};
  engine.set_telemetry(&registry);  // before components are built
  core::HybridConfig hcfg;
  hcfg.net = cfg.net;
  hcfg.approx = cfg.approx;
  hcfg.approx.macro = cfg.macro;
  auto out = core::build_hybrid_network_partitioned(
      engine, hcfg, *models.ingress, *models.egress);

  auto sizes = workload::mini_web_distribution();
  workload::ClusterMixTraffic matrix{cfg.net.spec, cfg.intra_fraction};
  std::vector<workload::TrafficGenerator*> gens;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    workload::TrafficGenerator::Config gcfg;
    gcfg.load = cfg.load;
    gcfg.stop_at = cfg.duration;
    auto* gen =
        engine.partition(p).sim().add_component<workload::TrafficGenerator>(
            "gen" + std::to_string(p), out.net.hosts, sizes.get(), &matrix,
            gcfg);
    gen->admission_filter = [&out, p, &cfg](net::HostId src,
                                            net::HostId dst) {
      if (out.partition_of_host[src] != p) return false;
      // Elide approx<->approx traffic, as in the sequential hybrid.
      return cfg.net.spec.cluster_of_host(src) == 0 ||
             cfg.net.spec.cluster_of_host(dst) == 0;
    };
    gen->start();
    gens.push_back(gen);
  }

  Outcome o;
  const auto t0 = std::chrono::steady_clock::now();
  engine.run_until(cfg.duration);
  o.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  o.events = engine.stats().events_executed;
  o.cross_messages = engine.stats().cross_messages;
  o.sync_rounds = engine.stats().sync_rounds;
  for (auto* g : gens) o.flows += g->launched();
  o.metrics = registry.snapshot();
  return o;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5 companion (paper §6.2, savings #3)",
      "parallel execution of the approximate simulation");

  std::vector<std::uint32_t> cluster_counts{4, 8};
  if (bench::quick_mode()) cluster_counts = {4};

  telemetry::RunReport report{"fig5_parallel"};
  report.set("bench", "fig5_parallel");
  bool traced = false;

  for (const auto clusters : cluster_counts) {
    auto cfg = base_config(clusters);
    cfg.telemetry = true;
    const std::string section = "clusters" + std::to_string(clusters);
    std::printf("\n--- %u clusters ---\n", clusters);
    const auto models = core::train_cluster_models(cfg);

    const auto seq = core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    std::printf("%-22s wall %.3fs, %llu events\n", "hybrid sequential",
                seq.wall_seconds,
                static_cast<unsigned long long>(seq.events_executed));
    core::add_run_result(report, section + ".sequential", seq);

    for (const std::uint32_t parts : {2u, 4u}) {
      // Trace the first PDES run: the chrome JSON shows per-partition
      // pdes.window spans, pdes.sync_round instants, and approx.inference
      // spans overlapping across islands.
      telemetry::TraceSession trace;
      const bool trace_this = !traced;
      if (trace_this) trace.start();
      const auto par = run_parallel_hybrid(cfg, models, parts);
      if (trace_this) {
        trace.stop();
        traced = true;
        const std::string trace_path = "BENCH_fig5_parallel_trace.json";
        if (trace.write_chrome_json(trace_path)) {
          std::printf("wrote %s (%llu events dropped to ring wrap)\n",
                      trace_path.c_str(),
                      static_cast<unsigned long long>(trace.overwritten()));
        }
      }
      std::printf(
          "%-15s (P=%u) wall %.3fs, %llu events, %llu cross msgs over "
          "%llu rounds\n",
          "hybrid PDES", parts, par.wall_seconds,
          static_cast<unsigned long long>(par.events),
          static_cast<unsigned long long>(par.cross_messages),
          static_cast<unsigned long long>(par.sync_rounds));
      const std::string ps = section + ".pdes_p" + std::to_string(parts);
      report.set(ps + ".wall_seconds", par.wall_seconds);
      report.set(ps + ".events_executed", par.events);
      report.set(ps + ".cross_messages", par.cross_messages);
      report.set(ps + ".sync_rounds", par.sync_rounds);
      report.set(ps + ".flows_launched", par.flows);
      report.add_metrics(par.metrics, ps + ".metrics");
    }
  }

  const std::string report_path = "BENCH_fig5_parallel.json";
  if (report.write(report_path)) {
    std::printf("wrote %s\n", report_path.c_str());
  }

  bench::print_note(
      "expected shape: the partitioned hybrid exchanges only "
      "boundary-crossing packets between islands (compare the cross "
      "message count with fig1's full-fabric PDES at similar scale), so "
      "parallel overhead is small; with real cores (not this 1-CPU "
      "container) the islands' model inference overlaps and yields the "
      "additional speedup the paper reports.");
  return 0;
}
