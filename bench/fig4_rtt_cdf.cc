// Figure 4: CDF of packet RTTs observed by full-fidelity hosts, in the
// groundtruth simulation versus the approximate simulation.
//
// Workflow (paper §3/§6.1): record a boundary trace in a 2-cluster full
// simulation, train the ingress/egress micro models, then run the same
// topology twice — all clusters full, and all-but-one approximated — and
// compare the RTT distributions seen by the full cluster's hosts.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/run_report.h"
#include "stats/distance.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig make_config() {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 2;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;  // paper: 4 switches + 8 servers/cluster
  cfg.net.spec.cores = 2;
  cfg.load = 0.35;
  cfg.intra_fraction = 0.3;
  cfg.seed = 2018;
  if (bench::quick_mode()) {
    cfg.duration = SimTime::from_ms(10);
    cfg.train_duration = SimTime::from_ms(10);
    cfg.model.hidden = 8;
    cfg.model.layers = 1;
    cfg.train.batches = 40;
    cfg.train.batch_size = 16;
    cfg.train.seq_len = 16;
    cfg.train.learning_rate = 5e-3;
  } else {
    cfg.duration = SimTime::from_ms(40);
    cfg.train_duration = SimTime::from_ms(40);
    cfg.model.hidden = 24;  // paper prototype: 128 on a GPU
    cfg.model.layers = 2;
    cfg.train.batches = 250;
    cfg.train.batch_size = 32;
    cfg.train.seq_len = 24;
    // The paper's 1e-4 assumes >50k batches; scaled-up LR for the scaled-
    // down budget (DESIGN.md §1).
    cfg.train.learning_rate = 5e-3;
  }
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Figure 4",
                      "CDF of packet RTTs: groundtruth vs approximation");
  auto cfg = make_config();
  cfg.telemetry = true;

  std::printf("[1/4] recording boundary trace (2-cluster full sim)...\n");
  const auto trace = core::record_boundary_trace(cfg);
  std::printf("      %zu boundary crossings\n", trace.records.size());

  std::printf("[2/4] training micro models...\n");
  const auto models = core::train_from_trace(cfg, trace);
  std::printf(
      "      ingress: loss %.4f -> %.4f, drop-acc %.3f, lat-MAE %.3f\n",
      models.ingress_report.initial_loss, models.ingress_report.final_loss,
      models.ingress_report.drop_accuracy, models.ingress_report.latency_mae);
  std::printf(
      "      egress : loss %.4f -> %.4f, drop-acc %.3f, lat-MAE %.3f\n",
      models.egress_report.initial_loss, models.egress_report.final_loss,
      models.egress_report.drop_accuracy, models.egress_report.latency_mae);

  std::printf("[3/4] groundtruth run...\n");
  const auto full = core::run_full_simulation(cfg, cfg.net.spec);
  std::printf("[4/4] approximate run...\n");
  const auto hybrid = core::run_hybrid_simulation(cfg, cfg.net.spec, models);

  std::printf("\nRTT CDF (seconds; the paper's Figure 4 axes)\n");
  std::printf("%-12s %-14s %-14s\n", "percentile", "groundtruth", "approx");
  for (const double p :
       {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    std::printf("p%-11g %-14.6g %-14.6g\n", p * 100,
                full.rtt_cdf.quantile(p), hybrid.rtt_cdf.quantile(p));
  }
  std::printf("\nsamples: groundtruth=%zu approx=%zu\n", full.rtt_cdf.size(),
              hybrid.rtt_cdf.size());
  std::printf("KS distance          : %.4f\n",
              stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf));
  std::printf("Wasserstein-1 (sec)  : %.3e\n",
              stats::wasserstein_distance(full.rtt_cdf, hybrid.rtt_cdf));
  std::printf("flows completed      : full=%llu approx=%llu\n",
              static_cast<unsigned long long>(full.flows_completed),
              static_cast<unsigned long long>(hybrid.flows_completed));
  std::printf("model-predicted drops: %llu (conflicts resolved: %llu)\n",
              static_cast<unsigned long long>(
                  hybrid.approx_stats.predicted_drops),
              static_cast<unsigned long long>(
                  hybrid.approx_stats.conflicts_resolved));

  telemetry::RunReport report{"fig4_rtt_cdf"};
  report.set("bench", "fig4_rtt_cdf");
  core::add_experiment_config(report, cfg, cfg.net.spec);
  report.set("train.boundary_records",
             static_cast<std::uint64_t>(models.boundary_records));
  report.set("train.ingress.final_loss", models.ingress_report.final_loss);
  report.set("train.egress.final_loss", models.egress_report.final_loss);
  core::add_run_result(report, "full", full);
  core::add_run_result(report, "hybrid", hybrid);
  report.set("distance.ks", stats::ks_distance(full.rtt_cdf, hybrid.rtt_cdf));
  report.set("distance.wasserstein_seconds",
             stats::wasserstein_distance(full.rtt_cdf, hybrid.rtt_cdf));
  const std::string report_path = "BENCH_fig4_rtt_cdf.json";
  if (report.write(report_path)) {
    std::printf("wrote %s\n", report_path.c_str());
  }

  bench::print_note(
      "reproduction target (paper §6.1): the approximate CDF rises at a "
      "similar latency value to the groundtruth with a steeper slope — "
      "distributional agreement, not per-packet agreement.");
  return 0;
}
