// Future-event-set microbenchmark: the pooled 4-ary-heap FES vs the seed
// implementation (binary heap of std::function entries + unordered_set
// liveness tracking), which is embedded below as `LegacyEventQueue` so the
// comparison never goes stale.
//
// Three workloads, all deterministic:
//   schedule_pop  — bulk schedule at pseudorandom times, then drain;
//   cancel_heavy  — TCP-retransmission-timer churn: most events are
//                   cancelled before they fire;
//   mixed         — interleaved schedule/cancel/pop stream.
//
// Prints a table and writes machine-readable BENCH_event_queue.json into
// the working directory so later PRs have a perf trajectory to regress
// against (format documented in EXPERIMENTS.md). Also cross-checks that
// both implementations pop the mixed stream in the identical (time, seq)
// order — the determinism contract ParallelEngine relies on.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"
#include "telemetry/report.h"

namespace esim::bench {
namespace {

using sim::SimTime;

// --- the seed FES, verbatim modulo renaming (baseline under test) ---

struct LegacyHandle {
  std::uint64_t id = 0;
};

struct LegacyEvent {
  SimTime time;
  std::uint64_t id = 0;
  std::function<void()> fn;
};

class LegacyEventQueue {
 public:
  LegacyHandle schedule(SimTime t, std::function<void()> fn) {
    const std::uint64_t id = next_id_++;
    heap_.push_back(Entry{t, id, id, std::move(fn)});
    sift_up(heap_.size() - 1);
    pending_.insert(id);
    return LegacyHandle{id};
  }

  bool cancel(LegacyHandle h) {
    if (h.id == 0) return false;
    return pending_.erase(h.id) > 0;
  }

  bool empty() const { return pending_.empty(); }

  std::optional<LegacyEvent> pop() {
    prune_top();
    if (heap_.empty()) return std::nullopt;
    Entry e = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    pending_.erase(e.id);
    return LegacyEvent{e.time, e.id, std::move(e.fn)};
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
  };

  static bool later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!later(heap_[parent], heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t smallest = i;
      if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
      if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  void prune_top() {
    while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0);
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::uint64_t next_id_ = 1;
};

// --- workloads ---

/// A payload shaped like the hot per-packet closures: `this` plus a
/// Packet-sized capture (fits EventFn's inline buffer, forces
/// std::function to the heap).
struct PacketLikePayload {
  std::uint64_t words[9];
  std::uint64_t* sink;
  void operator()() const { *sink += words[0]; }
};

volatile std::uint64_t g_sink_guard = 0;

/// Keeps `v` observable without volatile compound assignment (deprecated
/// in C++20).
inline void consume(std::uint64_t v) { g_sink_guard = g_sink_guard + v; }

template <typename Queue>
double run_schedule_pop(std::size_t n_events, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  for (std::size_t i = 0; i < n_events; ++i) {
    PacketLikePayload p{};
    p.words[0] = i;
    p.sink = &sink;
    q.schedule(SimTime::from_ns(
                   static_cast<std::int64_t>(rng.uniform_int(1'000'000))),
               p);
  }
  while (auto e = q.pop()) e->fn();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  consume(sink);
  return static_cast<double>(n_events) / dt.count();
}

template <typename Queue, typename Handle>
double run_cancel_heavy(std::size_t n_events, std::uint64_t seed) {
  // TCP timer churn: every "segment" schedules a retransmission timer that
  // its "ACK" then cancels; only 1 in 8 timers ever fires.
  sim::Rng rng{seed};
  std::uint64_t sink = 0;
  std::int64_t now = 0;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  std::vector<Handle> outstanding;
  outstanding.reserve(1024);
  std::size_t scheduled = 0;
  while (scheduled < n_events) {
    for (int i = 0; i < 1024 && scheduled < n_events; ++i, ++scheduled) {
      PacketLikePayload p{};
      p.words[0] = scheduled;
      p.sink = &sink;
      outstanding.push_back(q.schedule(
          SimTime::from_ns(now + 10'000 +
                           static_cast<std::int64_t>(rng.uniform_int(5'000))),
          p));
    }
    for (std::size_t i = 0; i + 1 < outstanding.size(); i += 8) {
      for (std::size_t j = i; j < i + 7 && j < outstanding.size(); ++j) {
        q.cancel(outstanding[j]);
      }
    }
    outstanding.clear();
    while (auto e = q.pop()) {
      now = e->time.ns();
      e->fn();
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  consume(sink);
  return static_cast<double>(n_events) / dt.count();
}

/// Runs the mixed stream; when `order_out` is non-null, records the
/// (time, payload id) pop sequence for the determinism cross-check.
template <typename Queue, typename Handle>
double run_mixed(std::size_t n_events, std::uint64_t seed,
                 std::vector<std::pair<std::int64_t, std::uint64_t>>*
                     order_out) {
  sim::Rng rng{seed};
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  Queue q;
  std::vector<Handle> live;
  live.reserve(n_events);
  std::size_t scheduled = 0;
  std::int64_t now = 0;
  while (scheduled < n_events || !q.empty()) {
    const std::uint64_t dice = rng.uniform_int(4);
    if (scheduled < n_events && dice < 2) {
      PacketLikePayload p{};
      p.words[0] = scheduled;
      p.sink = &sink;
      live.push_back(q.schedule(
          SimTime::from_ns(now + 1 +
                           static_cast<std::int64_t>(rng.uniform_int(50'000))),
          p));
      ++scheduled;
    } else if (dice == 2 && !live.empty()) {
      const std::size_t idx = rng.uniform_int(live.size());
      q.cancel(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      if (auto e = q.pop()) {
        now = e->time.ns();
        const std::uint64_t before = sink;
        e->fn();
        if (order_out != nullptr) {
          order_out->emplace_back(e->time.ns(), sink - before);
        }
      }
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  consume(sink);
  return static_cast<double>(n_events) / dt.count();
}

double best_of(int repeats, const std::function<double()>& run) {
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) best = std::max(best, run());
  return best;
}

struct Row {
  std::string name;
  double legacy_eps = 0.0;
  double new_eps = 0.0;
  double speedup() const { return new_eps / legacy_eps; }
};

}  // namespace
}  // namespace esim::bench

int main() {
  using namespace esim::bench;
  using esim::sim::EventHandle;
  using esim::sim::EventQueue;

  const std::size_t n = quick_mode() ? 20'000 : 400'000;
  const int repeats = quick_mode() ? 2 : 3;
  const std::uint64_t seed = 20260805;

  print_header("BENCH event_queue",
               "pooled 4-ary-heap FES vs seed binary-heap/std::function FES");

  std::vector<Row> rows;
  {
    Row r{"schedule_pop"};
    r.legacy_eps = best_of(
        repeats, [&] { return run_schedule_pop<LegacyEventQueue>(n, seed); });
    r.new_eps = best_of(
        repeats, [&] { return run_schedule_pop<EventQueue>(n, seed); });
    rows.push_back(r);
  }
  {
    Row r{"cancel_heavy"};
    r.legacy_eps = best_of(repeats, [&] {
      return run_cancel_heavy<LegacyEventQueue, LegacyHandle>(n, seed);
    });
    r.new_eps = best_of(repeats, [&] {
      return run_cancel_heavy<EventQueue, EventHandle>(n, seed);
    });
    rows.push_back(r);
  }
  std::vector<std::pair<std::int64_t, std::uint64_t>> order_legacy;
  std::vector<std::pair<std::int64_t, std::uint64_t>> order_new;
  {
    Row r{"mixed"};
    r.legacy_eps = best_of(repeats, [&] {
      order_legacy.clear();
      return run_mixed<LegacyEventQueue, LegacyHandle>(n, seed, &order_legacy);
    });
    r.new_eps = best_of(repeats, [&] {
      order_new.clear();
      return run_mixed<EventQueue, EventHandle>(n, seed, &order_new);
    });
    rows.push_back(r);
  }

  const bool order_identical = order_legacy == order_new;

  std::printf("%-14s %15s %15s %9s\n", "workload", "legacy (ev/s)",
              "pooled (ev/s)", "speedup");
  for (const Row& r : rows) {
    std::printf("%-14s %15.0f %15.0f %8.2fx\n", r.name.c_str(), r.legacy_eps,
                r.new_eps, r.speedup());
  }
  std::printf("mixed pop order identical to legacy: %s\n",
              order_identical ? "yes" : "NO (determinism regression!)");

  // Same top-level keys as before PR 3 (EXPERIMENTS.md), now emitted as a
  // versioned telemetry run report.
  esim::telemetry::RunReport report{"event_queue"};
  report.set("bench", "event_queue");
  report.set("events_per_workload", static_cast<std::uint64_t>(n));
  report.set("order_identical", order_identical);
  for (const Row& r : rows) {
    report.set("workloads." + r.name + ".events_per_sec_legacy",
               r.legacy_eps);
    report.set("workloads." + r.name + ".events_per_sec", r.new_eps);
    report.set("workloads." + r.name + ".speedup", r.speedup());
  }
  const std::string path = "BENCH_event_queue.json";
  if (report.write(path)) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", path.c_str());
  }

  print_note(
      "events/sec counts each event once through its schedule->pop/cancel "
      "lifecycle; 'legacy' is the seed FES embedded in this binary.");
  return order_identical ? 0 : 1;
}
