// Shared helpers for the figure-reproduction benches.
//
// Every figure bench prints: a header naming the paper figure it
// regenerates, the series the figure plots (one row per point), and a
// trailing NOTES section explaining how to read the shape. Absolute
// numbers differ from the paper (different hardware, no OMNeT++, no GPU);
// the shapes are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace esim::bench {

/// True when the ESIM_BENCH_QUICK environment variable is set: benches
/// shrink durations/training to smoke-test size.
inline bool quick_mode() {
  const char* v = std::getenv("ESIM_BENCH_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  if (quick_mode()) std::printf("(ESIM_BENCH_QUICK: reduced scale)\n");
  std::printf("==============================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("NOTE: %s\n", note.c_str());
}

}  // namespace esim::bench
