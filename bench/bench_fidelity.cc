// Fidelity-observatory overhead: events/s on a hybrid (approx-cluster)
// run with the observatory off vs on at 1/64 and 1/16 shadow sampling.
//
// The cost contract (DESIGN.md §11) says the observatory is pay-for-use:
// off, it is one null-pointer branch per boundary packet; on, the
// per-packet tax is two counter bumps plus one SplitMix64 hash, and only
// the 1-in-N admitted packets pay for a reference forward pass and a
// queue-model peek. The acceptance bar is <=5% events/s overhead at
// 1/64 sampling. Because the observatory schedules no events and draws
// no randomness, every instrumented run below is digest-identical to
// its baseline — asserted here on every repetition, so the bench doubles
// as a determinism check at a scale the fuzz tier does not reach.
//
// Runs use the largest scenario the differential harness generates
// (hand-pinned, not fuzzed) with sampled drops and batching on — the
// production configuration. Each point is the best of R repetitions to
// shave scheduler noise; overhead is reported against the off baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "check/hybrid_diff.h"
#include "telemetry/fidelity.h"
#include "telemetry/report.h"

namespace {

using namespace esim;  // NOLINT

check::HybridScenario bench_scenario(bool quick) {
  check::HybridScenario sc;
  sc.seed = 2026;
  sc.clusters = 4;
  sc.tors_per_cluster = 2;
  sc.aggs_per_cluster = 2;
  sc.hosts_per_tor = 2;
  sc.cores = 2;
  sc.model_seed = 11;
  sc.drop_bias = -2.0;
  sc.latency_mean_us = 8.0;
  sc.sample_drops = true;
  sc.batch_max = 8;
  sc.duration_ns = quick ? 2'000'000 : 40'000'000;

  // Dense all-pairs-ish flow schedule: every boundary crossing is a
  // candidate for shadow admission, so the on-vs-off delta is dominated
  // by observatory cost rather than idle engine ticks.
  const std::uint32_t hosts = sc.total_hosts();
  const std::size_t flows = quick ? 160 : 2'400;
  std::int64_t t = 1'000;
  for (std::size_t i = 0; i < flows; ++i) {
    check::FlowSpec f;
    f.src = static_cast<net::HostId>((i * 5) % hosts);
    f.dst = static_cast<net::HostId>((i * 5 + hosts / 2 + 1) % hosts);
    if (f.src == f.dst) f.dst = (f.dst + 1) % hosts;
    f.bytes = 2'000 + 512 * (i % 7);
    f.flow_id = i + 1;
    f.start_ns = t;
    t += 7'001;  // co-prime stagger: no duplicate start times
    sc.flows.push_back(f);
  }
  sc.validate();
  return sc;
}

struct Point {
  double wall_best = 0;          // seconds, best of reps
  std::uint64_t events = 0;
  check::Digest digest;
  std::uint64_t shadow_samples = 0;
  std::uint64_t rows = 0;
};

Point run_point(const check::HybridScenario& sc, std::uint32_t partitions,
                std::uint32_t sample_period, int reps) {
  Point pt;
  pt.wall_best = 1e30;
  for (int r = 0; r < reps; ++r) {
    telemetry::FidelitySink* sink = nullptr;
    std::unique_ptr<telemetry::FidelitySink> owned;
    if (sample_period > 0) {
      telemetry::FidelityConfig fcfg;
      fcfg.enabled = true;
      fcfg.sample_period = sample_period;
      owned = std::make_unique<telemetry::FidelitySink>(fcfg);
      sink = owned.get();
    }
    const auto start = std::chrono::steady_clock::now();
    const auto digest =
        check::run_hybrid(sc, partitions, /*batching=*/true, sink);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    pt.wall_best = std::min(pt.wall_best, wall);
    pt.events = digest.events;
    pt.digest = digest;
    if (sink) {
      std::uint64_t shadow = 0;
      for (const auto& s : sink->summaries()) shadow += s.shadow_samples;
      pt.shadow_samples = shadow;
      pt.rows = sink->rows_appended();
    }
  }
  return pt;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  bench::print_header("bench_fidelity",
                      "fidelity observatory overhead: hybrid events/s with "
                      "shadow sampling off / 1-per-64 / 1-per-16");
  if (quick) bench::print_note("quick mode: shrunken horizon and flow count");

  const auto sc = bench_scenario(quick);
  const int reps = quick ? 2 : 5;
  const std::vector<std::uint32_t> engines = {0, 2};  // sequential, PDES(2)
  const std::vector<std::uint32_t> periods = {0, 64, 16};

  telemetry::RunReport report{"bench_fidelity"};
  report.set("scenario.flows", static_cast<std::uint64_t>(sc.flows.size()));
  report.set("scenario.duration_ns",
             static_cast<std::uint64_t>(sc.duration_ns));

  std::printf("%-12s %-10s %12s %14s %10s %8s %8s\n", "engine", "sampling",
              "events", "events/s", "overhead", "shadow", "rows");
  bool digest_ok = true;
  for (std::uint32_t p : engines) {
    Point base;
    const std::string engine = p == 0 ? "sequential" : "pdes(" +
                                   std::to_string(p) + ")";
    for (std::uint32_t period : periods) {
      const Point pt = run_point(sc, p, period, reps);
      if (period == 0) {
        base = pt;
      } else if (!(pt.digest == base.digest)) {
        digest_ok = false;
      }
      const double eps = pt.wall_best > 0
                             ? static_cast<double>(pt.events) / pt.wall_best
                             : 0;
      const double base_eps =
          base.wall_best > 0
              ? static_cast<double>(base.events) / base.wall_best
              : 0;
      const double overhead =
          period == 0 || base_eps <= 0 ? 0.0 : (base_eps - eps) / base_eps;
      const std::string sampling =
          period == 0 ? "off" : "1/" + std::to_string(period);
      std::printf("%-12s %-10s %12llu %14.0f %9.2f%% %8llu %8llu\n",
                  engine.c_str(), sampling.c_str(),
                  static_cast<unsigned long long>(pt.events), eps,
                  overhead * 100.0,
                  static_cast<unsigned long long>(pt.shadow_samples),
                  static_cast<unsigned long long>(pt.rows));
      const std::string key =
          "series." + engine + ".period_" + std::to_string(period);
      report.set(key + ".events", pt.events);
      report.set(key + ".events_per_sec", eps);
      report.set(key + ".overhead", overhead);
      report.set(key + ".shadow_samples", pt.shadow_samples);
      report.set(key + ".rows", pt.rows);
    }
  }
  report.set("digest_invariant", digest_ok);
  if (!digest_ok)
    std::printf("FAIL: instrumented digest diverged from baseline\n");
  else
    bench::print_note(
        "all instrumented runs digest-identical to their baselines");
  report.write("BENCH_fidelity.json");
  return digest_ok ? 0 : 1;
}
