// Adaptive multi-granularity bench (DESIGN.md §12): what does letting a
// cluster's fidelity tier float — packet <-> ML-approx <-> fluid, switched
// at macro-window boundaries — buy, and what does it cost?
//
// Two sections, two harnesses:
//
//   A. Accuracy against the all-packet reference (experiment pipeline):
//      train the boundary models once, run the topology fully packet-
//      level, then run the hybrid three ways — tier pinned to Packet,
//      pinned to Ml (the paper's configuration), and Adaptive — and
//      report events/s, the Kolmogorov distance between each variant's
//      FCT CDF and the reference's, the per-tier packet mix, and the
//      fidelity observatory's drift-band verdict.
//
//   B. Speed on a quiescent-heavy corpus (check harness): hand-pinned
//      scenarios with steady cross traffic whose boundary utilization
//      stays under the quiescent threshold. This is the regime the
//      adaptive controller is built for: packets keep flowing (so the
//      pinned-Ml policy pays a production-sized inference for every
//      one), but the cluster classifies quiescent, so the controller
//      demotes to the fluid rate model within a few windows and skips
//      inference for the rest of the run. Acceptance: adaptive >= 2x
//      the events/s of the pinned-Ml configuration over the corpus.
//
// Output schema (BENCH_granularity.json) is documented in EXPERIMENTS.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "check/hybrid_diff.h"
#include "core/experiment.h"
#include "core/run_report.h"
#include "stats/distance.h"
#include "telemetry/report.h"

namespace {

using namespace esim;  // NOLINT
using sim::SimTime;

core::ExperimentConfig make_config(bool quick) {
  core::ExperimentConfig cfg;
  cfg.net.spec.clusters = 3;
  cfg.net.spec.tors_per_cluster = 2;
  cfg.net.spec.aggs_per_cluster = 2;
  cfg.net.spec.hosts_per_tor = 4;
  cfg.net.spec.cores = 2;
  // Modest load: the approximated clusters only see their share of the
  // cross traffic with cluster 0, so their boundary utilization hovers
  // around the quiescent threshold — windows of both regimes, which is
  // exactly the case the controller has to navigate.
  cfg.load = 0.25;
  cfg.intra_fraction = 0.3;
  cfg.seed = 2018;
  if (quick) {
    cfg.duration = SimTime::from_ms(8);
    cfg.train_duration = SimTime::from_ms(8);
    cfg.model.hidden = 8;
    cfg.model.layers = 1;
    cfg.train.batches = 30;
    cfg.train.batch_size = 16;
    cfg.train.seq_len = 16;
  } else {
    cfg.duration = SimTime::from_ms(40);
    cfg.train_duration = SimTime::from_ms(30);
    cfg.model.hidden = 24;
    cfg.model.layers = 2;
    cfg.train.batches = 200;
    cfg.train.batch_size = 32;
    cfg.train.seq_len = 24;
  }
  cfg.train.learning_rate = 5e-3;
  // The observatory supplies the controller's congestion signal; keep it
  // on for every hybrid variant so each reports its drift bands too.
  cfg.fidelity.enabled = true;
  cfg.fidelity.sample_period = 64;
  cfg.fidelity.quiescent_util = 0.05;
  cfg.fidelity.congested_util = 0.5;
  return cfg;
}

// One corpus scenario: steady low-utilization cross traffic. Unlike the
// fuzz generator's burst-and-silence shape (built to exercise
// transitions), this is the controller's target regime — packets flow
// continuously, so the Ml tier pays a production-sized inference for
// every one of them, while the cluster's utilization stays under the
// quiescent threshold, so the adaptive policy demotes to the fluid rate
// model almost immediately and keeps the savings for the whole run.
check::HybridScenario quiescent_scenario(std::uint64_t i, bool quick) {
  check::HybridScenario sc;
  sc.seed = 3000 + i;
  sc.clusters = 3;
  sc.tors_per_cluster = 2;
  sc.aggs_per_cluster = 2;
  sc.hosts_per_tor = 2;
  sc.cores = 2;
  sc.model_seed = 40 + i;
  sc.model_hidden = 48;  // production-like inference cost
  sc.model_layers = 2;
  sc.drop_bias = -3.0;
  sc.latency_mean_us = 8.0;
  sc.sample_drops = true;  // sequential-only section, streams coincide
  sc.min_latency_us = 5.0;
  sc.batch_max = 8;
  sc.batch_window_ns = 3'000;
  sc.adaptive_tiers = false;  // run_corpus sets the policy per run
  sc.min_dwell_windows = 2;
  sc.quiescent_util = 0.25;
  sc.congested_util = 0.6;
  sc.congested_drop_rate = 0.5;
  sc.classify_ewma_alpha = 0.6;
  sc.duration_ns = quick ? 6'000'000 : 25'000'000;
  const std::uint32_t hosts = sc.total_hosts();
  std::int64_t t = 10'000;
  std::uint64_t id = 1;
  while (t < sc.duration_ns - 500'000) {
    check::FlowSpec f;
    f.src = static_cast<net::HostId>((id * 5 + i) % hosts);
    f.dst = static_cast<net::HostId>((id * 7 + i + hosts / 2) % hosts);
    if (f.src == f.dst) f.dst = (f.dst + 1) % hosts;
    f.bytes = 4 * 1400 + 1400 * (id % 5);
    f.flow_id = id++;
    f.start_ns = t;
    t += 15'001 + 500 * static_cast<std::int64_t>(id % 7);
    sc.flows.push_back(f);
  }
  sc.validate();
  return sc;
}

std::uint64_t band_violations(const telemetry::Json& fidelity) {
  const telemetry::Json* v = fidelity.find("violating_clusters");
  return v != nullptr ? static_cast<std::uint64_t>(v->size()) : 0;
}

double events_per_sec(const core::RunResult& r) {
  return r.wall_seconds > 0
             ? static_cast<double>(r.events_executed) / r.wall_seconds
             : 0.0;
}

struct CorpusPoint {
  std::uint64_t events = 0;
  double wall = 0.0;
  std::uint64_t transitions = 0;
  double eps() const {
    return wall > 0 ? static_cast<double>(events) / wall : 0.0;
  }
};

CorpusPoint run_corpus(const std::vector<check::HybridScenario>& corpus,
                       bool adaptive, core::ClusterTier fixed_tier) {
  CorpusPoint pt;
  for (check::HybridScenario sc : corpus) {
    sc.adaptive_tiers = adaptive;
    sc.fixed_tier = fixed_tier;
    check::TierTraces traces;
    const auto start = std::chrono::steady_clock::now();
    const check::Digest d =
        check::run_hybrid(sc, /*partitions=*/0, /*batching=*/true,
                          /*fidelity=*/nullptr, adaptive ? &traces : nullptr);
    pt.wall +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    pt.events += d.events;
    for (const auto& [cluster, trace] : traces) {
      pt.transitions += trace.size();
    }
  }
  return pt;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  bench::print_header(
      "bench_granularity",
      "adaptive tier switching: accuracy vs the all-packet reference, "
      "events/s on the quiescent-heavy corpus");

  telemetry::RunReport report{"bench_granularity"};

  // ---- Section A: accuracy against the all-packet reference ----
  auto cfg = make_config(quick);
  std::printf("[A] training boundary models (%s)...\n",
              quick ? "quick" : "full");
  const auto models = core::train_cluster_models(cfg);
  std::printf("    %zu boundary records, ingress loss %.4f -> %.4f\n",
              models.boundary_records, models.ingress_report.initial_loss,
              models.ingress_report.final_loss);

  std::printf("[A] all-packet reference run...\n");
  const auto full = core::run_full_simulation(cfg, cfg.net.spec);
  report.set("reference.events", full.events_executed);
  report.set("reference.events_per_sec", events_per_sec(full));
  report.set("reference.flows_completed", full.flows_completed);

  struct Variant {
    const char* name;
    core::ClusterTierPolicy::Mode mode;
    core::ClusterTier tier;
  };
  const std::vector<Variant> variants = {
      {"fixed_packet", core::ClusterTierPolicy::Mode::Fixed,
       core::ClusterTier::Packet},
      {"fixed_ml", core::ClusterTierPolicy::Mode::Fixed,
       core::ClusterTier::Ml},
      {"adaptive", core::ClusterTierPolicy::Mode::Adaptive,
       core::ClusterTier::Ml},
  };

  std::printf("\n%-14s %12s %14s %8s %26s %6s %6s\n", "variant", "events",
              "events/s", "ks_fct", "tier mix (pkt/ml/fluid)", "trans",
              "bands");
  for (const auto& v : variants) {
    cfg.approx.tier.mode = v.mode;
    cfg.approx.tier.fixed_tier = v.tier;
    const auto run = core::run_hybrid_simulation(cfg, cfg.net.spec, models);
    const double ks = (!full.fct_cdf.empty() && !run.fct_cdf.empty())
                          ? stats::ks_distance(full.fct_cdf, run.fct_cdf)
                          : 1.0;
    const auto& tp = run.approx_stats.tier_packets;
    const std::uint64_t violations = band_violations(run.fidelity);
    std::printf("%-14s %12llu %14.0f %8.4f %8llu/%8llu/%8llu %6llu %6llu\n",
                v.name, static_cast<unsigned long long>(run.events_executed),
                events_per_sec(run), ks,
                static_cast<unsigned long long>(tp[0]),
                static_cast<unsigned long long>(tp[1]),
                static_cast<unsigned long long>(tp[2]),
                static_cast<unsigned long long>(
                    run.approx_stats.tier_transitions),
                static_cast<unsigned long long>(violations));
    const std::string key = std::string{"series."} + v.name;
    report.set(key + ".events", run.events_executed);
    report.set(key + ".events_per_sec", events_per_sec(run));
    report.set(key + ".ks_fct_vs_reference", ks);
    report.set(key + ".flows_completed", run.flows_completed);
    report.set(key + ".tier_packets.packet", tp[0]);
    report.set(key + ".tier_packets.ml", tp[1]);
    report.set(key + ".tier_packets.fluid", tp[2]);
    report.set(key + ".tier_transitions", run.approx_stats.tier_transitions);
    report.set(key + ".band_violations", violations);
  }

  // ---- Section B: events/s on the quiescent-heavy fuzz corpus ----
  const std::size_t n_scenarios = quick ? 2 : 6;
  std::vector<check::HybridScenario> corpus;
  for (std::size_t i = 0; i < n_scenarios; ++i) {
    corpus.push_back(quiescent_scenario(i, quick));
  }
  std::printf("\n[B] quiescent-heavy corpus: %zu scenarios, %zu flows each\n",
              n_scenarios, corpus.front().flows.size());

  const CorpusPoint ml =
      run_corpus(corpus, /*adaptive=*/false, core::ClusterTier::Ml);
  const CorpusPoint pkt =
      run_corpus(corpus, /*adaptive=*/false, core::ClusterTier::Packet);
  const CorpusPoint fluid =
      run_corpus(corpus, /*adaptive=*/false, core::ClusterTier::Fluid);
  const CorpusPoint adaptive =
      run_corpus(corpus, /*adaptive=*/true, core::ClusterTier::Ml);
  const double speedup = ml.eps() > 0 ? adaptive.eps() / ml.eps() : 0.0;

  std::printf("%-14s %12s %14s %8s\n", "policy", "events", "events/s",
              "trans");
  const auto print_policy = [&](const char* name, const CorpusPoint& p) {
    std::printf("%-14s %12llu %14.0f %8llu\n", name,
                static_cast<unsigned long long>(p.events), p.eps(),
                static_cast<unsigned long long>(p.transitions));
    const std::string key = std::string{"corpus."} + name;
    report.set(key + ".events", p.events);
    report.set(key + ".events_per_sec", p.eps());
    report.set(key + ".tier_transitions", p.transitions);
  };
  print_policy("fixed_packet", pkt);
  print_policy("fixed_ml", ml);
  print_policy("fixed_fluid", fluid);
  print_policy("adaptive", adaptive);
  std::printf("adaptive vs fixed_ml events/s: %.2fx (acceptance >= 2x)\n",
              speedup);
  report.set("corpus.scenarios", static_cast<std::uint64_t>(n_scenarios));
  report.set("corpus.adaptive_speedup_vs_fixed_ml", speedup);
  report.set("corpus.speedup_target_met", speedup >= 2.0);

  report.write("BENCH_granularity.json");
  std::printf("wrote BENCH_granularity.json\n");
  if (adaptive.transitions == 0) {
    std::printf("FAIL: the adaptive corpus runs never transitioned\n");
    return 1;
  }
  return 0;
}
