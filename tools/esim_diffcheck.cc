// esim_diffcheck: differential determinism checker.
//
//   esim_diffcheck fuzz [--n N] [--seed S] [--partitions 1,2,4]
//                       [--out PREFIX] [--inject-tiebreak-bug]
//     Generates N scenarios from seed S and checks each one: sequential vs
//     PDES at every partition count (engine-invariant digest lanes), plus
//     a rerun-determinism pass of the widest PDES config against itself
//     (full digest, pop order included). On divergence: prints the report
//     with the bisected first-divergence window, shrinks the scenario to a
//     minimal repro, writes it to PREFIX<k>.scenario, and exits 1.
//
//   esim_diffcheck replay FILE [--partitions 1,2,4] [--inject-tiebreak-bug]
//     Re-runs the checks on a saved (possibly shrunk) scenario file.
//
//   esim_diffcheck hybrid [--n N] [--seed S] [--partitions 2,3]
//     Generates N hybrid (approx-cluster) scenarios with cross-packet
//     batched inference active and checks each one twice: sequential
//     batching-on vs batching-off with sampled drops (the RNG draw-order
//     contract), then sequential vs PDES at every partition count with
//     N>1 coalescing on both sides (threshold drops; engine-invariant
//     digest lanes). Scenarios are pure functions of S, so a failure is
//     reproducible from the printed seed alone.
//
//   esim_diffcheck fidelity [--n N] [--seed S] [--partitions 2,4]
//     Generates N hybrid scenarios and checks, for each, that enabling
//     the fidelity observatory (shadow sampling at 1/16 + congestion
//     telemetry) leaves the FULL digest — event counts, pop order, every
//     lane — bit-identical to the same run with it off: sequentially
//     (batched and unbatched) and at every PDES partition count, sampled
//     drops throughout. Also requires that the instrumented runs did
//     real work (shadow samples > 0 overall), so a silently-disabled
//     probe cannot pass.
//
//   esim_diffcheck granularity [--n N] [--seed S] [--partitions 2,4]
//     Generates N quiescent-heavy adaptive-tier scenarios (DESIGN.md §12)
//     and checks each one: sequential batching on vs off with sampled
//     drops, then sequential vs PDES at every partition count with
//     threshold drops — engine-invariant digest lanes (tier lane
//     included) plus element-wise tier-transition trace comparison per
//     cluster. Also requires that the corpus executed at least one real
//     transition, so a controller that never engages cannot pass.
//
//   esim_diffcheck memo [--n N] [--seed S] [--partitions 2,4]
//     Generates N periodic (ML-training-style) scenarios and checks each
//     one's phase-memoization equivalence (src/memo): memo-on vs memo-off
//     at FULL digest identity (order lane included) sequentially and at
//     every PDES partition count, the chunked memo-off baseline against
//     the unchunked DiffRunner, and the aggregate-only fast-forward mode
//     against the memo-off final-state fingerprint. Also requires the
//     corpus produced real cache hits, so memoization that never engages
//     cannot pass.
//
//   esim_diffcheck selftest
//     Proves the harness has teeth: runs a crafted tie-rich scenario with
//     the FES tie-break deliberately inverted on one side and demands the
//     divergence is caught, localized, and shrunk. Exits 0 only when the
//     injected bug is detected AND clean configurations still agree.
//
// Exit codes: 0 = all equivalent, 1 = divergence (or selftest failure),
// 2 = usage / IO error.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/diff_runner.h"
#include "check/fuzzer.h"
#include "check/hybrid_diff.h"
#include "check/scenario.h"
#include "memo/memo_diff.h"

namespace {

using esim::check::DiffReport;
using esim::check::DiffRunner;
using esim::check::EngineSpec;
using esim::check::FlowSpec;
using esim::check::Scenario;
using esim::check::ScenarioFuzzer;

struct Args {
  std::string mode;
  std::string replay_file;
  int n = 25;
  std::uint64_t seed = 1;
  std::vector<std::uint32_t> partitions = {1, 2, 4};
  bool partitions_set = false;
  std::string out_prefix = "diffcheck_repro_";
  bool inject_tiebreak_bug = false;
};

[[noreturn]] void usage() {
  std::cerr
      << "usage: esim_diffcheck fuzz [--n N] [--seed S] [--partitions "
         "1,2,4] [--out PREFIX] [--inject-tiebreak-bug]\n"
         "       esim_diffcheck replay FILE [--partitions 1,2,4] "
         "[--inject-tiebreak-bug]\n"
         "       esim_diffcheck hybrid [--n N] [--seed S] "
         "[--partitions 2,3]\n"
         "       esim_diffcheck fidelity [--n N] [--seed S] "
         "[--partitions 2,4]\n"
         "       esim_diffcheck granularity [--n N] [--seed S] "
         "[--partitions 2,4]\n"
         "       esim_diffcheck memo [--n N] [--seed S] "
         "[--partitions 2,4]\n"
         "       esim_diffcheck selftest\n";
  std::exit(2);
}

std::vector<std::uint32_t> parse_partitions(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::istringstream is{s};
  std::string part;
  while (std::getline(is, part, ',')) {
    const unsigned long v = std::stoul(part);
    if (v == 0) {
      std::cerr << "esim_diffcheck: partition counts must be >= 1\n";
      std::exit(2);
    }
    out.push_back(static_cast<std::uint32_t>(v));
  }
  if (out.empty()) usage();
  return out;
}

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 2) usage();
  a.mode = argv[1];
  int i = 2;
  if (a.mode == "replay") {
    if (argc < 3) usage();
    a.replay_file = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--n") {
      a.n = std::stoi(value());
    } else if (arg == "--seed") {
      a.seed = std::stoull(value());
    } else if (arg == "--partitions") {
      a.partitions = parse_partitions(value());
      a.partitions_set = true;
    } else if (arg == "--out") {
      a.out_prefix = value();
    } else if (arg == "--inject-tiebreak-bug") {
      a.inject_tiebreak_bug = true;
    } else {
      usage();
    }
  }
  return a;
}

/// Runs check_all and prints each report; returns the first failing
/// report, if any.
bool run_checks(const DiffRunner& runner, const Scenario& sc,
                const Args& args, DiffReport* failing) {
  const auto reports =
      runner.check_all(sc, args.partitions, args.inject_tiebreak_bug);
  bool ok = true;
  for (const DiffReport& r : reports) {
    if (r.equivalent) {
      std::cout << "  " << r.base.label() << " vs " << r.other.label()
                << ": EQUIVALENT\n";
    } else {
      std::cout << r.to_string() << "\n";
      if (ok && failing != nullptr) *failing = r;
      ok = false;
    }
  }
  return ok;
}

int cmd_fuzz(const Args& args) {
  DiffRunner runner;
  ScenarioFuzzer fuzzer{args.seed};
  int failures = 0;
  for (int k = 0; k < args.n; ++k) {
    Scenario sc = fuzzer.next();
    std::cout << "[" << (k + 1) << "/" << args.n << "] " << sc.summary()
              << "\n";
    DiffReport failing;
    if (run_checks(runner, sc, args, &failing)) continue;

    ++failures;
    std::cout << "shrinking repro...\n";
    const Scenario shrunk =
        fuzzer.shrink(sc, [&](const Scenario& cand) {
          return !runner.diff(cand, failing.base, failing.other).equivalent;
        });
    const std::string path =
        args.out_prefix + std::to_string(k) + ".scenario";
    esim::check::save_scenario(shrunk, path);
    std::cout << "shrunk to " << shrunk.summary() << "\nrepro written: "
              << path << "  (replay with: esim_diffcheck replay " << path
              << ")\n"
              << runner.diff(shrunk, failing.base, failing.other).to_string()
              << "\n";
  }
  std::cout << (args.n - failures) << "/" << args.n
            << " scenarios equivalent across engines\n";
  return failures == 0 ? 0 : 1;
}

int cmd_replay(const Args& args) {
  Scenario sc;
  try {
    sc = esim::check::load_scenario(args.replay_file);
  } catch (const std::exception& e) {
    std::cerr << "esim_diffcheck: " << e.what() << "\n";
    return 2;
  }
  std::cout << "replaying " << args.replay_file << ": " << sc.summary()
            << "\n";
  DiffRunner runner;
  return run_checks(runner, sc, args, nullptr) ? 0 : 1;
}

int cmd_hybrid(const Args& args) {
  // Sequential-vs-PDES needs real partitioning; 1 would only re-run the
  // sequential config against a single-partition engine.
  const std::vector<std::uint32_t> partitions =
      args.partitions_set ? args.partitions : std::vector<std::uint32_t>{2, 3};
  int failures = 0;
  for (int k = 0; k < args.n; ++k) {
    const std::uint64_t scenario_seed = args.seed + static_cast<std::uint64_t>(k);
    const esim::check::HybridScenario sc =
        esim::check::random_hybrid_scenario(scenario_seed);
    std::cout << "[" << (k + 1) << "/" << args.n << "] seed " << scenario_seed
              << ": " << sc.summary() << "\n";
    const std::string diag = esim::check::check_hybrid(sc, partitions);
    if (diag.empty()) {
      std::cout << "  batching on/off + sequential vs pdes: EQUIVALENT\n";
    } else {
      ++failures;
      std::cout << diag << "\n  reproduce with: esim_diffcheck hybrid --n 1 "
                << "--seed " << scenario_seed << "\n";
    }
  }
  std::cout << (args.n - failures) << "/" << args.n
            << " hybrid scenarios digest-identical with batching active\n";
  return failures == 0 ? 0 : 1;
}

int cmd_fidelity(const Args& args) {
  const std::vector<std::uint32_t> partitions =
      args.partitions_set ? args.partitions : std::vector<std::uint32_t>{2, 4};
  int failures = 0;
  std::uint64_t rows = 0;
  std::uint64_t shadow = 0;
  for (int k = 0; k < args.n; ++k) {
    const std::uint64_t scenario_seed =
        args.seed + static_cast<std::uint64_t>(k);
    const esim::check::HybridScenario sc =
        esim::check::random_hybrid_scenario(scenario_seed);
    std::cout << "[" << (k + 1) << "/" << args.n << "] seed " << scenario_seed
              << ": " << sc.summary() << "\n";
    const std::string diag =
        esim::check::check_fidelity(sc, partitions, &rows, &shadow);
    if (diag.empty()) {
      std::cout << "  fidelity off vs on: DIGEST-IDENTICAL\n";
    } else {
      ++failures;
      std::cout << diag << "\n  reproduce with: esim_diffcheck fidelity "
                << "--n 1 --seed " << scenario_seed << "\n";
    }
  }
  std::cout << (args.n - failures) << "/" << args.n
            << " scenarios digest-identical with fidelity on (" << shadow
            << " shadow samples, " << rows << " time-series rows)\n";
  if (failures == 0 && shadow == 0) {
    std::cerr << "esim_diffcheck: fidelity check produced ZERO shadow "
                 "samples — the observatory never engaged\n";
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int cmd_granularity(const Args& args) {
  const std::vector<std::uint32_t> partitions =
      args.partitions_set ? args.partitions : std::vector<std::uint32_t>{2, 4};
  int failures = 0;
  std::uint64_t transitions = 0;
  for (int k = 0; k < args.n; ++k) {
    const std::uint64_t scenario_seed =
        args.seed + static_cast<std::uint64_t>(k);
    const esim::check::HybridScenario sc =
        esim::check::random_granularity_scenario(scenario_seed);
    std::cout << "[" << (k + 1) << "/" << args.n << "] seed " << scenario_seed
              << ": " << sc.summary() << "\n";
    const std::string diag =
        esim::check::check_granularity(sc, partitions, &transitions);
    if (diag.empty()) {
      std::cout << "  adaptive tiers, batching on/off + sequential vs pdes: "
                   "EQUIVALENT\n";
    } else {
      ++failures;
      std::cout << diag << "\n  reproduce with: esim_diffcheck granularity "
                << "--n 1 --seed " << scenario_seed << "\n";
    }
  }
  std::cout << (args.n - failures) << "/" << args.n
            << " scenarios digest-identical with the adaptive controller on ("
            << transitions << " tier transitions)\n";
  if (failures == 0 && transitions == 0) {
    std::cerr << "esim_diffcheck: granularity check executed ZERO tier "
                 "transitions — the controller never engaged\n";
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int cmd_memo(const Args& args) {
  const std::vector<std::uint32_t> partitions =
      args.partitions_set ? args.partitions : std::vector<std::uint32_t>{2, 4};
  // Small flows that drain well inside half a period, so phase boundaries
  // are usually quiescent and the memo layer actually engages.
  ScenarioFuzzer::Options fuzz_options;
  fuzz_options.min_flows = 3;
  fuzz_options.max_flows = 6;
  fuzz_options.max_flow_mss = 20;
  int failures = 0;
  esim::memo::MemoStats totals;
  for (int k = 0; k < args.n; ++k) {
    const std::uint64_t scenario_seed =
        args.seed + static_cast<std::uint64_t>(k);
    ScenarioFuzzer fuzzer{scenario_seed, fuzz_options};
    const Scenario base = fuzzer.next();
    const std::uint32_t phases =
        3 + static_cast<std::uint32_t>(scenario_seed % 3);
    const std::int64_t period_ns =
        900'000 + static_cast<std::int64_t>(scenario_seed % 5) * 150'000;
    const esim::memo::PeriodicScenario ps =
        esim::memo::make_periodic(base, phases, period_ns);
    std::cout << "[" << (k + 1) << "/" << args.n << "] seed " << scenario_seed
              << ": " << ps.scenario.summary() << " (" << phases
              << " phases of " << period_ns << "ns)\n";
    const std::string diag =
        esim::memo::check_memo(ps, partitions, {}, &totals);
    if (diag.empty()) {
      std::cout << "  memo on/off + chunked vs reference: EQUIVALENT\n";
    } else {
      ++failures;
      std::cout << diag << "\n  reproduce with: esim_diffcheck memo --n 1 "
                << "--seed " << scenario_seed << "\n";
    }
  }
  std::cout << (args.n - failures) << "/" << args.n
            << " periodic scenarios digest-identical with memoization on ("
            << totals.hits << " hits, " << totals.misses << " misses, "
            << totals.near_misses << " near misses, " << totals.store_aborts
            << " store aborts, " << totals.fast_forwarded_ns
            << "ns fast-forwarded)\n";
  if (failures == 0 && totals.hits == 0) {
    std::cerr << "esim_diffcheck: memo check produced ZERO cache hits — "
                 "memoization never engaged\n";
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

/// A scenario engineered to put two packets on one switch at the same
/// instant: two equal flows from the two hosts of ToR 0, started at the
/// same nanosecond, both targeting host 0 of ToR 1. Their SYNs traverse
/// identical host->ToR links, collide at the ToR, and the FES same-time
/// tie-break alone decides which serializes first.
Scenario tie_rich_scenario() {
  Scenario sc;
  sc.seed = 42;
  sc.tors = 2;
  sc.spines = 1;
  sc.hosts_per_tor = 2;
  sc.duration_ns = 4'000'000;
  sc.flows = {
      FlowSpec{0, 2, 40'000, 10'000, 1},
      FlowSpec{1, 2, 40'000, 10'000, 2},
  };
  sc.validate();
  return sc;
}

int cmd_selftest() {
  DiffRunner runner;
  const Scenario sc = tie_rich_scenario();
  std::cout << "selftest scenario: " << sc.summary() << "\n";

  const EngineSpec normal{};
  EngineSpec inverted;
  inverted.invert_tiebreak = true;

  // 1. Sanity: identical clean configurations must agree on the FULL
  // digest — otherwise divergence below would mean nothing.
  const DiffReport clean = runner.diff(sc, normal, normal);
  std::cout << "clean rerun: " << (clean.equivalent ? "EQUIVALENT" : "DIVERGED")
            << "\n";
  if (!clean.equivalent) {
    std::cerr << "selftest FAILED: clean reruns disagree\n"
              << clean.to_string() << "\n";
    return 1;
  }

  // 2. The injected ordering bug must be caught...
  const DiffReport bug = runner.diff(sc, normal, inverted);
  if (bug.equivalent) {
    std::cerr << "selftest FAILED: inverted FES tie-break was NOT detected "
                 "— the digest is blind to event ordering\n";
    return 1;
  }
  std::cout << "injected tie-break bug detected:\n" << bug.to_string() << "\n";

  // ...and localized to a first divergent packet record.
  if (!bug.first.found) {
    std::cerr << "selftest FAILED: divergence detected but not localized\n";
    return 1;
  }

  // 3. Shrinking must preserve the failure and end at a valid scenario.
  ScenarioFuzzer fuzzer{sc.seed};
  const Scenario shrunk = fuzzer.shrink(sc, [&](const Scenario& cand) {
    return !runner.diff(cand, normal, inverted).equivalent;
  });
  shrunk.validate();
  if (runner.diff(shrunk, normal, inverted).equivalent) {
    std::cerr << "selftest FAILED: shrunk scenario no longer reproduces\n";
    return 1;
  }
  std::cout << "shrunk repro still fails: " << shrunk.summary() << "\n";

  // 4. Round-trip: the repro file format must reproduce the scenario.
  if (Scenario::parse(shrunk.serialize()) != shrunk) {
    std::cerr << "selftest FAILED: scenario serialization does not "
                 "round-trip\n";
    return 1;
  }

  std::cout << "selftest PASSED\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.mode == "fuzz") return cmd_fuzz(args);
    if (args.mode == "replay") return cmd_replay(args);
    if (args.mode == "hybrid") return cmd_hybrid(args);
    if (args.mode == "fidelity") return cmd_fidelity(args);
    if (args.mode == "granularity") return cmd_granularity(args);
    if (args.mode == "memo") return cmd_memo(args);
    if (args.mode == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    std::cerr << "esim_diffcheck: " << e.what() << "\n";
    return 2;
  }
  usage();
}
