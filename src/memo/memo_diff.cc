#include "memo/memo_diff.h"

#include <set>
#include <sstream>
#include <utility>

#include "check/diff_runner.h"

namespace esim::memo {

PeriodicScenario make_periodic(const check::Scenario& base,
                               std::uint32_t phases, std::int64_t period_ns,
                               bool host_pair_ecmp) {
  PeriodicScenario out;
  out.pattern.period_ns = period_ns;
  out.pattern.phases = phases;

  // Fold each base flow's start into the first half of the period (so
  // phases get slack to drain) and keep per-source offsets unique, the
  // same ambiguity rule Scenario::validate enforces on start times.
  const std::int64_t fold = period_ns / 2 > 0 ? period_ns / 2 : 1;
  std::set<std::pair<std::uint32_t, std::int64_t>> used;
  for (const check::FlowSpec& f : base.flows) {
    std::int64_t offset = f.start_ns % fold;
    while (used.count({f.src, offset}) != 0) {
      offset = (offset + 1) % period_ns;
    }
    used.insert({f.src, offset});
    out.pattern.pattern.push_back({f.src, f.dst, f.bytes, offset});
  }
  out.pattern.validate();

  out.scenario = base;
  out.scenario.ecmp_port_sensitive = !host_pair_ecmp;
  out.scenario.duration_ns = out.pattern.total_duration_ns();
  out.scenario.flows.clear();
  for (const auto& inj : out.pattern.expand(1)) {
    out.scenario.flows.push_back(
        {inj.src, inj.dst, inj.bytes, inj.start_ns, inj.flow_id});
  }
  out.scenario.validate();
  return out;
}

std::string check_memo(const PeriodicScenario& ps,
                       const std::vector<std::uint32_t>& partition_counts,
                       const MemoConfig& memo, MemoStats* accumulate) {
  std::vector<check::EngineSpec> specs;
  specs.push_back({});  // sequential
  for (std::uint32_t p : partition_counts) specs.push_back({p});

  const check::DiffRunner::Options options{};
  MemoConfig off = memo;
  off.enabled = false;

  std::ostringstream diag;
  for (const check::EngineSpec& spec : specs) {
    MemoRunner off_runner{options, off};
    const MemoRunOutcome base =
        off_runner.run(ps.scenario, ps.pattern, spec, /*with_digest=*/true);

    MemoRunner on_runner{options, memo};
    const MemoRunOutcome memoized =
        on_runner.run(ps.scenario, ps.pattern, spec, /*with_digest=*/true);

    if (!(memoized.digest == base.digest) ||
        memoized.flows_completed != base.flows_completed) {
      diag << spec.label() << ": memo-on digest diverges from memo-off\n"
           << "  off: " << base.digest.to_string() << "\n"
           << "  on:  " << memoized.digest.to_string() << " (hits "
           << memoized.stats.hits << ", near misses "
           << memoized.stats.near_misses << ", store aborts "
           << memoized.stats.store_aborts << ")\n";
    }

    // Anchor the chunked memo-off baseline to the seed harness.
    const check::DiffRunner ref_runner{options};
    const check::RunOutcome ref = ref_runner.run(ps.scenario, spec);
    const bool anchored = spec.partitions == 0
                              ? ref.digest == base.digest
                              : ref.digest.engine_invariant_equal(base.digest);
    if (!anchored || ref.flows_completed != base.flows_completed) {
      diag << spec.label()
           << ": chunked memo-off diverges from unchunked reference\n"
           << "  ref:     " << ref.digest.to_string() << "\n"
           << "  chunked: " << base.digest.to_string() << "\n";
    }

    // Aggregate-only memoization must land on the same final state.
    MemoRunner agg_runner{options, memo};
    const MemoRunOutcome agg =
        agg_runner.run(ps.scenario, ps.pattern, spec, /*with_digest=*/false);
    if (agg.final_state_fp != base.final_state_fp ||
        agg.flows_completed != base.flows_completed) {
      diag << spec.label()
           << ": aggregate memo final state fp " << agg.final_state_fp
           << " != memo-off " << base.final_state_fp << "\n";
    }

    if (accumulate != nullptr) {
      const MemoStats& a = memoized.stats;
      const MemoStats& b = agg.stats;
      accumulate->lookups += a.lookups + b.lookups;
      accumulate->hits += a.hits + b.hits;
      accumulate->misses += a.misses + b.misses;
      accumulate->near_misses += a.near_misses + b.near_misses;
      accumulate->stores += a.stores + b.stores;
      accumulate->store_aborts += a.store_aborts + b.store_aborts;
      accumulate->evictions += a.evictions + b.evictions;
      accumulate->fast_forwarded_phases +=
          a.fast_forwarded_phases + b.fast_forwarded_phases;
      accumulate->fast_forwarded_ns +=
          a.fast_forwarded_ns + b.fast_forwarded_ns;
    }
  }
  return diag.str();
}

}  // namespace esim::memo
