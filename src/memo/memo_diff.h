// The memo diffcheck lane: replay equivalence between memoized and
// unmemoized execution (DESIGN.md §13).
//
// check_memo runs one periodic scenario under every requested engine and
// verifies, per engine spec:
//   1. memo-on vs memo-off, both digest-attached and chunked at phase
//      boundaries: FULL digest equality (order lane included) and equal
//      completion counts — a verified fast-forward is bit-invisible.
//   2. memo-off chunked vs check::DiffRunner unchunked: full equality
//      sequential, engine-invariant under PDES (chunking only perturbs
//      drain-round seq assignment) — the chunked baseline is anchored to
//      the seed harness, not just to itself.
//   3. memo-on aggregate-only (no digest): final-state fingerprint equal
//      to the memo-off run's — the speedup mode lands on the same network
//      state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.h"
#include "memo/memo_runner.h"
#include "workload/phases.h"

namespace esim::memo {

/// A scenario whose flow list is exactly pattern.expand(1).
struct PeriodicScenario {
  check::Scenario scenario;
  workload::PhasePattern pattern;
};

/// Derives a periodic scenario from `base` by folding its flow list into
/// one phase pattern repeated `phases` times: each base flow becomes a
/// pattern flow whose offset is its start time folded into the first half
/// of the period (bumped minimally to keep per-source offsets unique).
/// The scenario's duration becomes the phase span and, when
/// `host_pair_ecmp`, port-sensitive ECMP is turned off so repeated phases
/// are path-identical despite fresh ephemeral ports.
PeriodicScenario make_periodic(const check::Scenario& base,
                               std::uint32_t phases, std::int64_t period_ns,
                               bool host_pair_ecmp = true);

/// Runs the full memo equivalence check on `ps` under the sequential
/// engine plus a PDES engine per entry of `partition_counts`. Returns ""
/// on pass, else a diagnostic naming the engine and the failed relation.
/// When `accumulate` is non-null the memo-on runners' stats are added to
/// it (the fuzz gate asserts the corpus produced real hits).
std::string check_memo(const PeriodicScenario& ps,
                       const std::vector<std::uint32_t>& partition_counts,
                       const MemoConfig& memo = {},
                       MemoStats* accumulate = nullptr);

}  // namespace esim::memo
