#include "memo/phase_cache.h"

namespace esim::memo {

std::size_t PhaseEntry::bytes() const {
  std::size_t n = sizeof(PhaseEntry);
  n += flows.capacity() * sizeof(RelFlow);
  for (const PartitionDelta& p : partitions) {
    n += sizeof(PartitionDelta) + p.pops.capacity() * sizeof(RelPop);
  }
  n += packets.capacity() * sizeof(RelPacket);
  n += completions.capacity() * sizeof(RelCompletion);
  n += (link_deltas.capacity() + switch_deltas.capacity() +
        host_deltas.capacity()) *
       sizeof(CounterDelta);
  n += identities.capacity() * sizeof(HostIdentity);
  return n;
}

const PhaseEntry* PhaseCache::find(std::uint64_t signature) {
  auto it = map_.find(signature);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->entry;
}

void PhaseCache::insert(std::uint64_t signature, PhaseEntry entry) {
  auto it = map_.find(signature);
  if (it != map_.end()) {
    resident_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  Node node;
  node.signature = signature;
  node.bytes = entry.bytes();
  node.entry = std::move(entry);
  resident_bytes_ += node.bytes;
  lru_.push_front(std::move(node));
  map_[signature] = lru_.begin();
  evict_to_limits();
}

void PhaseCache::evict_to_limits() {
  while (!lru_.empty() && (map_.size() > limits_.max_entries ||
                           resident_bytes_ > limits_.max_bytes)) {
    const Node& victim = lru_.back();
    resident_bytes_ -= victim.bytes;
    map_.erase(victim.signature);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace esim::memo
