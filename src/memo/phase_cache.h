// The bounded LRU cache of recorded phase deltas (DESIGN.md §13).
//
// A PhaseEntry is everything a verified repeat of a workload phase needs
// to be applied without resimulating: the phase's relative flow pattern
// and route fingerprint (hit-time verification payload — a signature
// match alone is never trusted), per-partition FES accounting deltas and
// pop streams, per-link packet records in phase-relative form, flow
// completions, per-component counter deltas, and per-host identity
// consumption (ephemeral ports, packet sequence numbers).
//
// Two granularities coexist, fixed per run:
//   * digest-attached — pop streams and packet records are recorded and
//     replayed into the StateDigest, so a memoized run's FULL digest
//     (order lane included) equals the unmemoized run's. O(events in the
//     phase) per hit; the equivalence harness runs in this mode.
//   * aggregate-only — only counters, completions, identity, and FES
//     accounting are recorded. O(components) per hit; the ≥10× speedup
//     mode, verified by final-state fingerprint instead of full digest.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "check/digest.h"
#include "sim/event_queue.h"
#include "stats/collectors.h"

namespace esim::memo {

/// One flow of a phase in phase-relative terms, the exact-match
/// verification payload against signature collisions.
struct RelFlow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  std::int64_t offset_ns = 0;

  bool operator==(const RelFlow&) const = default;
};

/// One recorded event pop, phase-relative. Pops of events scheduled
/// *during* the phase carry their sequence delta against the partition's
/// phase-start next_seq; pops of the phase's own injection events (which
/// were scheduled earlier, at setup) are tagged with the injection's index
/// instead, so replay can substitute the *current* phase's injection seq.
struct RelPop {
  std::int64_t rel_ns = 0;
  std::uint64_t dseq = 0;  ///< seq - base_seq, or injection index if tagged
  bool injection = false;

  bool operator==(const RelPop&) const = default;
};

/// Per-partition recorded accounting and (digest mode) pop stream.
struct PartitionDelta {
  std::uint64_t scheduled = 0;  ///< FES next_seq/total_scheduled advance
  std::uint64_t executed = 0;   ///< events popped during the phase
  std::vector<RelPop> pops;     ///< empty in aggregate-only entries
};

/// One recorded packet observation: the probe it belongs to plus the
/// record with time phase-relative and identity in recorded-run terms
/// (rewritten at apply time via HostIdentity deltas).
struct RelPacket {
  std::uint32_t probe = 0;
  /// Index into the phase flow list (replay remaps flow_id); -1 for
  /// control packets with flow_id 0.
  std::int32_t flow_index = -1;
  check::PacketRecord rec;  ///< rec.time_ns is phase-relative

  bool operator==(const RelPacket&) const = default;
};

/// One recorded flow completion, phase-relative.
struct RelCompletion {
  std::uint32_t flow_index = 0;
  std::int64_t start_rel_ns = 0;
  std::int64_t end_rel_ns = 0;

  bool operator==(const RelCompletion&) const = default;
};

/// Identity consumption of one host during the phase, with the recorded
/// bases needed to translate packet ids and ephemeral ports onto a later
/// occurrence.
struct HostIdentity {
  std::uint32_t host = 0;
  std::uint16_t port_base = 0;    ///< next_port at phase start
  std::uint64_t pkt_seq_base = 0; ///< next_packet_seq at phase start
  std::uint32_t flows_opened = 0;
  std::uint64_t packets_sent = 0;

  bool operator==(const HostIdentity&) const = default;
};

/// Nonzero counter delta of one component (index into the runner's
/// discovery-ordered component vector of that class).
struct CounterDelta {
  std::uint32_t index = 0;
  stats::PacketCounter delta;
};

/// Everything needed to apply one memoized phase.
struct PhaseEntry {
  bool with_digest = false;
  std::vector<RelFlow> flows;      ///< verification: exact pattern match
  std::uint64_t route_fp = 0;      ///< verification: predicted ECMP paths
  std::vector<PartitionDelta> partitions;
  std::vector<RelPacket> packets;  ///< empty in aggregate-only entries
  std::vector<RelCompletion> completions;
  std::vector<CounterDelta> link_deltas;
  std::vector<CounterDelta> switch_deltas;
  std::vector<CounterDelta> host_deltas;
  std::vector<HostIdentity> identities;

  /// Approximate resident size, for the cache's byte bound.
  std::size_t bytes() const;
};

/// Cache accounting, surfaced into run reports (core::MemoSectionData).
struct MemoStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t near_misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_aborts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t fast_forwarded_phases = 0;
  std::int64_t fast_forwarded_ns = 0;
};

/// Bounded LRU map from 64-bit phase signature to PhaseEntry. Not
/// thread-safe: all cache traffic happens between engine windows, on the
/// driving thread.
class PhaseCache {
 public:
  struct Limits {
    std::size_t max_entries = 256;
    std::size_t max_bytes = std::size_t{64} << 20;
  };

  PhaseCache() = default;
  explicit PhaseCache(const Limits& limits) : limits_{limits} {}

  /// Looks up `signature`, refreshing its LRU position on hit. Returns
  /// nullptr on miss. The pointer stays valid until the next insert().
  const PhaseEntry* find(std::uint64_t signature);

  /// Inserts (or replaces) the entry under `signature`, then evicts
  /// least-recently-used entries until both limits hold. An entry larger
  /// than max_bytes by itself is dropped immediately (counted as an
  /// insert followed by an eviction).
  void insert(std::uint64_t signature, PhaseEntry entry);

  std::size_t entries() const { return map_.size(); }
  std::size_t resident_bytes() const { return resident_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Node {
    std::uint64_t signature = 0;
    PhaseEntry entry;
    std::size_t bytes = 0;
  };

  void evict_to_limits();

  Limits limits_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> map_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace esim::memo
