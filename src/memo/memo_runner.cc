#include "memo/memo_runner.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/pdes_builder.h"
#include "net/clos.h"
#include "sim/parallel.h"

namespace esim::memo {
namespace {

using check::Hash64;
using check::mix64;

constexpr std::uint64_t kSigTag = 0x4D454D4F50484153ULL;  // "MEMOPHAS"
constexpr std::uint64_t kLow40 = (std::uint64_t{1} << 40) - 1;

/// One scheduled phase injection with the bookkeeping replay needs.
struct InjectionRec {
  workload::PhasePattern::Injection inj;
  std::uint32_t part = 0;
  sim::EventHandle handle;
  std::uint64_t seq = 0;  ///< FES insertion seq of the injection event
};

struct CompletionEvent {
  std::uint64_t flow_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Pop-stream recorder wrapped around the digest's lane observer during a
/// recorded phase. Appended only from the owning partition's thread.
struct PopRecorder : sim::PopObserver {
  sim::PopObserver* inner = nullptr;
  std::vector<std::pair<std::int64_t, std::uint64_t>> log;
  void on_event_pop(sim::SimTime time, std::uint64_t seq) override {
    log.emplace_back(time.ns(), seq);
    if (inner != nullptr) inner->on_event_pop(time, seq);
  }
};

/// One engine's worth of run state, independent of engine kind.
struct Session {
  std::vector<sim::Simulator*> parts;
  std::function<void(sim::SimTime)> run_engine_until;
  net::ClosSpec spec;
  bool port_sensitive = true;
  std::vector<tcp::Host*> hosts;        // dense by HostId
  std::vector<net::Switch*> switches;   // dense by SwitchId
  std::vector<net::Link*> links;        // discovery (attach) order
  std::vector<std::uint32_t> part_of_host;
  check::StateDigest* digest = nullptr;  // null in aggregate-only runs

  std::vector<InjectionRec> injections;

  std::mutex mu;
  bool recording = false;
  std::vector<CompletionEvent> completion_log;
  std::uint64_t flows_completed = 0;

  void on_completion(const workload::PhasePattern::Injection& inj,
                     sim::SimTime start, sim::SimTime end) {
    if (digest != nullptr) {
      digest->on_flow_complete(inj.flow_id, inj.src, inj.dst, inj.bytes,
                               start, end);
    }
    std::lock_guard<std::mutex> lock(mu);
    ++flows_completed;
    if (recording) {
      completion_log.push_back({inj.flow_id, start.ns(), end.ns()});
    }
  }
};

void discover_components(Session& s) {
  for (sim::Simulator* sim : s.parts) {
    for (const auto& c : sim->components()) {
      if (auto* link = dynamic_cast<net::Link*>(c.get())) {
        s.links.push_back(link);
      }
    }
  }
  if (s.digest != nullptr) {
    if (s.digest->num_probes() != s.links.size()) {
      throw std::logic_error("MemoRunner: probe/link discovery mismatch");
    }
    for (std::size_t i = 0; i < s.links.size(); ++i) {
      if (s.digest->probe_link(i) != s.links[i]) {
        throw std::logic_error("MemoRunner: probe order != link order");
      }
    }
  }
}

void schedule_injections(Session& s, const workload::PhasePattern& pattern) {
  Session* sp = &s;
  for (const auto& inj : pattern.expand(1)) {
    const std::uint32_t part = s.part_of_host[inj.src];
    sim::Simulator* sim = s.parts[part];
    tcp::Host* host = s.hosts[inj.src];
    InjectionRec rec;
    rec.inj = inj;
    rec.part = part;
    rec.handle =
        sim->schedule_at(sim::SimTime::from_ns(inj.start_ns), [sp, host, inj] {
          auto* conn = host->open_flow(inj.dst, inj.bytes, inj.flow_id);
          const sim::SimTime start = host->sim().now();
          conn->on_complete = [sp, host, inj, start] {
            sp->on_completion(inj, start, host->sim().now());
          };
        });
    rec.seq = sim->event_seq_of(rec.handle);
    s.injections.push_back(rec);
  }
}

std::vector<stats::PacketCounter> snapshot_counters(const Session& s) {
  std::vector<stats::PacketCounter> out;
  out.reserve(s.links.size() + s.switches.size() + s.hosts.size());
  for (const net::Link* l : s.links) out.push_back(l->counter());
  for (const net::Switch* sw : s.switches) out.push_back(sw->counter());
  for (const tcp::Host* h : s.hosts) out.push_back(h->counter());
  return out;
}

/// Drives the phase loop for one engine session. Holds references to the
/// runner's cache/stats so MemoRunner::run stays engine-setup only.
struct PhaseDriver {
  PhaseCache& cache;
  MemoStats& stats;
  const MemoConfig& memo;
  Session& s;
  const check::Scenario& scenario;
  const workload::PhasePattern& pattern;
  const check::EngineSpec& engine;
  bool with_digest;

  std::vector<RelFlow> rel_flows;
  /// Pattern indices sorted by (offset, src, dst): the order phase flows
  /// consume ephemeral ports.
  std::vector<std::size_t> by_offset;
  std::vector<std::uint32_t> opens_per_host;
  std::deque<std::uint64_t> summaries;
  std::vector<stats::PacketCounter> prev_counters;

  void init() {
    for (const auto& f : pattern.pattern) {
      rel_flows.push_back({f.src, f.dst, f.bytes, f.offset_ns});
    }
    by_offset.resize(pattern.pattern.size());
    for (std::size_t i = 0; i < by_offset.size(); ++i) by_offset[i] = i;
    std::sort(by_offset.begin(), by_offset.end(),
              [this](std::size_t a, std::size_t b) {
                const auto& fa = pattern.pattern[a];
                const auto& fb = pattern.pattern[b];
                return std::tie(fa.offset_ns, fa.src, fa.dst) <
                       std::tie(fb.offset_ns, fb.src, fb.dst);
              });
    opens_per_host.assign(s.hosts.size(), 0);
    for (const auto& f : pattern.pattern) ++opens_per_host[f.src];
  }

  const InjectionRec& injection(std::uint32_t phase, std::uint32_t index)
      const {
    return s.injections[static_cast<std::size_t>(phase) *
                            pattern.pattern.size() +
                        index];
  }

  std::uint64_t live_injections_in(std::uint32_t part) const {
    std::uint64_t n = 0;
    for (const InjectionRec& r : s.injections) {
      if (r.part == part && s.parts[part]->event_live(r.handle)) ++n;
    }
    return n;
  }

  /// Quiescent at a boundary: every partition's pending set is exactly
  /// its live future-injection events — no timers, no packets in flight.
  bool quiescent() const {
    for (std::uint32_t p = 0; p < s.parts.size(); ++p) {
      if (s.parts[p]->events_pending() != live_injections_in(p)) {
        return false;
      }
    }
    return true;
  }

  /// Predicts the phase's ECMP paths from the hosts' current ephemeral
  /// port allocators (both directions of every flow) and collects the
  /// predicted 4-tuples for the stale-connection check. Sets `wrap` when
  /// any host's allocation would cross the port-space wrap, which breaks
  /// the translation arithmetic — the phase is then not memoizable.
  std::uint64_t route_fingerprint(std::vector<net::FlowKey>* tuples,
                                  bool* wrap) const {
    *wrap = false;
    std::vector<std::uint32_t> port(s.hosts.size());
    for (std::size_t h = 0; h < s.hosts.size(); ++h) {
      port[h] = s.hosts[h]->next_port();
      if (opens_per_host[h] != 0 &&
          port[h] + opens_per_host[h] - 1 > 60'000) {
        *wrap = true;
      }
    }
    Hash64 h;
    for (std::size_t i : by_offset) {
      const auto& f = pattern.pattern[i];
      net::FlowKey key;
      key.src_host = f.src;
      key.dst_host = f.dst;
      key.src_port = static_cast<std::uint16_t>(port[f.src]++);
      key.dst_port = 80;
      if (tuples != nullptr) tuples->push_back(key);
      net::FlowKey hashed = key;
      if (!s.port_sensitive) {
        hashed.src_port = 0;
        hashed.dst_port = 0;
      }
      for (const net::FlowKey& dir : {hashed, hashed.reversed()}) {
        const net::ClosPath path = net::compute_path(s.spec, dir);
        h.absorb(path.len);
        for (std::uint32_t j = 0; j < path.len; ++j) h.absorb(path.hops[j]);
      }
    }
    return h.value();
  }

  std::uint64_t signature(std::int64_t t_ns, std::int64_t tn_ns,
                          std::uint64_t route_fp) const {
    if (memo.debug_collide_signatures) return kSigTag;
    Hash64 h;
    h.absorb(kSigTag);
    h.absorb((with_digest ? 1u : 0u) |
             (engine.invert_tiebreak ? 2u : 0u) |
             (static_cast<std::uint64_t>(engine.partitions) << 2));
    h.absorb(scenario.seed);
    h.absorb((static_cast<std::uint64_t>(scenario.tors) << 32) |
             scenario.spines);
    h.absorb(scenario.hosts_per_tor);
    h.absorb((static_cast<std::uint64_t>(scenario.queue_bytes) << 32) |
             scenario.ecn_threshold);
    h.absorb(static_cast<std::uint64_t>(scenario.tcp));
    h.absorb(s.port_sensitive ? 1 : 0);
    h.absorb(static_cast<std::uint64_t>(pattern.period_ns));
    h.absorb(pattern.pattern.size());
    for (const RelFlow& f : rel_flows) {
      h.absorb((static_cast<std::uint64_t>(f.src) << 32) | f.dst);
      h.absorb(f.bytes);
      h.absorb(static_cast<std::uint64_t>(f.offset_ns));
    }
    // Pending-event-set signature, windowed to the phase: only events
    // that can fire inside [T, Tn) participate, in phase-relative form.
    // Commutative over partitions and events.
    std::uint64_t pending = 0;
    for (const sim::Simulator* part : s.parts) {
      part->for_each_pending([&](sim::SimTime t, std::uint64_t key) {
        if (t.ns() < tn_ns) {
          pending += mix64(static_cast<std::uint64_t>(t.ns() - t_ns) ^
                           mix64(key));
        }
      });
    }
    h.absorb(pending);
    h.absorb(route_fp);
    h.absorb(summaries.size());
    for (std::uint64_t v : summaries) h.absorb(v);
    return h.value();
  }

  bool verify(const PhaseEntry& entry, std::uint64_t route_fp,
              const std::vector<net::FlowKey>& tuples) const {
    if (entry.with_digest != with_digest) return false;
    if (entry.flows != rel_flows) return false;
    if (entry.route_fp != route_fp) return false;
    if (entry.partitions.size() != s.parts.size()) return false;
    // Stale-connection guard: a replayed phase never materializes its
    // connections, so an earlier port wrap could leave a live run finding
    // a stale connection under a reused 4-tuple where the replayed run
    // had none. Refuse the hit if any predicted tuple already exists.
    for (const net::FlowKey& t : tuples) {
      if (s.hosts[t.src_host]->has_connection(t)) return false;
      if (s.hosts[t.dst_host]->has_connection(t.reversed())) return false;
    }
    return true;
  }

  void apply(const PhaseEntry& entry, std::uint32_t phase, std::int64_t t_ns,
             std::int64_t tn_ns) {
    const std::uint64_t base_flow_id =
        1 + static_cast<std::uint64_t>(phase) * pattern.pattern.size();

    // Per-host translation bases: recorded (entry) -> current.
    std::vector<std::int64_t> port_delta(s.hosts.size(), 0);
    std::vector<std::uint64_t> rec_pkt_base(s.hosts.size(), 0);
    std::vector<std::uint64_t> cur_pkt_base(s.hosts.size(), 0);
    for (const HostIdentity& hi : entry.identities) {
      port_delta[hi.host] =
          static_cast<std::int64_t>(s.hosts[hi.host]->next_port()) -
          static_cast<std::int64_t>(hi.port_base);
      rec_pkt_base[hi.host] = hi.pkt_seq_base;
      cur_pkt_base[hi.host] = s.hosts[hi.host]->next_packet_seq();
    }

    std::vector<std::uint64_t> base_seq(s.parts.size());
    for (std::size_t p = 0; p < s.parts.size(); ++p) {
      base_seq[p] = s.parts[p]->fes_next_seq();
    }

    // Retire this phase's injection events: a live run would pop them,
    // the replay cancels them (same live-count effect; the executed-count
    // delta below accounts for the pops).
    for (std::size_t i = 0; i < pattern.pattern.size(); ++i) {
      const InjectionRec& r =
          injection(phase, static_cast<std::uint32_t>(i));
      s.parts[r.part]->cancel(r.handle);
    }

    if (s.digest != nullptr) {
      for (std::size_t p = 0; p < entry.partitions.size(); ++p) {
        for (const RelPop& pop : entry.partitions[p].pops) {
          const std::uint64_t seq =
              pop.injection
                  ? injection(phase, static_cast<std::uint32_t>(pop.dseq)).seq
                  : base_seq[p] + pop.dseq;
          s.digest->replay_event_pop(
              p, sim::SimTime::from_ns(t_ns + pop.rel_ns), seq);
        }
      }
      for (const RelPacket& rp : entry.packets) {
        check::PacketRecord r = rp.rec;
        r.time_ns += t_ns;
        if (rp.flow_index >= 0) {
          r.flow_id = base_flow_id + static_cast<std::uint64_t>(rp.flow_index);
        }
        const auto sender = static_cast<std::uint32_t>(r.packet_id >> 40);
        const std::uint64_t low = r.packet_id & kLow40;
        r.packet_id = (static_cast<std::uint64_t>(sender) << 40) |
                      ((low - rec_pkt_base[sender] + cur_pkt_base[sender]) &
                       kLow40);
        if (r.src_port != 80) {
          r.src_port = static_cast<std::uint16_t>(r.src_port +
                                                  port_delta[r.src_host]);
        } else if (r.dst_port != 80) {
          r.dst_port = static_cast<std::uint16_t>(r.dst_port +
                                                  port_delta[r.dst_host]);
        }
        s.digest->replay_link_record(rp.probe, r);
      }
    }

    for (const RelCompletion& c : entry.completions) {
      const workload::PhaseFlow& f = pattern.pattern[c.flow_index];
      if (s.digest != nullptr) {
        s.digest->on_flow_complete(
            base_flow_id + c.flow_index, f.src, f.dst, f.bytes,
            sim::SimTime::from_ns(t_ns + c.start_rel_ns),
            sim::SimTime::from_ns(t_ns + c.end_rel_ns));
      }
      ++s.flows_completed;
    }

    for (const CounterDelta& d : entry.link_deltas) {
      s.links[d.index]->memo_apply_counter_delta(d.delta);
    }
    for (const CounterDelta& d : entry.switch_deltas) {
      s.switches[d.index]->memo_apply_counter_delta(d.delta);
    }
    for (const CounterDelta& d : entry.host_deltas) {
      s.hosts[d.index]->memo_apply_counter_delta(d.delta);
    }
    for (const HostIdentity& hi : entry.identities) {
      s.hosts[hi.host]->memo_advance_identity(hi.flows_opened,
                                              hi.packets_sent);
    }
    for (std::size_t p = 0; p < s.parts.size(); ++p) {
      s.parts[p]->fes_advance(entry.partitions[p].scheduled);
      s.parts[p]->advance_executed_accounting(entry.partitions[p].executed);
      s.parts[p]->fast_forward_to(sim::SimTime::from_ns(tn_ns));
    }

    ++stats.hits;
    ++stats.fast_forwarded_phases;
    stats.fast_forwarded_ns += tn_ns - t_ns;
  }

  /// Runs phase `phase` live while recording its delta; stores the entry
  /// under `sig` unless any non-memoizable condition shows up.
  void record(std::uint64_t sig, std::uint64_t route_fp, std::uint32_t phase,
              std::int64_t t_ns, std::int64_t tn_ns) {
    const std::size_t nparts = s.parts.size();
    std::vector<std::uint64_t> base_seq(nparts), base_sched(nparts),
        base_exec(nparts);
    for (std::size_t p = 0; p < nparts; ++p) {
      base_seq[p] = s.parts[p]->fes_next_seq();
      base_sched[p] = s.parts[p]->events_scheduled();
      base_exec[p] = s.parts[p]->events_executed();
    }
    const std::vector<stats::PacketCounter> base_counters =
        snapshot_counters(s);
    std::vector<std::uint16_t> port_base(s.hosts.size());
    std::vector<std::uint64_t> pkt_base(s.hosts.size());
    for (std::size_t h = 0; h < s.hosts.size(); ++h) {
      port_base[h] = s.hosts[h]->next_port();
      pkt_base[h] = s.hosts[h]->next_packet_seq();
    }

    // Digest mode: wrap the pop observers and link observers so the
    // phase's streams are logged while still reaching the digest.
    std::vector<PopRecorder> pop_recorders(nparts);
    std::vector<std::function<void(const net::Packet&, sim::SimTime)>>
        saved_transmit(s.links.size());
    std::vector<std::function<void(const net::Packet&)>> saved_drop(
        s.links.size());
    std::vector<std::vector<check::PacketRecord>> link_logs(s.links.size());
    if (s.digest != nullptr) {
      for (std::size_t p = 0; p < nparts; ++p) {
        pop_recorders[p].inner = s.parts[p]->pop_observer();
        s.parts[p]->set_pop_observer(&pop_recorders[p]);
      }
      for (std::size_t i = 0; i < s.links.size(); ++i) {
        net::Link* link = s.links[i];
        saved_transmit[i] = std::move(link->on_transmit);
        saved_drop[i] = std::move(link->on_drop);
        auto* fwd_t = &saved_transmit[i];
        auto* fwd_d = &saved_drop[i];
        auto* log = &link_logs[i];
        link->on_transmit = [fwd_t, log](const net::Packet& pkt,
                                         sim::SimTime arrive_at) {
          log->push_back(
              check::make_packet_record(pkt, arrive_at.ns(), false));
          if (*fwd_t) (*fwd_t)(pkt, arrive_at);
        };
        link->on_drop = [fwd_d, log, link](const net::Packet& pkt) {
          log->push_back(
              check::make_packet_record(pkt, link->now().ns(), true));
          if (*fwd_d) (*fwd_d)(pkt);
        };
      }
    }
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.recording = true;
      s.completion_log.clear();
    }

    s.run_engine_until(sim::SimTime::from_ns(tn_ns));

    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.recording = false;
    }
    if (s.digest != nullptr) {
      for (std::size_t p = 0; p < nparts; ++p) {
        s.parts[p]->set_pop_observer(pop_recorders[p].inner);
      }
      for (std::size_t i = 0; i < s.links.size(); ++i) {
        s.links[i]->on_transmit = std::move(saved_transmit[i]);
        s.links[i]->on_drop = std::move(saved_drop[i]);
      }
    }

    // The phase must end quiescent to be replayable: anything still
    // pending (an unfinished flow's timer, an in-flight packet) would
    // need live state a fast-forward cannot reconstruct.
    if (!quiescent()) {
      ++stats.store_aborts;
      return;
    }

    PhaseEntry entry;
    entry.with_digest = with_digest;
    entry.flows = rel_flows;
    entry.route_fp = route_fp;

    for (std::size_t p = 0; p < nparts; ++p) {
      PartitionDelta pd;
      pd.scheduled = s.parts[p]->events_scheduled() - base_sched[p];
      pd.executed = s.parts[p]->events_executed() - base_exec[p];
      // This partition's injection seqs for this phase, for classifying
      // pre-phase pops. Seq numbering is per-partition, so injections on
      // other partitions must not participate — their seqs can collide.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> inj_seqs;
      for (std::size_t i = 0; i < pattern.pattern.size(); ++i) {
        const InjectionRec& r =
            injection(phase, static_cast<std::uint32_t>(i));
        if (r.part == p) {
          inj_seqs.emplace_back(r.seq, static_cast<std::uint32_t>(i));
        }
      }
      std::sort(inj_seqs.begin(), inj_seqs.end());
      if (s.digest != nullptr) {
        for (const auto& [t, seq] : pop_recorders[p].log) {
          RelPop pop;
          pop.rel_ns = t - t_ns;
          if (seq >= base_seq[p]) {
            pop.dseq = seq - base_seq[p];
          } else {
            const auto it = std::lower_bound(
                inj_seqs.begin(), inj_seqs.end(),
                std::make_pair(seq, std::uint32_t{0}));
            if (it == inj_seqs.end() || it->first != seq) {
              // A pre-phase event that is not one of this phase's
              // injections fired inside the phase — not memoizable.
              ++stats.store_aborts;
              return;
            }
            pop.injection = true;
            pop.dseq = it->second;
          }
          pd.pops.push_back(pop);
        }
      }
      entry.partitions.push_back(std::move(pd));
    }

    // Flow-id -> pattern index for this phase.
    const std::uint64_t base_flow_id =
        1 + static_cast<std::uint64_t>(phase) * pattern.pattern.size();
    auto flow_index_of = [&](std::uint64_t flow_id) -> std::int32_t {
      if (flow_id < base_flow_id ||
          flow_id >= base_flow_id + pattern.pattern.size()) {
        return -2;  // not this phase's flow
      }
      return static_cast<std::int32_t>(flow_id - base_flow_id);
    };

    if (s.digest != nullptr) {
      for (std::size_t i = 0; i < link_logs.size(); ++i) {
        for (const check::PacketRecord& raw : link_logs[i]) {
          RelPacket rp;
          rp.probe = static_cast<std::uint32_t>(i);
          rp.rec = raw;
          rp.rec.time_ns -= t_ns;
          if (raw.flow_id != 0) {
            rp.flow_index = flow_index_of(raw.flow_id);
            if (rp.flow_index < 0) {
              ++stats.store_aborts;
              return;
            }
          }
          const auto sender = static_cast<std::uint32_t>(raw.packet_id >> 40);
          if (sender >= s.hosts.size() ||
              (raw.packet_id & kLow40) <= pkt_base[sender]) {
            // A packet minted before this phase surfaced inside it; the
            // identity translation would be wrong.
            ++stats.store_aborts;
            return;
          }
          entry.packets.push_back(std::move(rp));
        }
      }
    }

    for (const CompletionEvent& c : s.completion_log) {
      const std::int32_t idx = flow_index_of(c.flow_id);
      if (idx < 0) {
        ++stats.store_aborts;
        return;
      }
      entry.completions.push_back({static_cast<std::uint32_t>(idx),
                                   c.start_ns - t_ns, c.end_ns - t_ns});
    }

    const std::vector<stats::PacketCounter> end_counters =
        snapshot_counters(s);
    auto push_deltas = [&](std::size_t from, std::size_t count,
                           std::vector<CounterDelta>& out) {
      for (std::size_t i = 0; i < count; ++i) {
        const stats::PacketCounter& a = base_counters[from + i];
        const stats::PacketCounter& b = end_counters[from + i];
        if (a.sent == b.sent && a.delivered == b.delivered &&
            a.dropped == b.dropped) {
          continue;
        }
        CounterDelta d;
        d.index = static_cast<std::uint32_t>(i);
        d.delta = {b.sent - a.sent, b.delivered - a.delivered,
                   b.dropped - a.dropped};
        out.push_back(d);
      }
    };
    push_deltas(0, s.links.size(), entry.link_deltas);
    push_deltas(s.links.size(), s.switches.size(), entry.switch_deltas);
    push_deltas(s.links.size() + s.switches.size(), s.hosts.size(),
                entry.host_deltas);

    for (std::size_t h = 0; h < s.hosts.size(); ++h) {
      const std::uint64_t sent =
          s.hosts[h]->next_packet_seq() - pkt_base[h];
      if (opens_per_host[h] == 0 && sent == 0) continue;
      HostIdentity hi;
      hi.host = static_cast<std::uint32_t>(h);
      hi.port_base = port_base[h];
      hi.pkt_seq_base = pkt_base[h];
      hi.flows_opened = opens_per_host[h];
      hi.packets_sent = sent;
      entry.identities.push_back(hi);
    }

    cache.insert(sig, std::move(entry));
    ++stats.stores;
  }

  void run_all() {
    init();
    prev_counters = snapshot_counters(s);
    for (std::uint32_t k = 0; k < pattern.phases; ++k) {
      const std::int64_t t_ns = pattern.boundary_ns(k);
      const std::int64_t tn_ns = pattern.boundary_ns(k + 1);

      // Rolling per-phase counter summary, recomputed uniformly at every
      // boundary (hit or miss: replay reproduces the counters exactly,
      // so the summaries — and therefore later signatures — agree with a
      // memo-off run bit for bit).
      if (k > 0) {
        const std::vector<stats::PacketCounter> cur = snapshot_counters(s);
        Hash64 h;
        for (std::size_t i = 0; i < cur.size(); ++i) {
          h.absorb(cur[i].sent - prev_counters[i].sent);
          h.absorb(cur[i].delivered - prev_counters[i].delivered);
          h.absorb(cur[i].dropped - prev_counters[i].dropped);
        }
        summaries.push_back(h.value());
        while (summaries.size() > memo.window_phases) summaries.pop_front();
        prev_counters = cur;
      }

      if (!memo.enabled || !quiescent()) {
        s.run_engine_until(sim::SimTime::from_ns(tn_ns));
        continue;
      }
      std::vector<net::FlowKey> tuples;
      bool wrap = false;
      const std::uint64_t route_fp = route_fingerprint(&tuples, &wrap);
      if (wrap) {
        // Port-space wrap inside the phase: identity translation is
        // undefined, so neither hit nor store.
        s.run_engine_until(sim::SimTime::from_ns(tn_ns));
        continue;
      }
      const std::uint64_t sig = signature(t_ns, tn_ns, route_fp);
      ++stats.lookups;
      const PhaseEntry* entry = cache.find(sig);
      if (entry != nullptr && verify(*entry, route_fp, tuples)) {
        apply(*entry, k, t_ns, tn_ns);
        continue;
      }
      if (entry != nullptr) {
        ++stats.near_misses;
      } else {
        ++stats.misses;
      }
      record(sig, route_fp, k, t_ns, tn_ns);
    }
    if (scenario.duration_ns > pattern.total_duration_ns()) {
      s.run_engine_until(sim::SimTime::from_ns(scenario.duration_ns));
    }
  }
};

}  // namespace

MemoRunOutcome MemoRunner::run(const check::Scenario& scenario,
                               const workload::PhasePattern& pattern,
                               const check::EngineSpec& engine,
                               bool with_digest) {
  scenario.validate();
  pattern.validate();
  {
    const auto injections = pattern.expand(1);
    if (scenario.flows.size() != injections.size()) {
      throw std::invalid_argument(
          "MemoRunner: scenario flows != pattern expansion");
    }
    for (std::size_t i = 0; i < injections.size(); ++i) {
      const check::FlowSpec& f = scenario.flows[i];
      const auto& inj = injections[i];
      if (f.src != inj.src || f.dst != inj.dst || f.bytes != inj.bytes ||
          f.start_ns != inj.start_ns || f.flow_id != inj.flow_id) {
        throw std::invalid_argument(
            "MemoRunner: scenario flows != pattern expansion");
      }
    }
  }
  if (scenario.duration_ns < pattern.total_duration_ns()) {
    throw std::invalid_argument(
        "MemoRunner: scenario duration shorter than the phase span");
  }

  MemoRunOutcome out;
  check::StateDigest digest;

  auto drive = [&](Session& s) {
    discover_components(s);
    schedule_injections(s, pattern);
    PhaseDriver driver{cache_, stats_, memo_,    s,  scenario,
                       pattern, engine, with_digest, {}, {},
                       {},      {},     {}};
    driver.run_all();
    if (s.digest != nullptr) {
      out.digest = s.digest->finalize();
      out.digest_attached = true;
    }
    std::vector<const sim::Simulator*> sims(s.parts.begin(), s.parts.end());
    out.final_state_fp = check::final_state_fingerprint(sims);
    out.flows_completed = s.flows_completed;
  };

  if (engine.partitions == 0) {
    sim::Simulator sim{scenario.seed};
    if (engine.invert_tiebreak) sim.debug_invert_fes_tiebreak(true);
    auto net = core::build_full_network(sim, scenario.network_config());
    Session s;
    s.parts = {&sim};
    s.run_engine_until = [&sim](sim::SimTime t) { sim.run_until(t); };
    s.spec = net.spec;
    s.port_sensitive = scenario.ecmp_port_sensitive;
    s.hosts = net.hosts;
    s.switches = net.switches;
    s.part_of_host.assign(scenario.total_hosts(), 0);
    if (with_digest) {
      digest.attach(sim);
      s.digest = &digest;
    }
    drive(s);
  } else {
    sim::ParallelEngine::Config cfg;
    cfg.num_partitions = engine.partitions;
    cfg.lookahead = options_.lookahead;
    cfg.window_mode = options_.window_mode;
    cfg.seed = scenario.seed;
    sim::ParallelEngine eng{cfg};
    if (engine.invert_tiebreak) {
      for (std::uint32_t p = 0; p < eng.num_partitions(); ++p) {
        eng.partition(p).sim().debug_invert_fes_tiebreak(true);
      }
    }
    auto net = core::build_leaf_spine_partitioned(
        eng, scenario.network_config(), options_.placement);
    Session s;
    for (std::uint32_t p = 0; p < eng.num_partitions(); ++p) {
      s.parts.push_back(&eng.partition(p).sim());
    }
    s.run_engine_until = [&eng](sim::SimTime t) { eng.run_until(t); };
    s.spec = net.spec;
    s.port_sensitive = scenario.ecmp_port_sensitive;
    s.hosts = net.hosts;
    s.switches = net.switches;
    s.part_of_host.assign(net.partition_of_host.begin(),
                          net.partition_of_host.end());
    if (with_digest) {
      digest.attach(eng);
      s.digest = &digest;
    }
    drive(s);
  }

  stats_.evictions = cache_.evictions();
  out.stats = stats_;
  out.cache_entries = cache_.entries();
  out.cache_bytes = cache_.resident_bytes();
  return out;
}

}  // namespace esim::memo
