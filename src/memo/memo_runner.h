// Phase-memoizing execution: run a periodic scenario phase by phase,
// recording each phase's state delta on first occurrence and
// fast-forwarding over verified repeats (DESIGN.md §13).
//
// The runner mirrors check::DiffRunner's engine setup exactly — same
// builders, same flow-injection idiom, same digest hookup — but chunks
// the run at workload phase boundaries (workload::PhasePattern). At every
// boundary it recomputes a rolling per-phase counter summary, then, when
// memoization is enabled and both boundary ends are quiescent (nothing
// pending but future injections), it computes the phase signature and
// either applies a verified cached delta (hit: jump virtual time past the
// phase) or records the phase while simulating it live (miss). Any
// verification failure — pattern mismatch, route divergence, predicted
// ephemeral-port wrap, stale-connection collision — is a near-miss: the
// phase falls back to live simulation, never an unsound fast-forward.
//
// Comparison contract (verified by tools/esim_diffcheck memo):
//   * memo-on vs memo-off under the SAME engine spec, both chunked at
//     phase boundaries: FULL digest equality, order lane included.
//   * memo-off (chunked) vs check::DiffRunner (unchunked): full equality
//     sequential; engine-invariant lanes under PDES (chunking changes
//     drain-round seq assignment, not behaviour).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "check/diff_runner.h"
#include "check/digest.h"
#include "check/scenario.h"
#include "memo/phase_cache.h"
#include "workload/phases.h"

namespace esim::memo {

/// Memoization knobs for one MemoRunner.
struct MemoConfig {
  bool enabled = true;
  PhaseCache::Limits limits;
  /// Rolling-summary window (trailing per-phase counter summaries in the
  /// signature).
  std::uint32_t window_phases = 1;
  /// TEST-ONLY: collapse every phase signature to a constant, so *only*
  /// hit-time verification separates phases. Property tests use this to
  /// prove a signature collision can never cause a false hit.
  bool debug_collide_signatures = false;
};

/// Everything one memoized (or memo-off) run produced.
struct MemoRunOutcome {
  /// Full digest; meaningful only when the run was digest-attached.
  check::Digest digest;
  bool digest_attached = false;
  /// Engine-invariant end-of-run component fingerprint (always computed;
  /// the aggregate-only equivalence check).
  std::uint64_t final_state_fp = 0;
  std::uint64_t flows_completed = 0;
  MemoStats stats;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
};

/// Executes periodic scenarios phase by phase with memoization.
class MemoRunner {
 public:
  MemoRunner(const check::DiffRunner::Options& engine_options,
             const MemoConfig& memo)
      : options_{engine_options}, memo_{memo}, cache_{memo.limits} {}

  explicit MemoRunner(const MemoConfig& memo) : MemoRunner({}, memo) {}

  /// Runs `scenario` (whose flow list must be pattern.expand(1) — throws
  /// otherwise) under `engine`, chunked at pattern boundaries. The phase
  /// cache persists across run() calls on one MemoRunner, so a second run
  /// of the same scenario can hit from the first's recordings.
  ///
  /// `with_digest` picks the recording granularity: true attaches a
  /// StateDigest and records/replays full pop and packet streams (the
  /// equivalence-harness mode); false records aggregates only and leaves
  /// MemoRunOutcome::digest zero (the speedup mode).
  MemoRunOutcome run(const check::Scenario& scenario,
                     const workload::PhasePattern& pattern,
                     const check::EngineSpec& engine, bool with_digest);

  /// Accumulated cache accounting across all run() calls.
  const MemoStats& stats() const { return stats_; }
  const PhaseCache& cache() const { return cache_; }

 private:
  check::DiffRunner::Options options_;
  MemoConfig memo_;
  PhaseCache cache_;
  MemoStats stats_;
};

}  // namespace esim::memo
