#include "approx/micro_model.h"

#include <cmath>
#include <stdexcept>

#include "ml/activations.h"
#include "sim/random.h"

namespace esim::approx {

namespace {

std::unique_ptr<ml::SequenceModel> make_trunk(const MicroModel::Config& cfg) {
  sim::Rng rng{cfg.seed};
  return ml::make_sequence_model(cfg.trunk, PacketFeatures::kDim,
                                 cfg.hidden, cfg.layers, rng);
}

ml::Linear make_head(std::uint64_t seed, std::size_t hidden) {
  sim::Rng rng{seed};
  return ml::Linear{hidden, 1, rng};
}

constexpr const char* kHeadNames[] = {"drop", "latency"};

}  // namespace

MicroModel::MicroModel(const Config& config)
    : config_{config},
      trunk_{make_trunk(config)},
      drop_head_{make_head(config.seed + 101, config.hidden)},
      latency_head_{make_head(config.seed + 202, config.hidden)} {
  compile();
}

MicroModel::MicroModel(const MicroModel& other)
    : config_{other.config_},
      trunk_{other.trunk_ ? other.trunk_->clone() : nullptr},
      drop_head_{other.drop_head_},
      latency_head_{other.latency_head_},
      norm_{other.norm_},
      norm_grad_{other.norm_grad_} {
  if (trainable()) {
    // Snapshot the copied weights (which also gives the copy a fresh,
    // reset recurrent state — streamed history never transfers).
    compile();
  } else {
    // Inference-only: the session is self-contained; only the streamed
    // state must not come along.
    session_ = std::make_unique<ml::InferenceSession>(*other.session_);
    session_->reset_state();
  }
}

MicroModel& MicroModel::operator=(const MicroModel& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  trunk_ = other.trunk_ ? other.trunk_->clone() : nullptr;
  drop_head_ = other.drop_head_;
  latency_head_ = other.latency_head_;
  norm_ = other.norm_;
  norm_grad_ = other.norm_grad_;
  ref_state_.reset();
  if (trainable()) {
    compile();
  } else {
    session_ = std::make_unique<ml::InferenceSession>(*other.session_);
    session_->reset_state();
  }
  return *this;
}

void MicroModel::compile() {
  const std::vector<ml::InferenceSession::HeadWeights> heads{
      {&drop_head_->weight(), &drop_head_->bias()},
      {&latency_head_->weight(), &latency_head_->bias()}};
  session_ = trunk_->make_inference_session(heads);
  // make_inference_session watches the trunk; optimizers over the whole
  // MicroModel (the trainer's setup) or a single head bump those
  // versions instead, so watch them too — any write path to the
  // snapshotted weights must trip the staleness check.
  session_->watch_weight_source(*this);
  session_->watch_weight_source(*drop_head_);
  session_->watch_weight_source(*latency_head_);
}

void MicroModel::recompile() {
  require_trainable("recompile");
  compile();
}

void MicroModel::require_trainable(const char* what) const {
  if (!trainable()) {
    throw std::logic_error(std::string{"MicroModel::"} + what +
                           ": inference-only model (load_inference)");
  }
}

void MicroModel::reset_state() {
  session_->reset_state();
  ref_state_.reset();
}

ml::SequenceModel& MicroModel::trunk() {
  require_trainable("trunk");
  return *trunk_;
}

ml::Linear& MicroModel::drop_head() {
  require_trainable("drop_head");
  return *drop_head_;
}

ml::Linear& MicroModel::latency_head() {
  require_trainable("latency_head");
  return *latency_head_;
}

void MicroModel::set_latency_normalization(double mean_log_us,
                                           double std_log_us) {
  norm_.at(0, 0) = mean_log_us;
  norm_.at(0, 1) = std_log_us <= 0 ? 1.0 : std_log_us;
}

double MicroModel::denormalize_latency(double head_output) const {
  const double log_us = head_output * norm_.at(0, 1) + norm_.at(0, 0);
  return std::exp(log_us) * 1e-6;
}

double MicroModel::normalize_latency(double latency_seconds) const {
  const double us = std::max(latency_seconds * 1e6, 1e-3);
  return (std::log(us) - norm_.at(0, 0)) / norm_.at(0, 1);
}

MicroModel::Prediction MicroModel::predict(
    std::span<const double> features) {
  const std::span<const double> out = session_->predict(features);
  Prediction p;
  p.drop_probability = ml::sigmoid(out[0]);
  p.latency_seconds = denormalize_latency(out[1]);
  return p;
}

void MicroModel::reserve_batch(std::size_t max_n) {
  session_->reserve_batch(max_n);
}

std::size_t MicroModel::predict_batch(std::span<const double> features,
                                      std::span<Prediction> out) {
  const std::size_t n = features.size() / PacketFeatures::kDim;
  if (features.size() != n * PacketFeatures::kDim || out.size() < n) {
    throw std::invalid_argument(
        "MicroModel::predict_batch: feature/output size mismatch");
  }
  const std::span<const double> raw = session_->predict_batch(features, n);
  // Per packet the head outputs — and therefore sigmoid/de-normalization
  // inputs — are bit-identical to a predict() call at the same stream
  // position, so the Prediction structs match the sequential path
  // exactly.
  for (std::size_t t = 0; t < n; ++t) {
    out[t].drop_probability = ml::sigmoid(raw[t * 2]);
    out[t].latency_seconds = denormalize_latency(raw[t * 2 + 1]);
  }
  return n;
}

MicroModel::Prediction MicroModel::predict_reference(
    std::span<const double> features) {
  require_trainable("predict_reference");
  if (!ref_state_) ref_state_ = trunk_->make_state(1);
  ml::Tensor x{1, PacketFeatures::kDim,
               std::vector<double>(features.begin(), features.end())};
  const ml::Tensor h = trunk_->step(x, *ref_state_);
  const ml::Tensor drop_logit = drop_head_->forward(h);
  const ml::Tensor lat = latency_head_->forward(h);
  Prediction p;
  p.drop_probability = ml::sigmoid(drop_logit.at(0, 0));
  p.latency_seconds = denormalize_latency(lat.at(0, 0));
  return p;
}

void MicroModel::save(const std::string& path) {
  require_trainable("save");
  ml::ModelHeader header;
  header.trunk = config_.trunk;
  header.input = static_cast<std::uint32_t>(PacketFeatures::kDim);
  header.hidden = static_cast<std::uint32_t>(config_.hidden);
  header.layers = static_cast<std::uint32_t>(config_.layers);
  header.heads = 2;
  ml::save_model(path, header, parameters());
}

MicroModel MicroModel::load_inference(const std::string& path) {
  const ml::ModelHeader header = ml::load_model_header(path);
  if (header.input != PacketFeatures::kDim) {
    throw std::runtime_error("MicroModel::load_inference: feature width " +
                             std::to_string(header.input) + " != " +
                             std::to_string(PacketFeatures::kDim));
  }
  if (header.heads != 2) {
    throw std::runtime_error(
        "MicroModel::load_inference: expected 2 heads, file has " +
        std::to_string(header.heads));
  }
  MicroModel m;
  m.config_.trunk = header.trunk;
  m.config_.hidden = header.hidden;
  m.config_.layers = header.layers;
  ml::InferenceSession::Arch arch;
  arch.kind = header.trunk;
  arch.input = header.input;
  arch.hidden = header.hidden;
  arch.layers = header.layers;
  arch.head_outputs = {1, 1};
  m.session_ = std::make_unique<ml::InferenceSession>(arch);
  auto views = m.session_->weight_views(
      "trunk.", {kHeadNames[0], kHeadNames[1]});
  views.push_back({"norm", 1, 2, m.norm_.data()});
  ml::load_model(path, views);
  m.session_->repack();  // refresh the kernel copy of the loaded weights
  return m;
}

std::vector<ml::Parameter> MicroModel::parameters() {
  require_trainable("parameters");
  std::vector<ml::Parameter> out;
  for (auto& p : trunk_->parameters()) {
    out.push_back({"trunk." + p.name, p.value, p.grad});
  }
  for (auto& p : drop_head_->parameters()) {
    out.push_back({std::string{kHeadNames[0]} + "." + p.name, p.value,
                   p.grad});
  }
  for (auto& p : latency_head_->parameters()) {
    out.push_back({std::string{kHeadNames[1]} + "." + p.name, p.value,
                   p.grad});
  }
  out.push_back({"norm", &norm_, &norm_grad_});
  return out;
}

}  // namespace esim::approx
