#include "approx/micro_model.h"

#include <cmath>

#include "ml/activations.h"
#include "sim/random.h"

namespace esim::approx {

namespace {

std::unique_ptr<ml::SequenceModel> make_trunk(const MicroModel::Config& cfg) {
  sim::Rng rng{cfg.seed};
  return ml::make_sequence_model(cfg.trunk, PacketFeatures::kDim,
                                 cfg.hidden, cfg.layers, rng);
}

ml::Linear make_head(std::uint64_t seed, std::size_t hidden) {
  sim::Rng rng{seed};
  return ml::Linear{hidden, 1, rng};
}

}  // namespace

MicroModel::MicroModel(const Config& config)
    : config_{config},
      trunk_{make_trunk(config)},
      drop_head_{make_head(config.seed + 101, config.hidden)},
      latency_head_{make_head(config.seed + 202, config.hidden)},
      norm_{1, 2, {std::log(10.0), 1.0}},  // default: ~10us fabric latency
      norm_grad_{1, 2} {}

MicroModel::MicroModel(const MicroModel& other)
    : config_{other.config_},
      trunk_{other.trunk_->clone()},
      drop_head_{other.drop_head_},
      latency_head_{other.latency_head_},
      norm_{other.norm_},
      norm_grad_{other.norm_grad_} {}

MicroModel& MicroModel::operator=(const MicroModel& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  trunk_ = other.trunk_->clone();
  drop_head_ = other.drop_head_;
  latency_head_ = other.latency_head_;
  norm_ = other.norm_;
  norm_grad_ = other.norm_grad_;
  state_.reset();
  return *this;
}

void MicroModel::reset_state() { state_.reset(); }

void MicroModel::set_latency_normalization(double mean_log_us,
                                           double std_log_us) {
  norm_.at(0, 0) = mean_log_us;
  norm_.at(0, 1) = std_log_us <= 0 ? 1.0 : std_log_us;
}

double MicroModel::denormalize_latency(double head_output) const {
  const double log_us = head_output * norm_.at(0, 1) + norm_.at(0, 0);
  return std::exp(log_us) * 1e-6;
}

double MicroModel::normalize_latency(double latency_seconds) const {
  const double us = std::max(latency_seconds * 1e6, 1e-3);
  return (std::log(us) - norm_.at(0, 0)) / norm_.at(0, 1);
}

MicroModel::Prediction MicroModel::predict(const PacketFeatures& features) {
  if (!state_) state_ = trunk_->make_state(1);
  ml::Tensor x{1, PacketFeatures::kDim,
               std::vector<double>(features.v.begin(), features.v.end())};
  const ml::Tensor h = trunk_->step(x, *state_);
  const ml::Tensor drop_logit = drop_head_.forward(h);
  const ml::Tensor lat = latency_head_.forward(h);
  Prediction p;
  p.drop_probability = ml::sigmoid(drop_logit.at(0, 0));
  p.latency_seconds = denormalize_latency(lat.at(0, 0));
  return p;
}

std::vector<ml::Parameter> MicroModel::parameters() {
  std::vector<ml::Parameter> out;
  for (auto& p : trunk_->parameters()) {
    out.push_back({"trunk." + p.name, p.value, p.grad});
  }
  for (auto& p : drop_head_.parameters()) {
    out.push_back({"drop." + p.name, p.value, p.grad});
  }
  for (auto& p : latency_head_.parameters()) {
    out.push_back({"latency." + p.name, p.value, p.grad});
  }
  out.push_back({"norm", &norm_, &norm_grad_});
  return out;
}

}  // namespace esim::approx
