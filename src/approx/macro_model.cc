#include "approx/macro_model.h"

namespace esim::approx {

MacroClassifier::MacroClassifier(const Config& config)
    : config_{config},
      latency_ewma_{config.smoothing_alpha},
      drop_ewma_{config.smoothing_alpha} {}

void MacroClassifier::reset() {
  state_ = MacroState::MinimalCongestion;
  latency_ewma_.reset();
  drop_ewma_.reset();
  prev_signal_ = 0.0;
  window_latency_sum_ = 0.0;
  window_delivered_ = 0;
  window_dropped_ = 0;
}

void MacroClassifier::observe(double latency_seconds, bool dropped) {
  if (dropped) {
    ++window_dropped_;
  } else {
    ++window_delivered_;
    window_latency_sum_ += latency_seconds;
  }
}

void MacroClassifier::advance_window() {
  const std::uint64_t total = window_delivered_ + window_dropped_;
  const double mean_latency =
      window_delivered_ == 0
          ? 0.0
          : window_latency_sum_ / static_cast<double>(window_delivered_);
  const double drop_rate =
      total == 0 ? 0.0
                 : static_cast<double>(window_dropped_) /
                       static_cast<double>(total);
  latency_ewma_.add(mean_latency);
  drop_ewma_.add(drop_rate);
  window_latency_sum_ = 0.0;
  window_delivered_ = 0;
  window_dropped_ = 0;

  const double lat = latency_ewma_.value();
  const double drop = drop_ewma_.value();
  // Combined congestion signal used for the rising/falling decision.
  const double signal = lat / config_.baseline_latency_s + 50.0 * drop;
  const bool rising = signal > prev_signal_;
  prev_signal_ = signal;

  if (lat < config_.low_latency_factor * config_.baseline_latency_s &&
      drop < config_.high_drop_rate) {
    state_ = MacroState::MinimalCongestion;
  } else if (drop >= config_.high_drop_rate) {
    // Paper text: relatively high drops classify as state (4).
    state_ = MacroState::DecreasingCongestion;
  } else if (rising) {
    state_ = MacroState::IncreasingCongestion;
  } else {
    state_ = MacroState::HighCongestion;
  }
}

}  // namespace esim::approx
