#include "approx/trace.h"

namespace esim::approx {

TraceRecorder::TraceRecorder(const net::ClosSpec& spec, std::uint32_t cluster,
                             const BoundaryTaps& taps)
    : spec_{spec}, cluster_{cluster} {
  for (auto* link : taps.host_uplinks) {
    link->on_transmit = [this](const net::Packet& pkt,
                               sim::SimTime arrive_at) {
      on_entry(pkt, arrive_at, Direction::Egress);
    };
  }
  for (auto* link : taps.core_agg_down) {
    link->on_transmit = [this](const net::Packet& pkt,
                               sim::SimTime arrive_at) {
      on_entry(pkt, arrive_at, Direction::Ingress);
    };
  }
  for (auto* link : taps.agg_core_up) {
    link->on_transmit = [this](const net::Packet& pkt,
                               sim::SimTime arrive_at) {
      on_exit(pkt, arrive_at);
    };
  }
  for (auto* link : taps.host_downlinks) {
    link->on_transmit = [this](const net::Packet& pkt,
                               sim::SimTime arrive_at) {
      on_exit(pkt, arrive_at);
    };
  }
  for (auto* link : taps.drop_links) {
    link->on_drop = [this](const net::Packet& pkt) { on_fabric_drop(pkt); };
  }
}

void TraceRecorder::on_entry(const net::Packet& pkt, sim::SimTime arrive_at,
                             Direction direction) {
  // Intra-cluster traffic never crosses the boundary: filter at entry.
  if (direction == Direction::Egress &&
      spec_.cluster_of_host(pkt.flow.dst_host) == cluster_) {
    return;
  }
  BoundaryRecord rec;
  rec.packet = pkt;
  rec.direction = direction;
  rec.entry = arrive_at;
  open_[pkt.id] = records_.size();
  records_.push_back(std::move(rec));
}

void TraceRecorder::on_exit(const net::Packet& pkt, sim::SimTime arrive_at) {
  const auto it = open_.find(pkt.id);
  if (it == open_.end()) return;  // not a tracked boundary crossing
  BoundaryRecord& rec = records_[it->second];
  rec.exit = arrive_at;
  rec.completed = true;
  open_.erase(it);
}

void TraceRecorder::on_fabric_drop(const net::Packet& pkt) {
  const auto it = open_.find(pkt.id);
  if (it == open_.end()) return;
  BoundaryRecord& rec = records_[it->second];
  rec.dropped = true;
  rec.completed = true;
  open_.erase(it);
}

void TraceRecorder::finalize() { open_.clear(); }

std::vector<BoundaryRecord> TraceRecorder::completed(
    Direction direction) const {
  std::vector<BoundaryRecord> out;
  for (const auto& r : records_) {
    if (r.completed && r.direction == direction) out.push_back(r);
  }
  return out;
}

}  // namespace esim::approx
