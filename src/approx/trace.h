// Boundary trace recording (paper §3: "We first briefly simulate a small
// network in full packet-level fidelity to generate training and testing
// sets for a machine learning model").
//
// The recorder taps the links at the edge of one cluster's fabric in a
// full-fidelity simulation and produces, per packet that crosses the
// boundary, the ground truth the micro model learns: did the fabric drop
// it, and if not, how long did the traversal take.
//
// Boundary geometry (matches what an ApproxCluster later replaces):
//   egress  : host->ToR link transmit (entry)  ->  Agg->Core transmit (exit)
//   ingress : Core->Agg transmit (entry)       ->  ToR->host transmit (exit)
// Drops anywhere inside the fabric (ToR/Agg output queues) mark the open
// entry as dropped. Intra-cluster packets never cross the boundary and are
// filtered out at entry by path replay.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "approx/features.h"
#include "net/clos.h"
#include "net/link.h"
#include "net/packet.h"

namespace esim::approx {

/// One boundary crossing observed in the full simulation.
struct BoundaryRecord {
  net::Packet packet;     ///< header snapshot at entry
  Direction direction = Direction::Egress;
  sim::SimTime entry;     ///< arrival at the fabric edge
  sim::SimTime exit;      ///< arrival at the far edge (if delivered)
  bool dropped = false;
  bool completed = false;  ///< exit or drop observed (else still in flight)
};

/// The boundary links of one cluster. Built by core/experiment helpers
/// from a BuiltNetwork; kept as a plain struct so this module does not
/// depend on the builders above it.
struct BoundaryTaps {
  std::vector<net::Link*> host_uplinks;     ///< egress entries
  std::vector<net::Link*> host_downlinks;   ///< ingress exits
  std::vector<net::Link*> agg_core_up;      ///< egress exits
  std::vector<net::Link*> core_agg_down;    ///< ingress entries
  /// Links whose queue drops count as fabric drops for this cluster
  /// (ToR->Agg, Agg->ToR, ToR->host, Agg->Core).
  std::vector<net::Link*> drop_links;
};

/// Installs observers on the taps and accumulates BoundaryRecords.
/// The recorder must outlive the simulation run it observes; it overwrites
/// the links' on_transmit/on_drop hooks.
class TraceRecorder {
 public:
  /// `cluster` is the cluster the taps belong to.
  TraceRecorder(const net::ClosSpec& spec, std::uint32_t cluster,
                const BoundaryTaps& taps);

  /// Marks still-open entries as incomplete. Call after the run.
  void finalize();

  /// All records in entry order (stable: entry events are sequential).
  const std::vector<BoundaryRecord>& records() const { return records_; }

  /// Records of one direction, entry-ordered, completed ones only.
  std::vector<BoundaryRecord> completed(Direction direction) const;

  /// Counts, for sanity checks.
  std::size_t open_count() const { return open_.size(); }

 private:
  void on_entry(const net::Packet& pkt, sim::SimTime arrive_at,
                Direction direction);
  void on_exit(const net::Packet& pkt, sim::SimTime arrive_at);
  void on_fabric_drop(const net::Packet& pkt);

  net::ClosSpec spec_;
  std::uint32_t cluster_;
  std::vector<BoundaryRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> open_;  // pkt id -> index
};

}  // namespace esim::approx
