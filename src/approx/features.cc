#include "approx/features.h"

#include <cmath>

namespace esim::approx {
namespace {

/// log1p of a microsecond quantity, squashed to roughly [0, 1.5].
double squash_us(double us) { return std::log1p(us) / 10.0; }

}  // namespace

FeatureExtractor::FeatureExtractor(const net::ClosSpec& spec,
                                   std::uint32_t cluster,
                                   Direction direction)
    : spec_{spec}, cluster_{cluster}, direction_{direction} {
  spec_.validate();
}

void FeatureExtractor::reset() {
  has_last_ = false;
  last_arrival_ = sim::SimTime{};
  gap_ewma_.reset();
}

PacketFeatures FeatureExtractor::extract(const net::Packet& pkt,
                                         sim::SimTime now,
                                         MacroState macro) {
  PacketFeatures f;
  const double hosts = static_cast<double>(spec_.total_hosts());
  const double switches = static_cast<double>(spec_.total_switches());

  f.v[0] = static_cast<double>(pkt.flow.src_host) / hosts;
  f.v[1] = static_cast<double>(pkt.flow.dst_host) / hosts;

  // Replay the deterministic path to identify the switches this packet
  // would traverse inside (and beyond) the approximated cluster.
  const auto path = net::compute_path(spec_, pkt.flow);
  // The ToR on this cluster's side of the path.
  const net::SwitchId tor = direction_ == Direction::Egress
                                ? path.hops[0]
                                : path.hops[path.len - 1];
  net::SwitchId agg = tor;   // fallback for 1-hop intra-ToR paths
  double core_feature = 0.0;  // 0 marks "no core hop"
  bool intra = true;
  if (path.len == 3) {
    agg = path.hops[1];
  } else if (path.len == 5) {
    intra = false;
    if (direction_ == Direction::Egress) {
      agg = path.hops[1];
    } else {
      agg = path.hops[3];
    }
    core_feature = (static_cast<double>(path.hops[2]) + 1.0) / switches;
  }
  f.v[2] = static_cast<double>(tor) / switches;
  f.v[3] = static_cast<double>(agg) / switches;
  f.v[4] = core_feature;

  double gap_us = 0.0;
  if (has_last_) gap_us = (now - last_arrival_).to_us();
  last_arrival_ = now;
  has_last_ = true;
  gap_ewma_.add(gap_us);

  f.v[5] = squash_us(gap_us);
  f.v[6] = squash_us(gap_ewma_.value());
  f.v[7] = static_cast<double>(pkt.size_bytes()) / 1538.0;
  f.v[8] = intra ? 1.0 : 0.0;
  f.v[9 + static_cast<std::size_t>(macro)] = 1.0;
  return f;
}

}  // namespace esim::approx
