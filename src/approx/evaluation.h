// Held-out evaluation of micro models.
//
// The paper's workflow generates "training and testing sets" (§3); this
// module provides the testing half: a chronological train/test split (the
// model must extrapolate forward in time, so random splits would leak)
// and classification/regression metrics beyond raw accuracy — drop
// prediction is a rare-event problem where accuracy alone is nearly
// meaningless, so ranking (AUC) and precision/recall are reported too.
#pragma once

#include <cstddef>
#include <utility>

#include "approx/dataset.h"
#include "approx/micro_model.h"

namespace esim::approx {

/// Held-out quality of one micro model.
struct EvalMetrics {
  // Drop head (classification).
  double drop_auc = 0.5;        ///< ranking quality; 0.5 = chance
  double drop_accuracy = 0.0;   ///< at threshold 0.5
  double drop_precision = 0.0;  ///< of predicted drops, fraction real
  double drop_recall = 0.0;     ///< of real drops, fraction predicted
  double base_drop_rate = 0.0;  ///< test-set drop fraction (context)

  // Latency head (regression, normalized log space).
  double latency_mae = 0.0;     ///< mean |error|
  double latency_bias = 0.0;    ///< mean signed error (under/over)
  double latency_p90_abs_error = 0.0;

  std::size_t rows = 0;
};

/// Splits rows chronologically: the first `train_fraction` become the
/// training set, the rest the test set. Normalization statistics are
/// recomputed for each split from its own delivered rows.
std::pair<Dataset, Dataset> split_dataset(const Dataset& dataset,
                                          double train_fraction);

/// Streams the test set through the model (fresh hidden state) and
/// scores both heads. Resets the model's streaming state before and
/// after.
EvalMetrics evaluate_micro_model(MicroModel& model, const Dataset& test);

}  // namespace esim::approx
