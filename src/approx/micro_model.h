// The deep-learning micro model (paper §4.2): a recurrent trunk whose
// multi-dimensional hidden state feeds two fully connected heads, one
// predicting the packet-drop logit and one predicting (log-space,
// normalized) latency. One MicroModel handles one boundary direction.
//
// "The multi-dimensional hidden state output from the LSTM is given to one
//  fully connected layer to predict the latency and another fully
//  connected layer to predict packet drop. This is superior to training
//  two separate models as the neural network representation can learn the
//  joint distribution of drops and latency."
//
// The trunk defaults to the paper's two-layer LSTM; a GRU variant (§7's
// "new LSTM variants") is selectable via Config::trunk.
//
// Train/infer split (DESIGN.md §8): the packet hot path runs through a
// compiled ml::InferenceSession — an immutable snapshot of the weights
// taken at construction/copy/recompile() time — so predict() allocates
// nothing. After optimizer steps mutate the training tensors, call
// recompile() to re-snapshot (train_micro_model does this at train
// completion). predict_reference() keeps the naive Tensor step() path as
// the bit-identical reference. A model loaded via load_inference() is
// *inference-only*: it owns just the session weights and never
// materializes the training-side gradient tensors (trainable() == false;
// training accessors throw).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "approx/features.h"
#include "ml/linear.h"
#include "ml/module.h"
#include "ml/sequence_model.h"
#include "ml/serialize.h"

namespace esim::approx {

/// Recurrent trunk + drop head + latency head, with streaming state.
class MicroModel : public ml::Module {
 public:
  struct Config {
    std::size_t hidden = 32;  ///< paper prototype: 128; smaller by default
    std::size_t layers = 2;   ///< paper prototype: two-layer LSTM
    ml::TrunkKind trunk = ml::TrunkKind::Lstm;
    std::uint64_t seed = 1;   ///< weight initialisation stream
  };

  /// What the model asserts about one packet.
  struct Prediction {
    double drop_probability = 0.0;
    double latency_seconds = 0.0;
  };

  explicit MicroModel(const Config& config);

  /// Deep copies (each ApproxCluster owns private weights + state). The
  /// copy's recurrent state is always reset — streamed history is never
  /// shared between clusters.
  MicroModel(const MicroModel& other);
  MicroModel& operator=(const MicroModel& other);

  /// Streaming inference for one packet: advances the hidden state and
  /// returns the joint prediction. Latency is de-normalized via the stats
  /// set at training time. Runs the fused InferenceSession; performs no
  /// heap allocation. Throws std::logic_error if the compiled session is
  /// stale (weights written since the last recompile()).
  Prediction predict(std::span<const double> features);
  Prediction predict(const PacketFeatures& features) {
    return predict(std::span<const double>{features.v});
  }

  /// Batched streaming inference over n packets in arrival order:
  /// features holds n rows of PacketFeatures::kDim doubles, out receives
  /// n predictions. Recurrent state advances exactly as n predict()
  /// calls would and every prediction is bit-identical to the sequential
  /// path (ml::InferenceSession::predict_batch contract); the layer
  /// weight streams are amortized across the batch. Returns n. Zero heap
  /// allocations once reserve_batch() covers n.
  std::size_t predict_batch(std::span<const double> features,
                            std::span<Prediction> out);

  /// Pre-sizes the session's batch workspace for predict_batch(n <= max_n).
  void reserve_batch(std::size_t max_n);

  /// The naive Tensor step() path, kept as the reference implementation
  /// for the bit-identity contract (and the baseline of
  /// bench/bench_inference). Streams its own hidden state, separate from
  /// the session's. Trainable models only.
  Prediction predict_reference(std::span<const double> features);
  Prediction predict_reference(const PacketFeatures& features) {
    return predict_reference(std::span<const double>{features.v});
  }

  /// Clears the streaming hidden state (start of a new simulation) of
  /// both the session and the reference path.
  void reset_state();

  /// Sets the latency-target normalization (mean/std of ln(latency_us))
  /// computed by the trainer over the training set.
  void set_latency_normalization(double mean_log_us, double std_log_us);

  /// Converts a normalized latency-head output to seconds.
  double denormalize_latency(double head_output) const;

  /// Converts a latency in seconds to the normalized training target.
  double normalize_latency(double latency_seconds) const;

  /// False for models built by load_inference(): they carry only the
  /// compiled session, no training machinery.
  bool trainable() const { return trunk_ != nullptr; }

  /// Trainer access to the pieces. Throw std::logic_error when
  /// !trainable().
  ml::SequenceModel& trunk();
  ml::Linear& drop_head();
  ml::Linear& latency_head();

  /// Re-snapshots the session from the current weight values. Call after
  /// mutating weights in place (optimizer steps, load_parameters);
  /// sessions are immutable and do not track later tensor writes. Throws
  /// std::logic_error when !trainable().
  void recompile();

  /// The compiled hot-path plan.
  const ml::InferenceSession& session() const { return *session_; }

  const Config& config() const { return config_; }

  /// Saves the v2 model container (architecture header + weights);
  /// load_inference() reads it back without the training structures.
  void save(const std::string& path);

  /// Loads a v2 model file into an inference-only model: one owning
  /// InferenceSession, no Tensors, no gradients. Throws
  /// std::runtime_error on format/shape errors.
  static MicroModel load_inference(const std::string& path);

  /// Includes the trunk, both heads, and the normalization constants (so
  /// serialized models carry them). Throws std::logic_error when
  /// !trainable().
  std::vector<ml::Parameter> parameters() override;

 private:
  MicroModel() = default;  // inference-only shell for load_inference
  void compile();          // snapshots the live weights into session_
  void require_trainable(const char* what) const;

  Config config_;
  std::unique_ptr<ml::SequenceModel> trunk_;  // null when inference-only
  std::optional<ml::Linear> drop_head_;
  std::optional<ml::Linear> latency_head_;
  ml::Tensor norm_{1, 2, {std::log(10.0), 1.0}};  // default: ~10us fabric

  ml::Tensor norm_grad_{1, 2};  // unused, present for the Parameter interface
  std::unique_ptr<ml::InferenceSession> session_;
  std::unique_ptr<ml::SequenceModel::State> ref_state_;  // reference path
};

}  // namespace esim::approx
