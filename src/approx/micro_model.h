// The deep-learning micro model (paper §4.2): a recurrent trunk whose
// multi-dimensional hidden state feeds two fully connected heads, one
// predicting the packet-drop logit and one predicting (log-space,
// normalized) latency. One MicroModel handles one boundary direction.
//
// "The multi-dimensional hidden state output from the LSTM is given to one
//  fully connected layer to predict the latency and another fully
//  connected layer to predict packet drop. This is superior to training
//  two separate models as the neural network representation can learn the
//  joint distribution of drops and latency."
//
// The trunk defaults to the paper's two-layer LSTM; a GRU variant (§7's
// "new LSTM variants") is selectable via Config::trunk.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "approx/features.h"
#include "ml/linear.h"
#include "ml/module.h"
#include "ml/sequence_model.h"

namespace esim::approx {

/// Recurrent trunk + drop head + latency head, with streaming state.
class MicroModel : public ml::Module {
 public:
  struct Config {
    std::size_t hidden = 32;  ///< paper prototype: 128; smaller by default
    std::size_t layers = 2;   ///< paper prototype: two-layer LSTM
    ml::TrunkKind trunk = ml::TrunkKind::Lstm;
    std::uint64_t seed = 1;   ///< weight initialisation stream
  };

  /// What the model asserts about one packet.
  struct Prediction {
    double drop_probability = 0.0;
    double latency_seconds = 0.0;
  };

  explicit MicroModel(const Config& config);

  /// Deep copies (each ApproxCluster owns private weights + state).
  MicroModel(const MicroModel& other);
  MicroModel& operator=(const MicroModel& other);

  /// Streaming inference for one packet: advances the hidden state and
  /// returns the joint prediction. Latency is de-normalized via the stats
  /// set at training time.
  Prediction predict(const PacketFeatures& features);

  /// Clears the streaming hidden state (start of a new simulation).
  void reset_state();

  /// Sets the latency-target normalization (mean/std of ln(latency_us))
  /// computed by the trainer over the training set.
  void set_latency_normalization(double mean_log_us, double std_log_us);

  /// Converts a normalized latency-head output to seconds.
  double denormalize_latency(double head_output) const;

  /// Converts a latency in seconds to the normalized training target.
  double normalize_latency(double latency_seconds) const;

  /// Trainer access to the pieces.
  ml::SequenceModel& trunk() { return *trunk_; }
  ml::Linear& drop_head() { return drop_head_; }
  ml::Linear& latency_head() { return latency_head_; }

  const Config& config() const { return config_; }

  /// Includes the trunk, both heads, and the normalization constants (so
  /// serialized models carry them).
  std::vector<ml::Parameter> parameters() override;

 private:
  Config config_;
  std::unique_ptr<ml::SequenceModel> trunk_;
  ml::Linear drop_head_;
  ml::Linear latency_head_;
  ml::Tensor norm_;       // 1x2: [mean_log_us, std_log_us]
  ml::Tensor norm_grad_;  // unused, present for the Parameter interface
  std::unique_ptr<ml::SequenceModel::State> state_;
};

}  // namespace esim::approx
