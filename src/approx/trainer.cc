#include "approx/trainer.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ml/loss.h"
#include "ml/optimizer.h"
#include "sim/random.h"

namespace esim::approx {

TrainReport train_micro_model(MicroModel& model, const Dataset& dataset,
                              const TrainConfig& config) {
  const std::size_t N = dataset.size();
  const std::size_t T = config.seq_len;
  const std::size_t B = config.batch_size;
  if (N < T + 1) {
    throw std::invalid_argument(
        "train_micro_model: dataset smaller than one sequence");
  }
  if (config.alpha <= 0.0 || config.alpha > 1.0) {
    throw std::invalid_argument("train_micro_model: alpha outside (0, 1]");
  }

  model.set_latency_normalization(dataset.mean_log_us, dataset.std_log_us);

  ml::SgdMomentum::Config ocfg;
  ocfg.learning_rate = config.learning_rate;
  ocfg.momentum = config.momentum;
  ocfg.clip_norm = config.clip_norm;
  // The Module overload bumps the model's weight version on every step,
  // so a compiled InferenceSession that misses the recompile below
  // throws instead of silently predicting with pre-training weights.
  ml::SgdMomentum opt{model, ocfg};

  sim::Rng rng{config.seed};
  TrainReport report;
  report.dataset_size = N;

  ml::SequenceModel& trunk = model.trunk();
  ml::Linear& drop_head = model.drop_head();
  ml::Linear& latency_head = model.latency_head();

  for (std::size_t batch = 0; batch < config.batches; ++batch) {
    // Sample B random sequence starts.
    std::vector<std::size_t> starts(B);
    for (auto& s : starts) s = rng.uniform_int(N - T);

    // Assemble per-timestep tensors.
    std::vector<ml::Tensor> xs(T);
    std::vector<ml::Tensor> drop_t(T), lat_t(T), mask_t(T);
    for (std::size_t t = 0; t < T; ++t) {
      xs[t] = ml::Tensor{B, PacketFeatures::kDim};
      drop_t[t] = ml::Tensor{B, 1};
      lat_t[t] = ml::Tensor{B, 1};
      mask_t[t] = ml::Tensor{B, 1};
      for (std::size_t b = 0; b < B; ++b) {
        const std::size_t row = starts[b] + t;
        for (std::size_t k = 0; k < PacketFeatures::kDim; ++k) {
          xs[t].at(b, k) = dataset.features[row].v[k];
        }
        const double dropped = dataset.drop_targets[row];
        drop_t[t].at(b, 0) = dropped;
        mask_t[t].at(b, 0) = dropped > 0.5 ? 0.0 : 1.0;
        lat_t[t].at(b, 0) =
            dropped > 0.5
                ? 0.0
                : (dataset.latency_log_us[row] - dataset.mean_log_us) /
                      dataset.std_log_us;
      }
    }

    auto state = trunk.make_state(B);
    std::unique_ptr<ml::SequenceModel::Cache> cache;
    const auto hs = trunk.forward(xs, *state, cache);

    double drop_loss = 0.0, lat_loss = 0.0;
    std::vector<ml::Tensor> dhs(T);
    for (std::size_t t = 0; t < T; ++t) {
      const ml::Tensor logits = drop_head.forward(hs[t]);
      const ml::Tensor lat_pred = latency_head.forward(hs[t]);

      ml::Tensor dlogits, dlat;
      drop_loss += ml::bce_with_logits(logits, drop_t[t], &dlogits) /
                   static_cast<double>(T);
      lat_loss += ml::masked_mse(lat_pred, lat_t[t], mask_t[t], &dlat) /
                  static_cast<double>(T);
      dlogits.scale(1.0 / static_cast<double>(T));
      dlat.scale(config.alpha / static_cast<double>(T));

      dhs[t] = drop_head.backward(hs[t], dlogits);
      dhs[t].add(latency_head.backward(hs[t], dlat));
    }
    trunk.backward(*cache, dhs);
    opt.step();
    opt.zero_grad();

    const double loss = drop_loss + config.alpha * lat_loss;
    if (batch == 0) report.initial_loss = loss;
    report.final_loss = loss;
    report.final_drop_loss = drop_loss;
    report.final_latency_loss = lat_loss;
  }

  // Train completion: re-snapshot the inference session so predict()
  // serves the trained weights (sessions are immutable; the optimizer
  // wrote through the training tensors behind the compiled copy).
  model.recompile();

  // Evaluation sweep: streaming predictions over the dataset.
  model.reset_state();
  std::size_t correct = 0, delivered = 0;
  double mae = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    const auto pred = model.predict(dataset.features[i]);
    const bool predicted_drop = pred.drop_probability > 0.5;
    const bool was_drop = dataset.drop_targets[i] > 0.5;
    if (predicted_drop == was_drop) ++correct;
    if (!was_drop) {
      const double target_norm =
          (dataset.latency_log_us[i] - dataset.mean_log_us) /
          dataset.std_log_us;
      mae += std::abs(model.normalize_latency(pred.latency_seconds) -
                      target_norm);
      ++delivered;
    }
  }
  report.drop_accuracy = static_cast<double>(correct) /
                         static_cast<double>(N);
  report.latency_mae =
      delivered == 0 ? 0.0 : mae / static_cast<double>(delivered);
  model.reset_state();
  return report;
}

}  // namespace esim::approx
