#include "approx/dataset.h"

#include <algorithm>
#include <cmath>

namespace esim::approx {

double Dataset::drop_rate() const {
  if (drop_targets.empty()) return 0.0;
  double s = 0;
  for (double d : drop_targets) s += d;
  return s / static_cast<double>(drop_targets.size());
}

Dataset build_dataset(const net::ClosSpec& spec, std::uint32_t cluster,
                      Direction direction,
                      const std::vector<BoundaryRecord>& records,
                      const MacroClassifier::Config& macro_config) {
  std::vector<const BoundaryRecord*> ordered;
  ordered.reserve(records.size());
  for (const auto& r : records) {
    if (r.completed && r.direction == direction) ordered.push_back(&r);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const BoundaryRecord* a, const BoundaryRecord* b) {
              if (a->entry != b->entry) return a->entry < b->entry;
              return a->packet.id < b->packet.id;
            });

  Dataset ds;
  ds.features.reserve(ordered.size());
  ds.drop_targets.reserve(ordered.size());
  ds.latency_log_us.reserve(ordered.size());

  FeatureExtractor extractor{spec, cluster, direction};
  MacroClassifier macro{macro_config};
  sim::SimTime window_end = macro.window();

  double sum = 0.0, sumsq = 0.0;
  std::size_t delivered = 0;

  for (const BoundaryRecord* rec : ordered) {
    // Advance macro windows up to this packet's entry time.
    while (rec->entry >= window_end) {
      macro.advance_window();
      window_end += macro.window();
    }
    const PacketFeatures f =
        extractor.extract(rec->packet, rec->entry, macro.state());
    ds.features.push_back(f);
    ds.drop_targets.push_back(rec->dropped ? 1.0 : 0.0);
    double log_us = 0.0;
    if (!rec->dropped) {
      const double us = std::max((rec->exit - rec->entry).to_us(), 1e-3);
      log_us = std::log(us);
      sum += log_us;
      sumsq += log_us * log_us;
      ++delivered;
    }
    ds.latency_log_us.push_back(log_us);
    macro.observe((rec->exit - rec->entry).to_seconds(), rec->dropped);
  }

  if (delivered > 0) {
    ds.mean_log_us = sum / static_cast<double>(delivered);
    const double var =
        sumsq / static_cast<double>(delivered) - ds.mean_log_us * ds.mean_log_us;
    ds.std_log_us = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
  return ds;
}

}  // namespace esim::approx
