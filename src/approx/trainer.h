// Micro-model training (paper §4.2): SGD with momentum on the joint loss
//   L = L_drop + alpha * L_latency
// where L_drop is binary cross entropy per packet, L_latency is MSE over
// normalized log-latency, and dropped packets back-propagate no latency
// error. The paper trains on >50,000 batches of size 64 with learning rate
// 1e-4 and momentum 0.9; all of these are configurable (the defaults are
// scaled down to laptop budgets — see DESIGN.md §1).
#pragma once

#include <cstdint>

#include "approx/dataset.h"
#include "approx/micro_model.h"

namespace esim::approx {

/// Training hyper-parameters.
struct TrainConfig {
  std::size_t batch_size = 64;   ///< sequences per batch (paper: 64)
  std::size_t seq_len = 32;      ///< BPTT truncation length
  std::size_t batches = 400;     ///< paper: >50,000
  double learning_rate = 1e-4;   ///< paper: 0.0001
  double momentum = 0.9;         ///< paper: 0.9
  double alpha = 0.5;            ///< latency-loss weight, 0 < alpha <= 1
  double clip_norm = 5.0;        ///< gradient clipping (0 = off)
  std::uint64_t seed = 7;        ///< batch sampling stream
};

/// What training achieved, for reports and tests.
struct TrainReport {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  double final_drop_loss = 0.0;
  double final_latency_loss = 0.0;
  /// Drop-decision accuracy over the training set at threshold 0.5.
  double drop_accuracy = 0.0;
  /// Mean |error| of the latency head in normalized log space.
  double latency_mae = 0.0;
  std::size_t dataset_size = 0;
};

/// Trains `model` in place on `dataset`. The model's latency
/// normalization is set from the dataset statistics before training.
/// Throws std::invalid_argument when the dataset is smaller than one
/// sequence.
TrainReport train_micro_model(MicroModel& model, const Dataset& dataset,
                              const TrainConfig& config);

}  // namespace esim::approx
