// Per-packet feature extraction for the micro models (paper §4.2).
//
// "For each packet, these include: the origin and destination servers; the
//  ToR, Cluster, and Core switches that the packet would pass through in
//  the cluster replaced by approximation; the time since the last packet
//  arrived at the model; a moving average of these times; and finally, the
//  current macro state of the cluster."
//
// All of these are computable from the packet header, the simulation time,
// and routing knowledge (deterministic ECMP replay via net::compute_path) —
// no simulation state is consulted. We additionally include the packet's
// wire size, which is header information and directly drives serialization
// latency (documented deviation, DESIGN.md §5).
#pragma once

#include <array>
#include <cstddef>

#include "net/clos.h"
#include "net/packet.h"
#include "sim/time.h"
#include "stats/summary.h"

namespace esim::approx {

/// Which boundary crossing a model handles. The paper trains one model per
/// direction because the flow mix differs (§4.2).
enum class Direction {
  Egress,   ///< host inside the cluster -> core layer
  Ingress,  ///< core layer -> host inside the cluster
};

/// The four congestion regimes of the macro model (paper §4.1).
enum class MacroState {
  MinimalCongestion = 0,
  IncreasingCongestion = 1,
  HighCongestion = 2,
  DecreasingCongestion = 3,
};

/// Number of macro states.
inline constexpr std::size_t kMacroStates = 4;

/// A fixed-size feature vector for one packet.
struct PacketFeatures {
  /// src, dst, tor, agg, core, gap, gap_ma, size, intra, macro one-hot(4).
  static constexpr std::size_t kDim = 13;
  std::array<double, kDim> v{};
};

/// Stateful extractor: tracks inter-arrival gaps at one model boundary.
/// One instance per (cluster, direction), used identically during training
/// (trace replay) and at simulation runtime, so features match by
/// construction.
class FeatureExtractor {
 public:
  /// `cluster` is the approximated cluster this boundary belongs to.
  FeatureExtractor(const net::ClosSpec& spec, std::uint32_t cluster,
                   Direction direction);

  /// Extracts features for a packet hitting the boundary at `now` with the
  /// given macro state, and updates the inter-arrival tracking.
  PacketFeatures extract(const net::Packet& pkt, sim::SimTime now,
                         MacroState macro);

  /// Forgets inter-arrival history (new simulation).
  void reset();

  Direction direction() const { return direction_; }

 private:
  net::ClosSpec spec_;
  std::uint32_t cluster_;
  Direction direction_;
  sim::SimTime last_arrival_;
  bool has_last_ = false;
  stats::Ewma gap_ewma_{0.1};
};

}  // namespace esim::approx
