// Training-set construction: replays boundary records through the same
// feature pipeline the runtime uses, producing aligned (features, drop,
// latency) rows in entry order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "approx/features.h"
#include "approx/macro_model.h"
#include "approx/trace.h"
#include "net/clos.h"

namespace esim::approx {

/// Supervised rows for one (cluster, direction) model.
struct Dataset {
  std::vector<PacketFeatures> features;
  std::vector<double> drop_targets;    ///< 0.0 / 1.0
  std::vector<double> latency_log_us;  ///< ln(latency in us); 0 for drops
  double mean_log_us = 0.0;            ///< over delivered packets
  double std_log_us = 1.0;

  std::size_t size() const { return features.size(); }
  /// Fraction of rows that are drops.
  double drop_rate() const;
};

/// Builds the dataset for `direction` from completed boundary records.
/// The records are replayed in entry order through a FeatureExtractor and
/// a MacroClassifier configured exactly like the runtime's, so training
/// features match inference features by construction.
Dataset build_dataset(const net::ClosSpec& spec, std::uint32_t cluster,
                      Direction direction,
                      const std::vector<BoundaryRecord>& records,
                      const MacroClassifier::Config& macro_config);

}  // namespace esim::approx
