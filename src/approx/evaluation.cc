#include "approx/evaluation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace esim::approx {
namespace {

void recompute_normalization(Dataset& ds) {
  double sum = 0, sumsq = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.drop_targets[i] > 0.5) continue;
    sum += ds.latency_log_us[i];
    sumsq += ds.latency_log_us[i] * ds.latency_log_us[i];
    ++n;
  }
  if (n == 0) return;
  ds.mean_log_us = sum / static_cast<double>(n);
  const double var =
      sumsq / static_cast<double>(n) - ds.mean_log_us * ds.mean_log_us;
  ds.std_log_us = var > 1e-12 ? std::sqrt(var) : 1.0;
}

}  // namespace

std::pair<Dataset, Dataset> split_dataset(const Dataset& dataset,
                                          double train_fraction) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: fraction outside (0,1)");
  }
  const std::size_t cut = static_cast<std::size_t>(
      static_cast<double>(dataset.size()) * train_fraction);
  Dataset train, test;
  auto copy_range = [&](Dataset& out, std::size_t lo, std::size_t hi) {
    out.features.assign(dataset.features.begin() + lo,
                        dataset.features.begin() + hi);
    out.drop_targets.assign(dataset.drop_targets.begin() + lo,
                            dataset.drop_targets.begin() + hi);
    out.latency_log_us.assign(dataset.latency_log_us.begin() + lo,
                              dataset.latency_log_us.begin() + hi);
    recompute_normalization(out);
  };
  copy_range(train, 0, cut);
  copy_range(test, cut, dataset.size());
  return {std::move(train), std::move(test)};
}

EvalMetrics evaluate_micro_model(MicroModel& model, const Dataset& test) {
  EvalMetrics m;
  m.rows = test.size();
  if (test.size() == 0) return m;

  model.reset_state();
  std::vector<double> drop_scores(test.size());
  std::vector<double> lat_errors;
  std::size_t tp = 0, fp = 0, fn = 0, correct = 0, drops = 0;
  double bias = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto pred = model.predict(test.features[i]);
    drop_scores[i] = pred.drop_probability;
    const bool was_drop = test.drop_targets[i] > 0.5;
    const bool said_drop = pred.drop_probability > 0.5;
    drops += was_drop ? 1 : 0;
    if (said_drop == was_drop) ++correct;
    if (said_drop && was_drop) ++tp;
    if (said_drop && !was_drop) ++fp;
    if (!said_drop && was_drop) ++fn;
    if (!was_drop) {
      const double target =
          (test.latency_log_us[i] - test.mean_log_us) / test.std_log_us;
      const double err =
          model.normalize_latency(pred.latency_seconds) - target;
      lat_errors.push_back(std::abs(err));
      bias += err;
    }
  }
  model.reset_state();

  m.drop_accuracy =
      static_cast<double>(correct) / static_cast<double>(test.size());
  m.base_drop_rate =
      static_cast<double>(drops) / static_cast<double>(test.size());
  m.drop_precision =
      tp + fp == 0 ? 0.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fp);
  m.drop_recall =
      tp + fn == 0 ? 0.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fn);

  // AUC via the Mann-Whitney U statistic: probability a random dropped
  // packet scores above a random delivered one (ties count half).
  const std::size_t pos = drops, neg = test.size() - drops;
  if (pos > 0 && neg > 0) {
    std::vector<std::size_t> order(test.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return drop_scores[a] < drop_scores[b];
    });
    // Average ranks with tie handling.
    std::vector<double> rank(test.size());
    std::size_t i = 0;
    while (i < order.size()) {
      std::size_t j = i;
      while (j + 1 < order.size() &&
             drop_scores[order[j + 1]] == drop_scores[order[i]]) {
        ++j;
      }
      const double avg_rank = (static_cast<double>(i) +
                               static_cast<double>(j)) / 2.0 + 1.0;
      for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
      i = j + 1;
    }
    double rank_sum_pos = 0;
    for (std::size_t k = 0; k < test.size(); ++k) {
      if (test.drop_targets[k] > 0.5) rank_sum_pos += rank[k];
    }
    const double u = rank_sum_pos -
                     static_cast<double>(pos) *
                         (static_cast<double>(pos) + 1.0) / 2.0;
    m.drop_auc = u / (static_cast<double>(pos) * static_cast<double>(neg));
  }

  if (!lat_errors.empty()) {
    double sum = 0;
    for (double e : lat_errors) sum += e;
    m.latency_mae = sum / static_cast<double>(lat_errors.size());
    m.latency_bias = bias / static_cast<double>(lat_errors.size());
    std::sort(lat_errors.begin(), lat_errors.end());
    m.latency_p90_abs_error =
        lat_errors[static_cast<std::size_t>(0.9 * (lat_errors.size() - 1))];
  }
  return m;
}

}  // namespace esim::approx
