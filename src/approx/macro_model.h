// The macro congestion-state classifier (paper §4.1).
//
// "Currently, our simulation platform identifies macro states using a
//  simple and fast auto-regressive model. Based on previously observed
//  latency and drop rates, if latency is relatively low, it classifies the
//  network as (1). If drops are relatively high, it classifies the network
//  as (4). (2) and (3) are distinguished based on prior state by observing
//  whether latency and drops are rising or falling."
//
// Implemented faithfully: packet outcomes (latency, drop) are folded into
// per-window aggregates; at each window boundary the state machine above
// runs on EWMA-smoothed latency and drop rate. "Relatively low/high" are
// thresholds relative to a configured no-load baseline latency and an
// absolute per-window drop-rate bound. Rising/falling is the comparison of
// the current window's smoothed latency+drop signal against the previous
// window's.
#pragma once

#include <cstdint>

#include "approx/features.h"
#include "sim/time.h"
#include "stats/summary.h"

namespace esim::approx {

/// Windowed auto-regressive classifier over observed latency/drop rates.
class MacroClassifier {
 public:
  struct Config {
    /// Aggregation window (the paper observes second- and
    /// microsecond-scale structure; the window sits between the two).
    sim::SimTime window = sim::SimTime::from_us(100);
    /// Latency at/below which (x factor) the fabric counts as uncongested:
    /// "relatively low" = ewma_latency < low_latency_factor * baseline.
    double baseline_latency_s = 6e-6;
    double low_latency_factor = 2.0;
    /// "Relatively high" drop rate per window.
    double high_drop_rate = 0.05;
    /// EWMA smoothing across windows.
    double smoothing_alpha = 0.3;
  };

  MacroClassifier() : MacroClassifier(Config{}) {}
  explicit MacroClassifier(const Config& config);

  /// Folds one packet outcome into the current window. Dropped packets
  /// contribute no latency.
  void observe(double latency_seconds, bool dropped);

  /// Closes the current window: updates the EWMAs and re-classifies.
  /// Windows with no observations decay toward MinimalCongestion.
  void advance_window();

  /// Current regime.
  MacroState state() const { return state_; }

  /// Smoothed per-window mean latency (seconds).
  double latency_ewma() const { return latency_ewma_.value(); }

  /// Smoothed per-window drop rate.
  double drop_ewma() const { return drop_ewma_.value(); }

  /// Configured window length (callers schedule advance_window with it).
  sim::SimTime window() const { return config_.window; }

  /// Restores the initial state.
  void reset();

 private:
  Config config_;
  MacroState state_ = MacroState::MinimalCongestion;
  stats::Ewma latency_ewma_;
  stats::Ewma drop_ewma_;
  double prev_signal_ = 0.0;
  // Current window accumulators.
  double window_latency_sum_ = 0.0;
  std::uint64_t window_delivered_ = 0;
  std::uint64_t window_dropped_ = 0;
};

}  // namespace esim::approx
