// Parallel execution of the approximate simulation — the third source of
// speedup in the paper's §6.2: "the approximate version was run in
// parallel. Because the interdependencies between cluster fabric switches
// are removed, parallel execution provides better speedups here than it
// does for full simulation."
//
// Partitioning: the full-fidelity cluster and all core switches form
// partition 0; each approximated cluster (its ApproxCluster model plus
// its hosts) is a self-contained island placed round-robin on the
// remaining partitions. The only cross-partition interactions are
// core -> ApproxCluster links (latency >= lookahead by construction) and
// ApproxCluster -> core model deliveries (latency >= min_latency_s, which
// must be >= the engine lookahead — checked).
#pragma once

#include "approx/micro_model.h"
#include "core/hybrid_builder.h"
#include "sim/parallel.h"

namespace esim::core {

/// Handles to a partitioned hybrid build. Same layout as HybridNetwork,
/// plus placement information.
struct PartitionedHybridNetwork {
  HybridNetwork net;
  /// Partition owning each host (full cluster + cores are partition 0).
  std::vector<std::uint32_t> partition_of_host;
  /// Partition owning each ApproxCluster (index = cluster id; 0 for the
  /// full cluster, which has none).
  std::vector<std::uint32_t> partition_of_cluster;
};

/// Builds the hybrid topology across the engine's partitions. Requires
/// engine lookahead <= both the fabric link propagation and the
/// ApproxCluster min latency; throws otherwise.
PartitionedHybridNetwork build_hybrid_network_partitioned(
    sim::ParallelEngine& engine, const HybridConfig& config,
    const approx::MicroModel& ingress_model,
    const approx::MicroModel& egress_model);

}  // namespace esim::core
