#include "core/experiment.h"

#include <chrono>
#include <stdexcept>

#include "approx/dataset.h"
#include "approx/evaluation.h"
#include "telemetry/trace.h"
#include "workload/generator.h"

namespace esim::core {

namespace {

void accumulate(stats::PacketCounter& into, const net::Link* link) {
  if (link == nullptr) return;
  into.sent += link->counter().sent;
  into.delivered += link->counter().delivered;
  into.dropped += link->counter().dropped;
}

RegionCounters collect_regions(const BuiltNetwork& network) {
  RegionCounters r;
  for (const auto* l : network.host_uplinks) accumulate(r.host_uplinks, l);
  for (const auto* l : network.host_downlinks) {
    accumulate(r.host_downlinks, l);
  }
  for (const auto& [cluster, l] : network.intra_fabric_links) {
    accumulate(r.intra_fabric, l);
  }
  for (const auto& att : network.core_links) {
    accumulate(r.core, att.up);
    accumulate(r.core, att.down);
  }
  return r;
}

RegionCounters collect_regions(const HybridNetwork& network) {
  RegionCounters r;
  for (const auto* l : network.host_uplinks) accumulate(r.host_uplinks, l);
  for (const auto* l : network.host_downlinks) {
    accumulate(r.host_downlinks, l);
  }
  for (const auto& att : network.core_links) {
    accumulate(r.core, att.up);
    accumulate(r.core, att.down);
  }
  return r;
}

std::unique_ptr<workload::FlowSizeDistribution> make_sizes(
    WorkloadScale scale) {
  if (scale == WorkloadScale::FullWebSearch) {
    return workload::web_search_distribution();
  }
  return workload::mini_web_distribution();
}

net::ClosSpec resolve_train_spec(const ExperimentConfig& config) {
  net::ClosSpec spec = config.train_spec;
  if (spec.clusters == 0) {
    spec = config.net.spec;
    spec.clusters = 2;
    if (spec.cores == 0) spec.cores = 2;
  }
  spec.validate();
  if (spec.clusters < 2) {
    throw std::invalid_argument(
        "train_cluster_models: training topology needs >= 2 clusters");
  }
  return spec;
}

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

approx::BoundaryTaps make_boundary_taps(const BuiltNetwork& network,
                                        std::uint32_t cluster) {
  approx::BoundaryTaps taps;
  const auto& spec = network.spec;
  for (net::HostId h = 0; h < spec.total_hosts(); ++h) {
    if (spec.cluster_of_host(h) != cluster) continue;
    taps.host_uplinks.push_back(network.host_uplinks[h]);
    taps.host_downlinks.push_back(network.host_downlinks[h]);
    taps.drop_links.push_back(network.host_downlinks[h]);
  }
  for (const auto& att : network.core_links) {
    if (att.cluster != cluster) continue;
    taps.agg_core_up.push_back(att.up);
    taps.core_agg_down.push_back(att.down);
    taps.drop_links.push_back(att.up);
  }
  for (const auto& [c, link] : network.intra_fabric_links) {
    if (c == cluster) taps.drop_links.push_back(link);
  }
  return taps;
}

BoundaryTrace record_boundary_trace(const ExperimentConfig& config) {
  telemetry::Span phase{"experiment.record_trace"};
  const net::ClosSpec spec = resolve_train_spec(config);

  sim::Simulator sim{config.seed};
  NetworkConfig net_cfg = config.net;
  net_cfg.spec = spec;
  auto network = build_full_network(sim, net_cfg);

  constexpr std::uint32_t kModeledCluster = 1;
  const auto taps = make_boundary_taps(network, kModeledCluster);
  approx::TraceRecorder recorder{spec, kModeledCluster, taps};

  auto sizes = make_sizes(config.workload);
  workload::ClusterMixTraffic matrix{spec, config.intra_fraction};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = config.load;
  gcfg.host_bandwidth_bps = config.net.host_uplink.bandwidth_bps;
  gcfg.stop_at = config.train_duration;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "train.gen", network.hosts, sizes.get(), &matrix, gcfg);
  gen->start();

  // Let in-flight traffic drain a little past the arrival cutoff so late
  // boundary crossings complete.
  sim.run_until(config.train_duration + sim::SimTime::from_ms(20));
  recorder.finalize();

  BoundaryTrace trace;
  trace.spec = spec;
  trace.cluster = kModeledCluster;
  trace.records = recorder.records();
  return trace;
}

TrainedModels train_from_trace(const ExperimentConfig& config,
                               const BoundaryTrace& trace) {
  telemetry::Span phase{"experiment.train"};
  TrainedModels out;
  out.boundary_records = trace.records.size();

  approx::Dataset ingress_ds =
      approx::build_dataset(trace.spec, trace.cluster,
                            approx::Direction::Ingress, trace.records,
                            config.macro);
  approx::Dataset egress_ds =
      approx::build_dataset(trace.spec, trace.cluster,
                            approx::Direction::Egress, trace.records,
                            config.macro);

  // Optional held-out split (chronological tail) for post-training eval.
  const bool eval = config.eval_holdout > 0.0;
  if (config.eval_holdout < 0.0 || config.eval_holdout >= 1.0) {
    throw std::invalid_argument(
        "train_from_trace: eval_holdout must be in [0, 1)");
  }
  approx::Dataset ingress_test, egress_test;
  if (eval) {
    const double train_fraction = 1.0 - config.eval_holdout;
    std::tie(ingress_ds, ingress_test) =
        approx::split_dataset(ingress_ds, train_fraction);
    std::tie(egress_ds, egress_test) =
        approx::split_dataset(egress_ds, train_fraction);
  }

  approx::MicroModel::Config mcfg = config.model;
  out.ingress = std::make_unique<approx::MicroModel>(mcfg);
  mcfg.seed += 1;
  out.egress = std::make_unique<approx::MicroModel>(mcfg);

  out.ingress_report =
      approx::train_micro_model(*out.ingress, ingress_ds, config.train);
  out.egress_report =
      approx::train_micro_model(*out.egress, egress_ds, config.train);
  if (eval) {
    out.ingress_eval =
        approx::evaluate_micro_model(*out.ingress, ingress_test);
    out.egress_eval = approx::evaluate_micro_model(*out.egress, egress_test);
    out.has_eval = true;
  }
  return out;
}

TrainedModels train_cluster_models(const ExperimentConfig& config) {
  return train_from_trace(config, record_boundary_trace(config));
}

RunResult run_full_simulation(const ExperimentConfig& config,
                              const net::ClosSpec& spec) {
  telemetry::Span phase{"experiment.run_full"};
  telemetry::Registry registry;  // outlives the sim that publishes into it
  sim::Simulator sim{config.seed + 1};
  if (config.telemetry) sim.set_telemetry(&registry);
  NetworkConfig net_cfg = config.net;
  net_cfg.spec = spec;
  auto network = build_full_network(sim, net_cfg);

  RunResult result;
  stats::LatencyCollector rtt;
  for (net::HostId h = 0; h < spec.total_hosts(); ++h) {
    if (spec.cluster_of_host(h) == 0) {
      network.hosts[h]->set_rtt_collector(&rtt);
    }
  }

  auto sizes = make_sizes(config.workload);
  workload::ClusterMixTraffic matrix{spec, config.intra_fraction};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = config.load;
  gcfg.host_bandwidth_bps = config.net.host_uplink.bandwidth_bps;
  gcfg.stop_at = config.duration;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", network.hosts, sizes.get(), &matrix, gcfg);
  gen->start();

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(config.duration);
  result.wall_seconds = wall_seconds_since(start);
  result.events_executed = sim.events_executed();
  result.events_scheduled = sim.events_scheduled();
  result.rtt_cdf = rtt.cdf();
  result.flows_launched = gen->launched();
  result.flows_completed = gen->flows().completed_count();
  if (result.flows_completed > 0) {
    double sum = 0;
    for (const auto& r : gen->flows().records()) {
      if (!r.completed) continue;
      sum += r.fct().to_seconds();
      result.fct_cdf.add(r.fct().to_seconds());
    }
    result.mean_fct_seconds =
        sum / static_cast<double>(result.flows_completed);
  }
  result.regions = collect_regions(network);
  if (config.telemetry) result.metrics = registry.snapshot();
  return result;
}

RunResult run_hybrid_simulation(const ExperimentConfig& config,
                                const net::ClosSpec& spec,
                                const TrainedModels& models) {
  telemetry::Span phase{"experiment.run_hybrid"};
  telemetry::Registry registry;  // outlives the sim that publishes into it
  sim::Simulator sim{config.seed + 1};
  if (config.telemetry) sim.set_telemetry(&registry);
  HybridConfig hcfg;
  hcfg.net = config.net;
  hcfg.net.spec = spec;
  hcfg.full_cluster = 0;
  hcfg.approx = config.approx;
  hcfg.approx.macro = config.macro;
  std::unique_ptr<telemetry::FidelitySink> fidelity;
  if (config.fidelity.enabled) {
    fidelity = std::make_unique<telemetry::FidelitySink>(config.fidelity);
    hcfg.approx.fidelity = fidelity.get();
  }
  auto network =
      build_hybrid_network(sim, hcfg, *models.ingress, *models.egress);

  RunResult result;
  stats::LatencyCollector rtt;
  for (net::HostId h = 0; h < spec.total_hosts(); ++h) {
    if (spec.cluster_of_host(h) == 0) {
      network.hosts[h]->set_rtt_collector(&rtt);
    }
  }

  auto sizes = make_sizes(config.workload);
  workload::ClusterMixTraffic matrix{spec, config.intra_fraction};
  workload::TrafficGenerator::Config gcfg;
  gcfg.load = config.load;
  gcfg.host_bandwidth_bps = config.net.host_uplink.bandwidth_bps;
  gcfg.stop_at = config.duration;
  auto* gen = sim.add_component<workload::TrafficGenerator>(
      "gen", network.hosts, sizes.get(), &matrix, gcfg);
  // Elide traffic entirely between approximated clusters (paper §6.2):
  // it cannot affect measurements taken in the full-fidelity cluster.
  gen->admission_filter = [&spec](net::HostId src, net::HostId dst) {
    return spec.cluster_of_host(src) == 0 || spec.cluster_of_host(dst) == 0;
  };
  gen->start();

  const auto start = std::chrono::steady_clock::now();
  sim.run_until(config.duration);
  result.wall_seconds = wall_seconds_since(start);
  result.events_executed = sim.events_executed();
  result.events_scheduled = sim.events_scheduled();
  result.rtt_cdf = rtt.cdf();
  result.flows_launched = gen->launched();
  result.flows_completed = gen->flows().completed_count();
  if (result.flows_completed > 0) {
    double sum = 0;
    for (const auto& r : gen->flows().records()) {
      if (!r.completed) continue;
      sum += r.fct().to_seconds();
      result.fct_cdf.add(r.fct().to_seconds());
    }
    result.mean_fct_seconds =
        sum / static_cast<double>(result.flows_completed);
  }
  for (auto* cluster : network.clusters) {
    if (cluster == nullptr) continue;
    // The stats snapshot is a flush barrier: a duration cutoff can land
    // inside a batch window, leaving admitted packets whose flush timer
    // is past the cutoff. Their outcomes are fully determined at
    // admission (features, drop draw), and batch_window < min_latency_s
    // guarantees their deliveries would not have executed before the
    // cutoff either way — so flushing here makes the counters match the
    // unbatched run exactly instead of undercounting the final window.
    cluster->flush_batch();
    cluster->finalize_fidelity();
    result.approx_stats.egress_packets += cluster->stats().egress_packets;
    result.approx_stats.ingress_packets += cluster->stats().ingress_packets;
    result.approx_stats.intra_packets += cluster->stats().intra_packets;
    result.approx_stats.predicted_drops += cluster->stats().predicted_drops;
    result.approx_stats.conflicts_resolved +=
        cluster->stats().conflicts_resolved;
    result.approx_stats.backlog_drops += cluster->stats().backlog_drops;
    for (std::size_t t = 0; t < kClusterTierCount; ++t) {
      result.approx_stats.tier_packets[t] += cluster->stats().tier_packets[t];
    }
    result.approx_stats.tier_transitions += cluster->stats().tier_transitions;
  }
  result.regions = collect_regions(network);
  if (config.telemetry) result.metrics = registry.snapshot();
  if (fidelity) result.fidelity = fidelity->report_section();
  return result;
}

}  // namespace esim::core
