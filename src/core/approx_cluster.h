// ApproxCluster: the drop-in replacement for a cluster's switching fabric
// (the paper's black box of Figure 3).
//
// It keeps exactly the boundary contract of the real fabric:
//   * hosts inside the cluster transmit into it through their normal
//     uplink Links (they run unmodified TCP stacks — paper §5);
//   * core switches transmit into it through normal Links where the real
//     ToR/Agg layers used to be;
//   * for every packet it consults the macro state classifier and the
//     direction's micro model, then either drops the packet or delivers
//     it to the far side (the path-replayed core switch, or the
//     destination host) after the predicted latency, serialized per
//     output port to resolve impossible schedules (paper §4.2).
//
// Everything between those edges — ToR/Agg queues, links, forwarding —
// schedules no events at all, which is where the speedup of Figure 5
// comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "approx/features.h"
#include "approx/macro_model.h"
#include "approx/micro_model.h"
#include "core/cluster_backend.h"
#include "core/conflict.h"
#include "net/clos.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/component.h"
#include "tcp/host.h"

namespace esim::telemetry {
class ClusterFidelityProbe;
class Counter;
class FidelitySink;
class Histogram;
}

namespace esim::core {

class GranularityController;
struct TierTransition;

/// One approximated cluster fabric.
class ApproxCluster : public sim::Component, public net::PacketHandler {
 public:
  struct Config {
    net::ClosSpec spec;
    std::uint32_t cluster = 1;
    /// Draw drops from Bernoulli(p) (true, default) or threshold p > 0.5.
    bool sample_drops = true;
    /// Floor on predicted latency (a fabric traversal is never faster
    /// than its unloaded store-and-forward minimum).
    double min_latency_s = 2e-6;
    /// Line rate of the emulated output ports (for conflict resolution).
    double port_bandwidth_bps = 10e9;
    /// Maximum queueing delay an emulated port may impose before the
    /// packet is dropped instead (the virtual analogue of the real
    /// port's drop-tail queue; default = 150 KB at 10 Gbps).
    sim::SimTime max_port_backlog = sim::SimTime::from_us(120);
    /// Route predictions through the naive Tensor reference path instead
    /// of the fused InferenceSession. A/B hook for bench_inference and
    /// the bit-identity contract (the two paths produce identical
    /// predictions); production keeps the session.
    bool reference_inference = false;
    /// Cross-packet batched inference (DESIGN.md §8): when batch_max > 1
    /// and batch_window > 0, boundary packets are queued and predicted
    /// in one MicroModel::predict_batch call per direction. The queue
    /// flushes on the window edge, when batch_max packets are pending,
    /// or at the macro-window barrier — a packet is never held past
    /// batch_window, and batch_window may not exceed min_latency_s (so a
    /// queued packet's delivery, at arrival + >= min_latency_s, can
    /// always still be scheduled at flush time; the hybrid PDES builder
    /// additionally bounds it by min_latency_s - lookahead, see
    /// hybrid_pdes.cc). Outcomes are bit-identical to the unbatched
    /// path: features are extracted and drop draws consumed at admission
    /// in arrival order, and deliveries are reserved relative to each
    /// packet's arrival time.
    std::size_t batch_max = 1;
    sim::SimTime batch_window{};
    /// Macro classifier parameters.
    approx::MacroClassifier::Config macro;
    /// Fidelity-tier policy (DESIGN.md §12). Fixed/Ml (the default) is
    /// the legacy behaviour; Fixed/{Packet,Fluid} pins the cluster to
    /// another tier; Adaptive lets a GranularityController demote and
    /// promote the tier at macro-window boundaries from the fidelity
    /// observatory's congestion classification — adaptive mode therefore
    /// requires `fidelity` to be set and enabled.
    ClusterTierPolicy tier;
    /// Fidelity observatory sink (DESIGN.md §11), shared by every cluster
    /// of a run; not owned. Non-null with an enabled config attaches a
    /// ClusterFidelityProbe: shadow-sampled reference comparisons plus
    /// windowed congestion telemetry. Pure observation — a run is
    /// bit-identical with this set or null.
    telemetry::FidelitySink* fidelity = nullptr;
  };

  /// Outcome counters, exposed for experiments and tests.
  struct Stats {
    std::uint64_t egress_packets = 0;
    std::uint64_t ingress_packets = 0;
    std::uint64_t intra_packets = 0;
    std::uint64_t predicted_drops = 0;
    std::uint64_t conflicts_resolved = 0;
    /// Drops from emulated-port backlog overflow (virtual drop-tail).
    std::uint64_t backlog_drops = 0;
    /// Boundary packets decided by each tier (indexed by ClusterTier).
    std::uint64_t tier_packets[kClusterTierCount] = {};
    /// Executed tier transitions (adaptive mode).
    std::uint64_t tier_transitions = 0;
  };

  /// Copies the trained models (each cluster needs private hidden state).
  ApproxCluster(sim::Simulator& sim, std::string name, const Config& config,
                const approx::MicroModel& ingress_model,
                const approx::MicroModel& egress_model);
  ~ApproxCluster() override;  // out of line: probe_ is incomplete here

  /// Wires the core switch that egress packets choosing core `index`
  /// should be injected into. All cores must be attached before running.
  void attach_core(std::uint32_t index, net::Switch* core_switch);

  /// Routes egress deliveries to core `index` through a cross-partition
  /// scheduler (the core lives in another PDES partition). The engine's
  /// lookahead must be <= the configured min_latency_s, which lower-
  /// bounds every egress delivery delay.
  void set_core_remote(std::uint32_t index, net::RemoteScheduler remote);

  /// Wires a host of this cluster (ingress deliveries go to it).
  void attach_host(net::HostId id, tcp::Host* host);

  /// Starts the periodic macro-state window timer.
  void start();

  /// Packets arrive here from host uplinks and from core switch links.
  void handle_packet(net::Packet pkt) override;

  /// Current macro state.
  approx::MacroState macro_state() const { return macro_.state(); }

  /// Predicts, decides, and delivers every queued packet (batched mode).
  /// Called on the window-edge timer, on queue-full, before the macro
  /// window advances, and as the barrier at stats snapshots (a duration
  /// cutoff can land mid-window; the queued outcomes are already fully
  /// determined at admission). Harmless when nothing is pending.
  void flush_batch();

  /// Number of packets currently coalesced in the prediction queue.
  std::size_t pending_batch() const { return pending_.size(); }

  /// Closes the probe's partial fidelity window at the current virtual
  /// time (end-of-run flush; no-op when fidelity is off or the window is
  /// empty). Call after the final flush_batch().
  void finalize_fidelity();

  /// The attached fidelity probe; null when the observatory is off.
  telemetry::ClusterFidelityProbe* fidelity_probe() const {
    return probe_.get();
  }

  /// The fidelity tier currently deciding boundary packets.
  ClusterTier tier() const { return tier_; }

  /// The cluster index this component replaces.
  std::uint32_t cluster_id() const { return config_.cluster; }

  /// Executed tier transitions in virtual-time order (empty in fixed
  /// mode). Fold into StateDigest::on_tier_transition after the run.
  const std::vector<TierTransition>& tier_trace() const;

  const Stats& stats() const { return stats_; }

 private:
  /// A packet admitted to the prediction queue. Its features were
  /// extracted and its drop draw consumed at admission, so the deferred
  /// prediction reproduces the unbatched outcome exactly.
  struct Pending {
    net::Packet pkt;
    sim::SimTime arrival;
    double drop_draw = 0.0;  ///< rng().uniform(), sample_drops only
    bool egress = false;
    std::uint32_t dst_cluster = 0;
  };

  bool batching() const {
    return config_.batch_max > 1 && config_.batch_window > sim::SimTime{};
  }
  void enqueue_packet(net::Packet pkt);
  void process_packet(net::Packet pkt);
  void deliver_egress(net::Packet pkt, sim::SimTime desired);
  void deliver_ingress(net::Packet pkt, sim::SimTime desired);
  void apply_outcome(Pending&& p,
                     const approx::MicroModel::Prediction& prediction,
                     std::span<const double> features);
  /// Common tail of every tier: clamp the latency floor, feed the macro
  /// model and the probe, count under `tier`, and deliver (or drop).
  void apply_decision(Pending&& p, ClusterTier tier, TierDecision decision,
                      std::span<const double> features);
  /// The tier deciding a packet admitted at `arrival`. Normally tier_;
  /// a packet arriving at EXACTLY the instant of the latest transition
  /// is decided by the pre-transition tier regardless of whether it
  /// popped before or after the macro timer — under PDES a remote-
  /// injected arrival can tie with the local timer event with engine-
  /// dependent order, and this rule makes the outcome order-blind.
  ClusterTier tier_for(sim::SimTime arrival) const {
    return arrival.ns() == transition_at_ns_ ? pre_transition_tier_ : tier_;
  }
  ClusterBackend& backend_for(ClusterTier tier);
  ClusterBackend& active_backend() { return backend_for(tier_); }
  bool decide_drop(double probability, double draw) const;
  /// Shadow comparison for one sampled packet: reference inference on
  /// the path production does NOT use, plus the queue-model ground
  /// truth peeked (read-only) from the destination port. Runs before
  /// the production delivery reserves the port and mutates nothing the
  /// simulation reads.
  void shadow_evaluate(const Pending& p, std::span<const double> features,
                       double model_latency, bool model_drop);

  Config config_;
  approx::MicroModel ingress_model_;
  approx::MicroModel egress_model_;
  approx::FeatureExtractor ingress_features_;
  approx::FeatureExtractor egress_features_;
  approx::MacroClassifier macro_;
  std::vector<net::Switch*> cores_;
  std::vector<net::RemoteScheduler> core_remotes_;  // empty fn = local
  std::vector<tcp::Host*> hosts_;              // by offset within cluster
  std::vector<DeliverySerializer> core_ports_;  // per core
  std::vector<DeliverySerializer> host_ports_;  // per cluster host offset
  // Batched-mode prediction queue (arrival order) plus per-direction
  // feature rows and prediction scratch, preallocated for batch_max.
  std::vector<Pending> pending_;
  std::vector<double> egress_feat_, ingress_feat_;
  std::vector<approx::MicroModel::Prediction> egress_preds_, ingress_preds_;
  std::uint64_t batch_epoch_ = 0;  // guards the window-edge timer
  Stats stats_;
  // Fidelity tiers (DESIGN.md §12). tier_ is the runtime state; the
  // Ml/Packet backends always exist, the fluid backend only when the
  // policy can reach it, the controller only in adaptive mode.
  ClusterTier tier_ = ClusterTier::Ml;
  ClusterTier pre_transition_tier_ = ClusterTier::Ml;
  std::int64_t transition_at_ns_ = -1;  // latest executed transition
  std::unique_ptr<MlTierBackend> ml_backend_;
  std::unique_ptr<PacketTierBackend> packet_backend_;
  std::unique_ptr<FluidClusterBackend> fluid_backend_;
  std::unique_ptr<GranularityController> controller_;
  // Fidelity observatory probe; null unless Config::fidelity is enabled.
  std::unique_ptr<telemetry::ClusterFidelityProbe> probe_;
  // Aggregate approx.* series; outcome totals are published by a
  // registry flusher (pull), only the per-inference series are pushed.
  // Null when telemetry is off.
  telemetry::Counter* m_inferences_ = nullptr;
  telemetry::Counter* m_macro_transitions_ = nullptr;
  telemetry::Histogram* m_inference_ns_ = nullptr;
};

}  // namespace esim::core
