// Full-fidelity network assembly: instantiates hosts, switches, and links
// for a ClosSpec inside one Simulator, wiring FIBs so that forwarding
// matches net::compute_path's ECMP replay exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/clos.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "tcp/host.h"

namespace esim::core {

/// Link/queue/TCP parameters shared by all builders.
struct NetworkConfig {
  net::ClosSpec spec;

  /// Host NIC uplink (host -> ToR): big TX buffer so a burst of one
  /// congestion window never self-drops at the sender.
  net::Link::Config host_uplink{
      .bandwidth_bps = 10e9,
      .propagation = sim::SimTime::from_us(1),
      .queue_capacity_bytes = 4'000'000,
  };

  /// Switch output ports (ToR -> host, ToR <-> Agg, Agg <-> Core): shallow
  /// data-center buffers (~100 full packets), where congestion drops
  /// happen.
  net::Link::Config fabric_link{
      .bandwidth_bps = 10e9,
      .propagation = sim::SimTime::from_us(1),
      .queue_capacity_bytes = 150'000,
  };

  /// Agg <-> Core links only; unset means "same as fabric_link". Setting a
  /// longer propagation here models the longer inter-cluster runs of a
  /// real fabric — and, under PDES with topology-aware placement, widens
  /// the per-pair lookahead of exactly the links a cut-minimizing
  /// partitioner leaves crossing.
  std::optional<net::Link::Config> core_link;

  /// The link config used for agg <-> core wiring.
  const net::Link::Config& core_link_config() const {
    return core_link.has_value() ? *core_link : fabric_link;
  }

  /// Forwarding pipeline latency per switch.
  sim::SimTime switch_processing;

  /// TCP parameters for every host.
  tcp::TcpConnection::Config tcp;

  /// When false, every switch hashes ECMP on (src_host, dst_host) only —
  /// ports zeroed — so all flows between a host pair share one path. See
  /// Switch::set_port_sensitive_ecmp; phase memoization (src/memo) uses
  /// this for dense cache hits on multi-spine fabrics.
  bool ecmp_port_sensitive = true;
};

/// One agg<->core link pair (both directions), with its coordinates.
struct CoreAttachment {
  std::uint32_t cluster = 0;
  std::uint32_t agg = 0;   // index within the cluster
  std::uint32_t core = 0;  // core switch index
  net::Link* up = nullptr;    // agg -> core
  net::Link* down = nullptr;  // core -> agg
};

/// Handles to everything a full-fidelity build created. All raw pointers
/// are owned by the Simulator.
struct BuiltNetwork {
  net::ClosSpec spec;
  std::vector<tcp::Host*> hosts;            // dense by HostId
  std::vector<net::Switch*> switches;       // dense by SwitchId
  std::vector<net::Link*> host_uplinks;     // [HostId] host -> ToR
  std::vector<net::Link*> host_downlinks;   // [HostId] ToR -> host
  std::vector<CoreAttachment> core_links;   // empty for leaf-spine
  /// ToR<->Agg links, tagged with their cluster (both directions).
  std::vector<std::pair<std::uint32_t, net::Link*>> intra_fabric_links;

  /// Convenience: the agg->core uplinks of one cluster.
  std::vector<const CoreAttachment*> attachments_of(
      std::uint32_t cluster) const;
};

/// Builds the complete topology in `sim`. The spec must validate.
BuiltNetwork build_full_network(sim::Simulator& sim,
                                const NetworkConfig& config);

}  // namespace esim::core
