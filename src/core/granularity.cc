#include "core/granularity.h"

#include <stdexcept>
#include <string>

#include "telemetry/metrics.h"

namespace esim::core {

GranularityController::GranularityController(
    const ClusterTierPolicy& policy, std::uint32_t cluster,
    const telemetry::ClusterFidelityProbe* probe,
    telemetry::Registry* registry)
    : policy_{policy}, probe_{probe}, tier_{policy.fixed_tier} {
  if (probe_ == nullptr) {
    throw std::invalid_argument(
        "GranularityController: adaptive mode needs a fidelity probe "
        "(enable FidelityConfig on the run)");
  }
  if (registry != nullptr) {
    const std::string prefix = "granularity.c" + std::to_string(cluster);
    g_tier_ = registry->gauge(prefix + ".tier");
    g_tier_->set(static_cast<std::int64_t>(tier_));
    m_transitions_ = registry->counter(prefix + ".transitions");
    m_transitions_total_ = registry->counter("granularity.transitions");
  }
}

std::optional<ClusterTier> GranularityController::on_macro_window(
    std::int64_t now_ns) {
  ++dwell_windows_;
  const ClusterTier target = target_for(probe_->state());
  if (target == tier_ || dwell_windows_ < policy_.min_dwell_windows) {
    return std::nullopt;
  }
  trace_.push_back(TierTransition{now_ns, tier_, target});
  tier_ = target;
  dwell_windows_ = 0;
  if (g_tier_ != nullptr) {
    g_tier_->set(static_cast<std::int64_t>(tier_));
    m_transitions_->inc();
    m_transitions_total_->inc();
  }
  return tier_;
}

}  // namespace esim::core
