// ClusterBackend: a cluster's fidelity tier as runtime state.
//
// The paper fixes one trade at build time: a cluster is either simulated
// at packet fidelity or replaced by the ML fabric model. This interface
// makes the trade per-cluster *runtime* state (DESIGN.md §12): the
// ApproxCluster boundary component keeps its external contract (packets
// in at host uplinks / core links, packets out after {drop, latency})
// and delegates the per-packet decision to whichever tier backend is
// currently active:
//
//   * Packet — passthrough at the unloaded fabric minimum; the emulated
//     DeliverySerializer ports downstream of the decision supply the
//     real queueing delay and drop-tail behaviour, so this is the
//     highest-fidelity queue-model tier (used when a cluster is
//     congested and ML drift would be most expensive).
//   * Ml — the trained micro-model path (the paper's black box). The
//     batched prediction queue stays inside ApproxCluster; this backend
//     serves the unbatched decision and defines the tier's contract.
//   * Fluid — an online max-min fair rate model (flowsim stepped by
//     packet arrivals): latency = packet bits / current fair share of
//     the flow. No queues, no TCP dynamics, never drops — the honest
//     cheap tier for quiescent clusters.
//
// Determinism contract: admit() must be a pure function of (packet,
// arrival time, prior admissions into this backend) — no RNG beyond the
// pre-drawn `drop_draw` and no wall-clock — so sequential and PDES runs
// that admit the same boundary stream make identical decisions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>

#include "approx/micro_model.h"
#include "flowsim/flow_level.h"
#include "net/clos.h"
#include "net/packet.h"
#include "sim/time.h"

namespace esim::core {

/// Fidelity tiers, cheapest-last. Values are stable: they feed the
/// `granularity.c<k>.tier` gauge and the digest transition lane.
enum class ClusterTier : std::uint8_t { Packet = 0, Ml = 1, Fluid = 2 };
inline constexpr std::size_t kClusterTierCount = 3;

const char* to_string(ClusterTier t);

/// Per-cluster tier selection policy (ApproxCluster::Config::tier).
struct ClusterTierPolicy {
  enum class Mode : std::uint8_t {
    Fixed,     ///< stay on fixed_tier forever (default: Ml = legacy)
    Adaptive,  ///< GranularityController demotes/promotes at macro windows
  };
  Mode mode = Mode::Fixed;
  /// Fixed mode: the tier. Adaptive mode: the initial tier.
  ClusterTier fixed_tier = ClusterTier::Ml;
  /// Hysteresis: a transition fires only after the cluster has dwelt at
  /// least this many macro windows on its current tier.
  std::uint32_t min_dwell_windows = 4;
  /// Fluid tier: byte budget granted to a tracked flow (re-armed when it
  /// drains); large enough that a live flow holds its link share.
  std::uint64_t fluid_flow_bytes = 64ull << 20;
  /// Fluid tier: a tracked flow is withdrawn from the rate model after
  /// this many macro windows without a packet.
  std::uint32_t fluid_idle_windows = 2;

  bool adaptive() const { return mode == Mode::Adaptive; }
};

/// One boundary packet's traversal decision. The cluster clamps
/// latency_s to Config::min_latency_s before scheduling delivery.
struct TierDecision {
  bool drop = false;
  double latency_s = 0.0;
};

/// Everything a backend may consult for one admission. `features` is the
/// direction extractor's row (extracted by the cluster in every tier so
/// the EWMA state stays warm across transitions); `drop_draw` is the
/// pre-drawn uniform of the RNG draw-order contract — a backend that
/// drops must replay it, never draw fresh randomness.
struct AdmitContext {
  const net::Packet& pkt;
  sim::SimTime arrival;
  bool egress = false;
  std::span<const double> features;
  double drop_draw = 0.0;
};

/// One fidelity tier implementation behind the ApproxCluster boundary.
class ClusterBackend {
 public:
  virtual ~ClusterBackend() = default;

  virtual ClusterTier tier() const = 0;

  /// Decides {drop, latency} for one admitted boundary packet.
  virtual TierDecision admit(const AdmitContext& ctx) = 0;

  /// Housekeeping at every macro-window boundary while this backend is
  /// active (called before any tier transition at that boundary).
  virtual void on_macro_window(sim::SimTime now) { (void)now; }

  /// Called when the controller switches INTO this tier, after the
  /// previous tier drained (flush-before-switch). Backends reset any
  /// cross-period state here so a tier period is a pure function of the
  /// packets admitted during it.
  virtual void on_activated(sim::SimTime now) { (void)now; }
};

/// Packet tier: passthrough at the unloaded minimum. The emulated ports
/// downstream provide serialization, conflict resolution, and drop-tail
/// backlog drops, so the fabric model itself neither delays nor drops.
class PacketTierBackend final : public ClusterBackend {
 public:
  ClusterTier tier() const override { return ClusterTier::Packet; }
  TierDecision admit(const AdmitContext&) override {
    return TierDecision{/*drop=*/false, /*latency_s=*/0.0};
  }
};

/// Ml tier: the per-packet micro-model decision (unbatched path). Holds
/// non-owning pointers to the cluster's models — prediction advances the
/// same recurrent state the batched path uses, so switching between the
/// batched queue and this backend never forks model state.
class MlTierBackend final : public ClusterBackend {
 public:
  MlTierBackend(approx::MicroModel* ingress, approx::MicroModel* egress,
                bool sample_drops, bool reference_inference)
      : ingress_{ingress},
        egress_{egress},
        sample_drops_{sample_drops},
        reference_{reference_inference} {}

  ClusterTier tier() const override { return ClusterTier::Ml; }
  TierDecision admit(const AdmitContext& ctx) override;

 private:
  approx::MicroModel* ingress_;
  approx::MicroModel* egress_;
  bool sample_drops_;
  bool reference_;
};

/// Fluid tier: an online max-min rate model over the cluster's own Clos
/// fabric, stepped to each packet arrival. Flows are tracked by exact
/// 4-tuple; a first packet registers the flow with a byte budget, and a
/// packet's latency is its serialization time at the flow's current fair
/// share (falling back to line rate when the model has no rate). Flows
/// idle for `idle_windows` macro windows are withdrawn at the window
/// boundary. Never drops — no queues, no TCP dynamics (DESIGN.md §12
/// states this limitation honestly).
///
/// Same-instant commutativity: unlike the Ml tier, this backend shares
/// ONE rate model between ingress and egress, and under PDES a
/// remote-injected ingress event can tie with a local event at the same
/// nanosecond with engine-dependent pop order. admit() therefore never
/// mutates the model: a packet reads its rate from the state flushed at
/// the last *instant advance*, and all mutations (flow creation, budget
/// re-arm, idle bookkeeping, window sweeps) are buffered and applied in
/// canonical key order when virtual time moves past the instant. Any
/// pop order of same-time admissions yields identical decisions and
/// identical model state.
class FluidClusterBackend final : public ClusterBackend {
 public:
  struct Config {
    net::ClosSpec spec;            ///< full topology (routes replay ECMP)
    double bandwidth_bps = 10e9;   ///< uniform link rate
    std::uint64_t flow_bytes = 64ull << 20;
    std::uint32_t idle_windows = 2;
    /// Macro window length; idle expiry sweeps run at multiples of this
    /// (applied lazily by whichever event first crosses the boundary).
    std::int64_t window_ns = 100'000;
  };

  explicit FluidClusterBackend(const Config& config);

  ClusterTier tier() const override { return ClusterTier::Fluid; }
  TierDecision admit(const AdmitContext& ctx) override;
  void on_macro_window(sim::SimTime now) override;
  void on_activated(sim::SimTime now) override;

  /// Flows currently tracked in the rate model, including touches of the
  /// current instant not yet flushed (tests/telemetry).
  std::size_t tracked_flows() const;
  /// The embedded stepping engine (read-only; tests).
  const flowsim::FlowLevelSimulator& model() const { return *model_; }

 private:
  struct Tracked {
    std::uint64_t fluid_id = 0;
    std::int64_t last_seen_ns = 0;  ///< last flushed touch
  };
  // Exact 4-tuple key: (src<<32|dst, sport<<16|dport). std::map so
  // flushes and expiry sweeps iterate in a deterministic, canonical
  // order regardless of the admission order that buffered them.
  using Key = std::pair<std::uint64_t, std::uint32_t>;
  static Key key_of(const net::FlowKey& f) {
    return {static_cast<std::uint64_t>(f.src_host) << 32 | f.dst_host,
            static_cast<std::uint32_t>(f.src_port) << 16 | f.dst_port};
  }

  /// Advances the backend to instant `t_ns`: flushes the touches of the
  /// instant being left, runs the idle-expiry sweep at every window
  /// boundary crossed (boundaries <= t_ns), and steps the model. No-op
  /// when t_ns is the current instant — the first event at an instant
  /// does all the work, so tied events commute.
  void sync(std::int64_t t_ns);
  void flush_pending();

  Config config_;
  std::unique_ptr<flowsim::FlowLevelSimulator> model_;
  std::map<Key, Tracked> flows_;
  std::map<Key, net::FlowKey> pending_;  // touches in the current instant
  std::int64_t cur_instant_ns_ = 0;
  std::int64_t synced_boundary_ns_ = 0;
  std::uint64_t next_id_ = 1;  // never reused, even across reactivations
};

}  // namespace esim::core
