// Experiment-level run-report assembly: turns RunResults into the
// versioned telemetry::RunReport sections that the examples and bench
// binaries emit (EXPERIMENTS.md documents how figures regenerate from
// these files).
#pragma once

#include <string_view>

#include "core/experiment.h"
#include "telemetry/report.h"

namespace esim::core {

/// Writes one RunResult under `section` (e.g. "full", "hybrid"):
/// wall/event accounting, flow counts, mean FCT, RTT quantiles
/// (p50/p90/p99/max when samples exist), per-region packet totals with
/// drop rates, approx totals when the run had ApproxClusters, and the
/// registry snapshot under `<section>.metrics` when one was taken.
void add_run_result(telemetry::RunReport& report, std::string_view section,
                    const RunResult& result);

/// Writes training diagnostics under `section`: the boundary record
/// count always, and — when ExperimentConfig::eval_holdout produced one —
/// the held-out metrics of both direction models as
/// `<section>.eval.{ingress,egress}` objects (AUC, precision/recall,
/// latency MAE/bias in normalized log space).
void add_training_eval(telemetry::RunReport& report,
                       const TrainedModels& models,
                       std::string_view section = "training");

/// Writes the workload/topology parameters under `section` (default
/// "config") so a report is self-describing.
void add_experiment_config(telemetry::RunReport& report,
                           const ExperimentConfig& config,
                           const net::ClosSpec& spec,
                           std::string_view section = "config");

/// Phase-memoization accounting for one run, as written by
/// add_memo_section. A plain mirror of memo::MemoStats so core need not
/// depend on src/memo; bench/bench_memo.cc copies the fields over.
struct MemoSectionData {
  bool enabled = false;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t near_misses = 0;  ///< signature hit, verification refused
  std::uint64_t stores = 0;
  std::uint64_t store_aborts = 0;  ///< phase ran live but was not cacheable
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;       ///< resident entries at end of run
  std::uint64_t bytes = 0;         ///< resident cache bytes at end of run
  std::uint64_t fast_forwarded_phases = 0;
  std::int64_t fast_forwarded_ns = 0;  ///< virtual time skipped
};

/// Writes memoization hit/miss/bytes accounting under `section` (default
/// "memo"): the EXPERIMENTS.md `BENCH_memo.json` schema's per-run block.
void add_memo_section(telemetry::RunReport& report,
                      const MemoSectionData& data,
                      std::string_view section = "memo");

}  // namespace esim::core
