#include "core/hybrid_builder.h"

#include <stdexcept>
#include <unordered_map>

namespace esim::core {

using net::ClosSpec;
using net::HostId;
using net::Link;
using net::Switch;
using net::SwitchId;

HybridNetwork build_hybrid_network(sim::Simulator& sim,
                                   const HybridConfig& config,
                                   const approx::MicroModel& ingress_model,
                                   const approx::MicroModel& egress_model) {
  const ClosSpec& spec = config.net.spec;
  spec.validate();
  if (spec.clusters < 2) {
    throw std::invalid_argument(
        "build_hybrid_network: need >= 2 clusters (one stays full)");
  }
  if (config.full_cluster >= spec.clusters) {
    throw std::invalid_argument("build_hybrid_network: bad full_cluster");
  }
  const std::uint32_t full = config.full_cluster;

  HybridNetwork out;
  out.spec = spec;
  out.full_cluster = full;
  out.hosts.resize(spec.total_hosts());
  out.switches.assign(spec.total_switches(), nullptr);
  out.clusters.assign(spec.clusters, nullptr);
  out.host_uplinks.resize(spec.total_hosts());
  out.host_downlinks.assign(spec.total_hosts(), nullptr);

  // --- components ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    out.hosts[h] =
        sim.add_component<tcp::Host>(spec.host_name(h), h, config.net.tcp);
  }
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    const SwitchId id = spec.tor_id(full, t);
    out.switches[id] = sim.add_component<Switch>(
        spec.tor_name(full, t), id, config.net.switch_processing);
  }
  for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
    const SwitchId id = spec.agg_id(full, a);
    out.switches[id] = sim.add_component<Switch>(
        spec.agg_name(full, a), id, config.net.switch_processing);
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    const SwitchId id = spec.core_id(k);
    out.switches[id] = sim.add_component<Switch>(spec.core_name(k), id,
                                                 config.net.switch_processing);
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    if (c == full) continue;
    ApproxCluster::Config acfg = config.approx;
    acfg.spec = spec;
    acfg.cluster = c;
    out.clusters[c] = sim.add_component<ApproxCluster>(
        "approx.c" + std::to_string(c), acfg, ingress_model, egress_model);
  }

  auto link_name = [](const std::string& a, const std::string& b) {
    return a + "->" + b;
  };

  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> port_of(
      spec.total_switches());
  constexpr std::uint64_t kHostKey = 1ULL << 40;
  constexpr std::uint64_t kSwitchKey = 2ULL << 40;
  constexpr std::uint64_t kClusterKey = 3ULL << 40;

  // --- full cluster wiring (identical to full_builder) ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const std::uint32_t c = spec.cluster_of_host(h);
    tcp::Host* host = out.hosts[h];
    if (c == full) {
      Switch* tor_sw = out.switches[spec.tor_of_host(h)];
      auto* up = sim.add_component<Link>(
          link_name(host->name(), tor_sw->name()), config.net.host_uplink,
          tor_sw);
      auto* down = sim.add_component<Link>(
          link_name(tor_sw->name(), host->name()), config.net.fabric_link,
          host);
      host->set_uplink(up);
      out.host_uplinks[h] = up;
      out.host_downlinks[h] = down;
      port_of[tor_sw->id()][kHostKey | h] = tor_sw->add_port(down);
    } else {
      ApproxCluster* cluster = out.clusters[c];
      auto* up = sim.add_component<Link>(
          link_name(host->name(), cluster->name()), config.net.host_uplink,
          cluster);
      host->set_uplink(up);
      out.host_uplinks[h] = up;
      cluster->attach_host(h, host);
    }
  }

  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    Switch* tor_sw = out.switches[spec.tor_id(full, t)];
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      Switch* agg_sw = out.switches[spec.agg_id(full, a)];
      auto* up = sim.add_component<Link>(
          link_name(tor_sw->name(), agg_sw->name()), config.net.fabric_link,
          agg_sw);
      auto* down = sim.add_component<Link>(
          link_name(agg_sw->name(), tor_sw->name()), config.net.fabric_link,
          tor_sw);
      port_of[tor_sw->id()][kSwitchKey | agg_sw->id()] = tor_sw->add_port(up);
      port_of[agg_sw->id()][kSwitchKey | tor_sw->id()] =
          agg_sw->add_port(down);
    }
  }

  for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
    Switch* agg_sw = out.switches[spec.agg_id(full, a)];
    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = out.switches[spec.core_id(k)];
      auto* up = sim.add_component<Link>(
          link_name(agg_sw->name(), core_sw->name()), config.net.fabric_link,
          core_sw);
      auto* down = sim.add_component<Link>(
          link_name(core_sw->name(), agg_sw->name()), config.net.fabric_link,
          agg_sw);
      port_of[agg_sw->id()][kSwitchKey | core_sw->id()] =
          agg_sw->add_port(up);
      port_of[core_sw->id()][kSwitchKey | agg_sw->id()] =
          core_sw->add_port(down);
      out.core_links.push_back(CoreAttachment{full, a, k, up, down});
    }
  }

  // --- core -> approximated-cluster links, and core attachment ---
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    Switch* core_sw = out.switches[spec.core_id(k)];
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      if (c == full) continue;
      ApproxCluster* cluster = out.clusters[c];
      auto* down = sim.add_component<Link>(
          link_name(core_sw->name(), cluster->name()),
          config.net.fabric_link, cluster);
      port_of[core_sw->id()][kClusterKey | c] = core_sw->add_port(down);
      cluster->attach_core(k, core_sw);
    }
  }

  // --- FIBs ---
  for (HostId dst = 0; dst < spec.total_hosts(); ++dst) {
    const std::uint32_t dst_cluster = spec.cluster_of_host(dst);
    const SwitchId dst_tor = spec.tor_of_host(dst);

    // Full cluster ToRs and Aggs route exactly as in the full build.
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      Switch* tor_sw = out.switches[spec.tor_id(full, t)];
      if (tor_sw->id() == dst_tor && dst_cluster == full) {
        tor_sw->set_route(dst, {port_of[tor_sw->id()].at(kHostKey | dst)});
      } else {
        std::vector<std::uint32_t> ups;
        for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
          ups.push_back(
              port_of[tor_sw->id()].at(kSwitchKey | spec.agg_id(full, a)));
        }
        tor_sw->set_route(dst, std::move(ups));
      }
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      Switch* agg_sw = out.switches[spec.agg_id(full, a)];
      if (dst_cluster == full) {
        agg_sw->set_route(dst,
                          {port_of[agg_sw->id()].at(kSwitchKey | dst_tor)});
      } else {
        std::vector<std::uint32_t> ups;
        for (std::uint32_t k = 0; k < spec.cores; ++k) {
          ups.push_back(
              port_of[agg_sw->id()].at(kSwitchKey | spec.core_id(k)));
        }
        agg_sw->set_route(dst, std::move(ups));
      }
    }

    // Cores: into the full cluster via its aggs (canonical order), into
    // approximated clusters via their single model link.
    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = out.switches[spec.core_id(k)];
      if (dst_cluster == full) {
        std::vector<std::uint32_t> downs;
        for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
          downs.push_back(port_of[core_sw->id()].at(
              kSwitchKey | spec.agg_id(full, a)));
        }
        core_sw->set_route(dst, std::move(downs));
      } else {
        core_sw->set_route(
            dst, {port_of[core_sw->id()].at(kClusterKey | dst_cluster)});
      }
    }
  }

  // Start macro-state windows.
  for (auto* cluster : out.clusters) {
    if (cluster != nullptr) cluster->start();
  }
  return out;
}

}  // namespace esim::core
