#include "core/approx_cluster.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace esim::core {

using approx::Direction;
using net::Packet;

ApproxCluster::ApproxCluster(sim::Simulator& sim, std::string name,
                             const Config& config,
                             const approx::MicroModel& ingress_model,
                             const approx::MicroModel& egress_model)
    : Component(sim, std::move(name)),
      config_{config},
      ingress_model_{ingress_model},
      egress_model_{egress_model},
      ingress_features_{config.spec, config.cluster, Direction::Ingress},
      egress_features_{config.spec, config.cluster, Direction::Egress},
      macro_{config.macro} {
  config_.spec.validate();
  ingress_model_.reset_state();
  egress_model_.reset_state();
  cores_.resize(config_.spec.cores, nullptr);
  hosts_.resize(config_.spec.hosts_per_cluster(), nullptr);
  core_ports_.assign(config_.spec.cores,
                     DeliverySerializer{config_.port_bandwidth_bps});
  host_ports_.assign(config_.spec.hosts_per_cluster(),
                     DeliverySerializer{config_.port_bandwidth_bps});
  if (auto* r = sim.telemetry()) {
    m_inferences_ = r->counter("approx.inferences");
    m_macro_transitions_ = r->counter("approx.macro_transitions");
    m_inference_ns_ = r->histogram("approx.inference_ns");
    auto* drops = r->counter("approx.predicted_drops");
    auto* backlog = r->counter("approx.backlog_drops");
    auto* egress = r->counter("approx.egress_packets");
    auto* ingress = r->counter("approx.ingress_packets");
    auto* intra = r->counter("approx.intra_packets");
    auto* conflicts = r->counter("approx.conflicts_resolved");
    r->add_flusher(
        [this, drops, backlog, egress, ingress, intra, conflicts] {
          drops->set(stats_.predicted_drops);
          backlog->set(stats_.backlog_drops);
          egress->set(stats_.egress_packets);
          ingress->set(stats_.ingress_packets);
          intra->set(stats_.intra_packets);
          conflicts->set(stats_.conflicts_resolved);
        });
  }
}

void ApproxCluster::attach_core(std::uint32_t index,
                                net::Switch* core_switch) {
  cores_.at(index) = core_switch;
}

void ApproxCluster::set_core_remote(std::uint32_t index,
                                    net::RemoteScheduler remote) {
  if (core_remotes_.empty()) core_remotes_.resize(cores_.size());
  core_remotes_.at(index) = std::move(remote);
}

void ApproxCluster::attach_host(net::HostId id, tcp::Host* host) {
  if (config_.spec.cluster_of_host(id) != config_.cluster) {
    throw std::invalid_argument(name() + ": host " + std::to_string(id) +
                                " is not in cluster " +
                                std::to_string(config_.cluster));
  }
  hosts_.at(id % config_.spec.hosts_per_cluster()) = host;
}

void ApproxCluster::start() {
  schedule_in(macro_.window(), [this] {
    const approx::MacroState before = macro_.state();
    macro_.advance_window();
    if (macro_.state() != before) {
      if (m_macro_transitions_ != nullptr) m_macro_transitions_->inc();
      telemetry::trace_instant("approx.macro_transition",
                               static_cast<std::int64_t>(macro_.state()));
    }
    start();
  });
}

bool ApproxCluster::decide_drop(double probability) {
  if (config_.sample_drops) return rng().bernoulli(probability);
  return probability > 0.5;
}

void ApproxCluster::handle_packet(Packet pkt) {
  const std::uint32_t src_cluster =
      config_.spec.cluster_of_host(pkt.flow.src_host);
  const std::uint32_t dst_cluster =
      config_.spec.cluster_of_host(pkt.flow.dst_host);

  const bool egress = src_cluster == config_.cluster;
  approx::MicroModel& model = egress ? egress_model_ : ingress_model_;
  approx::FeatureExtractor& extractor =
      egress ? egress_features_ : ingress_features_;

  const auto infer = [&] {
    const auto features = extractor.extract(pkt, now(), macro_.state());
    return config_.reference_inference ? model.predict_reference(features)
                                       : model.predict(features);
  };
  approx::MicroModel::Prediction prediction;
  if (m_inferences_ != nullptr) {
    telemetry::Span span{"approx.inference"};
    const auto t0 = std::chrono::steady_clock::now();
    prediction = infer();
    m_inferences_->inc();
    // Wall-clock inference cost; virtual time is unaffected.
    m_inference_ns_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  } else {
    telemetry::Span span{"approx.inference"};
    prediction = infer();
  }
  const double latency =
      std::max(prediction.latency_seconds, config_.min_latency_s);

  const bool drop = decide_drop(prediction.drop_probability);
  macro_.observe(latency, drop);
  if (drop) {
    ++stats_.predicted_drops;
    return;  // TCP on the endpoints recovers, as with a real queue drop
  }

  if (egress && dst_cluster == config_.cluster) {
    // Intra-cluster traffic of an approximated cluster. Normally elided
    // by the workload filter (paper §6.2); when present, the fabric model
    // delivers it directly to the destination host.
    ++stats_.intra_packets;
    deliver_ingress(std::move(pkt), latency);
    return;
  }
  if (egress) {
    ++stats_.egress_packets;
    deliver_egress(std::move(pkt), latency);
  } else {
    ++stats_.ingress_packets;
    deliver_ingress(std::move(pkt), latency);
  }
}

void ApproxCluster::deliver_egress(Packet pkt, double latency_s) {
  const auto path = net::compute_path(config_.spec, pkt.flow);
  if (path.len != 5) {
    throw std::logic_error(name() + ": egress packet without a core hop");
  }
  const std::uint32_t core_index =
      path.hops[2] - config_.spec.core_id(0);
  net::Switch* core = cores_.at(core_index);
  if (core == nullptr) {
    throw std::logic_error(name() + ": core " + std::to_string(core_index) +
                           " not attached");
  }
  const sim::SimTime desired = now() + sim::SimTime::from_seconds_f(latency_s);
  const auto granted = core_ports_[core_index].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  auto deliver = [core, pkt = std::move(pkt)]() mutable {
    core->handle_packet(std::move(pkt));
  };
  if (core_index < core_remotes_.size() && core_remotes_[core_index]) {
    core_remotes_[core_index](*granted, /*key=*/0, std::move(deliver));
  } else {
    schedule_at(*granted, std::move(deliver));
  }
}

void ApproxCluster::deliver_ingress(Packet pkt, double latency_s) {
  const std::uint32_t offset =
      pkt.flow.dst_host % config_.spec.hosts_per_cluster();
  tcp::Host* host = hosts_.at(offset);
  if (host == nullptr) {
    throw std::logic_error(name() + ": host offset " +
                           std::to_string(offset) + " not attached");
  }
  const sim::SimTime desired = now() + sim::SimTime::from_seconds_f(latency_s);
  const auto granted = host_ports_[offset].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  schedule_at(*granted, [host, pkt = std::move(pkt)]() mutable {
    host->handle_packet(std::move(pkt));
  });
}

}  // namespace esim::core
