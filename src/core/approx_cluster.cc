#include "core/approx_cluster.h"

#include <algorithm>
#include <stdexcept>

namespace esim::core {

using approx::Direction;
using net::Packet;

ApproxCluster::ApproxCluster(sim::Simulator& sim, std::string name,
                             const Config& config,
                             const approx::MicroModel& ingress_model,
                             const approx::MicroModel& egress_model)
    : Component(sim, std::move(name)),
      config_{config},
      ingress_model_{ingress_model},
      egress_model_{egress_model},
      ingress_features_{config.spec, config.cluster, Direction::Ingress},
      egress_features_{config.spec, config.cluster, Direction::Egress},
      macro_{config.macro} {
  config_.spec.validate();
  ingress_model_.reset_state();
  egress_model_.reset_state();
  cores_.resize(config_.spec.cores, nullptr);
  hosts_.resize(config_.spec.hosts_per_cluster(), nullptr);
  core_ports_.assign(config_.spec.cores,
                     DeliverySerializer{config_.port_bandwidth_bps});
  host_ports_.assign(config_.spec.hosts_per_cluster(),
                     DeliverySerializer{config_.port_bandwidth_bps});
}

void ApproxCluster::attach_core(std::uint32_t index,
                                net::Switch* core_switch) {
  cores_.at(index) = core_switch;
}

void ApproxCluster::set_core_remote(std::uint32_t index,
                                    net::RemoteScheduler remote) {
  if (core_remotes_.empty()) core_remotes_.resize(cores_.size());
  core_remotes_.at(index) = std::move(remote);
}

void ApproxCluster::attach_host(net::HostId id, tcp::Host* host) {
  if (config_.spec.cluster_of_host(id) != config_.cluster) {
    throw std::invalid_argument(name() + ": host " + std::to_string(id) +
                                " is not in cluster " +
                                std::to_string(config_.cluster));
  }
  hosts_.at(id % config_.spec.hosts_per_cluster()) = host;
}

void ApproxCluster::start() {
  schedule_in(macro_.window(), [this] {
    macro_.advance_window();
    start();
  });
}

bool ApproxCluster::decide_drop(double probability) {
  if (config_.sample_drops) return rng().bernoulli(probability);
  return probability > 0.5;
}

void ApproxCluster::handle_packet(Packet pkt) {
  const std::uint32_t src_cluster =
      config_.spec.cluster_of_host(pkt.flow.src_host);
  const std::uint32_t dst_cluster =
      config_.spec.cluster_of_host(pkt.flow.dst_host);

  const bool egress = src_cluster == config_.cluster;
  approx::MicroModel& model = egress ? egress_model_ : ingress_model_;
  approx::FeatureExtractor& extractor =
      egress ? egress_features_ : ingress_features_;

  const auto features = extractor.extract(pkt, now(), macro_.state());
  const auto prediction = model.predict(features);
  const double latency =
      std::max(prediction.latency_seconds, config_.min_latency_s);

  const bool drop = decide_drop(prediction.drop_probability);
  macro_.observe(latency, drop);
  if (drop) {
    ++stats_.predicted_drops;
    return;  // TCP on the endpoints recovers, as with a real queue drop
  }

  if (egress && dst_cluster == config_.cluster) {
    // Intra-cluster traffic of an approximated cluster. Normally elided
    // by the workload filter (paper §6.2); when present, the fabric model
    // delivers it directly to the destination host.
    ++stats_.intra_packets;
    deliver_ingress(std::move(pkt), latency);
    return;
  }
  if (egress) {
    ++stats_.egress_packets;
    deliver_egress(std::move(pkt), latency);
  } else {
    ++stats_.ingress_packets;
    deliver_ingress(std::move(pkt), latency);
  }
}

void ApproxCluster::deliver_egress(Packet pkt, double latency_s) {
  const auto path = net::compute_path(config_.spec, pkt.flow);
  if (path.len != 5) {
    throw std::logic_error(name() + ": egress packet without a core hop");
  }
  const std::uint32_t core_index =
      path.hops[2] - config_.spec.core_id(0);
  net::Switch* core = cores_.at(core_index);
  if (core == nullptr) {
    throw std::logic_error(name() + ": core " + std::to_string(core_index) +
                           " not attached");
  }
  const sim::SimTime desired = now() + sim::SimTime::from_seconds_f(latency_s);
  const auto granted = core_ports_[core_index].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  auto deliver = [core, pkt = std::move(pkt)]() mutable {
    core->handle_packet(std::move(pkt));
  };
  if (core_index < core_remotes_.size() && core_remotes_[core_index]) {
    core_remotes_[core_index](*granted, std::move(deliver));
  } else {
    schedule_at(*granted, std::move(deliver));
  }
}

void ApproxCluster::deliver_ingress(Packet pkt, double latency_s) {
  const std::uint32_t offset =
      pkt.flow.dst_host % config_.spec.hosts_per_cluster();
  tcp::Host* host = hosts_.at(offset);
  if (host == nullptr) {
    throw std::logic_error(name() + ": host offset " +
                           std::to_string(offset) + " not attached");
  }
  const sim::SimTime desired = now() + sim::SimTime::from_seconds_f(latency_s);
  const auto granted = host_ports_[offset].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  schedule_at(*granted, [host, pkt = std::move(pkt)]() mutable {
    host->handle_packet(std::move(pkt));
  });
}

}  // namespace esim::core
