#include "core/approx_cluster.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>

#include "core/granularity.h"
#include "telemetry/fidelity.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace esim::core {

using approx::Direction;
using net::Packet;

ApproxCluster::ApproxCluster(sim::Simulator& sim, std::string name,
                             const Config& config,
                             const approx::MicroModel& ingress_model,
                             const approx::MicroModel& egress_model)
    : Component(sim, std::move(name)),
      config_{config},
      ingress_model_{ingress_model},
      egress_model_{egress_model},
      ingress_features_{config.spec, config.cluster, Direction::Ingress},
      egress_features_{config.spec, config.cluster, Direction::Egress},
      macro_{config.macro} {
  config_.spec.validate();
  if (batching()) {
    // A queued packet admitted at t is flushed no later than t +
    // batch_window and delivered no earlier than t + min_latency_s; the
    // window must not exceed the floor or a flush could have to
    // schedule a delivery in its past.
    if (config_.batch_window >
        sim::SimTime::from_seconds_f(config_.min_latency_s)) {
      throw std::invalid_argument(
          this->name() + ": batch_window exceeds min_latency_s");
    }
    pending_.reserve(config_.batch_max);
    egress_feat_.reserve(config_.batch_max * approx::PacketFeatures::kDim);
    ingress_feat_.reserve(config_.batch_max * approx::PacketFeatures::kDim);
    egress_preds_.resize(config_.batch_max);
    ingress_preds_.resize(config_.batch_max);
    ingress_model_.reserve_batch(config_.batch_max);
    egress_model_.reserve_batch(config_.batch_max);
  }
  ingress_model_.reset_state();
  egress_model_.reset_state();
  cores_.resize(config_.spec.cores, nullptr);
  hosts_.resize(config_.spec.hosts_per_cluster(), nullptr);
  core_ports_.assign(config_.spec.cores,
                     DeliverySerializer{config_.port_bandwidth_bps});
  host_ports_.assign(config_.spec.hosts_per_cluster(),
                     DeliverySerializer{config_.port_bandwidth_bps});
  if (config_.fidelity != nullptr && config_.fidelity->config().enabled) {
    // Aggregate boundary capacity: one emulated line-rate port per core
    // uplink plus one per cluster host (the utilization denominator).
    const double capacity_bps =
        config_.port_bandwidth_bps *
        static_cast<double>(config_.spec.cores +
                            config_.spec.hosts_per_cluster());
    probe_ = std::make_unique<telemetry::ClusterFidelityProbe>(
        *config_.fidelity, config_.cluster, capacity_bps, sim.telemetry());
  }
  // Fidelity tiers (DESIGN.md §12): the Ml and Packet backends are
  // always available; the fluid rate model is built only when the
  // policy can reach it. In adaptive mode the controller reads the
  // probe's congestion classification, so the observatory is mandatory.
  tier_ = config_.tier.fixed_tier;
  ml_backend_ = std::make_unique<MlTierBackend>(
      &ingress_model_, &egress_model_, config_.sample_drops,
      config_.reference_inference);
  packet_backend_ = std::make_unique<PacketTierBackend>();
  if (config_.tier.adaptive() || tier_ == ClusterTier::Fluid) {
    FluidClusterBackend::Config fcfg;
    fcfg.spec = config_.spec;
    fcfg.bandwidth_bps = config_.port_bandwidth_bps;
    fcfg.flow_bytes = config_.tier.fluid_flow_bytes;
    fcfg.idle_windows = config_.tier.fluid_idle_windows;
    fcfg.window_ns = config_.macro.window.ns();
    fluid_backend_ = std::make_unique<FluidClusterBackend>(fcfg);
  }
  if (config_.tier.adaptive()) {
    if (!probe_) {
      throw std::invalid_argument(
          this->name() +
          ": adaptive tier policy requires the fidelity observatory "
          "(set Config::fidelity to an enabled sink)");
    }
    controller_ = std::make_unique<GranularityController>(
        config_.tier, config_.cluster, probe_.get(), sim.telemetry());
  } else if (auto* r = sim.telemetry()) {
    r->gauge("granularity.c" + std::to_string(config_.cluster) + ".tier")
        ->set(static_cast<std::int64_t>(tier_));
  }
  if (auto* r = sim.telemetry()) {
    m_inferences_ = r->counter("approx.inferences");
    m_macro_transitions_ = r->counter("approx.macro_transitions");
    m_inference_ns_ = r->histogram("approx.inference_ns");
    auto* drops = r->counter("approx.predicted_drops");
    auto* backlog = r->counter("approx.backlog_drops");
    auto* egress = r->counter("approx.egress_packets");
    auto* ingress = r->counter("approx.ingress_packets");
    auto* intra = r->counter("approx.intra_packets");
    auto* conflicts = r->counter("approx.conflicts_resolved");
    auto* tp_packet = r->counter("approx.tier_packets.packet");
    auto* tp_ml = r->counter("approx.tier_packets.ml");
    auto* tp_fluid = r->counter("approx.tier_packets.fluid");
    r->add_flusher([this, drops, backlog, egress, ingress, intra, conflicts,
                    tp_packet, tp_ml, tp_fluid] {
      drops->set(stats_.predicted_drops);
      backlog->set(stats_.backlog_drops);
      egress->set(stats_.egress_packets);
      ingress->set(stats_.ingress_packets);
      intra->set(stats_.intra_packets);
      conflicts->set(stats_.conflicts_resolved);
      tp_packet->set(
          stats_.tier_packets[static_cast<std::size_t>(ClusterTier::Packet)]);
      tp_ml->set(
          stats_.tier_packets[static_cast<std::size_t>(ClusterTier::Ml)]);
      tp_fluid->set(
          stats_.tier_packets[static_cast<std::size_t>(ClusterTier::Fluid)]);
    });
  }
}

ApproxCluster::~ApproxCluster() = default;

void ApproxCluster::attach_core(std::uint32_t index,
                                net::Switch* core_switch) {
  cores_.at(index) = core_switch;
}

void ApproxCluster::set_core_remote(std::uint32_t index,
                                    net::RemoteScheduler remote) {
  if (core_remotes_.empty()) core_remotes_.resize(cores_.size());
  core_remotes_.at(index) = std::move(remote);
}

void ApproxCluster::attach_host(net::HostId id, tcp::Host* host) {
  if (config_.spec.cluster_of_host(id) != config_.cluster) {
    throw std::invalid_argument(name() + ": host " + std::to_string(id) +
                                " is not in cluster " +
                                std::to_string(config_.cluster));
  }
  hosts_.at(id % config_.spec.hosts_per_cluster()) = host;
}

void ApproxCluster::start() {
  schedule_in(macro_.window(), [this] {
    // Simulator-barrier flush: queued packets were admitted (and in the
    // unbatched ordering would have been observed by the macro model)
    // before this window boundary, so they must be resolved before the
    // window advances.
    flush_batch();
    const approx::MacroState before = macro_.state();
    macro_.advance_window();
    if (macro_.state() != before) {
      if (m_macro_transitions_ != nullptr) m_macro_transitions_->inc();
      telemetry::trace_instant("approx.macro_transition",
                               static_cast<std::int64_t>(macro_.state()));
    }
    // Fidelity windows piggyback on this timer (they never schedule
    // events of their own — the digest-invariance contract, §11).
    if (probe_) probe_->on_macro_window(now().ns(), macro_.window().ns());
    // Tier housekeeping on the active backend (e.g. the fluid model
    // expires idle flows), then the controller's transition decision.
    // Ordering is the drain-before-switch rule: flush_batch() above
    // resolved every queued prediction, so a switch at this boundary
    // starts the new tier with no in-flight work. The controller's
    // inputs (probe EWMAs) and this timer's firing times are engine-
    // invariant, so sequential and PDES runs transition at identical
    // virtual times (DESIGN.md §12).
    active_backend().on_macro_window(now());
    if (controller_) {
      if (const auto next = controller_->on_macro_window(now().ns())) {
        // Packets arriving at exactly this nanosecond are decided by the
        // outgoing tier whichever side of this timer they pop on
        // (tier_for).
        pre_transition_tier_ = tier_;
        transition_at_ns_ = now().ns();
        tier_ = *next;
        ++stats_.tier_transitions;
        telemetry::trace_instant("granularity.transition",
                                 static_cast<std::int64_t>(tier_));
        active_backend().on_activated(now());
      }
    }
    start();
  });
}

ClusterBackend& ApproxCluster::backend_for(ClusterTier tier) {
  switch (tier) {
    case ClusterTier::Packet:
      return *packet_backend_;
    case ClusterTier::Fluid:
      return *fluid_backend_;
    case ClusterTier::Ml:
      break;
  }
  return *ml_backend_;
}

const std::vector<TierTransition>& ApproxCluster::tier_trace() const {
  static const std::vector<TierTransition> kEmpty;
  return controller_ ? controller_->transitions() : kEmpty;
}

// RNG draw-order contract: with sample_drops, every admitted packet
// consumes exactly one uniform draw from this component's stream at
// ADMISSION, in arrival order (enqueue_packet/process_packet), and the
// decision replays that pre-drawn value here — never a fresh draw at
// flush time, which would permute the stream against the unbatched
// path. `draw < p` is precisely Rng::bernoulli(p). Threshold mode draws
// nothing in either path.
bool ApproxCluster::decide_drop(double probability, double draw) const {
  if (config_.sample_drops) return draw < probability;
  return probability > 0.5;
}

void ApproxCluster::handle_packet(Packet pkt) {
  // The batched prediction queue is an Ml-tier fast path; the other
  // tiers decide synchronously at admission (their decisions are cheap,
  // so there is nothing to coalesce).
  if (tier_for(now()) == ClusterTier::Ml && batching()) {
    enqueue_packet(std::move(pkt));
  } else {
    process_packet(std::move(pkt));
  }
}

void ApproxCluster::process_packet(Packet pkt) {
  const std::uint32_t src_cluster =
      config_.spec.cluster_of_host(pkt.flow.src_host);
  const std::uint32_t dst_cluster =
      config_.spec.cluster_of_host(pkt.flow.dst_host);

  const bool egress = src_cluster == config_.cluster;
  approx::FeatureExtractor& extractor =
      egress ? egress_features_ : ingress_features_;

  // Features are extracted — and the drop draw consumed — in EVERY
  // tier: the extractor EWMAs stay warm across tier transitions, the
  // shadow probe gets its feature row, and the RNG stream advances one
  // uniform per admitted packet regardless of tier (so the draw-order
  // contract is tier-independent).
  const approx::PacketFeatures features =
      extractor.extract(pkt, now(), macro_.state());
  Pending p;
  p.arrival = now();
  p.egress = egress;
  p.dst_cluster = dst_cluster;
  if (config_.sample_drops) p.drop_draw = rng().uniform();

  const AdmitContext ctx{pkt, p.arrival, egress,
                         std::span<const double>{features.v}, p.drop_draw};
  const ClusterTier tier = tier_for(p.arrival);
  TierDecision decision;
  if (tier == ClusterTier::Ml) {
    if (m_inferences_ != nullptr) {
      telemetry::Span span{"approx.inference"};
      const auto t0 = std::chrono::steady_clock::now();
      decision = ml_backend_->admit(ctx);
      m_inferences_->inc();
      // Wall-clock inference cost; virtual time is unaffected.
      m_inference_ns_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      telemetry::Span span{"approx.inference"};
      decision = ml_backend_->admit(ctx);
    }
  } else {
    decision = backend_for(tier).admit(ctx);
  }
  p.pkt = std::move(pkt);
  apply_decision(std::move(p), tier, decision,
                 std::span<const double>{features.v});
}

void ApproxCluster::enqueue_packet(Packet pkt) {
  const std::uint32_t src_cluster =
      config_.spec.cluster_of_host(pkt.flow.src_host);
  const bool egress = src_cluster == config_.cluster;
  approx::FeatureExtractor& extractor =
      egress ? egress_features_ : ingress_features_;
  // Everything arrival-time-dependent happens at admission: the feature
  // row (inter-arrival gap EWMA, macro one-hot) and — critically for
  // digest identity — the per-packet drop draw, which the unbatched
  // path consumes from this component's RNG stream in arrival order.
  const approx::PacketFeatures features =
      extractor.extract(pkt, now(), macro_.state());
  std::vector<double>& feat = egress ? egress_feat_ : ingress_feat_;
  feat.insert(feat.end(), features.v.begin(), features.v.end());
  Pending p;
  p.arrival = now();
  p.egress = egress;
  p.dst_cluster = config_.spec.cluster_of_host(pkt.flow.dst_host);
  p.pkt = std::move(pkt);
  if (config_.sample_drops) p.drop_draw = rng().uniform();
  if (pending_.empty()) {
    // Window-edge flush. The epoch guard voids the timer when a
    // queue-full or barrier flush empties the queue first.
    const std::uint64_t epoch = batch_epoch_;
    schedule_in(config_.batch_window, [this, epoch] {
      if (epoch == batch_epoch_) flush_batch();
    });
  }
  pending_.push_back(std::move(p));
  if (pending_.size() >= config_.batch_max) flush_batch();
}

void ApproxCluster::flush_batch() {
  if (pending_.empty()) return;
  ++batch_epoch_;
  const std::size_t n_egress = egress_feat_.size() / approx::PacketFeatures::kDim;
  const std::size_t n_ingress =
      ingress_feat_.size() / approx::PacketFeatures::kDim;
  {
    // One batched prediction per direction; each direction's rows are in
    // its own arrival order, so the recurrent state advances exactly as
    // the unbatched per-packet calls would.
    telemetry::Span span{"approx.inference_batch"};
    const auto t0 = std::chrono::steady_clock::now();
    if (config_.reference_inference) {
      std::size_t ei = 0, ii = 0;
      for (const Pending& p : pending_) {
        approx::MicroModel& model = p.egress ? egress_model_ : ingress_model_;
        const std::vector<double>& feat =
            p.egress ? egress_feat_ : ingress_feat_;
        std::size_t& cursor = p.egress ? ei : ii;
        const std::span<const double> row{
            feat.data() + cursor * approx::PacketFeatures::kDim,
            approx::PacketFeatures::kDim};
        (p.egress ? egress_preds_ : ingress_preds_)[cursor] =
            model.predict_reference(row);
        ++cursor;
      }
    } else {
      if (n_egress > 0) {
        egress_model_.predict_batch(egress_feat_,
                                    std::span{egress_preds_});
      }
      if (n_ingress > 0) {
        ingress_model_.predict_batch(ingress_feat_,
                                     std::span{ingress_preds_});
      }
    }
    if (m_inferences_ != nullptr) {
      m_inferences_->inc(pending_.size());
      // Wall-clock cost of the whole batch; per-packet cost is this
      // over pending_batch().
      m_inference_ns_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  }
  // Outcomes replay in global arrival order: macro observations, stats,
  // and port reservations all happen in the same sequence — with the
  // same desired times — as the unbatched path.
  std::size_t ei = 0, ii = 0;
  for (Pending& p : pending_) {
    std::size_t& cursor = p.egress ? ei : ii;
    const std::vector<double>& feat = p.egress ? egress_feat_ : ingress_feat_;
    const std::span<const double> row{
        feat.data() + cursor * approx::PacketFeatures::kDim,
        approx::PacketFeatures::kDim};
    const approx::MicroModel::Prediction& prediction =
        (p.egress ? egress_preds_ : ingress_preds_)[cursor];
    ++cursor;
    apply_outcome(std::move(p), prediction, row);
  }
  pending_.clear();
  egress_feat_.clear();
  ingress_feat_.clear();
}

void ApproxCluster::apply_outcome(
    Pending&& p, const approx::MicroModel::Prediction& prediction,
    std::span<const double> features) {
  TierDecision decision;
  decision.drop = decide_drop(prediction.drop_probability, p.drop_draw);
  decision.latency_s = prediction.latency_seconds;
  apply_decision(std::move(p), ClusterTier::Ml, decision, features);
}

void ApproxCluster::apply_decision(Pending&& p, ClusterTier tier,
                                   TierDecision decision,
                                   std::span<const double> features) {
  const double latency = std::max(decision.latency_s, config_.min_latency_s);
  const bool drop = decision.drop;
  ++stats_.tier_packets[static_cast<std::size_t>(tier)];
  macro_.observe(latency, drop);
  if (probe_) {
    probe_->observe_packet(p.pkt.size_bytes(), drop);
    // Shadow comparison runs BEFORE the production delivery reserves the
    // port, so the queue-truth peek sees the pre-reservation backlog.
    if (probe_->shadow_admit(p.pkt.id)) {
      shadow_evaluate(p, features, latency, drop);
    }
  }
  if (drop) {
    ++stats_.predicted_drops;
    return;  // TCP on the endpoints recovers, as with a real queue drop
  }
  sim::SimTime desired = p.arrival + sim::SimTime::from_seconds_f(latency);
  // De-phasing skew (DESIGN.md §12): the packet tier's min-latency clamp
  // and the fluid tier's line-rate fallback are quantized, so two
  // clusters can compute deliveries into one core at the SAME nanosecond
  // — and the pop order of same-time cross-partition injections is
  // engine-dependent, which would make the core's queue order (and every
  // digest lane downstream) diverge between sequential and PDES. One
  // nanosecond per cluster index separates them deterministically; the
  // skew only adds delay, so the PDES lookahead bound (delivery delay >=
  // min_latency_s) is untouched. The Ml tier keeps the legacy schedule:
  // its latencies are continuous-valued, so exact ties have measure
  // zero there.
  if (tier != ClusterTier::Ml) {
    desired += sim::SimTime::from_ns(config_.cluster);
  }
  if (p.egress && p.dst_cluster == config_.cluster) {
    // Intra-cluster traffic of an approximated cluster. Normally elided
    // by the workload filter (paper §6.2); when present, the fabric model
    // delivers it directly to the destination host.
    ++stats_.intra_packets;
    deliver_ingress(std::move(p.pkt), desired);
    return;
  }
  if (p.egress) {
    ++stats_.egress_packets;
    deliver_egress(std::move(p.pkt), desired);
  } else {
    ++stats_.ingress_packets;
    deliver_ingress(std::move(p.pkt), desired);
  }
}

void ApproxCluster::shadow_evaluate(const Pending& p,
                                    std::span<const double> features,
                                    double model_latency, bool model_drop) {
  // Reference second opinion: whichever inference path production does
  // NOT use. Its recurrent state is disjoint from the production path's
  // (session vs ref_state_, DESIGN.md §6), so advancing it here is
  // invisible to the simulation. The reference hidden state only sees
  // the shadow-sampled feature subsequence — this is a drift *indicator*
  // fed the same per-packet features, not a replay of a full reference
  // run. Drop decisions reuse the packet's pre-drawn uniform (common
  // random numbers): disagreement measures the models, not the coin.
  approx::MicroModel& model = p.egress ? egress_model_ : ingress_model_;
  bool have_ref = false;
  bool ref_drop = model_drop;
  double ref_latency = model_latency;
  if (config_.reference_inference || model.trainable()) {
    const approx::MicroModel::Prediction ref =
        config_.reference_inference ? model.predict(features)
                                    : model.predict_reference(features);
    have_ref = true;
    ref_latency = std::max(ref.latency_seconds, config_.min_latency_s);
    ref_drop = decide_drop(ref.drop_probability, p.drop_draw);
  }
  // Queue-model ground truth: the fabric traversal a backlog-aware
  // queue would impose right now — current wait on the destination port
  // plus serialization, floored at the unloaded minimum. next_free() is
  // a read-only peek; nothing is reserved.
  const DeliverySerializer* port = nullptr;
  if (p.egress && p.dst_cluster != config_.cluster) {
    const auto path = net::compute_path(config_.spec, p.pkt.flow);
    if (path.len == 5) {
      port = &core_ports_[path.hops[2] - config_.spec.core_id(0)];
    }
  } else {
    port = &host_ports_[p.pkt.flow.dst_host %
                        config_.spec.hosts_per_cluster()];
  }
  bool queue_drop = false;
  double queue_latency = config_.min_latency_s;
  if (port != nullptr) {
    const sim::SimTime nf = port->next_free();
    const std::int64_t wait_ns =
        nf > p.arrival ? (nf - p.arrival).ns() : 0;
    queue_drop = wait_ns > config_.max_port_backlog.ns();
    const double tx_s = static_cast<double>(p.pkt.size_bytes()) * 8.0 /
                        config_.port_bandwidth_bps;
    queue_latency = std::max(config_.min_latency_s,
                             static_cast<double>(wait_ns) * 1e-9 + tx_s);
  }
  probe_->record_shadow(model_drop, model_latency, ref_drop, have_ref,
                        ref_latency, queue_drop, queue_latency);
}

void ApproxCluster::finalize_fidelity() {
  if (probe_) probe_->finalize(now().ns());
}

void ApproxCluster::deliver_egress(Packet pkt, sim::SimTime desired) {
  const auto path = net::compute_path(config_.spec, pkt.flow);
  if (path.len != 5) {
    throw std::logic_error(name() + ": egress packet without a core hop");
  }
  const std::uint32_t core_index =
      path.hops[2] - config_.spec.core_id(0);
  net::Switch* core = cores_.at(core_index);
  if (core == nullptr) {
    throw std::logic_error(name() + ": core " + std::to_string(core_index) +
                           " not attached");
  }
  const auto granted = core_ports_[core_index].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    if (probe_) probe_->observe_backlog(0, /*backlog_drop=*/true);
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  if (probe_) {
    probe_->observe_backlog((*granted - desired).ns(),
                            /*backlog_drop=*/false);
  }
  auto deliver = [core, pkt = std::move(pkt)]() mutable {
    core->handle_packet(std::move(pkt));
  };
  if (core_index < core_remotes_.size() && core_remotes_[core_index]) {
    core_remotes_[core_index](*granted, /*key=*/0, std::move(deliver));
  } else {
    schedule_at(*granted, std::move(deliver));
  }
}

void ApproxCluster::deliver_ingress(Packet pkt, sim::SimTime desired) {
  const std::uint32_t offset =
      pkt.flow.dst_host % config_.spec.hosts_per_cluster();
  tcp::Host* host = hosts_.at(offset);
  if (host == nullptr) {
    throw std::logic_error(name() + ": host offset " +
                           std::to_string(offset) + " not attached");
  }
  const auto granted = host_ports_[offset].try_reserve(
      desired, pkt.size_bytes(), config_.max_port_backlog);
  if (!granted) {
    ++stats_.backlog_drops;
    if (probe_) probe_->observe_backlog(0, /*backlog_drop=*/true);
    return;
  }
  if (*granted != desired) ++stats_.conflicts_resolved;
  if (probe_) {
    probe_->observe_backlog((*granted - desired).ns(),
                            /*backlog_drop=*/false);
  }
  schedule_at(*granted, [host, pkt = std::move(pkt)]() mutable {
    host->handle_packet(std::move(pkt));
  });
}

}  // namespace esim::core
