// GranularityController: the actuator of the adaptive multi-granularity
// direction (DESIGN.md §12). Rides the ApproxCluster macro-classifier
// timer, reads the fidelity observatory's congestion classification
// (DESIGN.md §11 — the runtime signal PR landed one layer below), and
// executes demote/promote transitions with hysteresis:
//
//   Quiescent  -> Fluid   (demote: max-min rate model, cheapest)
//   Nominal    -> Ml      (the paper's trained black box)
//   Congested  -> Packet  (promote: queue-model fidelity where ML drift
//                          would be most expensive)
//
// Determinism: the controller's only inputs are the probe's windowed
// EWMAs — functions of the packets admitted to this cluster, which the
// determinism contract already makes engine-invariant — and the macro
// timer fires at identical virtual times in sequential and PDES runs
// (a cluster lives inside exactly one partition). Transitions therefore
// happen at identical virtual times on every engine, which is what the
// digest transition lane asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cluster_backend.h"
#include "telemetry/fidelity.h"

namespace esim::telemetry {
class Counter;
class Gauge;
class Registry;
}

namespace esim::core {

/// One executed tier switch, in virtual time. Folded into the digest's
/// engine-invariant transition lane and exported via ApproxCluster.
struct TierTransition {
  std::int64_t t_ns = 0;
  ClusterTier from = ClusterTier::Ml;
  ClusterTier to = ClusterTier::Ml;

  bool operator==(const TierTransition&) const = default;
};

/// Per-cluster transition state machine. Owned by ApproxCluster in
/// adaptive mode; the cluster calls on_macro_window() once per macro
/// tick, after flushing its prediction queue and advancing the probe.
class GranularityController {
 public:
  /// `probe` supplies the congestion classification and must outlive the
  /// controller. `registry` may be null (telemetry off).
  GranularityController(const ClusterTierPolicy& policy,
                        std::uint32_t cluster,
                        const telemetry::ClusterFidelityProbe* probe,
                        telemetry::Registry* registry);

  /// The deterministic transition rule.
  static ClusterTier target_for(telemetry::CongestionState s) {
    switch (s) {
      case telemetry::CongestionState::Quiescent:
        return ClusterTier::Fluid;
      case telemetry::CongestionState::Congested:
        return ClusterTier::Packet;
      case telemetry::CongestionState::Nominal:
        break;
    }
    return ClusterTier::Ml;
  }

  ClusterTier tier() const { return tier_; }

  /// Advances the dwell clock and, when the classification demands a
  /// different tier and the min-dwell hysteresis allows it, executes the
  /// transition. Returns the new tier when one fired at this boundary.
  std::optional<ClusterTier> on_macro_window(std::int64_t now_ns);

  /// Every executed transition, in virtual-time order.
  const std::vector<TierTransition>& transitions() const { return trace_; }

 private:
  ClusterTierPolicy policy_;
  const telemetry::ClusterFidelityProbe* probe_;
  ClusterTier tier_;
  std::uint32_t dwell_windows_ = 0;
  std::vector<TierTransition> trace_;
  telemetry::Gauge* g_tier_ = nullptr;
  telemetry::Counter* m_transitions_ = nullptr;        // per cluster
  telemetry::Counter* m_transitions_total_ = nullptr;  // all clusters
};

}  // namespace esim::core
