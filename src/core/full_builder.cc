#include "core/full_builder.h"

#include <unordered_map>

namespace esim::core {

using net::ClosSpec;
using net::HostId;
using net::Link;
using net::Switch;
using net::SwitchId;

std::vector<const CoreAttachment*> BuiltNetwork::attachments_of(
    std::uint32_t cluster) const {
  std::vector<const CoreAttachment*> out;
  for (const auto& a : core_links) {
    if (a.cluster == cluster) out.push_back(&a);
  }
  return out;
}

BuiltNetwork build_full_network(sim::Simulator& sim,
                                const NetworkConfig& config) {
  const ClosSpec& spec = config.spec;
  spec.validate();

  BuiltNetwork out;
  out.spec = spec;
  out.hosts.resize(spec.total_hosts());
  out.switches.resize(spec.total_switches());
  out.host_uplinks.resize(spec.total_hosts());
  out.host_downlinks.resize(spec.total_hosts());

  // --- components ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    out.hosts[h] =
        sim.add_component<tcp::Host>(spec.host_name(h), h, config.tcp);
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      const SwitchId id = spec.tor_id(c, t);
      out.switches[id] = sim.add_component<Switch>(
          spec.tor_name(c, t), id, config.switch_processing);
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      const SwitchId id = spec.agg_id(c, a);
      out.switches[id] = sim.add_component<Switch>(
          spec.agg_name(c, a), id, config.switch_processing);
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    const SwitchId id = spec.core_id(k);
    out.switches[id] = sim.add_component<Switch>(spec.core_name(k), id,
                                                 config.switch_processing);
  }
  if (!config.ecmp_port_sensitive) {
    for (auto* sw : out.switches) sw->set_port_sensitive_ecmp(false);
  }

  // --- links & ports ---
  // Port index bookkeeping: (switch id, neighbor key) -> port. FIB
  // candidate ordering relies on insertion order below being canonical
  // (hosts by id, aggs by index, cores by index, clusters by index).
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> port_of(
      spec.total_switches());
  constexpr std::uint64_t kHostKey = 1ULL << 40;
  constexpr std::uint64_t kSwitchKey = 2ULL << 40;

  auto link_name = [](const std::string& a, const std::string& b) {
    return a + "->" + b;
  };

  // Host <-> ToR.
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const SwitchId tor = spec.tor_of_host(h);
    Switch* tor_sw = out.switches[tor];
    tcp::Host* host = out.hosts[h];
    auto* up = sim.add_component<Link>(link_name(host->name(),
                                                 tor_sw->name()),
                                       config.host_uplink, tor_sw);
    auto* down = sim.add_component<Link>(
        link_name(tor_sw->name(), host->name()), config.fabric_link, host);
    host->set_uplink(up);
    out.host_uplinks[h] = up;
    out.host_downlinks[h] = down;
    port_of[tor][kHostKey | h] = tor_sw->add_port(down);
  }

  // ToR <-> Agg (every ToR to every Agg of its cluster, aggs ascending).
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      Switch* tor_sw = out.switches[spec.tor_id(c, t)];
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        Switch* agg_sw = out.switches[spec.agg_id(c, a)];
        auto* up = sim.add_component<Link>(
            link_name(tor_sw->name(), agg_sw->name()), config.fabric_link,
            agg_sw);
        auto* down = sim.add_component<Link>(
            link_name(agg_sw->name(), tor_sw->name()), config.fabric_link,
            tor_sw);
        port_of[tor_sw->id()][kSwitchKey | agg_sw->id()] =
            tor_sw->add_port(up);
        port_of[agg_sw->id()][kSwitchKey | tor_sw->id()] =
            agg_sw->add_port(down);
        out.intra_fabric_links.emplace_back(c, up);
        out.intra_fabric_links.emplace_back(c, down);
      }
    }
  }

  // Agg <-> Core (every Agg to every Core, cores ascending; core ports
  // are added cluster-major then agg-major, giving the canonical
  // ascending-agg order within each cluster).
  const Link::Config& core_cfg = config.core_link_config();
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      Switch* agg_sw = out.switches[spec.agg_id(c, a)];
      for (std::uint32_t k = 0; k < spec.cores; ++k) {
        Switch* core_sw = out.switches[spec.core_id(k)];
        auto* up = sim.add_component<Link>(
            link_name(agg_sw->name(), core_sw->name()), core_cfg, core_sw);
        auto* down = sim.add_component<Link>(
            link_name(core_sw->name(), agg_sw->name()), core_cfg, agg_sw);
        port_of[agg_sw->id()][kSwitchKey | core_sw->id()] =
            agg_sw->add_port(up);
        port_of[core_sw->id()][kSwitchKey | agg_sw->id()] =
            core_sw->add_port(down);
        out.core_links.push_back(CoreAttachment{c, a, k, up, down});
      }
    }
  }

  // --- FIBs ---
  for (HostId dst = 0; dst < spec.total_hosts(); ++dst) {
    const std::uint32_t dst_cluster = spec.cluster_of_host(dst);
    const SwitchId dst_tor = spec.tor_of_host(dst);

    // ToRs.
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
        Switch* tor_sw = out.switches[spec.tor_id(c, t)];
        if (tor_sw->id() == dst_tor) {
          tor_sw->set_route(dst, {port_of[tor_sw->id()].at(kHostKey | dst)});
        } else {
          std::vector<std::uint32_t> ups;
          for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
            ups.push_back(port_of[tor_sw->id()].at(
                kSwitchKey | spec.agg_id(c, a)));
          }
          tor_sw->set_route(dst, std::move(ups));
        }
      }
    }

    // Aggs.
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        Switch* agg_sw = out.switches[spec.agg_id(c, a)];
        if (c == dst_cluster) {
          agg_sw->set_route(dst,
                            {port_of[agg_sw->id()].at(kSwitchKey | dst_tor)});
        } else {
          std::vector<std::uint32_t> ups;
          for (std::uint32_t k = 0; k < spec.cores; ++k) {
            ups.push_back(
                port_of[agg_sw->id()].at(kSwitchKey | spec.core_id(k)));
          }
          agg_sw->set_route(dst, std::move(ups));
        }
      }
    }

    // Cores: ECMP across the destination cluster's aggs (ascending).
    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = out.switches[spec.core_id(k)];
      std::vector<std::uint32_t> downs;
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        downs.push_back(port_of[core_sw->id()].at(
            kSwitchKey | spec.agg_id(dst_cluster, a)));
      }
      core_sw->set_route(dst, std::move(downs));
    }
  }

  return out;
}

}  // namespace esim::core
