// Schedule-conflict resolution (paper §4.2):
//
// "We note that predicted latency can sometimes result in impossible
//  schedules if two packets are scheduled for the same time. In this case,
//  the one processed first is given priority, with conflicting packet sent
//  at the next possible time."
//
// A DeliverySerializer guards one model output port (a host NIC or a core
// switch input): each granted delivery reserves the port for the packet's
// serialization time, and a delivery that would land inside a reservation
// is pushed to the next free instant.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "sim/time.h"

namespace esim::core {

/// Serializes model-predicted deliveries on one port.
class DeliverySerializer {
 public:
  /// `bandwidth_bps` is the port's line rate.
  explicit DeliverySerializer(double bandwidth_bps)
      : bandwidth_bps_{bandwidth_bps} {
    if (bandwidth_bps <= 0) {
      throw std::invalid_argument(
          "DeliverySerializer: bandwidth must be positive");
    }
  }

  /// Grants a delivery slot: returns max(desired, next free instant) and
  /// reserves the port for `size_bytes` of serialization after it.
  sim::SimTime reserve(sim::SimTime desired, std::uint32_t size_bytes) {
    const sim::SimTime granted =
        desired > next_free_ ? desired : next_free_;
    const double tx_s =
        static_cast<double>(size_bytes) * 8.0 / bandwidth_bps_;
    next_free_ = granted + sim::SimTime::from_ns(static_cast<std::int64_t>(
                               std::llround(tx_s * 1e9)));
    return granted;
  }

  /// Like reserve(), but refuses (returns nullopt, reserving nothing)
  /// when the packet would have to wait more than `max_backlog` past its
  /// desired time. This mirrors the drop-tail queue the emulated port
  /// had in the full-fidelity fabric: a real port would have dropped the
  /// packet rather than queue it unboundedly, so a hybrid run must not
  /// accumulate an infinitely deep virtual queue either.
  std::optional<sim::SimTime> try_reserve(sim::SimTime desired,
                                          std::uint32_t size_bytes,
                                          sim::SimTime max_backlog) {
    if (next_free_ > desired + max_backlog) return std::nullopt;
    return reserve(desired, size_bytes);
  }

  /// Next instant at which the port is free.
  sim::SimTime next_free() const { return next_free_; }

  /// Clears all reservations.
  void reset() { next_free_ = sim::SimTime{}; }

 private:
  double bandwidth_bps_;
  sim::SimTime next_free_;
};

}  // namespace esim::core
