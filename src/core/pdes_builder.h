// Partitioned leaf-spine assembly for the PDES experiment (Figure 1).
//
// Racks (a ToR plus its hosts) and spine switches are distributed
// round-robin over the engine's partitions; every ToR connects to every
// spine, so most fabric links cross partitions — the dense
// interconnection that makes conservative PDES struggle on data center
// topologies (paper §2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/full_builder.h"
#include "sim/parallel.h"

namespace esim::core {

/// Handles to a partitioned build. Pointers are owned by the partitions'
/// simulators; index i of `hosts`/`switches` is the dense id.
struct PdesNetwork {
  net::ClosSpec spec;
  std::vector<tcp::Host*> hosts;
  std::vector<net::Switch*> switches;
  /// Partition owning each switch (dense by switch id).
  std::vector<std::uint32_t> partition_of_switch;
  /// Partition owning each host.
  std::vector<std::uint32_t> partition_of_host;
  /// Fabric links that cross partitions (for accounting).
  std::uint64_t cross_partition_links = 0;
};

/// Builds a leaf-spine (spec.clusters == 1, spec.cores == 0) across the
/// engine's partitions. The engine's lookahead must be <= the fabric
/// link propagation delay (checked).
PdesNetwork build_leaf_spine_partitioned(sim::ParallelEngine& engine,
                                         const NetworkConfig& config);

}  // namespace esim::core
