// Partitioned Clos assembly for the PDES experiments.
//
// build_clos_partitioned places every switch (and the hosts riding on
// their ToRs) into the partition chosen by a core::PartitionPlan, wires
// the same canonical topology as core/full_builder (identical FIB
// candidate ordering, so deterministic ECMP picks the same paths), and
// registers a remote scheduler on every link whose endpoints live in
// different partitions.
//
// It also programs the engine's per-pair lookahead matrix from the wired
// topology: L[a][b] becomes the minimum propagation delay over all
// a -> b cross links (a message handed to such a link at time t cannot
// arrive before t + propagation), and pairs with no connecting link get
// ParallelEngine::infinite_lookahead() so they never constrain the
// window in per-pair mode — and any send over them is rejected.
//
// build_leaf_spine_partitioned remains as the Figure-1 entry point: the
// degenerate single-cluster case, now routed through the same generic
// builder.
#pragma once

#include <cstdint>
#include <vector>

#include "core/full_builder.h"
#include "core/partitioner.h"
#include "sim/parallel.h"

namespace esim::core {

/// Handles to a partitioned build. Pointers are owned by the partitions'
/// simulators; index i of `hosts`/`switches` is the dense id.
struct PdesNetwork {
  net::ClosSpec spec;
  std::vector<tcp::Host*> hosts;
  std::vector<net::Switch*> switches;
  /// The placement this build used (includes cut accounting).
  PartitionPlan plan;
  /// Partition owning each switch (dense by switch id; == plan's).
  std::vector<std::uint32_t> partition_of_switch;
  /// Partition owning each host.
  std::vector<std::uint32_t> partition_of_host;
  /// Fabric links that cross partitions (directed; == plan.cut_links).
  std::uint64_t cross_partition_links = 0;
};

/// Builds the full Clos of `config.spec` across the engine's partitions,
/// placing switches according to `policy`. The engine's (global)
/// lookahead must be <= every link propagation delay (checked).
PdesNetwork build_clos_partitioned(
    sim::ParallelEngine& engine, const NetworkConfig& config,
    PlacementPolicy policy = PlacementPolicy::graph_cut);

/// Builds a leaf-spine (spec.clusters == 1, spec.cores == 0) across the
/// engine's partitions. Thin wrapper over build_clos_partitioned.
PdesNetwork build_leaf_spine_partitioned(
    sim::ParallelEngine& engine, const NetworkConfig& config,
    PlacementPolicy policy = PlacementPolicy::graph_cut);

}  // namespace esim::core
