#include "core/cluster_backend.h"

#include <algorithm>

namespace esim::core {

const char* to_string(ClusterTier t) {
  switch (t) {
    case ClusterTier::Packet:
      return "packet";
    case ClusterTier::Ml:
      return "ml";
    case ClusterTier::Fluid:
      return "fluid";
  }
  return "?";
}

TierDecision MlTierBackend::admit(const AdmitContext& ctx) {
  approx::MicroModel& model = ctx.egress ? *egress_ : *ingress_;
  const approx::MicroModel::Prediction prediction =
      reference_ ? model.predict_reference(ctx.features)
                 : model.predict(ctx.features);
  TierDecision d;
  // Same rule as ApproxCluster::decide_drop: the pre-drawn uniform is
  // replayed (RNG draw-order contract); threshold mode draws nothing.
  d.drop = sample_drops_ ? ctx.drop_draw < prediction.drop_probability
                         : prediction.drop_probability > 0.5;
  d.latency_s = prediction.latency_seconds;
  return d;
}

FluidClusterBackend::FluidClusterBackend(const Config& config)
    : config_{config},
      model_{std::make_unique<flowsim::FlowLevelSimulator>(
          config.spec, config.bandwidth_bps)} {}

std::size_t FluidClusterBackend::tracked_flows() const {
  std::size_t n = flows_.size();
  for (const auto& [key, fk] : pending_) {
    if (flows_.find(key) == flows_.end()) ++n;
  }
  return n;
}

void FluidClusterBackend::flush_pending() {
  // Canonical key order: tied admissions buffered in any pop order flush
  // identically, so fluid ids — and the model's float summation order —
  // are engine-invariant.
  const sim::SimTime t = sim::SimTime::from_ns(cur_instant_ns_);
  for (const auto& [key, fk] : pending_) {
    auto it = flows_.find(key);
    if (it == flows_.end()) {
      const std::uint64_t id = next_id_++;
      model_->add_flow(id, fk.src_host, fk.dst_host, config_.flow_bytes, t);
      flows_.emplace(key, Tracked{id, cur_instant_ns_});
      continue;
    }
    it->second.last_seen_ns = cur_instant_ns_;
    if (model_->rate_of(it->second.fluid_id) <= 0.0) {
      // Budget drained mid-tracking: re-arm under a fresh id so a
      // long-lived flow keeps holding its share.
      model_->remove_flow(it->second.fluid_id);
      it->second.fluid_id = next_id_++;
      model_->add_flow(it->second.fluid_id, fk.src_host, fk.dst_host,
                       config_.flow_bytes, t);
    }
  }
  pending_.clear();
}

void FluidClusterBackend::sync(std::int64_t t_ns) {
  if (t_ns <= cur_instant_ns_) return;
  // Leaving the current instant: its buffered touches take effect now.
  flush_pending();
  // Idle-expiry sweeps at every window boundary crossed. Lazy: whichever
  // event (packet or macro timer) first reaches a boundary runs its
  // sweep, so a packet tied with the timer at the boundary nanosecond
  // sees post-sweep state in either pop order.
  const std::int64_t horizon =
      static_cast<std::int64_t>(config_.idle_windows) * config_.window_ns;
  while (synced_boundary_ns_ + config_.window_ns <= t_ns) {
    synced_boundary_ns_ += config_.window_ns;
    model_->advance_to(sim::SimTime::from_ns(synced_boundary_ns_));
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.last_seen_ns <= synced_boundary_ns_ - horizon) {
        model_->remove_flow(it->second.fluid_id);
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
  }
  model_->advance_to(sim::SimTime::from_ns(t_ns));
  cur_instant_ns_ = t_ns;
}

TierDecision FluidClusterBackend::admit(const AdmitContext& ctx) {
  sync(ctx.arrival.ns());
  // Read-only against the flushed state: a flow first seen this instant
  // (or whose budget drained) serializes at line rate and joins the
  // max-min allocation from the next instant on.
  double rate = 0.0;
  const Key key = key_of(ctx.pkt.flow);
  if (const auto it = flows_.find(key); it != flows_.end()) {
    rate = model_->rate_of(it->second.fluid_id);
  }
  pending_.emplace(key, ctx.pkt.flow);
  TierDecision d;
  const double bits = static_cast<double>(ctx.pkt.size_bytes()) * 8.0;
  d.latency_s = bits / (rate > 0.0 ? rate : config_.bandwidth_bps);
  return d;  // the fluid tier never drops
}

void FluidClusterBackend::on_macro_window(sim::SimTime now) {
  sync(now.ns());
}

void FluidClusterBackend::on_activated(sim::SimTime now) {
  // A tier period starts from a clean rate model: state is a pure
  // function of the packets admitted during the period, which is what
  // makes transition traces engine-invariant.
  model_ = std::make_unique<flowsim::FlowLevelSimulator>(
      config_.spec, config_.bandwidth_bps);
  model_->advance_to(now);
  flows_.clear();
  pending_.clear();
  cur_instant_ns_ = now.ns();
  synced_boundary_ns_ = (now.ns() / config_.window_ns) * config_.window_ns;
}

}  // namespace esim::core
