// Hybrid network assembly: one full-fidelity cluster + all core switches,
// with every other cluster's fabric replaced by an ApproxCluster (the
// at-scale configuration of the paper's Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "approx/micro_model.h"
#include "core/approx_cluster.h"
#include "core/full_builder.h"

namespace esim::core {

/// Handles to a hybrid build. Raw pointers owned by the Simulator.
/// Entries for components that do not exist in hybrid mode (the ToR/Agg
/// switches and host downlinks of approximated clusters) are nullptr.
struct HybridNetwork {
  net::ClosSpec spec;
  std::uint32_t full_cluster = 0;
  std::vector<tcp::Host*> hosts;           // dense, all clusters
  std::vector<net::Switch*> switches;      // full cluster + cores only
  std::vector<ApproxCluster*> clusters;    // per cluster; full one nullptr
  std::vector<net::Link*> host_uplinks;    // dense, all hosts
  std::vector<net::Link*> host_downlinks;  // full cluster hosts only
  std::vector<CoreAttachment> core_links;  // full cluster only

  /// True if `h` lives in the full-fidelity cluster.
  bool is_full_fidelity(net::HostId h) const {
    return spec.cluster_of_host(h) == full_cluster;
  }
};

/// Extra knobs for the approximated clusters.
struct HybridConfig {
  NetworkConfig net;
  /// Which cluster stays full-fidelity.
  std::uint32_t full_cluster = 0;
  /// ApproxCluster behaviour (spec/cluster fields are filled per cluster).
  ApproxCluster::Config approx;
};

/// Builds the hybrid topology in `sim`, copying the trained models into
/// each ApproxCluster. Requires spec.clusters >= 2.
HybridNetwork build_hybrid_network(sim::Simulator& sim,
                                   const HybridConfig& config,
                                   const approx::MicroModel& ingress_model,
                                   const approx::MicroModel& egress_model);

}  // namespace esim::core
