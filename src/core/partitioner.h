// Deterministic topology-aware partitioning of a Clos fabric.
//
// The paper's Figure 1 argument is that conservative PDES collapses when
// cross-partition links are dense: every crossing shrinks the safe window
// and adds a message per traversal. Placement is therefore the first-order
// lever — `rack % P` round-robin maximizes crossings on a Clos (it splits
// every cluster across every partition), while a cut-minimizing placement
// keeps whole clusters together so only the agg<->core fabric crosses.
//
// make_partition_plan builds the switch-level link multigraph (hosts ride
// with their ToR; host<->ToR links can therefore never cross) and runs a
// greedy Kernighan–Lin / Fiduccia–Mattheyses-style refinement:
//
//   1. Seed: switches are laid out in locality order (cluster 0's ToRs,
//      then its aggs, cluster 1's ..., then cores) and chunked into P
//      contiguous, weight-balanced blocks. Node weight models event load
//      (a ToR carries its hosts).
//   2. Refine: repeated deterministic passes move the single best
//      (gain, node id, target partition)-ordered node whose move reduces
//      the number of crossing links — or keeps it equal while strictly
//      improving balance — subject to a per-partition weight cap. Passes
//      stop when no admissible move remains.
//
// The result depends only on (spec, P, policy) — no RNG, no iteration
// over unordered containers — so every engine and every run of the same
// build sees the identical placement; the determinism gate
// (esim_diffcheck) relies on that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/clos.h"

namespace esim::core {

/// Placement policy for partitioned builds.
enum class PlacementPolicy : std::uint8_t {
  /// Legacy rack-round-robin (`rack r -> partition r % P`), kept as the
  /// baseline the scaling bench compares against.
  round_robin,
  /// Greedy KL/FM-style cut minimization (the default).
  graph_cut,
};

/// A deterministic switch -> partition assignment plus its cut accounting.
struct PartitionPlan {
  std::uint32_t partitions = 0;
  PlacementPolicy policy = PlacementPolicy::graph_cut;
  /// Partition owning each switch, dense by SwitchId.
  std::vector<std::uint32_t> partition_of_switch;
  /// Directed fabric links whose endpoints land in different partitions.
  std::uint64_t cut_links = 0;
  /// All directed fabric links (ToR<->agg and agg<->core, both
  /// directions; host<->ToR links never cross and are not counted).
  std::uint64_t total_links = 0;

  /// Partition owning host `h` (its ToR's partition).
  std::uint32_t partition_of_host(const net::ClosSpec& spec,
                                  net::HostId h) const {
    return partition_of_switch[spec.tor_of_host(h)];
  }

  /// "graph_cut: 24/160 links cross (15.0%)" — for bench/report output.
  std::string summary() const;
};

const char* placement_policy_name(PlacementPolicy policy);

/// Computes a partition plan for `spec` over `partitions` partitions.
/// Deterministic and engine-invariant: equal inputs give equal plans.
PartitionPlan make_partition_plan(const net::ClosSpec& spec,
                                  std::uint32_t partitions,
                                  PlacementPolicy policy);

/// Deterministically assigns `weights.size()` items to `partitions` bins,
/// balancing total weight (greedy: each item goes to the currently
/// lightest bin; ties to the lowest index). Used for island placements
/// (e.g. approximated clusters over partitions 1..P-1) where no links
/// exist between items so cut size is not at stake.
std::vector<std::uint32_t> assign_balanced(
    const std::vector<std::uint64_t>& weights, std::uint32_t partitions);

}  // namespace esim::core
