#include "core/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace esim::core {
namespace {

using net::ClosSpec;
using net::SwitchId;

/// Undirected switch-level multigraph: adjacency with per-edge
/// multiplicity (a ToR-agg pair contributes 2 directed links = weight 2).
struct LinkGraph {
  struct Edge {
    std::uint32_t to;
    std::uint32_t links;  // directed links on this pair (always 2 here)
  };
  std::vector<std::vector<Edge>> adj;
  std::vector<std::uint64_t> node_weight;
  std::uint64_t total_directed_links = 0;

  void add_pair(std::uint32_t a, std::uint32_t b) {
    adj[a].push_back({b, 2});
    adj[b].push_back({a, 2});
    total_directed_links += 2;
  }
};

LinkGraph build_link_graph(const ClosSpec& spec) {
  LinkGraph g;
  g.adj.resize(spec.total_switches());
  g.node_weight.resize(spec.total_switches());
  // Event load concentrates at ToRs (their hosts' TCP stacks execute in
  // the same partition); aggs and cores only forward.
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      g.node_weight[spec.tor_id(c, t)] = 1 + spec.hosts_per_tor;
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      g.node_weight[spec.agg_id(c, a)] = 1;
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    g.node_weight[spec.core_id(k)] = 1;
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        g.add_pair(spec.tor_id(c, t), spec.agg_id(c, a));
      }
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      for (std::uint32_t k = 0; k < spec.cores; ++k) {
        g.add_pair(spec.agg_id(c, a), spec.core_id(k));
      }
    }
  }
  return g;
}

std::uint64_t count_cut(const LinkGraph& g,
                        const std::vector<std::uint32_t>& part) {
  std::uint64_t cut = 0;
  for (std::uint32_t v = 0; v < g.adj.size(); ++v) {
    for (const auto& e : g.adj[v]) {
      if (v < e.to && part[v] != part[e.to]) cut += e.links;
    }
  }
  return cut;
}

std::vector<std::uint32_t> round_robin_assignment(const ClosSpec& spec,
                                                  std::uint32_t P) {
  // The historical placement: rack r -> partition r % P; aggs and cores
  // keep rotating after (cluster-major).
  std::vector<std::uint32_t> part(spec.total_switches(), 0);
  std::uint32_t next = 0;
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      part[spec.tor_id(c, t)] = next++ % P;
    }
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      part[spec.agg_id(c, a)] = next++ % P;
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    part[spec.core_id(k)] = next++ % P;
  }
  return part;
}

/// Locality order: each cluster's ToRs then aggs, clusters ascending,
/// cores last — contiguous chunks of this order keep clusters whole.
std::vector<std::uint32_t> locality_order(const ClosSpec& spec) {
  std::vector<std::uint32_t> order;
  order.reserve(spec.total_switches());
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      order.push_back(spec.tor_id(c, t));
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      order.push_back(spec.agg_id(c, a));
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    order.push_back(spec.core_id(k));
  }
  return order;
}

std::vector<std::uint32_t> contiguous_seed(const ClosSpec& spec,
                                           const LinkGraph& g,
                                           std::uint32_t P) {
  const auto order = locality_order(spec);
  std::vector<std::uint32_t> part(spec.total_switches(), 0);
  std::uint64_t remaining_weight = 0;
  for (const auto w : g.node_weight) remaining_weight += w;

  std::uint32_t p = 0;
  std::uint64_t bin_weight = 0;
  std::uint32_t remaining_bins = P;
  for (const std::uint32_t v : order) {
    const std::uint64_t w = g.node_weight[v];
    // Quota for the current bin given what is left to place.
    const std::uint64_t quota =
        (remaining_weight + remaining_bins - 1) / remaining_bins;
    // Close the bin when it has reached its quota, or when adding v would
    // overshoot it by more than leaving v out undershoots — never close
    // the last bin, and never close an empty one.
    if (p + 1 < P && bin_weight > 0) {
      const bool close =
          bin_weight >= quota ||
          (bin_weight + w > quota &&
           (bin_weight + w) - quota > quota - bin_weight);
      if (close) {
        remaining_weight -= bin_weight;
        --remaining_bins;
        ++p;
        bin_weight = 0;
      }
    }
    part[v] = p;
    bin_weight += w;
  }
  return part;
}

/// Greedy KL/FM refinement: move nodes between partitions while each move
/// strictly reduces the cut, or keeps it equal while strictly improving
/// balance, under a weight cap. Deterministic: candidate moves are ranked
/// by (gain desc, node id asc, target partition asc).
void refine(const ClosSpec& spec, const LinkGraph& g, std::uint32_t P,
            std::vector<std::uint32_t>& part) {
  const std::uint32_t N = spec.total_switches();
  std::vector<std::uint64_t> part_weight(P, 0);
  std::uint64_t total_weight = 0;
  for (std::uint32_t v = 0; v < N; ++v) {
    part_weight[part[v]] += g.node_weight[v];
    total_weight += g.node_weight[v];
  }
  // Allow ~30% imbalance over the ideal share; every partition must also
  // be able to hold at least the heaviest single node.
  std::uint64_t max_node = 0;
  for (const auto w : g.node_weight) max_node = std::max(max_node, w);
  const std::uint64_t cap =
      std::max<std::uint64_t>((total_weight + P - 1) / P * 13 / 10, max_node);
  // No partition may be drained below half its ideal share: cut chasing
  // must not starve a worker of load (an empty partition is wasted
  // parallelism even if it shaves a link off the cut).
  const std::uint64_t floor = total_weight / P / 2;

  // Connection weight of node v into each partition (links to neighbors
  // placed there); recomputed per candidate — N and degree are both small
  // (hundreds) next to the simulation the plan serves.
  std::vector<std::int64_t> conn(P);
  const int kMaxPasses = 32;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    bool moved = false;
    for (std::uint32_t v = 0; v < N; ++v) {
      const std::uint32_t from = part[v];
      if (part_weight[from] - g.node_weight[v] < floor) continue;
      std::fill(conn.begin(), conn.end(), 0);
      for (const auto& e : g.adj[v]) conn[part[e.to]] += e.links;

      std::int64_t best_gain = 0;
      std::uint32_t best_to = from;
      bool best_balance_gain = false;
      for (std::uint32_t to = 0; to < P; ++to) {
        if (to == from) continue;
        if (part_weight[to] + g.node_weight[v] > cap) continue;
        const std::int64_t gain = conn[to] - conn[from];
        const bool balance_gain =
            part_weight[to] + g.node_weight[v] < part_weight[from];
        if (gain > 0 && gain > best_gain) {
          best_gain = gain;
          best_to = to;
          best_balance_gain = balance_gain;
        } else if (gain == 0 && best_to == from && balance_gain) {
          // Zero-gain move that strictly improves balance: admissible,
          // terminates because imbalance strictly decreases.
          best_gain = 0;
          best_to = to;
          best_balance_gain = true;
        }
      }
      (void)best_balance_gain;
      if (best_to != from) {
        part_weight[from] -= g.node_weight[v];
        part_weight[best_to] += g.node_weight[v];
        part[v] = best_to;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::round_robin:
      return "round_robin";
    case PlacementPolicy::graph_cut:
      return "graph_cut";
  }
  return "?";
}

std::string PartitionPlan::summary() const {
  char buf[128];
  const double pct =
      total_links == 0
          ? 0.0
          : 100.0 * static_cast<double>(cut_links) /
                static_cast<double>(total_links);
  std::snprintf(buf, sizeof(buf), "%s: %llu/%llu links cross (%.1f%%)",
                placement_policy_name(policy),
                static_cast<unsigned long long>(cut_links),
                static_cast<unsigned long long>(total_links), pct);
  return buf;
}

PartitionPlan make_partition_plan(const net::ClosSpec& spec,
                                  std::uint32_t partitions,
                                  PlacementPolicy policy) {
  spec.validate();
  if (partitions == 0) {
    throw std::invalid_argument("make_partition_plan: need >= 1 partition");
  }
  const LinkGraph g = build_link_graph(spec);

  PartitionPlan plan;
  plan.partitions = partitions;
  plan.policy = policy;
  plan.total_links = g.total_directed_links;
  if (partitions == 1) {
    plan.partition_of_switch.assign(spec.total_switches(), 0);
    plan.cut_links = 0;
    return plan;
  }
  switch (policy) {
    case PlacementPolicy::round_robin:
      plan.partition_of_switch = round_robin_assignment(spec, partitions);
      break;
    case PlacementPolicy::graph_cut: {
      plan.partition_of_switch = contiguous_seed(spec, g, partitions);
      refine(spec, g, partitions, plan.partition_of_switch);
      break;
    }
  }
  plan.cut_links = count_cut(g, plan.partition_of_switch);
  return plan;
}

std::vector<std::uint32_t> assign_balanced(
    const std::vector<std::uint64_t>& weights, std::uint32_t partitions) {
  if (partitions == 0) {
    throw std::invalid_argument("assign_balanced: need >= 1 partition");
  }
  std::vector<std::uint32_t> out(weights.size(), 0);
  std::vector<std::uint64_t> bin(partitions, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    std::uint32_t lightest = 0;
    for (std::uint32_t p = 1; p < partitions; ++p) {
      if (bin[p] < bin[lightest]) lightest = p;
    }
    out[i] = lightest;
    bin[lightest] += weights[i];
  }
  return out;
}

}  // namespace esim::core
