#include "core/pdes_builder.h"

#include <stdexcept>

namespace esim::core {

using net::ClosSpec;
using net::HostId;
using net::Link;
using net::Switch;
using net::SwitchId;

PdesNetwork build_leaf_spine_partitioned(sim::ParallelEngine& engine,
                                         const NetworkConfig& config) {
  const ClosSpec& spec = config.spec;
  spec.validate();
  if (spec.clusters != 1 || spec.cores != 0) {
    throw std::invalid_argument(
        "build_leaf_spine_partitioned: spec must be leaf-spine");
  }
  if (engine.lookahead() > config.fabric_link.propagation ||
      engine.lookahead() > config.host_uplink.propagation) {
    throw std::invalid_argument(
        "build_leaf_spine_partitioned: engine lookahead exceeds link "
        "propagation (causality would break)");
  }
  const std::uint32_t P = engine.num_partitions();

  PdesNetwork out;
  out.spec = spec;
  out.hosts.resize(spec.total_hosts());
  out.switches.resize(spec.total_switches());
  out.partition_of_switch.resize(spec.total_switches());
  out.partition_of_host.resize(spec.total_hosts());

  // Placement: rack r -> partition r % P; spine s keeps rotating after.
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    out.partition_of_switch[spec.tor_id(0, t)] = t % P;
  }
  for (std::uint32_t s = 0; s < spec.aggs_per_cluster; ++s) {
    out.partition_of_switch[spec.agg_id(0, s)] =
        (spec.tors_per_cluster + s) % P;
  }
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    out.partition_of_host[h] =
        out.partition_of_switch[spec.tor_of_host(h)];
  }

  // Components, each inside its partition's simulator.
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    const SwitchId id = spec.tor_id(0, t);
    auto& psim = engine.partition(out.partition_of_switch[id]).sim();
    out.switches[id] = psim.add_component<Switch>(
        spec.tor_name(0, t), id, config.switch_processing);
  }
  for (std::uint32_t s = 0; s < spec.aggs_per_cluster; ++s) {
    const SwitchId id = spec.agg_id(0, s);
    auto& psim = engine.partition(out.partition_of_switch[id]).sim();
    out.switches[id] = psim.add_component<Switch>(
        spec.agg_name(0, s), id, config.switch_processing);
  }
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    auto& psim = engine.partition(out.partition_of_host[h]).sim();
    out.hosts[h] =
        psim.add_component<tcp::Host>(spec.host_name(h), h, config.tcp);
  }

  auto make_link = [&](std::uint32_t owner_partition, const std::string& name,
                       const Link::Config& lcfg, net::PacketHandler* dst,
                       std::uint32_t dst_partition) {
    auto& psim = engine.partition(owner_partition).sim();
    Link* link = psim.add_component<Link>(name, lcfg, dst);
    if (owner_partition != dst_partition) {
      link->set_remote_scheduler(
          [&engine, owner_partition, dst_partition](
              sim::SimTime at, std::uint64_t key, sim::EventFn fn) {
            engine.send_cross(owner_partition, dst_partition, at, key,
                              std::move(fn));
          });
      ++out.cross_partition_links;
    }
    return link;
  };

  // Host <-> ToR (always partition-local by placement).
  std::vector<std::vector<std::uint32_t>> tor_host_port(
      spec.total_switches());
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const SwitchId tor = spec.tor_of_host(h);
    const std::uint32_t p = out.partition_of_host[h];
    Switch* tor_sw = out.switches[tor];
    tcp::Host* host = out.hosts[h];
    Link* up = make_link(p, host->name() + "->" + tor_sw->name(),
                         config.host_uplink, tor_sw, p);
    Link* down = make_link(p, tor_sw->name() + "->" + host->name(),
                           config.fabric_link, host, p);
    host->set_uplink(up);
    tor_host_port[tor].push_back(tor_sw->add_port(down));
  }

  // ToR <-> spine full mesh (mostly cross-partition).
  std::vector<std::vector<std::uint32_t>> tor_up_port(spec.total_switches());
  std::vector<std::vector<std::uint32_t>> spine_down_port(
      spec.total_switches());
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    const SwitchId tor = spec.tor_id(0, t);
    Switch* tor_sw = out.switches[tor];
    const std::uint32_t pt = out.partition_of_switch[tor];
    for (std::uint32_t s = 0; s < spec.aggs_per_cluster; ++s) {
      const SwitchId spine = spec.agg_id(0, s);
      Switch* spine_sw = out.switches[spine];
      const std::uint32_t ps = out.partition_of_switch[spine];
      Link* up = make_link(pt, tor_sw->name() + "->" + spine_sw->name(),
                           config.fabric_link, spine_sw, ps);
      Link* down = make_link(ps, spine_sw->name() + "->" + tor_sw->name(),
                             config.fabric_link, tor_sw, pt);
      tor_up_port[tor].push_back(tor_sw->add_port(up));
      spine_down_port[spine].push_back(spine_sw->add_port(down));
    }
  }

  // FIBs. ToR uplink candidates are in ascending spine order by
  // construction; spine_down_port[spine][t] is the port toward ToR t.
  for (HostId dst = 0; dst < spec.total_hosts(); ++dst) {
    const SwitchId dst_tor = spec.tor_of_host(dst);
    const std::uint32_t dst_tor_index = spec.tor_index_of_host(dst);
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      const SwitchId tor = spec.tor_id(0, t);
      Switch* tor_sw = out.switches[tor];
      if (tor == dst_tor) {
        tor_sw->set_route(dst,
                          {tor_host_port[tor][dst % spec.hosts_per_tor]});
      } else {
        tor_sw->set_route(dst, tor_up_port[tor]);
      }
    }
    for (std::uint32_t s = 0; s < spec.aggs_per_cluster; ++s) {
      const SwitchId spine = spec.agg_id(0, s);
      out.switches[spine]->set_route(dst,
                                     {spine_down_port[spine][dst_tor_index]});
    }
  }

  return out;
}

}  // namespace esim::core
