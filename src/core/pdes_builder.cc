#include "core/pdes_builder.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace esim::core {

using net::ClosSpec;
using net::HostId;
using net::Link;
using net::Switch;
using net::SwitchId;

PdesNetwork build_clos_partitioned(sim::ParallelEngine& engine,
                                   const NetworkConfig& config,
                                   PlacementPolicy policy) {
  const ClosSpec& spec = config.spec;
  spec.validate();
  if (engine.lookahead() > config.fabric_link.propagation ||
      engine.lookahead() > config.host_uplink.propagation ||
      engine.lookahead() > config.core_link_config().propagation) {
    throw std::invalid_argument(
        "build_clos_partitioned: engine lookahead exceeds link "
        "propagation (causality would break)");
  }
  const std::uint32_t P = engine.num_partitions();

  PdesNetwork out;
  out.spec = spec;
  out.plan = make_partition_plan(spec, P, policy);
  out.hosts.resize(spec.total_hosts());
  out.switches.resize(spec.total_switches());
  out.partition_of_switch = out.plan.partition_of_switch;
  out.partition_of_host.resize(spec.total_hosts());
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    out.partition_of_host[h] = out.plan.partition_of_host(spec, h);
  }

  // --- components, each inside its partition's simulator ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    auto& psim = engine.partition(out.partition_of_host[h]).sim();
    out.hosts[h] =
        psim.add_component<tcp::Host>(spec.host_name(h), h, config.tcp);
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      const SwitchId id = spec.tor_id(c, t);
      auto& psim = engine.partition(out.partition_of_switch[id]).sim();
      out.switches[id] = psim.add_component<Switch>(
          spec.tor_name(c, t), id, config.switch_processing);
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      const SwitchId id = spec.agg_id(c, a);
      auto& psim = engine.partition(out.partition_of_switch[id]).sim();
      out.switches[id] = psim.add_component<Switch>(
          spec.agg_name(c, a), id, config.switch_processing);
    }
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    const SwitchId id = spec.core_id(k);
    auto& psim = engine.partition(out.partition_of_switch[id]).sim();
    out.switches[id] = psim.add_component<Switch>(spec.core_name(k), id,
                                                  config.switch_processing);
  }
  if (!config.ecmp_port_sensitive) {
    for (auto* sw : out.switches) sw->set_port_sensitive_ecmp(false);
  }

  // --- links & ports ---
  // Minimum propagation delay over the cross links of each (from, to)
  // partition pair; feeds the engine's per-pair lookahead matrix.
  constexpr std::int64_t kNoChannel = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> min_pair_ns(static_cast<std::size_t>(P) * P,
                                        kNoChannel);

  auto make_link = [&](std::uint32_t owner_partition, const std::string& name,
                       const Link::Config& lcfg, net::PacketHandler* dst,
                       std::uint32_t dst_partition) {
    auto& psim = engine.partition(owner_partition).sim();
    Link* link = psim.add_component<Link>(name, lcfg, dst);
    if (owner_partition != dst_partition) {
      link->set_remote_scheduler(
          [&engine, owner_partition, dst_partition](
              sim::SimTime at, std::uint64_t key, sim::EventFn fn) {
            engine.send_cross(owner_partition, dst_partition, at, key,
                              std::move(fn));
          });
      ++out.cross_partition_links;
      std::int64_t& slot =
          min_pair_ns[static_cast<std::size_t>(owner_partition) * P +
                      dst_partition];
      slot = std::min(slot, lcfg.propagation.ns());
    }
    return link;
  };

  // Port index bookkeeping identical to core/full_builder: FIB candidate
  // ordering relies on the insertion order below being canonical.
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> port_of(
      spec.total_switches());
  constexpr std::uint64_t kHostKey = 1ULL << 40;
  constexpr std::uint64_t kSwitchKey = 2ULL << 40;

  auto link_name = [](const std::string& a, const std::string& b) {
    return a + "->" + b;
  };

  // Host <-> ToR (always partition-local: hosts ride with their ToR).
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const SwitchId tor = spec.tor_of_host(h);
    const std::uint32_t p = out.partition_of_host[h];
    Switch* tor_sw = out.switches[tor];
    tcp::Host* host = out.hosts[h];
    Link* up = make_link(p, link_name(host->name(), tor_sw->name()),
                         config.host_uplink, tor_sw, p);
    Link* down = make_link(p, link_name(tor_sw->name(), host->name()),
                           config.fabric_link, host, p);
    host->set_uplink(up);
    port_of[tor][kHostKey | h] = tor_sw->add_port(down);
  }

  // ToR <-> Agg (every ToR to every Agg of its cluster, aggs ascending).
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      const SwitchId tor = spec.tor_id(c, t);
      Switch* tor_sw = out.switches[tor];
      const std::uint32_t pt = out.partition_of_switch[tor];
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        const SwitchId agg = spec.agg_id(c, a);
        Switch* agg_sw = out.switches[agg];
        const std::uint32_t pa = out.partition_of_switch[agg];
        Link* up = make_link(pt, link_name(tor_sw->name(), agg_sw->name()),
                             config.fabric_link, agg_sw, pa);
        Link* down = make_link(pa, link_name(agg_sw->name(), tor_sw->name()),
                               config.fabric_link, tor_sw, pt);
        port_of[tor][kSwitchKey | agg] = tor_sw->add_port(up);
        port_of[agg][kSwitchKey | tor] = agg_sw->add_port(down);
      }
    }
  }

  // Agg <-> Core (every Agg to every Core, cores ascending).
  const Link::Config& core_cfg = config.core_link_config();
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      const SwitchId agg = spec.agg_id(c, a);
      Switch* agg_sw = out.switches[agg];
      const std::uint32_t pa = out.partition_of_switch[agg];
      for (std::uint32_t k = 0; k < spec.cores; ++k) {
        const SwitchId core = spec.core_id(k);
        Switch* core_sw = out.switches[core];
        const std::uint32_t pk = out.partition_of_switch[core];
        Link* up = make_link(pa, link_name(agg_sw->name(), core_sw->name()),
                             core_cfg, core_sw, pk);
        Link* down = make_link(pk, link_name(core_sw->name(), agg_sw->name()),
                               core_cfg, agg_sw, pa);
        port_of[agg][kSwitchKey | core] = agg_sw->add_port(up);
        port_of[core][kSwitchKey | agg] = core_sw->add_port(down);
      }
    }
  }

  // --- per-pair lookahead ---
  // Connected pairs are bounded by their fastest link; unconnected pairs
  // never exchange messages, so they do not constrain the window at all.
  for (std::uint32_t a = 0; a < P; ++a) {
    for (std::uint32_t b = 0; b < P; ++b) {
      if (a == b) continue;
      const std::int64_t ns = min_pair_ns[static_cast<std::size_t>(a) * P + b];
      engine.set_pair_lookahead(
          a, b,
          ns == kNoChannel ? sim::ParallelEngine::infinite_lookahead()
                           : sim::SimTime::from_ns(ns));
    }
  }

  // --- FIBs (identical candidate ordering to core/full_builder) ---
  for (HostId dst = 0; dst < spec.total_hosts(); ++dst) {
    const std::uint32_t dst_cluster = spec.cluster_of_host(dst);
    const SwitchId dst_tor = spec.tor_of_host(dst);

    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
        Switch* tor_sw = out.switches[spec.tor_id(c, t)];
        if (tor_sw->id() == dst_tor) {
          tor_sw->set_route(dst, {port_of[tor_sw->id()].at(kHostKey | dst)});
        } else {
          std::vector<std::uint32_t> ups;
          for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
            ups.push_back(
                port_of[tor_sw->id()].at(kSwitchKey | spec.agg_id(c, a)));
          }
          tor_sw->set_route(dst, std::move(ups));
        }
      }
    }

    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        Switch* agg_sw = out.switches[spec.agg_id(c, a)];
        if (c == dst_cluster) {
          agg_sw->set_route(dst,
                            {port_of[agg_sw->id()].at(kSwitchKey | dst_tor)});
        } else {
          std::vector<std::uint32_t> ups;
          for (std::uint32_t k = 0; k < spec.cores; ++k) {
            ups.push_back(
                port_of[agg_sw->id()].at(kSwitchKey | spec.core_id(k)));
          }
          agg_sw->set_route(dst, std::move(ups));
        }
      }
    }

    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = out.switches[spec.core_id(k)];
      std::vector<std::uint32_t> downs;
      for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
        downs.push_back(
            port_of[core_sw->id()].at(kSwitchKey | spec.agg_id(dst_cluster, a)));
      }
      core_sw->set_route(dst, std::move(downs));
    }
  }

  return out;
}

PdesNetwork build_leaf_spine_partitioned(sim::ParallelEngine& engine,
                                         const NetworkConfig& config,
                                         PlacementPolicy policy) {
  if (config.spec.clusters != 1 || config.spec.cores != 0) {
    throw std::invalid_argument(
        "build_leaf_spine_partitioned: spec must be leaf-spine");
  }
  return build_clos_partitioned(engine, config, policy);
}

}  // namespace esim::core
