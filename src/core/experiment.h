// End-to-end experiment pipeline, mirroring the paper's workflow (§3):
//   1. simulate a small network (two clusters) in full packet-level
//      fidelity to generate training data at one cluster's boundary,
//   2. train the ingress/egress micro models,
//   3. assemble a large simulation where all but one cluster is replaced
//      by the trained models,
//   4. compare accuracy (Figure 4) and speed (Figure 5) against the full
//      simulation of the same topology.
#pragma once

#include <cstdint>
#include <memory>

#include "approx/evaluation.h"
#include "approx/micro_model.h"
#include "approx/trace.h"
#include "approx/trainer.h"
#include "core/full_builder.h"
#include "core/hybrid_builder.h"
#include "stats/cdf.h"
#include "stats/collectors.h"
#include "telemetry/fidelity.h"
#include "telemetry/metrics.h"

namespace esim::core {

/// Flow-size scale for the workload (full DCTCP web-search distribution,
/// or the 1/100-scale variant that finishes statistically many flows in
/// short runs).
enum class WorkloadScale { Mini, FullWebSearch };

/// Everything one accuracy/speed experiment needs.
struct ExperimentConfig {
  /// Link/TCP parameters and the *run* topology (fig5 sweeps clusters).
  NetworkConfig net;
  /// Topology used for training (paper: two clusters). Defaults to the
  /// run topology with `clusters` forced to 2 when left zero-initialised.
  net::ClosSpec train_spec;
  /// Offered load (fraction of aggregate host bandwidth).
  double load = 0.3;
  /// Fraction of flows staying inside their source cluster.
  double intra_fraction = 0.4;
  /// Simulated span of the measurement runs.
  sim::SimTime duration = sim::SimTime::from_ms(50);
  /// Simulated span of the training-data run.
  sim::SimTime train_duration = sim::SimTime::from_ms(50);
  /// Root seed (training uses seed, runs use seed+1 so the hybrid and
  /// full runs see the same workload stream).
  std::uint64_t seed = 1;
  WorkloadScale workload = WorkloadScale::Mini;
  /// Micro-model architecture and training hyper-parameters.
  approx::MicroModel::Config model;
  approx::TrainConfig train;
  /// Macro classifier configuration (shared by training and runtime).
  approx::MacroClassifier::Config macro;
  /// Runtime behaviour of approximated clusters.
  ApproxCluster::Config approx;
  /// When true the measurement runs install a telemetry::Registry on the
  /// engine and return its snapshot in RunResult::metrics. Off by
  /// default: the run itself is bit-identical either way (telemetry
  /// never touches simulation state), but the groundtruth timing runs
  /// should not pay even the counter updates.
  bool telemetry = false;
  /// Fidelity observatory for the hybrid run (DESIGN.md §11). Disabled
  /// by default; enabling it is digest-invariant.
  telemetry::FidelityConfig fidelity;
  /// Fraction of the boundary dataset held out (chronologically, the
  /// tail) for post-training evaluation. 0 (default) trains on the full
  /// dataset and skips evaluation — existing pipelines are unchanged.
  double eval_holdout = 0.0;

  /// Phase-memoization knobs (DESIGN.md §13). core only *carries* the
  /// configuration — the machinery lives in src/memo, which depends on
  /// core and not vice versa — so experiment configs stay memo-agnostic
  /// and a disabled memo block changes nothing.
  struct MemoOptions {
    bool enabled = false;
    /// Bounded LRU cache: evict past either limit.
    std::size_t cache_bytes = std::size_t{64} << 20;
    std::size_t max_entries = 256;
    /// Rolling-summary window: how many trailing per-phase counter
    /// summaries participate in the state signature.
    std::uint32_t window_phases = 1;
    /// Workload phase period (0 = no phase structure known; memoization
    /// never engages without one).
    std::int64_t period_ns = 0;
  };
  MemoOptions memo;
};

/// The trained pair of boundary models plus training diagnostics.
struct TrainedModels {
  std::unique_ptr<approx::MicroModel> ingress;
  std::unique_ptr<approx::MicroModel> egress;
  approx::TrainReport ingress_report;
  approx::TrainReport egress_report;
  std::size_t boundary_records = 0;
  /// Held-out metrics; populated when ExperimentConfig::eval_holdout > 0.
  approx::EvalMetrics ingress_eval;
  approx::EvalMetrics egress_eval;
  bool has_eval = false;
};

/// Collects the boundary links of `cluster` from a full build, for trace
/// recording.
approx::BoundaryTaps make_boundary_taps(const BuiltNetwork& network,
                                        std::uint32_t cluster);

/// A recorded training trace (step 1 of the pipeline): the boundary
/// records of cluster 1 in a full-fidelity run of the training topology.
struct BoundaryTrace {
  net::ClosSpec spec;
  std::uint32_t cluster = 1;
  std::vector<approx::BoundaryRecord> records;
};

/// Step 1: run the training topology at full fidelity and record the
/// boundary of cluster 1.
BoundaryTrace record_boundary_trace(const ExperimentConfig& config);

/// Step 2: build datasets from a trace and train both direction models.
/// Separated from recording so ablation studies can retrain on one trace.
TrainedModels train_from_trace(const ExperimentConfig& config,
                               const BoundaryTrace& trace);

/// Steps 1–2 together (record, then train).
TrainedModels train_cluster_models(const ExperimentConfig& config);

/// Per-region packet totals summed over the build's links (and, for
/// `core`, the agg<->core attachments). Regions that do not exist in a
/// given build (e.g. approximated downlinks) stay zero.
struct RegionCounters {
  stats::PacketCounter host_uplinks;
  stats::PacketCounter host_downlinks;
  stats::PacketCounter intra_fabric;
  stats::PacketCounter core;
};

/// Measurements from one simulation run.
struct RunResult {
  double wall_seconds = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_scheduled = 0;
  stats::EmpiricalCdf rtt_cdf;  ///< RTTs seen by full-fidelity hosts
  std::uint64_t flows_launched = 0;
  std::uint64_t flows_completed = 0;
  double mean_fct_seconds = 0.0;
  /// FCT of every completed flow, in seconds. Feeds the Kolmogorov
  /// distance comparisons (stats::ks_distance) between fidelity tiers.
  stats::EmpiricalCdf fct_cdf;
  /// Hybrid runs only: totals across ApproxClusters.
  ApproxCluster::Stats approx_stats;
  /// Link-level totals by network region (always collected; the Links
  /// keep these counters regardless of telemetry).
  RegionCounters regions;
  /// Registry snapshot; empty unless ExperimentConfig::telemetry.
  telemetry::Snapshot metrics;
  /// Fidelity report section (FidelitySink::report_section); null unless
  /// ExperimentConfig::fidelity.enabled on a hybrid run.
  telemetry::Json fidelity;
};

/// Step 4a: the groundtruth run of `spec` at full fidelity.
RunResult run_full_simulation(const ExperimentConfig& config,
                              const net::ClosSpec& spec);

/// Step 4b: the same topology with every cluster but cluster 0 replaced
/// by the trained models. Traffic wholly between approximated clusters is
/// elided via the workload admission filter (paper §6.2).
RunResult run_hybrid_simulation(const ExperimentConfig& config,
                                const net::ClosSpec& spec,
                                const TrainedModels& models);

}  // namespace esim::core
