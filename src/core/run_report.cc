#include "core/run_report.h"

#include <string>

namespace esim::core {

namespace {

telemetry::Json region_json(const stats::PacketCounter& c) {
  telemetry::Json out = telemetry::Json::object();
  out["sent"] = c.sent;
  out["delivered"] = c.delivered;
  out["dropped"] = c.dropped;
  out["drop_rate"] = c.drop_rate();
  return out;
}

}  // namespace

void add_run_result(telemetry::RunReport& report, std::string_view section,
                    const RunResult& result) {
  const std::string s{section};
  report.set(s + ".wall_seconds", result.wall_seconds);
  report.set(s + ".events_executed", result.events_executed);
  report.set(s + ".events_scheduled", result.events_scheduled);
  report.set(s + ".flows_launched", result.flows_launched);
  report.set(s + ".flows_completed", result.flows_completed);
  report.set(s + ".mean_fct_seconds", result.mean_fct_seconds);

  if (!result.rtt_cdf.empty()) {
    report.set(s + ".rtt.samples",
               static_cast<std::uint64_t>(result.rtt_cdf.size()));
    report.set(s + ".rtt.p50_seconds", result.rtt_cdf.quantile(0.50));
    report.set(s + ".rtt.p90_seconds", result.rtt_cdf.quantile(0.90));
    report.set(s + ".rtt.p99_seconds", result.rtt_cdf.quantile(0.99));
    report.set(s + ".rtt.max_seconds", result.rtt_cdf.max());
  }

  report.set(s + ".regions.host_uplinks",
             region_json(result.regions.host_uplinks));
  report.set(s + ".regions.host_downlinks",
             region_json(result.regions.host_downlinks));
  report.set(s + ".regions.intra_fabric",
             region_json(result.regions.intra_fabric));
  report.set(s + ".regions.core", region_json(result.regions.core));

  const auto& a = result.approx_stats;
  if (a.egress_packets + a.ingress_packets + a.intra_packets +
          a.predicted_drops + a.backlog_drops + a.conflicts_resolved >
      0) {
    report.set(s + ".approx.egress_packets", a.egress_packets);
    report.set(s + ".approx.ingress_packets", a.ingress_packets);
    report.set(s + ".approx.intra_packets", a.intra_packets);
    report.set(s + ".approx.predicted_drops", a.predicted_drops);
    report.set(s + ".approx.backlog_drops", a.backlog_drops);
    report.set(s + ".approx.conflicts_resolved", a.conflicts_resolved);
    report.set(s + ".approx.tier_packets.packet",
               a.tier_packets[static_cast<std::size_t>(ClusterTier::Packet)]);
    report.set(s + ".approx.tier_packets.ml",
               a.tier_packets[static_cast<std::size_t>(ClusterTier::Ml)]);
    report.set(s + ".approx.tier_packets.fluid",
               a.tier_packets[static_cast<std::size_t>(ClusterTier::Fluid)]);
    report.set(s + ".approx.tier_transitions", a.tier_transitions);
  }

  if (!result.metrics.instruments.empty()) {
    report.add_metrics(result.metrics, s + ".metrics");
  }

  if (!result.fidelity.is_null()) {
    report.set(s + ".fidelity", result.fidelity);
  }
}

namespace {

telemetry::Json eval_json(const approx::EvalMetrics& m) {
  telemetry::Json out = telemetry::Json::object();
  out["rows"] = static_cast<std::uint64_t>(m.rows);
  out["drop_auc"] = m.drop_auc;
  out["drop_accuracy"] = m.drop_accuracy;
  out["drop_precision"] = m.drop_precision;
  out["drop_recall"] = m.drop_recall;
  out["base_drop_rate"] = m.base_drop_rate;
  out["latency_mae"] = m.latency_mae;
  out["latency_bias"] = m.latency_bias;
  out["latency_p90_abs_error"] = m.latency_p90_abs_error;
  return out;
}

}  // namespace

void add_training_eval(telemetry::RunReport& report,
                       const TrainedModels& models,
                       std::string_view section) {
  const std::string s{section};
  report.set(s + ".boundary_records",
             static_cast<std::uint64_t>(models.boundary_records));
  if (!models.has_eval) return;
  report.set(s + ".eval.ingress", eval_json(models.ingress_eval));
  report.set(s + ".eval.egress", eval_json(models.egress_eval));
}

void add_experiment_config(telemetry::RunReport& report,
                           const ExperimentConfig& config,
                           const net::ClosSpec& spec,
                           std::string_view section) {
  const std::string s{section};
  report.set(s + ".clusters", static_cast<std::uint64_t>(spec.clusters));
  report.set(s + ".cores", static_cast<std::uint64_t>(spec.cores));
  report.set(s + ".total_hosts",
             static_cast<std::uint64_t>(spec.total_hosts()));
  report.set(s + ".load", config.load);
  report.set(s + ".intra_fraction", config.intra_fraction);
  report.set(s + ".duration_seconds", config.duration.to_seconds());
  report.set(s + ".seed", config.seed);
  report.set(s + ".workload",
             config.workload == WorkloadScale::FullWebSearch
                 ? "web_search"
                 : "mini");
}

void add_memo_section(telemetry::RunReport& report,
                      const MemoSectionData& data, std::string_view section) {
  const std::string s{section};
  report.set(s + ".enabled", data.enabled);
  report.set(s + ".lookups", data.lookups);
  report.set(s + ".hits", data.hits);
  report.set(s + ".misses", data.misses);
  report.set(s + ".near_misses", data.near_misses);
  report.set(s + ".stores", data.stores);
  report.set(s + ".store_aborts", data.store_aborts);
  report.set(s + ".evictions", data.evictions);
  report.set(s + ".entries", data.entries);
  report.set(s + ".bytes", data.bytes);
  report.set(s + ".fast_forwarded_phases", data.fast_forwarded_phases);
  report.set(s + ".fast_forwarded_ns", data.fast_forwarded_ns);
}

}  // namespace esim::core
