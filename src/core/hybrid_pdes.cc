#include "core/hybrid_pdes.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/partitioner.h"

namespace esim::core {

using net::ClosSpec;
using net::HostId;
using net::Link;
using net::Switch;
using net::SwitchId;

PartitionedHybridNetwork build_hybrid_network_partitioned(
    sim::ParallelEngine& engine, const HybridConfig& config,
    const approx::MicroModel& ingress_model,
    const approx::MicroModel& egress_model) {
  const ClosSpec& spec = config.net.spec;
  spec.validate();
  if (spec.clusters < 2) {
    throw std::invalid_argument(
        "build_hybrid_network_partitioned: need >= 2 clusters");
  }
  if (config.full_cluster >= spec.clusters) {
    throw std::invalid_argument(
        "build_hybrid_network_partitioned: bad full_cluster");
  }
  if (engine.lookahead() > config.net.fabric_link.propagation) {
    throw std::invalid_argument(
        "build_hybrid_network_partitioned: lookahead exceeds fabric link "
        "propagation");
  }
  if (engine.lookahead().to_seconds() > config.approx.min_latency_s) {
    throw std::invalid_argument(
        "build_hybrid_network_partitioned: lookahead exceeds the model's "
        "minimum latency (egress deliveries would violate causality)");
  }
  const bool batching =
      config.approx.batch_max > 1 && config.approx.batch_window > sim::SimTime{};
  if (batching &&
      config.approx.batch_window + engine.lookahead() >
          sim::SimTime::from_seconds_f(config.approx.min_latency_s)) {
    // A packet admitted at t may only be predicted at flush time
    // tf <= t + batch_window, and its egress delivery lands at
    // >= t + min_latency_s >= tf + (min_latency_s - batch_window). That
    // slack is the cluster partition's real send horizon, so it must
    // cover the engine's conservative lookahead.
    throw std::invalid_argument(
        "build_hybrid_network_partitioned: batch_window exceeds "
        "min_latency_s - lookahead (a coalesced packet could be held "
        "past the PDES lookahead it was admitted under)");
  }
  const std::uint32_t full = config.full_cluster;
  const std::uint32_t P = engine.num_partitions();

  PartitionedHybridNetwork out;
  HybridNetwork& net = out.net;
  net.spec = spec;
  net.full_cluster = full;
  net.hosts.resize(spec.total_hosts());
  net.switches.assign(spec.total_switches(), nullptr);
  net.clusters.assign(spec.clusters, nullptr);
  net.host_uplinks.resize(spec.total_hosts());
  net.host_downlinks.assign(spec.total_hosts(), nullptr);
  out.partition_of_host.assign(spec.total_hosts(), 0);
  out.partition_of_cluster.assign(spec.clusters, 0);

  // Placement: approximated clusters spread weight-balanced (by host
  // count) over partitions 1..P-1, leaving partition 0 to the full
  // cluster + cores (or everything on 0 when the engine has a single
  // partition). Clusters have no links to each other, so balance — not
  // cut — is the only objective here.
  if (P > 1) {
    std::vector<std::uint32_t> approx_clusters;
    std::vector<std::uint64_t> weights;
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      if (c == full) continue;
      approx_clusters.push_back(c);
      weights.push_back(spec.hosts_per_cluster());
    }
    const auto bins = assign_balanced(weights, P - 1);
    for (std::size_t i = 0; i < approx_clusters.size(); ++i) {
      out.partition_of_cluster[approx_clusters[i]] = 1 + bins[i];
    }
  }

  auto& sim0 = engine.partition(0).sim();

  // --- components ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const std::uint32_t c = spec.cluster_of_host(h);
    const std::uint32_t p =
        c == full ? 0 : out.partition_of_cluster[c];
    out.partition_of_host[h] = p;
    net.hosts[h] = engine.partition(p).sim().add_component<tcp::Host>(
        spec.host_name(h), h, config.net.tcp);
  }
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    const SwitchId id = spec.tor_id(full, t);
    net.switches[id] = sim0.add_component<Switch>(
        spec.tor_name(full, t), id, config.net.switch_processing);
  }
  for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
    const SwitchId id = spec.agg_id(full, a);
    net.switches[id] = sim0.add_component<Switch>(
        spec.agg_name(full, a), id, config.net.switch_processing);
  }
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    const SwitchId id = spec.core_id(k);
    net.switches[id] = sim0.add_component<Switch>(
        spec.core_name(k), id, config.net.switch_processing);
  }
  for (std::uint32_t c = 0; c < spec.clusters; ++c) {
    if (c == full) continue;
    ApproxCluster::Config acfg = config.approx;
    acfg.spec = spec;
    acfg.cluster = c;
    const std::uint32_t p = out.partition_of_cluster[c];
    net.clusters[c] =
        engine.partition(p).sim().add_component<ApproxCluster>(
            "approx.c" + std::to_string(c), acfg, ingress_model,
            egress_model);
  }

  auto link_name = [](const std::string& a, const std::string& b) {
    return a + "->" + b;
  };
  auto cross = [&engine](std::uint32_t from, std::uint32_t to) {
    return [&engine, from, to](sim::SimTime at, std::uint64_t key,
                               sim::EventFn fn) {
      engine.send_cross(from, to, at, key, std::move(fn));
    };
  };

  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> port_of(
      spec.total_switches());
  constexpr std::uint64_t kHostKey = 1ULL << 40;
  constexpr std::uint64_t kSwitchKey = 2ULL << 40;
  constexpr std::uint64_t kClusterKey = 3ULL << 40;

  // --- full cluster + cores, all partition-0-local ---
  for (HostId h = 0; h < spec.total_hosts(); ++h) {
    const std::uint32_t c = spec.cluster_of_host(h);
    tcp::Host* host = net.hosts[h];
    if (c == full) {
      Switch* tor_sw = net.switches[spec.tor_of_host(h)];
      auto* up = sim0.add_component<Link>(
          link_name(host->name(), tor_sw->name()), config.net.host_uplink,
          tor_sw);
      auto* down = sim0.add_component<Link>(
          link_name(tor_sw->name(), host->name()), config.net.fabric_link,
          host);
      host->set_uplink(up);
      net.host_uplinks[h] = up;
      net.host_downlinks[h] = down;
      port_of[tor_sw->id()][kHostKey | h] = tor_sw->add_port(down);
    } else {
      // Host and its ApproxCluster share a partition: local link.
      ApproxCluster* cluster = net.clusters[c];
      auto& psim = engine.partition(out.partition_of_host[h]).sim();
      auto* up = psim.add_component<Link>(
          link_name(host->name(), cluster->name()), config.net.host_uplink,
          cluster);
      host->set_uplink(up);
      net.host_uplinks[h] = up;
      cluster->attach_host(h, host);
    }
  }
  for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
    Switch* tor_sw = net.switches[spec.tor_id(full, t)];
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      Switch* agg_sw = net.switches[spec.agg_id(full, a)];
      auto* up = sim0.add_component<Link>(
          link_name(tor_sw->name(), agg_sw->name()), config.net.fabric_link,
          agg_sw);
      auto* down = sim0.add_component<Link>(
          link_name(agg_sw->name(), tor_sw->name()), config.net.fabric_link,
          tor_sw);
      port_of[tor_sw->id()][kSwitchKey | agg_sw->id()] = tor_sw->add_port(up);
      port_of[agg_sw->id()][kSwitchKey | tor_sw->id()] =
          agg_sw->add_port(down);
    }
  }
  for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
    Switch* agg_sw = net.switches[spec.agg_id(full, a)];
    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = net.switches[spec.core_id(k)];
      auto* up = sim0.add_component<Link>(
          link_name(agg_sw->name(), core_sw->name()), config.net.fabric_link,
          core_sw);
      auto* down = sim0.add_component<Link>(
          link_name(core_sw->name(), agg_sw->name()), config.net.fabric_link,
          agg_sw);
      port_of[agg_sw->id()][kSwitchKey | core_sw->id()] =
          agg_sw->add_port(up);
      port_of[core_sw->id()][kSwitchKey | agg_sw->id()] =
          core_sw->add_port(down);
      net.core_links.push_back(CoreAttachment{full, a, k, up, down});
    }
  }

  // --- core <-> approximated clusters (the only cross-partition edges) ---
  for (std::uint32_t k = 0; k < spec.cores; ++k) {
    Switch* core_sw = net.switches[spec.core_id(k)];
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      if (c == full) continue;
      ApproxCluster* cluster = net.clusters[c];
      const std::uint32_t pc = out.partition_of_cluster[c];
      auto* down = sim0.add_component<Link>(
          link_name(core_sw->name(), cluster->name()),
          config.net.fabric_link, cluster);
      if (pc != 0) down->set_remote_scheduler(cross(0, pc));
      port_of[core_sw->id()][kClusterKey | c] = core_sw->add_port(down);
      cluster->attach_core(k, core_sw);
      if (pc != 0) cluster->set_core_remote(k, cross(pc, 0));
    }
  }

  // --- per-pair lookahead ---
  // The only channels are partition 0 <-> each cluster-hosting partition:
  // core -> cluster deliveries ride a fabric link (>= its propagation),
  // and cluster -> core injections carry at least the model's minimum
  // latency. Everything else (notably cluster <-> cluster) never
  // exchanges a message, so those pairs get infinite lookahead and never
  // constrain the per-pair window.
  if (P > 1) {
    std::vector<bool> hosts_clusters(P, false);
    for (std::uint32_t c = 0; c < spec.clusters; ++c) {
      if (c != full) hosts_clusters[out.partition_of_cluster[c]] = true;
    }
    for (std::uint32_t a = 0; a < P; ++a) {
      for (std::uint32_t b = 0; b < P; ++b) {
        if (a == b) continue;
        sim::SimTime lah = sim::ParallelEngine::infinite_lookahead();
        if (a == 0 && hosts_clusters[b]) {
          lah = config.net.fabric_link.propagation;
        } else if (b == 0 && hosts_clusters[a]) {
          // Unbatched, an egress injection granted at t_d is reserved
          // at arrival t with t_d >= t + min_latency_s. With batching
          // the reservation is deferred to the flush at
          // tf <= t + batch_window, shrinking the provable send horizon
          // to min_latency_s - batch_window (validated above to still
          // cover the engine lookahead).
          sim::SimTime horizon =
              sim::SimTime::from_seconds_f(config.approx.min_latency_s);
          if (batching) horizon = horizon - config.approx.batch_window;
          lah = std::max(horizon, engine.lookahead());
        }
        engine.set_pair_lookahead(a, b, lah);
      }
    }
  }

  // --- FIBs (identical rules to the sequential hybrid build) ---
  for (HostId dst = 0; dst < spec.total_hosts(); ++dst) {
    const std::uint32_t dst_cluster = spec.cluster_of_host(dst);
    const SwitchId dst_tor = spec.tor_of_host(dst);
    for (std::uint32_t t = 0; t < spec.tors_per_cluster; ++t) {
      Switch* tor_sw = net.switches[spec.tor_id(full, t)];
      if (tor_sw->id() == dst_tor && dst_cluster == full) {
        tor_sw->set_route(dst, {port_of[tor_sw->id()].at(kHostKey | dst)});
      } else {
        std::vector<std::uint32_t> ups;
        for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
          ups.push_back(
              port_of[tor_sw->id()].at(kSwitchKey | spec.agg_id(full, a)));
        }
        tor_sw->set_route(dst, std::move(ups));
      }
    }
    for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
      Switch* agg_sw = net.switches[spec.agg_id(full, a)];
      if (dst_cluster == full) {
        agg_sw->set_route(dst,
                          {port_of[agg_sw->id()].at(kSwitchKey | dst_tor)});
      } else {
        std::vector<std::uint32_t> ups;
        for (std::uint32_t k = 0; k < spec.cores; ++k) {
          ups.push_back(
              port_of[agg_sw->id()].at(kSwitchKey | spec.core_id(k)));
        }
        agg_sw->set_route(dst, std::move(ups));
      }
    }
    for (std::uint32_t k = 0; k < spec.cores; ++k) {
      Switch* core_sw = net.switches[spec.core_id(k)];
      if (dst_cluster == full) {
        std::vector<std::uint32_t> downs;
        for (std::uint32_t a = 0; a < spec.aggs_per_cluster; ++a) {
          downs.push_back(port_of[core_sw->id()].at(
              kSwitchKey | spec.agg_id(full, a)));
        }
        core_sw->set_route(dst, std::move(downs));
      } else {
        core_sw->set_route(
            dst, {port_of[core_sw->id()].at(kClusterKey | dst_cluster)});
      }
    }
  }

  for (auto* cluster : net.clusters) {
    if (cluster != nullptr) cluster->start();
  }
  return out;
}

}  // namespace esim::core
