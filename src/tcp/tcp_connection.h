// TCP New Reno connection state machine.
//
// Implements what the paper's full-fidelity clusters run (OMNeT++/INET's
// "TCP New Reno"): a 3-way handshake, cumulative ACKs with out-of-order
// reassembly, slow start, congestion avoidance, fast retransmit, New Reno
// fast recovery with partial-ACK retransmission (RFC 6582), RFC 6298
// retransmission timeouts with exponential backoff and go-back-N recovery,
// and a FIN close initiated by the sending side once all payload is ACKed.
//
// RTT is measured with simulated timestamps (the receiver echoes the data
// packet's send time in `ts_echo`), so retransmitted segments still yield
// valid samples and Karn's algorithm is unnecessary.
//
// One connection object handles one direction of payload: the active opener
// is the data sender ("client"), the passive side is a pure receiver that
// ACKs. This matches the workloads in the paper's evaluation (unidirectional
// web-traffic flows drawn from the DCTCP trace distribution).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "sim/simulator.h"
#include "tcp/rto.h"

namespace esim::telemetry {
class Counter;
class Histogram;
}

namespace esim::tcp {

/// Services a TcpConnection needs from its owning host. Implemented by
/// tcp::Host; kept abstract so the state machine is unit-testable against a
/// scripted harness.
class TcpEndpoint {
 public:
  virtual ~TcpEndpoint() = default;

  /// Transmits a fully formed packet (the host stamps id and timestamps and
  /// pushes it into its uplink).
  virtual void tcp_transmit(net::Packet pkt) = 0;

  /// Engine used for connection timers.
  virtual sim::Simulator& tcp_sim() = 0;

  /// Measurement hook: one RTT sample observed by this endpoint. The
  /// evaluation's Figure 4 CDF is built from these.
  virtual void tcp_rtt_sample(sim::SimTime rtt) = 0;
};

/// Connection lifecycle states (simplified close: no TIME_WAIT, no
/// simultaneous close — flows here are unidirectional request bodies).
enum class TcpState {
  Closed,
  SynSent,
  SynRcvd,
  Established,
  FinSent,
  Done,
};

/// Returns a display name, e.g. "Established".
const char* tcp_state_name(TcpState s);

/// One TCP connection endpoint (either the data sender or the receiver).
class TcpConnection {
 public:
  struct Config {
    /// Maximum segment payload.
    std::uint32_t mss = net::kMss;
    /// Initial congestion window in segments (RFC 6928).
    std::uint32_t initial_cwnd_segments = 10;
    /// Initial slow-start threshold in bytes ("infinite" by default).
    std::uint32_t initial_ssthresh = 0xFFFFFFFF;
    /// Advertised receive window in bytes (receiver consumes instantly, so
    /// this is a fixed cap, not modeled buffer occupancy).
    std::uint32_t rwnd = 1 << 20;
    /// Retransmission timer parameters.
    RtoEstimator::Config rto;
    /// When true the receiver ACKs every second in-order segment (with an
    /// immediate ACK on gaps), roughly halving ACK traffic.
    bool delayed_ack = false;
    /// DCTCP mode (Alizadeh et al., SIGCOMM 2010): the receiver echoes
    /// each data packet's CE mark on its ACK; the sender maintains the
    /// EWMA marked fraction `alpha` and once per window reduces
    /// cwnd <- cwnd * (1 - alpha/2). Requires ECN marking at the links
    /// (net::Link::Config::ecn_threshold_bytes). Loss handling stays
    /// New Reno. Demonstrates the modularity goal of paper §3: the
    /// approximation framework is protocol-agnostic.
    bool dctcp = false;
    /// DCTCP gain g for the alpha EWMA (paper default 1/16).
    double dctcp_gain = 0.0625;
  };

  /// Per-connection counters, exposed for tests and experiment reports.
  struct Stats {
    std::uint64_t segments_sent = 0;       ///< data segments (incl. rexmit)
    std::uint64_t retransmissions = 0;     ///< fast + timeout retransmits
    std::uint64_t timeouts = 0;            ///< RTO firings
    std::uint64_t fast_recoveries = 0;     ///< fast-retransmit episodes
    std::uint64_t dup_acks_received = 0;
    std::uint64_t bytes_acked = 0;
  };

  /// Creates the active (sending) endpoint. Call open() to start.
  /// `payload_bytes` must be < 2^31 (sequence space headroom).
  static std::unique_ptr<TcpConnection> make_active(
      TcpEndpoint& endpoint, net::FlowKey key, std::uint64_t flow_id,
      std::uint64_t payload_bytes, const Config& config);

  /// Creates the passive (receiving) endpoint in response to a SYN. The
  /// SYN itself must then be delivered via on_packet().
  static std::unique_ptr<TcpConnection> make_passive(TcpEndpoint& endpoint,
                                                     net::FlowKey key,
                                                     std::uint64_t flow_id,
                                                     const Config& config);

  ~TcpConnection();

  TcpConnection(TcpConnection&&) = delete;
  TcpConnection& operator=(TcpConnection&&) = delete;

  /// Active open: transmits the SYN and arms the handshake timer.
  void open();

  /// Delivers a packet addressed to this connection.
  void on_packet(const net::Packet& pkt);

  /// Current state.
  TcpState state() const { return state_; }

  /// The 4-tuple this endpoint sends with (src = this side).
  const net::FlowKey& key() const { return key_; }

  /// Workload flow id carried in every packet of this connection.
  std::uint64_t flow_id() const { return flow_id_; }

  /// Congestion window in bytes (sender side).
  double cwnd() const { return cwnd_; }

  /// Slow-start threshold in bytes (sender side).
  std::uint32_t ssthresh() const { return ssthresh_; }

  /// Bytes of payload cumulatively ACKed (sender) or received in order
  /// (receiver).
  std::uint64_t bytes_done() const;

  /// Counter snapshot.
  const Stats& stats() const { return stats_; }

  /// True when in New Reno fast recovery.
  bool in_recovery() const { return in_recovery_; }

  /// DCTCP's smoothed marked fraction (0 when DCTCP is off).
  double dctcp_alpha() const { return dctcp_alpha_; }

  /// Fires once on the sender when every payload byte has been ACKed
  /// (flow completion; the FIN exchange continues afterwards).
  std::function<void()> on_complete;

  /// Fires on the receiver as in-order payload arrives (delta bytes).
  std::function<void(std::uint64_t)> on_data;

  /// Fires once when the handshake completes on this side.
  std::function<void()> on_established;

  /// Fires once on the receiver when the peer's FIN is consumed (the
  /// whole request body has arrived, in order). Lets server applications
  /// respond (see workload::RequestResponseApp).
  std::function<void()> on_closed;

 private:
  TcpConnection(TcpEndpoint& endpoint, net::FlowKey key, std::uint64_t flow_id,
                std::uint64_t payload_bytes, bool sender,
                const Config& config);

  // --- common ---
  net::Packet make_packet(net::TcpFlag flags, std::uint32_t seq,
                          std::uint32_t payload) const;
  void transmit_ack(sim::SimTime echo, bool ece = false);
  void dctcp_on_ack(const net::Packet& pkt, std::uint32_t acked);

  // --- sender side ---
  void handle_sender_packet(const net::Packet& pkt);
  void on_new_ack(const net::Packet& pkt);
  void on_dup_ack();
  void try_send();
  void send_segment(std::uint32_t seq, bool is_retransmission);
  void maybe_send_fin();
  void enter_fast_recovery();
  void on_rto();
  void arm_rto();
  void disarm_rto();
  std::uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  std::uint32_t effective_window() const;

  // --- receiver side ---
  void handle_receiver_packet(const net::Packet& pkt);
  void accept_payload(const net::Packet& pkt);
  void flush_ack(sim::SimTime echo);
  void schedule_delack(sim::SimTime echo);

  TcpEndpoint& endpoint_;
  net::FlowKey key_;
  std::uint64_t flow_id_;
  Config config_;
  bool sender_;
  TcpState state_ = TcpState::Closed;
  Stats stats_;

  // Aggregate tcp.* series shared by every connection on the engine;
  // connections are ephemeral, so totals must outlive them in the
  // registry. Null when telemetry is off.
  telemetry::Counter* m_segments_ = nullptr;
  telemetry::Counter* m_retransmissions_ = nullptr;
  telemetry::Counter* m_timeouts_ = nullptr;
  telemetry::Counter* m_fast_recoveries_ = nullptr;
  telemetry::Counter* m_dup_acks_ = nullptr;
  telemetry::Histogram* m_cwnd_ = nullptr;

  // Sequence space: SYN occupies [0,1); payload occupies
  // [1, 1 + payload_bytes); FIN occupies one number after the payload.
  std::uint64_t payload_bytes_ = 0;
  std::uint32_t data_end_ = 1;  // first seq past the payload

  // Sender state.
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  double cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;  // New Reno recovery point
  bool fin_sent_ = false;
  bool complete_reported_ = false;
  RtoEstimator rto_;
  sim::EventHandle rto_timer_;

  // DCTCP sender state: per-window byte accounting for alpha.
  double dctcp_alpha_ = 0.0;
  std::uint32_t dctcp_window_end_ = 0;   // seq at which the window closes
  std::uint64_t dctcp_bytes_acked_ = 0;  // within the current window
  std::uint64_t dctcp_bytes_marked_ = 0;

  // Receiver state.
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::uint32_t> ooo_;  // seq -> len, disjoint
  std::uint64_t bytes_received_ = 0;
  std::uint32_t unacked_segments_ = 0;  // for delayed ACK
  bool pending_ece_ = false;  // a received-but-unacked packet carried CE
  sim::EventHandle delack_timer_;
};

}  // namespace esim::tcp
