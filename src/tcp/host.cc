#include "tcp/host.h"

#include <stdexcept>
#include <utility>

namespace esim::tcp {

Host::Host(sim::Simulator& sim, std::string name, net::HostId id,
           const TcpConnection::Config& tcp_config)
    : Component(sim, std::move(name)), id_{id}, tcp_config_{tcp_config} {}

Host::~Host() = default;

TcpConnection* Host::open_flow(net::HostId dst, std::uint64_t bytes,
                               std::uint64_t flow_id) {
  if (uplink_ == nullptr) {
    throw std::logic_error(name() + ": open_flow before set_uplink");
  }
  net::FlowKey key;
  key.src_host = id_;
  key.dst_host = dst;
  key.dst_port = 80;
  key.src_port = next_port_;
  next_port_ = next_port_ >= 60'000 ? 10'000 : next_port_ + 1;

  auto conn = TcpConnection::make_active(*this, key, flow_id, bytes,
                                         tcp_config_);
  TcpConnection* raw = conn.get();
  connections_[key] = std::move(conn);
  raw->open();
  return raw;
}

void Host::handle_packet(net::Packet pkt) {
  // Connections are keyed by OUR outgoing 4-tuple; an arriving packet's
  // key is the reverse.
  const net::FlowKey key = pkt.flow.reversed();
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    if (pkt.has(net::TcpFlag::Syn) && !pkt.has(net::TcpFlag::Ack)) {
      auto conn =
          TcpConnection::make_passive(*this, key, pkt.flow_id, tcp_config_);
      TcpConnection* raw = conn.get();
      it = connections_.emplace(key, std::move(conn)).first;
      if (on_accept) on_accept(*raw);
    } else {
      ++counter_.dropped;
      ESIM_LOG(*this, sim::LogLevel::Debug,
               "no connection for " + pkt.to_string() + ", dropping");
      return;
    }
  }
  ++counter_.delivered;
  it->second->on_packet(pkt);
}

void Host::tcp_transmit(net::Packet pkt) {
  if (uplink_ == nullptr) {
    throw std::logic_error(name() + ": transmit before set_uplink");
  }
  pkt.id = (static_cast<std::uint64_t>(id_) << 40) | ++next_packet_seq_;
  pkt.sent_at = now();
  ++counter_.sent;
  uplink_->send(std::move(pkt));
}

void Host::tcp_rtt_sample(sim::SimTime rtt) {
  if (rtt_collector_ != nullptr) rtt_collector_->record(rtt);
}

}  // namespace esim::tcp
