#include "tcp/rto.h"

namespace esim::tcp {

RtoEstimator::RtoEstimator() : RtoEstimator(Config{}) {}

RtoEstimator::RtoEstimator(const Config& config)
    : config_{config}, rto_{config.initial} {}

void RtoEstimator::add_sample(sim::SimTime rtt) {
  if (rtt < sim::SimTime{}) rtt = sim::SimTime{};
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = sim::SimTime::from_ns(rtt.ns() / 2);
    has_sample_ = true;
  } else {
    const std::int64_t err = srtt_.ns() - rtt.ns();
    const std::int64_t abs_err = err < 0 ? -err : err;
    // RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R|
    rttvar_ = sim::SimTime::from_ns((3 * rttvar_.ns() + abs_err) / 4);
    // SRTT <- 7/8 SRTT + 1/8 R
    srtt_ = sim::SimTime::from_ns((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  // RFC 6298 §2.3: RTO = SRTT + max(G, 4*RTTVAR). The granularity floor
  // keeps the RTO strictly above SRTT even when RTTVAR has decayed to zero
  // on a stable path.
  const sim::SimTime var_term = rttvar_ * 4;
  rto_ = srtt_ + (var_term > config_.granularity ? var_term
                                                 : config_.granularity);
  clamp();
}

void RtoEstimator::backoff() {
  rto_ = rto_ * 2;
  clamp();
}

void RtoEstimator::clamp() {
  if (rto_ < config_.min) rto_ = config_.min;
  if (rto_ > config_.max) rto_ = config_.max;
}

}  // namespace esim::tcp
