#include "tcp/tcp_connection.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esim::tcp {

using net::Packet;
using net::TcpFlag;
using sim::SimTime;

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::Closed:
      return "Closed";
    case TcpState::SynSent:
      return "SynSent";
    case TcpState::SynRcvd:
      return "SynRcvd";
    case TcpState::Established:
      return "Established";
    case TcpState::FinSent:
      return "FinSent";
    case TcpState::Done:
      return "Done";
  }
  return "?";
}

std::unique_ptr<TcpConnection> TcpConnection::make_active(
    TcpEndpoint& endpoint, net::FlowKey key, std::uint64_t flow_id,
    std::uint64_t payload_bytes, const Config& config) {
  return std::unique_ptr<TcpConnection>(new TcpConnection(
      endpoint, key, flow_id, payload_bytes, /*sender=*/true, config));
}

std::unique_ptr<TcpConnection> TcpConnection::make_passive(
    TcpEndpoint& endpoint, net::FlowKey key, std::uint64_t flow_id,
    const Config& config) {
  return std::unique_ptr<TcpConnection>(new TcpConnection(
      endpoint, key, flow_id, /*payload_bytes=*/0, /*sender=*/false, config));
}

TcpConnection::TcpConnection(TcpEndpoint& endpoint, net::FlowKey key,
                             std::uint64_t flow_id,
                             std::uint64_t payload_bytes, bool sender,
                             const Config& config)
    : endpoint_{endpoint},
      key_{key},
      flow_id_{flow_id},
      config_{config},
      sender_{sender},
      payload_bytes_{payload_bytes},
      rto_{config.rto} {
  if (payload_bytes >= (1ULL << 31)) {
    throw std::invalid_argument(
        "TcpConnection: payload too large for 32-bit sequence space");
  }
  data_end_ = 1 + static_cast<std::uint32_t>(payload_bytes);
  if (auto* r = endpoint_.tcp_sim().telemetry()) {
    m_segments_ = r->counter("tcp.segments_sent");
    m_retransmissions_ = r->counter("tcp.retransmissions");
    m_timeouts_ = r->counter("tcp.timeouts");
    m_fast_recoveries_ = r->counter("tcp.fast_recoveries");
    m_dup_acks_ = r->counter("tcp.dup_acks");
    m_cwnd_ = r->histogram("tcp.cwnd_bytes");
  }
}

TcpConnection::~TcpConnection() {
  disarm_rto();
  if (delack_timer_.valid()) endpoint_.tcp_sim().cancel(delack_timer_);
}

Packet TcpConnection::make_packet(TcpFlag flags, std::uint32_t seq,
                                  std::uint32_t payload) const {
  Packet pkt;
  pkt.flow = key_;
  pkt.flow_id = flow_id_;
  pkt.flags = flags;
  pkt.seq = seq;
  pkt.payload = payload;
  return pkt;
}

void TcpConnection::open() {
  if (!sender_ || state_ != TcpState::Closed) {
    throw std::logic_error("TcpConnection::open: not a fresh active endpoint");
  }
  state_ = TcpState::SynSent;
  endpoint_.tcp_transmit(make_packet(TcpFlag::Syn, 0, 0));
  arm_rto();
}

void TcpConnection::on_packet(const Packet& pkt) {
  if (state_ == TcpState::Done) {
    // Late duplicates after close: re-ACK so a retransmitting peer can
    // finish, then ignore.
    if (!sender_) transmit_ack(pkt.sent_at);
    return;
  }
  if (sender_) {
    handle_sender_packet(pkt);
  } else {
    handle_receiver_packet(pkt);
  }
}

void TcpConnection::transmit_ack(SimTime echo, bool ece) {
  Packet ack = make_packet(TcpFlag::Ack, 0, 0);
  ack.ack_seq = rcv_nxt_;
  ack.ts_echo = echo;
  ack.ece = ece;
  endpoint_.tcp_transmit(std::move(ack));
}

void TcpConnection::dctcp_on_ack(const Packet& pkt, std::uint32_t acked) {
  // DCTCP sender: account marked vs total bytes, and once per window of
  // data update alpha and apply the proportional reduction.
  dctcp_bytes_acked_ += acked;
  if (pkt.ece) dctcp_bytes_marked_ += acked;
  if (pkt.ack_seq < dctcp_window_end_) return;
  if (dctcp_bytes_acked_ > 0) {
    const double fraction = static_cast<double>(dctcp_bytes_marked_) /
                            static_cast<double>(dctcp_bytes_acked_);
    dctcp_alpha_ = (1.0 - config_.dctcp_gain) * dctcp_alpha_ +
                   config_.dctcp_gain * fraction;
    if (dctcp_bytes_marked_ > 0 && !in_recovery_) {
      cwnd_ = std::max(cwnd_ * (1.0 - dctcp_alpha_ / 2.0),
                       static_cast<double>(config_.mss));
      ssthresh_ = std::max(static_cast<std::uint32_t>(cwnd_),
                           2 * config_.mss);
    }
  }
  dctcp_bytes_acked_ = 0;
  dctcp_bytes_marked_ = 0;
  dctcp_window_end_ = snd_nxt_;
}

// ---------------------------------------------------------------- sender --

void TcpConnection::handle_sender_packet(const Packet& pkt) {
  if (state_ == TcpState::SynSent) {
    if (pkt.has(TcpFlag::Syn) && pkt.has(TcpFlag::Ack) && pkt.ack_seq >= 1) {
      if (pkt.ts_echo != SimTime{}) {
        const SimTime rtt = endpoint_.tcp_sim().now() - pkt.ts_echo;
        rto_.add_sample(rtt);
        endpoint_.tcp_rtt_sample(rtt);
      }
      snd_una_ = 1;
      snd_nxt_ = 1;
      rcv_nxt_ = 1;  // peer's SYN consumed one number
      cwnd_ = static_cast<double>(config_.initial_cwnd_segments) *
              config_.mss;
      ssthresh_ = config_.initial_ssthresh;
      state_ = TcpState::Established;
      disarm_rto();
      transmit_ack(pkt.sent_at);
      if (on_established) on_established();
      if (payload_bytes_ == 0) {
        if (!complete_reported_) {
          complete_reported_ = true;
          if (on_complete) on_complete();
        }
        maybe_send_fin();
      } else {
        try_send();
      }
    }
    return;
  }

  if (pkt.has(TcpFlag::Syn)) {
    // Retransmitted SYN|ACK: our handshake ACK was lost. Re-ACK.
    transmit_ack(pkt.sent_at);
    return;
  }
  if (!pkt.has(TcpFlag::Ack)) return;

  if (pkt.ack_seq > snd_una_) {
    on_new_ack(pkt);
  } else if (pkt.ack_seq == snd_una_ && flight_size() > 0) {
    ++stats_.dup_acks_received;
    if (m_dup_acks_ != nullptr) m_dup_acks_->inc();
    on_dup_ack();
  }
}

void TcpConnection::on_new_ack(const Packet& pkt) {
  if (pkt.ts_echo != SimTime{}) {
    const SimTime rtt = endpoint_.tcp_sim().now() - pkt.ts_echo;
    rto_.add_sample(rtt);
    endpoint_.tcp_rtt_sample(rtt);
  }

  const std::uint32_t acked = pkt.ack_seq - snd_una_;
  stats_.bytes_acked += acked;
  if (config_.dctcp) dctcp_on_ack(pkt, acked);

  if (in_recovery_) {
    if (pkt.ack_seq >= recover_) {
      // Full ACK: leave recovery, deflate to ssthresh (RFC 6582).
      in_recovery_ = false;
      dupacks_ = 0;
      cwnd_ = static_cast<double>(ssthresh_);
      snd_una_ = pkt.ack_seq;
      if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    } else {
      // Partial ACK: retransmit the next hole, deflate by the amount
      // acked, inflate by one MSS; stay in recovery.
      snd_una_ = pkt.ack_seq;
      if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
      cwnd_ = std::max(static_cast<double>(config_.mss),
                       cwnd_ - acked + config_.mss);
      if (snd_una_ < data_end_) {
        send_segment(snd_una_, /*is_retransmission=*/true);
      }
    }
  } else {
    snd_una_ = pkt.ack_seq;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    dupacks_ = 0;
    if (cwnd_ < static_cast<double>(ssthresh_)) {
      cwnd_ += config_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(config_.mss) *
               static_cast<double>(config_.mss) / cwnd_;  // AIMD increase
    }
  }

  // FIN acknowledged?
  if (fin_sent_ && pkt.ack_seq >= data_end_ + 1) {
    state_ = TcpState::Done;
    disarm_rto();
    return;
  }

  if (snd_una_ >= data_end_ && !complete_reported_) {
    complete_reported_ = true;
    if (on_complete) on_complete();
  }

  maybe_send_fin();
  try_send();

  if (m_cwnd_ != nullptr) {
    m_cwnd_->record(static_cast<std::uint64_t>(cwnd_));
  }

  if (flight_size() > 0 || (fin_sent_ && state_ != TcpState::Done)) {
    arm_rto();
  } else {
    disarm_rto();
  }
}

void TcpConnection::on_dup_ack() {
  if (in_recovery_) {
    cwnd_ += config_.mss;  // window inflation per extra dup ACK
    try_send();
    return;
  }
  ++dupacks_;
  if (dupacks_ == 3) enter_fast_recovery();
}

void TcpConnection::enter_fast_recovery() {
  ++stats_.fast_recoveries;
  if (m_fast_recoveries_ != nullptr) m_fast_recoveries_->inc();
  in_recovery_ = true;
  recover_ = snd_nxt_;
  const std::uint32_t flight = flight_size();
  ssthresh_ = std::max(flight / 2, 2 * config_.mss);
  cwnd_ = static_cast<double>(ssthresh_) + 3.0 * config_.mss;
  if (snd_una_ < data_end_) {
    send_segment(snd_una_, /*is_retransmission=*/true);
  } else if (fin_sent_) {
    endpoint_.tcp_transmit(make_packet(TcpFlag::Fin | TcpFlag::Ack,
                                       data_end_, 0));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
  }
  arm_rto();
}

std::uint32_t TcpConnection::effective_window() const {
  const auto cw = static_cast<std::uint32_t>(
      std::max(cwnd_, static_cast<double>(config_.mss)));
  return std::min(cw, config_.rwnd);
}

void TcpConnection::try_send() {
  if (state_ != TcpState::Established && state_ != TcpState::FinSent) return;
  const std::uint32_t win = effective_window();
  while (snd_nxt_ < data_end_) {
    const std::uint32_t len =
        std::min<std::uint32_t>(config_.mss, data_end_ - snd_nxt_);
    if (snd_nxt_ + len > snd_una_ + win) break;
    send_segment(snd_nxt_, /*is_retransmission=*/false);
    snd_nxt_ += len;
  }
  if (flight_size() > 0 && !rto_timer_.valid()) arm_rto();
}

void TcpConnection::send_segment(std::uint32_t seq, bool is_retransmission) {
  const std::uint32_t len =
      std::min<std::uint32_t>(config_.mss, data_end_ - seq);
  Packet pkt = make_packet(TcpFlag::Ack, seq, len);
  pkt.ack_seq = rcv_nxt_;
  endpoint_.tcp_transmit(std::move(pkt));
  ++stats_.segments_sent;
  if (m_segments_ != nullptr) m_segments_->inc();
  if (is_retransmission) {
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
  }
}

void TcpConnection::maybe_send_fin() {
  if (fin_sent_ || state_ != TcpState::Established) return;
  if (snd_una_ < data_end_ || snd_nxt_ > data_end_) return;
  if (snd_una_ == data_end_) {
    Packet fin = make_packet(TcpFlag::Fin | TcpFlag::Ack, data_end_, 0);
    fin.ack_seq = rcv_nxt_;
    endpoint_.tcp_transmit(std::move(fin));
    fin_sent_ = true;
    state_ = TcpState::FinSent;
    arm_rto();
  }
}

void TcpConnection::on_rto() {
  rto_timer_ = {};
  ++stats_.timeouts;
  if (m_timeouts_ != nullptr) m_timeouts_->inc();
  rto_.backoff();

  if (state_ == TcpState::SynSent) {
    endpoint_.tcp_transmit(make_packet(TcpFlag::Syn, 0, 0));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
    arm_rto();
    return;
  }

  const std::uint32_t flight = flight_size();
  ssthresh_ = std::max(flight / 2, 2 * config_.mss);
  cwnd_ = static_cast<double>(config_.mss);  // loss window (RFC 5681)
  in_recovery_ = false;
  dupacks_ = 0;

  if (fin_sent_ && snd_una_ >= data_end_) {
    endpoint_.tcp_transmit(
        make_packet(TcpFlag::Fin | TcpFlag::Ack, data_end_, 0));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
    arm_rto();
    return;
  }

  // Go-back-N: rewind and let try_send re-emit from the first hole.
  snd_nxt_ = snd_una_;
  if (snd_una_ < data_end_) {
    send_segment(snd_una_, /*is_retransmission=*/true);
    snd_nxt_ = snd_una_ + std::min<std::uint32_t>(config_.mss,
                                                  data_end_ - snd_una_);
  }
  arm_rto();
}

void TcpConnection::arm_rto() {
  disarm_rto();
  rto_timer_ =
      endpoint_.tcp_sim().schedule_in(rto_.rto(), [this] { on_rto(); });
}

void TcpConnection::disarm_rto() {
  if (rto_timer_.valid()) {
    endpoint_.tcp_sim().cancel(rto_timer_);
    rto_timer_ = {};
  }
}

// -------------------------------------------------------------- receiver --

void TcpConnection::handle_receiver_packet(const Packet& pkt) {
  if (pkt.has(TcpFlag::Syn)) {
    if (state_ == TcpState::Closed || state_ == TcpState::SynRcvd) {
      state_ = TcpState::SynRcvd;
      rcv_nxt_ = 1;
      Packet synack = make_packet(TcpFlag::Syn | TcpFlag::Ack, 0, 0);
      synack.ack_seq = 1;
      synack.ts_echo = pkt.sent_at;
      endpoint_.tcp_transmit(std::move(synack));
    }
    return;
  }

  if (state_ == TcpState::SynRcvd && pkt.has(TcpFlag::Ack)) {
    state_ = TcpState::Established;
    snd_una_ = 1;
    snd_nxt_ = 1;
    if (on_established) on_established();
  }
  if (state_ != TcpState::Established) return;

  if (pkt.payload > 0) {
    accept_payload(pkt);
    return;
  }

  if (pkt.has(TcpFlag::Fin)) {
    if (pkt.seq == rcv_nxt_) {
      rcv_nxt_ += 1;  // FIN consumes one sequence number
      state_ = TcpState::Done;
      if (delack_timer_.valid()) {
        endpoint_.tcp_sim().cancel(delack_timer_);
        delack_timer_ = {};
      }
      transmit_ack(pkt.sent_at);
      if (on_closed) on_closed();
    } else {
      // FIN beyond a hole: dup-ACK so the sender keeps retransmitting.
      transmit_ack(pkt.sent_at);
    }
  }
}

void TcpConnection::accept_payload(const Packet& pkt) {
  const std::uint32_t s = pkt.seq;
  const std::uint32_t l = pkt.payload;
  bool advanced = false;
  if (config_.dctcp && pkt.ecn) pending_ece_ = true;

  if (s + l <= rcv_nxt_) {
    // Entirely duplicate: immediate (dup) ACK.
    flush_ack(pkt.sent_at);
    return;
  }
  if (s <= rcv_nxt_) {
    rcv_nxt_ = s + l;
    advanced = true;
    // Drain any out-of-order segments now contiguous.
    for (auto it = ooo_.begin(); it != ooo_.end();) {
      if (it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->first + it->second);
        it = ooo_.erase(it);
      } else {
        break;
      }
    }
  } else {
    ooo_.try_emplace(s, l);
  }

  if (advanced) {
    const std::uint64_t total = rcv_nxt_ - 1;  // payload starts at seq 1
    const std::uint64_t delta = total - bytes_received_;
    bytes_received_ = total;
    if (on_data && delta > 0) on_data(delta);
  }

  const bool gap = !ooo_.empty() || !advanced;
  if (gap || !config_.delayed_ack) {
    flush_ack(pkt.sent_at);
  } else {
    ++unacked_segments_;
    if (unacked_segments_ >= 2) {
      flush_ack(pkt.sent_at);
    } else {
      schedule_delack(pkt.sent_at);
    }
  }
}

void TcpConnection::flush_ack(SimTime echo) {
  unacked_segments_ = 0;
  if (delack_timer_.valid()) {
    endpoint_.tcp_sim().cancel(delack_timer_);
    delack_timer_ = {};
  }
  const bool ece = pending_ece_;
  pending_ece_ = false;
  transmit_ack(echo, ece);
}

void TcpConnection::schedule_delack(SimTime echo) {
  if (delack_timer_.valid()) return;
  delack_timer_ = endpoint_.tcp_sim().schedule_in(
      sim::SimTime::from_us(500), [this, echo] {
        delack_timer_ = {};
        if (unacked_segments_ > 0) flush_ack(echo);
      });
}

std::uint64_t TcpConnection::bytes_done() const {
  if (sender_) {
    if (snd_una_ == 0) return 0;
    const std::uint64_t acked = snd_una_ - 1;
    return std::min<std::uint64_t>(acked, payload_bytes_);
  }
  return bytes_received_;
}

}  // namespace esim::tcp
