// End host: NIC + TCP connection demultiplexer.
//
// A Host owns its TCP connections and transmits through a single uplink
// Link toward its ToR (or, in approximate simulations, toward the cluster
// model standing in for the fabric — the host neither knows nor cares,
// which is exactly the boundary contract of paper §5: approximated clusters
// still run full TCP stacks).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"
#include "sim/component.h"
#include "stats/collectors.h"
#include "tcp/tcp_connection.h"

namespace esim::tcp {

/// A server. Implements PacketHandler (the downlink delivers into it) and
/// TcpEndpoint (its connections transmit through it).
class Host : public sim::Component,
             public net::PacketHandler,
             public TcpEndpoint {
 public:
  /// `id` is the topology-assigned dense host id; `tcp_config` applies to
  /// every connection this host originates or accepts.
  Host(sim::Simulator& sim, std::string name, net::HostId id,
       const TcpConnection::Config& tcp_config = {});

  ~Host() override;

  /// Dense host id.
  net::HostId id() const { return id_; }

  /// Attaches the transmit link toward the fabric. Must be called before
  /// any flow starts. The link is owned by the simulator.
  void set_uplink(net::Link* uplink) { uplink_ = uplink; }

  /// The transmit link, or nullptr before set_uplink.
  net::Link* uplink() const { return uplink_; }

  /// Opens a new flow of `bytes` payload to `dst` (well-known port 80) and
  /// starts the handshake. Returns the connection, owned by this host.
  TcpConnection* open_flow(net::HostId dst, std::uint64_t bytes,
                           std::uint64_t flow_id);

  /// Active + passive connections keyed by this side's outgoing 4-tuple.
  const std::unordered_map<net::FlowKey, std::unique_ptr<TcpConnection>,
                           net::FlowKeyHash>&
  connections() const {
    return connections_;
  }

  /// Called when a passive connection is created in response to a SYN,
  /// before the SYN is processed; use it to attach callbacks.
  std::function<void(TcpConnection&)> on_accept;

  /// Routes this host's RTT samples into a shared collector (Figure 4).
  void set_rtt_collector(stats::LatencyCollector* collector) {
    rtt_collector_ = collector;
  }

  /// Packets handed to connections vs. dropped for want of one.
  const stats::PacketCounter& counter() const { return counter_; }

  // --- memoization hooks (src/memo) ------------------------------------

  /// The ephemeral port the NEXT open_flow will consume.
  std::uint16_t next_port() const { return next_port_; }

  /// The per-host packet sequence of the last transmitted packet (the low
  /// 40 bits of its packet id).
  std::uint64_t next_packet_seq() const { return next_packet_seq_; }

  /// True if a connection (active or passive, completed or not) exists
  /// under this side's outgoing 4-tuple `key`. Memo hit verification uses
  /// this to reject fast-forward when a replayed phase's predicted 4-tuple
  /// would collide with a stale connection left by an earlier port wrap —
  /// a live run would find and confuse that connection, a replay wouldn't.
  bool has_connection(const net::FlowKey& key) const {
    return connections_.find(key) != connections_.end();
  }

  /// Replays a memoized phase's identity consumption: advances the
  /// ephemeral-port allocator by `flows_opened` opens (with the same wrap
  /// rule open_flow applies) and the packet-id sequence by `packets_sent`,
  /// so post-phase identities are bit-identical to a live run. The
  /// connections themselves are NOT materialized; see has_connection.
  void memo_advance_identity(std::uint64_t flows_opened,
                             std::uint64_t packets_sent) {
    for (std::uint64_t i = 0; i < flows_opened; ++i) {
      next_port_ = next_port_ >= 60'000 ? 10'000 : next_port_ + 1;
    }
    next_packet_seq_ += packets_sent;
  }

  /// Applies a memoized phase's accounting delta (src/memo replay).
  void memo_apply_counter_delta(const stats::PacketCounter& d) {
    counter_.sent += d.sent;
    counter_.delivered += d.delivered;
    counter_.dropped += d.dropped;
  }

  // --- net::PacketHandler ---
  void handle_packet(net::Packet pkt) override;

  // --- TcpEndpoint ---
  void tcp_transmit(net::Packet pkt) override;
  sim::Simulator& tcp_sim() override { return sim(); }
  void tcp_rtt_sample(sim::SimTime rtt) override;

 private:
  net::HostId id_;
  TcpConnection::Config tcp_config_;
  net::Link* uplink_ = nullptr;
  std::unordered_map<net::FlowKey, std::unique_ptr<TcpConnection>,
                     net::FlowKeyHash>
      connections_;
  stats::LatencyCollector* rtt_collector_ = nullptr;
  stats::PacketCounter counter_;
  std::uint16_t next_port_ = 10'000;
  std::uint64_t next_packet_seq_ = 0;
};

}  // namespace esim::tcp
