// End host: NIC + TCP connection demultiplexer.
//
// A Host owns its TCP connections and transmits through a single uplink
// Link toward its ToR (or, in approximate simulations, toward the cluster
// model standing in for the fabric — the host neither knows nor cares,
// which is exactly the boundary contract of paper §5: approximated clusters
// still run full TCP stacks).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"
#include "sim/component.h"
#include "stats/collectors.h"
#include "tcp/tcp_connection.h"

namespace esim::tcp {

/// A server. Implements PacketHandler (the downlink delivers into it) and
/// TcpEndpoint (its connections transmit through it).
class Host : public sim::Component,
             public net::PacketHandler,
             public TcpEndpoint {
 public:
  /// `id` is the topology-assigned dense host id; `tcp_config` applies to
  /// every connection this host originates or accepts.
  Host(sim::Simulator& sim, std::string name, net::HostId id,
       const TcpConnection::Config& tcp_config = {});

  ~Host() override;

  /// Dense host id.
  net::HostId id() const { return id_; }

  /// Attaches the transmit link toward the fabric. Must be called before
  /// any flow starts. The link is owned by the simulator.
  void set_uplink(net::Link* uplink) { uplink_ = uplink; }

  /// The transmit link, or nullptr before set_uplink.
  net::Link* uplink() const { return uplink_; }

  /// Opens a new flow of `bytes` payload to `dst` (well-known port 80) and
  /// starts the handshake. Returns the connection, owned by this host.
  TcpConnection* open_flow(net::HostId dst, std::uint64_t bytes,
                           std::uint64_t flow_id);

  /// Active + passive connections keyed by this side's outgoing 4-tuple.
  const std::unordered_map<net::FlowKey, std::unique_ptr<TcpConnection>,
                           net::FlowKeyHash>&
  connections() const {
    return connections_;
  }

  /// Called when a passive connection is created in response to a SYN,
  /// before the SYN is processed; use it to attach callbacks.
  std::function<void(TcpConnection&)> on_accept;

  /// Routes this host's RTT samples into a shared collector (Figure 4).
  void set_rtt_collector(stats::LatencyCollector* collector) {
    rtt_collector_ = collector;
  }

  /// Packets handed to connections vs. dropped for want of one.
  const stats::PacketCounter& counter() const { return counter_; }

  // --- net::PacketHandler ---
  void handle_packet(net::Packet pkt) override;

  // --- TcpEndpoint ---
  void tcp_transmit(net::Packet pkt) override;
  sim::Simulator& tcp_sim() override { return sim(); }
  void tcp_rtt_sample(sim::SimTime rtt) override;

 private:
  net::HostId id_;
  TcpConnection::Config tcp_config_;
  net::Link* uplink_ = nullptr;
  std::unordered_map<net::FlowKey, std::unique_ptr<TcpConnection>,
                     net::FlowKeyHash>
      connections_;
  stats::LatencyCollector* rtt_collector_ = nullptr;
  stats::PacketCounter counter_;
  std::uint16_t next_port_ = 10'000;
  std::uint64_t next_packet_seq_ = 0;
};

}  // namespace esim::tcp
