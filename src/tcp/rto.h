// RFC 6298 retransmission-timeout estimation.
#pragma once

#include "sim/time.h"

namespace esim::tcp {

/// Smoothed RTT / RTT variance estimator with exponential timer backoff,
/// following RFC 6298 (alpha = 1/8, beta = 1/4, RTO = SRTT + 4*RTTVAR).
///
/// RTT samples come from the simulated TCP timestamp option, so samples
/// from retransmitted segments are valid (RFC 7323 semantics) and Karn's
/// algorithm is unnecessary.
class RtoEstimator {
 public:
  struct Config {
    /// RTO before any RTT sample exists (RFC: 1 s; scaled down because a
    /// simulated data center handshake RTT is tens of microseconds).
    sim::SimTime initial = sim::SimTime::from_ms(100);
    /// Lower bound on the computed RTO (Linux: 200 ms; data center
    /// simulation convention, e.g. the DCTCP evaluation: ~10 ms).
    sim::SimTime min = sim::SimTime::from_ms(10);
    /// Upper bound on the computed RTO.
    sim::SimTime max = sim::SimTime::from_sec(60);
    /// Clock granularity G in RFC 6298's `RTO = SRTT + max(G, 4*RTTVAR)`.
    /// The variance term is kept on integer nanoseconds, so on a perfectly
    /// stable RTT it truncates to zero; without this floor the RTO would
    /// collapse to exactly SRTT and the first microsecond of jitter would
    /// trigger a spurious retransmission. Linux uses one jiffy (1-4 ms);
    /// we default to 1 ms.
    sim::SimTime granularity = sim::SimTime::from_ms(1);
  };

  /// Default-configured estimator.
  RtoEstimator();

  explicit RtoEstimator(const Config& config);

  /// Folds in one RTT measurement and recomputes the RTO (also clears any
  /// backoff, per RFC 6298 §5.7).
  void add_sample(sim::SimTime rtt);

  /// Current retransmission timeout, including backoff.
  sim::SimTime rto() const { return rto_; }

  /// Doubles the RTO (clamped to max). Call on retransmission timeout.
  void backoff();

  /// Smoothed RTT (zero until the first sample).
  sim::SimTime srtt() const { return srtt_; }

  /// RTT variance (zero until the first sample).
  sim::SimTime rttvar() const { return rttvar_; }

  /// True once at least one sample has been folded in.
  bool has_sample() const { return has_sample_; }

 private:
  void clamp();

  Config config_;
  sim::SimTime srtt_;
  sim::SimTime rttvar_;
  sim::SimTime rto_;
  bool has_sample_ = false;
};

}  // namespace esim::tcp
