// Output-queued switch with per-destination ECMP forwarding.
//
// A switch owns nothing but its forwarding state: output Links are created
// by the topology builder (they need destination handlers) and attached as
// ports. Forwarding is exact-match on destination host with a list of
// equal-cost output ports, reduced by the deterministic ECMP hash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ecmp.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/component.h"
#include "stats/collectors.h"

namespace esim::telemetry {
class Counter;
}

namespace esim::net {

/// Store-and-forward output-queued switch.
class Switch : public sim::Component, public PacketHandler {
 public:
  /// `id` is the dense switch id used as the ECMP salt; `processing_delay`
  /// models the forwarding pipeline (0 by default, like INET's EtherSwitch).
  Switch(sim::Simulator& sim, std::string name, SwitchId id,
         sim::SimTime processing_delay = sim::SimTime{});

  /// This switch's dense id.
  SwitchId id() const { return id_; }

  /// Attaches an output port; returns its port index.
  std::uint32_t add_port(Link* link);

  /// Declares the equal-cost output ports toward destination host `dst`.
  /// Ports must be listed in a canonical order (ascending neighbor id) so
  /// path replay in approx/features.cc matches; ecmp_index picks among
  /// them.
  void set_route(HostId dst, std::vector<std::uint32_t> ports);

  /// Routing lookup used by forwarding and by path replay. Returns the
  /// chosen port for `flow`; throws if no route exists.
  std::uint32_t route_port(const FlowKey& flow) const;

  /// Delivers a packet into the forwarding pipeline.
  void handle_packet(Packet pkt) override;

  /// Number of attached ports.
  std::size_t port_count() const { return ports_.size(); }

  /// The link behind port `i`.
  Link* port(std::uint32_t i) const { return ports_.at(i); }

  /// Packets forwarded (excludes packets with no route, which are counted
  /// as dropped).
  const stats::PacketCounter& counter() const { return counter_; }

  /// When disabled, ECMP hashes only the (src_host, dst_host) pair —
  /// ephemeral ports are zeroed before ecmp_index — so every flow between
  /// a host pair takes the same path regardless of port assignment. This
  /// makes repeated workload phases path-identical even though each phase
  /// consumes fresh ephemeral ports, which is what phase memoization
  /// (src/memo) needs for dense cache hits on multi-spine fabrics.
  /// Default: enabled (per-flow 5-tuple ECMP, the paper's configuration).
  void set_port_sensitive_ecmp(bool on) { port_sensitive_ecmp_ = on; }
  bool port_sensitive_ecmp() const { return port_sensitive_ecmp_; }

  /// Applies a memoized phase's accounting delta (src/memo replay).
  void memo_apply_counter_delta(const stats::PacketCounter& d);

 private:
  void forward(Packet pkt);

  SwitchId id_;
  bool port_sensitive_ecmp_ = true;
  sim::SimTime processing_delay_;
  std::vector<Link*> ports_;
  std::vector<std::vector<std::uint32_t>> routes_;  // dst host -> ports
  stats::PacketCounter counter_;
  // Aggregate net.switch.* series; null when telemetry is off.
  telemetry::Counter* m_received_ = nullptr;
  telemetry::Counter* m_forwarded_ = nullptr;
  telemetry::Counter* m_dropped_ = nullptr;
};

}  // namespace esim::net
