#include "net/link.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"

namespace esim::net {

Link::Link(sim::Simulator& sim, std::string name, const Config& config,
           PacketHandler* dst)
    : Component(sim, std::move(name)), config_{config}, dst_{dst} {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  if (dst_ == nullptr) {
    throw std::invalid_argument("Link: null destination");
  }
  if (auto* r = sim.telemetry()) {
    m_sent_ = r->counter("net.link.sent");
    m_delivered_ = r->counter("net.link.delivered");
    m_dropped_ = r->counter("net.link.dropped");
    m_queue_depth_ = r->histogram("net.link.queue_depth_bytes");
  }
}

sim::SimTime Link::tx_time(std::uint32_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return sim::SimTime::from_ns(
      static_cast<std::int64_t>(std::llround(seconds * 1e9)));
}

void Link::send(Packet pkt) {
  ++counter_.sent;
  if (m_sent_ != nullptr) {
    m_sent_->inc();
    m_queue_depth_->record(queued_bytes_);
  }
  const std::uint32_t size = pkt.size_bytes();
  if (queued_bytes_ + size > config_.queue_capacity_bytes) {
    ++counter_.dropped;
    if (m_dropped_ != nullptr) m_dropped_->inc();
    if (on_drop) on_drop(pkt);
    return;
  }
  if (config_.ecn_threshold_bytes != 0 &&
      queued_bytes_ >= config_.ecn_threshold_bytes) {
    pkt.ecn = true;
  }
  queued_bytes_ += size;
  queue_.push_back(std::move(pkt));
  pump();
}

void Link::memo_apply_counter_delta(const stats::PacketCounter& d) {
  counter_.sent += d.sent;
  counter_.delivered += d.delivered;
  counter_.dropped += d.dropped;
  if (m_sent_ != nullptr) m_sent_->inc(d.sent);
  if (m_delivered_ != nullptr) m_delivered_->inc(d.delivered);
  if (m_dropped_ != nullptr) m_dropped_->inc(d.dropped);
}

void Link::pump() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= pkt.size_bytes();
  schedule_in(tx_time(pkt.size_bytes()),
              [this, pkt = std::move(pkt)]() mutable {
                finish_transmit(std::move(pkt));
              });
}

void Link::finish_transmit(Packet pkt) {
  busy_ = false;
  const sim::SimTime arrive_at = now() + config_.propagation;
  if (on_transmit) on_transmit(pkt, arrive_at);
  ++counter_.delivered;
  if (m_delivered_ != nullptr) m_delivered_->inc();
  // Deliveries are keyed by packet id so same-instant arrivals at the
  // receiver order identically under every engine (see event_queue.h).
  const std::uint64_t key = pkt.id;
  if (remote_) {
    remote_(arrive_at, key, [dst = dst_, pkt = std::move(pkt)]() mutable {
      dst->handle_packet(std::move(pkt));
    });
  } else {
    sim().schedule_at_keyed(arrive_at, key,
                            [dst = dst_, pkt = std::move(pkt)]() mutable {
                              dst->handle_packet(std::move(pkt));
                            });
  }
  pump();
}

}  // namespace esim::net
