#include "net/packet.h"

#include <sstream>

namespace esim::net {

std::string Packet::to_string() const {
  std::ostringstream os;
  os << "pkt#" << id << " " << flow.src_host << ":" << flow.src_port << "->"
     << flow.dst_host << ":" << flow.dst_port << " [";
  if (has(TcpFlag::Syn)) os << "S";
  if (has(TcpFlag::Ack)) os << "A";
  if (has(TcpFlag::Fin)) os << "F";
  os << "] seq=" << seq << " ack=" << ack_seq << " len=" << payload;
  if (ecn) os << " ECN";
  return os.str();
}

}  // namespace esim::net
