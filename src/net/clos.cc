#include "net/clos.h"

#include <stdexcept>

#include "net/ecmp.h"

namespace esim::net {

void ClosSpec::validate() const {
  if (clusters == 0 || tors_per_cluster == 0 || aggs_per_cluster == 0 ||
      hosts_per_tor == 0) {
    throw std::invalid_argument("ClosSpec: all layer sizes must be positive");
  }
  if (clusters == 1 && cores != 0) {
    throw std::invalid_argument(
        "ClosSpec: single-cluster (leaf-spine) topologies have no core "
        "layer");
  }
  if (clusters > 1 && cores == 0) {
    throw std::invalid_argument(
        "ClosSpec: multi-cluster topologies need at least one core switch");
  }
}

std::uint32_t ClosSpec::cluster_of_switch(SwitchId s) const {
  if (is_tor(s)) return s / tors_per_cluster;
  if (is_agg(s)) return (s - total_tors()) / aggs_per_cluster;
  throw std::invalid_argument("cluster_of_switch: core switch " +
                              std::to_string(s) + " belongs to no cluster");
}

std::string ClosSpec::tor_name(std::uint32_t cluster,
                               std::uint32_t tor) const {
  return "c" + std::to_string(cluster) + ".tor" + std::to_string(tor);
}

std::string ClosSpec::agg_name(std::uint32_t cluster,
                               std::uint32_t agg) const {
  return "c" + std::to_string(cluster) + ".agg" + std::to_string(agg);
}

std::string ClosSpec::core_name(std::uint32_t core) const {
  return "core" + std::to_string(core);
}

std::string ClosSpec::host_name(HostId h) const {
  return "c" + std::to_string(cluster_of_host(h)) + ".h" + std::to_string(h);
}

ClosPath compute_path(const ClosSpec& spec, const FlowKey& flow) {
  if (flow.src_host >= spec.total_hosts() ||
      flow.dst_host >= spec.total_hosts()) {
    throw std::invalid_argument("compute_path: host id out of range");
  }
  if (flow.src_host == flow.dst_host) {
    throw std::invalid_argument("compute_path: src == dst");
  }

  const std::uint32_t src_cluster = spec.cluster_of_host(flow.src_host);
  const std::uint32_t dst_cluster = spec.cluster_of_host(flow.dst_host);
  const SwitchId src_tor = spec.tor_of_host(flow.src_host);
  const SwitchId dst_tor = spec.tor_of_host(flow.dst_host);

  ClosPath path;
  path.hops[path.len++] = src_tor;
  if (src_tor == dst_tor) return path;

  // Up to an Agg of the source cluster. The builder lists ToR uplinks in
  // ascending agg index, so ecmp_index indexes agg order directly.
  const std::uint32_t up_agg =
      ecmp_index(flow, src_tor, spec.aggs_per_cluster);

  if (src_cluster == dst_cluster) {
    path.hops[path.len++] = spec.agg_id(src_cluster, up_agg);
    path.hops[path.len++] = dst_tor;
    return path;
  }

  const SwitchId src_agg = spec.agg_id(src_cluster, up_agg);
  path.hops[path.len++] = src_agg;

  // Agg uplinks are listed in ascending core index.
  const std::uint32_t core = ecmp_index(flow, src_agg, spec.cores);
  const SwitchId core_sw = spec.core_id(core);
  path.hops[path.len++] = core_sw;

  // Core downlinks toward the destination cluster are listed in ascending
  // agg index within that cluster.
  const std::uint32_t down_agg =
      ecmp_index(flow, core_sw, spec.aggs_per_cluster);
  path.hops[path.len++] = spec.agg_id(dst_cluster, down_agg);
  path.hops[path.len++] = dst_tor;
  return path;
}

}  // namespace esim::net
