// Clos topology arithmetic: sizes, id mappings, and deterministic path
// replay.
//
// This header is pure topology math, shared by three consumers:
//   * the builders in src/core that instantiate switches/links/hosts,
//   * the micro-model feature extractor, which needs "the ToR, Cluster and
//     Core switches that the packet would pass through" (paper §4.2)
//     without simulating the hops, and
//   * tests, which cross-check replayed paths against packets actually
//     forwarded.
//
// One spec covers both topologies the paper uses: a 3-layer Clos (Figure 2)
// when `clusters > 1`, and a leaf-spine (Figure 1's motivation experiment)
// as the degenerate single-cluster case with no core layer.
//
// Host numbering is cluster-major; switch ids are dense with all ToRs
// first, then all Aggs (the paper's "Cluster switches"), then Cores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace esim::net {

/// Parameters of a Clos/leaf-spine fabric.
struct ClosSpec {
  /// Number of clusters; 1 makes this a leaf-spine with no core layer.
  std::uint32_t clusters = 2;
  /// ToRs per cluster.
  std::uint32_t tors_per_cluster = 2;
  /// Aggregation ("Cluster") switches per cluster; every ToR connects to
  /// every Agg of its cluster.
  std::uint32_t aggs_per_cluster = 2;
  /// Servers per ToR.
  std::uint32_t hosts_per_tor = 4;
  /// Core switches; every Agg connects to every Core. Must be 0 iff
  /// clusters == 1.
  std::uint32_t cores = 2;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;

  // --- sizes ---
  std::uint32_t hosts_per_cluster() const {
    return tors_per_cluster * hosts_per_tor;
  }
  std::uint32_t total_hosts() const { return clusters * hosts_per_cluster(); }
  std::uint32_t total_tors() const { return clusters * tors_per_cluster; }
  std::uint32_t total_aggs() const { return clusters * aggs_per_cluster; }
  std::uint32_t total_switches() const {
    return total_tors() + total_aggs() + cores;
  }

  // --- host mapping ---
  std::uint32_t cluster_of_host(HostId h) const {
    return h / hosts_per_cluster();
  }
  /// ToR index within the host's cluster.
  std::uint32_t tor_index_of_host(HostId h) const {
    return (h % hosts_per_cluster()) / hosts_per_tor;
  }
  /// The global switch id of the host's ToR.
  SwitchId tor_of_host(HostId h) const {
    return tor_id(cluster_of_host(h), tor_index_of_host(h));
  }
  /// First host attached to a given ToR.
  HostId first_host_of_tor(std::uint32_t cluster, std::uint32_t tor) const {
    return cluster * hosts_per_cluster() + tor * hosts_per_tor;
  }

  // --- switch id mapping (dense: ToRs, then Aggs, then Cores) ---
  SwitchId tor_id(std::uint32_t cluster, std::uint32_t tor) const {
    return cluster * tors_per_cluster + tor;
  }
  SwitchId agg_id(std::uint32_t cluster, std::uint32_t agg) const {
    return total_tors() + cluster * aggs_per_cluster + agg;
  }
  SwitchId core_id(std::uint32_t core) const { return total_aggs() + total_tors() + core; }

  bool is_tor(SwitchId s) const { return s < total_tors(); }
  bool is_agg(SwitchId s) const {
    return s >= total_tors() && s < total_tors() + total_aggs();
  }
  bool is_core(SwitchId s) const {
    return s >= total_tors() + total_aggs() && s < total_switches();
  }
  /// Cluster owning a ToR or Agg id; throws for core ids.
  std::uint32_t cluster_of_switch(SwitchId s) const;

  // --- display names used by builders ("c0.tor1", "core3", ...) ---
  std::string tor_name(std::uint32_t cluster, std::uint32_t tor) const;
  std::string agg_name(std::uint32_t cluster, std::uint32_t agg) const;
  std::string core_name(std::uint32_t core) const;
  std::string host_name(HostId h) const;
};

/// The ordered switch sequence a packet traverses, as replayed from the
/// header and routing knowledge alone (no simulation state).
struct ClosPath {
  /// At most ToR, Agg, Core, Agg, ToR.
  SwitchId hops[5] = {0, 0, 0, 0, 0};
  std::uint32_t len = 0;

  bool operator==(const ClosPath&) const = default;
};

/// Replays the deterministic ECMP forwarding decisions for `flow` and
/// returns the switches the packet would traverse, in order. Matches the
/// FIBs constructed by core/full_builder exactly (tested). Requires
/// src_host != dst_host, both in range.
ClosPath compute_path(const ClosSpec& spec, const FlowKey& flow);

}  // namespace esim::net
