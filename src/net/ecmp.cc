#include "net/ecmp.h"

#include <cassert>

namespace esim::net {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint32_t ecmp_index(const FlowKey& flow, SwitchId deciding_switch,
                         std::uint32_t n) {
  assert(n > 0);
  std::uint64_t h = (static_cast<std::uint64_t>(flow.src_host) << 32) |
                    flow.dst_host;
  h = mix64(h);
  h ^= (static_cast<std::uint64_t>(flow.src_port) << 48) |
       (static_cast<std::uint64_t>(flow.dst_port) << 32) | deciding_switch;
  h = mix64(h);
  return static_cast<std::uint32_t>(h % n);
}

}  // namespace esim::net
