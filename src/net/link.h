// Links: the unidirectional output port + wire abstraction.
//
// A Link bundles what OMNeT++/INET splits across queue, MAC, and channel
// modules: a drop-tail byte-bounded FIFO, a serializer running at the link
// bandwidth, and a propagation-delay wire. Hosts and switches both transmit
// through Links. A Link delivers into a PacketHandler, normally by
// scheduling on its own engine; when the receiver lives in another PDES
// partition a remote scheduler is installed instead (see sim/parallel.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "net/packet.h"
#include "sim/component.h"
#include "stats/collectors.h"

namespace esim::telemetry {
class Counter;
class Histogram;
}

namespace esim::net {

/// Anything that can accept a packet from a Link (switches, hosts, and
/// approximated-cluster models).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;

  /// Takes ownership of the packet that just finished arriving.
  virtual void handle_packet(Packet pkt) = 0;
};

/// Schedules `fn` at absolute virtual time `at` on the *receiving* end's
/// engine, with the FES same-time priority `key` (the packet id for link
/// deliveries; see event_queue.h) preserved across the boundary. Used for
/// links that cross PDES partitions. Takes the event payload as a
/// sim::EventFn so per-packet delivery closures ride the FES's
/// small-buffer path end to end (no std::function boxing at the partition
/// boundary).
using RemoteScheduler =
    std::function<void(sim::SimTime at, std::uint64_t key, sim::EventFn fn)>;

/// Unidirectional link: drop-tail queue + serializer + propagation wire.
class Link : public sim::Component {
 public:
  struct Config {
    /// Serialization rate in bits per second (default 10 GbE).
    double bandwidth_bps = 10e9;
    /// Propagation delay (wire + receiver pipeline).
    sim::SimTime propagation = sim::SimTime::from_us(1);
    /// Queue capacity in bytes. Packets that do not fit are dropped.
    std::uint32_t queue_capacity_bytes = 150'000;
    /// ECN marking threshold in queued bytes: packets enqueued while the
    /// queue holds at least this much get the congestion-experienced bit
    /// set (DCTCP-style marking). 0 disables marking. The TCP stack here
    /// does not react to ECN (New Reno, as the paper ran); the bit is a
    /// header field the approximation models can observe and learn
    /// (paper §4.2).
    std::uint32_t ecn_threshold_bytes = 0;
  };

  /// Creates a link delivering into `dst` (must outlive the link).
  Link(sim::Simulator& sim, std::string name, const Config& config,
       PacketHandler* dst);

  /// Offers a packet for transmission; drops it if the queue is full.
  void send(Packet pkt);

  /// Bytes currently queued (excludes the packet being serialized).
  std::uint32_t queued_bytes() const { return queued_bytes_; }

  /// Packets currently queued.
  std::size_t queued_packets() const { return queue_.size(); }

  /// True while a packet is being serialized onto the wire.
  bool busy() const { return busy_; }

  /// Send/delivery/drop accounting for this link.
  const stats::PacketCounter& counter() const { return counter_; }

  /// Time to serialize `bytes` at this link's bandwidth.
  sim::SimTime tx_time(std::uint32_t bytes) const;

  /// Configured propagation delay.
  sim::SimTime propagation() const { return config_.propagation; }

  /// Observer invoked when a packet finishes serializing (it has left the
  /// sender and will arrive `propagation()` later). Used by the boundary
  /// trace recorder.
  std::function<void(const Packet&, sim::SimTime arrive_at)> on_transmit;

  /// Observer invoked when the queue rejects a packet.
  std::function<void(const Packet&)> on_drop;

  /// Routes deliveries through a cross-partition scheduler instead of the
  /// local engine. `propagation()` must be >= the engine's lookahead.
  void set_remote_scheduler(RemoteScheduler remote) {
    remote_ = std::move(remote);
  }

  /// Applies a memoized phase's accounting delta (src/memo replay): bumps
  /// the packet counter and the aggregate telemetry counters exactly as
  /// the live phase would have. The queue-depth histogram is NOT replayed
  /// (per-enqueue samples are not part of the recorded delta); histograms
  /// are diagnostics, not digest state.
  void memo_apply_counter_delta(const stats::PacketCounter& d);

 private:
  void pump();
  void finish_transmit(Packet pkt);

  Config config_;
  PacketHandler* dst_;
  std::deque<Packet> queue_;
  std::uint32_t queued_bytes_ = 0;
  bool busy_ = false;
  stats::PacketCounter counter_;
  RemoteScheduler remote_;
  // Aggregate per-simulator series (net.link.*), shared by every Link on
  // the engine. Null when telemetry is off; captured once at construction.
  telemetry::Counter* m_sent_ = nullptr;
  telemetry::Counter* m_delivered_ = nullptr;
  telemetry::Counter* m_dropped_ = nullptr;
  telemetry::Histogram* m_queue_depth_ = nullptr;
};

}  // namespace esim::net
