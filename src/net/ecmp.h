// ECMP: deterministic per-flow equal-cost multipath selection.
//
// The selection is a pure function of the flow key and the deciding
// switch's identity. Determinism matters beyond realism: the paper's micro
// model features include "the ToR, Cluster, and Core switches that the
// packet would pass through", which are recomputable from the packet header
// and routing knowledge precisely because ECMP here is deterministic
// (paper §4.2). approx/features.cc replays this function.
#pragma once

#include <cstdint>

#include "net/packet.h"

namespace esim::net {

/// Mixes the flow 4-tuple with a per-switch salt and reduces to [0, n).
/// n must be > 0. Per-flow stable: every packet of a flow takes the same
/// choice at the same switch, like hashed ECMP in real fabrics.
std::uint32_t ecmp_index(const FlowKey& flow, SwitchId deciding_switch,
                         std::uint32_t n);

}  // namespace esim::net
