// Packet representation.
//
// ElephantSim is a packet-level simulator in the ns-2/OMNeT++ tradition: a
// packet is a value type carrying the header fields the network and the TCP
// stacks act on, plus measurement timestamps. Only TCP/IPv4-shaped traffic
// is modeled (what the paper evaluates), so the TCP header is inlined
// rather than layered through encapsulation objects.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace esim::net {

/// Identifies a server (end host). Dense, assigned by the topology builder.
using HostId = std::uint32_t;

/// Identifies a switch. Dense over all switches in a topology.
using SwitchId = std::uint32_t;

/// TCP header flags used by the stack.
enum class TcpFlag : std::uint8_t {
  None = 0,
  Syn = 1 << 0,
  Ack = 1 << 1,
  Fin = 1 << 2,
};

constexpr TcpFlag operator|(TcpFlag a, TcpFlag b) {
  return static_cast<TcpFlag>(static_cast<std::uint8_t>(a) |
                              static_cast<std::uint8_t>(b));
}

constexpr bool has_flag(TcpFlag flags, TcpFlag f) {
  return (static_cast<std::uint8_t>(flags) & static_cast<std::uint8_t>(f)) !=
         0;
}

/// The connection 4-tuple (src host/port, dst host/port). Hosts stand in
/// for IP addresses.
struct FlowKey {
  HostId src_host = 0;
  HostId dst_host = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  constexpr bool operator==(const FlowKey&) const = default;

  /// The reverse direction (used to address ACKs).
  constexpr FlowKey reversed() const {
    return FlowKey{dst_host, src_host, dst_port, src_port};
  }
};

/// Hash for FlowKey, suitable for unordered_map.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t x = (static_cast<std::uint64_t>(k.src_host) << 32) |
                      k.dst_host;
    std::uint64_t y = (static_cast<std::uint64_t>(k.src_port) << 16) |
                      k.dst_port;
    x ^= y + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// Simulated Ethernet+IP+TCP header overhead in bytes.
inline constexpr std::uint32_t kHeaderBytes = 58;

/// Maximum TCP payload per packet (standard Ethernet MSS).
inline constexpr std::uint32_t kMss = 1460;

/// One simulated packet. Copyable value; ownership moves hop to hop.
struct Packet {
  /// Globally unique per simulation; assigned by the sender's stack.
  std::uint64_t id = 0;
  /// Connection addressing.
  FlowKey flow;
  /// Flow identifier assigned by the workload generator (0 = control).
  std::uint64_t flow_id = 0;

  // --- TCP header ---
  TcpFlag flags = TcpFlag::None;
  std::uint32_t seq = 0;      ///< First payload byte's sequence number.
  std::uint32_t ack_seq = 0;  ///< Cumulative ACK (valid when Ack set).
  std::uint32_t payload = 0;  ///< Payload bytes carried.
  bool ecn = false;           ///< ECN congestion-experienced mark (CE).
  bool ece = false;           ///< ECN-echo flag on ACKs (receiver -> sender).
  /// Echoed send timestamp (models the TCP timestamp option; used for RTT
  /// estimation by the stacks).
  sim::SimTime ts_echo;

  // --- measurement (not part of the wire format) ---
  /// When the packet first entered the network at the sending host.
  sim::SimTime sent_at;

  /// Total bytes on the wire.
  std::uint32_t size_bytes() const { return kHeaderBytes + payload; }

  /// True if this packet carries the given flag.
  bool has(TcpFlag f) const { return has_flag(flags, f); }

  /// Compact human-readable rendering for logs.
  std::string to_string() const;
};

}  // namespace esim::net
