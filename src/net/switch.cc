#include "net/switch.h"

#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"

namespace esim::net {

Switch::Switch(sim::Simulator& sim, std::string name, SwitchId id,
               sim::SimTime processing_delay)
    : Component(sim, std::move(name)),
      id_{id},
      processing_delay_{processing_delay} {
  if (auto* r = sim.telemetry()) {
    m_received_ = r->counter("net.switch.received");
    m_forwarded_ = r->counter("net.switch.forwarded");
    m_dropped_ = r->counter("net.switch.dropped_no_route");
  }
}

std::uint32_t Switch::add_port(Link* link) {
  if (link == nullptr) throw std::invalid_argument("Switch: null port link");
  ports_.push_back(link);
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

void Switch::set_route(HostId dst, std::vector<std::uint32_t> ports) {
  if (ports.empty()) {
    throw std::invalid_argument("Switch: empty port set for route");
  }
  for (auto p : ports) {
    if (p >= ports_.size()) {
      throw std::invalid_argument("Switch: route references unknown port");
    }
  }
  if (dst >= routes_.size()) routes_.resize(dst + 1);
  routes_[dst] = std::move(ports);
}

std::uint32_t Switch::route_port(const FlowKey& flow) const {
  if (flow.dst_host >= routes_.size() || routes_[flow.dst_host].empty()) {
    throw std::logic_error(name() + ": no route to host " +
                           std::to_string(flow.dst_host));
  }
  const auto& candidates = routes_[flow.dst_host];
  FlowKey hashed = flow;
  if (!port_sensitive_ecmp_) {
    hashed.src_port = 0;
    hashed.dst_port = 0;
  }
  const std::uint32_t pick =
      ecmp_index(hashed, id_, static_cast<std::uint32_t>(candidates.size()));
  return candidates[pick];
}

void Switch::memo_apply_counter_delta(const stats::PacketCounter& d) {
  counter_.sent += d.sent;
  counter_.delivered += d.delivered;
  counter_.dropped += d.dropped;
  if (m_received_ != nullptr) m_received_->inc(d.sent);
  if (m_forwarded_ != nullptr) m_forwarded_->inc(d.delivered);
  if (m_dropped_ != nullptr) m_dropped_->inc(d.dropped);
}

void Switch::handle_packet(Packet pkt) {
  ++counter_.sent;
  if (m_received_ != nullptr) m_received_->inc();
  if (processing_delay_ > sim::SimTime{}) {
    schedule_in(processing_delay_, [this, pkt = std::move(pkt)]() mutable {
      forward(std::move(pkt));
    });
  } else {
    forward(std::move(pkt));
  }
}

void Switch::forward(Packet pkt) {
  if (pkt.flow.dst_host >= routes_.size() ||
      routes_[pkt.flow.dst_host].empty()) {
    ++counter_.dropped;
    if (m_dropped_ != nullptr) m_dropped_->inc();
    ESIM_LOG(*this, sim::LogLevel::Warn,
             "no route, dropping " + pkt.to_string());
    return;
  }
  const std::uint32_t port = route_port(pkt.flow);
  ++counter_.delivered;
  if (m_forwarded_ != nullptr) m_forwarded_->inc();
  ports_[port]->send(std::move(pkt));
}

}  // namespace esim::net
