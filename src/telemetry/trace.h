// Trace emission: spans and instants recorded into lock-free per-thread
// ring buffers and serialized as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// One TraceSession may be active per process (PDES sync rounds happen on
// worker threads the engine creates per run, so session discovery has to
// be ambient, exactly like Chrome's). Call sites pay one relaxed atomic
// load when no session is active:
//
//   if (telemetry::TraceSession::active()) { ... }        // manual
//   telemetry::Span span{"approx.inference"};             // RAII span
//   telemetry::trace_instant("pdes.sync_round", msgs);    // instant
//
// Each thread records into its own fixed-capacity ring buffer (registered
// on first use; oldest events are overwritten on overflow and counted as
// dropped), so recording never takes a lock or allocates. Serialization
// happens after stop(), when no recorder can be running.
//
// Timestamps are wall-clock microseconds since the session started —
// tracing measures where *wall* time goes; virtual time belongs in event
// args. Recording never touches simulation state, so enabling tracing
// cannot change simulation outputs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace esim::telemetry {

/// One recorded trace event (span or instant).
struct TraceEvent {
  const char* name = nullptr;  ///< interned or static string
  std::int64_t start_ns = 0;   ///< since session start
  std::int64_t dur_ns = -1;    ///< -1 = instant, >= 0 = complete span
  std::int64_t arg = kNoArg;   ///< optional numeric payload
  std::uint32_t tid = 0;       ///< session-assigned thread index

  static constexpr std::int64_t kNoArg =
      std::int64_t{0x7fffffffffffffff};
};

/// Fixed-capacity single-writer ring buffer of TraceEvents.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity, std::uint32_t tid)
      : ring_(capacity), tid_{tid} {}

  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            std::int64_t arg) {
    TraceEvent& e = ring_[head_];
    e.name = name;
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
    e.arg = arg;
    e.tid = tid_;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++overwritten_;
    }
  }

  std::uint32_t tid() const { return tid_; }
  std::uint64_t overwritten() const { return overwritten_; }

  /// Copies the retained events in recording order. Only safe when the
  /// owning thread is quiescent (after TraceSession::stop()).
  std::vector<TraceEvent> drain() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint32_t tid_;
};

/// Process-wide trace recording session.
class TraceSession {
 public:
  struct Config {
    /// Events retained per recording thread before the ring wraps.
    std::size_t events_per_thread = 1 << 16;
  };

  TraceSession();
  explicit TraceSession(Config config);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The active session, or nullptr. One relaxed atomic load.
  static TraceSession* active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Makes this session the active one. Throws if another is active.
  void start();

  /// Stops recording (active() returns nullptr afterwards). Events stay
  /// buffered for write_chrome_json(). Idempotent.
  void stop();

  /// Records a complete span on the calling thread's buffer.
  void complete(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                std::int64_t arg = TraceEvent::kNoArg);

  /// Records an instant event at now().
  void instant(const char* name, std::int64_t arg = TraceEvent::kNoArg);

  /// Nanoseconds since the session was constructed (steady clock).
  std::int64_t now_ns() const;

  /// Interns a dynamic name; the pointer stays valid for the session's
  /// lifetime. Prefer string literals at call sites.
  const char* intern(const std::string& name);

  /// Labels the calling thread ("partition 0", ...) in the trace.
  void set_thread_name(const std::string& name);

  /// Events overwritten across all buffers (ring wrap).
  std::uint64_t overwritten() const;

  /// Builds the Chrome trace-event document: events sorted by timestamp,
  /// phase "X" (spans) or "i" (instants), pid 0, session-assigned tids,
  /// plus thread_name metadata. Call after stop().
  Json chrome_trace() const;

  /// Serializes chrome_trace() to `path`. Returns false on I/O error.
  bool write_chrome_json(const std::string& path) const;

 private:
  TraceBuffer* this_thread_buffer();

  static std::atomic<TraceSession*> active_;

  Config config_;
  std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<TraceBuffer> buffers_;  // deque: stable pointers
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
  std::deque<std::string> interned_;
};

/// RAII span: records [construction, destruction) on the active session.
/// `name` must outlive the session (string literal or interned).
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = TraceEvent::kNoArg)
      : session_{TraceSession::active()}, name_{name}, arg_{arg} {
    if (session_ != nullptr) start_ns_ = session_->now_ns();
  }

  ~Span() {
    if (session_ != nullptr) {
      session_->complete(name_, start_ns_, session_->now_ns(), arg_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/overwrites the numeric payload before the span closes.
  void set_arg(std::int64_t arg) { arg_ = arg; }

 private:
  TraceSession* session_;
  const char* name_;
  std::int64_t arg_;
  std::int64_t start_ns_ = 0;
};

/// Records an instant on the active session, if any.
inline void trace_instant(const char* name,
                          std::int64_t arg = TraceEvent::kNoArg) {
  if (TraceSession* s = TraceSession::active()) s->instant(name, arg);
}

}  // namespace esim::telemetry
