// The fidelity observatory: online accuracy and congestion telemetry for
// approximated clusters (the paper's central bet is that a cluster's
// black-box model stays "close enough" to packet-level truth — this layer
// watches that closeness *while the simulation runs*, instead of only in
// offline held-out eval).
//
// Three cooperating pieces, all off by default:
//
//   * shadow sampling — a deterministic fraction of the boundary packets
//     admitted to an ApproxCluster is additionally evaluated against the
//     reference paths (the naive-inference second opinion and the
//     queue-model ground truth derived from the emulated port backlog),
//     comparing the drop decision and the latency prediction. Admission is
//     a pure hash of (packet id, seed) — no RNG stream is consumed — and
//     nothing observed here schedules events or touches simulation state,
//     so a run with fidelity on is bit-identical (event counts, pop
//     order, digest lanes) to the same run with fidelity off.
//   * per-cluster congestion tracking — every admitted packet feeds
//     windowed offered-load / drop / backlog accumulators; at each window
//     boundary the EWMAs update and the cluster is classified quiescent /
//     nominal / congested. These are exactly the inputs a future
//     packet <-> ML <-> fluid tier-switch controller consumes (ROADMAP #1),
//     exposed through the metrics registry as fidelity.c<k>.* series.
//   * streaming time-series export — one JSONL row per cluster per window
//     (virtual-time bucketed: congestion state, drift metrics, shadow
//     sample counts), appended to a shared FidelitySink which also builds
//     the `fidelity` section of the run report, flagging clusters whose
//     observed drift left the configured error band.
//
// Cost contract (DESIGN.md §11): a cluster without a probe pays one null
// check per packet. With fidelity on, unsampled packets pay a handful of
// scalar adds; only the 1-in-sample_period shadow packets pay a reference
// inference. Windows piggyback on the cluster's existing macro-window
// timer (advancing fidelity state schedules NO events of its own — that
// is what makes the on/off digest-invariance argument airtight).
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace esim::telemetry {

class Registry;
class Counter;
class Gauge;
class Histogram;

/// Windowed congestion regime of one approximated cluster. Quiescent
/// clusters are candidates for demotion to a fluid model, congested ones
/// for promotion back to packet fidelity (the HyGra direction).
enum class CongestionState : std::uint8_t {
  Quiescent = 0,
  Nominal = 1,
  Congested = 2,
};

const char* to_string(CongestionState s);

/// SplitMix64 finalizer used for deterministic shadow admission. Local
/// copy (telemetry sits below src/check and must not depend on it).
constexpr std::uint64_t fidelity_mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Knobs for the observatory. A default-constructed config is disabled;
/// runs are bit-identical either way.
struct FidelityConfig {
  bool enabled = false;

  /// Shadow-sample 1 in `sample_period` admitted packets (deterministic:
  /// fidelity_mix64(packet_id ^ seed) % sample_period == 0). 1 shadows
  /// every packet; 0 disables shadowing but keeps congestion tracking.
  std::uint32_t sample_period = 64;
  /// Seed of the admission hash (a forked, self-contained stream: it
  /// shares nothing with any component RNG).
  std::uint64_t seed = 0xF1DE117Eull;

  /// A fidelity window spans this many macro-classifier windows (the
  /// probe advances when the cluster's existing macro timer fires, so it
  /// never schedules events; >= 1).
  std::uint32_t window_multiplier = 1;

  // --- error budget (the drift band a cluster must stay inside) ---
  /// Violation when |mean ln(model latency / reference latency)| over a
  /// window's shadow samples exceeds this.
  double latency_band_log = 0.75;
  /// Violation when the shadow drop-decision disagreement rate over a
  /// window exceeds this.
  double drop_band = 0.05;

  // --- congestion classification (EWMA across windows) ---
  double ewma_alpha = 0.3;      ///< smoothing for util/drop EWMAs
  double quiescent_util = 0.02; ///< util EWMA at/below which = quiescent
  double congested_util = 0.5;  ///< util EWMA at/above which = congested
  double congested_drop_rate = 0.02;  ///< drop EWMA at/above = congested

  /// JSONL export path ("" keeps rows in memory only; they still feed
  /// the run-report section).
  std::string jsonl_path;
};

/// One exported time-series row: a cluster's state over one window.
struct FidelityRow {
  std::int64_t t_ns = 0;        ///< virtual time of the window's end
  std::int64_t window_ns = 0;   ///< window span
  std::uint32_t cluster = 0;
  CongestionState state = CongestionState::Quiescent;

  // Congestion gauges (window + smoothed).
  double utilization = 0.0;       ///< offered bits / capacity, this window
  double utilization_ewma = 0.0;
  double offered_bps = 0.0;
  double drop_rate = 0.0;         ///< drops / packets, this window
  double drop_rate_ewma = 0.0;
  std::uint64_t packets = 0;      ///< admitted this window
  std::uint64_t predicted_drops = 0;
  std::uint64_t backlog_drops = 0;
  std::int64_t backlog_max_ns = 0;  ///< worst port-queue wait granted

  // Shadow-sampled drift metrics (0 samples -> drift fields are 0).
  std::uint64_t shadow_samples = 0;
  std::uint64_t drop_mismatches = 0;      ///< model vs reference decision
  std::uint64_t queue_drop_mismatches = 0;  ///< model vs queue-truth
  double latency_err_mean_log = 0.0;  ///< mean ln(model/ref), signed
  double latency_err_mae_log = 0.0;   ///< mean |ln(model/ref)|
  double queue_err_mae_log = 0.0;     ///< mean |ln(model/queue-truth)|
  bool band_violation = false;

  Json to_json() const;
  /// Parses a row written by to_json(); throws std::runtime_error on a
  /// malformed document.
  static FidelityRow from_json(const Json& j);
};

/// Aggregated per-cluster totals over a whole run (the report section).
struct FidelityClusterSummary {
  std::uint32_t cluster = 0;
  std::uint64_t windows = 0;
  std::uint64_t quiescent_windows = 0;
  std::uint64_t nominal_windows = 0;
  std::uint64_t congested_windows = 0;
  std::uint64_t packets = 0;
  std::uint64_t shadow_samples = 0;
  std::uint64_t drop_mismatches = 0;
  std::uint64_t band_violations = 0;
  double latency_err_mae_log = 0.0;  ///< sample-weighted over windows
  double latency_err_mean_log = 0.0;
  double queue_err_mae_log = 0.0;
};

/// Thread-safe collector shared by every probe of one run (PDES window
/// timers fire on partition threads). Owns the JSONL stream and retains
/// every row for the report section.
class FidelitySink {
 public:
  /// Opens `config.jsonl_path` for streaming append when non-empty.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit FidelitySink(const FidelityConfig& config);
  ~FidelitySink();

  FidelitySink(const FidelitySink&) = delete;
  FidelitySink& operator=(const FidelitySink&) = delete;

  const FidelityConfig& config() const { return config_; }

  /// Appends one row: streams the JSONL line (if a path was configured)
  /// and retains the row in memory. Thread-safe.
  void append(const FidelityRow& row);

  /// Flushes the JSONL stream (rows are flushed per-append already; this
  /// exists for tests that read the file mid-run).
  void flush();

  /// All rows so far, sorted by (t_ns, cluster) — PDES partitions append
  /// concurrently, so retention order is not deterministic but this view
  /// is. Thread-safe copy.
  std::vector<FidelityRow> rows() const;

  std::uint64_t rows_appended() const;

  /// The `fidelity` run-report section:
  ///   {"enabled":true, "sample_period":N, "window_ns":..., "rows":R,
  ///    "band":{"latency_log":..,"drop":..},
  ///    "clusters":[{...per-cluster summary...}],
  ///    "violating_clusters":[k,...]}
  /// Clusters whose run-level drift exceeds the band, or that logged any
  /// window-level band violation, land in violating_clusters.
  Json report_section() const;

  /// Per-cluster aggregation of the retained rows, sorted by cluster id.
  std::vector<FidelityClusterSummary> summaries() const;

 private:
  FidelityConfig config_;
  mutable std::mutex mu_;
  std::vector<FidelityRow> rows_;
  std::ofstream out_;
};

/// Per-cluster probe, owned by the ApproxCluster (null when fidelity is
/// off). All methods are called from the cluster's own partition thread;
/// only FidelitySink::append crosses threads.
class ClusterFidelityProbe {
 public:
  /// `capacity_bps` is the cluster's aggregate boundary capacity (the
  /// denominator of utilization). `registry` may be null (metrics off;
  /// rows and the report section still work).
  ClusterFidelityProbe(FidelitySink& sink, std::uint32_t cluster,
                       double capacity_bps, Registry* registry);

  /// Deterministic shadow admission for one packet id. Pure; consumes no
  /// randomness.
  bool shadow_admit(std::uint64_t packet_id) const {
    if (!shadowing_) return false;
    return fidelity_mix64(packet_id ^ sink_.config().seed) % period_ == 0;
  }

  /// Every admitted packet's outcome (called whether or not sampled).
  void observe_packet(std::uint32_t wire_bytes, bool dropped);

  /// Port-queue observation for a delivered packet: how long past its
  /// desired time the emulated port pushed it (0 = no conflict), or a
  /// backlog drop.
  void observe_backlog(std::int64_t wait_ns, bool backlog_drop);

  /// One shadow comparison. Latencies in seconds, all > 0; `*_drop` are
  /// the decisions under the SAME pre-drawn uniform (common random
  /// numbers, so disagreement measures the models, not the coin).
  void record_shadow(bool model_drop, double model_latency_s, bool ref_drop,
                     bool have_ref, double ref_latency_s, bool queue_drop,
                     double queue_latency_s);

  /// Window boundary, piggybacked on the cluster's macro timer: every
  /// `window_multiplier` calls, closes the fidelity window — classifies,
  /// publishes instruments, and appends a row at virtual time `now_ns`.
  void on_macro_window(std::int64_t now_ns, std::int64_t macro_window_ns);

  /// End-of-run flush of the current partial window (no-op when empty).
  void finalize(std::int64_t now_ns);

  /// Congestion regime as of the last closed window.
  CongestionState state() const { return state_; }
  double utilization_ewma() const { return util_ewma_; }
  double drop_rate_ewma() const { return drop_ewma_; }

  /// Totals across the run (monotonic; exposed for tests/benches).
  std::uint64_t shadow_samples_total() const { return shadow_total_; }
  std::uint64_t band_violations_total() const { return violations_total_; }

 private:
  void close_window(std::int64_t now_ns, std::int64_t window_ns);

  FidelitySink& sink_;
  std::uint32_t cluster_;
  double capacity_bps_;
  bool shadowing_ = false;
  std::uint32_t period_ = 1;

  // EWMA state across windows.
  double util_ewma_ = 0.0;
  double drop_ewma_ = 0.0;
  bool ewma_seeded_ = false;
  CongestionState state_ = CongestionState::Quiescent;

  // Current-window accumulators.
  std::uint64_t w_packets_ = 0;
  std::uint64_t w_pred_drops_ = 0;
  std::uint64_t w_backlog_drops_ = 0;
  std::uint64_t w_bytes_ = 0;
  std::int64_t w_backlog_max_ns_ = 0;
  std::uint64_t w_shadow_ = 0;
  std::uint64_t w_drop_mismatch_ = 0;
  std::uint64_t w_queue_drop_mismatch_ = 0;
  double w_err_log_sum_ = 0.0;   // signed ln(model/ref), ref samples only
  double w_err_log_abs_ = 0.0;
  std::uint64_t w_ref_samples_ = 0;
  double w_queue_err_abs_ = 0.0;
  std::int64_t window_start_ns_ = 0;
  std::uint32_t macro_ticks_ = 0;

  // Run totals.
  std::uint64_t shadow_total_ = 0;
  std::uint64_t violations_total_ = 0;

  // Registry instruments (null when metrics are off).
  Gauge* g_state_ = nullptr;
  Gauge* g_util_ppm_ = nullptr;
  Gauge* g_drop_ppm_ = nullptr;
  Gauge* g_backlog_ns_ = nullptr;
  Counter* c_shadow_ = nullptr;
  Counter* c_drop_mismatch_ = nullptr;
  Counter* c_violations_ = nullptr;
  Histogram* h_latency_err_ = nullptr;  // |ln(model/ref)| in milli-nats
};

}  // namespace esim::telemetry
