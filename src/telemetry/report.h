// Structured run reports: every experiment, example, and bench run
// snapshots its metrics and results into one versioned JSON document, so
// runs are machine-diffable across PRs (the BENCH_*.json trajectory in
// EXPERIMENTS.md is one instance of this format).
//
// Document shape (version 1):
//
//   {
//     "esim_report": {"version": 1, "name": "<run name>"},
//     "metrics": { "<instrument>": <value or histogram> },   // optional
//     ... caller-defined sections via set("a.b.c", value) ...
//   }
#pragma once

#include <string>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace esim::telemetry {

/// Builder for one run-report document.
class RunReport {
 public:
  static constexpr int kVersion = 1;

  /// Creates a report named `name` (e.g. "fig4_rtt_cdf").
  explicit RunReport(const std::string& name);

  /// The underlying document, for direct structured writes.
  Json& root() { return doc_; }
  const Json& root() const { return doc_; }

  /// Sets a value at a dot-separated path ("full.rtt.p99"), creating
  /// intermediate objects as needed.
  void set(std::string_view dotted_path, Json value);

  /// Adds a registry snapshot under `section` (default "metrics").
  /// Multiple snapshots can land in different sections ("full.metrics",
  /// "hybrid.metrics").
  void add_metrics(const Snapshot& snapshot,
                   std::string_view section = "metrics");

  /// Serializes the document.
  std::string to_string() const { return doc_.dump(2); }

  /// Writes the document to `path`. Returns false on I/O error.
  bool write(const std::string& path) const;

 private:
  Json doc_;
};

}  // namespace esim::telemetry
