#include "telemetry/report.h"

#include <cstdio>

namespace esim::telemetry {

RunReport::RunReport(const std::string& name) {
  doc_ = Json::object();
  doc_["esim_report"]["version"] = kVersion;
  doc_["esim_report"]["name"] = name;
}

void RunReport::set(std::string_view dotted_path, Json value) {
  Json* node = &doc_;
  std::string_view rest = dotted_path;
  for (;;) {
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) {
      (*node)[rest] = std::move(value);
      return;
    }
    node = &(*node)[rest.substr(0, dot)];
    rest = rest.substr(dot + 1);
  }
}

void RunReport::add_metrics(const Snapshot& snapshot,
                            std::string_view section) {
  set(section, snapshot.to_json());
}

bool RunReport::write(const std::string& path) const {
  const std::string text = to_string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool nl = std::fwrite("\n", 1, 1, f) == 1;
  return std::fclose(f) == 0 && ok && nl;
}

}  // namespace esim::telemetry
