#include "telemetry/fidelity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace esim::telemetry {

const char* to_string(CongestionState s) {
  switch (s) {
    case CongestionState::Quiescent:
      return "quiescent";
    case CongestionState::Nominal:
      return "nominal";
    case CongestionState::Congested:
      return "congested";
  }
  return "unknown";
}

namespace {

CongestionState state_from_string(const std::string& s) {
  if (s == "quiescent") return CongestionState::Quiescent;
  if (s == "nominal") return CongestionState::Nominal;
  if (s == "congested") return CongestionState::Congested;
  throw std::runtime_error("FidelityRow: unknown state '" + s + "'");
}

const Json& require(const Json& j, std::string_view key) {
  const Json* v = j.find(key);
  if (v == nullptr) {
    throw std::runtime_error("FidelityRow: missing key '" + std::string{key} +
                             "'");
  }
  return *v;
}

}  // namespace

Json FidelityRow::to_json() const {
  Json j = Json::object();
  j["t_ns"] = t_ns;
  j["window_ns"] = window_ns;
  j["cluster"] = static_cast<std::uint64_t>(cluster);
  j["state"] = to_string(state);
  j["utilization"] = utilization;
  j["utilization_ewma"] = utilization_ewma;
  j["offered_bps"] = offered_bps;
  j["drop_rate"] = drop_rate;
  j["drop_rate_ewma"] = drop_rate_ewma;
  j["packets"] = packets;
  j["predicted_drops"] = predicted_drops;
  j["backlog_drops"] = backlog_drops;
  j["backlog_max_ns"] = backlog_max_ns;
  j["shadow_samples"] = shadow_samples;
  j["drop_mismatches"] = drop_mismatches;
  j["queue_drop_mismatches"] = queue_drop_mismatches;
  j["latency_err_mean_log"] = latency_err_mean_log;
  j["latency_err_mae_log"] = latency_err_mae_log;
  j["queue_err_mae_log"] = queue_err_mae_log;
  j["band_violation"] = band_violation;
  return j;
}

FidelityRow FidelityRow::from_json(const Json& j) {
  FidelityRow r;
  r.t_ns = require(j, "t_ns").as_int();
  r.window_ns = require(j, "window_ns").as_int();
  r.cluster = static_cast<std::uint32_t>(require(j, "cluster").as_uint());
  r.state = state_from_string(require(j, "state").as_string());
  r.utilization = require(j, "utilization").as_double();
  r.utilization_ewma = require(j, "utilization_ewma").as_double();
  r.offered_bps = require(j, "offered_bps").as_double();
  r.drop_rate = require(j, "drop_rate").as_double();
  r.drop_rate_ewma = require(j, "drop_rate_ewma").as_double();
  r.packets = require(j, "packets").as_uint();
  r.predicted_drops = require(j, "predicted_drops").as_uint();
  r.backlog_drops = require(j, "backlog_drops").as_uint();
  r.backlog_max_ns = require(j, "backlog_max_ns").as_int();
  r.shadow_samples = require(j, "shadow_samples").as_uint();
  r.drop_mismatches = require(j, "drop_mismatches").as_uint();
  r.queue_drop_mismatches = require(j, "queue_drop_mismatches").as_uint();
  r.latency_err_mean_log = require(j, "latency_err_mean_log").as_double();
  r.latency_err_mae_log = require(j, "latency_err_mae_log").as_double();
  r.queue_err_mae_log = require(j, "queue_err_mae_log").as_double();
  r.band_violation = require(j, "band_violation").as_bool();
  return r;
}

FidelitySink::FidelitySink(const FidelityConfig& config) : config_{config} {
  if (config_.window_multiplier == 0) {
    throw std::invalid_argument("FidelitySink: window_multiplier must be >= 1");
  }
  if (!config_.jsonl_path.empty()) {
    out_.open(config_.jsonl_path, std::ios::out | std::ios::trunc);
    if (!out_.is_open()) {
      throw std::runtime_error("FidelitySink: cannot open " +
                               config_.jsonl_path);
    }
  }
}

FidelitySink::~FidelitySink() = default;

void FidelitySink::append(const FidelityRow& row) {
  std::lock_guard lock{mu_};
  rows_.push_back(row);
  if (out_.is_open()) {
    out_ << row.to_json().dump(0) << '\n';
    out_.flush();
  }
}

void FidelitySink::flush() {
  std::lock_guard lock{mu_};
  if (out_.is_open()) out_.flush();
}

std::vector<FidelityRow> FidelitySink::rows() const {
  std::vector<FidelityRow> out;
  {
    std::lock_guard lock{mu_};
    out = rows_;
  }
  std::sort(out.begin(), out.end(),
            [](const FidelityRow& a, const FidelityRow& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              return a.cluster < b.cluster;
            });
  return out;
}

std::uint64_t FidelitySink::rows_appended() const {
  std::lock_guard lock{mu_};
  return rows_.size();
}

std::vector<FidelityClusterSummary> FidelitySink::summaries() const {
  const std::vector<FidelityRow> sorted = rows();
  std::vector<FidelityClusterSummary> out;
  // Weighted drift accumulators, parallel to `out`.
  std::vector<double> mae_sum, mean_sum, queue_sum;
  std::vector<std::uint64_t> ref_weight, queue_weight;
  for (const FidelityRow& r : sorted) {
    std::size_t i = 0;
    for (; i < out.size(); ++i) {
      if (out[i].cluster == r.cluster) break;
    }
    if (i == out.size()) {
      out.push_back(FidelityClusterSummary{});
      out.back().cluster = r.cluster;
      mae_sum.push_back(0);
      mean_sum.push_back(0);
      queue_sum.push_back(0);
      ref_weight.push_back(0);
      queue_weight.push_back(0);
    }
    FidelityClusterSummary& s = out[i];
    ++s.windows;
    switch (r.state) {
      case CongestionState::Quiescent:
        ++s.quiescent_windows;
        break;
      case CongestionState::Nominal:
        ++s.nominal_windows;
        break;
      case CongestionState::Congested:
        ++s.congested_windows;
        break;
    }
    s.packets += r.packets;
    s.shadow_samples += r.shadow_samples;
    s.drop_mismatches += r.drop_mismatches;
    if (r.band_violation) ++s.band_violations;
    // Window drift means are weighted back by their sample counts so the
    // run-level figure is the plain per-sample mean.
    mae_sum[i] += r.latency_err_mae_log * static_cast<double>(r.shadow_samples);
    mean_sum[i] +=
        r.latency_err_mean_log * static_cast<double>(r.shadow_samples);
    queue_sum[i] += r.queue_err_mae_log * static_cast<double>(r.shadow_samples);
    ref_weight[i] += r.shadow_samples;
    queue_weight[i] += r.shadow_samples;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (ref_weight[i] > 0) {
      out[i].latency_err_mae_log =
          mae_sum[i] / static_cast<double>(ref_weight[i]);
      out[i].latency_err_mean_log =
          mean_sum[i] / static_cast<double>(ref_weight[i]);
    }
    if (queue_weight[i] > 0) {
      out[i].queue_err_mae_log =
          queue_sum[i] / static_cast<double>(queue_weight[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FidelityClusterSummary& a,
               const FidelityClusterSummary& b) { return a.cluster < b.cluster; });
  return out;
}

Json FidelitySink::report_section() const {
  Json j = Json::object();
  j["enabled"] = config_.enabled;
  j["sample_period"] = static_cast<std::uint64_t>(config_.sample_period);
  j["window_multiplier"] =
      static_cast<std::uint64_t>(config_.window_multiplier);
  j["rows"] = rows_appended();
  if (!config_.jsonl_path.empty()) j["jsonl_path"] = config_.jsonl_path;
  Json band = Json::object();
  band["latency_log"] = config_.latency_band_log;
  band["drop"] = config_.drop_band;
  j["band"] = std::move(band);

  Json clusters = Json::array();
  Json violating = Json::array();
  for (const FidelityClusterSummary& s : summaries()) {
    Json c = Json::object();
    c["cluster"] = static_cast<std::uint64_t>(s.cluster);
    c["windows"] = s.windows;
    c["quiescent_windows"] = s.quiescent_windows;
    c["nominal_windows"] = s.nominal_windows;
    c["congested_windows"] = s.congested_windows;
    c["packets"] = s.packets;
    c["shadow_samples"] = s.shadow_samples;
    c["drop_mismatches"] = s.drop_mismatches;
    c["band_violations"] = s.band_violations;
    c["latency_err_mae_log"] = s.latency_err_mae_log;
    c["latency_err_mean_log"] = s.latency_err_mean_log;
    c["queue_err_mae_log"] = s.queue_err_mae_log;
    const double mismatch_rate =
        s.shadow_samples > 0 ? static_cast<double>(s.drop_mismatches) /
                                   static_cast<double>(s.shadow_samples)
                             : 0.0;
    const bool violating_run =
        s.band_violations > 0 ||
        (s.shadow_samples > 0 &&
         (std::abs(s.latency_err_mean_log) > config_.latency_band_log ||
          mismatch_rate > config_.drop_band));
    c["in_band"] = !violating_run;
    clusters.push_back(std::move(c));
    if (violating_run) {
      violating.push_back(static_cast<std::uint64_t>(s.cluster));
    }
  }
  j["clusters"] = std::move(clusters);
  j["violating_clusters"] = std::move(violating);
  return j;
}

ClusterFidelityProbe::ClusterFidelityProbe(FidelitySink& sink,
                                           std::uint32_t cluster,
                                           double capacity_bps,
                                           Registry* registry)
    : sink_{sink}, cluster_{cluster}, capacity_bps_{capacity_bps} {
  if (capacity_bps <= 0) {
    throw std::invalid_argument(
        "ClusterFidelityProbe: capacity must be positive");
  }
  const FidelityConfig& cfg = sink.config();
  shadowing_ = cfg.sample_period > 0;
  period_ = cfg.sample_period > 0 ? cfg.sample_period : 1;
  if (registry != nullptr) {
    const std::string p = "fidelity.c" + std::to_string(cluster) + ".";
    g_state_ = registry->gauge(p + "state");
    g_util_ppm_ = registry->gauge(p + "util_ppm");
    g_drop_ppm_ = registry->gauge(p + "drop_rate_ppm");
    g_backlog_ns_ = registry->gauge(p + "backlog_max_ns");
    c_shadow_ = registry->counter(p + "shadow_samples");
    c_drop_mismatch_ = registry->counter(p + "drop_mismatches");
    c_violations_ = registry->counter(p + "band_violations");
    h_latency_err_ = registry->histogram("fidelity.shadow.latency_err_mnats");
  }
}

void ClusterFidelityProbe::observe_packet(std::uint32_t wire_bytes,
                                          bool dropped) {
  ++w_packets_;
  w_bytes_ += wire_bytes;
  if (dropped) ++w_pred_drops_;
}

void ClusterFidelityProbe::observe_backlog(std::int64_t wait_ns,
                                           bool backlog_drop) {
  if (backlog_drop) {
    ++w_backlog_drops_;
    return;
  }
  w_backlog_max_ns_ = std::max(w_backlog_max_ns_, wait_ns);
}

void ClusterFidelityProbe::record_shadow(bool model_drop,
                                         double model_latency_s, bool ref_drop,
                                         bool have_ref, double ref_latency_s,
                                         bool queue_drop,
                                         double queue_latency_s) {
  ++w_shadow_;
  ++shadow_total_;
  if (c_shadow_ != nullptr) c_shadow_->inc();
  if (have_ref) {
    const double err = std::log(model_latency_s / ref_latency_s);
    w_err_log_sum_ += err;
    w_err_log_abs_ += std::abs(err);
    ++w_ref_samples_;
    if (model_drop != ref_drop) {
      ++w_drop_mismatch_;
      if (c_drop_mismatch_ != nullptr) c_drop_mismatch_->inc();
    }
    if (h_latency_err_ != nullptr) {
      h_latency_err_->record(
          static_cast<std::uint64_t>(std::abs(err) * 1000.0));
    }
  }
  w_queue_err_abs_ += std::abs(std::log(model_latency_s / queue_latency_s));
  if (model_drop != queue_drop) ++w_queue_drop_mismatch_;
}

void ClusterFidelityProbe::on_macro_window(std::int64_t now_ns,
                                           std::int64_t macro_window_ns) {
  ++macro_ticks_;
  if (macro_ticks_ < sink_.config().window_multiplier) return;
  close_window(now_ns, macro_window_ns * macro_ticks_);
  macro_ticks_ = 0;
}

void ClusterFidelityProbe::finalize(std::int64_t now_ns) {
  if (w_packets_ == 0 && w_shadow_ == 0 && macro_ticks_ == 0) return;
  const std::int64_t span = now_ns - window_start_ns_;
  if (span <= 0) return;
  close_window(now_ns, span);
  macro_ticks_ = 0;
}

void ClusterFidelityProbe::close_window(std::int64_t now_ns,
                                        std::int64_t window_ns) {
  const FidelityConfig& cfg = sink_.config();
  FidelityRow row;
  row.t_ns = now_ns;
  row.window_ns = window_ns;
  row.cluster = cluster_;

  const double window_s = static_cast<double>(window_ns) * 1e-9;
  const double offered_bits = static_cast<double>(w_bytes_) * 8.0;
  row.offered_bps = window_s > 0 ? offered_bits / window_s : 0.0;
  row.utilization = capacity_bps_ > 0 ? row.offered_bps / capacity_bps_ : 0.0;
  const std::uint64_t drops = w_pred_drops_ + w_backlog_drops_;
  row.drop_rate = w_packets_ > 0 ? static_cast<double>(drops) /
                                       static_cast<double>(w_packets_)
                                 : 0.0;
  row.packets = w_packets_;
  row.predicted_drops = w_pred_drops_;
  row.backlog_drops = w_backlog_drops_;
  row.backlog_max_ns = w_backlog_max_ns_;

  // EWMA update: the first window seeds (no decay from the zero state),
  // mirroring stats::Ewma.
  if (!ewma_seeded_) {
    util_ewma_ = row.utilization;
    drop_ewma_ = row.drop_rate;
    ewma_seeded_ = true;
  } else {
    util_ewma_ += cfg.ewma_alpha * (row.utilization - util_ewma_);
    drop_ewma_ += cfg.ewma_alpha * (row.drop_rate - drop_ewma_);
  }
  row.utilization_ewma = util_ewma_;
  row.drop_rate_ewma = drop_ewma_;

  if (drop_ewma_ >= cfg.congested_drop_rate ||
      util_ewma_ >= cfg.congested_util) {
    state_ = CongestionState::Congested;
  } else if (util_ewma_ <= cfg.quiescent_util &&
             drop_ewma_ < cfg.congested_drop_rate * 0.25) {
    state_ = CongestionState::Quiescent;
  } else {
    state_ = CongestionState::Nominal;
  }
  row.state = state_;

  row.shadow_samples = w_shadow_;
  row.drop_mismatches = w_drop_mismatch_;
  row.queue_drop_mismatches = w_queue_drop_mismatch_;
  if (w_ref_samples_ > 0) {
    row.latency_err_mean_log =
        w_err_log_sum_ / static_cast<double>(w_ref_samples_);
    row.latency_err_mae_log =
        w_err_log_abs_ / static_cast<double>(w_ref_samples_);
  }
  if (w_shadow_ > 0) {
    row.queue_err_mae_log =
        w_queue_err_abs_ / static_cast<double>(w_shadow_);
  }
  const double mismatch_rate =
      w_ref_samples_ > 0 ? static_cast<double>(w_drop_mismatch_) /
                               static_cast<double>(w_ref_samples_)
                         : 0.0;
  row.band_violation =
      w_ref_samples_ > 0 &&
      (std::abs(row.latency_err_mean_log) > cfg.latency_band_log ||
       mismatch_rate > cfg.drop_band);
  if (row.band_violation) {
    ++violations_total_;
    if (c_violations_ != nullptr) c_violations_->inc();
  }

  if (g_state_ != nullptr) {
    g_state_->set(static_cast<std::int64_t>(state_));
    g_util_ppm_->set(static_cast<std::int64_t>(util_ewma_ * 1e6));
    g_drop_ppm_->set(static_cast<std::int64_t>(drop_ewma_ * 1e6));
    g_backlog_ns_->set(w_backlog_max_ns_);
  }

  sink_.append(row);

  w_packets_ = 0;
  w_pred_drops_ = 0;
  w_backlog_drops_ = 0;
  w_bytes_ = 0;
  w_backlog_max_ns_ = 0;
  w_shadow_ = 0;
  w_drop_mismatch_ = 0;
  w_queue_drop_mismatch_ = 0;
  w_err_log_sum_ = 0.0;
  w_err_log_abs_ = 0.0;
  w_ref_samples_ = 0;
  w_queue_err_abs_ = 0.0;
  window_start_ns_ = now_ns;
}

}  // namespace esim::telemetry
