// Minimal JSON document model for telemetry artifacts.
//
// Every machine-readable file this repo emits (run reports, Chrome traces,
// BENCH_*.json) goes through this one writer so escaping, number
// formatting, and key ordering are uniform and diffable. The parser exists
// so tests (and report-diff tooling) can load what was written; it handles
// the full JSON grammar but is tuned for trusted, repo-generated input,
// not hostile documents.
//
// Objects preserve insertion order (reports diff cleanly run-to-run), and
// lookups are linear — fine for the small objects telemetry produces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace esim::telemetry {

/// One JSON value: null, bool, number (int64/uint64/double), string,
/// array, or insertion-ordered object.
class Json {
 public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() : kind_{Kind::Null} {}
  Json(std::nullptr_t) : kind_{Kind::Null} {}  // NOLINT(runtime/explicit)
  Json(bool b) : kind_{Kind::Bool}, bool_{b} {}  // NOLINT(runtime/explicit)
  Json(int v) : kind_{Kind::Int}, int_{v} {}     // NOLINT(runtime/explicit)
  Json(std::int64_t v) : kind_{Kind::Int}, int_{v} {}  // NOLINT
  Json(std::uint64_t v) : kind_{Kind::Uint}, uint_{v} {}  // NOLINT
  Json(double v) : kind_{Kind::Double}, double_{v} {}     // NOLINT
  Json(const char* s) : kind_{Kind::String}, string_{s} {}  // NOLINT
  Json(std::string s)  // NOLINT(runtime/explicit)
      : kind_{Kind::String}, string_{std::move(s)} {}

  /// Explicit factories for the container kinds.
  static Json array() { return Json{Kind::Array}; }
  static Json object() { return Json{Kind::Object}; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Uint || kind_ == Kind::Double;
  }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  /// Numeric access with cross-kind conversion (Int/Uint/Double).
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }

  /// Array element count or object member count (0 for scalars).
  std::size_t size() const;

  /// Array access. Requires is_array() and i < size().
  const Json& at(std::size_t i) const { return items_[i]; }

  /// Appends to an array (converts a Null value into an empty array).
  void push_back(Json v);

  /// Object member access; inserts a Null member if absent (converts a
  /// Null value into an empty object so `doc["a"]["b"] = 1` just works).
  Json& operator[](std::string_view key);

  /// Read-only member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// True when the object has `key`.
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact one-line form.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

 private:
  explicit Json(Kind k) : kind_{k} {}

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace esim::telemetry
