#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace esim::telemetry {

std::int64_t Json::as_int() const {
  switch (kind_) {
    case Kind::Int:
      return int_;
    case Kind::Uint:
      return static_cast<std::int64_t>(uint_);
    case Kind::Double:
      return static_cast<std::int64_t>(double_);
    default:
      return 0;
  }
}

std::uint64_t Json::as_uint() const {
  switch (kind_) {
    case Kind::Int:
      return static_cast<std::uint64_t>(int_);
    case Kind::Uint:
      return uint_;
    case Kind::Double:
      return static_cast<std::uint64_t>(double_);
    default:
      return 0;
  }
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::Int:
      return static_cast<double>(int_);
    case Kind::Uint:
      return static_cast<double>(uint_);
    case Kind::Double:
      return double_;
    default:
      return 0.0;
  }
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return items_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  items_.push_back(std::move(v));
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string{key}, Json{});
  return object_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips; strip to the shortest form that still does.
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Int:
      out += std::to_string(int_);
      return;
    case Kind::Uint:
      out += std::to_string(uint_);
      return;
    case Kind::Double:
      append_double(out, double_);
      return;
    case Kind::String:
      append_escaped(out, string_);
      return;
    case Kind::Array: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  std::optional<Json> parse_document() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return literal("null") ? std::optional<Json>{Json{}} : std::nullopt;
      case 't':
        return literal("true") ? std::optional<Json>{Json{true}}
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>{Json{false}}
                                : std::nullopt;
      case '"':
        return parse_string();
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Json{std::move(out)};
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          const auto cp = parse_hex4();
          if (!cp) return std::nullopt;
          append_utf8(out, *cp);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    // Combine a surrogate pair when one follows; lone surrogates become
    // U+FFFD (trusted input never produces them).
    if (v >= 0xD800 && v <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
      pos_ += 2;
      const auto lo = parse_hex4();
      if (!lo) return std::nullopt;
      if (*lo >= 0xDC00 && *lo <= 0xDFFF) {
        return 0x10000 + ((v - 0xD800) << 10) + (*lo - 0xDC00);
      }
      return 0xFFFD;
    }
    if (v >= 0xD800 && v <= 0xDFFF) return 0xFFFD;
    return v;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return std::nullopt;
    if (integral) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc{} && p == tok.data() + tok.size()) return Json{iv};
      std::uint64_t uv = 0;
      const auto [p2, ec2] =
          std::from_chars(tok.data(), tok.data() + tok.size(), uv);
      if (ec2 == std::errc{} && p2 == tok.data() + tok.size()) {
        return Json{uv};
      }
      // Out-of-range integer literal: fall through to double.
    }
    double dv = 0;
    const std::string owned{tok};  // sscanf needs a terminator
    if (std::sscanf(owned.c_str(), "%lf", &dv) != 1) return std::nullopt;
    return Json{dv};
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    Json arr = Json::array();
    if (consume(']')) return arr;
    for (;;) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (consume(']')) return arr;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    Json obj = Json::object();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj[key->as_string()] = std::move(*v);
      if (consume('}')) return obj;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser{text}.parse_document();
}

}  // namespace esim::telemetry
