#include "telemetry/metrics.h"

#include <cmath>
#include <stdexcept>

namespace esim::telemetry {

double InstrumentSnapshot::quantile(double q) const {
  if (kind != Kind::Histogram || count == 0 || buckets.empty()) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Continuous rank in [0, count]; the running cumulative count walks the
  // non-empty buckets in ascending order.
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (const auto& [lo, n] : buckets) {
    const double next = cum + static_cast<double>(n);
    if (rank <= next) {
      if (lo == 0) return 0.0;  // bucket 0 holds exactly the value 0
      // Fraction of the way through this bucket's samples, mapped onto
      // the exponent: bucket [lo, 2*lo) -> lo * 2^f.
      const double f =
          n == 0 ? 0.0 : (rank - cum) / static_cast<double>(n);
      return static_cast<double>(lo) * std::exp2(f);
    }
    cum = next;
  }
  // rank == count landed past the last bucket: its exclusive upper bound.
  const auto& [lo, n] = buckets.back();
  return lo == 0 ? 0.0 : static_cast<double>(lo) * 2.0;
}

const InstrumentSnapshot* Snapshot::find(std::string_view name) const {
  for (const auto& i : instruments) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

Json Snapshot::to_json() const {
  Json out = Json::object();
  for (const auto& i : instruments) {
    switch (i.kind) {
      case InstrumentSnapshot::Kind::Counter:
        out[i.name] = i.counter;
        break;
      case InstrumentSnapshot::Kind::Gauge:
        out[i.name] = i.gauge;
        break;
      case InstrumentSnapshot::Kind::Histogram: {
        Json h = Json::object();
        h["count"] = i.count;
        h["sum"] = i.sum;
        h["p50"] = i.quantile(0.50);
        h["p90"] = i.quantile(0.90);
        h["p99"] = i.quantile(0.99);
        Json buckets = Json::array();
        for (const auto& [lo, n] : i.buckets) {
          Json pair = Json::array();
          pair.push_back(lo);
          pair.push_back(n);
          buckets.push_back(std::move(pair));
        }
        h["buckets"] = std::move(buckets);
        out[i.name] = std::move(h);
        break;
      }
    }
  }
  return out;
}

Registry::Entry* Registry::find_locked(std::string_view name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard lock{mu_};
  if (Entry* e = find_locked(name)) {
    if (e->kind != InstrumentSnapshot::Kind::Counter) {
      throw std::logic_error("telemetry: '" + std::string{name} +
                             "' already registered with a different kind");
    }
    return &counters_[e->index];
  }
  counters_.emplace_back();
  entries_.push_back({std::string{name}, InstrumentSnapshot::Kind::Counter,
                      counters_.size() - 1});
  return &counters_.back();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard lock{mu_};
  if (Entry* e = find_locked(name)) {
    if (e->kind != InstrumentSnapshot::Kind::Gauge) {
      throw std::logic_error("telemetry: '" + std::string{name} +
                             "' already registered with a different kind");
    }
    return &gauges_[e->index];
  }
  gauges_.emplace_back();
  entries_.push_back({std::string{name}, InstrumentSnapshot::Kind::Gauge,
                      gauges_.size() - 1});
  return &gauges_.back();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard lock{mu_};
  if (Entry* e = find_locked(name)) {
    if (e->kind != InstrumentSnapshot::Kind::Histogram) {
      throw std::logic_error("telemetry: '" + std::string{name} +
                             "' already registered with a different kind");
    }
    return &histograms_[e->index];
  }
  histograms_.emplace_back();
  entries_.push_back({std::string{name}, InstrumentSnapshot::Kind::Histogram,
                      histograms_.size() - 1});
  return &histograms_.back();
}

void Registry::add_flusher(std::function<void()> fn) {
  std::lock_guard lock{mu_};
  flushers_.push_back(std::move(fn));
}

Snapshot Registry::snapshot() {
  // Flushers may register new instruments, so run them before locking.
  std::vector<std::function<void()>*> to_run;
  {
    std::lock_guard lock{mu_};
    to_run.reserve(flushers_.size());
    for (auto& f : flushers_) to_run.push_back(&f);
  }
  for (auto* f : to_run) (*f)();

  Snapshot snap;
  std::lock_guard lock{mu_};
  snap.instruments.reserve(entries_.size());
  for (const auto& e : entries_) {
    InstrumentSnapshot i;
    i.name = e.name;
    i.kind = e.kind;
    switch (e.kind) {
      case InstrumentSnapshot::Kind::Counter:
        i.counter = counters_[e.index].value();
        break;
      case InstrumentSnapshot::Kind::Gauge:
        i.gauge = gauges_[e.index].value();
        break;
      case InstrumentSnapshot::Kind::Histogram: {
        const Histogram& h = histograms_[e.index];
        i.count = h.count();
        i.sum = h.sum();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          const std::uint64_t n = h.bucket_count(b);
          if (n != 0) i.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
        }
        break;
      }
    }
    snap.instruments.push_back(std::move(i));
  }
  return snap;
}

std::size_t Registry::instrument_count() const {
  std::lock_guard lock{mu_};
  return entries_.size();
}

}  // namespace esim::telemetry
