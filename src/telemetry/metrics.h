// The metrics registry: named Counter / Gauge / Histogram instruments the
// sim, PDES, net, tcp, and approx layers publish into.
//
// Cost contract (DESIGN.md §7):
//   * Telemetry is off by default. A component that was never handed a
//     Registry holds null instrument pointers, and every publishing site
//     is a single branch on that pointer — no allocation, no atomics, no
//     clock reads on the disabled path.
//   * Instrument names are interned once, at registration time, behind a
//     mutex. The hot path holds the returned instrument pointer (stable
//     for the Registry's lifetime) and performs one relaxed atomic RMW
//     per update, so concurrent PDES partitions can share instruments
//     without locks.
//   * Nothing in here reads or advances simulation state: enabling
//     telemetry cannot change event order, RNG draws, or outputs.
//
// Two publishing styles coexist:
//   * push — hot-path sites increment shared instruments as things happen
//     (links, switches, TCP). Used where many short-lived objects
//     aggregate into one logical series.
//   * pull — objects that already keep their own totals (Simulator,
//     ParallelEngine, ApproxCluster) register a flusher; snapshot() runs
//     the flushers so the registry reflects their current totals without
//     any hot-path work at all. Flushers must not outlive their subject:
//     snapshot() may only be called while every registered publisher is
//     alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace esim::telemetry {

/// Monotonic (by convention) unsigned counter. Wraps mod 2^64 like any
/// unsigned integer; snapshot consumers diff against the previous value.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Flusher-style publication: overwrite with an externally kept total.
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depth, inbox size, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Histogram over unsigned values with fixed log-2 buckets: bucket 0
/// holds the value 0 and bucket i (1..64) holds values in
/// [2^(i-1), 2^i). Recording is one relaxed RMW on the bucket plus two
/// on count/sum; there are no configurable boundaries to look up.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index for `v` (0 for 0, else bit_width(v)).
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    std::size_t w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;
  }

  /// Inclusive lower bound of bucket `i`.
  static constexpr std::uint64_t bucket_lower_bound(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One instrument's state at snapshot time.
struct InstrumentSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  std::uint64_t counter = 0;   ///< Counter value
  std::int64_t gauge = 0;      ///< Gauge value
  std::uint64_t count = 0;     ///< Histogram sample count
  std::uint64_t sum = 0;       ///< Histogram sample sum
  /// Non-empty histogram buckets as (inclusive lower bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Histogram quantile estimate for q in [0, 1]: locates the bucket
  /// holding the q-th sample and interpolates log-linearly inside it
  /// (each bucket spans one power of two, so position-within-bucket maps
  /// linearly onto the exponent). Exact for bucket 0 (the value 0);
  /// elsewhere accurate to within the bucket's 2x span. Returns 0 when
  /// the histogram is empty or the snapshot is not a histogram.
  double quantile(double q) const;
};

/// Registry state at one instant, detached from the live instruments.
struct Snapshot {
  std::vector<InstrumentSnapshot> instruments;

  /// Lookup by interned name; nullptr when absent.
  const InstrumentSnapshot* find(std::string_view name) const;

  /// JSON object keyed by instrument name: counters/gauges as numbers,
  /// histograms as {count, sum, p50, p90, p99,
  /// buckets: [[lower_bound, count], ...]}.
  Json to_json() const;
};

/// Thread-safe instrument registry. Registration (name interning) takes a
/// mutex; updates through the returned pointers are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. The pointer is stable for the Registry's lifetime, and repeated
  /// calls with the same name return the same instrument (interning).
  /// Registering one name as two different kinds throws.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Registers a pull-style publisher run at the start of snapshot().
  /// The callback must stay valid until the registry is destroyed or the
  /// last snapshot is taken, whichever comes first.
  void add_flusher(std::function<void()> fn);

  /// Runs the flushers, then copies every instrument's current state.
  Snapshot snapshot();

  /// Number of registered instruments.
  std::size_t instrument_count() const;

 private:
  struct Entry {
    std::string name;
    InstrumentSnapshot::Kind kind;
    // Exactly one is used, per kind. Deques keep pointers stable.
    std::size_t index = 0;
  };

  Entry* find_locked(std::string_view name);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<std::function<void()>> flushers_;
};

}  // namespace esim::telemetry
