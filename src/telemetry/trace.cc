#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace esim::telemetry {

std::atomic<TraceSession*> TraceSession::active_{nullptr};

namespace {

// Per-thread buffer cache, keyed by a process-unique session id (not the
// session pointer, which a later session could reuse) so a thread that
// outlives one session re-registers with the next.
thread_local std::uint64_t t_session_id = 0;
thread_local TraceBuffer* t_buffer = nullptr;

std::atomic<std::uint64_t> next_session_id{1};

}  // namespace

std::vector<TraceEvent> TraceBuffer::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = count_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TraceSession::TraceSession() : TraceSession(Config{}) {}

TraceSession::TraceSession(Config config)
    : config_{config},
      id_{next_session_id.fetch_add(1, std::memory_order_relaxed)},
      epoch_{std::chrono::steady_clock::now()} {
  if (config_.events_per_thread == 0) {
    throw std::invalid_argument("TraceSession: events_per_thread must be > 0");
  }
}

TraceSession::~TraceSession() { stop(); }

void TraceSession::start() {
  TraceSession* expected = nullptr;
  if (!active_.compare_exchange_strong(expected, this,
                                       std::memory_order_acq_rel)) {
    if (expected == this) return;
    throw std::logic_error("TraceSession: another session is already active");
  }
}

void TraceSession::stop() {
  TraceSession* expected = this;
  active_.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel);
}

std::int64_t TraceSession::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceBuffer* TraceSession::this_thread_buffer() {
  if (t_session_id == id_) return t_buffer;
  std::lock_guard lock{mu_};
  buffers_.emplace_back(config_.events_per_thread,
                        static_cast<std::uint32_t>(buffers_.size()));
  t_session_id = id_;
  t_buffer = &buffers_.back();
  return t_buffer;
}

void TraceSession::complete(const char* name, std::int64_t start_ns,
                            std::int64_t end_ns, std::int64_t arg) {
  this_thread_buffer()->push(name, start_ns,
                             end_ns >= start_ns ? end_ns - start_ns : 0, arg);
}

void TraceSession::instant(const char* name, std::int64_t arg) {
  this_thread_buffer()->push(name, now_ns(), -1, arg);
}

const char* TraceSession::intern(const std::string& name) {
  std::lock_guard lock{mu_};
  for (const auto& s : interned_) {
    if (s == name) return s.c_str();
  }
  interned_.push_back(name);
  return interned_.back().c_str();
}

void TraceSession::set_thread_name(const std::string& name) {
  const std::uint32_t tid = this_thread_buffer()->tid();
  std::lock_guard lock{mu_};
  thread_names_.emplace_back(tid, name);
}

std::uint64_t TraceSession::overwritten() const {
  std::lock_guard lock{mu_};
  std::uint64_t total = 0;
  for (const auto& b : buffers_) total += b.overwritten();
  return total;
}

Json TraceSession::chrome_trace() const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    std::lock_guard lock{mu_};
    for (const auto& b : buffers_) {
      auto part = b.drain();
      events.insert(events.end(), part.begin(), part.end());
    }
    names = thread_names_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });

  Json doc = Json::object();
  Json list = Json::array();
  for (const auto& [tid, name] : names) {
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = static_cast<std::int64_t>(tid);
    meta["args"]["name"] = name;
    list.push_back(std::move(meta));
  }
  for (const TraceEvent& e : events) {
    Json ev = Json::object();
    ev["name"] = e.name;
    ev["ph"] = e.dur_ns >= 0 ? "X" : "i";
    ev["pid"] = 0;
    ev["tid"] = static_cast<std::int64_t>(e.tid);
    ev["ts"] = static_cast<double>(e.start_ns) / 1e3;  // microseconds
    if (e.dur_ns >= 0) {
      ev["dur"] = static_cast<double>(e.dur_ns) / 1e3;
    } else {
      ev["s"] = "t";  // instant scope: thread
    }
    if (e.arg != TraceEvent::kNoArg) ev["args"]["v"] = e.arg;
    list.push_back(std::move(ev));
  }
  doc["traceEvents"] = std::move(list);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

bool TraceSession::write_chrome_json(const std::string& path) const {
  const std::string text = chrome_trace().dump(1);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace esim::telemetry
