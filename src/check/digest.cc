#include "check/digest.h"

#include <algorithm>
#include <sstream>

#include "net/switch.h"
#include "tcp/host.h"

namespace esim::check {
namespace {

std::uint64_t name_hash(const std::string& name) {
  Hash64 h;
  for (unsigned char c : name) h.absorb(c);
  return h.value();
}

std::uint8_t pack_flags(const net::Packet& pkt) {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(pkt.flags) |
                                   (pkt.ecn ? 1u << 3 : 0u) |
                                   (pkt.ece ? 1u << 4 : 0u));
}

}  // namespace

PacketRecord make_packet_record(const net::Packet& pkt, std::int64_t time_ns,
                                bool dropped) {
  PacketRecord r;
  r.time_ns = time_ns;
  r.packet_id = pkt.id;
  r.src_host = pkt.flow.src_host;
  r.dst_host = pkt.flow.dst_host;
  r.src_port = pkt.flow.src_port;
  r.dst_port = pkt.flow.dst_port;
  r.flow_id = pkt.flow_id;
  r.seq = pkt.seq;
  r.ack_seq = pkt.ack_seq;
  r.payload = pkt.payload;
  r.flags = pack_flags(pkt);
  r.dropped = dropped;
  return r;
}

std::uint64_t final_state_fingerprint(
    const std::vector<const sim::Simulator*>& sims) {
  std::vector<const sim::Component*> components;
  for (const sim::Simulator* sim : sims) {
    for (const auto& c : sim->components()) components.push_back(c.get());
  }
  std::sort(components.begin(), components.end(),
            [](const sim::Component* a, const sim::Component* b) {
              return a->name() < b->name();
            });
  Hash64 fin;
  for (const sim::Component* c : components) {
    if (const auto* link = dynamic_cast<const net::Link*>(c)) {
      fin.absorb(name_hash(link->name()));
      fin.absorb(link->counter().sent);
      fin.absorb(link->counter().delivered);
      fin.absorb(link->counter().dropped);
      fin.absorb(link->queued_bytes());
      fin.absorb(link->queued_packets());
      fin.absorb(link->busy() ? 1 : 0);
    } else if (const auto* sw = dynamic_cast<const net::Switch*>(c)) {
      fin.absorb(name_hash(sw->name()));
      fin.absorb(sw->counter().sent);
      fin.absorb(sw->counter().delivered);
      fin.absorb(sw->counter().dropped);
    } else if (const auto* host = dynamic_cast<const tcp::Host*>(c)) {
      fin.absorb(name_hash(host->name()));
      fin.absorb(host->counter().sent);
      fin.absorb(host->counter().delivered);
      fin.absorb(host->counter().dropped);
    }
  }
  return fin.value();
}

std::string Digest::to_string() const {
  std::ostringstream os;
  os << std::hex << "order=" << order_lane << " packet=" << packet_lane
     << " flow=" << flow_lane << " final=" << final_lane
     << " tier=" << tier_lane << std::dec << " (events=" << events
     << " packets=" << packets << " drops=" << drops << " flows=" << flows
     << " transitions=" << transitions << ")";
  return os.str();
}

std::uint64_t PacketRecord::hash() const {
  Hash64 h;
  h.absorb(static_cast<std::uint64_t>(time_ns));
  h.absorb(packet_id);
  h.absorb((static_cast<std::uint64_t>(src_host) << 32) | dst_host);
  h.absorb((static_cast<std::uint64_t>(src_port) << 16) | dst_port);
  h.absorb(flow_id);
  h.absorb((static_cast<std::uint64_t>(seq) << 32) | ack_seq);
  h.absorb((static_cast<std::uint64_t>(payload) << 8) | flags);
  h.absorb(dropped ? 1 : 0);
  return h.value();
}

std::string PacketRecord::to_string() const {
  std::ostringstream os;
  os << "t=" << time_ns << "ns pkt#" << packet_id << " flow " << flow_id
     << " " << src_host << ":" << src_port << "->" << dst_host << ":"
     << dst_port << " seq=" << seq << " ack=" << ack_seq
     << " payload=" << payload << " flags=0x" << std::hex
     << static_cast<unsigned>(flags) << std::dec
     << (dropped ? " DROPPED" : "");
  return os.str();
}

void StateDigest::LinkProbe::record(const PacketRecord& r, bool keep,
                                    std::size_t max_records,
                                    std::atomic<std::size_t>& kept_total) {
  chain.absorb(r.hash());
  if (r.dropped) {
    ++drops;
  } else {
    ++packets;
  }
  if (keep &&
      kept_total.fetch_add(1, std::memory_order_relaxed) < max_records) {
    capture.push_back(r);
  }
}

void StateDigest::enable_capture(std::size_t max_records) {
  capture_ = true;
  max_records_ = max_records;
}

void StateDigest::attach(sim::Simulator& sim) {
  auto lane =
      std::make_unique<EventLane>(static_cast<std::uint32_t>(lanes_.size()));
  sim.set_pop_observer(lane.get());
  lanes_.push_back(std::move(lane));
  observe_links(sim);
}

void StateDigest::attach(sim::ParallelEngine& engine) {
  for (std::uint32_t p = 0; p < engine.num_partitions(); ++p) {
    attach(engine.partition(p).sim());
  }
}

void StateDigest::observe_links(sim::Simulator& sim) {
  if (std::find(sims_.begin(), sims_.end(), &sim) == sims_.end()) {
    sims_.push_back(&sim);
  }
  for (const auto& component : sim.components()) {
    auto* link = dynamic_cast<net::Link*>(component.get());
    if (link == nullptr) continue;
    auto probe = std::make_unique<LinkProbe>();
    probe->link = link;
    LinkProbe* p = probe.get();
    const bool keep = capture_;
    const std::size_t cap = max_records_;
    auto* total = &captured_total_;
    link->on_transmit = [p, keep, cap, total](const net::Packet& pkt,
                                              sim::SimTime arrive_at) {
      p->record(make_packet_record(pkt, arrive_at.ns(), /*dropped=*/false),
                keep, cap, *total);
    };
    link->on_drop = [p, keep, cap, total, link](const net::Packet& pkt) {
      p->record(make_packet_record(pkt, link->now().ns(), /*dropped=*/true),
                keep, cap, *total);
    };
    probes_.push_back(std::move(probe));
  }
}

void StateDigest::on_flow_complete(std::uint64_t flow_id, std::uint32_t src,
                                   std::uint32_t dst, std::uint64_t bytes,
                                   sim::SimTime start, sim::SimTime end) {
  Hash64 h;
  h.absorb(flow_id);
  h.absorb((static_cast<std::uint64_t>(src) << 32) | dst);
  h.absorb(bytes);
  h.absorb(static_cast<std::uint64_t>(start.ns()));
  h.absorb(static_cast<std::uint64_t>(end.ns()));
  flow_lane_.fetch_add(h.value(), std::memory_order_relaxed);
  flows_.fetch_add(1, std::memory_order_relaxed);
}

void StateDigest::on_tier_transition(std::uint32_t cluster,
                                     std::int64_t t_ns, std::uint8_t from,
                                     std::uint8_t to) {
  Hash64& chain = tier_chains_[cluster];
  chain.absorb(static_cast<std::uint64_t>(t_ns));
  chain.absorb((static_cast<std::uint64_t>(from) << 8) | to);
  ++transitions_;
}

Digest StateDigest::finalize() const {
  Digest d;

  // Order lane: commutative over partitions (each partition's chain is
  // order-sensitive); comparable only between identical engine configs.
  for (const auto& lane : lanes_) {
    Hash64 h;
    h.absorb(lane->key());
    h.absorb(lane->value());
    h.absorb(lane->events());
    d.order_lane += h.value();
    d.events += lane->events();
  }

  // Packet lane: commutative across links, keyed by name so placement
  // (which partition built the link) cannot matter.
  for (const auto& probe : probes_) {
    Hash64 h;
    h.absorb(name_hash(probe->link->name()));
    h.absorb(probe->chain.value());
    h.absorb(probe->packets);
    h.absorb(probe->drops);
    d.packet_lane += h.value();
    d.packets += probe->packets;
    d.drops += probe->drops;
  }

  d.flow_lane = flow_lane_.load(std::memory_order_relaxed);
  d.flows = flows_.load(std::memory_order_relaxed);

  // Tier lane: commutative across clusters (chains are order-sensitive
  // within one cluster), keyed by cluster index so partition placement
  // cannot matter.
  for (const auto& [cluster, chain] : tier_chains_) {
    Hash64 h;
    h.absorb(cluster);
    h.absorb(chain.value());
    d.tier_lane += h.value();
  }
  d.transitions = transitions_;

  // Final lane: every component's counters and residual queue state, in
  // canonical name order across all attached simulators.
  std::vector<const sim::Simulator*> sims(sims_.begin(), sims_.end());
  d.final_lane = final_state_fingerprint(sims);
  return d;
}

void StateDigest::replay_link_record(std::size_t probe,
                                     const PacketRecord& r) {
  probes_.at(probe)->record(r, capture_, max_records_, captured_total_);
}

std::map<std::string, std::vector<PacketRecord>> StateDigest::captured()
    const {
  std::map<std::string, std::vector<PacketRecord>> out;
  for (const auto& probe : probes_) {
    if (!probe->capture.empty()) {
      out.emplace(probe->link->name(), probe->capture);
    }
  }
  return out;
}

}  // namespace esim::check
