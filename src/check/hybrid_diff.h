// Differential checking for the hybrid (approx-cluster) simulator, with
// and without cross-packet batched inference (DESIGN.md §8).
//
// Two equivalence relations matter here, and they need different drop
// modes because component RNG streams are forked from each partition's
// root generator in creation order:
//
//   A. Batching on vs off on the SAME engine (sequential): component
//      creation order — and therefore every cluster's RNG stream — is
//      identical, so this comparison runs with sampled drops. Digest
//      identity proves the batched path consumes per-packet drop draws
//      at admission in arrival order, exactly like the unbatched path
//      (the RNG draw-order contract of ApproxCluster::decide_drop).
//
//   B. Sequential vs PDES with batching active on BOTH: cluster
//      components live on different partitions and fork different
//      streams, so sampled drops would diverge by construction, not by
//      bug. This comparison runs with threshold drops (p > 0.5), which
//      consume no randomness; it proves N>1 coalescing respects the
//      shrunken cluster->core lookahead horizon across the PDES cut.
//
// Both comparisons use Digest::engine_invariant_equal: the batched mode
// schedules flush timers the unbatched mode does not, so raw event
// counts (and the order lane) legitimately differ while packet, flow,
// and final lanes must not.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "approx/micro_model.h"
#include "check/digest.h"
#include "check/scenario.h"
#include "core/granularity.h"
#include "core/hybrid_builder.h"
#include "telemetry/fidelity.h"

namespace esim::check {

/// A self-contained hybrid differential-test input: topology, approx
/// knobs, a deterministic model recipe, and a pre-materialized flow
/// list. Like check::Scenario, it carries no live randomness — a
/// HybridScenario is a pure function of the fuzz seed that produced it.
struct HybridScenario {
  std::uint64_t seed = 5;  ///< engine seed (components fork from it)
  std::uint32_t clusters = 3;
  std::uint32_t tors_per_cluster = 2;
  std::uint32_t aggs_per_cluster = 2;
  std::uint32_t hosts_per_tor = 2;
  std::uint32_t cores = 2;

  /// Weight-initialisation stream for the boundary models (ingress uses
  /// model_seed, egress model_seed + 7).
  std::uint64_t model_seed = 1;
  /// Boundary-model architecture. The fuzz corpus keeps the tiny default
  /// (speed); bench_granularity scales it up so per-packet inference
  /// carries production-like weight in its tier comparisons.
  std::uint32_t model_hidden = 8;
  std::uint32_t model_layers = 1;
  /// Drop-head bias: sigmoid(drop_bias) sets the baseline drop rate for
  /// sampled mode; values near 0 make threshold drops feature-dependent.
  double drop_bias = -2.0;
  /// Latency normalization: predictions distribute around this mean.
  double latency_mean_us = 8.0;
  double latency_std = 0.3;

  bool sample_drops = false;
  double min_latency_us = 5.0;
  double max_port_backlog_us = 40.0;
  std::size_t batch_max = 8;
  std::int64_t batch_window_ns = 3'000;
  std::int64_t lookahead_ns = 1'000;

  /// Adaptive multi-granularity (DESIGN.md §12): when true, every
  /// approximated cluster runs ClusterTierPolicy::Adaptive with the
  /// knobs below. run_hybrid then attaches an internal fidelity sink
  /// (congestion tracking only, shadow sampling off) when the caller
  /// passes none — the controller cannot run without its signal.
  bool adaptive_tiers = false;
  std::uint32_t min_dwell_windows = 2;
  /// Pinned tier when adaptive_tiers is false (default Ml = the legacy
  /// path; Packet/Fluid give the bench fixed-tier comparison points).
  core::ClusterTier fixed_tier = core::ClusterTier::Ml;
  /// Congestion-classification thresholds handed to the internal sink
  /// (fractions of aggregate boundary capacity; small scenarios need
  /// far lower cut-offs than the FidelityConfig defaults).
  double quiescent_util = 0.02;
  double congested_util = 0.5;
  double congested_drop_rate = 0.02;
  double classify_ewma_alpha = 0.3;

  std::int64_t duration_ns = 2'500'000;
  std::vector<FlowSpec> flows;

  std::uint32_t total_hosts() const {
    return clusters * tors_per_cluster * hosts_per_tor;
  }

  /// Builder config; `batching` toggles the coalesced prediction queue
  /// (off = batch_max 1, the legacy per-packet path).
  core::HybridConfig hybrid_config(bool batching) const;

  /// Deterministic boundary model: seeded random trunk, drop-head bias
  /// pinned to drop_bias, latency normalization from the fields above.
  approx::MicroModel make_model(std::uint64_t seed_offset) const;

  /// Throws std::invalid_argument on inconsistent dimensions, flow
  /// endpoints, duplicate start times, or a batch window wider than
  /// min_latency_us - lookahead_ns allows.
  void validate() const;

  std::string summary() const;
};

/// Samples a valid hybrid scenario as a pure function of `scenario_seed`
/// (reproducible from the seed alone; no repro files needed).
HybridScenario random_hybrid_scenario(std::uint64_t scenario_seed);

/// Samples an adaptive-granularity scenario: quiescent-heavy traffic
/// (sparse early flows, a long silence) with one incast burst into an
/// approximated cluster, plus classification thresholds tuned so the
/// controller actually demotes to fluid and promotes back. Pure
/// function of `scenario_seed`.
HybridScenario random_granularity_scenario(std::uint64_t scenario_seed);

/// Executed tier transitions per cluster index, in virtual-time order.
using TierTraces = std::map<std::uint32_t, std::vector<core::TierTransition>>;

/// Runs the scenario to its horizon and digests the run. partitions == 0
/// selects the sequential Simulator{seed}; otherwise a ParallelEngine
/// with that many partitions (same seed, lookahead_ns). A non-null
/// `fidelity` sink attaches the observatory to every ApproxCluster (its
/// probes are finalized before returning); the digest-invariance
/// contract says the returned digest is bit-identical either way. With
/// adaptive_tiers, each cluster's transition trace is folded into the
/// digest tier lane and copied to `traces` when non-null.
Digest run_hybrid(const HybridScenario& sc, std::uint32_t partitions,
                  bool batching,
                  telemetry::FidelitySink* fidelity = nullptr,
                  TierTraces* traces = nullptr);

/// Runs both equivalence checks (A with sampled drops, B with threshold
/// drops at every partition count). Returns the empty string when all
/// digests agree, else a description of the first divergence.
std::string check_hybrid(const HybridScenario& sc,
                         const std::vector<std::uint32_t>& partitions);

/// Fidelity digest-invariance check (DESIGN.md §11): runs the scenario
/// with the observatory off and on (sample_period 16, so boundary
/// traffic is actually shadowed) and requires FULL digest equality —
/// event counts, pop order, and every lane — sequentially (batched and
/// unbatched) and on each PDES partition count. Sampled drops are used
/// throughout: both sides of each comparison share one engine config,
/// so their component RNG streams coincide and any divergence means the
/// observatory perturbed the simulation. On success accumulates the
/// fidelity rows / shadow samples the instrumented runs produced into
/// the optional out-params and returns ""; else a description of the
/// first divergence.
std::string check_fidelity(const HybridScenario& sc,
                           const std::vector<std::uint32_t>& partitions,
                           std::uint64_t* rows_out = nullptr,
                           std::uint64_t* shadow_out = nullptr);

/// Adaptive-granularity equivalence (DESIGN.md §12). Forces
/// adaptive_tiers on and runs:
///   A. sequential, batching off vs on, sampled drops — the controller
///      plus the coalesced queue must preserve the draw-order contract;
///   B. sequential vs PDES at every partition count, threshold drops,
///      batching on — transitions must fire at identical virtual times
///      across engines (digest tier lane AND element-wise trace
///      comparison per cluster).
/// Accumulates the sequential run's executed transition count into
/// `transitions_out` (callers assert the corpus actually transitions).
/// Returns "" when everything agrees, else the first divergence.
std::string check_granularity(const HybridScenario& sc,
                              const std::vector<std::uint32_t>& partitions,
                              std::uint64_t* transitions_out = nullptr);

}  // namespace esim::check
