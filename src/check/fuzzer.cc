#include "check/fuzzer.h"

#include <algorithm>
#include <set>

namespace esim::check {
namespace {

constexpr std::uint64_t kMss = 1460;

bool is_valid(const Scenario& sc) {
  try {
    sc.validate();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

Scenario ScenarioFuzzer::next() {
  Scenario sc;
  // Seeds feed the engine (component RNG forks); keep them odd and
  // non-zero so no scenario lands on a degenerate zero state.
  sc.seed = rng_.next_u64() | 1;
  sc.tors = 2 + static_cast<std::uint32_t>(rng_.uniform_int(3));       // 2..4
  sc.spines = 1 + static_cast<std::uint32_t>(rng_.uniform_int(4));     // 1..4
  sc.hosts_per_tor = 1 + static_cast<std::uint32_t>(rng_.uniform_int(3));

  // Queue depth spans "never drops" down to "drops under any incast".
  static constexpr std::uint32_t kQueues[] = {12'000, 30'000, 60'000,
                                              150'000};
  sc.queue_bytes = kQueues[rng_.uniform_int(std::size(kQueues))];

  switch (rng_.uniform_int(3)) {
    case 0: sc.tcp = TcpVariant::NewReno; break;
    case 1: sc.tcp = TcpVariant::DelayedAck; break;
    default: sc.tcp = TcpVariant::Dctcp; break;
  }
  sc.ecn_threshold =
      sc.tcp == TcpVariant::Dctcp ? std::min(30'000u, sc.queue_bytes / 2) : 0;

  sc.duration_ns = 2'000'000 + static_cast<std::int64_t>(
                                   rng_.uniform_int(3) * 1'000'000);

  const std::uint32_t n_flows =
      options_.min_flows +
      static_cast<std::uint32_t>(
          rng_.uniform_int(options_.max_flows - options_.min_flows + 1));
  // Start times: globally unique at ns granularity, confined to the first
  // half of the horizon so short flows usually finish inside it.
  std::set<std::int64_t> starts;
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    FlowSpec f;
    f.src = static_cast<net::HostId>(rng_.uniform_int(sc.total_hosts()));
    do {
      f.dst = static_cast<net::HostId>(rng_.uniform_int(sc.total_hosts()));
    } while (f.dst == f.src);
    f.bytes = kMss * (1 + rng_.uniform_int(options_.max_flow_mss));
    do {
      f.start_ns = static_cast<std::int64_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(sc.duration_ns / 2)));
    } while (!starts.insert(f.start_ns).second);
    f.flow_id = i + 1;
    sc.flows.push_back(f);
  }
  sc.validate();
  return sc;
}

Scenario ScenarioFuzzer::shrink(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails) const {
  Scenario sc = failing;
  int evals = 0;

  // Accepts `cand` as the new baseline when it is valid and still fails.
  auto accept = [&](const Scenario& cand) {
    if (evals >= options_.max_shrink_evals) return false;
    if (!is_valid(cand)) return false;
    ++evals;
    if (!still_fails(cand)) return false;
    sc = cand;
    return true;
  };

  bool progress = true;
  while (progress && evals < options_.max_shrink_evals) {
    progress = false;

    // 1. Drop flows, ddmin-style: large chunks first, then singles.
    for (std::size_t chunk = std::max<std::size_t>(sc.flows.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t i = 0; i < sc.flows.size() && sc.flows.size() > 1;) {
        Scenario cand = sc;
        const auto first = cand.flows.begin() + static_cast<std::ptrdiff_t>(i);
        const auto last =
            cand.flows.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + chunk, cand.flows.size()));
        cand.flows.erase(first, last);
        if (accept(cand)) {
          progress = true;  // keep i: the next chunk slid into place
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // 2. Halve flow sizes (floor one MSS).
    for (std::size_t i = 0; i < sc.flows.size(); ++i) {
      if (sc.flows[i].bytes <= kMss) continue;
      Scenario cand = sc;
      cand.flows[i].bytes = std::max(kMss, cand.flows[i].bytes / 2);
      if (accept(cand)) progress = true;
    }

    // 3. Shave topology. Host ids are ToR-major, so dropping the last ToR
    // (or a host slot) only invalidates flows whose endpoints fall off the
    // end — validate() rejects those candidates and accept() skips them.
    while (sc.spines > 1) {
      Scenario cand = sc;
      --cand.spines;
      if (!accept(cand)) break;
      progress = true;
    }
    while (sc.tors > 2) {
      Scenario cand = sc;
      --cand.tors;
      if (!accept(cand)) break;
      progress = true;
    }

    // 4. Halve the horizon while every flow still starts inside it.
    while (true) {
      Scenario cand = sc;
      cand.duration_ns /= 2;
      if (cand.duration_ns < 100'000 || !accept(cand)) break;
      progress = true;
    }
  }
  return sc;
}

}  // namespace esim::check
