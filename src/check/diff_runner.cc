#include "check/diff_runner.h"

#include <algorithm>
#include <sstream>

#include "core/pdes_builder.h"
#include "sim/parallel.h"

namespace esim::check {
namespace {

/// Schedules every scenario flow on `sim` (restricted to hosts whose
/// entry in `owned` is true), with completion wired into the digest.
void inject_flows(sim::Simulator& sim, const Scenario& scenario,
                  const std::vector<tcp::Host*>& hosts,
                  const std::vector<bool>& owned, StateDigest& digest) {
  for (const FlowSpec& f : scenario.flows) {
    if (!owned[f.src]) continue;
    tcp::Host* host = hosts[f.src];
    sim.schedule_at(sim::SimTime::from_ns(f.start_ns), [host, f, &digest] {
      auto* conn = host->open_flow(f.dst, f.bytes, f.flow_id);
      const sim::SimTime start = host->sim().now();
      conn->on_complete = [host, f, start, &digest] {
        digest.on_flow_complete(f.flow_id, f.src, f.dst, f.bytes, start,
                                host->sim().now());
      };
    });
  }
}

}  // namespace

std::string EngineSpec::label() const {
  std::string s = partitions == 0
                      ? "sequential"
                      : "pdes(" + std::to_string(partitions) + ")";
  if (invert_tiebreak) s += "+inverted-tiebreak";
  return s;
}

std::string FirstDivergence::to_string() const {
  if (!found) return "(no packet-level divergence localized)";
  std::ostringstream os;
  os << "first divergence on link '" << link << "' at record #" << index
     << " (t=" << time_ns << "ns):\n";
  for (const auto& c : context) os << "    ... " << c << "\n";
  os << "    base:  " << base_record << "\n";
  os << "    other: " << other_record;
  return os.str();
}

std::string DiffReport::to_string() const {
  std::ostringstream os;
  os << base.label() << " vs " << other.label() << ": "
     << (equivalent ? "EQUIVALENT" : "DIVERGED")
     << (full_compare ? " (full digest incl. pop order)"
                      : " (engine-invariant lanes)")
     << "\n";
  os << "  base:  " << base_digest.to_string() << "\n";
  os << "  other: " << other_digest.to_string();
  if (!equivalent) {
    os << "\n  earliest diverged horizon: " << divergence_window_ns << "ns\n";
    os << "  " << first.to_string();
  }
  return os.str();
}

RunOutcome DiffRunner::run(const Scenario& scenario, const EngineSpec& engine,
                           sim::SimTime end, bool capture) const {
  scenario.validate();
  RunOutcome out;
  StateDigest digest;
  if (capture) digest.enable_capture(options_.max_capture);

  if (engine.partitions == 0) {
    sim::Simulator sim{scenario.seed};
    if (engine.invert_tiebreak) sim.debug_invert_fes_tiebreak(true);
    auto net = core::build_full_network(sim, scenario.network_config());
    digest.attach(sim);
    std::vector<bool> owned(scenario.total_hosts(), true);
    inject_flows(sim, scenario, net.hosts, owned, digest);
    sim.run_until(end);
    out.digest = digest.finalize();
    // Records reference link names owned by `sim`; copy them out before
    // the engine (and its components) goes out of scope.
    if (capture) out.records = digest.captured();
  } else {
    sim::ParallelEngine::Config cfg;
    cfg.num_partitions = engine.partitions;
    cfg.lookahead = options_.lookahead;
    cfg.window_mode = options_.window_mode;
    cfg.seed = scenario.seed;
    sim::ParallelEngine eng{cfg};
    if (engine.invert_tiebreak) {
      for (std::uint32_t p = 0; p < eng.num_partitions(); ++p) {
        eng.partition(p).sim().debug_invert_fes_tiebreak(true);
      }
    }
    auto net = core::build_leaf_spine_partitioned(
        eng, scenario.network_config(), options_.placement);
    digest.attach(eng);
    for (std::uint32_t p = 0; p < eng.num_partitions(); ++p) {
      std::vector<bool> owned(scenario.total_hosts());
      for (net::HostId h = 0; h < scenario.total_hosts(); ++h) {
        owned[h] = net.partition_of_host[h] == p;
      }
      inject_flows(eng.partition(p).sim(), scenario, net.hosts, owned,
                   digest);
    }
    eng.run_until(end);
    out.digest = digest.finalize();
    if (capture) out.records = digest.captured();
  }
  out.flows_completed = out.digest.flows;
  return out;
}

DiffReport DiffRunner::diff(const Scenario& scenario, const EngineSpec& base,
                            const EngineSpec& other) const {
  DiffReport report;
  report.base = base;
  report.other = other;
  report.full_compare = base == other || (base.partitions == other.partitions &&
                                          base.invert_tiebreak ==
                                              other.invert_tiebreak);

  auto equal = [&report](const Digest& a, const Digest& b) {
    return report.full_compare ? a == b : a.engine_invariant_equal(b);
  };

  const auto duration = sim::SimTime::from_ns(scenario.duration_ns);
  report.base_digest = run(scenario, base, duration).digest;
  report.other_digest = run(scenario, other, duration).digest;
  report.equivalent = equal(report.base_digest, report.other_digest);
  if (report.equivalent || !options_.localize) return report;

  // Bisect the horizon: find the earliest end time (to within
  // bisect_resolution_ns) at which the two engines' digests already
  // differ. Digests at a shorter horizon cover a prefix of the run, so
  // divergence is monotone in the horizon.
  std::int64_t lo = 0;  // digests match when nothing has run
  std::int64_t hi = scenario.duration_ns;
  while (hi - lo > options_.bisect_resolution_ns) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    const auto a = run(scenario, base, sim::SimTime::from_ns(mid)).digest;
    const auto b = run(scenario, other, sim::SimTime::from_ns(mid)).digest;
    if (equal(a, b)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  report.divergence_window_ns = hi;

  // Rerun the diverged horizon with capture and name the earliest
  // differing per-link record.
  const auto end = sim::SimTime::from_ns(hi);
  auto base_run = run(scenario, base, end, /*capture=*/true);
  auto other_run = run(scenario, other, end, /*capture=*/true);

  std::vector<std::string> links;
  for (const auto& [name, _] : base_run.records) links.push_back(name);
  for (const auto& [name, _] : other_run.records) {
    if (!base_run.records.count(name)) links.push_back(name);
  }

  bool have = false;
  std::int64_t best_time = 0;
  for (const std::string& name : links) {
    static const std::vector<PacketRecord> kEmpty;
    const auto& a = base_run.records.count(name)
                        ? base_run.records.at(name)
                        : kEmpty;
    const auto& b = other_run.records.count(name)
                        ? other_run.records.at(name)
                        : kEmpty;
    const std::size_t n = std::min(a.size(), b.size());
    std::size_t i = 0;
    while (i < n && a[i] == b[i]) ++i;
    if (i == a.size() && i == b.size()) continue;  // streams identical
    std::int64_t t = std::numeric_limits<std::int64_t>::max();
    if (i < a.size()) t = std::min(t, a[i].time_ns);
    if (i < b.size()) t = std::min(t, b[i].time_ns);
    if (have && t >= best_time) continue;
    have = true;
    best_time = t;
    report.first.found = true;
    report.first.link = name;
    report.first.index = i;
    report.first.time_ns = t;
    report.first.base_record =
        i < a.size() ? a[i].to_string() : "<end of stream>";
    report.first.other_record =
        i < b.size() ? b[i].to_string() : "<end of stream>";
    report.first.context.clear();
    const std::size_t from = i >= 3 ? i - 3 : 0;
    for (std::size_t k = from; k < i; ++k) {
      report.first.context.push_back(a[k].to_string());
    }
  }
  return report;
}

std::vector<DiffReport> DiffRunner::check_all(
    const Scenario& scenario, const std::vector<std::uint32_t>& partition_counts,
    bool inject_tiebreak_bug) const {
  std::vector<DiffReport> reports;
  const EngineSpec sequential{};
  for (std::uint32_t p : partition_counts) {
    EngineSpec pdes;
    pdes.partitions = p;
    pdes.invert_tiebreak = inject_tiebreak_bug;
    reports.push_back(diff(scenario, sequential, pdes));
  }
  if (!partition_counts.empty()) {
    // Rerun determinism: the widest PDES config against itself must match
    // on the FULL digest, pop order included.
    EngineSpec widest;
    widest.partitions =
        *std::max_element(partition_counts.begin(), partition_counts.end());
    reports.push_back(diff(scenario, widest, widest));
  }
  return reports;
}

}  // namespace esim::check
