// A differential-test scenario: one leaf-spine topology plus an explicit,
// pre-materialized flow list.
//
// Scenarios deliberately carry *no* live randomness: the fuzzer samples
// everything (dimensions, TCP variant, flow endpoints/sizes/start times)
// from its own seeded generator ahead of time, so the simulation itself is
// a pure function of the scenario and the engine under test. That is what
// makes sequential and PDES runs comparable at digest granularity — a
// workload generator drawing from per-partition RNG streams would differ
// across partition counts by construction, not by bug.
//
// Start times must be unique per source host (Scenario::validate enforces
// it): two same-instant open_flow calls on one host would make its port
// assignment depend on injection order, an ambiguity the determinism
// contract does not cover. The fuzzer goes further and draws globally
// unique start times; the crafted self-test scenarios instead align starts
// across *different* hosts on purpose, to manufacture FES ties.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/full_builder.h"
#include "net/clos.h"

namespace esim::check {

/// One pre-planned TCP flow.
struct FlowSpec {
  net::HostId src = 0;
  net::HostId dst = 0;
  std::uint64_t bytes = 0;
  std::int64_t start_ns = 0;
  std::uint64_t flow_id = 0;

  bool operator==(const FlowSpec&) const = default;
};

/// TCP stack variant exercised by a scenario.
enum class TcpVariant : std::uint8_t { NewReno = 0, DelayedAck = 1, Dctcp = 2 };

const char* tcp_variant_name(TcpVariant v);

/// A complete, self-describing differential-test input.
struct Scenario {
  std::uint64_t seed = 1;  ///< engine seed (components fork from it)
  std::uint32_t tors = 2;
  std::uint32_t spines = 2;
  std::uint32_t hosts_per_tor = 2;
  /// Fabric queue capacity; small values provoke drops.
  std::uint32_t queue_bytes = 150'000;
  /// ECN marking threshold (0 = off; set for Dctcp scenarios).
  std::uint32_t ecn_threshold = 0;
  TcpVariant tcp = TcpVariant::NewReno;
  std::int64_t duration_ns = 2'000'000;
  /// Per-flow 5-tuple ECMP (true, the default) vs host-pair ECMP (false):
  /// see core::NetworkConfig::ecmp_port_sensitive. Memo scenarios disable
  /// it so repeated phases are path-identical despite fresh ephemeral
  /// ports.
  bool ecmp_port_sensitive = true;
  std::vector<FlowSpec> flows;

  bool operator==(const Scenario&) const = default;

  std::uint32_t total_hosts() const { return tors * hosts_per_tor; }

  /// The leaf-spine ClosSpec this scenario runs on.
  net::ClosSpec clos() const;

  /// Link/TCP parameters for the builders.
  core::NetworkConfig network_config() const;

  /// Short human-readable summary, e.g. "4x2 spines, 8 hosts, 12 flows,
  /// dctcp, 3ms".
  std::string summary() const;

  /// Replayable config-file form (line-oriented key=value, '#' comments).
  std::string serialize() const;

  /// Parses serialize() output; throws std::invalid_argument on malformed
  /// input. Round-trips exactly.
  static Scenario parse(const std::string& text);

  /// Throws std::invalid_argument when dimensions or the flow list are
  /// inconsistent (out-of-range endpoints, src==dst, duplicate start
  /// times, duplicate flow ids, flows past the horizon).
  void validate() const;
};

/// File helpers used by the CLI and tests.
void save_scenario(const Scenario& sc, const std::string& path);
Scenario load_scenario(const std::string& path);

}  // namespace esim::check
